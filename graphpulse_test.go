package graphpulse_test

import (
	"bytes"
	"math"
	"testing"

	"graphpulse"
)

func TestFacadeQuickstart(t *testing.T) {
	g, err := graphpulse.GenerateRMAT(graphpulse.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 9, EdgeFactor: 8,
		Weighted: true, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := graphpulse.Run(graphpulse.OptimizedConfig(), g, graphpulse.NewPageRankDelta())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || len(res.Values) != g.NumVertices() {
		t.Fatalf("bad result: cycles=%d values=%d", res.Cycles, len(res.Values))
	}
	// Cross-check against the reference solver.
	// Asynchronous scheduling drops different sub-threshold residue than
	// the reference worklist, so compare with a relative tolerance.
	want := graphpulse.Solve(g, graphpulse.NewPageRankDelta())
	for v := range want.Values {
		tol := 5e-3 * math.Max(1, math.Abs(want.Values[v]))
		if math.Abs(res.Values[v]-want.Values[v]) > tol {
			t.Fatalf("vertex %d: %g vs reference %g", v, res.Values[v], want.Values[v])
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	g, err := graphpulse.GenerateGrid(16, 16, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	alg := graphpulse.NewSSSP(0)
	ref := graphpulse.Solve(g, graphpulse.NewSSSP(0))

	lig := graphpulse.RunLigra(graphpulse.DefaultLigraConfig(), g, alg)
	for v := range ref.Values {
		if math.Abs(lig.Values[v]-ref.Values[v]) > 1e-9 {
			t.Fatalf("ligra vertex %d: %g vs %g", v, lig.Values[v], ref.Values[v])
		}
	}
	gi, err := graphpulse.RunGraphicionado(graphpulse.DefaultGraphicionadoConfig(), g, graphpulse.NewSSSP(0))
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref.Values {
		if math.Abs(gi.Values[v]-ref.Values[v]) > 1e-9 {
			t.Fatalf("graphicionado vertex %d: %g vs %g", v, gi.Values[v], ref.Values[v])
		}
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g, err := graphpulse.NewGraph(3, []graphpulse.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graphpulse.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := graphpulse.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 2 {
		t.Errorf("round trip edges = %d", back.NumEdges())
	}
	var txt bytes.Buffer
	if err := graphpulse.WriteEdgeList(&txt, g); err != nil {
		t.Fatal(err)
	}
	back2, err := graphpulse.ReadEdgeList(&txt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if back2.NumVertices() != 3 {
		t.Errorf("text round trip vertices = %d", back2.NumVertices())
	}
	st := graphpulse.ComputeGraphStats(g)
	if st.Edges != 2 {
		t.Errorf("stats edges = %d", st.Edges)
	}
}

func TestFacadeDatasets(t *testing.T) {
	if got := len(graphpulse.Datasets()); got != 5 {
		t.Fatalf("Datasets = %d, want 5", got)
	}
	d, err := graphpulse.DatasetByAbbrev("WG")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Generate(graphpulse.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Error("empty dataset stand-in")
	}
}

func TestFacadeEnergy(t *testing.T) {
	if p := graphpulse.AcceleratorPowerWatts(1); p < 8 || p > 10 {
		t.Errorf("power = %.2f W, want ≈ 9", p)
	}
	r, err := graphpulse.EnergyEfficiencyRatio(1, 28)
	if err != nil {
		t.Fatal(err)
	}
	if r < 200 || r > 350 {
		t.Errorf("efficiency = %.0f×, want ≈ 280×", r)
	}
	if len(graphpulse.EnergyTableV()) != 4 {
		t.Error("Table V rows missing")
	}
}

func TestFacadeCluster(t *testing.T) {
	g, err := graphpulse.GenerateRMAT(graphpulse.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 9, EdgeFactor: 8,
		Weighted: true, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := graphpulse.Solve(g, graphpulse.NewConnectedComponents())
	res, err := graphpulse.RunCluster(graphpulse.DefaultClusterConfig(), g, graphpulse.NewConnectedComponents())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chips != 4 {
		t.Errorf("Chips = %d", res.Chips)
	}
	for v := range ref.Values {
		if res.Values[v] != ref.Values[v] {
			t.Fatalf("cluster vertex %d = %g, want %g", v, res.Values[v], ref.Values[v])
		}
	}
}

func TestFacadeIncremental(t *testing.T) {
	g, err := graphpulse.GenerateGrid(10, 10, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	cold := graphpulse.Solve(g, graphpulse.NewSSSP(0))
	added := []graphpulse.Edge{{Src: 0, Dst: 99, Weight: 0.05}}
	newG, warm, err := graphpulse.IncrementalAfterInsert(graphpulse.NewSSSP(0), g, added, cold.Values)
	if err != nil {
		t.Fatal(err)
	}
	incr := graphpulse.Solve(newG, warm)
	if got := incr.Values[99]; math.Abs(got-0.05) > 1e-9 {
		t.Errorf("shortcut distance = %g, want 0.05", got)
	}
}

func TestFacadeParallelSolve(t *testing.T) {
	g, err := graphpulse.GenerateRMAT(graphpulse.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 8, EdgeFactor: 8,
		Weighted: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// SSSP is monotone: the parallel solver must agree with the reference
	// solver bit-for-bit at any worker count.
	want := graphpulse.Solve(g, graphpulse.NewSSSP(0))
	res := graphpulse.SolveParallel(g, graphpulse.NewSSSP(0), graphpulse.ParallelConfig{Workers: 4})
	if res.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", res.Workers)
	}
	for v := range want.Values {
		if res.Values[v] != want.Values[v] {
			t.Fatalf("vertex %d: parallel %g != reference %g", v, res.Values[v], want.Values[v])
		}
	}
	var perWorker int64
	for _, a := range res.WorkerActivations {
		perWorker += a
	}
	if perWorker != res.Activations || res.Activations == 0 {
		t.Fatalf("activations: sum(per-worker)=%d total=%d", perWorker, res.Activations)
	}
}
