package algorithms

import (
	"container/heap"
	"math"

	"graphpulse/internal/graph"
)

// This file holds textbook implementations of the evaluated algorithms,
// written independently of the delta-accumulative framework. Tests compare
// Solve (and every engine) against these oracles.

// DijkstraSSSP computes shortest path distances from root using a binary
// heap. Edge weights must be non-negative.
func DijkstraSSSP(g *graph.CSR, root graph.VertexID) []Value {
	n := g.NumVertices()
	dist := make([]Value, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[root] = 0
	pq := &vertexHeap{items: []heapItem{{v: root, key: 0}}, better: func(a, b Value) bool { return a < b }}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.key > dist[it.v] {
			continue
		}
		weights := g.NeighborWeights(it.v)
		for i, d := range g.Neighbors(it.v) {
			w := Value(1)
			if weights != nil {
				w = Value(weights[i])
			}
			if nd := it.key + w; nd < dist[d] {
				dist[d] = nd
				heap.Push(pq, heapItem{v: d, key: nd})
			}
		}
	}
	return dist
}

// WidestPath computes single-source widest path (max-min) widths from root
// with a Dijkstra-style max-heap.
func WidestPath(g *graph.CSR, root graph.VertexID) []Value {
	n := g.NumVertices()
	width := make([]Value, n)
	for i := range width {
		width[i] = math.Inf(-1)
	}
	width[root] = Infinity
	pq := &vertexHeap{items: []heapItem{{v: root, key: Infinity}}, better: func(a, b Value) bool { return a > b }}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.key < width[it.v] {
			continue
		}
		weights := g.NeighborWeights(it.v)
		for i, d := range g.Neighbors(it.v) {
			w := Value(1)
			if weights != nil {
				w = Value(weights[i])
			}
			if nw := math.Min(it.key, w); nw > width[d] {
				width[d] = nw
				heap.Push(pq, heapItem{v: d, key: nw})
			}
		}
	}
	return width
}

// BFSLevels computes hop counts from root with a standard queue BFS.
func BFSLevels(g *graph.CSR, root graph.VertexID) []Value {
	n := g.NumVertices()
	level := make([]Value, n)
	for i := range level {
		level[i] = Infinity
	}
	level[root] = 0
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range g.Neighbors(v) {
			if level[d] == Infinity {
				level[d] = level[v] + 1
				queue = append(queue, d)
			}
		}
	}
	return level
}

// Reachable returns 0 for vertices reachable from root and ∞ otherwise
// (the literal Table II BFS row's fixed point).
func Reachable(g *graph.CSR, root graph.VertexID) []Value {
	lv := BFSLevels(g, root)
	for i, l := range lv {
		if l != Infinity {
			lv[i] = 0
		}
	}
	return lv
}

// MaxLabelFixedPoint computes the fixed point of max-label forward
// propagation by Bellman-Ford-style sweeps: label(v) = max over v and all
// vertices u with a path u→…→v of id(u). On a symmetrized graph this is
// connected components.
func MaxLabelFixedPoint(g *graph.CSR) []Value {
	n := g.NumVertices()
	label := make([]Value, n)
	for v := range label {
		label[v] = Value(v)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			lv := label[v]
			for _, d := range g.Neighbors(graph.VertexID(v)) {
				if lv > label[d] {
					label[d] = lv
					changed = true
				}
			}
		}
	}
	return label
}

// PageRankPower computes the fixed point of the PageRank-Delta recurrence
// rank(v) = (1-α) + α·Σ_{u→v} rank(u)/N(u) by Jacobi iteration to the given
// tolerance. Solve's PR-Delta converges to the same fixed point up to the
// propagation threshold.
func PageRankPower(g *graph.CSR, alpha, tol float64, maxIter int) []Value {
	n := g.NumVertices()
	rank := make([]Value, n)
	next := make([]Value, n)
	for v := range rank {
		rank[v] = 1 - alpha
	}
	tr := g.Transpose()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VertexID(v))
	}
	for it := 0; it < maxIter; it++ {
		var diff float64
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range tr.Neighbors(graph.VertexID(v)) {
				if deg[u] > 0 {
					sum += rank[u] / float64(deg[u])
				}
			}
			next[v] = (1 - alpha) + alpha*sum
			diff += math.Abs(next[v] - rank[v])
		}
		rank, next = next, rank
		if diff < tol {
			break
		}
	}
	return rank
}

// AdsorptionFixedPoint computes the fixed point of
// value(v) = β·I_v + α·Σ_{u→v} E_uv·value(u) by Jacobi iteration.
func AdsorptionFixedPoint(g *graph.CSR, a *Adsorption, tol float64, maxIter int) []Value {
	n := g.NumVertices()
	val := make([]Value, n)
	next := make([]Value, n)
	inj := func(v graph.VertexID) float64 {
		if a.Injection != nil {
			return a.Injection(v)
		}
		return 1
	}
	for v := range val {
		val[v] = a.Beta * inj(graph.VertexID(v))
	}
	tr := g.Transpose()
	for it := 0; it < maxIter; it++ {
		var diff float64
		for v := 0; v < n; v++ {
			sum := 0.0
			weights := tr.NeighborWeights(graph.VertexID(v))
			for i, u := range tr.Neighbors(graph.VertexID(v)) {
				w := 1.0
				if weights != nil {
					w = float64(weights[i])
				}
				sum += w * val[u]
			}
			next[v] = a.Beta*inj(graph.VertexID(v)) + a.Alpha*sum
			diff += math.Abs(next[v] - val[v])
		}
		val, next = next, val
		if diff < tol {
			break
		}
	}
	return val
}

type heapItem struct {
	v   graph.VertexID
	key Value
}

type vertexHeap struct {
	items  []heapItem
	better func(a, b Value) bool
}

func (h *vertexHeap) Len() int           { return len(h.items) }
func (h *vertexHeap) Less(i, j int) bool { return h.better(h.items[i].key, h.items[j].key) }
func (h *vertexHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *vertexHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *vertexHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// ReferenceSolution returns the independent textbook fixed point for alg on
// g, dispatching on the concrete algorithm type. The second result is false
// for algorithms without a registered oracle (e.g. warm-started wrappers,
// whose equivalence is checked against cold-start engine runs instead).
//
// PageRank and Adsorption oracles iterate far past the engines' propagation
// thresholds (total-change tolerance 1e-12), so oracle error is negligible
// next to the engine-side tolerance budget.
func ReferenceSolution(g *graph.CSR, alg Algorithm) ([]Value, bool) {
	switch a := alg.(type) {
	case *SSSP:
		return DijkstraSSSP(g, a.Root), true
	case *BFS:
		return BFSLevels(g, a.Root), true
	case *Reach:
		return Reachable(g, a.Root), true
	case *ConnectedComponents:
		return MaxLabelFixedPoint(g), true
	case *SSWP:
		return WidestPath(g, a.Root), true
	case *ReliablePath:
		return MostReliablePath(g, a.Root), true
	case *PageRankDelta:
		return PageRankPower(g, a.Alpha, 1e-12, 100_000), true
	case *Adsorption:
		return AdsorptionFixedPoint(g, a, 1e-12, 100_000), true
	}
	return nil, false
}

// MostReliablePath computes max-product path reliabilities from root with a
// Dijkstra-style max-heap (weights must lie in (0,1]).
func MostReliablePath(g *graph.CSR, root graph.VertexID) []Value {
	n := g.NumVertices()
	rel := make([]Value, n)
	rel[root] = 1
	pq := &vertexHeap{items: []heapItem{{v: root, key: 1}}, better: func(a, b Value) bool { return a > b }}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.key < rel[it.v] {
			continue
		}
		weights := g.NeighborWeights(it.v)
		for i, d := range g.Neighbors(it.v) {
			w := Value(1)
			if weights != nil {
				w = Value(weights[i])
			}
			if nr := it.key * w; nr > rel[d] {
				rel[d] = nr
				heap.Push(pq, heapItem{v: d, key: nr})
			}
		}
	}
	return rel
}
