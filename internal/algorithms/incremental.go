package algorithms

import (
	"fmt"

	"graphpulse/internal/graph"
)

// This file implements incremental recomputation after edge insertions —
// the streaming-graph extension the delta-accumulative model makes natural
// (and that follow-on work to the paper develops): instead of recomputing
// from scratch when the graph grows, seed correction events that carry
// exactly the contribution difference introduced by the new edges, warm-
// start from the previous fixed point, and let the ordinary event machinery
// cascade the change.
//
// Monotone path/label algorithms (min/max reduce) need only propagate the
// source's converged value across each new edge. PageRank-style linear
// sums additionally need negative corrections: a new out-edge changes the
// source's out-degree, which rescales the flow on all its existing edges.

// InsertionSeeder is implemented by algorithms that support incremental
// recomputation after edge insertions. SeedInsertions returns the
// correction events for adding `added` edges to old (the pre-update graph)
// given the converged pre-update state.
type InsertionSeeder interface {
	SeedInsertions(old *graph.CSR, added []graph.Edge, state []Value) []InitialEvent
}

// monotoneSeed covers every reduce-min/max algorithm: the new edge simply
// offers the source's converged value, propagated across it.
func monotoneSeed(alg Algorithm, old *graph.CSR, added []graph.Edge, state []Value, degreeDelta map[graph.VertexID]int) []InitialEvent {
	var out []InitialEvent
	for _, e := range added {
		src := state[e.Src]
		if src == alg.Identity() {
			continue // source never reached; the edge carries nothing yet
		}
		newDeg := old.OutDegree(e.Src) + degreeDelta[e.Src]
		d := alg.Propagate(src, EdgeContext{
			Src: e.Src, Dst: e.Dst, Weight: e.Weight, SrcOutDegree: newDeg,
		})
		out = append(out, InitialEvent{Vertex: e.Dst, Delta: d})
	}
	return out
}

func countDegreeDelta(added []graph.Edge) map[graph.VertexID]int {
	dd := make(map[graph.VertexID]int)
	for _, e := range added {
		dd[e.Src]++
	}
	return dd
}

// SeedInsertions implements InsertionSeeder: offer the converged distance
// across each new edge.
func (s *SSSP) SeedInsertions(old *graph.CSR, added []graph.Edge, state []Value) []InitialEvent {
	return monotoneSeed(s, old, added, state, countDegreeDelta(added))
}

// SeedInsertions implements InsertionSeeder.
func (b *BFS) SeedInsertions(old *graph.CSR, added []graph.Edge, state []Value) []InitialEvent {
	return monotoneSeed(b, old, added, state, countDegreeDelta(added))
}

// SeedInsertions implements InsertionSeeder.
func (r *Reach) SeedInsertions(old *graph.CSR, added []graph.Edge, state []Value) []InitialEvent {
	return monotoneSeed(r, old, added, state, countDegreeDelta(added))
}

// SeedInsertions implements InsertionSeeder.
func (s *SSWP) SeedInsertions(old *graph.CSR, added []graph.Edge, state []Value) []InitialEvent {
	return monotoneSeed(s, old, added, state, countDegreeDelta(added))
}

// SeedInsertions implements InsertionSeeder.
func (c *ConnectedComponents) SeedInsertions(old *graph.CSR, added []graph.Edge, state []Value) []InitialEvent {
	return monotoneSeed(c, old, added, state, countDegreeDelta(added))
}

// SeedInsertions implements InsertionSeeder for PageRank-Delta. Adding
// out-edges to u rescales the flow u sends everywhere: each existing
// neighbor's contribution falls from α·r_u/d to α·r_u/d', and each new
// neighbor gains α·r_u/d'. Because the fixed-point equation is linear in
// the contributions, seeding these exact first-order differences and
// cascading through the ordinary propagate/reduce machinery converges to
// the exact new fixed point (up to the local threshold).
func (p *PageRankDelta) SeedInsertions(old *graph.CSR, added []graph.Edge, state []Value) []InitialEvent {
	dd := countDegreeDelta(added)
	var out []InitialEvent
	for u, extra := range dd {
		dOld := old.OutDegree(u)
		dNew := dOld + extra
		// r_u's own retained rank is unchanged; only its outflow rescales.
		ru := state[u]
		if dOld > 0 {
			diff := p.Alpha * ru * (1/float64(dNew) - 1/float64(dOld))
			for _, v := range old.Neighbors(u) {
				out = append(out, InitialEvent{Vertex: v, Delta: diff})
			}
		}
		_ = extra
	}
	for _, e := range added {
		dNew := old.OutDegree(e.Src) + dd[e.Src]
		out = append(out, InitialEvent{
			Vertex: e.Dst,
			Delta:  p.Alpha * state[e.Src] / float64(dNew),
		})
	}
	return out
}

// warmStart wraps an algorithm so engines resume from a previous fixed
// point with externally supplied seed events instead of the cold-start
// initialization.
type warmStart struct {
	Algorithm
	state []Value
	seeds []InitialEvent
}

func (w *warmStart) InitState(v graph.VertexID) Value { return w.state[v] }

func (w *warmStart) InitialEvents(graph.Adjacency) []InitialEvent { return w.seeds }

// WarmStart returns alg reconfigured to resume from `state` with the given
// seed events. The wrapper preserves Progressor and WantsWeights behaviour
// of the inner algorithm through interface embedding.
func WarmStart(alg Algorithm, state []Value, seeds []InitialEvent) Algorithm {
	if p, ok := alg.(Progressor); ok {
		return &warmStartProg{warmStart{alg, state, seeds}, p}
	}
	return &warmStart{alg, state, seeds}
}

type warmStartProg struct {
	warmStart
	p Progressor
}

func (w *warmStartProg) Progress(old, new Value) float64 { return w.p.Progress(old, new) }

// IncrementalAfterInsert prepares the inputs for incrementally updating a
// converged computation after edge insertions: it builds the post-update
// graph and the warm-started algorithm. Run the returned algorithm over
// the returned graph on any engine; the fixed point equals a cold start on
// the new graph.
func IncrementalAfterInsert(alg Algorithm, old *graph.CSR, added []graph.Edge, state []Value) (*graph.CSR, Algorithm, error) {
	seeder, ok := alg.(InsertionSeeder)
	if !ok {
		return nil, nil, fmt.Errorf("algorithms: %s does not support incremental insertion", alg.Name())
	}
	if len(state) != old.NumVertices() {
		return nil, nil, fmt.Errorf("algorithms: state has %d entries for %d vertices", len(state), old.NumVertices())
	}
	seeds := seeder.SeedInsertions(old, added, state)
	edges := old.Edges()
	edges = append(edges, added...)
	newG, err := graph.FromEdges(old.NumVertices(), edges, old.Weighted() || weightsNeeded(alg))
	if err != nil {
		return nil, nil, err
	}
	warmState := append([]Value(nil), state...)
	return newG, WarmStart(alg, warmState, seeds), nil
}

func weightsNeeded(alg Algorithm) bool {
	w, ok := alg.(WantsWeights)
	return ok && w.WantsWeights()
}
