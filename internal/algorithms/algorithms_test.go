package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// testGraphs returns a suite of small graphs with varied shapes.
func testGraphs(t testing.TB) map[string]*graph.CSR {
	t.Helper()
	out := make(map[string]*graph.CSR)
	chain, err := gen.Chain(20, false)
	if err != nil {
		t.Fatal(err)
	}
	out["chain"] = chain
	star, err := gen.Star(30)
	if err != nil {
		t.Fatal(err)
	}
	out["star"] = star
	grid, err := gen.Grid2D(8, 8, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	out["grid"] = grid
	rmat, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 9, EdgeFactor: 8,
		Weighted: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["rmat"] = rmat
	er, err := gen.ErdosRenyi(200, 1000, true, 77)
	if err != nil {
		t.Fatal(err)
	}
	out["er"] = er
	return out
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		NewPageRankDelta(),
		NewAdsorption(),
		NewSSSP(0),
		NewBFS(0),
		NewReach(0),
		NewConnectedComponents(),
		NewSSWP(0),
		NewReliablePath(0),
	}
}

func TestAlgebraicLaws(t *testing.T) {
	samples := []Value{0, 1, -1, 0.5, 3.25, 100, Infinity, math.Inf(-1), 7, -42}
	for _, alg := range allAlgorithms() {
		if err := CheckAlgebraicLaws(alg, samples); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestPropertyReduceLaws(t *testing.T) {
	for _, alg := range allAlgorithms() {
		alg := alg
		f := func(ai, bi, ci int32) bool {
			// Bound the domain to avoid float overflow artifacts; the
			// engines only ever see values of moderate magnitude.
			a := float64(ai) / 1024
			b := float64(bi) / 1024
			c := float64(ci) / 1024
			ab, ba := alg.Reduce(a, b), alg.Reduce(b, a)
			if ab != ba {
				return false
			}
			l := alg.Reduce(alg.Reduce(a, b), c)
			r := alg.Reduce(a, alg.Reduce(b, c))
			// Sum-based reduce is only associative up to FP rounding.
			tol := 1e-9 * math.Max(1, math.Max(math.Abs(l), math.Abs(r)))
			return math.Abs(l-r) <= tol
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestEdgeRecordBytes(t *testing.T) {
	if got := EdgeRecordBytes(NewBFS(0)); got != 4 {
		t.Errorf("BFS edge record = %d, want 4", got)
	}
	if got := EdgeRecordBytes(NewSSSP(0)); got != 8 {
		t.Errorf("SSSP edge record = %d, want 8", got)
	}
	if got := EdgeRecordBytes(NewAdsorption()); got != 8 {
		t.Errorf("Adsorption edge record = %d, want 8", got)
	}
}

func TestSolveSSSPMatchesDijkstra(t *testing.T) {
	for name, g := range testGraphs(t) {
		got := Solve(g, NewSSSP(0)).Values
		want := DijkstraSSSP(g, 0)
		for v := range want {
			if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
				if math.Abs(got[v]-want[v]) > 1e-9 {
					t.Errorf("%s: SSSP[%d] = %g, want %g", name, v, got[v], want[v])
					break
				}
			}
		}
	}
}

func TestSolveBFSMatchesQueueBFS(t *testing.T) {
	for name, g := range testGraphs(t) {
		got := Solve(g, NewBFS(0)).Values
		want := BFSLevels(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("%s: BFS[%d] = %g, want %g", name, v, got[v], want[v])
				break
			}
		}
	}
}

func TestSolveReachMatchesReachable(t *testing.T) {
	for name, g := range testGraphs(t) {
		got := Solve(g, NewReach(0)).Values
		want := Reachable(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("%s: Reach[%d] = %g, want %g", name, v, got[v], want[v])
				break
			}
		}
	}
}

func TestSolveCCMatchesFixedPoint(t *testing.T) {
	for name, g := range testGraphs(t) {
		got := Solve(g, NewConnectedComponents()).Values
		want := MaxLabelFixedPoint(g)
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("%s: CC[%d] = %g, want %g", name, v, got[v], want[v])
				break
			}
		}
	}
}

func TestSolveSSWPMatchesWidestPath(t *testing.T) {
	for name, g := range testGraphs(t) {
		got := Solve(g, NewSSWP(0)).Values
		want := WidestPath(g, 0)
		for v := range want {
			if got[v] != want[v] && math.Abs(got[v]-want[v]) > 1e-9 {
				t.Errorf("%s: SSWP[%d] = %g, want %g", name, v, got[v], want[v])
				break
			}
		}
	}
}

func TestSolvePageRankMatchesPowerIteration(t *testing.T) {
	for name, g := range testGraphs(t) {
		pr := NewPageRankDelta()
		pr.Threshold = 1e-7
		got := Solve(g, pr).Values
		want := PageRankPower(g, pr.Alpha, 1e-12, 10_000)
		for v := range want {
			// The threshold drops deltas below 1e-7; accumulated error per
			// vertex stays within a small multiple of it.
			if math.Abs(got[v]-want[v]) > 1e-4 {
				t.Errorf("%s: PR[%d] = %g, want %g", name, v, got[v], want[v])
				break
			}
		}
	}
}

func TestSolveAdsorptionMatchesFixedPoint(t *testing.T) {
	for name, g := range testGraphs(t) {
		if !g.Weighted() {
			continue
		}
		ng := g.NormalizeInbound()
		ad := NewAdsorption()
		ad.Threshold = 1e-8
		got := Solve(ng, ad).Values
		want := AdsorptionFixedPoint(ng, ad, 1e-12, 10_000)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-4 {
				t.Errorf("%s: ADS[%d] = %g, want %g", name, v, got[v], want[v])
				break
			}
		}
	}
}

func TestPageRankSinkVertices(t *testing.T) {
	// A sink (out-degree 0) must not emit events; its rank is still valid.
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 2, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	pr := NewPageRankDelta()
	res := Solve(g, pr)
	// Vertex 2 receives α·0.15 from both sources.
	want := (1 - pr.Alpha) + 2*pr.Alpha*(1-pr.Alpha)
	if math.Abs(res.Values[2]-want) > 1e-9 {
		t.Errorf("sink rank = %g, want %g", res.Values[2], want)
	}
}

func TestSSSPUnreachableStaysInfinite(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, Weight: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(g, NewSSSP(0))
	if !math.IsInf(res.Values[2], 1) || !math.IsInf(res.Values[3], 1) {
		t.Errorf("unreachable distances = %v", res.Values)
	}
	if res.Values[1] != 2 {
		t.Errorf("dist[1] = %g, want 2", res.Values[1])
	}
}

func TestSSSPNonRootSource(t *testing.T) {
	g, err := gen.Grid2D(5, 5, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	root := graph.VertexID(12)
	got := Solve(g, NewSSSP(root)).Values
	want := DijkstraSSSP(g, root)
	for v := range want {
		if got[v] != want[v] && math.Abs(got[v]-want[v]) > 1e-9 {
			t.Errorf("SSSP from %d: [%d] = %g, want %g", root, v, got[v], want[v])
		}
	}
}

func TestCCOnDisconnectedGraph(t *testing.T) {
	// Two components: {0,1} and {2,3}, symmetric edges.
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 0, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 2, Weight: 1},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	got := Solve(g, NewConnectedComponents()).Values
	want := []Value{1, 1, 3, 3}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("CC[%d] = %g, want %g", v, got[v], want[v])
		}
	}
}

func TestInitialEventsShape(t *testing.T) {
	g, err := gen.Chain(10, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(NewPageRankDelta().InitialEvents(g)); got != 10 {
		t.Errorf("PR initial events = %d, want 10", got)
	}
	if got := len(NewSSSP(3).InitialEvents(g)); got != 1 {
		t.Errorf("SSSP initial events = %d, want 1", got)
	}
	ev := NewBFS(7).InitialEvents(g)
	if len(ev) != 1 || ev[0].Vertex != 7 || ev[0].Delta != 0 {
		t.Errorf("BFS initial events = %+v", ev)
	}
}

func TestNormalizeInbound(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 400, true, 123)
	if err != nil {
		t.Fatal(err)
	}
	ng := g.NormalizeInbound()
	sums := make([]float64, ng.NumVertices())
	for i, d := range ng.Dst {
		sums[d] += float64(ng.Weight[i])
	}
	in := g.InDegrees()
	for v, s := range sums {
		if in[v] == 0 {
			continue
		}
		if math.Abs(s-1) > 1e-5 {
			t.Errorf("inbound weight sum of %d = %g, want 1", v, s)
		}
	}
}

// TestPropertySolveOrderInvariance: coalescing and processing order must not
// change the fixed point. We run Solve on randomly relabeled copies of the
// same graph and map results back.
func TestPropertySolveOrderInvariance(t *testing.T) {
	base, err := gen.ErdosRenyi(60, 240, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	baseDist := Solve(base, NewSSSP(0)).Values
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := base.NumVertices()
		perm := make([]graph.VertexID, n)
		for i, p := range rng.Perm(n) {
			perm[i] = graph.VertexID(p)
		}
		rg, err := base.Relabel(perm)
		if err != nil {
			return false
		}
		got := Solve(rg, NewSSSP(perm[0])).Values
		for v := 0; v < n; v++ {
			a, b := baseDist[v], got[perm[v]]
			if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) {
				continue
			}
			if math.Abs(a-b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSolveActivationCounters(t *testing.T) {
	g, err := gen.Chain(5, false)
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(g, NewBFS(0))
	// Each vertex activates exactly once on a chain; 4 edges emit once each.
	if res.Activations != 5 {
		t.Errorf("Activations = %d, want 5", res.Activations)
	}
	if res.Emitted != 4 {
		t.Errorf("Emitted = %d, want 4", res.Emitted)
	}
}

func TestSolveReliablePathMatchesOracle(t *testing.T) {
	for name, g := range testGraphs(t) {
		if !g.Weighted() {
			continue
		}
		got := Solve(g, NewReliablePath(0)).Values
		want := MostReliablePath(g, 0)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-12 {
				t.Errorf("%s: reliability[%d] = %g, want %g", name, v, got[v], want[v])
				break
			}
		}
	}
}

func TestReliablePathLaws(t *testing.T) {
	if err := CheckAlgebraicLaws(NewReliablePath(0), []Value{0, 0.25, 0.5, 1}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalReliablePath(t *testing.T) {
	g, err := gen.Grid2D(6, 6, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	cold := Solve(g, NewReliablePath(0))
	added := []graph.Edge{{Src: 0, Dst: 35, Weight: 0.99}}
	newG, warm, err := IncrementalAfterInsert(NewReliablePath(0), g, added, cold.Values)
	if err != nil {
		t.Fatal(err)
	}
	incr := Solve(newG, warm)
	want := Solve(newG, NewReliablePath(0))
	for v := range want.Values {
		if math.Abs(incr.Values[v]-want.Values[v]) > 1e-12 {
			t.Fatalf("vertex %d: %g vs %g", v, incr.Values[v], want.Values[v])
		}
	}
}
