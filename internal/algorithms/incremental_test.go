package algorithms

import (
	"math"
	"math/rand"
	"testing"

	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// insertAndCompare converges alg on a base graph, applies incremental
// insertion, and checks the warm-started fixed point equals a cold start on
// the updated graph.
func insertAndCompare(t *testing.T, mk func() Algorithm, tol float64) {
	t.Helper()
	base, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 9, EdgeFactor: 6,
		Weighted: true, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold := Solve(base, mk())

	rng := rand.New(rand.NewSource(3))
	n := base.NumVertices()
	var added []graph.Edge
	for i := 0; i < 200; i++ {
		added = append(added, graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: float32(rng.Float64()*0.9 + 0.1),
		})
	}
	newG, warm, err := IncrementalAfterInsert(mk(), base, added, cold.Values)
	if err != nil {
		t.Fatal(err)
	}
	incr := Solve(newG, warm)
	want := Solve(newG, mk())
	bad := 0
	for v := range want.Values {
		a, b := incr.Values[v], want.Values[v]
		if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsInf(a, -1) && math.IsInf(b, -1)) {
			continue
		}
		t2 := tol * math.Max(1, math.Abs(b))
		if math.Abs(a-b) > t2 {
			bad++
			if bad <= 3 {
				t.Errorf("%s: vertex %d incremental %g, cold %g", mk().Name(), v, a, b)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d/%d mismatches after incremental insert", mk().Name(), bad, n)
	}
	// The incremental run must do (much) less work than the cold start.
	if incr.Activations >= want.Activations {
		t.Errorf("%s: incremental activations %d not below cold %d",
			mk().Name(), incr.Activations, want.Activations)
	}
}

func TestIncrementalSSSP(t *testing.T) {
	insertAndCompare(t, func() Algorithm { return NewSSSP(0) }, 1e-9)
}

func TestIncrementalBFS(t *testing.T) {
	insertAndCompare(t, func() Algorithm { return NewBFS(0) }, 0)
}

func TestIncrementalReach(t *testing.T) {
	insertAndCompare(t, func() Algorithm { return NewReach(0) }, 0)
}

func TestIncrementalSSWP(t *testing.T) {
	insertAndCompare(t, func() Algorithm { return NewSSWP(0) }, 1e-9)
}

func TestIncrementalCC(t *testing.T) {
	insertAndCompare(t, func() Algorithm { return NewConnectedComponents() }, 0)
}

func TestIncrementalPageRank(t *testing.T) {
	// PR's thresholded residue makes it approximate; compare at a loose
	// relative tolerance after tightening the threshold.
	insertAndCompare(t, func() Algorithm {
		pr := NewPageRankDelta()
		pr.Threshold = 1e-7
		return pr
	}, 2e-3)
}

func TestIncrementalEdgeToUnreachedRegion(t *testing.T) {
	// New edge from an UNREACHED source must carry nothing (identity state).
	g, err := gen.Chain(10, false)
	if err != nil {
		t.Fatal(err)
	}
	cold := Solve(g, NewBFS(5)) // vertices 0..4 unreached
	added := []graph.Edge{{Src: 2, Dst: 9, Weight: 1}}
	newG, warm, err := IncrementalAfterInsert(NewBFS(5), g, added, cold.Values)
	if err != nil {
		t.Fatal(err)
	}
	incr := Solve(newG, warm)
	want := Solve(newG, NewBFS(5))
	for v := range want.Values {
		a, b := incr.Values[v], want.Values[v]
		if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
			t.Errorf("vertex %d: %g vs %g", v, a, b)
		}
	}
}

func TestIncrementalBridgingEdge(t *testing.T) {
	// Connect two chains with a new edge: the second chain must be swept by
	// the cascade.
	edges := []graph.Edge{}
	for v := 0; v < 9; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v + 1), Weight: 1})
	}
	for v := 10; v < 19; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v + 1), Weight: 1})
	}
	g, err := graph.FromEdges(20, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	cold := Solve(g, NewSSSP(0))
	if !math.IsInf(cold.Values[15], 1) {
		t.Fatal("second chain unexpectedly reachable")
	}
	added := []graph.Edge{{Src: 4, Dst: 10, Weight: 0.5}}
	newG, warm, err := IncrementalAfterInsert(NewSSSP(0), g, added, cold.Values)
	if err != nil {
		t.Fatal(err)
	}
	incr := Solve(newG, warm)
	if got, want := incr.Values[15], 4+0.5+5.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("dist[15] = %g, want %g", got, want)
	}
}

func TestIncrementalRejectsUnsupported(t *testing.T) {
	g, _ := gen.Chain(5, false)
	if _, _, err := IncrementalAfterInsert(NewAdsorption(), g, nil, make([]Value, 5)); err == nil {
		t.Error("adsorption (no seeder) accepted")
	}
	if _, _, err := IncrementalAfterInsert(NewBFS(0), g, nil, make([]Value, 3)); err == nil {
		t.Error("wrong state length accepted")
	}
}

func TestWarmStartPreservesProgressor(t *testing.T) {
	pr := NewPageRankDelta()
	w := WarmStart(pr, make([]Value, 4), nil)
	p, ok := w.(Progressor)
	if !ok {
		t.Fatal("warm-started PR lost Progressor")
	}
	if p.Progress(1, 3) != 2 {
		t.Error("Progress not delegated")
	}
	b := WarmStart(NewBFS(0), make([]Value, 4), nil)
	if _, ok := b.(Progressor); ok {
		t.Error("warm-started BFS gained Progressor")
	}
}
