package algorithms_test

import (
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph/gen"
)

// BenchmarkSolve is the regression benchmark for the worklist data structure.
// Iterative algorithms re-enqueue every vertex many times; the old
// `worklist = worklist[1:]` pop pinned the consumed prefix of the backing
// array for the whole solve and re-grew it on every lap, so allocs/op here is
// the sentinel: the ring-buffer worklist stays at a handful of allocations
// regardless of how many activations the solve performs.
func BenchmarkSolve(b *testing.B) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Scale: 10, EdgeFactor: 8, Weighted: true, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		alg  algorithms.Algorithm
	}{
		{"pr/rmat", algorithms.NewPageRankDelta()},
		{"sssp/rmat", algorithms.NewSSSP(0)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := algorithms.Solve(g, c.alg)
				if res.Activations == 0 {
					b.Fatal("solve performed no activations")
				}
			}
		})
	}
}

// BenchmarkSolveChain stresses the ring's wraparound: a long chain with a
// rooted algorithm activates vertices in strict sequence, lapping the ring
// once per wavefront hop.
func BenchmarkSolveChain(b *testing.B) {
	g, err := gen.Chain(1<<12, true)
	if err != nil {
		b.Fatal(err)
	}
	alg := algorithms.NewSSSP(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := algorithms.Solve(g, alg)
		if res.Activations == 0 {
			b.Fatal("solve performed no activations")
		}
	}
}
