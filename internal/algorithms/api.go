// Package algorithms defines the delta-accumulative computation model of
// paper Section II-B and the five Table II application mappings (plus two
// extensions), together with a reference worklist solver used as the
// correctness oracle for every engine in the repository.
//
// A computation is expressed by two functions over a value domain:
//
//	reduce ⊕  – commutative, associative accumulation with an identity,
//	propagate – per-edge transformation of a source delta into an
//	            outgoing delta (distributive over ⊕).
//
// A vertex state is updated as v ⊕= δ; if the update changed the state, the
// accumulated delta is propagated along all out-edges. These are exactly the
// properties (Reordering, Simplification) that make in-flight event
// coalescing safe in the GraphPulse queue.
package algorithms

import (
	"math"

	"graphpulse/internal/graph"
)

// Value is the vertex/delta domain. All Table II applications fit float64
// (vertex ids for CC are exactly representable far beyond 2^32).
type Value = float64

// Infinity is the initial distance for path-style algorithms.
var Infinity = math.Inf(1)

// EdgeContext carries the per-edge information a propagate function may use.
type EdgeContext struct {
	Src, Dst graph.VertexID
	// Weight is the edge weight (1 for unweighted graphs).
	Weight float32
	// SrcOutDegree is the out-degree of the source vertex; PageRank-style
	// propagation divides by it.
	SrcOutDegree int
}

// InitialEvent seeds the computation: an initial delta for a vertex
// (paper Section III-A, "Initialization and Termination").
type InitialEvent struct {
	Vertex graph.VertexID
	Delta  Value
}

// Algorithm is a delta-accumulative graph computation. Implementations must
// satisfy, for all values a, b, c:
//
//	Reduce(a,b) == Reduce(b,a)
//	Reduce(Reduce(a,b),c) == Reduce(a,Reduce(b,c))
//	Reduce(Identity(), a) == a
//
// These laws are what make event coalescing and asynchronous scheduling
// correct; they are enforced by property-based tests and by
// CheckAlgebraicLaws.
type Algorithm interface {
	// Name is a short identifier ("pagerank-delta").
	Name() string
	// Identity is the ⊕ identity (0 for +, ∞ for min, -∞ for max).
	Identity() Value
	// Reduce applies ⊕.
	Reduce(a, b Value) Value
	// Propagate maps an accumulated source delta to the outgoing delta for
	// one edge.
	Propagate(delta Value, e EdgeContext) Value
	// InitState is the vertex-memory initialization (Table II's V_init).
	InitState(v graph.VertexID) Value
	// InitialEvents returns the bootstrap event set for g. Implementations
	// read only vertex-level shape (the interface keeps them runnable off
	// the out-of-core store).
	InitialEvents(g graph.Adjacency) []InitialEvent
	// Changed is the local termination condition: it reports whether the
	// state update old→new is significant enough to propagate.
	Changed(old, new Value) bool
}

// Progressor is optionally implemented by algorithms that support the
// global termination condition of Section IV-C: Progress returns the
// per-update contribution to the global progress accumulator.
type Progressor interface {
	Progress(old, new Value) float64
}

// WantsWeights is optionally implemented to declare that propagate reads
// edge weights; engines use it to size simulated edge records (8 bytes with
// weights, 4 without).
type WantsWeights interface {
	WantsWeights() bool
}

// EdgeRecordBytes returns the simulated size of one CSR edge record for alg.
func EdgeRecordBytes(alg Algorithm) uint64 {
	if w, ok := alg.(WantsWeights); ok && w.WantsWeights() {
		return 8 // 4-byte destination id + 4-byte weight
	}
	return 4 // destination id only
}

// CheckAlgebraicLaws verifies commutativity, associativity and identity of
// alg.Reduce on the provided sample values, returning the first violation.
// Engines call it in tests; the accelerator assumes the laws hold.
func CheckAlgebraicLaws(alg Algorithm, samples []Value) error {
	eq := func(a, b Value) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			// NaN arises only from combinations outside the algorithm's
			// domain (e.g. +∞ + -∞ for a sum reduce); skip those.
			return true
		}
		if math.IsInf(a, 0) || math.IsInf(b, 0) || a == 0 || b == 0 {
			return a == b
		}
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	id := alg.Identity()
	for _, a := range samples {
		if got := alg.Reduce(id, a); !eq(got, a) {
			return &LawError{alg.Name(), "identity", []Value{a}, got, a}
		}
		for _, b := range samples {
			ab, ba := alg.Reduce(a, b), alg.Reduce(b, a)
			if !eq(ab, ba) {
				return &LawError{alg.Name(), "commutativity", []Value{a, b}, ab, ba}
			}
			for _, c := range samples {
				l := alg.Reduce(alg.Reduce(a, b), c)
				r := alg.Reduce(a, alg.Reduce(b, c))
				if !eq(l, r) {
					return &LawError{alg.Name(), "associativity", []Value{a, b, c}, l, r}
				}
			}
		}
	}
	return nil
}

// LawError reports an algebraic-law violation found by CheckAlgebraicLaws.
type LawError struct {
	Alg    string
	Law    string
	Inputs []Value
	Got    Value
	Want   Value
}

func (e *LawError) Error() string {
	return "algorithms: " + e.Alg + " violates " + e.Law
}
