package algorithms

import (
	"math"

	"graphpulse/internal/graph"
)

// PageRankDelta is the contribution-based incremental PageRank of Table II
// (commonly "PageRankDelta"): propagate α·δ/N(src), reduce +, V_init 0,
// ΔV_init 1-α. A vertex propagates only while its accumulated change
// exceeds Threshold.
type PageRankDelta struct {
	// Alpha is the damping factor (paper-standard 0.85).
	Alpha float64
	// Threshold is the local termination bound on |Δ|.
	Threshold float64
}

// NewPageRankDelta returns the standard configuration (α=0.85, θ=1e-4).
func NewPageRankDelta() *PageRankDelta {
	return &PageRankDelta{Alpha: 0.85, Threshold: 1e-4}
}

// Name implements Algorithm.
func (p *PageRankDelta) Name() string { return "pagerank-delta" }

// Identity implements Algorithm.
func (p *PageRankDelta) Identity() Value { return 0 }

// Reduce implements Algorithm (sum).
func (p *PageRankDelta) Reduce(a, b Value) Value { return a + b }

// Propagate implements Algorithm: α·δ/N(src).
func (p *PageRankDelta) Propagate(delta Value, e EdgeContext) Value {
	if e.SrcOutDegree == 0 {
		return 0
	}
	return p.Alpha * delta / float64(e.SrcOutDegree)
}

// InitState implements Algorithm: ranks start at 0.
func (p *PageRankDelta) InitState(graph.VertexID) Value { return 0 }

// InitialEvents implements Algorithm: every vertex receives 1-α.
func (p *PageRankDelta) InitialEvents(g graph.Adjacency) []InitialEvent {
	out := make([]InitialEvent, g.NumVertices())
	for v := range out {
		out[v] = InitialEvent{Vertex: graph.VertexID(v), Delta: 1 - p.Alpha}
	}
	return out
}

// Changed implements Algorithm: propagate while |Δ| > Threshold.
func (p *PageRankDelta) Changed(old, new Value) bool {
	return math.Abs(new-old) > p.Threshold
}

// Progress implements Progressor: global progress is Σ|Δ| (Section IV-C's
// PageRank example).
func (p *PageRankDelta) Progress(old, new Value) float64 { return math.Abs(new - old) }

// Adsorption is the label-propagation algorithm of Table II: propagate
// α·E_ij·δ, reduce +, V_init 0, ΔV_init β·I_j. Continuation and injection
// probabilities are uniform here (the paper randomizes edge weights
// instead, which our dataset stand-ins also do).
type Adsorption struct {
	// Alpha is the continuation probability applied on every edge.
	Alpha float64
	// Beta is the injection probability scaling the seed values.
	Beta float64
	// Injection returns I_j, the prior for vertex j. Defaults to 1.
	Injection func(v graph.VertexID) float64
	// Threshold is the local termination bound on |Δ|.
	Threshold float64
}

// NewAdsorption returns the standard configuration (α=0.8, β=0.2, I=1,
// θ=1e-4).
func NewAdsorption() *Adsorption {
	return &Adsorption{Alpha: 0.8, Beta: 0.2, Threshold: 1e-4}
}

// Name implements Algorithm.
func (a *Adsorption) Name() string { return "adsorption" }

// Identity implements Algorithm.
func (a *Adsorption) Identity() Value { return 0 }

// Reduce implements Algorithm (sum).
func (a *Adsorption) Reduce(x, y Value) Value { return x + y }

// Propagate implements Algorithm: α·E_ij·δ.
func (a *Adsorption) Propagate(delta Value, e EdgeContext) Value {
	return a.Alpha * float64(e.Weight) * delta
}

// WantsWeights implements WantsWeights.
func (a *Adsorption) WantsWeights() bool { return true }

// InitState implements Algorithm.
func (a *Adsorption) InitState(graph.VertexID) Value { return 0 }

// InitialEvents implements Algorithm: β·I_j for every vertex.
func (a *Adsorption) InitialEvents(g graph.Adjacency) []InitialEvent {
	out := make([]InitialEvent, g.NumVertices())
	for v := range out {
		inj := 1.0
		if a.Injection != nil {
			inj = a.Injection(graph.VertexID(v))
		}
		out[v] = InitialEvent{Vertex: graph.VertexID(v), Delta: a.Beta * inj}
	}
	return out
}

// Changed implements Algorithm.
func (a *Adsorption) Changed(old, new Value) bool {
	return math.Abs(new-old) > a.Threshold
}

// Progress implements Progressor.
func (a *Adsorption) Progress(old, new Value) float64 { return math.Abs(new - old) }

// SSSP is single-source shortest paths (Table II): propagate E_ij+δ,
// reduce min, V_init ∞, ΔV_init 0 at the root.
type SSSP struct {
	// Root is the source vertex.
	Root graph.VertexID
}

// NewSSSP returns SSSP from the given root.
func NewSSSP(root graph.VertexID) *SSSP { return &SSSP{Root: root} }

// Name implements Algorithm.
func (s *SSSP) Name() string { return "sssp" }

// Identity implements Algorithm.
func (s *SSSP) Identity() Value { return Infinity }

// Reduce implements Algorithm (min).
func (s *SSSP) Reduce(a, b Value) Value { return math.Min(a, b) }

// Propagate implements Algorithm: E_ij + δ.
func (s *SSSP) Propagate(delta Value, e EdgeContext) Value {
	return float64(e.Weight) + delta
}

// WantsWeights implements WantsWeights.
func (s *SSSP) WantsWeights() bool { return true }

// InitState implements Algorithm.
func (s *SSSP) InitState(graph.VertexID) Value { return Infinity }

// InitialEvents implements Algorithm: the root receives distance 0.
func (s *SSSP) InitialEvents(graph.Adjacency) []InitialEvent {
	return []InitialEvent{{Vertex: s.Root, Delta: 0}}
}

// Changed implements Algorithm: any improvement propagates.
func (s *SSSP) Changed(old, new Value) bool { return new < old }

// BFS computes hop levels from a root: propagate δ+1, reduce min, V_init ∞,
// ΔV_init 0 at the root. Table II lists propagate as the constant 0, which
// computes reachability; the evaluation text describes level-style rounds,
// so levels are the default here and Reach provides the literal row.
type BFS struct {
	// Root is the source vertex.
	Root graph.VertexID
}

// NewBFS returns BFS from the given root.
func NewBFS(root graph.VertexID) *BFS { return &BFS{Root: root} }

// Name implements Algorithm.
func (b *BFS) Name() string { return "bfs" }

// Identity implements Algorithm.
func (b *BFS) Identity() Value { return Infinity }

// Reduce implements Algorithm (min).
func (b *BFS) Reduce(x, y Value) Value { return math.Min(x, y) }

// Propagate implements Algorithm: δ + 1.
func (b *BFS) Propagate(delta Value, _ EdgeContext) Value { return delta + 1 }

// InitState implements Algorithm.
func (b *BFS) InitState(graph.VertexID) Value { return Infinity }

// InitialEvents implements Algorithm.
func (b *BFS) InitialEvents(graph.Adjacency) []InitialEvent {
	return []InitialEvent{{Vertex: b.Root, Delta: 0}}
}

// Changed implements Algorithm.
func (b *BFS) Changed(old, new Value) bool { return new < old }

// Reach is the literal Table II BFS row: propagate 0, reduce min, so every
// vertex reachable from the root converges to 0 and the rest stay ∞.
type Reach struct {
	// Root is the source vertex.
	Root graph.VertexID
}

// NewReach returns reachability from the given root.
func NewReach(root graph.VertexID) *Reach { return &Reach{Root: root} }

// Name implements Algorithm.
func (r *Reach) Name() string { return "reach" }

// Identity implements Algorithm.
func (r *Reach) Identity() Value { return Infinity }

// Reduce implements Algorithm (min).
func (r *Reach) Reduce(x, y Value) Value { return math.Min(x, y) }

// Propagate implements Algorithm: the constant 0.
func (r *Reach) Propagate(Value, EdgeContext) Value { return 0 }

// InitState implements Algorithm.
func (r *Reach) InitState(graph.VertexID) Value { return Infinity }

// InitialEvents implements Algorithm.
func (r *Reach) InitialEvents(graph.Adjacency) []InitialEvent {
	return []InitialEvent{{Vertex: r.Root, Delta: 0}}
}

// Changed implements Algorithm.
func (r *Reach) Changed(old, new Value) bool { return new < old }

// ConnectedComponents labels every vertex with the largest vertex id in its
// (weakly, if run on a symmetrized graph) connected component: propagate δ,
// reduce max, V_init -1, ΔV_init j (Table II).
type ConnectedComponents struct{}

// NewConnectedComponents returns the component-labeling algorithm.
func NewConnectedComponents() *ConnectedComponents { return &ConnectedComponents{} }

// Name implements Algorithm.
func (c *ConnectedComponents) Name() string { return "connected-components" }

// Identity implements Algorithm (-∞ for max).
func (c *ConnectedComponents) Identity() Value { return math.Inf(-1) }

// Reduce implements Algorithm (max).
func (c *ConnectedComponents) Reduce(a, b Value) Value { return math.Max(a, b) }

// Propagate implements Algorithm: forward the label unchanged.
func (c *ConnectedComponents) Propagate(delta Value, _ EdgeContext) Value { return delta }

// InitState implements Algorithm: Table II's -1.
func (c *ConnectedComponents) InitState(graph.VertexID) Value { return -1 }

// InitialEvents implements Algorithm: every vertex proposes its own id.
func (c *ConnectedComponents) InitialEvents(g graph.Adjacency) []InitialEvent {
	out := make([]InitialEvent, g.NumVertices())
	for v := range out {
		out[v] = InitialEvent{Vertex: graph.VertexID(v), Delta: Value(v)}
	}
	return out
}

// Changed implements Algorithm.
func (c *ConnectedComponents) Changed(old, new Value) bool { return new > old }

// SSWP is single-source widest path (an extension beyond Table II,
// exercising a min-on-edge/max-on-vertex semiring): propagate min(δ, E_ij),
// reduce max, V_init -∞, ΔV_init ∞ at the root.
type SSWP struct {
	// Root is the source vertex.
	Root graph.VertexID
}

// NewSSWP returns widest-path from the given root.
func NewSSWP(root graph.VertexID) *SSWP { return &SSWP{Root: root} }

// Name implements Algorithm.
func (s *SSWP) Name() string { return "sswp" }

// Identity implements Algorithm.
func (s *SSWP) Identity() Value { return math.Inf(-1) }

// Reduce implements Algorithm (max).
func (s *SSWP) Reduce(a, b Value) Value { return math.Max(a, b) }

// Propagate implements Algorithm: the path width is throttled by each edge.
func (s *SSWP) Propagate(delta Value, e EdgeContext) Value {
	return math.Min(delta, float64(e.Weight))
}

// WantsWeights implements WantsWeights.
func (s *SSWP) WantsWeights() bool { return true }

// InitState implements Algorithm.
func (s *SSWP) InitState(graph.VertexID) Value { return math.Inf(-1) }

// InitialEvents implements Algorithm.
func (s *SSWP) InitialEvents(graph.Adjacency) []InitialEvent {
	return []InitialEvent{{Vertex: s.Root, Delta: Infinity}}
}

// Changed implements Algorithm.
func (s *SSWP) Changed(old, new Value) bool { return new > old }

// ReliablePath is most-reliable path (an extension beyond Table II): edge
// weights in (0,1] are traversal success probabilities, a path's
// reliability is their product, and each vertex converges to the maximum
// reliability of any path from the root: propagate δ·E_ij, reduce max,
// V_init 0, ΔV_init 1 at the root. Multiplication by a positive constant
// distributes over max, so the coalescing laws hold.
type ReliablePath struct {
	// Root is the source vertex.
	Root graph.VertexID
}

// NewReliablePath returns most-reliable-path from the given root.
func NewReliablePath(root graph.VertexID) *ReliablePath { return &ReliablePath{Root: root} }

// Name implements Algorithm.
func (r *ReliablePath) Name() string { return "reliable-path" }

// Identity implements Algorithm (-∞, the true identity for max; vertex
// state still starts at 0 = "unreached", per Table II's style of using a
// domain-specific initial value).
func (r *ReliablePath) Identity() Value { return math.Inf(-1) }

// Reduce implements Algorithm (max).
func (r *ReliablePath) Reduce(a, b Value) Value { return math.Max(a, b) }

// Propagate implements Algorithm: the path reliability decays by each
// edge's success probability.
func (r *ReliablePath) Propagate(delta Value, e EdgeContext) Value {
	return delta * float64(e.Weight)
}

// WantsWeights implements WantsWeights.
func (r *ReliablePath) WantsWeights() bool { return true }

// InitState implements Algorithm.
func (r *ReliablePath) InitState(graph.VertexID) Value { return 0 }

// InitialEvents implements Algorithm: the root is reached with certainty.
func (r *ReliablePath) InitialEvents(graph.Adjacency) []InitialEvent {
	return []InitialEvent{{Vertex: r.Root, Delta: 1}}
}

// Changed implements Algorithm.
func (r *ReliablePath) Changed(old, new Value) bool { return new > old }

// SeedInsertions implements InsertionSeeder.
func (r *ReliablePath) SeedInsertions(old *graph.CSR, added []graph.Edge, state []Value) []InitialEvent {
	return monotoneSeed(r, old, added, state, countDegreeDelta(added))
}
