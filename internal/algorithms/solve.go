package algorithms

import (
	"context"
	"fmt"

	"graphpulse/internal/graph"
	"graphpulse/internal/sim"
)

// SolveResult is the output of the reference solver.
type SolveResult struct {
	// Values is the converged vertex state.
	Values []Value
	// Activations counts vertex updates performed (popped work items).
	Activations int64
	// Emitted counts propagated edge deltas.
	Emitted int64
}

// ctxPollInterval is how many worklist pops elapse between context checks,
// mirroring sim.Engine.RunUntil's polling: a select per pop would dominate
// the loop, and wall-clock deadlines never need finer granularity.
const ctxPollInterval = 1024

// Solve runs alg to convergence with a sequential vertex-coalescing
// worklist — the software embodiment of Algorithm 1 from the paper with a
// FIFO queue and per-vertex coalescing. It is exact (not approximate) given
// the algorithm's algebraic laws, and serves as the golden model that every
// engine (accelerator, Ligra-style, Graphicionado-style) is tested against.
func Solve(g graph.Adjacency, alg Algorithm) *SolveResult {
	res, _ := SolveCtx(nil, g, alg)
	return res
}

// SolveCtx runs like Solve with wall-clock cancellation: when ctx is
// canceled the solve stops and returns an error wrapping sim.ErrCanceled,
// the same sentinel the simulated engines return from RunUntil — so a
// server deadline cancels a native solve and a cycle-level simulation
// through one errors.Is check. A nil ctx disables cancellation and never
// fails.
func SolveCtx(ctx context.Context, g graph.Adjacency, alg Algorithm) (*SolveResult, error) {
	n := g.NumVertices()
	if n == 0 {
		return &SolveResult{Values: []Value{}}, nil
	}
	state := make([]Value, n)
	acc := make([]Value, n)
	inList := make([]bool, n)
	id := alg.Identity()
	for v := 0; v < n; v++ {
		state[v] = alg.InitState(graph.VertexID(v))
		acc[v] = id
	}
	// Fixed-capacity ring FIFO: inList guarantees each vertex occupies at
	// most one slot, so n slots suffice. (A `worklist = worklist[1:]` pop
	// would pin the consumed prefix of the backing array for the whole solve
	// and force append to grow a fresh array once the tail passes cap.)
	ring := make([]graph.VertexID, n)
	head, count := 0, 0
	push := func(v graph.VertexID, d Value) {
		acc[v] = alg.Reduce(acc[v], d)
		if !inList[v] {
			inList[v] = true
			tail := head + count
			if tail >= n {
				tail -= n
			}
			ring[tail] = v
			count++
		}
	}
	for _, ev := range alg.InitialEvents(g) {
		push(ev.Vertex, ev.Delta)
	}
	res := &SolveResult{}
	for count > 0 {
		if ctx != nil && res.Activations%ctxPollInterval == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("%w after %d activations: %v", sim.ErrCanceled, res.Activations, ctx.Err())
			default:
			}
		}
		v := ring[head]
		if head++; head == n {
			head = 0
		}
		count--
		inList[v] = false
		delta := acc[v]
		acc[v] = id
		old := state[v]
		next := alg.Reduce(old, delta)
		state[v] = next
		res.Activations++
		if !alg.Changed(old, next) {
			continue
		}
		deg := g.OutDegree(v)
		weights := g.NeighborWeights(v)
		for i, d := range g.Neighbors(v) {
			w := float32(1)
			if weights != nil {
				w = weights[i]
			}
			out := alg.Propagate(delta, EdgeContext{
				Src: v, Dst: d, Weight: w, SrcOutDegree: deg,
			})
			res.Emitted++
			push(d, out)
		}
	}
	res.Values = state
	return res, nil
}
