package algorithms

import (
	"graphpulse/internal/graph"
)

// SolveResult is the output of the reference solver.
type SolveResult struct {
	// Values is the converged vertex state.
	Values []Value
	// Activations counts vertex updates performed (popped work items).
	Activations int64
	// Emitted counts propagated edge deltas.
	Emitted int64
}

// Solve runs alg to convergence with a sequential vertex-coalescing
// worklist — the software embodiment of Algorithm 1 from the paper with a
// FIFO queue and per-vertex coalescing. It is exact (not approximate) given
// the algorithm's algebraic laws, and serves as the golden model that every
// engine (accelerator, Ligra-style, Graphicionado-style) is tested against.
func Solve(g *graph.CSR, alg Algorithm) *SolveResult {
	n := g.NumVertices()
	state := make([]Value, n)
	acc := make([]Value, n)
	inList := make([]bool, n)
	id := alg.Identity()
	for v := 0; v < n; v++ {
		state[v] = alg.InitState(graph.VertexID(v))
		acc[v] = id
	}
	worklist := make([]graph.VertexID, 0, n)
	push := func(v graph.VertexID, d Value) {
		acc[v] = alg.Reduce(acc[v], d)
		if !inList[v] {
			inList[v] = true
			worklist = append(worklist, v)
		}
	}
	for _, ev := range alg.InitialEvents(g) {
		push(ev.Vertex, ev.Delta)
	}
	res := &SolveResult{}
	for len(worklist) > 0 {
		v := worklist[0]
		worklist = worklist[1:]
		inList[v] = false
		delta := acc[v]
		acc[v] = id
		old := state[v]
		next := alg.Reduce(old, delta)
		state[v] = next
		res.Activations++
		if !alg.Changed(old, next) {
			continue
		}
		deg := g.OutDegree(v)
		weights := g.NeighborWeights(v)
		for i, d := range g.Neighbors(v) {
			w := float32(1)
			if weights != nil {
				w = weights[i]
			}
			out := alg.Propagate(delta, EdgeContext{
				Src: v, Dst: d, Weight: w, SrcOutDegree: deg,
			})
			res.Emitted++
			push(d, out)
		}
	}
	res.Values = state
	return res
}
