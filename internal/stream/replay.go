package stream

import (
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
)

// SolveFunc runs one algorithm over one graph to its fixed point — the
// engine under test (serial Solve, psolve, …) adapted to a plain function
// so the Replayer stays engine-agnostic.
type SolveFunc func(g *graph.CSR, alg algorithms.Algorithm) ([]float64, error)

// Replayer drives one (algorithm, engine) pair through a mutation
// sequence the way the serving tier does: after every epoch it holds the
// warm-continued state, chosen per mutation the same way serve's compute
// path chooses it — insertion seeding when the epoch only added edges,
// the deletion cone when anything was removed, full replay when the cone
// is too large. Differential tests compare State() against a cold solve
// of Graph() after every epoch.
//
// A Replayer is single-writer and not concurrency-safe.
type Replayer struct {
	mk          func() algorithms.Algorithm
	solve       SolveFunc
	maxConeFrac float64

	log      *Log
	g        *graph.CSR
	weighted bool
	state    []float64

	// Epoch counts applied mutations (0 = the base graph).
	Epoch uint64
	// SeedStarts, ConeStarts, Replays count how each epoch re-converged;
	// LastMode names the most recent choice ("cold", "seed", "cone",
	// "replay").
	SeedStarts, ConeStarts, Replays int
	LastMode                        string
}

// NewReplayer builds a Replayer over base. maxConeFrac ≤ 0 selects
// DefaultMaxConeFraction. The base edges are permanent: window expiry
// never removes them (user deletes do).
func NewReplayer(base *graph.CSR, mk func() algorithms.Algorithm, solve SolveFunc, maxConeFrac float64) *Replayer {
	return &Replayer{
		mk:          mk,
		solve:       solve,
		maxConeFrac: maxConeFrac,
		log:         NewLog(base.Edges()),
		g:           base,
		weighted:    base.Weighted(),
	}
}

// Graph returns the current materialized graph.
func (r *Replayer) Graph() *graph.CSR { return r.g }

// State returns the converged per-vertex values for the current epoch,
// cold-solving lazily on first use. Callers must not modify the slice.
func (r *Replayer) State() ([]float64, error) {
	if r.state == nil {
		vals, err := r.solve(r.g, r.mk())
		if err != nil {
			return nil, err
		}
		r.state = vals
		r.LastMode = "cold"
	}
	return r.state, nil
}

// Apply ingests one mutation epoch: insert ins (timestamped at), then
// delete every live edge matching a (Src, Dst) pair in dels, rebuild the
// graph, and re-converge through the warm path.
func (r *Replayer) Apply(ins, dels []graph.Edge, at time.Time) error {
	if _, err := r.State(); err != nil {
		return err
	}
	ins = NormalizeWeights(ins, r.weighted)
	r.log.Append(ins, at)
	removed, _ := r.log.Remove(dels)
	return r.reconverge(ins, removed)
}

// Expire removes every timestamped edge older than horizon at time now
// and re-converges; it returns how many edges aged out (0 = no new
// epoch).
func (r *Replayer) Expire(now time.Time, horizon time.Duration) (int, error) {
	if _, err := r.State(); err != nil {
		return 0, err
	}
	removed := r.log.Expire(now, horizon)
	if len(removed) == 0 {
		return 0, nil
	}
	return len(removed), r.reconverge(nil, removed)
}

// reconverge rebuilds the graph from the log and warm-continues the state
// across the (added, removed) change.
func (r *Replayer) reconverge(added, removed []graph.Edge) error {
	old := r.g
	ng, err := graph.FromEdges(old.NumVertices(), r.log.Edges(), r.weighted)
	if err != nil {
		return err
	}
	alg := r.mk()
	var runAlg algorithms.Algorithm
	if len(removed) == 0 {
		if seeder, ok := alg.(algorithms.InsertionSeeder); ok {
			warm := append([]float64(nil), r.state...)
			seeds := seeder.SeedInsertions(old, added, warm)
			runAlg = algorithms.WarmStart(alg, warm, seeds)
			r.SeedStarts++
			r.LastMode = "seed"
		}
	}
	if runAlg == nil {
		plan, err := PlanRestart(alg, ng, added, removed, r.state, r.maxConeFrac)
		if err != nil {
			return err
		}
		if plan.Replay {
			runAlg = alg
			r.Replays++
			r.LastMode = "replay"
		} else {
			runAlg = algorithms.WarmStart(alg, plan.State, plan.Seeds)
			r.ConeStarts++
			r.LastMode = "cone"
		}
	}
	vals, err := r.solve(ng, runAlg)
	if err != nil {
		return err
	}
	r.g, r.state = ng, vals
	r.Epoch++
	return nil
}
