package stream

import (
	"fmt"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
)

// DefaultMaxConeFraction is the cone-size cutoff used when a caller passes
// a non-positive fraction to PlanRestart: once more than half the vertices
// need a reset, a selective restart re-solves most of the graph anyway and
// a full replay is both simpler and cheaper.
const DefaultMaxConeFraction = 0.5

// Plan is the outcome of PlanRestart: either a warm continuation (State +
// Seeds to run through algorithms.WarmStart on the new graph) or the
// decision to replay from scratch.
type Plan struct {
	// Replay reports that the dependency cone exceeded the configured
	// fraction of the vertex set; State and Seeds are nil and the caller
	// should cold-solve the new graph.
	Replay bool
	// ConeSize is the number of vertices whose state the plan resets
	// (reported even when Replay is true, for observability).
	ConeSize int
	// State is the warm per-vertex state: converged values outside the
	// cone, cold-start InitState inside it.
	State []float64
	// Seeds are the initial events that restart the computation: boundary
	// contributions crossing into the cone plus the algorithm's own
	// bootstrap events for cone vertices.
	Seeds []algorithms.InitialEvent
}

// PlanRestart computes a selective-restart plan for re-converging alg
// after the edge-set change (added, removed) produced newG, given the
// state converged before the change.
//
// The dependency cone is the set of vertices whose pre-change value may be
// stale: the heads of every removed edge (they lost a contribution), the
// heads of every added edge (they gained one), for degree-sensitive
// propagation (PageRank-style division by the source out-degree) every
// surviving out-neighbor of a source whose degree changed — closed under
// out-edge reachability in the new graph, because a stale value may have
// been forwarded anywhere downstream.
//
// Closure under new-graph out-edges gives the two properties the warm
// start relies on: no vertex outside the cone has any in-edge from inside
// it (so the frozen outside values receive no events during
// re-convergence), and every outside vertex's fixed-point equation over
// the new graph involves only outside vertices with unchanged in-edge
// sets and source degrees (so those values are still exact). Cone
// vertices are reset to InitState and re-converge from the boundary
// contributions of their surviving outside in-edges plus the filtered
// bootstrap events — a cold solve of the cone subproblem with exact
// boundary conditions.
//
// maxConeFrac (≤0 means DefaultMaxConeFraction) caps the cone: above
// maxConeFrac·n the plan is a replay.
func PlanRestart(alg algorithms.Algorithm, newG *graph.CSR, added, removed []graph.Edge, state []float64, maxConeFrac float64) (*Plan, error) {
	n := newG.NumVertices()
	if len(state) != n {
		return nil, fmt.Errorf("stream: state has %d entries for %d vertices", len(state), n)
	}
	if maxConeFrac <= 0 {
		maxConeFrac = DefaultMaxConeFraction
	}
	for _, e := range append(append([]graph.Edge(nil), added...), removed...) {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("stream: edge %d->%d outside vertex set (n=%d)", e.Src, e.Dst, n)
		}
	}

	inCone := make([]bool, n)
	var frontier []graph.VertexID
	mark := func(v graph.VertexID) {
		if !inCone[v] {
			inCone[v] = true
			frontier = append(frontier, v)
		}
	}
	for _, e := range removed {
		mark(e.Dst)
	}
	for _, e := range added {
		mark(e.Dst)
	}
	if degreeSensitive(alg) {
		// A changed out-degree rescales the source's flow on every
		// surviving edge, so all its current out-neighbors are stale too.
		seen := make(map[graph.VertexID]bool)
		for _, e := range removed {
			seen[e.Src] = true
		}
		for _, e := range added {
			seen[e.Src] = true
		}
		for src := range seen {
			for _, v := range newG.Neighbors(src) {
				mark(v)
			}
		}
	}
	// Close under new-graph out-edges: stale values may have cascaded.
	for i := 0; i < len(frontier); i++ {
		for _, w := range newG.Neighbors(frontier[i]) {
			mark(w)
		}
	}

	cone := len(frontier)
	if float64(cone) > maxConeFrac*float64(n) {
		return &Plan{Replay: true, ConeSize: cone}, nil
	}

	warm := append([]float64(nil), state...)
	for _, v := range frontier {
		warm[v] = alg.InitState(v)
	}

	identity := alg.Identity()
	var seeds []algorithms.InitialEvent
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		if inCone[uid] || state[uid] == identity {
			// In-cone sources contribute through ordinary propagation as
			// they re-converge; identity-valued sources carry nothing (and
			// for constant-propagate algorithms like Reach, forwarding an
			// unreached source would fabricate reachability).
			continue
		}
		deg := newG.OutDegree(uid)
		nbrs := newG.Neighbors(uid)
		weights := newG.NeighborWeights(uid)
		for i, v := range nbrs {
			if !inCone[v] {
				continue
			}
			w := float32(1)
			if weights != nil {
				w = weights[i]
			}
			d := alg.Propagate(state[uid], algorithms.EdgeContext{
				Src: uid, Dst: v, Weight: w, SrcOutDegree: deg,
			})
			if d == identity {
				continue
			}
			seeds = append(seeds, algorithms.InitialEvent{Vertex: v, Delta: d})
		}
	}
	for _, ev := range alg.InitialEvents(newG) {
		if inCone[ev.Vertex] {
			seeds = append(seeds, ev)
		}
	}
	return &Plan{ConeSize: cone, State: warm, Seeds: seeds}, nil
}

// degreeSensitive probes whether alg's propagation depends on the source
// out-degree (PageRank-style division). A behavioral probe keeps the
// planner decoupled from the concrete algorithm set.
func degreeSensitive(alg algorithms.Algorithm) bool {
	a := alg.Propagate(1, algorithms.EdgeContext{Weight: 1, SrcOutDegree: 1})
	b := alg.Propagate(1, algorithms.EdgeContext{Weight: 1, SrcOutDegree: 2})
	return a != b
}
