package stream

import (
	"testing"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
)

// Monotone algorithms must agree with a cold solve exactly (the
// repository's tolerance policy in internal/conformance assigns them
// tolerance 0); the sum-based algorithms are compared there, under the
// shared policy, not here.

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.CSR {
	t.Helper()
	g, err := graph.FromEdges(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func exactMatch(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] && !(isInf(got[v]) && isInf(want[v])) {
			t.Fatalf("%s: vertex %d = %g, want %g", label, v, got[v], want[v])
		}
	}
}

func isInf(v float64) bool { return v > 1e300 || v < -1e300 }

// applyPlan runs the warm continuation a plan describes and returns the
// re-converged values.
func applyPlan(t *testing.T, alg algorithms.Algorithm, newG *graph.CSR, plan *Plan) []float64 {
	t.Helper()
	if plan.Replay {
		t.Fatalf("plan unexpectedly demands a replay (cone %d)", plan.ConeSize)
	}
	warm := algorithms.WarmStart(alg, plan.State, plan.Seeds)
	return algorithms.Solve(newG, warm).Values
}

func TestPlanRestartDeleteShortcutSSSP(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 with a cheap shortcut 0 -> 3. Deleting the shortcut
	// must re-route 3 (and only 3's cone) onto the long path.
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 0, Dst: 3, Weight: 0.5},
	}
	old := mustGraph(t, 5, edges)
	removed := []graph.Edge{{Src: 0, Dst: 3, Weight: 0.5}}
	newG := mustGraph(t, 5, edges[:3])

	alg := algorithms.NewSSSP(0)
	state := algorithms.Solve(old, alg).Values
	if state[3] != 0.5 {
		t.Fatalf("precondition: converged distance to 3 is %g, want 0.5 via the shortcut", state[3])
	}

	plan, err := PlanRestart(algorithms.NewSSSP(0), newG, nil, removed, state, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The cone is exactly {3} (3 has no out-edges), leaving 0..2 frozen.
	if plan.ConeSize != 1 {
		t.Fatalf("cone size = %d, want 1", plan.ConeSize)
	}
	got := applyPlan(t, algorithms.NewSSSP(0), newG, plan)
	exactMatch(t, "sssp after shortcut delete", got, algorithms.Solve(newG, algorithms.NewSSSP(0)).Values)
	if got[3] != 3 {
		t.Fatalf("distance to 3 = %g, want 3 via the long path", got[3])
	}
}

func TestPlanRestartReachDeleteDoesNotFabricateReachability(t *testing.T) {
	// Reach propagates the constant 0 ("reached"), so a naive boundary
	// seeding that forwards an unreached (identity-valued) source would
	// wrongly mark the cone reached. Deleting the only bridge must leave
	// the downstream side unreached.
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 3, Dst: 2, Weight: 1}, // in-edge into the cone from unreached 3
	}
	old := mustGraph(t, 4, edges)
	removed := []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}
	newG := mustGraph(t, 4, edges[1:])

	state := algorithms.Solve(old, algorithms.NewReach(0)).Values
	plan, err := PlanRestart(algorithms.NewReach(0), newG, nil, removed, state, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := applyPlan(t, algorithms.NewReach(0), newG, plan)
	exactMatch(t, "reach after bridge delete", got, algorithms.Solve(newG, algorithms.NewReach(0)).Values)
	if !isInf(got[1]) || !isInf(got[2]) {
		t.Fatalf("vertices 1,2 = %g,%g after losing the bridge, want unreached", got[1], got[2])
	}
}

func TestPlanRestartMixedInsertDeleteCC(t *testing.T) {
	// Connected components (max-label propagation): moving an edge changes
	// which high label floods where.
	oldEdges := []graph.Edge{
		{Src: 5, Dst: 0, Weight: 1}, {Src: 0, Dst: 1, Weight: 1}, {Src: 2, Dst: 3, Weight: 1},
	}
	old := mustGraph(t, 6, oldEdges)
	removed := []graph.Edge{{Src: 5, Dst: 0, Weight: 1}}
	added := []graph.Edge{{Src: 5, Dst: 3, Weight: 1}}
	newG := mustGraph(t, 6, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 2, Dst: 3, Weight: 1}, {Src: 5, Dst: 3, Weight: 1},
	})

	state := algorithms.Solve(old, algorithms.NewConnectedComponents()).Values
	plan, err := PlanRestart(algorithms.NewConnectedComponents(), newG, added, removed, state, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := applyPlan(t, algorithms.NewConnectedComponents(), newG, plan)
	exactMatch(t, "cc after edge move", got,
		algorithms.Solve(newG, algorithms.NewConnectedComponents()).Values)
}

func TestPlanRestartReplayFallback(t *testing.T) {
	// A chain's head feeds everything downstream: deleting its first edge
	// puts nearly every vertex in the cone, tripping the replay cutoff.
	var edges []graph.Edge
	for i := 0; i < 9; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Weight: 1})
	}
	old := mustGraph(t, 10, edges)
	state := algorithms.Solve(old, algorithms.NewSSSP(0)).Values
	newG := mustGraph(t, 10, edges[1:])

	plan, err := PlanRestart(algorithms.NewSSSP(0), newG, nil, edges[:1], state, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Replay {
		t.Fatalf("cone of %d/10 vertices did not trip the 0.3 replay cutoff", plan.ConeSize)
	}
	if plan.ConeSize != 9 {
		t.Fatalf("cone size = %d, want 9 (every vertex downstream of the cut)", plan.ConeSize)
	}
}

func TestPlanRestartRejectsBadInput(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	if _, err := PlanRestart(algorithms.NewSSSP(0), g, nil, nil, make([]float64, 2), 0); err == nil {
		t.Fatal("state/vertex-count mismatch accepted")
	}
	if _, err := PlanRestart(algorithms.NewSSSP(0), g, nil,
		[]graph.Edge{{Src: 9, Dst: 0}}, make([]float64, 3), 0); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestReplayerSequenceMatchesColdOracle(t *testing.T) {
	base := mustGraph(t, 8, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2},
		{Src: 0, Dst: 3, Weight: 4}, {Src: 3, Dst: 4, Weight: 1},
	})
	mk := func() algorithms.Algorithm { return algorithms.NewSSSP(0) }
	solve := func(g *graph.CSR, alg algorithms.Algorithm) ([]float64, error) {
		return algorithms.Solve(g, alg).Values, nil
	}
	r := NewReplayer(base, mk, solve, 0.9)

	steps := []struct {
		name string
		run  func() error
	}{
		{"insert shortcut", func() error {
			return r.Apply([]graph.Edge{{Src: 2, Dst: 4, Weight: 0.5}}, nil, time.Unix(1, 0))
		}},
		{"delete shortcut", func() error {
			return r.Apply(nil, []graph.Edge{{Src: 2, Dst: 4}}, time.Unix(2, 0))
		}},
		{"insert two, delete base edge", func() error {
			return r.Apply(
				[]graph.Edge{{Src: 4, Dst: 5, Weight: 1}, {Src: 5, Dst: 6, Weight: 1}},
				[]graph.Edge{{Src: 0, Dst: 3}}, time.Unix(3, 0))
		}},
	}
	for _, step := range steps {
		if err := step.run(); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		got, err := r.State()
		if err != nil {
			t.Fatal(err)
		}
		exactMatch(t, step.name, got, algorithms.Solve(r.Graph(), mk()).Values)
	}

	// Window expiry: the timestamped inserts age out, the base edges stay.
	n, err := r.Expire(time.Unix(100, 0), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("expired %d edges, want the 2 surviving timestamped inserts", n)
	}
	got, err := r.State()
	if err != nil {
		t.Fatal(err)
	}
	exactMatch(t, "after expiry", got, algorithms.Solve(r.Graph(), mk()).Values)
	if r.ConeStarts == 0 || r.SeedStarts == 0 {
		t.Fatalf("mode counters: seed=%d cone=%d replay=%d — expected both warm paths exercised",
			r.SeedStarts, r.ConeStarts, r.Replays)
	}
}
