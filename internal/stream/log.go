package stream

import (
	"time"

	"graphpulse/internal/graph"
)

// TimedEdge is one live edge with its ingest timestamp. A zero At marks a
// permanent edge (part of the loaded base graph): user deletes remove it,
// window expiry never does.
type TimedEdge struct {
	Edge graph.Edge
	At   time.Time
}

// Log is the live edge set of one streaming graph, in ingest order, with
// per-edge timestamps driving the sliding-window mode. It is not
// concurrency-safe; callers serialize through their own write lock.
type Log struct {
	edges []TimedEdge
}

// NewLog builds a log whose initial entries are base, marked permanent.
func NewLog(base []graph.Edge) *Log {
	l := &Log{edges: make([]TimedEdge, len(base))}
	for i, e := range base {
		l.edges[i] = TimedEdge{Edge: e}
	}
	return l
}

// Len returns the number of live edges.
func (l *Log) Len() int { return len(l.edges) }

// Append ingests a batch at the given timestamp.
func (l *Log) Append(batch []graph.Edge, at time.Time) {
	for _, e := range batch {
		l.edges = append(l.edges, TimedEdge{Edge: e, At: at})
	}
}

// Remove deletes live edges by endpoint: each (Src, Dst) in batch removes
// every live edge with those endpoints, regardless of weight or ingest
// time (permanent base edges included). It returns the edges actually
// removed and the count of batch entries that matched nothing. Duplicate
// (Src, Dst) pairs within one batch: the first removes everything, the
// rest miss.
func (l *Log) Remove(batch []graph.Edge) (removed []graph.Edge, missed int) {
	if len(batch) == 0 {
		return nil, 0
	}
	type key struct{ src, dst graph.VertexID }
	want := make(map[key]bool, len(batch))
	hit := make(map[key]bool, len(batch))
	for _, e := range batch {
		want[key{e.Src, e.Dst}] = true
	}
	kept := l.edges[:0]
	for _, te := range l.edges {
		k := key{te.Edge.Src, te.Edge.Dst}
		if want[k] {
			removed = append(removed, te.Edge)
			hit[k] = true
			continue
		}
		kept = append(kept, te)
	}
	l.edges = kept
	for _, e := range batch {
		k := key{e.Src, e.Dst}
		if !hit[k] {
			missed++
			hit[k] = true // count each distinct missing pair once
		}
	}
	return removed, missed
}

// RemoveExact removes, for each batch entry, exactly one live edge with
// the same (Src, Dst, Weight) — oldest first — and returns how many were
// removed. This is the exact-multiset removal WAL replay needs: the
// replayed record already names the removed edges, so endpoint-matching
// removal (Remove) would take out extra edges sharing endpoints with an
// expired or deleted one. Entries matching no live edge are ignored.
func (l *Log) RemoveExact(batch []graph.Edge) int {
	if len(batch) == 0 {
		return 0
	}
	need := make(map[graph.Edge]int, len(batch))
	for _, e := range batch {
		need[e]++
	}
	removed := 0
	kept := l.edges[:0]
	for _, te := range l.edges {
		if need[te.Edge] > 0 {
			need[te.Edge]--
			removed++
			continue
		}
		kept = append(kept, te)
	}
	l.edges = kept
	return removed
}

// Expire removes every timestamped edge older than horizon at time now
// and returns the expired edges (nil when nothing aged out). Permanent
// base edges never expire.
func (l *Log) Expire(now time.Time, horizon time.Duration) []graph.Edge {
	if horizon <= 0 {
		return nil
	}
	cutoff := now.Add(-horizon)
	var expired []graph.Edge
	kept := l.edges[:0]
	for _, te := range l.edges {
		if !te.At.IsZero() && te.At.Before(cutoff) {
			expired = append(expired, te.Edge)
			continue
		}
		kept = append(kept, te)
	}
	l.edges = kept
	return expired
}

// Edges returns a copy of the live edge set in ingest order, ready for
// graph.FromEdges.
func (l *Log) Edges() []graph.Edge {
	out := make([]graph.Edge, len(l.edges))
	for i, te := range l.edges {
		out[i] = te.Edge
	}
	return out
}

// NormalizeWeights reconciles an insertion batch with the graph's weight
// mode: materializing an unweighted CSR drops edge weights (every edge
// costs 1), so warm-start seeding must see weight 1 too, or the seeded
// corrections diverge from the graph the solver actually runs on. Returns
// batch unchanged for weighted graphs; otherwise a copy with unit
// weights.
func NormalizeWeights(batch []graph.Edge, weighted bool) []graph.Edge {
	if weighted || len(batch) == 0 {
		return batch
	}
	out := make([]graph.Edge, len(batch))
	for i, e := range batch {
		e.Weight = 1
		out[i] = e
	}
	return out
}
