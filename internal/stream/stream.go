// Package stream is the mutation side of the streaming-graph story: it
// turns arbitrary edge-set changes — insertions, deletions, and age-based
// window expirations — into warm-start plans the delta-accumulative
// engines can resume from, instead of recomputing every fixed point from
// scratch.
//
// Insertions are easy for the delta model (seed the contribution the new
// edge carries; see algorithms.InsertionSeeder). Deletions are the classic
// hard case: a min/max fixed point may have committed to a value that only
// the removed edge justified, and no single correction event can retract
// it. This package implements the standard recovery: compute the
// dependency cone — the set of vertices whose converged value may have
// depended on any removed contribution — reset exactly those vertices to
// their cold-start state, and re-seed them from the surviving in-edges
// that cross the cone boundary. Everything outside the cone keeps its
// converged value and is provably unaffected (see PlanRestart). When the
// cone covers most of the graph the selective restart buys nothing, so
// the plan degrades to a full replay (cold solve) instead.
//
// The three pieces:
//
//   - PlanRestart — the cone planner: (algorithm, new graph, added,
//     removed, converged state) → warm state + seed events, or a replay
//     decision.
//   - Log — a timestamped edge log implementing the sliding-window graph
//     mode: edges carry ingest times and expire by age; expirations feed
//     the same deletion path.
//   - Replayer — a single-writer harness that drives one (algorithm,
//     engine) pair through a mutation sequence the way an online server
//     would, exposing the warm state after every epoch so differential
//     tests can hold it against a cold-solve oracle.
package stream
