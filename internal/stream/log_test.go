package stream

import (
	"testing"
	"time"

	"graphpulse/internal/graph"
)

func e(src, dst int) graph.Edge {
	return graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst), Weight: 1}
}

func TestLogRemoveMatchesAllLiveCopies(t *testing.T) {
	l := NewLog([]graph.Edge{e(0, 1), e(1, 2)})
	l.Append([]graph.Edge{e(0, 1), e(2, 3)}, time.Unix(10, 0))

	removed, missed := l.Remove([]graph.Edge{e(0, 1), e(5, 6)})
	if len(removed) != 2 {
		t.Fatalf("removed %d edges, want 2 (both live copies of 0->1)", len(removed))
	}
	if missed != 1 {
		t.Fatalf("missed = %d, want 1 (5->6 is not live)", missed)
	}
	if l.Len() != 2 {
		t.Fatalf("log has %d edges after removal, want 2", l.Len())
	}

	// A duplicate delete of the same pair in a later batch misses.
	_, missed = l.Remove([]graph.Edge{e(0, 1)})
	if missed != 1 {
		t.Fatalf("re-delete missed = %d, want 1", missed)
	}
}

func TestLogRemoveCountsDuplicateMissOnce(t *testing.T) {
	l := NewLog([]graph.Edge{e(0, 1)})
	removed, missed := l.Remove([]graph.Edge{e(4, 4), e(4, 4)})
	if len(removed) != 0 || missed != 1 {
		t.Fatalf("removed=%d missed=%d, want 0 removed and the duplicate miss counted once", len(removed), missed)
	}
}

func TestLogExpireSparesPermanentEdges(t *testing.T) {
	l := NewLog([]graph.Edge{e(0, 1)})
	l.Append([]graph.Edge{e(1, 2)}, time.Unix(100, 0))
	l.Append([]graph.Edge{e(2, 3)}, time.Unix(200, 0))

	expired := l.Expire(time.Unix(260, 0), 100*time.Second)
	if len(expired) != 1 || expired[0].Dst != 2 {
		t.Fatalf("expired %v, want exactly the edge ingested at t=100", expired)
	}
	if l.Len() != 2 {
		t.Fatalf("log has %d edges, want 2 (permanent 0->1 and fresh 2->3)", l.Len())
	}
	if got := l.Expire(time.Unix(1e6, 0), 100*time.Second); len(got) != 1 {
		t.Fatalf("second sweep expired %d edges, want 1 (only the timestamped one)", len(got))
	}
	if l.Len() != 1 {
		t.Fatalf("permanent edge expired: %d live edges, want 1", l.Len())
	}
}
