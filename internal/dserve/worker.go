package dserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphpulse/internal/atomicio"
	"graphpulse/internal/serve"
)

// WorkerConfig describes a Worker wrapping one serve.Server.
type WorkerConfig struct {
	// Server is the wrapped single-process serving instance. Required.
	Server *serve.Server
	// RouterURL is the router's base URL. Empty runs the worker standalone:
	// no registration, no peer sync, but local snapshot persist/restore
	// still works.
	RouterURL string
	// Advertise is the base URL peers and the router reach this worker at
	// (e.g. "http://127.0.0.1:8081"). Required when RouterURL is set.
	Advertise string
	// SnapshotDir is where snapshots are persisted, one file per graph
	// (<dir>/<graph>.snap.json, graph name path-escaped). Empty disables
	// persistence.
	SnapshotDir string
	// SnapshotEvery is the persist period (default 30s).
	SnapshotEvery time.Duration
	// Heartbeat is the re-registration period (default 5s). Heartbeats keep
	// a restarted router's worker table warm and double as a readmission
	// signal after an ejection.
	Heartbeat time.Duration
	// Client overrides the HTTP client used for registration and peer
	// snapshot fetches (default: 30s timeout).
	Client *http.Client
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() (WorkerConfig, error) {
	if c.Server == nil {
		return c, fmt.Errorf("dserve: WorkerConfig.Server is required")
	}
	if c.RouterURL != "" {
		u, err := normalizeWorkerURL(c.RouterURL)
		if err != nil {
			return c, fmt.Errorf("dserve: bad router url %q: %w", c.RouterURL, err)
		}
		c.RouterURL = u
		if c.Advertise == "" {
			return c, fmt.Errorf("dserve: Advertise is required when RouterURL is set")
		}
	}
	if c.Advertise != "" {
		u, err := normalizeWorkerURL(c.Advertise)
		if err != nil {
			return c, fmt.Errorf("dserve: bad advertise url %q: %w", c.Advertise, err)
		}
		c.Advertise = u
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 30 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c, nil
}

// Worker wraps a serve.Server with the distributed-tier duties:
// registration heartbeats, snapshot persistence, the peer snapshot
// endpoint, and warm restart from the newest local or peer snapshot.
type Worker struct {
	cfg WorkerConfig
	srv *serve.Server
}

// NewWorker builds a Worker around cfg.Server and registers the worker_*
// counters into the server's metrics catalogue, so one scrape of the
// worker's /metrics covers both tiers.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.Server.Metrics().Register(workerCounters, nil)
	return &Worker{cfg: cfg, srv: cfg.Server}, nil
}

// Server returns the wrapped serve.Server.
func (wk *Worker) Server() *serve.Server { return wk.srv }

// Handler returns the worker's routing table: the wrapped server's full
// /v1/* surface plus GET /internal/snapshot for peers.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/snapshot", wk.handleSnapshot)
	mux.Handle("/", wk.srv.Handler())
	return mux
}

// handleSnapshot serves the current snapshot of ?graph=name to a peer.
func (wk *Worker) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("graph")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing ?graph=name")
		return
	}
	snap, err := wk.srv.ExportSnapshot(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	wk.srv.Metrics().Add("worker_snapshot_served", 1)
	writeJSON(w, http.StatusOK, snap)
}

// snapshotPath is the on-disk location of one graph's snapshot.
func (wk *Worker) snapshotPath(graph string) string {
	return filepath.Join(wk.cfg.SnapshotDir, url.PathEscape(graph)+".snap.json")
}

// PersistSnapshots writes every resident graph's snapshot atomically to
// SnapshotDir. A graph whose on-disk snapshot already matches the
// resident epoch is skipped. No-op without a SnapshotDir.
func (wk *Worker) PersistSnapshots() error {
	if wk.cfg.SnapshotDir == "" {
		return nil
	}
	if err := os.MkdirAll(wk.cfg.SnapshotDir, 0o755); err != nil {
		wk.srv.Metrics().Add("worker_snapshot_save_errors", 1)
		return err
	}
	var firstErr error
	for _, name := range wk.srv.GraphNames() {
		if err := wk.persistOne(name); err != nil {
			wk.srv.Metrics().Add("worker_snapshot_save_errors", 1)
			wk.logf("dserve: worker: persist snapshot of %q: %v", name, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (wk *Worker) persistOne(name string) error {
	epoch, err := wk.srv.GraphEpoch(name)
	if err != nil {
		return err
	}
	path := wk.snapshotPath(name)
	if onDisk, err := readSnapshotFile(path); err == nil && onDisk.Epoch == epoch {
		return nil // already current
	}
	snap, err := wk.srv.ExportSnapshot(name)
	if err != nil {
		return err
	}
	err = atomicio.WriteFile(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(snap)
	})
	if err != nil {
		return err
	}
	wk.srv.Metrics().Add("worker_snapshot_saves", 1)
	return nil
}

func readSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap serve.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return &snap, nil
}

// Snapshot aliases serve.Snapshot for readers of this package; the type
// lives in serve so the single-process tier can export/import without
// importing dserve.
type Snapshot = serve.Snapshot

// RestoreLocal adopts any on-disk snapshot newer than (or equal to) the
// resident state, graph by graph. Call it before serving traffic: a
// restarted worker comes back with its last persisted fixed points
// instead of cold re-solving. Missing files and stale snapshots are
// skipped silently (stale ones count worker_snapshot_stale); decode or
// import failures are logged and skipped — a corrupt snapshot must not
// block startup.
func (wk *Worker) RestoreLocal() {
	if wk.cfg.SnapshotDir == "" {
		return
	}
	for _, name := range wk.srv.GraphNames() {
		snap, err := readSnapshotFile(wk.snapshotPath(name))
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				wk.logf("dserve: worker: read snapshot of %q: %v", name, err)
			}
			continue
		}
		wk.adoptSnapshot(snap, "local file")
	}
}

// adoptSnapshot imports one snapshot, mapping the outcome onto metrics.
func (wk *Worker) adoptSnapshot(snap *Snapshot, source string) bool {
	err := wk.srv.ImportSnapshot(snap)
	switch {
	case err == nil:
		wk.srv.Metrics().Add("worker_snapshot_restores", 1)
		wk.logf("dserve: worker: restored graph %q at epoch %d from %s (%d series)",
			snap.Graph, snap.Epoch, source, len(snap.Series))
		return true
	case errors.Is(err, serve.ErrSnapshotStale):
		wk.srv.Metrics().Add("worker_snapshot_stale", 1)
		return false
	default:
		wk.logf("dserve: worker: import snapshot of %q from %s: %v", snap.Graph, source, err)
		return false
	}
}

// register posts one registration (or heartbeat) to the router and
// returns the acknowledged peer map.
func (wk *Worker) register(ctx context.Context) (map[string][]string, error) {
	wk.srv.Metrics().Add("worker_register_attempts", 1)
	body, err := json.Marshal(RegisterRequest{URL: wk.cfg.Advertise, Graphs: wk.srv.GraphNames()})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		wk.cfg.RouterURL+"/internal/register", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := wk.cfg.Client.Do(req)
	if err != nil {
		wk.srv.Metrics().Add("worker_register_errors", 1)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		wk.srv.Metrics().Add("worker_register_errors", 1)
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("register: status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var ack RegisterResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ack); err != nil {
		wk.srv.Metrics().Add("worker_register_errors", 1)
		return nil, err
	}
	wk.srv.Metrics().Add("worker_registered", 1)
	return ack.Peers, nil
}

// fetchPeerSnapshot pulls one graph's snapshot from a peer worker.
func (wk *Worker) fetchPeerSnapshot(ctx context.Context, peer, graph string) (*Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer+"/internal/snapshot?graph="+url.QueryEscape(graph), nil)
	if err != nil {
		return nil, err
	}
	resp, err := wk.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxProxyRespBody)).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// syncFromPeers fetches each graph's snapshot from the first responsive
// peer and adopts it if newer than the resident state — how a rejoining
// worker catches up on the mutations it missed while down, without a
// cold re-solve.
func (wk *Worker) syncFromPeers(ctx context.Context, peers map[string][]string) {
	for _, graph := range wk.srv.GraphNames() {
		for _, peer := range peers[graph] {
			snap, err := wk.fetchPeerSnapshot(ctx, peer, graph)
			if err != nil {
				wk.srv.Metrics().Add("worker_snapshot_fetch_errors", 1)
				wk.logf("dserve: worker: fetch snapshot of %q from %s: %v", graph, peer, err)
				continue
			}
			wk.adoptSnapshot(snap, "peer "+peer)
			break // one responsive peer per graph is enough
		}
	}
}

// Run drives the worker's background duties until ctx is canceled:
// register with the router (retrying until it answers), warm-sync each
// graph from a registered peer, then heartbeat and persist snapshots on
// their tickers. On shutdown it persists a final snapshot set so the
// next start restores the freshest state. Run returns when ctx is done.
func (wk *Worker) Run(ctx context.Context) {
	if wk.cfg.RouterURL != "" {
		peers := wk.registerUntilAck(ctx)
		if ctx.Err() != nil {
			return
		}
		wk.syncFromPeers(ctx, peers)
	}
	heartbeat := time.NewTicker(wk.cfg.Heartbeat)
	defer heartbeat.Stop()
	persist := time.NewTicker(wk.cfg.SnapshotEvery)
	defer persist.Stop()
	for {
		select {
		case <-ctx.Done():
			if err := wk.PersistSnapshots(); err != nil {
				wk.logf("dserve: worker: final snapshot persist: %v", err)
			}
			return
		case <-heartbeat.C:
			if wk.cfg.RouterURL != "" {
				if _, err := wk.register(ctx); err != nil && ctx.Err() == nil {
					wk.logf("dserve: worker: heartbeat: %v", err)
				}
			}
		case <-persist.C:
			wk.PersistSnapshots()
		}
	}
}

// registerUntilAck retries registration on the heartbeat period until the
// router acknowledges or ctx ends.
func (wk *Worker) registerUntilAck(ctx context.Context) map[string][]string {
	for {
		peers, err := wk.register(ctx)
		if err == nil {
			wk.logf("dserve: worker: registered %s with router %s", wk.cfg.Advertise, wk.cfg.RouterURL)
			return peers
		}
		if ctx.Err() != nil {
			return nil
		}
		wk.logf("dserve: worker: register with %s: %v (retrying)", wk.cfg.RouterURL, err)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(wk.cfg.Heartbeat):
		}
	}
}

func (wk *Worker) logf(format string, args ...any) {
	if wk.cfg.Logf != nil {
		wk.cfg.Logf(format, args...)
	}
}
