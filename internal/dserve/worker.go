package dserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"graphpulse/internal/atomicio"
	"graphpulse/internal/dserve/chaos"
	"graphpulse/internal/serve"
)

// WorkerConfig describes a Worker wrapping one serve.Server.
type WorkerConfig struct {
	// Server is the wrapped single-process serving instance. Required.
	Server *serve.Server
	// RouterURL is the router's base URL. Empty runs the worker standalone:
	// no registration, no peer sync, but local snapshot persist/restore
	// still works.
	RouterURL string
	// Advertise is the base URL peers and the router reach this worker at
	// (e.g. "http://127.0.0.1:8081"). Required when RouterURL is set.
	Advertise string
	// SnapshotDir is where snapshots are persisted, one file per graph
	// (<dir>/<graph>.snap.json, graph name path-escaped). Empty disables
	// persistence.
	SnapshotDir string
	// SnapshotEvery is the persist period (default 30s).
	SnapshotEvery time.Duration
	// WALDir enables the durable mutation WAL: one directory per graph
	// (<dir>/<graph>/, graph name path-escaped) of JSON-lines segments.
	// Every applied mutation epoch is appended and fsynced before the
	// mutation is acknowledged; on restart ReplayWAL re-applies the tail
	// past the last snapshot, and the anti-entropy loop ships suffixes to
	// lagging peers. Empty disables the WAL.
	WALDir string
	// WALSegmentBytes is the segment rotation threshold (default 1 MiB).
	// Segments fully covered by a persisted snapshot are deleted.
	WALSegmentBytes int64
	// Heartbeat is the re-registration period (default 5s). Heartbeats keep
	// a restarted router's worker table warm and double as a readmission
	// signal after an ejection.
	Heartbeat time.Duration
	// Client overrides the HTTP client used for registration and peer
	// snapshot fetches (default: 30s timeout).
	Client *http.Client
	// Chaos, when non-nil, wraps the worker's outbound HTTP client —
	// registration heartbeats, peer snapshot fetches, and anti-entropy
	// WAL-tail repair traffic — with the seeded deterministic fault proxy
	// (internal/dserve/chaos), the same interposition the router applies
	// to its proxy client. CI and tests only.
	Chaos *chaos.Proxy
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() (WorkerConfig, error) {
	if c.Server == nil {
		return c, fmt.Errorf("dserve: WorkerConfig.Server is required")
	}
	if c.RouterURL != "" {
		u, err := normalizeWorkerURL(c.RouterURL)
		if err != nil {
			return c, fmt.Errorf("dserve: bad router url %q: %w", c.RouterURL, err)
		}
		c.RouterURL = u
		if c.Advertise == "" {
			return c, fmt.Errorf("dserve: Advertise is required when RouterURL is set")
		}
	}
	if c.Advertise != "" {
		u, err := normalizeWorkerURL(c.Advertise)
		if err != nil {
			return c, fmt.Errorf("dserve: bad advertise url %q: %w", c.Advertise, err)
		}
		c.Advertise = u
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 30 * time.Second
	}
	if c.WALSegmentBytes <= 0 {
		c.WALSegmentBytes = 1 << 20
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	// Interpose the fault proxy on every outbound request; a nil proxy
	// returns the client unchanged.
	c.Client = c.Chaos.Wrap(c.Client)
	return c, nil
}

// Worker wraps a serve.Server with the distributed-tier duties:
// registration heartbeats, snapshot persistence, the peer snapshot
// endpoint, and warm restart from the newest local or peer snapshot.
type Worker struct {
	cfg  WorkerConfig
	srv  *serve.Server
	wals map[string]*WAL // per-graph mutation logs; nil when WALDir is unset
}

// NewWorker builds a Worker around cfg.Server and registers the worker_*
// counters into the server's metrics catalogue, so one scrape of the
// worker's /metrics covers both tiers. With a WALDir it also opens (and
// tail-repairs) each graph's mutation log and installs the serve-layer
// mutation hook, so every acknowledged epoch is on disk before the
// client hears about it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.Server.Metrics().Register(workerCounters, nil)
	if cfg.Chaos != nil {
		cfg.Server.Metrics().Register(chaos.CounterNames(), nil)
		cfg.Chaos.SetSink(cfg.Server.Metrics().Add)
	}
	wk := &Worker{cfg: cfg, srv: cfg.Server}
	if cfg.WALDir != "" {
		wk.wals = make(map[string]*WAL)
		for _, name := range cfg.Server.GraphNames() {
			w, err := openWAL(filepath.Join(cfg.WALDir, url.PathEscape(name)), cfg.WALSegmentBytes)
			if err != nil {
				return nil, fmt.Errorf("dserve: open wal for graph %q: %w", name, err)
			}
			if n := w.TailDropped(); n > 0 {
				wk.srv.Metrics().Add("wal_tail_dropped", int64(n))
				wk.logf("dserve: worker: wal of %q: dropped %d torn tail piece(s)", name, n)
			}
			wk.wals[name] = w
		}
		cfg.Server.SetMutationHook(wk.onMutation)
	}
	return wk, nil
}

// onMutation is the serve-layer mutation hook: append the applied epoch
// to the graph's WAL before the mutation is acknowledged. Re-fired hooks
// during replay deduplicate inside Append (epoch at or below the last
// logged is skipped).
func (wk *Worker) onMutation(rec serve.MutationRecord) {
	w := wk.wals[rec.Graph]
	if w == nil {
		return
	}
	appended, rotated, err := w.Append(walRecordOf(rec))
	if err != nil {
		wk.srv.Metrics().Add("wal_append_errors", 1)
		wk.logf("dserve: worker: wal append of %q epoch %d: %v", rec.Graph, rec.Epoch, err)
		return
	}
	if rotated {
		wk.srv.Metrics().Add("wal_segments_rotated", 1)
	}
	if appended {
		wk.srv.Metrics().Add("wal_appends", 1)
	}
}

// ReplayWAL re-applies each graph's logged tail past the resident epoch —
// call after RestoreLocal, before serving traffic. A restarted worker
// thereby recovers every mutation acknowledged after its last snapshot:
// the snapshot seeds the result cache at its epoch, the replayed batches
// rebuild the mutation history up to the logged epoch, and the first
// query warm-starts instead of cold-solving. A gap (snapshot newer than
// the log's coverage, or a hole) stops replay for that graph and counts
// wal_replay_errors — the anti-entropy loop heals the remainder.
func (wk *Worker) ReplayWAL() {
	for _, name := range wk.srv.GraphNames() {
		w := wk.wals[name]
		if w == nil {
			continue
		}
		epoch, err := wk.srv.GraphEpoch(name)
		if err != nil {
			continue
		}
		recs, err := w.TailAfter(epoch)
		if err != nil {
			wk.srv.Metrics().Add("wal_replay_errors", 1)
			wk.logf("dserve: worker: wal replay of %q past epoch %d: %v", name, epoch, err)
			continue
		}
		for _, rec := range recs {
			applied, err := wk.srv.ApplyReplay(rec.mutationRecord(name))
			if err != nil {
				wk.srv.Metrics().Add("wal_replay_errors", 1)
				wk.logf("dserve: worker: wal replay of %q epoch %d: %v", name, rec.Epoch, err)
				break
			}
			if applied {
				wk.srv.Metrics().Add("wal_replayed_batches", 1)
			}
		}
		if cur, err := wk.srv.GraphEpoch(name); err == nil && cur > epoch {
			wk.logf("dserve: worker: wal replay advanced %q from epoch %d to %d", name, epoch, cur)
		}
	}
}

// Server returns the wrapped serve.Server.
func (wk *Worker) Server() *serve.Server { return wk.srv }

// Handler returns the worker's routing table: the wrapped server's full
// /v1/* surface plus the peer endpoints — GET /internal/snapshot,
// GET /internal/digest, GET /internal/wal, and POST /internal/repair.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/snapshot", wk.handleSnapshot)
	mux.HandleFunc("GET /internal/digest", wk.handleDigest)
	mux.HandleFunc("GET /internal/wal", wk.handleWALTail)
	mux.HandleFunc("POST /internal/repair", wk.handleRepair)
	mux.Handle("/", wk.srv.Handler())
	return mux
}

// handleDigest serves ?graph='s (epoch, state digest) pair — the router's
// anti-entropy unit of comparison, and what loadgen's divergence check
// polls.
func (wk *Worker) handleDigest(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("graph")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing ?graph=name")
		return
	}
	info, err := wk.srv.StateDigest(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	wk.srv.Metrics().Add("antientropy_digests_served", 1)
	writeJSON(w, http.StatusOK, info)
}

// handleWALTail ships the WAL records after ?after= to a repairing peer,
// answering 410 Gone when the log cannot produce the suffix (no WAL,
// truncated coverage, or a hole) — the peer then falls back to a full
// snapshot fetch.
func (wk *Worker) handleWALTail(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("graph")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing ?graph=name")
		return
	}
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad ?after=: %v", err)
		return
	}
	wal := wk.wals[name]
	if wal == nil {
		wk.srv.Metrics().Add("antientropy_wal_gone", 1)
		writeError(w, http.StatusGone, "no wal for graph %q", name)
		return
	}
	recs, err := wal.TailAfter(after)
	if errors.Is(err, ErrWALTruncated) {
		wk.srv.Metrics().Add("antientropy_wal_gone", 1)
		writeError(w, http.StatusGone, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	info, err := wk.srv.StateDigest(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	wk.srv.Metrics().Add("antientropy_wal_served", 1)
	writeJSON(w, http.StatusOK, WALTailResponse{
		Graph:   name,
		Epoch:   info.Epoch,
		Digest:  info.Digest,
		Records: recs,
	})
}

// handleRepair runs one repair against the donor peer named in the body.
func (wk *Worker) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req RepairRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad repair body: %v", err)
		return
	}
	if req.Graph == "" || req.Peer == "" {
		writeError(w, http.StatusBadRequest, "repair needs graph and peer")
		return
	}
	peer, err := normalizeWorkerURL(req.Peer)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad peer url %q: %v", req.Peer, err)
		return
	}
	resp, err := wk.repairFrom(r.Context(), req.Graph, peer)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// repairFrom catches one graph up from a donor peer: replay the donor's
// WAL suffix past the local epoch when it covers the gap and converges
// to the donor's digest; otherwise adopt the donor's full snapshot. This
// is the no-restart heal path — a replica that missed a fan-out write
// resynchronizes in place, keeping its cache and serving throughout.
func (wk *Worker) repairFrom(ctx context.Context, graphName, peer string) (RepairResponse, error) {
	cur, err := wk.srv.GraphEpoch(graphName)
	if err != nil {
		wk.srv.Metrics().Add("antientropy_repair_errors", 1)
		return RepairResponse{}, err
	}
	if tail, err := wk.fetchPeerWAL(ctx, peer, graphName, cur); err == nil {
		replayed, replayErr := wk.replayTail(graphName, tail.Records)
		if replayErr == nil {
			if local, err := wk.srv.StateDigest(graphName); err == nil &&
				(local.Epoch > tail.Epoch ||
					(local.Epoch == tail.Epoch && local.Digest == tail.Digest)) {
				// Converged to (or past — a concurrent fan-out landed here
				// too) the donor's shipped state.
				wk.srv.Metrics().Add("antientropy_repairs_applied", 1)
				wk.logf("dserve: worker: repaired %q to epoch %d via wal suffix from %s (%d batches)",
					graphName, local.Epoch, peer, replayed)
				return RepairResponse{Graph: graphName, Mode: "wal", Epoch: local.Epoch, Replayed: replayed}, nil
			}
		}
	}
	// WAL suffix unavailable, incomplete, or it did not converge: full
	// snapshot transfer.
	snap, err := wk.fetchPeerSnapshot(ctx, peer, graphName)
	if err != nil {
		wk.srv.Metrics().Add("antientropy_repair_errors", 1)
		return RepairResponse{}, fmt.Errorf("repair of %q: wal suffix unusable and snapshot fetch from %s failed: %v",
			graphName, peer, err)
	}
	wk.adoptSnapshot(snap, "repair peer "+peer)
	wk.srv.Metrics().Add("antientropy_snapshot_fallbacks", 1)
	epoch, _ := wk.srv.GraphEpoch(graphName)
	return RepairResponse{Graph: graphName, Mode: "snapshot", Epoch: epoch}, nil
}

// replayTail applies fetched WAL records in order, stopping at the first
// failure.
func (wk *Worker) replayTail(graphName string, recs []WALRecord) (int, error) {
	replayed := 0
	for _, rec := range recs {
		applied, err := wk.srv.ApplyReplay(rec.mutationRecord(graphName))
		if err != nil {
			return replayed, err
		}
		if applied {
			replayed++
		}
	}
	return replayed, nil
}

// fetchPeerWAL pulls a graph's WAL suffix after the given epoch from a
// peer. A 410 means the peer cannot produce it (truncated or no WAL).
func (wk *Worker) fetchPeerWAL(ctx context.Context, peer, graph string, after uint64) (*WALTailResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/internal/wal?graph=%s&after=%d", peer, url.QueryEscape(graph), after), nil)
	if err != nil {
		return nil, err
	}
	resp, err := wk.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("peer %s wal: status %d", peer, resp.StatusCode)
	}
	var tail WALTailResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxProxyRespBody)).Decode(&tail); err != nil {
		return nil, err
	}
	return &tail, nil
}

// handleSnapshot serves the current snapshot of ?graph=name to a peer.
func (wk *Worker) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("graph")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing ?graph=name")
		return
	}
	snap, err := wk.srv.ExportSnapshot(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	wk.srv.Metrics().Add("worker_snapshot_served", 1)
	writeJSON(w, http.StatusOK, snap)
}

// snapshotPath is the on-disk location of one graph's snapshot.
func (wk *Worker) snapshotPath(graph string) string {
	return filepath.Join(wk.cfg.SnapshotDir, url.PathEscape(graph)+".snap.json")
}

// PersistSnapshots writes every resident graph's snapshot atomically to
// SnapshotDir. A graph whose on-disk snapshot already matches the
// resident epoch is skipped. No-op without a SnapshotDir.
func (wk *Worker) PersistSnapshots() error {
	if wk.cfg.SnapshotDir == "" {
		return nil
	}
	if err := os.MkdirAll(wk.cfg.SnapshotDir, 0o755); err != nil {
		wk.srv.Metrics().Add("worker_snapshot_save_errors", 1)
		return err
	}
	var firstErr error
	for _, name := range wk.srv.GraphNames() {
		if err := wk.persistOne(name); err != nil {
			wk.srv.Metrics().Add("worker_snapshot_save_errors", 1)
			wk.logf("dserve: worker: persist snapshot of %q: %v", name, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (wk *Worker) persistOne(name string) error {
	epoch, err := wk.srv.GraphEpoch(name)
	if err != nil {
		return err
	}
	path := wk.snapshotPath(name)
	if onDisk, err := readSnapshotFile(path); err == nil && onDisk.Epoch == epoch {
		return nil // already current
	}
	snap, err := wk.srv.ExportSnapshot(name)
	if err != nil {
		return err
	}
	err = atomicio.WriteFile(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(snap)
	})
	if err != nil {
		return err
	}
	wk.srv.Metrics().Add("worker_snapshot_saves", 1)
	// The persisted snapshot now covers every epoch up to snap.Epoch:
	// retire the WAL segments it makes redundant.
	if wal := wk.wals[name]; wal != nil {
		if n, err := wal.TruncateThrough(snap.Epoch); err != nil {
			wk.logf("dserve: worker: truncate wal of %q: %v", name, err)
		} else if n > 0 {
			wk.srv.Metrics().Add("wal_segments_truncated", int64(n))
		}
	}
	return nil
}

func readSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap serve.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return &snap, nil
}

// Snapshot aliases serve.Snapshot for readers of this package; the type
// lives in serve so the single-process tier can export/import without
// importing dserve.
type Snapshot = serve.Snapshot

// RestoreLocal adopts any on-disk snapshot newer than (or equal to) the
// resident state, graph by graph. Call it before serving traffic: a
// restarted worker comes back with its last persisted fixed points
// instead of cold re-solving. Missing files and stale snapshots are
// skipped silently (stale ones count worker_snapshot_stale); decode or
// import failures are logged and skipped — a corrupt snapshot must not
// block startup.
func (wk *Worker) RestoreLocal() {
	if wk.cfg.SnapshotDir == "" {
		return
	}
	for _, name := range wk.srv.GraphNames() {
		snap, err := readSnapshotFile(wk.snapshotPath(name))
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				wk.logf("dserve: worker: read snapshot of %q: %v", name, err)
			}
			continue
		}
		wk.adoptSnapshot(snap, "local file")
	}
}

// adoptSnapshot imports one snapshot, mapping the outcome onto metrics.
func (wk *Worker) adoptSnapshot(snap *Snapshot, source string) bool {
	err := wk.srv.ImportSnapshot(snap)
	switch {
	case err == nil:
		wk.srv.Metrics().Add("worker_snapshot_restores", 1)
		wk.logf("dserve: worker: restored graph %q at epoch %d from %s (%d series)",
			snap.Graph, snap.Epoch, source, len(snap.Series))
		return true
	case errors.Is(err, serve.ErrSnapshotStale):
		wk.srv.Metrics().Add("worker_snapshot_stale", 1)
		return false
	default:
		wk.logf("dserve: worker: import snapshot of %q from %s: %v", snap.Graph, source, err)
		return false
	}
}

// register posts one registration (or heartbeat) to the router and
// returns the acknowledged peer map.
func (wk *Worker) register(ctx context.Context) (map[string][]string, error) {
	wk.srv.Metrics().Add("worker_register_attempts", 1)
	body, err := json.Marshal(RegisterRequest{URL: wk.cfg.Advertise, Graphs: wk.srv.GraphNames()})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		wk.cfg.RouterURL+"/internal/register", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := wk.cfg.Client.Do(req)
	if err != nil {
		wk.srv.Metrics().Add("worker_register_errors", 1)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		wk.srv.Metrics().Add("worker_register_errors", 1)
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("register: status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var ack RegisterResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ack); err != nil {
		wk.srv.Metrics().Add("worker_register_errors", 1)
		return nil, err
	}
	wk.srv.Metrics().Add("worker_registered", 1)
	return ack.Peers, nil
}

// fetchPeerSnapshot pulls one graph's snapshot from a peer worker.
func (wk *Worker) fetchPeerSnapshot(ctx context.Context, peer, graph string) (*Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer+"/internal/snapshot?graph="+url.QueryEscape(graph), nil)
	if err != nil {
		return nil, err
	}
	resp, err := wk.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxProxyRespBody)).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// syncFromPeers fetches each graph's snapshot from the first responsive
// peer and adopts it if newer than the resident state — how a rejoining
// worker catches up on the mutations it missed while down, without a
// cold re-solve.
func (wk *Worker) syncFromPeers(ctx context.Context, peers map[string][]string) {
	for _, graph := range wk.srv.GraphNames() {
		for _, peer := range peers[graph] {
			snap, err := wk.fetchPeerSnapshot(ctx, peer, graph)
			if err != nil {
				wk.srv.Metrics().Add("worker_snapshot_fetch_errors", 1)
				wk.logf("dserve: worker: fetch snapshot of %q from %s: %v", graph, peer, err)
				continue
			}
			wk.adoptSnapshot(snap, "peer "+peer)
			break // one responsive peer per graph is enough
		}
	}
}

// Run drives the worker's background duties until ctx is canceled:
// register with the router (retrying until it answers), warm-sync each
// graph from a registered peer, then heartbeat and persist snapshots on
// their tickers. On shutdown it persists a final snapshot set so the
// next start restores the freshest state. Run returns when ctx is done.
func (wk *Worker) Run(ctx context.Context) {
	if wk.cfg.RouterURL != "" {
		peers := wk.registerUntilAck(ctx)
		if ctx.Err() != nil {
			return
		}
		wk.syncFromPeers(ctx, peers)
	}
	heartbeat := time.NewTicker(wk.cfg.Heartbeat)
	defer heartbeat.Stop()
	persist := time.NewTicker(wk.cfg.SnapshotEvery)
	defer persist.Stop()
	for {
		select {
		case <-ctx.Done():
			if err := wk.PersistSnapshots(); err != nil {
				wk.logf("dserve: worker: final snapshot persist: %v", err)
			}
			return
		case <-heartbeat.C:
			if wk.cfg.RouterURL != "" {
				if _, err := wk.register(ctx); err != nil && ctx.Err() == nil {
					wk.logf("dserve: worker: heartbeat: %v", err)
				}
			}
		case <-persist.C:
			wk.PersistSnapshots()
		}
	}
}

// registerUntilAck retries registration on the heartbeat period until the
// router acknowledges or ctx ends.
func (wk *Worker) registerUntilAck(ctx context.Context) map[string][]string {
	for {
		peers, err := wk.register(ctx)
		if err == nil {
			wk.logf("dserve: worker: registered %s with router %s", wk.cfg.Advertise, wk.cfg.RouterURL)
			return peers
		}
		if ctx.Err() != nil {
			return nil
		}
		wk.logf("dserve: worker: register with %s: %v (retrying)", wk.cfg.RouterURL, err)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(wk.cfg.Heartbeat):
		}
	}
}

func (wk *Worker) logf(format string, args ...any) {
	if wk.cfg.Logf != nil {
		wk.cfg.Logf(format, args...)
	}
}
