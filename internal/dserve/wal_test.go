package dserve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphpulse/internal/serve"
)

// walRec builds a small test record at the given epoch.
func walRec(epoch uint64) WALRecord {
	return WALRecord{
		Epoch: epoch,
		TS:    time.Date(2026, 1, 1, 0, 0, 0, int(epoch), time.UTC).UnixNano(),
		Added: []serve.EdgeJSON{{Src: uint32(epoch), Dst: uint32(epoch + 1), Weight: 0.5}},
	}
}

// mustAppend appends and fails the test on error or an unexpected skip.
func mustAppend(t *testing.T, w *WAL, epoch uint64) {
	t.Helper()
	appended, _, err := w.Append(walRec(epoch))
	if err != nil {
		t.Fatalf("append epoch %d: %v", epoch, err)
	}
	if !appended {
		t.Fatalf("append epoch %d skipped", epoch)
	}
}

// TestWALAppendReopenTail pins the core durability contract: appends
// survive a close/reopen, the tail past any epoch comes back in order,
// and epoch-duplicate appends (the re-fired hook during replay) are
// skipped.
func TestWALAppendReopenTail(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 5; e++ {
		mustAppend(t, w, e)
	}
	// Re-firing an already-logged epoch is a no-op, not an error.
	if appended, _, err := w.Append(walRec(3)); err != nil || appended {
		t.Fatalf("duplicate epoch append = (%v, %v), want skip", appended, err)
	}
	if w.LastEpoch() != 5 {
		t.Fatalf("LastEpoch = %d, want 5", w.LastEpoch())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := openWAL(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastEpoch() != 5 || w2.TailDropped() != 0 {
		t.Fatalf("reopened LastEpoch=%d TailDropped=%d, want 5, 0", w2.LastEpoch(), w2.TailDropped())
	}
	recs, err := w2.TailAfter(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("TailAfter(2) returned %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(3 + i); rec.Epoch != want {
			t.Fatalf("tail[%d].Epoch = %d, want %d", i, rec.Epoch, want)
		}
	}
	// Appends continue past the reopened tail.
	mustAppend(t, w2, 6)
	if recs, err := w2.TailAfter(5); err != nil || len(recs) != 1 {
		t.Fatalf("TailAfter(5) after reopen-append = (%d records, %v), want 1", len(recs), err)
	}
	// A caught-up reader gets an empty tail, not an error.
	if recs, err := w2.TailAfter(6); err != nil || recs != nil {
		t.Fatalf("TailAfter(at head) = (%v, %v), want (nil, nil)", recs, err)
	}
}

// TestWALRotationAndTruncate drives segment rotation with a tiny segment
// cap and verifies TruncateThrough retires only snapshot-covered,
// non-active segments — and that TailAfter reports the missing prefix as
// truncated afterwards.
func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 64) // a record is ~100 bytes: one record per segment
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rotations := 0
	for e := uint64(1); e <= 4; e++ {
		appended, rotated, err := w.Append(walRec(e))
		if err != nil || !appended {
			t.Fatalf("append epoch %d = (%v, %v)", e, appended, err)
		}
		if rotated {
			rotations++
		}
	}
	if rotations != 3 {
		t.Fatalf("rotations = %d, want 3 (one record per 64-byte segment)", rotations)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) != 4 {
		t.Fatalf("%d segments on disk, want 4", len(segs))
	}

	// A snapshot at epoch 2 retires segments 1 and 2; the rest stay.
	removed, err := w.TruncateThrough(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("TruncateThrough(2) removed %d, want 2", removed)
	}
	if recs, err := w.TailAfter(2); err != nil || len(recs) != 2 {
		t.Fatalf("TailAfter(2) post-truncate = (%d records, %v), want 2 intact", len(recs), err)
	}
	if _, err := w.TailAfter(0); !errors.Is(err, ErrWALTruncated) {
		t.Fatalf("TailAfter(0) post-truncate err = %v, want ErrWALTruncated", err)
	}

	// The active segment is never removed, even when covered.
	if removed, err := w.TruncateThrough(100); err != nil || removed != 1 {
		t.Fatalf("TruncateThrough(100) = (%d, %v), want only the non-active segment gone", removed, err)
	}
	if w.LastEpoch() != 4 {
		t.Fatalf("LastEpoch after truncate = %d, want 4", w.LastEpoch())
	}
}

// TestWALTornTailRepair crashes mid-append by hand: a half-written final
// line (and any segments after it) are dropped at open, the good prefix
// survives, and appends resume from the repaired tail.
func TestWALTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		mustAppend(t, w, e)
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	// Tear the tail: append half a record with no trailing newline.
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"epoch":4,"ts":12`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := openWAL(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.TailDropped() != 1 {
		t.Fatalf("TailDropped = %d, want 1", w2.TailDropped())
	}
	if w2.LastEpoch() != 3 {
		t.Fatalf("LastEpoch after repair = %d, want 3", w2.LastEpoch())
	}
	recs, err := w2.TailAfter(0)
	if err != nil || len(recs) != 3 {
		t.Fatalf("TailAfter(0) after repair = (%d records, %v), want the 3 good records", len(recs), err)
	}
	// The torn epoch can be re-appended cleanly.
	mustAppend(t, w2, 4)
	if recs, err := w2.TailAfter(3); err != nil || len(recs) != 1 || recs[0].Epoch != 4 {
		t.Fatalf("re-append after repair: tail = (%v, %v)", recs, err)
	}
}

// TestWALTailCap pins the snapshot-is-cheaper cutoff: a suffix longer
// than maxWALTail reports ErrWALTruncated instead of shipping it.
func TestWALTailCap(t *testing.T) {
	w := &WAL{lastEpoch: maxWALTail + 2, segs: []walSegment{{first: 1, last: maxWALTail + 2}}}
	if _, err := w.TailAfter(0); !errors.Is(err, ErrWALTruncated) {
		t.Fatalf("oversized tail err = %v, want ErrWALTruncated", err)
	}
}
