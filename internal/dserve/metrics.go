package dserve

// Distributed-tier metric catalogues. Router counters live in the
// router's own serve.Metrics catalogue (rendered at the router's
// /metrics); worker counters are registered into the wrapped
// serve.Server's catalogue, so one scrape of a worker's /metrics covers
// both its serving and its distributed-tier behavior. All names are
// documented in METRICS.md ("Distributed serving metrics") and referenced
// by the OPERATIONS.md troubleshooting table; the lintdoc staleness
// linter enumerates them through RouterMetricNames and WorkerMetricNames.

// routerCounters, in the order the router's /metrics renders them.
var routerCounters = []string{
	"router_query_requests",    // /v1/query requests reaching the router
	"router_mutate_requests",   // /v1/mutate requests reaching the router
	"router_stream_requests",   // /v1/stream requests reaching the router
	"router_proxy_errors",      // upstream attempts failed (transport error or 5xx)
	"router_retries",           // attempts re-sent to the next replica after a failure
	"router_no_replica",        // requests answered 503: no healthy replica for the graph
	"router_exhausted",         // requests answered 502: every attempted replica failed
	"router_mutate_partial",    // write fan-outs applied on only a subset of replicas
	"router_registrations",     // worker registrations and heartbeats accepted
	"router_probe_failures",    // health probes failed
	"router_worker_ejected",    // workers ejected after FailAfter consecutive failures
	"router_worker_readmitted", // ejected workers readmitted by a passing probe or heartbeat

	// Anti-entropy loop (see antientropy.go).
	"antientropy_checks",     // divergence checks run (graphs with ≥2 healthy replicas)
	"antientropy_divergence", // checks that found replicas disagreeing on (epoch, digest)
	"antientropy_repairs",    // laggard repairs that completed (wal suffix or snapshot)
	"antientropy_errors",     // digest fetches or repair requests that failed

	// Chaos proxy injections (names owned by internal/dserve/chaos;
	// zero unless RouterConfig.Chaos is set).
	"chaos_drops",            // requests failed before sending
	"chaos_delays",           // requests delayed before sending
	"chaos_truncates",        // response bodies cut short
	"chaos_partition_blocks", // requests blocked by an active partition
}

// routerHistograms are the router-side request latency distributions
// (microseconds, inclusive of upstream time and retries).
var routerHistograms = []string{
	"router_query_latency_us",
	"router_mutate_latency_us",
	"router_stream_latency_us",
}

// workerCounters are registered into the wrapped serve.Server's metrics.
var workerCounters = []string{
	"worker_register_attempts",     // registration/heartbeat posts attempted
	"worker_registered",            // registrations acknowledged by the router
	"worker_register_errors",       // registration posts that failed
	"worker_snapshot_saves",        // snapshots persisted to the snapshot directory
	"worker_snapshot_save_errors",  // snapshot persists that failed
	"worker_snapshot_served",       // GET /internal/snapshot fetches answered to peers
	"worker_snapshot_restores",     // snapshots adopted (local file or peer fetch)
	"worker_snapshot_stale",        // snapshots skipped as older than resident state
	"worker_snapshot_fetch_errors", // peer snapshot fetches that failed

	// Durable mutation WAL (see wal.go).
	"wal_appends",            // mutation epochs durably appended (fsynced)
	"wal_append_errors",      // appends that failed (mutation still acknowledged; divergence risk)
	"wal_segments_rotated",   // segment rotations at WALSegmentBytes
	"wal_segments_truncated", // segments retired as covered by a persisted snapshot
	"wal_replayed_batches",   // logged epochs re-applied at startup (ReplayWAL)
	"wal_replay_errors",      // replay stops: gap, hole, or corrupt record
	"wal_tail_dropped",       // torn tail pieces dropped when opening the log

	// Anti-entropy, worker side (see worker.go repair path).
	"antientropy_digests_served",     // GET /internal/digest answers
	"antientropy_wal_served",         // GET /internal/wal suffixes shipped to peers
	"antientropy_wal_gone",           // suffix requests answered 410 (truncated or no wal)
	"antientropy_repairs_applied",    // repairs converged via wal suffix replay
	"antientropy_snapshot_fallbacks", // repairs that fell back to a full snapshot transfer
	"antientropy_repair_errors",      // repairs that failed outright
}

// RouterMetricNames lists every metric a Router can emit; the METRICS.md
// staleness linter checks the doc against it.
func RouterMetricNames() []string {
	out := append([]string(nil), routerCounters...)
	return append(out, routerHistograms...)
}

// WorkerMetricNames lists every metric a Worker adds to its serve.Server's
// catalogue.
func WorkerMetricNames() []string {
	return append([]string(nil), workerCounters...)
}
