package dserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphpulse/internal/dserve/chaos"
	"graphpulse/internal/serve"
)

// Body caps for proxied requests. Queries and mutations mirror the worker
// caps; stream bodies are buffered in full so they can be replayed to
// every replica, so the router's stream cap is deliberately tighter than
// a single worker's — split bulk loads into multiple requests.
const (
	maxRouterQueryBody  = 1 << 20  // 1 MiB
	maxRouterMutateBody = 64 << 20 // 64 MiB
	maxRouterStreamBody = 32 << 20 // 32 MiB, buffered for fan-out replay
	maxProxyRespBody    = 64 << 20
)

// RouterConfig describes a Router. The zero value of every field except
// Workers is replaced by the documented default.
type RouterConfig struct {
	// Workers seeds the worker table with advertised base URLs (e.g.
	// "http://127.0.0.1:8081"). Workers may also join dynamically via
	// POST /internal/register; a seed worker is assumed to host every
	// graph until its first registration says otherwise.
	Workers []string
	// Replication is how many workers own each graph (default 1). Values
	// below 1 mean 1; values at or above the worker count replicate to
	// every worker (full read fan-out — the hot-graph configuration).
	Replication int
	// VirtualNodes is the consistent-hash ring's virtual-node count per
	// worker (default 64).
	VirtualNodes int
	// ProbeInterval is the health-probe period for healthy workers
	// (default 1s). Ejected workers are probed on their backoff schedule.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive failures (probes or request-path
	// attempts) eject a worker (default 2).
	FailAfter int
	// RetryBudget is how many additional replicas a read is retried on
	// after a failed attempt (default 2).
	RetryBudget int
	// BackoffBase and BackoffMax bound the ejected-worker re-probe
	// backoff: base, 2×base, 4×base, … capped at max (defaults 500ms, 15s).
	// Each scheduled re-probe adds up to 25% seeded jitter so a fleet
	// ejected by one shared outage does not re-probe in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// FanoutConcurrency bounds how many replicas one write fan-out
	// contacts concurrently (default 4). Writes to one graph are still
	// serialized by the per-graph lock, so all replicas see mutation
	// epochs in the same order.
	FanoutConcurrency int
	// Seed keys the router's deterministic RNG (probe-backoff jitter);
	// the default 1 keeps tests reproducible.
	Seed uint64
	// AntiEntropyInterval is the period of the divergence check: every
	// interval the router compares (epoch, state digest) across each
	// graph's healthy replicas and asks laggards to repair from the most
	// advanced peer (default 5s). Negative disables the loop.
	AntiEntropyInterval time.Duration
	// Chaos, when non-nil, wraps the proxy client's transport with the
	// seeded deterministic fault proxy (internal/dserve/chaos) and mounts
	// the POST /internal/chaos control endpoint — CI and tests only.
	Chaos *chaos.Proxy
	// Client overrides the proxy HTTP client (default: 30s timeout).
	Client *http.Client
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Replication < 1 {
		c.Replication = 1
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	} else if c.RetryBudget == 0 {
		c.RetryBudget = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 15 * time.Second
	}
	if c.FanoutConcurrency <= 0 {
		c.FanoutConcurrency = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.AntiEntropyInterval == 0 {
		c.AntiEntropyInterval = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	c.Client = c.Chaos.Wrap(c.Client)
	return c
}

// workerEntry is the router's live view of one worker.
type workerEntry struct {
	url      string
	graphs   map[string]bool // nil = unregistered seed, assumed to host everything
	healthy  bool
	draining bool
	fails    int
	backoff  time.Duration
	nextDue  time.Time
	lastErr  string
}

func (w *workerEntry) hosts(graph string) bool {
	return w.graphs == nil || w.graphs[graph]
}

// Router is the stateless front of the distributed serving tier: it owns
// no graph state, only the (rebuildable) worker table, and proxies the
// /v1/* API onto consistent-hash replica sets with health-checked
// failover. Create with NewRouter, expose with Handler or Start, stop
// with Shutdown.
type Router struct {
	cfg     RouterConfig
	metrics *serve.Metrics

	mu       sync.Mutex
	ring     *Ring
	workers  map[string]*workerEntry
	graphMus map[string]*sync.Mutex // per-graph write-fan-out serialization
	rng      *rand.Rand             // seeded; guarded by mu (backoff jitter)

	rr   atomic.Uint64 // read-rotation cursor
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	srvMu   sync.Mutex
	httpSrv *http.Server
}

// NewRouter builds a Router, seeds its worker table, and starts the
// health prober.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:      cfg,
		metrics:  serve.NewMetricsCatalog(routerCounters, routerHistograms),
		ring:     NewRing(cfg.VirtualNodes),
		workers:  make(map[string]*workerEntry),
		graphMus: make(map[string]*sync.Mutex),
		rng:      rand.New(rand.NewSource(int64(cfg.Seed))),
		stop:     make(chan struct{}),
	}
	cfg.Chaos.SetSink(rt.metrics.Add)
	for _, raw := range cfg.Workers {
		u, err := normalizeWorkerURL(raw)
		if err != nil {
			return nil, fmt.Errorf("dserve: bad worker %q: %w", raw, err)
		}
		rt.addWorkerLocked(u, nil)
	}
	rt.wg.Add(1)
	go rt.probeLoop()
	if cfg.AntiEntropyInterval > 0 {
		rt.wg.Add(1)
		go rt.antiEntropyLoop()
	}
	return rt, nil
}

// normalizeWorkerURL canonicalizes an advertised worker URL: scheme
// defaults to http, trailing slashes are dropped, and a host must be
// present.
func normalizeWorkerURL(raw string) (string, error) {
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", err
	}
	if u.Host == "" {
		return "", fmt.Errorf("missing host")
	}
	return strings.TrimRight(u.Scheme+"://"+u.Host+u.Path, "/"), nil
}

// addWorkerLocked inserts or updates a worker. Callers hold rt.mu or are
// in single-threaded construction.
func (rt *Router) addWorkerLocked(u string, graphs []string) *workerEntry {
	w, ok := rt.workers[u]
	if !ok {
		w = &workerEntry{url: u, healthy: true}
		rt.workers[u] = w
		rt.ring.Add(u)
	}
	if graphs != nil {
		set := make(map[string]bool, len(graphs))
		for _, g := range graphs {
			set[g] = true
		}
		w.graphs = set
	}
	return w
}

// Metrics returns the router's live metrics.
func (rt *Router) Metrics() *serve.Metrics { return rt.metrics }

// Workers reports the router's current view of the fleet, sorted by URL.
func (rt *Router) Workers() []WorkerInfo {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]WorkerInfo, 0, len(rt.workers))
	for _, w := range rt.workers {
		info := WorkerInfo{
			URL: w.url, Healthy: w.healthy, Draining: w.draining,
			Fails: w.fails, LastErr: w.lastErr,
		}
		if w.graphs != nil {
			for g := range w.graphs {
				info.Graphs = append(info.Graphs, g)
			}
			sort.Strings(info.Graphs)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// replicaSet returns the graph's replica set in ring order (stable under
// health changes) and the healthy, non-draining subset of it.
func (rt *Router) replicaSet(graph string) (all, healthy []string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, u := range rt.ring.Lookup(graph, 0) {
		w := rt.workers[u]
		if w == nil || !w.hosts(graph) {
			continue
		}
		all = append(all, u)
		if len(all) >= rt.cfg.Replication {
			break
		}
	}
	for _, u := range all {
		if w := rt.workers[u]; w != nil && w.healthy && !w.draining {
			healthy = append(healthy, u)
		}
	}
	return all, healthy
}

// markFailed records a request-path failure against a worker, ejecting it
// once it reaches FailAfter consecutive failures.
func (rt *Router) markFailed(u string, err string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	w, ok := rt.workers[u]
	if !ok {
		return
	}
	w.fails++
	w.lastErr = err
	if w.healthy && w.fails >= rt.cfg.FailAfter {
		w.healthy = false
		w.backoff = rt.cfg.BackoffBase
		w.nextDue = time.Now().Add(rt.jitteredLocked(w.backoff))
		rt.metrics.Add("router_worker_ejected", 1)
		rt.logf("dserve: router: ejected worker %s after %d failures (%s)", u, w.fails, err)
	}
}

// jitteredLocked spreads a backoff by up to 25% of itself, drawn from the
// router's seeded RNG — ejected workers sharing one outage re-probe
// staggered instead of in lockstep, and the same Seed reproduces the
// same schedule. Callers hold rt.mu.
func (rt *Router) jitteredLocked(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(rt.rng.Int63n(int64(d)/4+1))
}

// markHealthy records a success (probe or registration heartbeat),
// readmitting an ejected worker.
func (rt *Router) markHealthy(u string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	w, ok := rt.workers[u]
	if !ok {
		return
	}
	if !w.healthy {
		rt.metrics.Add("router_worker_readmitted", 1)
		rt.logf("dserve: router: readmitted worker %s", u)
	}
	w.healthy = true
	w.fails = 0
	w.backoff = 0
	w.lastErr = ""
	w.nextDue = time.Now().Add(rt.cfg.ProbeInterval)
}

// probeLoop drives the health prober: healthy workers on ProbeInterval,
// ejected ones on their exponential backoff.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	tick := time.NewTicker(minDuration(rt.cfg.ProbeInterval/2, 250*time.Millisecond))
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		rt.mu.Lock()
		var due []string
		for u, w := range rt.workers {
			if !w.nextDue.After(now) {
				due = append(due, u)
			}
		}
		rt.mu.Unlock()
		for _, u := range due {
			rt.probeOne(u)
		}
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a > 0 && a < b {
		return a
	}
	return b
}

// probeOne health-checks one worker and updates its state.
func (rt *Router) probeOne(u string) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/healthz", nil)
	if err != nil {
		rt.recordProbeFailure(u, err.Error())
		return
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.recordProbeFailure(u, err.Error())
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rt.recordProbeFailure(u, fmt.Sprintf("healthz status %d", resp.StatusCode))
		return
	}
	rt.markHealthy(u)
}

// recordProbeFailure advances a worker's failure state: healthy workers
// count toward ejection, ejected ones double their re-probe backoff.
func (rt *Router) recordProbeFailure(u, errStr string) {
	rt.metrics.Add("router_probe_failures", 1)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	w, ok := rt.workers[u]
	if !ok {
		return
	}
	w.fails++
	w.lastErr = errStr
	switch {
	case w.healthy && w.fails >= rt.cfg.FailAfter:
		w.healthy = false
		w.backoff = rt.cfg.BackoffBase
		rt.metrics.Add("router_worker_ejected", 1)
		rt.logf("dserve: router: ejected worker %s after %d failed probes (%s)", u, w.fails, errStr)
	case !w.healthy:
		w.backoff *= 2
		if w.backoff > rt.cfg.BackoffMax {
			w.backoff = rt.cfg.BackoffMax
		}
	}
	if w.healthy {
		w.nextDue = time.Now().Add(rt.cfg.ProbeInterval)
	} else {
		w.nextDue = time.Now().Add(rt.jitteredLocked(w.backoff))
	}
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// Handler returns the router's HTTP routing table: the worker-compatible
// /v1/* surface plus the control-plane /internal/* endpoints.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", rt.handleQuery)
	mux.HandleFunc("POST /v1/mutate", rt.handleMutate)
	mux.HandleFunc("POST /v1/stream", rt.handleStream)
	mux.HandleFunc("GET /v1/graphs", rt.handleGraphs)
	mux.HandleFunc("POST /internal/register", rt.handleRegister)
	mux.HandleFunc("GET /internal/workers", rt.handleWorkers)
	mux.HandleFunc("POST /internal/drain", rt.handleDrain)
	mux.HandleFunc("POST /internal/chaos", rt.handleChaos)
	mux.HandleFunc("GET /internal/chaos", rt.handleChaosStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rt.metrics.Render())
	})
	return mux
}

// Start opens a listener on addr ("" or host:0 pick a free port), serves
// Handler on it in the background, and returns the bound address.
func (rt *Router) Start(addr string) (net.Addr, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	rt.srvMu.Lock()
	rt.httpSrv = srv
	rt.srvMu.Unlock()
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			rt.logf("dserve: router http server: %v", err)
		}
	}()
	rt.logf("dserve: router listening on %s", ln.Addr())
	return ln.Addr(), nil
}

// Shutdown stops the listener (draining in-flight requests, bounded by
// ctx) and the health prober.
func (rt *Router) Shutdown(ctx context.Context) error {
	var err error
	rt.srvMu.Lock()
	srv := rt.httpSrv
	rt.srvMu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	rt.once.Do(func() { close(rt.stop) })
	rt.wg.Wait()
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(buf, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, serve.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request, cap int64) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, cap))
}

// graphOf extracts the routing key from a /v1/query or /v1/mutate body.
func graphOf(body []byte) (string, error) {
	var probe struct {
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return "", err
	}
	if probe.Graph == "" {
		return "", fmt.Errorf("missing graph")
	}
	return probe.Graph, nil
}

// attempt is one upstream proxy attempt's outcome.
type attempt struct {
	status int
	header http.Header
	body   []byte
	err    error
}

// retryable reports whether the outcome should be retried on the next
// replica: transport failures and 5xx responses, except 504 — the
// worker's own deadline verdict, which a retry would only double-spend.
func (a attempt) retryable() bool {
	if a.err != nil {
		return true
	}
	return a.status >= 500 && a.status != http.StatusGatewayTimeout &&
		a.status != http.StatusNotImplemented
}

// forward posts body to one worker and slurps the response.
func (rt *Router) forward(workerURL, pathAndQuery, contentType string, body []byte) attempt {
	resp, err := rt.cfg.Client.Post(workerURL+pathAndQuery, contentType, bytes.NewReader(body))
	if err != nil {
		return attempt{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyRespBody))
	if err != nil {
		return attempt{err: err}
	}
	return attempt{status: resp.StatusCode, header: resp.Header, body: data}
}

// relay copies an upstream response to the client.
func relay(w http.ResponseWriter, a attempt) {
	if ct := a.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := a.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(a.status)
	w.Write(a.body)
}

// handleQuery proxies a read: rotate across the graph's healthy replicas,
// retrying a failed attempt on the next replica within the retry budget.
// The client sees exactly one answer — retries are absorbed here.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.metrics.Add("router_query_requests", 1)
	defer func() {
		rt.metrics.Observe("router_query_latency_us", time.Since(start).Microseconds())
	}()
	body, err := readBody(w, r, maxRouterQueryBody)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read query body: %v", err)
		return
	}
	graph, err := graphOf(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad query body: %v", err)
		return
	}
	_, healthy := rt.replicaSet(graph)
	if len(healthy) == 0 {
		rt.metrics.Add("router_no_replica", 1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no healthy replica for graph %q", graph)
		return
	}
	attempts := rt.cfg.RetryBudget + 1
	if attempts > len(healthy) {
		attempts = len(healthy)
	}
	offset := int(rt.rr.Add(1))
	var last attempt
	for i := 0; i < attempts; i++ {
		target := healthy[(offset+i)%len(healthy)]
		if i > 0 {
			rt.metrics.Add("router_retries", 1)
		}
		last = rt.forward(target, "/v1/query", "application/json", body)
		if !last.retryable() {
			relay(w, last)
			return
		}
		rt.metrics.Add("router_proxy_errors", 1)
		rt.markFailed(target, attemptError(last))
	}
	rt.metrics.Add("router_exhausted", 1)
	writeError(w, http.StatusBadGateway, "all %d attempted replicas failed for graph %q: %s",
		attempts, graph, attemptError(last))
}

func attemptError(a attempt) string {
	if a.err != nil {
		return a.err.Error()
	}
	return fmt.Sprintf("upstream status %d", a.status)
}

// graphMu returns the per-graph write-serialization lock.
func (rt *Router) graphMu(graph string) *sync.Mutex {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m, ok := rt.graphMus[graph]
	if !ok {
		m = &sync.Mutex{}
		rt.graphMus[graph] = m
	}
	return m
}

// fanoutWrite applies one write to every replica of the graph: a bounded
// concurrent fan-out (FanoutConcurrency in flight) under the graph's
// write lock, so concurrent writes to one graph still reach every replica
// in the same order. Per-replica accounting is unchanged from the
// sequential fan-out: the first success in ring order is relayed and any
// replica that missed the write counts one router_mutate_partial; with no
// success, a deterministic rejection (4xx — bad batch, unknown graph,
// per-worker backpressure) is relayed as-is, and transport/5xx failures
// everywhere answer 502. Replicas that missed an applied write heal via
// the anti-entropy loop's WAL-suffix or snapshot repair.
func (rt *Router) fanoutWrite(w http.ResponseWriter, graph, pathAndQuery, contentType string, body []byte) {
	all, _ := rt.replicaSet(graph)
	if len(all) == 0 {
		rt.metrics.Add("router_no_replica", 1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no replica for graph %q", graph)
		return
	}
	mu := rt.graphMu(graph)
	mu.Lock()
	defer mu.Unlock()

	results := make([]attempt, len(all))
	sem := make(chan struct{}, rt.cfg.FanoutConcurrency)
	var wg sync.WaitGroup
	for i, target := range all {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = rt.forward(target, pathAndQuery, contentType, body)
		}(i, target)
	}
	wg.Wait()

	var firstOK, firstReject *attempt
	okCount := 0
	var lastFail attempt
	for i := range results {
		a := results[i]
		switch {
		case a.err == nil && a.status < 400:
			okCount++
			if firstOK == nil {
				firstOK = &results[i]
			}
			rt.markHealthy(all[i])
		case a.err == nil && a.status < 500:
			if firstReject == nil {
				firstReject = &results[i]
			}
		default:
			lastFail = a
			rt.metrics.Add("router_proxy_errors", 1)
			rt.markFailed(all[i], attemptError(a))
		}
	}
	switch {
	case firstOK != nil:
		if okCount < len(all) {
			rt.metrics.Add("router_mutate_partial", 1)
		}
		relay(w, *firstOK)
	case firstReject != nil:
		relay(w, *firstReject)
	default:
		rt.metrics.Add("router_exhausted", 1)
		writeError(w, http.StatusBadGateway, "write failed on all %d replicas of graph %q: %s",
			len(all), graph, attemptError(lastFail))
	}
}

func (rt *Router) handleMutate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.metrics.Add("router_mutate_requests", 1)
	defer func() {
		rt.metrics.Observe("router_mutate_latency_us", time.Since(start).Microseconds())
	}()
	body, err := readBody(w, r, maxRouterMutateBody)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read mutate body: %v", err)
		return
	}
	graph, err := graphOf(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad mutate body: %v", err)
		return
	}
	rt.fanoutWrite(w, graph, "/v1/mutate", "application/json", body)
}

func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.metrics.Add("router_stream_requests", 1)
	defer func() {
		rt.metrics.Observe("router_stream_latency_us", time.Since(start).Microseconds())
	}()
	graph := r.URL.Query().Get("graph")
	if graph == "" {
		writeError(w, http.StatusBadRequest, "missing ?graph=name")
		return
	}
	body, err := readBody(w, r, maxRouterStreamBody)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge,
			"stream body exceeds the router's %d MiB fan-out buffer (split the load, or stream workers directly): %v",
			maxRouterStreamBody>>20, err)
		return
	}
	rt.fanoutWrite(w, graph, "/v1/stream?graph="+url.QueryEscape(graph), "application/x-ndjson", body)
}

// handleGraphs merges the inventories of every healthy worker: one row
// per graph name, keeping the highest epoch seen (replicas briefly
// diverge while a mutation fans out).
func (rt *Router) handleGraphs(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	var healthy []string
	for u, we := range rt.workers {
		if we.healthy && !we.draining {
			healthy = append(healthy, u)
		}
	}
	rt.mu.Unlock()
	sort.Strings(healthy)
	merged := make(map[string]serve.GraphInfo)
	for _, u := range healthy {
		resp, err := rt.cfg.Client.Get(u + "/v1/graphs")
		if err != nil {
			rt.metrics.Add("router_proxy_errors", 1)
			rt.markFailed(u, err.Error())
			continue
		}
		var infos []serve.GraphInfo
		err = json.NewDecoder(io.LimitReader(resp.Body, maxProxyRespBody)).Decode(&infos)
		resp.Body.Close()
		if err != nil {
			rt.metrics.Add("router_proxy_errors", 1)
			rt.markFailed(u, err.Error())
			continue
		}
		for _, in := range infos {
			if cur, ok := merged[in.Name]; !ok || in.Epoch > cur.Epoch {
				merged[in.Name] = in
			}
		}
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]serve.GraphInfo, 0, len(names))
	for _, n := range names {
		out = append(out, merged[n])
	}
	writeJSON(w, http.StatusOK, out)
}

// handleRegister admits a worker announcing itself (or heartbeating). The
// response lists, per registered graph, the other healthy workers hosting
// it — the rejoiner's snapshot sources.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad register body: %v", err)
		return
	}
	u, err := normalizeWorkerURL(req.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad worker url %q: %v", req.URL, err)
		return
	}
	if len(req.Graphs) == 0 {
		writeError(w, http.StatusBadRequest, "registration must list hosted graphs")
		return
	}
	rt.metrics.Add("router_registrations", 1)
	rt.mu.Lock()
	we := rt.addWorkerLocked(u, req.Graphs)
	if !we.healthy {
		rt.metrics.Add("router_worker_readmitted", 1)
	}
	we.healthy = true
	we.draining = false
	we.fails = 0
	we.backoff = 0
	we.lastErr = ""
	we.nextDue = time.Now().Add(rt.cfg.ProbeInterval)
	resp := RegisterResponse{Peers: make(map[string][]string, len(req.Graphs))}
	for _, g := range req.Graphs {
		var peers []string
		for pu, pw := range rt.workers {
			if pu != u && pw.healthy && !pw.draining && pw.hosts(g) {
				peers = append(peers, pu)
			}
		}
		sort.Strings(peers)
		resp.Peers[g] = peers
	}
	rt.mu.Unlock()
	rt.logf("dserve: router: registered worker %s (graphs %v)", u, req.Graphs)
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Workers())
}

// handleChaos drives the chaos proxy's explicit faults (partition/heal a
// worker) — 404 unless the router was built with RouterConfig.Chaos, so
// production routers expose no fault surface.
func (rt *Router) handleChaos(w http.ResponseWriter, r *http.Request) {
	if rt.cfg.Chaos == nil {
		writeError(w, http.StatusNotFound, "chaos proxy not enabled on this router")
		return
	}
	var req ChaosRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad chaos body: %v", err)
		return
	}
	switch {
	case req.Partition != "":
		rt.cfg.Chaos.Partition(req.Partition)
		rt.logf("dserve: router: chaos partitioned %s", req.Partition)
	case req.Heal != "":
		rt.cfg.Chaos.Heal(req.Heal)
		rt.logf("dserve: router: chaos healed %s", req.Heal)
	case req.HealAll:
		rt.cfg.Chaos.HealAll()
		rt.logf("dserve: router: chaos healed all partitions")
	default:
		writeError(w, http.StatusBadRequest, "chaos request needs partition, heal, or heal_all")
		return
	}
	rt.writeChaosStatus(w)
}

func (rt *Router) handleChaosStatus(w http.ResponseWriter, r *http.Request) {
	if rt.cfg.Chaos == nil {
		writeError(w, http.StatusNotFound, "chaos proxy not enabled on this router")
		return
	}
	rt.writeChaosStatus(w)
}

func (rt *Router) writeChaosStatus(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, ChaosStatus{
		Partitioned: rt.cfg.Chaos.Partitioned(),
		Events:      rt.cfg.Chaos.EventCount(),
	})
}

// handleDrain cordons (or readmits) a worker: a draining worker keeps its
// registration but receives no new traffic, so it can be SIGTERMed once
// its in-flight requests finish — the runbook's safe-restart path.
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req DrainRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad drain body: %v", err)
		return
	}
	u, err := normalizeWorkerURL(req.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad worker url %q: %v", req.URL, err)
		return
	}
	rt.mu.Lock()
	we, ok := rt.workers[u]
	if ok {
		we.draining = !req.Undrain
	}
	rt.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown worker %q", u)
		return
	}
	rt.logf("dserve: router: worker %s draining=%v", u, !req.Undrain)
	writeJSON(w, http.StatusOK, rt.Workers())
}
