package dserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"graphpulse/internal/serve"
)

// The anti-entropy loop: every AntiEntropyInterval the router fetches a
// per-graph (epoch, state digest) pair from each healthy replica
// (GET /internal/digest on the worker), flags divergence in metrics, and
// asks each laggard to repair itself from the most advanced peer
// (POST /internal/repair). The worker-side repair first tries the cheap
// path — fetch the missing WAL suffix from the donor and replay it — and
// falls back to a full snapshot transfer when the donor's log no longer
// covers the gap. Either way a replica that missed a write converges back
// to digest equality without a restart and without a cold re-solve.

// antiEntropyLoop drives periodic divergence checks until shutdown.
func (rt *Router) antiEntropyLoop() {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.AntiEntropyInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
		rt.antiEntropyPass()
	}
}

// hostedGraphs is the union of every registered worker's graph set.
// Seed workers that never registered are skipped — the router cannot
// enumerate their graphs until their first registration.
func (rt *Router) hostedGraphs() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	set := map[string]bool{}
	for _, w := range rt.workers {
		for g := range w.graphs {
			set[g] = true
		}
	}
	names := make([]string, 0, len(set))
	for g := range set {
		names = append(names, g)
	}
	sort.Strings(names)
	return names
}

// antiEntropyPass runs one divergence check over every hosted graph.
func (rt *Router) antiEntropyPass() {
	for _, g := range rt.hostedGraphs() {
		rt.antiEntropyCheck(g)
	}
}

// replicaDigest pairs a replica URL with its reported digest.
type replicaDigest struct {
	url  string
	info serve.DigestInfo
}

// antiEntropyCheck compares one graph's digests across its healthy
// replicas and triggers repair of every laggard. Divergence means any
// replica's (epoch, digest) differs from the most advanced replica's;
// the most advanced is the highest epoch, ties broken by ring order —
// deterministic, so concurrent repairs all pull from the same donor.
func (rt *Router) antiEntropyCheck(graphName string) {
	_, healthy := rt.replicaSet(graphName)
	if len(healthy) < 2 {
		return
	}
	rt.metrics.Add("antientropy_checks", 1)
	digs := make([]replicaDigest, 0, len(healthy))
	for _, u := range healthy {
		info, err := rt.fetchDigest(u, graphName)
		if err != nil {
			rt.metrics.Add("antientropy_errors", 1)
			rt.logf("dserve: router: anti-entropy digest of %q from %s: %v", graphName, u, err)
			continue
		}
		digs = append(digs, replicaDigest{url: u, info: info})
	}
	if len(digs) < 2 {
		return
	}
	best := digs[0]
	for _, d := range digs[1:] {
		if d.info.Epoch > best.info.Epoch {
			best = d
		}
	}
	diverged := false
	for _, d := range digs {
		if d.info.Epoch != best.info.Epoch || d.info.Digest != best.info.Digest {
			diverged = true
			break
		}
	}
	if !diverged {
		return
	}
	rt.metrics.Add("antientropy_divergence", 1)
	for _, d := range digs {
		if d.url == best.url ||
			(d.info.Epoch == best.info.Epoch && d.info.Digest == best.info.Digest) {
			continue
		}
		if err := rt.requestRepair(d.url, graphName, best.url); err != nil {
			rt.metrics.Add("antientropy_errors", 1)
			rt.logf("dserve: router: anti-entropy repair of %q on %s from %s: %v",
				graphName, d.url, best.url, err)
			continue
		}
		rt.metrics.Add("antientropy_repairs", 1)
		rt.logf("dserve: router: anti-entropy healed %q on %s from %s (was epoch %d, donor %d)",
			graphName, d.url, best.url, d.info.Epoch, best.info.Epoch)
	}
}

// fetchDigest asks one worker for one graph's (epoch, digest) pair.
func (rt *Router) fetchDigest(worker, graphName string) (serve.DigestInfo, error) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		worker+"/internal/digest?graph="+url.QueryEscape(graphName), nil)
	if err != nil {
		return serve.DigestInfo{}, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return serve.DigestInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return serve.DigestInfo{}, fmt.Errorf("digest status %d", resp.StatusCode)
	}
	var info serve.DigestInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return serve.DigestInfo{}, err
	}
	return info, nil
}

// requestRepair asks the laggard to pull the missing suffix from donor.
func (rt *Router) requestRepair(laggard, graphName, donor string) error {
	body, err := json.Marshal(RepairRequest{Graph: graphName, Peer: donor})
	if err != nil {
		return err
	}
	resp, err := rt.cfg.Client.Post(laggard+"/internal/repair", "application/json",
		bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repair status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}
