package dserve

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphpulse/internal/graph/gen"
	"graphpulse/internal/serve"
)

// newWorkerNode builds a serve.Server over the deterministic test graph,
// wraps it in a Worker with the given config overrides, and serves the
// worker handler (including /internal/snapshot) via httptest.
func newWorkerNode(t *testing.T, mut func(*WorkerConfig)) (*Worker, *httptest.Server) {
	t.Helper()
	g, err := gen.ErdosRenyi(200, 900, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Graphs:         []serve.GraphSpec{{Name: "g", Graph: g}},
		DefaultTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WorkerConfig{Server: s}
	if mut != nil {
		mut(&cfg)
	}
	wk, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(wk.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return wk, ts
}

// solveAndMutate pushes a worker's graph to epoch 1 with a cached pr
// fixed point at that epoch, so its snapshot carries both.
func solveAndMutate(t *testing.T, url string) *serve.QueryResponse {
	t.Helper()
	code, body := postJSON(t, url+"/v1/mutate", serve.MutateRequest{
		Graph: "g", Edges: []serve.EdgeJSON{{Src: 3, Dst: 170, Weight: 0.4}},
	})
	if code != 200 {
		t.Fatalf("mutate: HTTP %d: %s", code, body)
	}
	resp, code := queryVia(t, url)
	if code != 200 || resp == nil {
		t.Fatalf("query: HTTP %d", code)
	}
	return resp
}

// TestWorkerPersistAndRestoreLocal pins the warm-restart path: a worker
// persists its snapshot, a fresh worker pointed at the same directory
// restores it before serving, and the first query is a cache hit at the
// persisted epoch — no cold re-solve.
func TestWorkerPersistAndRestoreLocal(t *testing.T) {
	dir := t.TempDir()
	wk1, ts1 := newWorkerNode(t, func(c *WorkerConfig) { c.SnapshotDir = dir })
	solveAndMutate(t, ts1.URL)
	if err := wk1.PersistSnapshots(); err != nil {
		t.Fatal(err)
	}
	if wk1.Server().Metrics().Counter("worker_snapshot_saves") != 1 {
		t.Fatal("persist not counted")
	}
	if _, err := os.Stat(filepath.Join(dir, "g.snap.json")); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	// A second persist at the same epoch is skipped (file already current).
	if err := wk1.PersistSnapshots(); err != nil {
		t.Fatal(err)
	}
	if got := wk1.Server().Metrics().Counter("worker_snapshot_saves"); got != 1 {
		t.Fatalf("unchanged state persisted again (saves=%d)", got)
	}

	wk2, ts2 := newWorkerNode(t, func(c *WorkerConfig) { c.SnapshotDir = dir })
	wk2.RestoreLocal()
	if wk2.Server().Metrics().Counter("worker_snapshot_restores") != 1 {
		t.Fatal("restore not counted")
	}
	resp, code := queryVia(t, ts2.URL)
	if code != 200 || resp == nil {
		t.Fatalf("query after restore: HTTP %d", code)
	}
	if !resp.Cached || resp.Epoch != 1 {
		t.Fatalf("restored query cached=%v epoch=%d, want cache hit at epoch 1", resp.Cached, resp.Epoch)
	}
	if n := wk2.Server().Metrics().Counter("query_cold_solves"); n != 0 {
		t.Fatalf("restored worker cold-solved %d times, want 0", n)
	}

	// A corrupt snapshot file must not block startup.
	wk3, ts3 := newWorkerNode(t, func(c *WorkerConfig) { c.SnapshotDir = t.TempDir() })
	if err := os.WriteFile(filepath.Join(wk3.cfg.SnapshotDir, "g.snap.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	wk3.RestoreLocal()
	if resp, code := queryVia(t, ts3.URL); code != 200 || resp == nil {
		t.Fatalf("query after corrupt-snapshot startup: HTTP %d", code)
	}
}

// TestWorkerPeerSyncThroughRouter runs the full rejoin flow: worker A
// registers and accumulates state; worker B registers later, learns A is
// its peer from the registration ack, fetches A's snapshot over
// /internal/snapshot, and serves A's epoch from cache without re-solving.
func TestWorkerPeerSyncThroughRouter(t *testing.T) {
	rt, rts := newTestRouter(t, RouterConfig{Replication: 2, ProbeInterval: 50 * time.Millisecond})

	wkA, tsA := newWorkerNode(t, func(c *WorkerConfig) {
		c.RouterURL = rts.URL
		c.Advertise = "placeholder" // replaced below; httptest URL unknown at config time
	})
	wkA.cfg.Advertise = tsA.URL
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	doneA := make(chan struct{})
	go func() { defer close(doneA); wkA.Run(ctxA) }()
	waitFor(t, "worker A registration", 5*time.Second, func() bool {
		ws := rt.Workers()
		return len(ws) == 1 && ws[0].URL == tsA.URL
	})
	want := solveAndMutate(t, tsA.URL)

	wkB, tsB := newWorkerNode(t, func(c *WorkerConfig) {
		c.RouterURL = rts.URL
		c.Advertise = "placeholder"
	})
	wkB.cfg.Advertise = tsB.URL
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	doneB := make(chan struct{})
	go func() { defer close(doneB); wkB.Run(ctxB) }()

	waitFor(t, "worker B peer sync", 5*time.Second, func() bool {
		return wkB.Server().Metrics().Counter("worker_snapshot_restores") >= 1
	})
	resp, code := queryVia(t, tsB.URL)
	if code != 200 || resp == nil {
		t.Fatalf("query on rejoined worker: HTTP %d", code)
	}
	if !resp.Cached || resp.Epoch != want.Epoch {
		t.Fatalf("rejoined worker cached=%v epoch=%d, want cache hit at epoch %d",
			resp.Cached, resp.Epoch, want.Epoch)
	}
	if n := wkB.Server().Metrics().Counter("query_cold_solves"); n != 0 {
		t.Fatalf("rejoined worker cold-solved %d times, want 0 (snapshot shipping failed)", n)
	}

	cancelA()
	cancelB()
	<-doneA
	<-doneB
}

// TestWorkerCrashReplayFromWAL is the durability tentpole test: a worker
// acknowledges mutations after its last snapshot tick and then dies
// without warning (no final persist — the kill -9 shape). A fresh worker
// over the same directories restores the snapshot, replays the WAL tail
// past it, and serves the full acknowledged epoch with zero cold solves.
func TestWorkerCrashReplayFromWAL(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	wk1, ts1 := newWorkerNode(t, func(c *WorkerConfig) {
		c.SnapshotDir = snapDir
		c.WALDir = walDir
	})
	// Epoch 1 with a cached fixed point, snapshotted.
	solveAndMutate(t, ts1.URL)
	if err := wk1.PersistSnapshots(); err != nil {
		t.Fatal(err)
	}
	// Two more acknowledged mutations after the snapshot tick; then the
	// process "dies" — no persist, the WAL is the only durable record.
	for _, e := range [][2]uint32{{5, 171}, {7, 172}} {
		code, body := postJSON(t, ts1.URL+"/v1/mutate", serve.MutateRequest{
			Graph: "g", Edges: []serve.EdgeJSON{{Src: e[0], Dst: e[1], Weight: 0.3}},
		})
		if code != 200 {
			t.Fatalf("post-snapshot mutate: HTTP %d: %s", code, body)
		}
	}
	if got := wk1.Server().Metrics().Counter("wal_appends"); got != 3 {
		t.Fatalf("wal_appends = %d, want 3 (every acknowledged epoch logged)", got)
	}

	wk2, ts2 := newWorkerNode(t, func(c *WorkerConfig) {
		c.SnapshotDir = snapDir
		c.WALDir = walDir
	})
	wk2.RestoreLocal()
	wk2.ReplayWAL()
	if got := wk2.Server().Metrics().Counter("wal_replayed_batches"); got != 2 {
		t.Fatalf("wal_replayed_batches = %d, want 2 (the post-snapshot tail)", got)
	}
	if epoch, err := wk2.Server().GraphEpoch("g"); err != nil || epoch != 3 {
		t.Fatalf("restarted epoch = %d (%v), want 3", epoch, err)
	}
	resp, code := queryVia(t, ts2.URL)
	if code != 200 || resp == nil {
		t.Fatalf("query after crash restart: HTTP %d", code)
	}
	if resp.Epoch != 3 {
		t.Fatalf("restarted worker answers epoch %d, want 3", resp.Epoch)
	}
	if n := wk2.Server().Metrics().Counter("query_cold_solves"); n != 0 {
		t.Fatalf("restarted worker cold-solved %d times, want 0 (snapshot + wal replay should warm-start)", n)
	}
	// Replayed state and the pre-crash state digest identically.
	d1, err := wk1.Server().StateDigest("g")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := wk2.Server().StateDigest("g")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("post-replay digest %+v differs from pre-crash %+v", d2, d1)
	}
}

// TestWorkerPeerSyncStaleRejected pins the stale-snapshot edge: a peer
// snapshot older than the resident state is rejected (counted, state
// untouched), even when a concurrent mutation is racing the adoption.
func TestWorkerPeerSyncStaleRejected(t *testing.T) {
	_, tsA := newWorkerNode(t, nil) // the stale peer: epoch 1
	solveAndMutate(t, tsA.URL)
	wkB, tsB := newWorkerNode(t, nil) // ahead of the peer: epoch 2
	solveAndMutate(t, tsB.URL)
	mutateDirect(t, tsB.URL, 9, 173)

	// Race adoption against live mutations: ImportSnapshot must reject the
	// stale image without disturbing the concurrent write path.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			mutateDirect(t, tsB.URL, uint32(10+i), 174)
		}
	}()
	wkB.syncFromPeers(context.Background(), map[string][]string{"g": {tsA.URL}})
	<-done

	if got := wkB.Server().Metrics().Counter("worker_snapshot_stale"); got != 1 {
		t.Fatalf("worker_snapshot_stale = %d, want 1", got)
	}
	if got := wkB.Server().Metrics().Counter("worker_snapshot_restores"); got != 0 {
		t.Fatalf("stale snapshot adopted (restores=%d)", got)
	}
	if epoch, err := wkB.Server().GraphEpoch("g"); err != nil || epoch != 10 {
		t.Fatalf("epoch after stale sync + 8 concurrent mutations = %d (%v), want 10", epoch, err)
	}
}

// TestWorkerPersistRacingMutation races PersistSnapshots against a stream
// of mutations: every persist must write a self-consistent snapshot (the
// export is epoch-atomic), the skip-if-current check must not lose a
// newer epoch, and the final on-disk image must decode at some reached
// epoch.
func TestWorkerPersistRacingMutation(t *testing.T) {
	dir := t.TempDir()
	wk, ts := newWorkerNode(t, func(c *WorkerConfig) { c.SnapshotDir = dir })
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 16; i++ {
			mutateDirect(t, ts.URL, uint32(i), 175)
		}
	}()
	for i := 0; i < 8; i++ {
		if err := wk.PersistSnapshots(); err != nil {
			t.Errorf("persist %d: %v", i, err)
		}
	}
	<-done
	// One more persist with the writers quiesced: skip-if-current must
	// still notice the epochs the racing writers added.
	if err := wk.PersistSnapshots(); err != nil {
		t.Fatal(err)
	}
	snap, err := readSnapshotFile(filepath.Join(dir, "g.snap.json"))
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := wk.Server().GraphEpoch("g")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != epoch {
		t.Fatalf("final snapshot at epoch %d, resident %d", snap.Epoch, epoch)
	}
	saves := wk.Server().Metrics().Counter("worker_snapshot_saves")
	if saves == 0 {
		t.Fatal("no snapshot saved")
	}
	if err := wk.PersistSnapshots(); err != nil {
		t.Fatal(err)
	}
	if got := wk.Server().Metrics().Counter("worker_snapshot_saves"); got != saves {
		t.Fatalf("persist at an unchanged epoch saved again (%d -> %d)", saves, got)
	}
}

// TestWorkerConfigValidation pins the config contract.
func TestWorkerConfigValidation(t *testing.T) {
	if _, err := NewWorker(WorkerConfig{}); err == nil {
		t.Error("nil Server accepted")
	}
	g, err := gen.ErdosRenyi(20, 40, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Graphs: []serve.GraphSpec{{Name: "g", Graph: g}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if _, err := NewWorker(WorkerConfig{Server: s, RouterURL: "http://127.0.0.1:1"}); err == nil {
		t.Error("router without advertise accepted")
	}
	if _, err := NewWorker(WorkerConfig{Server: s, RouterURL: "://bad", Advertise: "http://x:1"}); err == nil {
		t.Error("malformed router url accepted")
	}
}
