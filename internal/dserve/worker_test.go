package dserve

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphpulse/internal/graph/gen"
	"graphpulse/internal/serve"
)

// newWorkerNode builds a serve.Server over the deterministic test graph,
// wraps it in a Worker with the given config overrides, and serves the
// worker handler (including /internal/snapshot) via httptest.
func newWorkerNode(t *testing.T, mut func(*WorkerConfig)) (*Worker, *httptest.Server) {
	t.Helper()
	g, err := gen.ErdosRenyi(200, 900, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Graphs:         []serve.GraphSpec{{Name: "g", Graph: g}},
		DefaultTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WorkerConfig{Server: s}
	if mut != nil {
		mut(&cfg)
	}
	wk, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(wk.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return wk, ts
}

// solveAndMutate pushes a worker's graph to epoch 1 with a cached pr
// fixed point at that epoch, so its snapshot carries both.
func solveAndMutate(t *testing.T, url string) *serve.QueryResponse {
	t.Helper()
	code, body := postJSON(t, url+"/v1/mutate", serve.MutateRequest{
		Graph: "g", Edges: []serve.EdgeJSON{{Src: 3, Dst: 170, Weight: 0.4}},
	})
	if code != 200 {
		t.Fatalf("mutate: HTTP %d: %s", code, body)
	}
	resp, code := queryVia(t, url)
	if code != 200 || resp == nil {
		t.Fatalf("query: HTTP %d", code)
	}
	return resp
}

// TestWorkerPersistAndRestoreLocal pins the warm-restart path: a worker
// persists its snapshot, a fresh worker pointed at the same directory
// restores it before serving, and the first query is a cache hit at the
// persisted epoch — no cold re-solve.
func TestWorkerPersistAndRestoreLocal(t *testing.T) {
	dir := t.TempDir()
	wk1, ts1 := newWorkerNode(t, func(c *WorkerConfig) { c.SnapshotDir = dir })
	solveAndMutate(t, ts1.URL)
	if err := wk1.PersistSnapshots(); err != nil {
		t.Fatal(err)
	}
	if wk1.Server().Metrics().Counter("worker_snapshot_saves") != 1 {
		t.Fatal("persist not counted")
	}
	if _, err := os.Stat(filepath.Join(dir, "g.snap.json")); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	// A second persist at the same epoch is skipped (file already current).
	if err := wk1.PersistSnapshots(); err != nil {
		t.Fatal(err)
	}
	if got := wk1.Server().Metrics().Counter("worker_snapshot_saves"); got != 1 {
		t.Fatalf("unchanged state persisted again (saves=%d)", got)
	}

	wk2, ts2 := newWorkerNode(t, func(c *WorkerConfig) { c.SnapshotDir = dir })
	wk2.RestoreLocal()
	if wk2.Server().Metrics().Counter("worker_snapshot_restores") != 1 {
		t.Fatal("restore not counted")
	}
	resp, code := queryVia(t, ts2.URL)
	if code != 200 || resp == nil {
		t.Fatalf("query after restore: HTTP %d", code)
	}
	if !resp.Cached || resp.Epoch != 1 {
		t.Fatalf("restored query cached=%v epoch=%d, want cache hit at epoch 1", resp.Cached, resp.Epoch)
	}
	if n := wk2.Server().Metrics().Counter("query_cold_solves"); n != 0 {
		t.Fatalf("restored worker cold-solved %d times, want 0", n)
	}

	// A corrupt snapshot file must not block startup.
	wk3, ts3 := newWorkerNode(t, func(c *WorkerConfig) { c.SnapshotDir = t.TempDir() })
	if err := os.WriteFile(filepath.Join(wk3.cfg.SnapshotDir, "g.snap.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	wk3.RestoreLocal()
	if resp, code := queryVia(t, ts3.URL); code != 200 || resp == nil {
		t.Fatalf("query after corrupt-snapshot startup: HTTP %d", code)
	}
}

// TestWorkerPeerSyncThroughRouter runs the full rejoin flow: worker A
// registers and accumulates state; worker B registers later, learns A is
// its peer from the registration ack, fetches A's snapshot over
// /internal/snapshot, and serves A's epoch from cache without re-solving.
func TestWorkerPeerSyncThroughRouter(t *testing.T) {
	rt, rts := newTestRouter(t, RouterConfig{Replication: 2, ProbeInterval: 50 * time.Millisecond})

	wkA, tsA := newWorkerNode(t, func(c *WorkerConfig) {
		c.RouterURL = rts.URL
		c.Advertise = "placeholder" // replaced below; httptest URL unknown at config time
	})
	wkA.cfg.Advertise = tsA.URL
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	doneA := make(chan struct{})
	go func() { defer close(doneA); wkA.Run(ctxA) }()
	waitFor(t, "worker A registration", 5*time.Second, func() bool {
		ws := rt.Workers()
		return len(ws) == 1 && ws[0].URL == tsA.URL
	})
	want := solveAndMutate(t, tsA.URL)

	wkB, tsB := newWorkerNode(t, func(c *WorkerConfig) {
		c.RouterURL = rts.URL
		c.Advertise = "placeholder"
	})
	wkB.cfg.Advertise = tsB.URL
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	doneB := make(chan struct{})
	go func() { defer close(doneB); wkB.Run(ctxB) }()

	waitFor(t, "worker B peer sync", 5*time.Second, func() bool {
		return wkB.Server().Metrics().Counter("worker_snapshot_restores") >= 1
	})
	resp, code := queryVia(t, tsB.URL)
	if code != 200 || resp == nil {
		t.Fatalf("query on rejoined worker: HTTP %d", code)
	}
	if !resp.Cached || resp.Epoch != want.Epoch {
		t.Fatalf("rejoined worker cached=%v epoch=%d, want cache hit at epoch %d",
			resp.Cached, resp.Epoch, want.Epoch)
	}
	if n := wkB.Server().Metrics().Counter("query_cold_solves"); n != 0 {
		t.Fatalf("rejoined worker cold-solved %d times, want 0 (snapshot shipping failed)", n)
	}

	cancelA()
	cancelB()
	<-doneA
	<-doneB
}

// TestWorkerConfigValidation pins the config contract.
func TestWorkerConfigValidation(t *testing.T) {
	if _, err := NewWorker(WorkerConfig{}); err == nil {
		t.Error("nil Server accepted")
	}
	g, err := gen.ErdosRenyi(20, 40, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Graphs: []serve.GraphSpec{{Name: "g", Graph: g}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if _, err := NewWorker(WorkerConfig{Server: s, RouterURL: "http://127.0.0.1:1"}); err == nil {
		t.Error("router without advertise accepted")
	}
	if _, err := NewWorker(WorkerConfig{Server: s, RouterURL: "://bad", Advertise: "http://x:1"}); err == nil {
		t.Error("malformed router url accepted")
	}
}
