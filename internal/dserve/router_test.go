package dserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"graphpulse/internal/graph/gen"
	"graphpulse/internal/serve"
)

// newServeNode boots one real single-process server over the suite's
// deterministic test graph and exposes it via httptest.
func newServeNode(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	g, err := gen.ErdosRenyi(200, 900, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Graphs:         []serve.GraphSpec{{Name: "g", Graph: g}},
		DefaultTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func newTestRouter(t *testing.T, cfg RouterConfig) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	return rt, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func queryVia(t *testing.T, baseURL string) (*serve.QueryResponse, int) {
	t.Helper()
	code, body := postJSON(t, baseURL+"/v1/query", serve.QueryRequest{
		Graph: "g", Algorithm: "pr", Top: 1,
	})
	if code != http.StatusOK {
		return nil, code
	}
	var out serve.QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("query response: %v (%s)", err, body)
	}
	return &out, code
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRouterProxyAndWriteFanout drives the core data path: queries proxy
// to a replica; a mutation through the router lands on every replica
// (same epoch on both workers); /v1/graphs merges the fleet's inventory.
func TestRouterProxyAndWriteFanout(t *testing.T) {
	sA, tsA := newServeNode(t)
	sB, tsB := newServeNode(t)
	_, rts := newTestRouter(t, RouterConfig{
		Workers:     []string{tsA.URL, tsB.URL},
		Replication: 2,
	})

	resp, code := queryVia(t, rts.URL)
	if code != http.StatusOK || resp == nil {
		t.Fatalf("query via router: HTTP %d", code)
	}
	if resp.Graph != "g" {
		t.Fatalf("query answered for graph %q", resp.Graph)
	}

	code, body := postJSON(t, rts.URL+"/v1/mutate", serve.MutateRequest{
		Graph: "g", Edges: []serve.EdgeJSON{{Src: 0, Dst: 150, Weight: 0.7}},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate via router: HTTP %d: %s", code, body)
	}
	for i, s := range []*serve.Server{sA, sB} {
		epoch, err := s.GraphEpoch("g")
		if err != nil {
			t.Fatal(err)
		}
		if epoch != 1 {
			t.Errorf("worker %d epoch = %d, want 1 (write did not fan out)", i, epoch)
		}
	}

	gresp, err := http.Get(rts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	var infos []serve.GraphInfo
	if err := json.NewDecoder(gresp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "g" || infos[0].Epoch != 1 {
		t.Fatalf("merged inventory = %+v, want one row for g at epoch 1", infos)
	}
}

// flakyWorker answers health probes but kills every /v1/query — the
// "worker dies mid-query" shape the failover path must absorb.
func flakyWorker(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("httptest response is not hijackable")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close() // mid-request connection drop
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestRouterFailoverRetry pins the retry contract: with one replica
// dropping connections mid-query, every client query still gets exactly
// one 200 answer — the retries land on the live replica and are absorbed
// inside the router.
func TestRouterFailoverRetry(t *testing.T) {
	_, live := newServeNode(t)
	flaky := flakyWorker(t)
	rt, rts := newTestRouter(t, RouterConfig{
		Workers:     []string{live.URL, flaky.URL},
		Replication: 2,
		RetryBudget: 2,
		FailAfter:   100, // keep the flaky worker in rotation for the whole test
	})

	for i := 0; i < 8; i++ {
		resp, code := queryVia(t, rts.URL)
		if code != http.StatusOK || resp == nil {
			t.Fatalf("query %d: HTTP %d, want every query answered despite the flaky replica", i, code)
		}
	}
	if rt.Metrics().Counter("router_retries") == 0 {
		t.Error("no retries recorded; rotation never hit the flaky replica")
	}
	if rt.Metrics().Counter("router_proxy_errors") == 0 {
		t.Error("no proxy errors recorded")
	}
}

// TestRouterEjectionAndReadmission drives a worker through the health
// lifecycle: consecutive probe failures eject it, a passing probe after
// backoff readmits it.
func TestRouterEjectionAndReadmission(t *testing.T) {
	var failing atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rt, _ := newTestRouter(t, RouterConfig{
		Workers:       []string{ts.URL},
		ProbeInterval: 25 * time.Millisecond,
		FailAfter:     2,
		BackoffBase:   20 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
	})

	healthy := func() bool {
		ws := rt.Workers()
		return len(ws) == 1 && ws[0].Healthy
	}
	waitFor(t, "initial healthy state", 2*time.Second, healthy)

	failing.Store(true)
	waitFor(t, "ejection", 5*time.Second, func() bool { return !healthy() })
	if rt.Metrics().Counter("router_worker_ejected") == 0 {
		t.Error("ejection not counted")
	}

	failing.Store(false)
	waitFor(t, "readmission", 5*time.Second, healthy)
	if rt.Metrics().Counter("router_worker_readmitted") == 0 {
		t.Error("readmission not counted")
	}
}

// TestRouterNoReplica pins the empty-fleet answer: 503 with Retry-After,
// not a hang or a 500.
func TestRouterNoReplica(t *testing.T) {
	rt, rts := newTestRouter(t, RouterConfig{})
	code, _ := postJSON(t, rts.URL+"/v1/query", serve.QueryRequest{Graph: "g", Algorithm: "pr"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet query: HTTP %d, want 503", code)
	}
	if rt.Metrics().Counter("router_no_replica") == 0 {
		t.Error("router_no_replica not counted")
	}
}

// TestRouterRegistrationAndDrain exercises the control plane: dynamic
// registration populates the fleet and returns peers, draining cordons a
// worker, undraining restores it.
func TestRouterRegistrationAndDrain(t *testing.T) {
	_, tsA := newServeNode(t)
	_, tsB := newServeNode(t)
	rt, rts := newTestRouter(t, RouterConfig{Replication: 2})

	code, body := postJSON(t, rts.URL+"/internal/register", RegisterRequest{URL: tsA.URL, Graphs: []string{"g"}})
	if code != http.StatusOK {
		t.Fatalf("register A: HTTP %d: %s", code, body)
	}
	var ack RegisterResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if len(ack.Peers["g"]) != 0 {
		t.Fatalf("first worker sees peers %v, want none", ack.Peers["g"])
	}

	code, body = postJSON(t, rts.URL+"/internal/register", RegisterRequest{URL: tsB.URL, Graphs: []string{"g"}})
	if code != http.StatusOK {
		t.Fatalf("register B: HTTP %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if len(ack.Peers["g"]) != 1 || ack.Peers["g"][0] != tsA.URL {
		t.Fatalf("second worker peers = %v, want [%s]", ack.Peers["g"], tsA.URL)
	}
	if got := len(rt.Workers()); got != 2 {
		t.Fatalf("fleet size = %d, want 2", got)
	}

	// Bad registrations are rejected.
	if code, _ := postJSON(t, rts.URL+"/internal/register", RegisterRequest{URL: tsA.URL}); code != http.StatusBadRequest {
		t.Errorf("graphless registration: HTTP %d, want 400", code)
	}

	// Drain both workers: reads have nowhere to go.
	for _, u := range []string{tsA.URL, tsB.URL} {
		if code, body := postJSON(t, rts.URL+"/internal/drain", DrainRequest{URL: u}); code != http.StatusOK {
			t.Fatalf("drain %s: HTTP %d: %s", u, code, body)
		}
	}
	if _, code := queryVia(t, rts.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("query against fully drained fleet: HTTP %d, want 503", code)
	}

	// Undrain one: queries flow again.
	if code, body := postJSON(t, rts.URL+"/internal/drain", DrainRequest{URL: tsA.URL, Undrain: true}); code != http.StatusOK {
		t.Fatalf("undrain: HTTP %d: %s", code, body)
	}
	if resp, code := queryVia(t, rts.URL); code != http.StatusOK || resp == nil {
		t.Fatalf("query after undrain: HTTP %d, want 200", code)
	}

	// Draining an unknown worker is a 404.
	if code, _ := postJSON(t, rts.URL+"/internal/drain", DrainRequest{URL: "http://127.0.0.1:1"}); code != http.StatusNotFound {
		t.Errorf("drain of unknown worker: HTTP %d, want 404", code)
	}
}

// TestRouterFanoutPartial pins the parallel fan-out accounting: with one
// replica dead, a write still succeeds on the live one (the client sees
// 200) and the miss is counted as router_mutate_partial — the signal the
// anti-entropy loop later turns into a repair.
func TestRouterFanoutPartial(t *testing.T) {
	s, ts := newServeNode(t)
	rt, rts := newTestRouter(t, RouterConfig{
		Workers:     []string{ts.URL, "http://127.0.0.1:1"}, // second replica unreachable
		Replication: 2,
	})
	code, body := postJSON(t, rts.URL+"/v1/mutate", serve.MutateRequest{
		Graph: "g", Edges: []serve.EdgeJSON{{Src: 0, Dst: 150, Weight: 0.7}},
	})
	if code != http.StatusOK {
		t.Fatalf("partial mutate: HTTP %d: %s", code, body)
	}
	if epoch, err := s.GraphEpoch("g"); err != nil || epoch != 1 {
		t.Fatalf("live replica epoch = %d (%v), want 1", epoch, err)
	}
	if got := rt.Metrics().Counter("router_mutate_partial"); got != 1 {
		t.Fatalf("router_mutate_partial = %d, want 1", got)
	}
	if rt.Metrics().Counter("router_proxy_errors") == 0 {
		t.Error("dead replica's failure not counted")
	}

	// A deterministic rejection from every replica (unknown graph → 404)
	// is relayed as-is, not masked as a 502.
	code, _ = postJSON(t, rts.URL+"/v1/mutate", serve.MutateRequest{
		Graph: "nope", Edges: []serve.EdgeJSON{{Src: 0, Dst: 1}},
	})
	if code != http.StatusNotFound {
		t.Fatalf("all-reject fan-out: HTTP %d, want the workers' 404 relayed", code)
	}
}

// TestRouterFanoutConcurrent checks a wide fan-out actually reaches every
// replica under the bounded-concurrency path (FanoutConcurrency smaller
// than the replica count forces queueing through the semaphore).
func TestRouterFanoutConcurrent(t *testing.T) {
	servers := make([]*serve.Server, 5)
	urls := make([]string, 5)
	for i := range servers {
		s, ts := newServeNode(t)
		servers[i], urls[i] = s, ts.URL
	}
	rt, rts := newTestRouter(t, RouterConfig{
		Workers:           urls,
		Replication:       5,
		FanoutConcurrency: 2,
	})
	code, body := postJSON(t, rts.URL+"/v1/mutate", serve.MutateRequest{
		Graph: "g", Edges: []serve.EdgeJSON{{Src: 1, Dst: 160, Weight: 0.2}},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate: HTTP %d: %s", code, body)
	}
	for i, s := range servers {
		if epoch, err := s.GraphEpoch("g"); err != nil || epoch != 1 {
			t.Errorf("replica %d epoch = %d (%v), want 1", i, epoch, err)
		}
	}
	if got := rt.Metrics().Counter("router_mutate_partial"); got != 0 {
		t.Errorf("router_mutate_partial = %d on a full fan-out", got)
	}
}

// TestRouterJitterDeterminism pins the seeded backoff jitter: the same
// Seed draws the same schedule, and every draw stays in [d, 1.25d].
func TestRouterJitterDeterminism(t *testing.T) {
	draw := func(seed uint64) []time.Duration {
		rt, _ := newTestRouter(t, RouterConfig{Seed: seed})
		out := make([]time.Duration, 32)
		rt.mu.Lock()
		for i := range out {
			out[i] = rt.jitteredLocked(time.Second)
		}
		rt.mu.Unlock()
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < time.Second || a[i] > time.Second+time.Second/4 {
			t.Fatalf("draw %d = %v outside [1s, 1.25s]", i, a[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew the identical jitter schedule")
	}
}

// reaches every replica.
func TestRouterStreamFanout(t *testing.T) {
	sA, tsA := newServeNode(t)
	sB, tsB := newServeNode(t)
	_, rts := newTestRouter(t, RouterConfig{
		Workers:     []string{tsA.URL, tsB.URL},
		Replication: 2,
	})
	body := bytes.NewBufferString(`{"src":1,"dst":180,"weight":0.5}` + "\n" + `{"src":2,"dst":181,"weight":0.6}` + "\n")
	resp, err := http.Post(rts.URL+"/v1/stream?graph=g", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream via router: HTTP %d", resp.StatusCode)
	}
	for i, s := range []*serve.Server{sA, sB} {
		epoch, err := s.GraphEpoch("g")
		if err != nil {
			t.Fatal(err)
		}
		if epoch == 0 {
			t.Errorf("worker %d epoch still 0 after stream fan-out", i)
		}
	}
}
