package dserve

import (
	"context"
	"testing"

	"graphpulse/internal/dserve/chaos"
)

// chaosRepairEvents runs one chaos-wrapped worker through a fixed sequence
// of anti-entropy repairs against the donor and returns the injected fault
// log plus the worker (for its metrics).
func chaosRepairEvents(t *testing.T, seed uint64, donorURL string) ([]chaos.Event, *Worker) {
	t.Helper()
	proxy, err := chaos.New(chaos.Config{Seed: seed, DropRate: 0.5, TruncateRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	wk, _ := newWorkerNode(t, func(c *WorkerConfig) { c.Chaos = proxy })
	for i := 0; i < 25; i++ {
		// Repairs fail under injected drops/truncations; the sequence of
		// outbound requests (WAL-tail fetch, then snapshot fallback) is what
		// is being pinned, not the outcomes.
		wk.repairFrom(context.Background(), "g", donorURL) //nolint:errcheck
	}
	return proxy.Events(), wk
}

// TestWorkerChaosDeterminism pins the satellite contract: the chaos proxy
// interposed on the worker's peer client (snapshot fetch + WAL repair
// traffic) injects an identical fault log for identical (seed, request
// sequence) pairs, and its counters surface through the worker's metrics
// catalogue.
func TestWorkerChaosDeterminism(t *testing.T) {
	_, tsA := newWorkerNode(t, nil)
	solveAndMutate(t, tsA.URL)

	ev1, wk1 := chaosRepairEvents(t, 7, tsA.URL)
	ev2, _ := chaosRepairEvents(t, 7, tsA.URL)
	if len(ev1) == 0 {
		t.Fatal("no faults injected at drop=0.5/truncate=0.3 over 25 repairs")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("same seed injected %d vs %d faults", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}

	ev3, _ := chaosRepairEvents(t, 8, tsA.URL)
	same := len(ev1) == len(ev3)
	if same {
		for i := range ev1 {
			if ev1[i].Point != ev3[i].Point {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical fault log")
	}

	// Each injected fault reports to its chaos_* counter in the worker's
	// metrics catalogue.
	var drops, truncs int64
	for _, e := range ev1 {
		switch e.Point {
		case "drop":
			drops++
		case "truncate":
			truncs++
		}
	}
	m := wk1.Server().Metrics()
	if got := m.Counter("chaos_drops"); got != drops {
		t.Errorf("chaos_drops = %d, want %d", got, drops)
	}
	if got := m.Counter("chaos_truncates"); got != truncs {
		t.Errorf("chaos_truncates = %d, want %d", got, truncs)
	}
}
