package dserve

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("graph-%d", i)
	}
	return out
}

func TestRingLookupBasics(t *testing.T) {
	r := NewRing(64)
	if got := r.Lookup("k", 1); got != nil {
		t.Fatalf("empty ring lookup = %v, want nil", got)
	}
	members := ringMembers(5)
	for _, m := range members {
		r.Add(m)
	}
	r.Add(members[0]) // duplicate add is a no-op
	if r.Len() != 5 {
		t.Fatalf("len = %d, want 5", r.Len())
	}
	if got := len(r.Members()); got != 5 {
		t.Fatalf("members = %d, want 5", got)
	}

	// Replica sets are distinct, sized as asked, and stable.
	for _, key := range ringKeys(50) {
		set := r.Lookup(key, 3)
		if len(set) != 3 {
			t.Fatalf("lookup(%q,3) = %d members", key, len(set))
		}
		seen := map[string]bool{}
		for _, m := range set {
			if seen[m] {
				t.Fatalf("lookup(%q,3) repeated member %s", key, m)
			}
			seen[m] = true
		}
		again := r.Lookup(key, 3)
		for i := range set {
			if set[i] != again[i] {
				t.Fatalf("lookup(%q) not deterministic", key)
			}
		}
	}
	// n<=0 and n>len return every member.
	if got := len(r.Lookup("k", 0)); got != 5 {
		t.Fatalf("lookup n=0 = %d members, want all 5", got)
	}
	if got := len(r.Lookup("k", 99)); got != 5 {
		t.Fatalf("lookup n=99 = %d members, want all 5", got)
	}

	r.Remove(members[2])
	r.Remove("http://nope") // unknown removal is a no-op
	if r.Len() != 4 {
		t.Fatalf("len after remove = %d, want 4", r.Len())
	}
	for _, key := range ringKeys(50) {
		for _, m := range r.Lookup(key, 2) {
			if m == members[2] {
				t.Fatalf("removed member still owns %q", key)
			}
		}
	}
}

// TestRingKeyMovementBounded pins the consistent-hashing property: with N
// members, removing (or adding) one moves only about 1/N of the keyspace.
// A modulo-style placement would move nearly all keys.
func TestRingKeyMovementBounded(t *testing.T) {
	const nMembers, nKeys = 8, 2000
	members := ringMembers(nMembers)
	build := func(ms []string) *Ring {
		r := NewRing(64)
		for _, m := range ms {
			r.Add(m)
		}
		return r
	}
	owners := func(r *Ring) map[string]string {
		out := make(map[string]string, nKeys)
		for _, k := range ringKeys(nKeys) {
			out[k] = r.Lookup(k, 1)[0]
		}
		return out
	}
	moved := func(a, b map[string]string) int {
		n := 0
		for k, o := range a {
			if b[k] != o {
				n++
			}
		}
		return n
	}

	before := owners(build(members))

	// Remove one member: ~1/8 of keys should move, and every moved key
	// must have been owned by the removed member.
	r2 := build(members)
	r2.Remove(members[3])
	after := owners(r2)
	m := 0
	for k, o := range before {
		if after[k] != o {
			m++
			if o != members[3] {
				t.Fatalf("key %q moved from surviving member %s to %s", k, o, after[k])
			}
		}
	}
	if frac := float64(m) / nKeys; frac > 0.30 {
		t.Errorf("removal moved %.0f%% of keys, want ≈ 1/%d (< 30%%)", 100*frac, nMembers)
	}

	// Add one member: only keys claimed by the newcomer may move.
	r3 := build(members)
	r3.Add("http://10.0.0.99:8080")
	grown := owners(r3)
	m = moved(before, grown)
	for k, o := range before {
		if grown[k] != o && grown[k] != "http://10.0.0.99:8080" {
			t.Fatalf("key %q moved to %s, not the new member", k, grown[k])
		}
	}
	if frac := float64(m) / nKeys; frac > 0.30 {
		t.Errorf("addition moved %.0f%% of keys, want ≈ 1/%d (< 30%%)", 100*frac, nMembers+1)
	}
	if m == 0 {
		t.Error("addition moved no keys; new member owns nothing")
	}
}
