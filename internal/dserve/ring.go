package dserve

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over worker IDs: each member is hashed
// onto the ring at VirtualNodes points, and a key is owned by the first
// members encountered clockwise from the key's hash. Virtual nodes keep
// both load spread and key movement bounded — removing one of N members
// moves only ~1/N of the keyspace, which the stability tests pin. The
// ring itself is not concurrency-safe; the Router serializes access
// through its own lock.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (values below 1 get the default 64).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a member; adding an existing member is a no-op.
func (r *Ring) Add(id string) {
	if r.members[id] {
		return
	}
	r.members[id] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(id + "#" + strconv.Itoa(i)), owner: id})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].owner < r.points[b].owner
	})
}

// Remove deletes a member and its virtual nodes; unknown members are a
// no-op.
func (r *Ring) Remove(id string) {
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.owner != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member set, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns up to n distinct members owning key, in ring order
// starting clockwise from the key's hash — the replica set, primary
// first. n <= 0 or n beyond the member count returns every member.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			out = append(out, p.owner)
		}
	}
	return out
}
