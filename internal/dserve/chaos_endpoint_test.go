package dserve

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"graphpulse/internal/dserve/chaos"
)

// TestRouterChaosEndpoint drives the chaos control plane end to end:
// partition a worker through POST /internal/chaos, watch router→worker
// traffic to it fail (and get counted), heal it, and watch traffic flow
// again. Without a chaos proxy the endpoint does not exist.
func TestRouterChaosEndpoint(t *testing.T) {
	_, ts := newServeNode(t)
	proxy, err := chaos.New(chaos.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt, rts := newTestRouter(t, RouterConfig{
		Workers:       []string{ts.URL},
		Chaos:         proxy,
		ProbeInterval: time.Hour, // keep probes out of the partition counters
		FailAfter:     100,       // and keep the worker in rotation while cut off
	})

	// Healthy baseline through the un-triggered proxy.
	if resp, code := queryVia(t, rts.URL); code != http.StatusOK || resp == nil {
		t.Fatalf("baseline query: HTTP %d", code)
	}

	code, body := postJSON(t, rts.URL+"/internal/chaos", ChaosRequest{Partition: ts.URL})
	if code != http.StatusOK {
		t.Fatalf("partition: HTTP %d: %s", code, body)
	}
	var st ChaosStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Partitioned) != 1 {
		t.Fatalf("chaos status after partition = %+v", st)
	}
	if _, code := queryVia(t, rts.URL); code == http.StatusOK {
		t.Fatal("query succeeded through an active partition")
	}
	if rt.Metrics().Counter("chaos_partition_blocks") == 0 {
		t.Error("partition blocks not surfaced in the router's metrics")
	}

	code, body = postJSON(t, rts.URL+"/internal/chaos", ChaosRequest{HealAll: true})
	if code != http.StatusOK {
		t.Fatalf("heal: HTTP %d: %s", code, body)
	}
	if resp, code := queryVia(t, rts.URL); code != http.StatusOK || resp == nil {
		t.Fatalf("query after heal: HTTP %d", code)
	}

	// GET reports without mutating.
	resp, err := http.Get(rts.URL + "/internal/chaos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos status: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Partitioned) != 0 || st.Events == 0 {
		t.Fatalf("chaos status after heal = %+v, want no partitions and a nonzero event count", st)
	}

	// An empty request is rejected.
	if code, _ := postJSON(t, rts.URL+"/internal/chaos", ChaosRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty chaos request: HTTP %d, want 400", code)
	}
}

// TestRouterChaosDisabled pins that a chaos-less router exposes no fault
// surface: both chaos endpoints 404.
func TestRouterChaosDisabled(t *testing.T) {
	_, rts := newTestRouter(t, RouterConfig{})
	if code, _ := postJSON(t, rts.URL+"/internal/chaos", ChaosRequest{Partition: "http://x:1"}); code != http.StatusNotFound {
		t.Fatalf("chaos POST on plain router: HTTP %d, want 404", code)
	}
	resp, err := http.Get(rts.URL + "/internal/chaos")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("chaos GET on plain router: HTTP %d, want 404", resp.StatusCode)
	}
}
