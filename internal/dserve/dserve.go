// Package dserve is the distributed serving tier: a stateless router in
// front of N serve.Server worker processes, scaling the single-process
// analytics service (internal/serve) horizontally — the software analogue
// of the paper's multi-chip scale-out (Section IV-F option b), whose
// cycle-level counterpart is the internal/core cluster interconnect model.
//
// Topology and responsibilities:
//
//   - The Router consistent-hashes requests by graph name onto a replica
//     set of Config.Replication workers (a Ring of virtual nodes keeps key
//     movement bounded when workers join or leave). Reads (/v1/query)
//     rotate across healthy replicas and retry on the next replica after
//     an upstream failure, within a retry budget; writes (/v1/mutate,
//     /v1/stream) fan out to every replica, serialized per graph so all
//     replicas apply mutation epochs in the same order.
//   - Health is probed (GET /healthz) on a fixed interval. A worker
//     failing Config.FailAfter consecutive probes (or request-path
//     attempts) is ejected and re-probed on an exponential backoff; a
//     succeeding probe — or an inbound registration heartbeat — readmits
//     it immediately.
//   - The Worker wraps a serve.Server with the distributed-tier duties:
//     it registers with the router (and re-registers on a heartbeat, so a
//     restarted router relearns the fleet from its workers — the router
//     holds no durable state), periodically persists serve.Snapshot
//     images via internal/atomicio, serves them to peers on
//     GET /internal/snapshot, and at startup restores the newest local or
//     peer snapshot instead of cold re-solving.
//
// The router speaks the same /v1/* API as a single worker, so cmd/loadgen
// and any serve client work against it unchanged. OPERATIONS.md is the
// deployment runbook; DESIGN.md ("Distributed serving") maps this design
// onto the paper's multi-chip scheme and states where the analogy breaks.
package dserve

// RegisterRequest is the body of POST /internal/register: a worker
// announcing (or re-announcing, as a heartbeat) its advertised base URL
// and the graphs it hosts.
type RegisterRequest struct {
	URL    string   `json:"url"`
	Graphs []string `json:"graphs"`
}

// RegisterResponse acknowledges a registration. Peers maps each of the
// worker's graphs to the *other* currently-healthy workers hosting it —
// the snapshot sources a rejoining worker warm-starts from.
type RegisterResponse struct {
	Peers map[string][]string `json:"peers,omitempty"`
}

// WorkerInfo is one row of GET /internal/workers: the router's live view
// of a worker.
type WorkerInfo struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Draining marks a worker cordoned via POST /internal/drain: it keeps
	// its registration but receives no new traffic.
	Draining bool `json:"draining,omitempty"`
	// Fails is the current consecutive probe/request failure count.
	Fails int `json:"fails,omitempty"`
	// Graphs is the hosted graph set from registration; empty means the
	// worker was configured as a static seed and is assumed to host
	// every graph until it registers.
	Graphs  []string `json:"graphs,omitempty"`
	LastErr string   `json:"last_err,omitempty"`
}

// DrainRequest is the body of POST /internal/drain: cordon (or, with
// Undrain, readmit) the worker with the given advertised URL.
type DrainRequest struct {
	URL     string `json:"url"`
	Undrain bool   `json:"undrain,omitempty"`
}

// WALTailResponse is the body of a worker's GET /internal/wal answer:
// the records after ?after=, plus the (epoch, digest) pair the donor was
// at when it shipped them — the repairing replica compares against it to
// decide whether the replay actually converged.
type WALTailResponse struct {
	Graph   string      `json:"graph"`
	Epoch   uint64      `json:"epoch"`
	Digest  string      `json:"digest"`
	Records []WALRecord `json:"records"`
}

// RepairRequest is the body of POST /internal/repair: the router asking
// a lagging worker to catch graph up from the named donor peer — WAL
// suffix replay when the donor's log covers the gap, full snapshot
// transfer otherwise.
type RepairRequest struct {
	Graph string `json:"graph"`
	Peer  string `json:"peer"`
}

// RepairResponse reports how a repair converged: Mode "wal" (suffix
// replayed), "snapshot" (full transfer), and the epoch reached.
type RepairResponse struct {
	Graph    string `json:"graph"`
	Mode     string `json:"mode"`
	Epoch    uint64 `json:"epoch"`
	Replayed int    `json:"replayed,omitempty"`
}

// ChaosRequest is the body of the router's POST /internal/chaos (only
// mounted when the chaos proxy is enabled): exactly one of Partition
// (worker URL or host to cut off), Heal, or HealAll.
type ChaosRequest struct {
	Partition string `json:"partition,omitempty"`
	Heal      string `json:"heal,omitempty"`
	HealAll   bool   `json:"heal_all,omitempty"`
}

// ChaosStatus reports the chaos proxy's current partitions and total
// injected-fault count.
type ChaosStatus struct {
	Partitioned []string `json:"partitioned"`
	Events      uint64   `json:"events"`
}
