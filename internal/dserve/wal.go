package dserve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"graphpulse/internal/graph"
	"graphpulse/internal/serve"
)

// The durable mutation WAL: one directory per graph holding JSON-lines
// segments of epoch-tagged mutation records. A worker appends (and
// fsyncs) every applied mutation epoch before the serve layer
// acknowledges it, so a crash between snapshot ticks loses nothing — on
// restart the worker replays the log tail past its last snapshot
// (Worker.ReplayWAL), and the anti-entropy loop ships a laggard replica
// the WAL suffix it missed. Segments rotate at WALSegmentBytes and are
// truncated once a snapshot covers them (TruncateThrough), bounding
// retention at roughly one snapshot interval of mutations.

// ErrWALTruncated is returned by TailAfter when the log no longer covers
// the requested suffix contiguously: the covering segments were truncated
// after a snapshot, the epoch sequence has a hole (a snapshot adoption
// jumped past the log), or the suffix exceeds the shippable cap. The
// caller falls back to a full snapshot transfer.
var ErrWALTruncated = errors.New("dserve: wal does not cover requested suffix")

// maxWALTail caps how many records TailAfter returns; past it a snapshot
// transfer is cheaper than replaying the log, so the tail is reported as
// truncated.
const maxWALTail = 65536

// WALRecord is the on-disk and wire form of one mutation epoch.
type WALRecord struct {
	Epoch uint64 `json:"epoch"`
	// TS is the mutation's ingest timestamp in Unix nanoseconds; replay
	// re-applies edges with it so sliding-window expiry stays coherent.
	TS      int64            `json:"ts"`
	Added   []serve.EdgeJSON `json:"added,omitempty"`
	Removed []serve.EdgeJSON `json:"removed,omitempty"`
}

// walRecordOf converts a serve-layer mutation record to its wire form.
func walRecordOf(rec serve.MutationRecord) WALRecord {
	return WALRecord{
		Epoch:   rec.Epoch,
		TS:      rec.Time.UnixNano(),
		Added:   edgesToJSON(rec.Added),
		Removed: edgesToJSON(rec.Removed),
	}
}

// mutationRecord converts back for replay into the named graph.
func (r WALRecord) mutationRecord(graphName string) serve.MutationRecord {
	return serve.MutationRecord{
		Graph:   graphName,
		Epoch:   r.Epoch,
		Time:    timeFromUnixNano(r.TS),
		Added:   edgesFromJSONWire(r.Added),
		Removed: edgesFromJSONWire(r.Removed),
	}
}

func edgesToJSON(edges []graph.Edge) []serve.EdgeJSON {
	if len(edges) == 0 {
		return nil
	}
	out := make([]serve.EdgeJSON, len(edges))
	for i, e := range edges {
		out[i] = serve.EdgeJSON{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
	}
	return out
}

func edgesFromJSONWire(edges []serve.EdgeJSON) []graph.Edge {
	if len(edges) == 0 {
		return nil
	}
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
	}
	return out
}

// walSegment is one on-disk segment and the epoch range it holds.
type walSegment struct {
	path  string
	first uint64
	last  uint64
}

// WAL is one graph's write-ahead log. All methods are concurrency-safe;
// appends fsync before returning (the durability point the mutation hook
// relies on).
type WAL struct {
	dir      string
	segBytes int64

	mu          sync.Mutex
	segs        []walSegment
	f           *os.File // active segment (last of segs), nil until first append
	activeSize  int64
	lastEpoch   uint64
	tailDropped int
}

// openWAL opens (or creates) the log directory, scans existing segments,
// and repairs a torn tail: a final record cut mid-write by a crash is
// dropped (counted in TailDropped), everything before it is kept.
func openWAL(dir string, segBytes int64) (*WAL, error) {
	if segBytes <= 0 {
		segBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	w := &WAL{dir: dir, segBytes: segBytes}
	for i, path := range paths {
		recs, goodBytes, torn, err := scanSegment(path, w.lastEpoch)
		if err != nil {
			return nil, err
		}
		if torn {
			// Crash mid-append (or corruption): keep the good prefix of this
			// segment and drop every later segment — the log must stay a
			// contiguous prefix of the mutation sequence.
			w.tailDropped++
			if err := os.Truncate(path, goodBytes); err != nil {
				return nil, fmt.Errorf("repair wal segment %s: %w", path, err)
			}
			for _, later := range paths[i+1:] {
				w.tailDropped++
				if err := os.Remove(later); err != nil {
					return nil, fmt.Errorf("drop wal segment %s: %w", later, err)
				}
			}
		}
		if len(recs) == 0 {
			if err := os.Remove(path); err != nil {
				return nil, err
			}
		} else {
			w.segs = append(w.segs, walSegment{
				path:  path,
				first: recs[0].Epoch,
				last:  recs[len(recs)-1].Epoch,
			})
			w.lastEpoch = recs[len(recs)-1].Epoch
		}
		if torn {
			break
		}
	}
	if n := len(w.segs); n > 0 {
		f, err := os.OpenFile(w.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		w.f = f
		w.activeSize = st.Size()
	}
	return w, nil
}

// scanSegment reads one segment's records, validating that epochs stay
// strictly increasing (continuing from prevEpoch). It returns the decoded
// records, the byte offset of the first bad line (== file size when the
// whole segment is good), and whether a torn/corrupt tail was found.
func scanSegment(path string, prevEpoch uint64) (recs []WALRecord, goodBytes int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err == io.EOF {
			return recs, goodBytes, false, nil
		}
		if err != nil && err != io.EOF {
			return nil, 0, false, err
		}
		var rec WALRecord
		bad := err == io.EOF || // final line without newline: cut mid-write
			json.Unmarshal(line, &rec) != nil ||
			rec.Epoch <= prevEpoch
		if bad {
			return recs, goodBytes, true, nil
		}
		recs = append(recs, rec)
		prevEpoch = rec.Epoch
		goodBytes += int64(len(line))
	}
}

// Append durably logs one record: marshal, rotate the segment if the
// active one is full, write, fsync. A record at or below the last logged
// epoch is skipped (appended=false) — that makes the mutation hook safe
// to re-fire during replay. rotated reports that a new segment was
// started with a previous one retained.
func (w *WAL) Append(rec WALRecord) (appended, rotated bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rec.Epoch <= w.lastEpoch {
		return false, false, nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return false, false, err
	}
	line = append(line, '\n')
	if w.f == nil || (w.activeSize > 0 && w.activeSize+int64(len(line)) > w.segBytes) {
		hadSegment := w.f != nil
		if w.f != nil {
			w.f.Close()
			w.f = nil
		}
		path := filepath.Join(w.dir, fmt.Sprintf("%020d.wal", rec.Epoch))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
		if err != nil {
			return false, false, err
		}
		w.f = f
		w.activeSize = 0
		w.segs = append(w.segs, walSegment{path: path, first: rec.Epoch, last: rec.Epoch})
		rotated = hadSegment
	}
	if _, err := w.f.Write(line); err != nil {
		return false, rotated, err
	}
	if err := w.f.Sync(); err != nil {
		return false, rotated, err
	}
	w.activeSize += int64(len(line))
	w.lastEpoch = rec.Epoch
	w.segs[len(w.segs)-1].last = rec.Epoch
	return true, rotated, nil
}

// LastEpoch reports the newest logged epoch (0 when the log is empty).
func (w *WAL) LastEpoch() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastEpoch
}

// TailDropped reports how many torn or corrupt tail pieces were dropped
// when the log was opened.
func (w *WAL) TailDropped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tailDropped
}

// TailAfter returns every logged record with epoch > after, verifying the
// suffix is contiguous from after+1 through the last logged epoch. A
// suffix the log cannot produce — truncated coverage, an epoch hole, or
// more than maxWALTail records — fails with ErrWALTruncated, telling the
// caller to ship a snapshot instead.
func (w *WAL) TailAfter(after uint64) ([]WALRecord, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if after >= w.lastEpoch {
		return nil, nil
	}
	if len(w.segs) == 0 || w.segs[0].first > after+1 {
		return nil, fmt.Errorf("%w: after=%d, earliest retained=%d",
			ErrWALTruncated, after, w.earliestLocked())
	}
	if w.lastEpoch-after > maxWALTail {
		return nil, fmt.Errorf("%w: suffix of %d records exceeds cap %d",
			ErrWALTruncated, w.lastEpoch-after, maxWALTail)
	}
	var out []WALRecord
	expect := after + 1
	for _, seg := range w.segs {
		if seg.last < expect {
			continue
		}
		recs, _, _, err := scanSegment(seg.path, 0)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			if rec.Epoch <= after {
				continue
			}
			if rec.Epoch != expect {
				return nil, fmt.Errorf("%w: hole at epoch %d (next logged %d)",
					ErrWALTruncated, expect, rec.Epoch)
			}
			out = append(out, rec)
			expect++
		}
	}
	return out, nil
}

func (w *WAL) earliestLocked() uint64 {
	if len(w.segs) == 0 {
		return 0
	}
	return w.segs[0].first
}

// TruncateThrough deletes every non-active segment entirely covered by a
// snapshot at the given epoch (segment.last <= epoch) and returns how
// many were removed. The active segment is always retained.
func (w *WAL) TruncateThrough(epoch uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	kept := w.segs[:0]
	for i, seg := range w.segs {
		if i < len(w.segs)-1 && seg.last <= epoch {
			if err := os.Remove(seg.path); err != nil {
				w.segs = append(kept, w.segs[i:]...)
				return removed, err
			}
			removed++
			continue
		}
		kept = append(kept, seg)
	}
	w.segs = kept
	return removed, nil
}

// Close closes the active segment file. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// timeFromUnixNano keeps the conversion in one place and tolerant of the
// zero value (a zero TS replays as the zero time, i.e. a permanent edge).
func timeFromUnixNano(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
