package dserve

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"graphpulse/internal/serve"
)

// mutateDirect applies one insert-only batch straight to a worker,
// bypassing the router — how tests manufacture a diverged replica set.
func mutateDirect(t *testing.T, url string, src, dst uint32) {
	t.Helper()
	code, body := postJSON(t, url+"/v1/mutate", serve.MutateRequest{
		Graph: "g", Edges: []serve.EdgeJSON{{Src: src, Dst: dst, Weight: 0.4}},
	})
	if code != http.StatusOK {
		t.Fatalf("direct mutate: HTTP %d: %s", code, body)
	}
}

// digestOf reads a worker's state digest straight off its serve.Server.
func digestOf(t *testing.T, wk *Worker) serve.DigestInfo {
	t.Helper()
	info, err := wk.Server().StateDigest("g")
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestAntiEntropyHealsViaWAL is the tentpole integration test (run under
// -race in CI): two replicas diverge when one receives writes the other
// never saw; the router's anti-entropy loop detects the digest mismatch
// and heals the laggard by shipping the donor's WAL suffix — verified by
// reading the healed replica directly, not through the router.
func TestAntiEntropyHealsViaWAL(t *testing.T) {
	wkA, tsA := newWorkerNode(t, func(c *WorkerConfig) { c.WALDir = t.TempDir() })
	wkB, tsB := newWorkerNode(t, func(c *WorkerConfig) { c.WALDir = t.TempDir() })
	rt, rts := newTestRouter(t, RouterConfig{
		Replication:         2,
		ProbeInterval:       50 * time.Millisecond,
		AntiEntropyInterval: 50 * time.Millisecond,
	})
	for _, u := range []string{tsA.URL, tsB.URL} {
		if code, body := postJSON(t, rts.URL+"/internal/register", RegisterRequest{URL: u, Graphs: []string{"g"}}); code != http.StatusOK {
			t.Fatalf("register %s: HTTP %d: %s", u, code, body)
		}
	}

	// Diverge: two writes land on A only (as if B missed two fan-outs).
	mutateDirect(t, tsA.URL, 3, 170)
	mutateDirect(t, tsA.URL, 5, 171)
	want := digestOf(t, wkA)
	if want.Epoch != 2 {
		t.Fatalf("donor epoch = %d, want 2", want.Epoch)
	}
	if got := digestOf(t, wkB); got.Digest == want.Digest {
		t.Fatal("replicas not diverged; test setup broken")
	}

	waitFor(t, "anti-entropy heal", 10*time.Second, func() bool {
		got := digestOf(t, wkB)
		return got.Epoch == want.Epoch && got.Digest == want.Digest
	})
	// The replica converges inside the laggard's repair handler, strictly
	// before the router's repair request returns and is counted — so wait
	// for the counter rather than asserting it instantly.
	waitFor(t, "router repair counter", 5*time.Second, func() bool {
		return rt.Metrics().Counter("antientropy_repairs") >= 1
	})
	if rt.Metrics().Counter("antientropy_divergence") == 0 {
		t.Error("divergence not counted")
	}
	if wkB.Server().Metrics().Counter("antientropy_repairs_applied") == 0 {
		t.Error("wal-suffix repair not counted on the healed worker")
	}
	if wkB.Server().Metrics().Counter("antientropy_snapshot_fallbacks") != 0 {
		t.Error("heal fell back to a snapshot; wal suffix should have covered it")
	}
	// The healed replica answers the donor's epoch directly, with no cold
	// re-solve: the replayed batches rebuilt its mutation history.
	resp, code := queryVia(t, tsB.URL)
	if code != http.StatusOK || resp == nil {
		t.Fatalf("query on healed replica: HTTP %d", code)
	}
	if resp.Epoch != want.Epoch {
		t.Fatalf("healed replica answers epoch %d, want %d", resp.Epoch, want.Epoch)
	}
	// Replay re-fired B's mutation hook, so B's own WAL now covers the
	// repaired epochs and can donate onward.
	if got := wkB.wals["g"].LastEpoch(); got != want.Epoch {
		t.Fatalf("healed replica's wal at epoch %d, want %d", got, want.Epoch)
	}
}

// TestRepairDirectWALMode pins the worker-side repair path in isolation:
// a laggard asked to repair from a WAL-bearing donor replays the suffix
// (mode "wal") and converges to digest equality.
func TestRepairDirectWALMode(t *testing.T) {
	wkA, tsA := newWorkerNode(t, func(c *WorkerConfig) { c.WALDir = t.TempDir() })
	wkB, tsB := newWorkerNode(t, func(c *WorkerConfig) { c.WALDir = t.TempDir() })
	mutateDirect(t, tsA.URL, 3, 170)
	mutateDirect(t, tsA.URL, 5, 171)

	code, body := postJSON(t, tsB.URL+"/internal/repair", RepairRequest{Graph: "g", Peer: tsA.URL})
	if code != http.StatusOK {
		t.Fatalf("repair: HTTP %d: %s", code, body)
	}
	var resp RepairResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != "wal" || resp.Epoch != 2 || resp.Replayed != 2 {
		t.Fatalf("repair = %+v, want mode=wal epoch=2 replayed=2", resp)
	}
	if a, b := digestOf(t, wkA), digestOf(t, wkB); a != b {
		t.Fatalf("digests after repair differ: %+v vs %+v", a, b)
	}
	if wkA.Server().Metrics().Counter("antientropy_wal_served") == 0 {
		t.Error("donor did not count the shipped suffix")
	}
}

// TestRepairSnapshotFallback pins the fallback: when the donor cannot
// produce the WAL suffix (here: no WAL at all, answering 410), the
// laggard adopts the donor's full snapshot instead.
func TestRepairSnapshotFallback(t *testing.T) {
	wkA, tsA := newWorkerNode(t, nil) // no WALDir: /internal/wal answers 410
	wkB, tsB := newWorkerNode(t, func(c *WorkerConfig) { c.WALDir = t.TempDir() })
	mutateDirect(t, tsA.URL, 3, 170)
	solveAndMutate(t, tsA.URL) // cached fixed point rides along in the snapshot

	code, body := postJSON(t, tsB.URL+"/internal/repair", RepairRequest{Graph: "g", Peer: tsA.URL})
	if code != http.StatusOK {
		t.Fatalf("repair: HTTP %d: %s", code, body)
	}
	var resp RepairResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != "snapshot" {
		t.Fatalf("repair mode = %q, want snapshot", resp.Mode)
	}
	if a, b := digestOf(t, wkA), digestOf(t, wkB); a != b {
		t.Fatalf("digests after snapshot repair differ: %+v vs %+v", a, b)
	}
	if wkA.Server().Metrics().Counter("antientropy_wal_gone") == 0 {
		t.Error("donor did not count the 410")
	}
	if wkB.Server().Metrics().Counter("antientropy_snapshot_fallbacks") == 0 {
		t.Error("snapshot fallback not counted on the laggard")
	}
}

// TestDigestEndpoint pins the wire shape of GET /internal/digest and that
// equal states digest equal while different states differ.
func TestDigestEndpoint(t *testing.T) {
	wkA, tsA := newWorkerNode(t, nil)
	_, tsB := newWorkerNode(t, nil)

	get := func(url string) serve.DigestInfo {
		t.Helper()
		resp, err := http.Get(url + "/internal/digest?graph=g")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("digest: HTTP %d", resp.StatusCode)
		}
		var info serve.DigestInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		return info
	}

	a, b := get(tsA.URL), get(tsB.URL)
	if a != b {
		t.Fatalf("identical fresh replicas digest differently: %+v vs %+v", a, b)
	}
	if a.Graph != "g" || a.Epoch != 0 || a.Digest == "" {
		t.Fatalf("digest info = %+v", a)
	}
	mutateDirect(t, tsA.URL, 3, 170)
	if a2 := get(tsA.URL); a2.Digest == a.Digest || a2.Epoch != 1 {
		t.Fatalf("mutation did not change the digest: %+v -> %+v", a, a2)
	}
	if wkA.Server().Metrics().Counter("antientropy_digests_served") < 2 {
		t.Error("digest serves not counted")
	}

	// Unknown graph is a 404.
	resp, err := http.Get(tsA.URL + "/internal/digest?graph=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph digest: HTTP %d, want 404", resp.StatusCode)
	}
}
