package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// burst sends n serial GETs through client and returns per-request
// outcomes ("ok", "err", or "short" for a truncated body).
func burst(t *testing.T, client *http.Client, url string, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := range out {
		resp, err := client.Get(url)
		if err != nil {
			out[i] = "err"
			continue
		}
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case rerr != nil:
			out[i] = "short"
		default:
			out[i] = "ok"
		}
	}
	return out
}

// bigBodyServer answers every request with a body larger than the
// truncation cap, so truncate faults are observable as read errors.
func bigBodyServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("x", 4096))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestDeterminism pins the core contract: two proxies with the same seed
// fed the same serial request sequence inject the identical fault log,
// while a different seed diverges.
func TestDeterminism(t *testing.T) {
	ts := bigBodyServer(t)
	cfg := Config{Seed: 7, DropRate: 0.3, DelayRate: 0.2, TruncateRate: 0.3, Delay: time.Microsecond}

	run := func(seed uint64) ([]string, []Event) {
		p, err := New(Config{Seed: seed, DropRate: cfg.DropRate, DelayRate: cfg.DelayRate,
			TruncateRate: cfg.TruncateRate, Delay: cfg.Delay})
		if err != nil {
			t.Fatal(err)
		}
		outcomes := burst(t, p.Wrap(nil), ts.URL, 64)
		return outcomes, p.Events()
	}

	out1, ev1 := run(cfg.Seed)
	out2, ev2 := run(cfg.Seed)
	if fmt.Sprint(out1) != fmt.Sprint(out2) {
		t.Fatalf("same seed, different outcomes:\n%v\n%v", out1, out2)
	}
	if len(ev1) == 0 {
		t.Fatal("no faults injected at 30% rates over 64 requests")
	}
	if fmt.Sprint(ev1) != fmt.Sprint(ev2) {
		t.Fatalf("same seed, different fault logs:\n%v\n%v", ev1, ev2)
	}

	_, ev3 := run(cfg.Seed + 1)
	if fmt.Sprint(ev1) == fmt.Sprint(ev3) {
		t.Fatal("different seeds injected the identical fault log")
	}
}

// TestDisabledPassthrough pins that chaos off is chaos absent: a nil
// proxy returns the client unchanged, and a zero-rate proxy injects
// nothing.
func TestDisabledPassthrough(t *testing.T) {
	client := &http.Client{Timeout: time.Second}
	var nilProxy *Proxy
	if got := nilProxy.Wrap(client); got != client {
		t.Fatal("nil proxy did not return the client unchanged")
	}
	// Every other method is a nil-safe no-op.
	nilProxy.Partition("http://x:1")
	nilProxy.Heal("x:1")
	nilProxy.HealAll()
	nilProxy.SetSink(func(string, int64) {})
	if nilProxy.Partitioned() != nil || nilProxy.Events() != nil || nilProxy.EventCount() != 0 {
		t.Fatal("nil proxy reported state")
	}

	ts := bigBodyServer(t)
	p, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range burst(t, p.Wrap(nil), ts.URL, 32) {
		if got != "ok" {
			t.Fatalf("zero-rate proxy faulted request %d: %s", i, got)
		}
	}
	if p.EventCount() != 0 {
		t.Fatalf("zero-rate proxy logged %d events", p.EventCount())
	}
}

// TestPartitionHeal flips a host partition on and off and checks both the
// request outcomes and the counter sink.
func TestPartitionHeal(t *testing.T) {
	ts := bigBodyServer(t)
	p, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	p.SetSink(func(name string, delta int64) { counts[name] += delta })
	client := p.Wrap(nil)

	// Partition accepts the full URL form the router knows workers by.
	p.Partition(ts.URL)
	if got := p.Partitioned(); len(got) != 1 {
		t.Fatalf("Partitioned() = %v, want one host", got)
	}
	if _, err := client.Get(ts.URL); err == nil || !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("partitioned request err = %v, want partition error", err)
	}
	if counts["chaos_partition_blocks"] != 1 {
		t.Fatalf("partition block not counted: %v", counts)
	}

	p.Heal(ts.URL)
	if resp, err := client.Get(ts.URL); err != nil {
		t.Fatalf("healed request failed: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := p.Partitioned(); len(got) != 0 {
		t.Fatalf("Partitioned() after heal = %v, want none", got)
	}

	p.Partition(ts.URL)
	p.HealAll()
	if resp, err := client.Get(ts.URL); err != nil {
		t.Fatalf("request after HealAll failed: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestTruncateFault forces a truncate and checks the reader sees an
// unexpected EOF after the cap, not a clean body.
func TestTruncateFault(t *testing.T) {
	ts := bigBodyServer(t)
	p, err := New(Config{Seed: 1, TruncateRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.Wrap(nil).Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(resp.Body)
	if rerr != io.ErrUnexpectedEOF {
		t.Fatalf("read err = %v, want io.ErrUnexpectedEOF", rerr)
	}
	if len(data) == 0 || len(data) > truncateAfterBytes {
		t.Fatalf("read %d bytes through the truncated body, cap is %d", len(data), truncateAfterBytes)
	}
}

// TestParseSpec pins the CLI spec grammar.
func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7, drop=0.05, delay=0.1, delay-ms=50, truncate=0.02")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, DropRate: 0.05, DelayRate: 0.1, TruncateRate: 0.02, Delay: 50 * time.Millisecond}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec = (%+v, %v), want zero config", cfg, err)
	}
	for _, bad := range []string{"drop", "drop=2", "x=1", "seed=abc", "delay-ms=-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
