// Package chaos is a seeded deterministic fault proxy for the
// distributed serving tier's router↔worker HTTP traffic — the serving
// analogue of internal/sim/fault. It wraps the router's HTTP client
// transport and injects drop (fail a request before it leaves), delay
// (sleep before sending), truncate (cut the response body short), and
// partition (fail every request to a named host until healed) faults.
//
// # Determinism
//
// Like the simulator fault injector, every rate-based decision is a pure
// function of (Config.Seed, fault point, call sequence number): each
// point keeps its own counter and hashes (seed, point, counter) through a
// splitmix64 finalizer. Two runs with the same seed and the same request
// sequence inject the identical fault log — the chaos-smoke CI stage and
// the determinism test rely on it. Partitions are not rate-based; they
// are flipped explicitly (Partition/Heal) by tests and the router's
// POST /internal/chaos control endpoint.
//
// A nil *Proxy is the disabled proxy: Wrap returns the client unchanged
// and every method is a nil-safe no-op, so chaos off is byte-identical
// to chaos never having existed.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config holds the injection rates. The zero value injects nothing (but
// a Proxy built from it still supports explicit partitions).
type Config struct {
	// Seed keys the deterministic decision streams.
	Seed uint64
	// DropRate is the probability a request fails before being sent.
	DropRate float64
	// DelayRate is the probability a request sleeps Delay before sending.
	DelayRate float64
	// TruncateRate is the probability a response body is cut short.
	TruncateRate float64
	// Delay is the injected latency for delay faults (default 25ms).
	Delay time.Duration
}

// Validate rejects rates outside [0,1] and negative delays.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{{"drop", c.DropRate}, {"delay", c.DelayRate}, {"truncate", c.TruncateRate}} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("chaos: %s rate %g outside [0,1]", r.name, r.rate)
		}
	}
	if c.Delay < 0 {
		return fmt.Errorf("chaos: negative delay %v", c.Delay)
	}
	return nil
}

// ParseSpec parses the compact CLI form, e.g.
// "drop=0.01,delay=0.05,delay-ms=20,truncate=0.001,seed=7". An empty
// spec returns the zero Config.
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return c, fmt.Errorf("chaos: spec term %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			s, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return c, fmt.Errorf("chaos: bad seed %q: %v", val, err)
			}
			c.Seed = s
		case "delay-ms":
			ms, err := strconv.ParseFloat(val, 64)
			if err != nil || ms < 0 {
				return c, fmt.Errorf("chaos: bad delay-ms %q", val)
			}
			c.Delay = time.Duration(ms * float64(time.Millisecond))
		case "drop", "delay", "truncate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return c, fmt.Errorf("chaos: bad %s rate %q: %v", key, val, err)
			}
			switch key {
			case "drop":
				c.DropRate = r
			case "delay":
				c.DelayRate = r
			case "truncate":
				c.TruncateRate = r
			}
		default:
			return c, fmt.Errorf("chaos: unknown spec key %q", key)
		}
	}
	return c, c.Validate()
}

// point identifies one fault point; each draws from its own decision
// stream.
type point int

const (
	pointDrop point = iota
	pointDelay
	pointTruncate
	pointPartition
	numPoints
)

var pointNames = [numPoints]string{"drop", "delay", "truncate", "partition"}

// counterNames are the metric counters a sink receives, in point order.
var counterNames = [numPoints]string{
	"chaos_drops", "chaos_delays", "chaos_truncates", "chaos_partition_blocks",
}

// CounterNames lists the metric counter names a Proxy reports through its
// sink — the router registers them into its catalogue.
func CounterNames() []string {
	return append([]string(nil), counterNames[:]...)
}

// Event is one injected fault, in injection order. Seq is global across
// points, so two event logs compare positionally.
type Event struct {
	Seq   uint64 `json:"seq"`
	Point string `json:"point"`
	Host  string `json:"host"`
}

// maxEvents bounds the retained event log; injections past it still
// count (and reach the sink) but are not retained.
const maxEvents = 65536

// truncateAfterBytes is how much of a truncated response body survives.
const truncateAfterBytes = 64

// Proxy is an http.RoundTripper injecting faults in front of a real
// transport. Build with New, install with Wrap.
type Proxy struct {
	cfg  Config
	next http.RoundTripper

	mu    sync.Mutex
	seq   [numPoints]uint64
	part  map[string]bool
	log   []Event
	evSeq uint64
	sink  func(name string, delta int64)
}

// New validates cfg and returns a Proxy. The proxy is inert until Wrap
// installs it into a client.
func New(cfg Config) (*Proxy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 25 * time.Millisecond
	}
	return &Proxy{cfg: cfg, part: make(map[string]bool)}, nil
}

// Wrap returns a copy of c whose transport routes through the proxy. A
// nil proxy returns c unchanged — chaos disabled is byte-identical to
// chaos absent.
func (p *Proxy) Wrap(c *http.Client) *http.Client {
	if p == nil {
		return c
	}
	out := &http.Client{}
	p.next = http.DefaultTransport
	if c != nil {
		*out = *c
		if c.Transport != nil {
			p.next = c.Transport
		}
	}
	out.Transport = p
	return out
}

// SetSink installs the metric sink (e.g. a serve.Metrics Add method);
// each injected fault reports 1 to its counter name. Nil-safe.
func (p *Proxy) SetSink(fn func(name string, delta int64)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.sink = fn
	p.mu.Unlock()
}

// hostOf extracts the host:port a partition is keyed on, accepting both
// bare hosts and full URLs.
func hostOf(s string) string {
	s = strings.TrimSpace(s)
	if strings.Contains(s, "://") {
		if u, err := url.Parse(s); err == nil && u.Host != "" {
			return u.Host
		}
	}
	return strings.TrimSuffix(s, "/")
}

// Partition fails every future request to the host (or URL) until Heal.
// Nil-safe.
func (p *Proxy) Partition(host string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.part[hostOf(host)] = true
	p.mu.Unlock()
}

// Heal lifts a partition. Nil-safe.
func (p *Proxy) Heal(host string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.part, hostOf(host))
	p.mu.Unlock()
}

// HealAll lifts every partition. Nil-safe.
func (p *Proxy) HealAll() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.part = make(map[string]bool)
	p.mu.Unlock()
}

// Partitioned lists the currently partitioned hosts, sorted. Nil-safe.
func (p *Proxy) Partitioned() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.part))
	for h := range p.part {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Events returns a copy of the injected-fault log, in injection order.
// Nil-safe.
func (p *Proxy) Events() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.log...)
}

// EventCount reports the total injected faults (including any past the
// retained-log cap). Nil-safe.
func (p *Proxy) EventCount() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evSeq
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide reports whether the next opportunity at point pt faults,
// advancing pt's deterministic stream.
func (p *Proxy) decide(pt point) bool {
	var rate float64
	switch pt {
	case pointDrop:
		rate = p.cfg.DropRate
	case pointDelay:
		rate = p.cfg.DelayRate
	case pointTruncate:
		rate = p.cfg.TruncateRate
	}
	if rate <= 0 {
		return false
	}
	p.mu.Lock()
	u := splitmix64(p.cfg.Seed ^ uint64(pt)<<56 ^ p.seq[pt])
	p.seq[pt]++
	p.mu.Unlock()
	// 53 high bits → uniform float64 in [0,1).
	return float64(u>>11)/(1<<53) < rate
}

// record logs one injected fault and reports it to the sink.
func (p *Proxy) record(pt point, host string) {
	p.mu.Lock()
	p.evSeq++
	if len(p.log) < maxEvents {
		p.log = append(p.log, Event{Seq: p.evSeq, Point: pointNames[pt], Host: host})
	}
	sink := p.sink
	p.mu.Unlock()
	if sink != nil {
		sink(counterNames[pt], 1)
	}
}

// RoundTrip injects faults around one request. Partition and drop fail
// the request with a transport error (the router's retry/health machinery
// sees exactly what a dead worker looks like); delay sleeps before
// sending; truncate cuts the response body after truncateAfterBytes so
// the reader gets io.ErrUnexpectedEOF mid-decode.
func (p *Proxy) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	p.mu.Lock()
	blocked := p.part[host]
	p.mu.Unlock()
	if blocked {
		p.record(pointPartition, host)
		return nil, fmt.Errorf("chaos: host %s is partitioned", host)
	}
	if p.decide(pointDrop) {
		p.record(pointDrop, host)
		return nil, fmt.Errorf("chaos: dropped request to %s", host)
	}
	if p.decide(pointDelay) {
		p.record(pointDelay, host)
		time.Sleep(p.cfg.Delay)
	}
	resp, err := p.next.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if p.decide(pointTruncate) {
		p.record(pointTruncate, host)
		resp.Body = &truncatedBody{rc: resp.Body, remaining: truncateAfterBytes}
	}
	return resp, nil
}

// truncatedBody serves a bounded prefix of the real body, then fails the
// read the way a cut connection would.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (t *truncatedBody) Read(b []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(b) > t.remaining {
		b = b[:t.remaining]
	}
	n, err := t.rc.Read(b)
	t.remaining -= n
	if err == io.EOF {
		// The upstream body really ended inside the cap: pass EOF through.
		return n, err
	}
	if t.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.rc.Close() }
