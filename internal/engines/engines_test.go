package engines_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/engines"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/psolve"
	"graphpulse/internal/sim"
)

func TestNormalize(t *testing.T) {
	if got, err := engines.Normalize(""); err != nil || got != engines.Solve {
		t.Errorf("Normalize(\"\") = %q, %v; want solve default", got, err)
	}
	for _, n := range engines.Names() {
		if got, err := engines.Normalize(n); err != nil || got != n {
			t.Errorf("Normalize(%q) = %q, %v", n, got, err)
		}
	}
	_, err := engines.Normalize("warp-drive")
	if err == nil {
		t.Fatal("Normalize accepted an unknown engine")
	}
	if !strings.Contains(err.Error(), engines.NamesList()) {
		t.Errorf("error %q does not enumerate the registry %q", err, engines.NamesList())
	}
}

func TestLookupNamesRoundTrip(t *testing.T) {
	for _, n := range engines.Names() {
		eng, err := engines.Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if eng.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, eng.Name())
		}
	}
	if _, err := engines.Lookup("warp-drive"); err == nil {
		t.Error("Lookup accepted an unknown engine")
	}
}

// TestEveryEngineSolves drives one tiny SSSP through every registry engine;
// SSSP is monotone, so all engines must agree with the serial solver
// bit-for-bit. (The full shape x algorithm matrix lives in
// internal/conformance; this pins the adapters.)
func TestEveryEngineSolves(t *testing.T) {
	g, err := gen.Chain(24, true)
	if err != nil {
		t.Fatal(err)
	}
	alg := algorithms.NewSSSP(0)
	want := algorithms.Solve(g, alg)
	for _, n := range engines.Names() {
		eng, err := engines.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.SolveCtx(nil, g, algorithms.NewSSSP(0))
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(res.Values) != len(want.Values) {
			t.Fatalf("%s: %d values, want %d", n, len(res.Values), len(want.Values))
		}
		for v := range want.Values {
			if res.Values[v] != want.Values[v] {
				t.Errorf("%s: vertex %d = %g, want %g", n, v, res.Values[v], want.Values[v])
			}
		}
		if res.Activations <= 0 {
			t.Errorf("%s: Activations = %d, want > 0", n, res.Activations)
		}
	}
}

// TestCancellationContract: every engine must surface a canceled context as
// an error wrapping sim.ErrCanceled — the property the serving tier's
// deadline handling relies on.
func TestCancellationContract(t *testing.T) {
	g, err := gen.ErdosRenyi(256, 2048, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, n := range engines.Names() {
		eng, err := engines.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		_, err = eng.SolveCtx(ctx, g, algorithms.NewPageRankDelta())
		if !errors.Is(err, sim.ErrCanceled) {
			t.Errorf("%s: err = %v, want sim.ErrCanceled", n, err)
		}
	}
}

func TestNewHonorsConfigOverride(t *testing.T) {
	g, err := gen.ErdosRenyi(64, 256, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	pc := psolve.DefaultConfig()
	pc.Workers = 3
	eng, err := engines.New(engines.PSolve, engines.Config{PSolve: &pc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SolveCtx(nil, g, algorithms.NewSSSP(0))
	if err != nil {
		t.Fatal(err)
	}
	// The adapter flattens psolve.Result to SolveResult, so assert the
	// override indirectly: the same config through psolve directly reports
	// the worker count and identical values.
	direct := psolve.Solve(g, algorithms.NewSSSP(0), pc)
	if direct.Workers != 3 {
		t.Fatalf("psolve used %d workers, want 3", direct.Workers)
	}
	for v := range direct.Values {
		if res.Values[v] != direct.Values[v] {
			t.Fatalf("vertex %d: engine %g != direct %g", v, res.Values[v], direct.Values[v])
		}
	}
}
