// Package engines is the repository's engine registry: one canonical list
// of the ways a delta-accumulative algorithm can be driven to its fixed
// point, behind a single interface. The serving tier, the bench harness,
// and the conformance suite all resolve engine names here instead of
// maintaining their own switch statements, so adding an engine is one
// registry entry — not a sweep across layers.
//
// Five engines are registered:
//
//	solve          sequential coalescing worklist (the golden model)
//	psolve         sharded parallel worklist (internal/psolve)
//	accel          GraphPulse accelerator cycle model (internal/core)
//	graphicionado  BSP hardware baseline simulation
//	ligra          Ligra-style shared-memory software baseline
//
// Every engine implements SolveCtx(ctx, g, alg) with the repository's
// uniform cancellation contract: context cancellation surfaces as an error
// wrapping sim.ErrCanceled.
package engines

import (
	"context"
	"fmt"
	"strings"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/baseline/ligra"
	"graphpulse/internal/core"
	"graphpulse/internal/graph"
	"graphpulse/internal/psolve"
)

// Canonical engine names. These strings are the wire/CLI vocabulary:
// /v1/query's engine field, bench's -engines flag, and loadgen's -engine
// flag all validate against them through Normalize.
const (
	Solve         = "solve"
	PSolve        = "psolve"
	Accel         = "accel"
	Graphicionado = "graphicionado"
	Ligra         = "ligra"
)

// Names returns every registered engine name in canonical order.
func Names() []string {
	return []string{Solve, PSolve, Accel, Graphicionado, Ligra}
}

// NamesList renders the registry vocabulary for error messages and flag
// docs ("solve|psolve|accel|graphicionado|ligra").
func NamesList() string {
	return strings.Join(Names(), "|")
}

// Normalize validates an engine name, mapping the empty string to the
// default engine (the serial solver). The error message enumerates the
// registry, so it never goes stale against the engine set.
func Normalize(name string) (string, error) {
	if name == "" {
		return Solve, nil
	}
	for _, n := range Names() {
		if name == n {
			return name, nil
		}
	}
	return "", fmt.Errorf("unknown engine %q (want %s)", name, NamesList())
}

// Engine drives an Algorithm over a graph to its fixed point. SolveCtx
// must be safe for concurrent use with distinct arguments and must honor
// the repository's cancellation contract (errors wrap sim.ErrCanceled).
type Engine interface {
	// Name returns the engine's registry name.
	Name() string
	// SolveCtx runs alg over g to convergence. Activations carries the
	// engine's primary work counter (vertex updates for the native solvers,
	// events processed for the accelerator, edges traversed for the BSP
	// baselines); Emitted counts propagated deltas where the engine tracks
	// them.
	SolveCtx(ctx context.Context, g graph.Adjacency, alg algorithms.Algorithm) (*algorithms.SolveResult, error)
}

// Config overrides per-engine tuning for New. Nil fields select each
// engine's documented default (core.OptimizedConfig, psolve.DefaultConfig,
// graphicionado.DefaultConfig, ligra.DefaultConfig).
type Config struct {
	PSolve        *psolve.Config
	Accel         *core.Config
	Graphicionado *graphicionado.Config
	Ligra         *ligra.Config
}

// New resolves a registry name to its Engine under cfg. The name must be
// canonical (pass user input through Normalize first).
func New(name string, cfg Config) (Engine, error) {
	switch name {
	case Solve:
		return solveEngine{}, nil
	case PSolve:
		pc := psolve.DefaultConfig()
		if cfg.PSolve != nil {
			pc = *cfg.PSolve
		}
		return psolveEngine{cfg: pc}, nil
	case Accel:
		ac := core.OptimizedConfig()
		if cfg.Accel != nil {
			ac = *cfg.Accel
		}
		return accelEngine{cfg: ac}, nil
	case Graphicionado:
		gc := graphicionado.DefaultConfig()
		if cfg.Graphicionado != nil {
			gc = *cfg.Graphicionado
		}
		return graphicionadoEngine{cfg: gc}, nil
	case Ligra:
		lc := ligra.DefaultConfig()
		if cfg.Ligra != nil {
			lc = *cfg.Ligra
		}
		return ligraEngine{cfg: lc}, nil
	}
	return nil, fmt.Errorf("unknown engine %q (want %s)", name, NamesList())
}

// Lookup resolves a registry name to its Engine with default tuning.
func Lookup(name string) (Engine, error) {
	return New(name, Config{})
}

type solveEngine struct{}

func (solveEngine) Name() string { return Solve }

func (solveEngine) SolveCtx(ctx context.Context, g graph.Adjacency, alg algorithms.Algorithm) (*algorithms.SolveResult, error) {
	return algorithms.SolveCtx(ctx, g, alg)
}

type psolveEngine struct{ cfg psolve.Config }

func (psolveEngine) Name() string { return PSolve }

func (e psolveEngine) SolveCtx(ctx context.Context, g graph.Adjacency, alg algorithms.Algorithm) (*algorithms.SolveResult, error) {
	res, err := psolve.SolveCtx(ctx, g, alg, e.cfg)
	if err != nil {
		return nil, err
	}
	return &algorithms.SolveResult{
		Values:      res.Values,
		Activations: res.Activations,
		Emitted:     res.Emitted,
	}, nil
}

type accelEngine struct{ cfg core.Config }

func (accelEngine) Name() string { return Accel }

func (e accelEngine) SolveCtx(ctx context.Context, g graph.Adjacency, alg algorithms.Algorithm) (*algorithms.SolveResult, error) {
	a, err := core.New(e.cfg, g, alg)
	if err != nil {
		return nil, err
	}
	res, err := a.RunWithOptions(core.RunOptions{Ctx: ctx})
	if err != nil {
		return nil, err
	}
	return &algorithms.SolveResult{
		Values:      res.Values,
		Activations: res.EventsProcessed,
		Emitted:     res.EventsEmitted,
	}, nil
}

type graphicionadoEngine struct{ cfg graphicionado.Config }

func (graphicionadoEngine) Name() string { return Graphicionado }

func (e graphicionadoEngine) SolveCtx(ctx context.Context, g graph.Adjacency, alg algorithms.Algorithm) (*algorithms.SolveResult, error) {
	res, err := graphicionado.RunCtx(ctx, e.cfg, g, alg)
	if err != nil {
		return nil, err
	}
	return &algorithms.SolveResult{
		Values:      res.Values,
		Activations: res.EdgesTraversed,
	}, nil
}

type ligraEngine struct{ cfg ligra.Config }

func (ligraEngine) Name() string { return Ligra }

func (e ligraEngine) SolveCtx(ctx context.Context, g graph.Adjacency, alg algorithms.Algorithm) (*algorithms.SolveResult, error) {
	res, err := ligra.New(e.cfg, g).RunCtx(ctx, alg)
	if err != nil {
		return nil, err
	}
	return &algorithms.SolveResult{
		Values:      res.Values,
		Activations: res.VertexUpdates,
		Emitted:     res.EdgesTraversed,
	}, nil
}
