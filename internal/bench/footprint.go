package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/ooc"
)

// footprintFractions are the residency ceilings the footprint experiment
// visits, as fractions of the decoded in-RAM graph size. 1.0 keeps every
// slice resident (the store's best case); the smaller budgets force the
// residency manager to swap slices, exposing the decode-amplification
// cost of running below the working set (Section IV-F's slice swapping).
var footprintFractions = []float64{1.0, 0.5, 0.25, 0.125}

// footprintDecodedBytes is the in-RAM footprint of g, charged the way the
// ooc store charges resident slices (rowptr as uint64, dst as uint32,
// weights as float32).
func footprintDecodedBytes(g *graph.CSR) int64 {
	b := int64(len(g.RowPtr))*8 + int64(len(g.Dst))*4
	if g.Weight != nil {
		b += int64(len(g.Weight)) * 4
	}
	return b
}

// runFootprint measures memory ceiling vs throughput for the out-of-core
// graphpack store: the workload graph is packed at every compression level,
// then solved off the store under shrinking residency budgets. The in-RAM
// serial solve is the 1.00x baseline. Besides the table, a machine-readable
// CSV block is emitted so the curve can be plotted directly.
func runFootprint(opt Options, _ *Sweep) error {
	o := opt
	o.Datasets = []string{"WG"}
	if len(opt.Datasets) > 0 {
		o.Datasets = opt.Datasets[:1]
	}
	o.Algorithms = []string{"pr"}
	if len(opt.Algorithms) > 0 {
		o.Algorithms = opt.Algorithms[:1]
	}
	ws, err := Workloads(o)
	if err != nil {
		return err
	}
	w := ws[0]
	decoded := footprintDecodedBytes(w.Graph)

	baseSecs, err := timeStoreSolve(opt, w, w.Graph)
	if err != nil {
		return fmt.Errorf("in-RAM baseline: %w", err)
	}

	dir, err := os.MkdirTemp("", "gp-footprint-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintf(opt.Out, "Memory footprint vs throughput — out-of-core store, %s on %s-class graph (%s tier)\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier)
	fmt.Fprintf(opt.Out, "decoded in-RAM size %d bytes; wall-clock, best of %d runs; slowdown vs in-RAM serial solve\n",
		decoded, scalingReps)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "level\tcontainer bytes\tratio\tbudget\tbudget bytes\tseconds\tslowdown\tdecodes\tevictions\thits")
	fmt.Fprintf(tw, "in-RAM\t-\t-\t-\t%d\t%.4f\t1.00x\t-\t-\t-\n", decoded, baseSecs)

	type csvRow struct {
		level     int
		container int64
		frac      float64
		budget    int64
		secs      float64
		c         ooc.Counters
	}
	var rows []csvRow

	for _, level := range []int{ooc.LevelRaw, ooc.LevelVarint, ooc.LevelDelta} {
		path := filepath.Join(dir, fmt.Sprintf("wl-l%d.graphpack", level))
		containerBytes, err := packWorkload(path, w.Graph, level)
		if err != nil {
			return err
		}
		// The store charges each resident slice its own rowPtr span, so the
		// fully-resident footprint is slightly above the monolithic decoded
		// size; budgets are fractions of that charge so the 100% row really
		// holds every slice.
		probe, err := ooc.Open(path, 0)
		if err != nil {
			return err
		}
		full := probe.Counters().ResidentBytes
		probe.Close()
		for _, frac := range footprintFractions {
			budget := int64(float64(full) * frac)
			st, err := ooc.Open(path, budget)
			if err != nil {
				return fmt.Errorf("level %d budget %.0f%%: %w", level, 100*frac, err)
			}
			st.ResetCounters()
			secs, err := timeStoreSolve(opt, w, st)
			c := st.Counters()
			st.Close()
			if err != nil {
				return fmt.Errorf("level %d budget %.0f%%: %w", level, 100*frac, err)
			}
			fmt.Fprintf(tw, "%d\t%d\t%.2fx\t%.0f%%\t%d\t%.4f\t%.2fx\t%d\t%d\t%d\n",
				level, containerBytes, float64(decoded)/float64(containerBytes),
				100*frac, budget, secs, secs/baseSecs,
				c.Decodes, c.Evictions, c.Hits)
			rows = append(rows, csvRow{level, containerBytes, frac, budget, secs, c})
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Machine-readable block: same data as the table, stable header, one
	// line per (level, budget) point plus the baseline.
	fmt.Fprintln(opt.Out, "csv: level,container_bytes,budget_frac,budget_bytes,seconds,slowdown,edges_per_sec,ooc_slice_decodes,ooc_slice_evictions,ooc_hits,ooc_decoded_bytes")
	edges := float64(w.Graph.NumEdges())
	fmt.Fprintf(opt.Out, "csv: ram,%d,1,%d,%.6f,1,%.0f,0,0,0,0\n", decoded, decoded, baseSecs, edges/baseSecs)
	for _, r := range rows {
		fmt.Fprintf(opt.Out, "csv: %d,%d,%g,%d,%.6f,%.4f,%.0f,%d,%d,%d,%d\n",
			r.level, r.container, r.frac, r.budget, r.secs, r.secs/baseSecs, edges/r.secs,
			r.c.Decodes, r.c.Evictions, r.c.Hits, r.c.DecodedBytes)
	}
	return nil
}

// packWorkload writes g as a graphpack container at the given level and
// reports the container size in bytes.
func packWorkload(path string, g *graph.CSR, level int) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	wopt := ooc.WriteOptions{Level: level, RawLevel: level == ooc.LevelRaw}
	if err := ooc.Write(f, g, wopt); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// timeStoreSolve runs the serial native solver over any adjacency source
// (in-RAM CSR or budgeted store) scalingReps times and returns the best
// wall time in seconds.
func timeStoreSolve(opt Options, w *Workload, g graph.Adjacency) (float64, error) {
	best := 0.0
	for i := 0; i < scalingReps; i++ {
		ctx, cancel := opt.jobContext()
		start := time.Now()
		_, err := algorithms.SolveCtx(ctx, g, w.NewAlgorithm())
		secs := time.Since(start).Seconds()
		cancel()
		if err != nil {
			return 0, err
		}
		if i == 0 || secs < best {
			best = secs
		}
	}
	return best, nil
}
