package bench

import (
	"bytes"
	"strings"
	"testing"

	"graphpulse/internal/graph/gen"
)

// smallOptions restricts experiments to one small workload so the test
// suite exercises every experiment path quickly.
func smallOptions(buf *bytes.Buffer) Options {
	return Options{
		Tier:       gen.Tiny,
		Datasets:   []string{"WG"},
		Algorithms: []string{"bfs"},
		Out:        buf,
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	wantIDs := []string{"table1", "table2", "table3", "table4", "fig4", "fig8",
		"fig10", "fig11", "fig12", "fig13", "fig14", "table5", "energy", "slicing",
		"cluster", "ablation", "timeline", "scaling", "scaleout", "faults", "churn",
		"footprint"}
	if len(exps) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(wantIDs))
	}
	for i, id := range wantIDs {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
	}
	if _, err := ExperimentByID("fig10"); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestWorkloadsMatrix(t *testing.T) {
	ws, err := Workloads(Options{Tier: gen.Tiny})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 25 {
		t.Fatalf("workloads = %d, want 5×5", len(ws))
	}
	// TW cells are marked for 3-slice execution.
	for _, w := range ws {
		if w.Dataset.Abbrev == "TW" && w.sliceInto != 3 {
			t.Errorf("TW workload sliceInto = %d, want 3", w.sliceInto)
		}
		if w.NewAlgorithm() == nil {
			t.Errorf("%s/%s: nil algorithm", w.Dataset.Abbrev, w.AlgName)
		}
	}
}

func TestWorkloadFilters(t *testing.T) {
	ws, err := Workloads(Options{Tier: gen.Tiny, Datasets: []string{"lj"}, Algorithms: []string{"pr", "cc"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("filtered workloads = %d, want 2", len(ws))
	}
	if _, err := Workloads(Options{Datasets: []string{"XX"}}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Workloads(Options{Algorithms: []string{"zz"}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunWorkloadProducesAllEngines(t *testing.T) {
	ws, err := Workloads(Options{Tier: gen.Tiny, Datasets: []string{"WG"}, Algorithms: []string{"bfs"}})
	if err != nil {
		t.Fatal(err)
	}
	cell, err := RunWorkload(ws[0], Options{Tier: gen.Tiny})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Opt == nil || cell.Base == nil || cell.Gion == nil {
		t.Fatal("missing engine results")
	}
	if cell.LigraSeconds <= 0 {
		t.Error("no Ligra wall time")
	}
	if cell.OptSpeedup() <= 0 || cell.BaseSpeedup() <= 0 || cell.GionSpeedup() <= 0 {
		t.Error("non-positive speedups")
	}
	// All engines agree on the answer.
	for v := range cell.Opt.Values {
		if cell.Opt.Values[v] != cell.Base.Values[v] || cell.Opt.Values[v] != cell.Gion.Values[v] {
			t.Fatalf("engines disagree at vertex %d: %g / %g / %g",
				v, cell.Opt.Values[v], cell.Base.Values[v], cell.Gion.Values[v])
		}
	}
}

func TestRunAllExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pass is not short")
	}
	var buf bytes.Buffer
	if err := RunExperiments(nil, smallOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range Experiments() {
		if !strings.Contains(out, "==== "+e.ID) {
			t.Errorf("output missing section %s", e.ID)
		}
	}
}

func TestRunSelectedExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiments([]string{"table5"}, smallOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Queue") {
		t.Error("table5 output missing Queue row")
	}
	if err := RunExperiments([]string{"bogus"}, smallOptions(&buf)); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean(2,8) = %g, want 4", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %g, want 0", g)
	}
	if g := geomean([]float64{1, 0}); g != 0 {
		t.Errorf("geomean with zero = %g, want 0", g)
	}
}

func TestWorkloadsShareCachedGraphs(t *testing.T) {
	opt := Options{Tier: gen.Tiny, Datasets: []string{"WG"}, Algorithms: []string{"pr", "ads"}}
	a, err := Workloads(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Workloads(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Graphs come from the shared gen cache: repeated preparation reuses
	// the same instances instead of regenerating.
	if a[0].Graph != b[0].Graph {
		t.Error("base graph regenerated across Workloads calls")
	}
	if a[1].Graph != b[1].Graph {
		t.Error("normalized Adsorption graph regenerated across Workloads calls")
	}
	if a[1].Graph == a[0].Graph {
		t.Error("Adsorption workload shares the unnormalized graph")
	}
	if a[0].Root != b[0].Root {
		t.Errorf("cached roots differ: %d vs %d", a[0].Root, b[0].Root)
	}
}

func TestBestRoot(t *testing.T) {
	ws, err := Workloads(Options{Tier: gen.Tiny, Datasets: []string{"WG"}, Algorithms: []string{"bfs"}})
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0]
	if got := w.Graph.OutDegree(w.Root); got != w.Graph.MaxOutDegree() {
		t.Errorf("root degree = %d, want max %d", got, w.Graph.MaxOutDegree())
	}
}
