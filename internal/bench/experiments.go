package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/baseline/ligra"
	"graphpulse/internal/core"
	"graphpulse/internal/energy"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/sim"
)

// failedRow renders a failed cell's table row: dataset/algorithm columns
// plus the structured reason, in place of the unmeasurable metrics.
func failedRow(tw io.Writer, c *Cell) {
	fmt.Fprintf(tw, "%s\t%s\tFAILED: %s\n",
		c.Workload.AlgName, c.Workload.Dataset.Abbrev, c.FailureReason())
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the artifact id ("fig10", "table5", …).
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// NeedsSweep marks experiments that consume the shared engine sweep.
	NeedsSweep bool
	// Run renders the experiment. sweep is non-nil iff NeedsSweep.
	Run func(opt Options, sweep *Sweep) error
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Access-pattern comparison of processing models", Run: runTable1},
		{ID: "table2", Title: "Algorithm mapping functions (verified)", Run: runTable2},
		{ID: "table3", Title: "Device configurations", Run: runTable3},
		{ID: "table4", Title: "Graph workloads", Run: runTable4},
		{ID: "fig4", Title: "Events produced vs remaining after coalescing", Run: runFig4},
		{ID: "fig8", Title: "Degree of lookahead per round", Run: runFig8},
		{ID: "fig10", Title: "Speedup over Ligra", NeedsSweep: true, Run: runFig10},
		{ID: "fig11", Title: "Off-chip accesses normalized to Graphicionado", NeedsSweep: true, Run: runFig11},
		{ID: "fig12", Title: "Fraction of off-chip data utilized", NeedsSweep: true, Run: runFig12},
		{ID: "fig13", Title: "Cycles per event per execution stage", NeedsSweep: true, Run: runFig13},
		{ID: "fig14", Title: "Processor/generator time breakdown", NeedsSweep: true, Run: runFig14},
		{ID: "table5", Title: "Power and area of accelerator components", Run: runTable5},
		{ID: "energy", Title: "Energy efficiency vs software baseline", NeedsSweep: true, Run: runEnergy},
		{ID: "slicing", Title: "Large-graph slicing overhead (Section IV-F)", Run: runSlicing},
		{ID: "cluster", Title: "Multi-accelerator slicing (Section IV-F option b)", Run: runCluster},
		{ID: "ablation", Title: "Design-choice ablations (coalescing, prefetch, streams)", Run: runAblation},
		{ID: "timeline", Title: "Time-resolved telemetry (queue occupancy, event rate, DRAM bandwidth)", Run: runTimeline},
		{ID: "scaling", Title: "Parallel native solver speedup vs worker count", Run: runScaling},
		{ID: "scaleout", Title: "Distributed serving scale-out vs simulated multi-chip cluster", Run: runScaleout},
		{ID: "faults", Title: "Fault-injection survival matrix (detection, tolerance, silent corruption)", Run: runFaults},
		{ID: "churn", Title: "Streaming churn: warm vs cold re-convergence under deletions and expiry", Run: runChurn},
		{ID: "footprint", Title: "Memory footprint vs throughput (out-of-core compressed store)", Run: runFootprint},
	}
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// ljWorkload prepares the PR-Delta-on-LiveJournal workload Figures 4 and 8
// are measured on.
func ljWorkload(opt Options) (*Workload, error) {
	o := opt
	o.Datasets = []string{"LJ"}
	o.Algorithms = []string{"pr"}
	ws, err := Workloads(o)
	if err != nil {
		return nil, err
	}
	return ws[0], nil
}

func runOpt(w *Workload, opt Options) (*core.Result, error) {
	cfg := core.OptimizedConfig()
	if opt.MaxCycles > 0 {
		cfg.MaxCycles = opt.MaxCycles
	}
	a, err := core.New(cfg, w.Graph, w.NewAlgorithm())
	if err != nil {
		return nil, err
	}
	return a.Run()
}

// ---------------------------------------------------------------- Table I

func runTable1(opt Options, _ *Sweep) error {
	w, err := ljWorkload(opt)
	if err != nil {
		return err
	}
	push := ligra.DefaultConfig()
	push.Direction = ligra.PushOnly
	pull := ligra.DefaultConfig()
	pull.Direction = ligra.PullOnly
	rPush := ligra.New(push, w.Graph).Run(w.NewAlgorithm())
	rPull := ligra.New(pull, w.Graph).Run(w.NewAlgorithm())
	gp, err := runOpt(w, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "Table I — access patterns, %s on %s-class graph (%s tier)\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "metric\tPULL\tPUSH\tGraphPulse")
	fmt.Fprintf(tw, "random reads\t%d\t%d\t%s\n",
		rPull.Access.RandomReads, rPush.Access.RandomReads, "0 (events carry data)")
	fmt.Fprintf(tw, "random writes\t%d\t%d\t%s\n",
		rPull.Access.RandomWrites, rPush.Access.RandomWrites,
		fmt.Sprintf("%d (coalesced line write-backs)", gp.MemWrites))
	fmt.Fprintf(tw, "atomic updates\t%d\t%d\t0 (event scheduling)\n",
		rPull.Access.AtomicUpdates, rPush.Access.AtomicUpdates)
	fmt.Fprintf(tw, "synchronization\tglobal barrier ×%d\tglobal barrier ×%d\tnone (async rounds ×%d)\n",
		rPull.Iterations, rPush.Iterations, gp.Rounds)
	fmt.Fprintf(tw, "active-set tracking\tvertex bitmap\tedge frontier\tnot needed (queue is the active set)\n")
	return tw.Flush()
}

// ---------------------------------------------------------------- Table II

func runTable2(opt Options, _ *Sweep) error {
	fmt.Fprintln(opt.Out, "Table II — algorithm-to-GraphPulse mappings (reduce laws machine-verified)")
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "application\tpropagate(δ)\treduce\tV_init\tΔV_init")
	rows := []struct {
		alg                      algorithms.Algorithm
		prop, red, vinit, dvinit string
	}{
		{algorithms.NewPageRankDelta(), "α·E_ij·δ/N(src)", "+", "0", "1-α"},
		{algorithms.NewAdsorption(), "α_i·E_ij·δ", "+", "0", "β_j·I_j"},
		{algorithms.NewSSSP(0), "E_ij+δ", "min", "∞", "0 (root); none"},
		{algorithms.NewBFS(0), "δ+1 (levels; Table II literal: 0)", "min", "∞", "0 (root); none"},
		{algorithms.NewConnectedComponents(), "δ", "max", "-1", "j"},
	}
	samples := []float64{0, 1, 0.25, 7, 1e6, algorithms.Infinity}
	for _, r := range rows {
		status := "ok"
		if err := algorithms.CheckAlgebraicLaws(r.alg, samples); err != nil {
			status = err.Error()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t[laws: %s]\n",
			r.alg.Name(), r.prop, r.red, r.vinit, r.dvinit, status)
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- Table III

func runTable3(opt Options, _ *Sweep) error {
	fmt.Fprintln(opt.Out, "Table III — device configurations")
	tw := newTable(opt.Out)
	oc := core.OptimizedConfig()
	bc := core.BaselineConfig()
	lc := ligra.DefaultConfig()
	fmt.Fprintf(tw, "system\tcompute\ton-chip memory\toff-chip bandwidth\n")
	fmt.Fprintf(tw, "Software (Ligra-style)\t%d host threads\thost caches\thost DRAM\n", lc.Threads)
	fmt.Fprintf(tw, "%s\t%d processors ×%d gen streams @1GHz\t64MB queue (%d bins), %d-line scratchpads\t%d× DDR3 channels\n",
		oc.Name, oc.NumProcessors, oc.StreamsPerProcessor, oc.NumBins, oc.ScratchpadLines, oc.Memory.Channels)
	fmt.Fprintf(tw, "%s\t%d processors @1GHz (in-processor generation)\t64MB queue (%d bins)\t%d× DDR3 channels\n",
		bc.Name, bc.NumProcessors, bc.NumBins, bc.Memory.Channels)
	fmt.Fprintf(tw, "Graphicionado model\t8 streams @1GHz\tunlimited (paper's conservative grant)\t%d× DDR3 channels\n",
		oc.Memory.Channels)
	return tw.Flush()
}

// ---------------------------------------------------------------- Table IV

func runTable4(opt Options, _ *Sweep) error {
	specs, err := datasetFilter(opt.Datasets)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "Table IV — graph workloads (synthetic stand-ins at %s tier)\n", opt.Tier)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "graph\tpaper nodes\tpaper edges\tstand-in nodes\tstand-in edges\tmax deg\tavg deg\tdescription")
	for _, spec := range specs {
		g, err := gen.Default.Generate(spec, opt.Tier)
		if err != nil {
			return err
		}
		st := graph.ComputeStats(g)
		fmt.Fprintf(tw, "%s(%s)\t%.2fM\t%.2fM\t%d\t%d\t%d\t%.1f\t%s\n",
			spec.Name, spec.Abbrev,
			float64(spec.PaperVertices)/1e6, float64(spec.PaperEdges)/1e6,
			st.Vertices, st.Edges, st.MaxOutDegree, st.AvgOutDegree, spec.Description)
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- Figure 4

func runFig4(opt Options, _ *Sweep) error {
	w, err := ljWorkload(opt)
	if err != nil {
		return err
	}
	res, err := runOpt(w, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "Figure 4 — events produced (pre-coalescing) vs remaining, %s on %s (%s tier)\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "round\tproduced\tcoalesced\tremaining-after\televiminated%")
	var produced, coalesced int64
	for _, rs := range res.RoundLog {
		pct := 0.0
		if rs.Produced > 0 {
			pct = 100 * float64(rs.Coalesced) / float64(rs.Produced)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.1f\n", rs.Round, rs.Produced, rs.Coalesced, rs.Remaining, pct)
		produced += rs.Produced
		coalesced += rs.Coalesced
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if produced > 0 {
		fmt.Fprintf(opt.Out, "total: %.1f%% of events eliminated via coalescing (paper: >90%% on LJ)\n",
			100*float64(coalesced)/float64(produced))
	}
	seriesChart(opt.Out, "event population per round", len(res.RoundLog),
		[]string{"produced", "remaining"}, func(srs, r int) float64 {
			if srs == 0 {
				return float64(res.RoundLog[r].Produced)
			}
			return float64(res.RoundLog[r].Remaining)
		}, 72)
	return nil
}

// ---------------------------------------------------------------- Figure 8

func runFig8(opt Options, _ *Sweep) error {
	w, err := ljWorkload(opt)
	if err != nil {
		return err
	}
	res, err := runOpt(w, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "Figure 8 — lookahead of events processed per round, %s on %s (%s tier)\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier)
	tw := newTable(opt.Out)
	fmt.Fprint(tw, "round")
	for _, name := range core.LookaheadBucketNames {
		fmt.Fprintf(tw, "\t%s", name)
	}
	fmt.Fprintln(tw)
	for _, rs := range res.RoundLog {
		fmt.Fprintf(tw, "%d", rs.Round)
		for _, c := range rs.Lookahead {
			fmt.Fprintf(tw, "\t%d", c)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	names := make([]string, core.LookaheadBuckets)
	for i, n := range core.LookaheadBucketNames {
		names[i] = "lookahead " + n
	}
	seriesChart(opt.Out, "lookahead classes per round", len(res.RoundLog), names,
		func(srs, r int) float64 { return float64(res.RoundLog[r].Lookahead[srs]) }, 72)
	return nil
}

// ---------------------------------------------------------------- Figure 10

func runFig10(opt Options, sweep *Sweep) error {
	threads := ligra.DefaultConfig().Threads
	fmt.Fprintf(opt.Out, "Figure 10 — speedup over Ligra software baseline (%s tier)\n", sweep.Tier)
	fmt.Fprintf(opt.Out, "(accelerator time simulated at 1 GHz; \"host\" columns divide Ligra wall time on %d\n", threads)
	fmt.Fprintln(opt.Out, " host thread(s); \"model\" columns use the analytic 12-core-Xeon software model,")
	fmt.Fprintln(opt.Out, " which is host-independent and the comparison to read against the paper)")
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "app\tgraph\tGP+Opt host\tGP+Opt model\tGP-Base model\tG'nado model\topt vs g'nado")
	var hostOpts, opts, bases, gions, rel []float64
	for _, c := range sweep.Cells {
		if c.Failed() {
			failedRow(tw, c)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1fx\t%.1fx\t%.1fx\t%.1fx\t%.2fx\n",
			c.Workload.AlgName, c.Workload.Dataset.Abbrev,
			c.OptSpeedup(), c.OptModelSpeedup(), c.BaseModelSpeedup(), c.GionModelSpeedup(),
			c.Gion.Seconds/c.Opt.Seconds)
		hostOpts = append(hostOpts, c.OptSpeedup())
		opts = append(opts, c.OptModelSpeedup())
		bases = append(bases, c.BaseModelSpeedup())
		gions = append(gions, c.GionModelSpeedup())
		rel = append(rel, c.Gion.Seconds/c.Opt.Seconds)
	}
	fmt.Fprintf(tw, "geomean\t\t%.1fx\t%.1fx\t%.1fx\t%.1fx\t%.2fx\n",
		geomean(hostOpts), geomean(opts), geomean(bases), geomean(gions), geomean(rel))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, "paper: 28x mean over Ligra (up to 74x); 6.2x mean over Graphicionado")
	return nil
}

// ---------------------------------------------------------------- Figure 11

func runFig11(opt Options, sweep *Sweep) error {
	fmt.Fprintf(opt.Out, "Figure 11 — off-chip accesses of GraphPulse normalized to Graphicionado (%s tier)\n", sweep.Tier)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "app\tgraph\tGP accesses\tG'nado accesses\tnormalized")
	var ratios []float64
	for _, c := range sweep.Cells {
		if c.Failed() {
			failedRow(tw, c)
			continue
		}
		r := float64(c.Opt.OffChipAccesses()) / float64(c.Gion.OffChipAccesses())
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\n",
			c.Workload.AlgName, c.Workload.Dataset.Abbrev,
			c.Opt.OffChipAccesses(), c.Gion.OffChipAccesses(), r)
		ratios = append(ratios, r)
	}
	fmt.Fprintf(tw, "geomean\t\t\t\t%.2f\n", geomean(ratios))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, "paper: GraphPulse needs 54% less off-chip traffic on average (ratio ≈ 0.46)")
	return nil
}

// ---------------------------------------------------------------- Figure 12

func runFig12(opt Options, sweep *Sweep) error {
	fmt.Fprintf(opt.Out, "Figure 12 — fraction of off-chip data utilized (%s tier)\n", sweep.Tier)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "app\tgraph\tGraphPulse\tGraphPulse-Base\tGraphicionado")
	for _, c := range sweep.Cells {
		if c.Failed() {
			failedRow(tw, c)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\n",
			c.Workload.AlgName, c.Workload.Dataset.Abbrev,
			c.Opt.Utilization, c.Base.Utilization, c.Gion.Utilization)
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- Figure 13

func runFig13(opt Options, sweep *Sweep) error {
	fmt.Fprintf(opt.Out, "Figure 13 — mean cycles per event per execution stage, chronological (%s tier)\n", sweep.Tier)
	tw := newTable(opt.Out)
	fmt.Fprint(tw, "app\tgraph")
	for _, s := range core.StageNames {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	for _, c := range sweep.Cells {
		if c.Failed() {
			failedRow(tw, c)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s", c.Workload.AlgName, c.Workload.Dataset.Abbrev)
		for _, s := range core.StageNames {
			fmt.Fprintf(tw, "\t%.1f", c.Opt.StageMeans[s])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- Figure 14

func runFig14(opt Options, sweep *Sweep) error {
	fmt.Fprintf(opt.Out, "Figure 14 — fraction of unit time per state: processors (left), generators (right) (%s tier)\n", sweep.Tier)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "app\tgraph\tP:vertex-read\tP:process\tP:stalling\tP:idle\tG:edge-read\tG:generate\tG:idle")
	for _, c := range sweep.Cells {
		if c.Failed() {
			failedRow(tw, c)
			continue
		}
		p, g := c.Opt.ProcBreakdown, c.Opt.GenBreakdown
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			c.Workload.AlgName, c.Workload.Dataset.Abbrev,
			p["vertex_read"], p["process"], p["stalling"], p["idle"],
			g["edge_read"], g["generate"], g["idle"])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, "paper: generators ~80% edge reads; processors ~70% stalling on generators")
	return nil
}

// ---------------------------------------------------------------- Table V

func runTable5(opt Options, _ *Sweep) error {
	fmt.Fprintln(opt.Out, "Table V — power and area of the accelerator components (published constants)")
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "component\t#\tstatic mW\tdynamic mW\ttotal mW\tarea mm²")
	for _, c := range energy.TableV() {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.1f\t%.2f\n",
			c.Name, c.Units, c.StaticMW, c.DynamicMW, c.TotalMW(), c.AreaMM2)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	rows := energy.TableV()
	fmt.Fprintf(opt.Out, "total power %.2f W (queue-dominated); total area %.1f mm²; logic-only area %.2f mm²\n",
		energy.AcceleratorPowerWatts(rows, 1), energy.TotalAreaMM2(rows),
		rows[2].AreaMM2+rows[3].AreaMM2)
	return nil
}

// ---------------------------------------------------------------- Energy

func runEnergy(opt Options, sweep *Sweep) error {
	fmt.Fprintf(opt.Out, "Energy efficiency vs software baseline (Section VI-C, %s tier)\n", sweep.Tier)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "app\tgraph\taccel J\tCPU J (modeled 12-core)\tefficiency")
	var ratios []float64
	rows := energy.TableV()
	for _, c := range sweep.Cells {
		if c.Failed() {
			failedRow(tw, c)
			continue
		}
		aj := energy.AcceleratorEnergyJoules(rows, c.Opt.Seconds, 1)
		cj := energy.CPUEnergyJoules(c.LigraModelSeconds)
		r := cj / aj
		fmt.Fprintf(tw, "%s\t%s\t%.3g\t%.3g\t%.0fx\n",
			c.Workload.AlgName, c.Workload.Dataset.Abbrev, aj, cj, r)
		ratios = append(ratios, r)
	}
	fmt.Fprintf(tw, "geomean\t\t\t\t%.0fx\n", geomean(ratios))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, "paper: 280x better energy efficiency than the software framework")
	return nil
}

// ---------------------------------------------------------------- Slicing

func runSlicing(opt Options, _ *Sweep) error {
	w, err := ljWorkload(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "Slicing ablation (Section IV-F) — %s on %s (%s tier)\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "slices\tcycles\tslowdown\tspilled events\toff-chip accesses\tswitches")
	var base uint64
	for _, slices := range []int{1, 2, 3, 4} {
		cfg := core.OptimizedConfig()
		if opt.MaxCycles > 0 {
			cfg.MaxCycles = opt.MaxCycles
		}
		if slices > 1 {
			cfg.QueueCapacity = (w.Graph.NumVertices() + slices - 1) / slices
		}
		a, err := core.New(cfg, w.Graph, w.NewAlgorithm())
		if err != nil {
			return err
		}
		res, err := a.Run()
		if err != nil {
			return err
		}
		if slices == 1 {
			base = res.Cycles
		}
		fmt.Fprintf(tw, "%d\t%d\t%.2fx\t%d\t%d\t%d\n",
			res.Slices, res.Cycles, float64(res.Cycles)/float64(base),
			res.SpilledEvents, res.OffChipAccesses(), res.SliceSwitches)
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- Cluster

func runCluster(opt Options, _ *Sweep) error {
	w, err := ljWorkload(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "Multi-accelerator slicing (Section IV-F option b) — %s on %s (%s tier)\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier)
	fmt.Fprintln(opt.Out, "single-chip time-multiplexed slices vs N chips streaming events in real time")
	single, err := runOpt(w, opt)
	if err != nil {
		return err
	}
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "system\tcycles\tvs 1 chip\tinter-chip events\toff-chip accesses")
	fmt.Fprintf(tw, "1 chip, 1 slice\t%d\t1.00x\t0\t%d\n", single.Cycles, single.OffChipAccesses())
	for _, chips := range []int{2, 4} {
		ccfg := core.DefaultClusterConfig()
		ccfg.Chips = chips
		if opt.MaxCycles > 0 {
			ccfg.Chip.MaxCycles = opt.MaxCycles
		}
		cl, err := core.NewCluster(ccfg, w.Graph, w.NewAlgorithm())
		if err != nil {
			return err
		}
		res, err := cl.Run()
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d chips\t%d\t%.2fx\t%d\t%d\n",
			chips, res.Cycles, float64(single.Cycles)/float64(res.Cycles),
			res.InterChipEvents, res.OffChipAccesses)
	}
	return tw.Flush()
}

// ---------------------------------------------------------------- Ablation

func runAblation(opt Options, _ *Sweep) error {
	w, err := ljWorkload(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "Design ablations — %s on %s (%s tier)\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier)
	type variant struct {
		name string
		mut  func(*core.Config)
	}
	variants := []variant{
		{"optimized (reference)", func(*core.Config) {}},
		{"no vertex prefetch", func(c *core.Config) { c.Prefetch = false }},
		{"coupled generation", func(c *core.Config) {
			c.DecoupledGeneration = false
			c.StreamsPerProcessor = 0
		}},
		{"1 gen stream/proc", func(c *core.Config) { c.StreamsPerProcessor = 1 }},
		{"2 gen streams/proc", func(c *core.Config) { c.StreamsPerProcessor = 2 }},
		{"8 gen streams/proc", func(c *core.Config) { c.StreamsPerProcessor = 8 }},
		{"16 bins", func(c *core.Config) { c.NumBins = 16 }},
		{"256 bins", func(c *core.Config) { c.NumBins = 256 }},
		{"coalescing disabled", func(c *core.Config) { c.CoalesceDisabled = true }},
		{"1 DRAM channel", func(c *core.Config) { c.Memory.Channels = 1 }},
		{"densest-first schedule", func(c *core.Config) { c.Schedule = core.ScheduleDensestFirst }},
		{"bin-row-col mapping", func(c *core.Config) { c.Mapping = core.MapBinRowCol }},
		{"global termination 1e-2", func(c *core.Config) { c.GlobalProgressThreshold = 1e-2 }},
	}
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "variant\tcycles\tslowdown\tevents processed\toff-chip accesses")
	var base uint64
	for _, v := range variants {
		cfg := core.OptimizedConfig()
		if opt.MaxCycles > 0 {
			cfg.MaxCycles = opt.MaxCycles
		}
		v.mut(&cfg)
		if base != 0 {
			// Bound every variant to a generous multiple of the reference:
			// the coalescing-off variant in particular can blow up its event
			// population without bound (the paper's point — coalescing "is
			// critical for a practical asynchronous design").
			cfg.MaxCycles = 50 * base
		}
		a, err := core.New(cfg, w.Graph, w.NewAlgorithm())
		if err != nil {
			return err
		}
		res, err := a.Run()
		if err != nil {
			if errors.Is(err, sim.ErrDeadline) {
				fmt.Fprintf(tw, "%s\tDNF\t>%.0fx\t\t\n", v.name, 50.0)
				continue
			}
			return fmt.Errorf("bench: ablation %q: %w", v.name, err)
		}
		if base == 0 {
			base = res.Cycles
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2fx\t%d\t%d\n",
			v.name, res.Cycles, float64(res.Cycles)/float64(base),
			res.EventsProcessed, res.OffChipAccesses())
	}
	return tw.Flush()
}

// RunExperiments executes the selected experiment ids (nil = all) with a
// shared sweep for the figures that need one.
func RunExperiments(ids []string, opt Options) error {
	if opt.Out == nil {
		opt.Out = io.Discard
	}
	var selected []Experiment
	if len(ids) == 0 {
		selected = Experiments()
	} else {
		for _, id := range ids {
			e, err := ExperimentByID(id)
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	var sweep *Sweep
	for _, e := range selected {
		if e.NeedsSweep && sweep == nil {
			fmt.Fprintf(opt.Out, "[running %s-tier engine sweep × 4 engines]\n", opt.Tier)
			if opt.Progress != nil {
				fmt.Fprintf(opt.Progress, "[sweep: %d workers for simulated engines; ligra phase is serial]\n", opt.workers())
			}
			start := time.Now()
			var err error
			sweep, err = RunSweep(opt)
			if err != nil {
				return err
			}
			// The elapsed time goes to the progress stream, not Out, so
			// that Out stays byte-identical across runs and -parallel
			// settings.
			if opt.Progress != nil {
				fmt.Fprintf(opt.Progress, "[sweep done in %s]\n", time.Since(start).Round(time.Millisecond))
			}
			if n := sweep.FailedCells(); n > 0 {
				fmt.Fprintf(opt.Out, "[%d of %d cells FAILED; affected rows are marked below]\n", n, len(sweep.Cells))
			}
			fmt.Fprintln(opt.Out)
			if opt.CSVPath != "" {
				if err := writeSweepCSV(opt.CSVPath, sweep); err != nil {
					return err
				}
				fmt.Fprintf(opt.Out, "[sweep written to %s]\n\n", opt.CSVPath)
			}
		}
		fmt.Fprintf(opt.Out, "==== %s — %s ====\n", e.ID, e.Title)
		if err := e.Run(opt, sweep); err != nil {
			return fmt.Errorf("bench: %s: %w", e.ID, err)
		}
		fmt.Fprintln(opt.Out)
	}
	return nil
}
