package bench

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphpulse/internal/graph/gen"
)

// TestTimelineExperimentExports runs the timeline experiment end to end with
// a TelemetryPath and checks both export formats: the CSV must carry at least
// the three charted series, and the trace JSON must parse as a Chrome
// trace_event file with counter ("C") and metadata ("M") events.
func TestTimelineExperimentExports(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "tl")
	var buf bytes.Buffer
	opt := Options{
		Tier:          gen.Tiny,
		Out:           &buf,
		TelemetryPath: prefix,
	}
	if err := RunExperiments([]string{"timeline"}, opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Timeline —") {
		t.Errorf("timeline header missing from output:\n%s", out)
	}

	// CSV: long format, header + rows, ≥3 distinct series including the
	// charted ones.
	f, err := os.Open(prefix + ".csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := []string{"cycle", "component", "series", "unit", "kind", "value"}
	if len(rows) == 0 || strings.Join(rows[0], ",") != strings.Join(wantHeader, ",") {
		t.Fatalf("csv header = %v, want %v", rows[0], wantHeader)
	}
	series := map[string]int{}
	for _, row := range rows[1:] {
		series[row[2]]++
	}
	if len(series) < 3 {
		t.Fatalf("csv has %d distinct series, want ≥ 3: %v", len(series), series)
	}
	for _, name := range timelineSeries {
		if series[name] == 0 {
			t.Errorf("csv missing charted series %q", name)
		}
	}

	// Trace: valid JSON with counter and process-name metadata events.
	raw, err := os.ReadFile(prefix + ".trace.json")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int    `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}
	var counters, meta int
	for _, ev := range trace.TraceEvents {
		switch ev.Phase {
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if counters == 0 || meta == 0 {
		t.Fatalf("trace has %d counter and %d metadata events, want both > 0", counters, meta)
	}
}
