package bench

import (
	"fmt"
	"io"
	"strings"
)

// Lightweight ASCII charts so cmd/bench output reads like the paper's
// figures, not just tables. Pure functions, unit-tested.

// barChart renders one horizontal bar per (label, value) pair, scaled to
// width characters at the largest value.
func barChart(w io.Writer, title string, labels []string, values []float64, width int) {
	if len(labels) != len(values) || len(labels) == 0 {
		return
	}
	maxV := values[0]
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	fmt.Fprintln(w, title)
	for i, v := range values {
		n := int(v / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %-*s %s %.4g\n", maxLabel, labels[i], strings.Repeat("█", n), v)
	}
}

// seriesChart renders a compact per-round area chart: one row per series,
// one column per (bucketed) round, intensity by value. It gives Figure 4's
// two curves and Figure 8's stacked classes a visual shape in a terminal.
func seriesChart(w io.Writer, title string, rounds int, series []string, value func(series, round int) float64, width int) {
	if rounds == 0 || len(series) == 0 {
		return
	}
	cols := rounds
	if cols > width {
		cols = width
	}
	maxV := 0.0
	for s := range series {
		for r := 0; r < rounds; r++ {
			if v := value(s, r); v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	shades := []rune(" ░▒▓█")
	maxLabel := 0
	for _, s := range series {
		if len(s) > maxLabel {
			maxLabel = len(s)
		}
	}
	fmt.Fprintf(w, "%s (rounds 0..%d, left to right; intensity ∝ value)\n", title, rounds-1)
	for s, name := range series {
		var b strings.Builder
		for c := 0; c < cols; c++ {
			// Each column aggregates the rounds that fall into it.
			lo := c * rounds / cols
			hi := (c + 1) * rounds / cols
			if hi == lo {
				hi = lo + 1
			}
			v := 0.0
			for r := lo; r < hi && r < rounds; r++ {
				if x := value(s, r); x > v {
					v = x
				}
			}
			idx := int(v / maxV * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteRune(shades[idx])
		}
		fmt.Fprintf(w, "  %-*s |%s|\n", maxLabel, name, b.String())
	}
}
