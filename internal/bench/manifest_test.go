package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sweepCSV renders a sweep's CSV export.
func sweepCSV(t *testing.T, sw *Sweep) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSweepResumeCSVIdentical is the resume acceptance gate: a sweep killed
// mid-run and resumed from its manifest must produce byte-identical CSV to
// the uninterrupted run. The kill is simulated by erasing a slice of the
// recorded jobs — whole cells and individual engines — from the manifest of
// a completed run before resuming.
func TestSweepResumeCSVIdentical(t *testing.T) {
	dir := t.TempDir()
	opt := sweepOptions()
	opt.Manifest = filepath.Join(dir, "sweep.manifest.json")

	full, err := RunSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := sweepCSV(t, full)

	m, err := ReadManifest(opt.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != len(full.Cells) {
		t.Fatalf("manifest has %d cells, want %d", len(m.Cells), len(full.Cells))
	}
	// Simulate the kill: one whole cell lost, one cell missing two engines.
	var keys []string
	for k := range m.Cells {
		keys = append(keys, k)
	}
	delete(m.Cells, keys[0])
	for _, k := range keys {
		if mc, ok := m.Cells[k]; ok {
			delete(mc.Done, "opt")
			delete(mc.Done, "gion")
			break
		}
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opt.Manifest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	opt.Resume = true
	resumed, err := RunSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepCSV(t, resumed); got != wantCSV {
		t.Errorf("resumed CSV differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", wantCSV, got)
	}

	// A second resume with nothing left to run must also agree (pure
	// restore, zero jobs executed).
	restored, err := RunSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepCSV(t, restored); got != wantCSV {
		t.Error("pure-restore resume CSV differs from uninterrupted run")
	}
}

// TestManifestResumeRestoresFailures: a recorded failure must come back as
// a failure with the original message, not be silently re-measured or
// turned into a success.
func TestManifestResumeRestoresFailures(t *testing.T) {
	dir := t.TempDir()
	opt := sweepOptions()
	opt.Manifest = filepath.Join(dir, "m.json")
	ws, err := Workloads(opt)
	if err != nil {
		t.Fatal(err)
	}
	const doomed = 1
	ws[doomed].MaxCycles = 10

	mw, err := newManifestWriter(ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	first := runSweep(ws, opt, mw)
	if mw.firstErr != nil {
		t.Fatal(mw.firstErr)
	}
	wantReason := first.Cells[doomed].FailureReason()
	if wantReason == "" {
		t.Fatal("choked cell did not fail")
	}

	ws2, err := Workloads(opt)
	if err != nil {
		t.Fatal(err)
	}
	ws2[doomed].MaxCycles = 10
	opt.Resume = true
	mw2, err := newManifestWriter(ws2, opt)
	if err != nil {
		t.Fatal(err)
	}
	second := runSweep(ws2, opt, mw2)
	got := second.Cells[doomed]
	if !got.Failed() {
		t.Fatal("restored cell is no longer failed")
	}
	if got.FailureReason() != wantReason {
		t.Errorf("restored failure %q, want %q", got.FailureReason(), wantReason)
	}
}

// TestManifestSignatureMismatch: resuming with different sweep parameters
// must fail loudly instead of mixing measurements from two sweeps.
func TestManifestSignatureMismatch(t *testing.T) {
	dir := t.TempDir()
	opt := sweepOptions()
	opt.Manifest = filepath.Join(dir, "m.json")
	if _, err := RunSweep(opt); err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	opt.Algorithms = []string{"pr"} // narrower sweep than recorded
	_, err := RunSweep(opt)
	if err == nil {
		t.Fatal("resume with a different sweep signature succeeded")
	}
	if !strings.Contains(err.Error(), "manifest") {
		t.Errorf("error %q does not mention the manifest", err)
	}
}

// TestManifestResumeRequiresPath: -resume without -manifest is a usage
// error, not a silent fresh start.
func TestManifestResumeRequiresPath(t *testing.T) {
	opt := sweepOptions()
	opt.Resume = true
	if _, err := RunSweep(opt); err == nil {
		t.Fatal("Resume without Manifest succeeded")
	}
}

// TestManifestResumeMissingFileStartsFresh: -resume pointing at a manifest
// that does not exist yet (first run of a resumable sweep) starts fresh and
// writes the manifest.
func TestManifestResumeMissingFileStartsFresh(t *testing.T) {
	dir := t.TempDir()
	opt := sweepOptions()
	opt.Manifest = filepath.Join(dir, "new.json")
	opt.Resume = true
	sw, err := RunSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Cells) == 0 {
		t.Fatal("sweep ran no cells")
	}
	m, err := ReadManifest(opt.Manifest)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	if len(m.Cells) != len(sw.Cells) {
		t.Errorf("manifest records %d cells, want %d", len(m.Cells), len(sw.Cells))
	}
	for key, mc := range m.Cells {
		for _, eng := range EngineNames {
			if !mc.Done[eng] {
				t.Errorf("cell %s engine %s not recorded", key, eng)
			}
		}
	}
}
