package bench

import (
	"fmt"
	"math/rand"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/stream"
)

// Churn experiment constants: a deterministic seeded mutation schedule so
// the warm-vs-cold comparison visits every re-convergence mode (insertion
// seeding, deletion cone, window expiry) on one run.
const (
	churnEpochs = 8
	churnBatch  = 16
	churnSeed   = 1
)

// runChurn measures streaming re-convergence: a stream.Replayer carries
// one (algorithm, graph) pair through seeded insert/delete/expire epochs,
// timing the warm continuation each epoch against a cold solve of the
// same post-mutation graph. Like the scaling experiment these are host
// wall-clock timings — absolute numbers vary by machine; the reproduction
// target is warm staying at or under cold, with the gap widest for
// seeded insert-only epochs and narrowest when a large deletion cone
// forces replay.
func runChurn(opt Options, _ *Sweep) error {
	o := opt
	o.Datasets = []string{"WG"}
	if len(opt.Datasets) > 0 {
		o.Datasets = opt.Datasets[:1]
	}
	o.Algorithms = []string{"pr"}
	if len(opt.Algorithms) > 0 {
		o.Algorithms = opt.Algorithms[:1]
	}
	ws, err := Workloads(o)
	if err != nil {
		return err
	}
	w := ws[0]

	solve := func(g *graph.CSR, alg algorithms.Algorithm) ([]float64, error) {
		return algorithms.Solve(g, alg).Values, nil
	}
	r := stream.NewReplayer(w.Graph, w.NewAlgorithm, solve, stream.DefaultMaxConeFraction)
	if _, err := r.State(); err != nil {
		return err
	}

	fmt.Fprintf(opt.Out, "Churn — warm vs cold re-convergence per mutation epoch, %s on %s-class graph (%s tier)\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier)
	fmt.Fprintf(opt.Out, "wall-clock host timings; %d-edge batches, seeded schedule; cone cap %.0f%% of vertices\n",
		churnBatch, 100*stream.DefaultMaxConeFraction)
	fmt.Fprintln(opt.Out, "(warm includes the incremental log→CSR rebuild; cold solves the already-built graph)")
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "epoch\tinserts\tdeletes\tmode\twarm ms\tcold ms\tspeedup")

	rng := rand.New(rand.NewSource(churnSeed))
	n := w.Graph.NumVertices()
	var pool []graph.Edge
	var warmTotal, coldTotal float64
	for epoch := 1; epoch <= churnEpochs; epoch++ {
		var ins, dels []graph.Edge
		expire := false
		switch {
		case epoch == churnEpochs:
			// Final epoch: age out everything streamed in so far.
			expire = true
		case epoch%3 == 0 && len(pool) >= churnBatch/2:
			// Every third epoch deletes half a batch of earlier inserts,
			// driving the cone path.
			dels, pool = pool[:churnBatch/2], pool[churnBatch/2:]
		default:
			for i := 0; i < churnBatch; i++ {
				ins = append(ins, graph.Edge{
					Src:    graph.VertexID(rng.Intn(n)),
					Dst:    graph.VertexID(rng.Intn(n)),
					Weight: float32(rng.Float64()*0.9 + 0.1),
				})
			}
		}

		var warmSecs float64
		var expired int
		start := time.Now()
		if expire {
			expired, err = r.Expire(time.Unix(int64(epoch)*10, 0), time.Second)
			warmSecs = time.Since(start).Seconds()
			if err != nil {
				return fmt.Errorf("bench: churn epoch %d expire: %w", epoch, err)
			}
			if expired == 0 {
				continue
			}
			dels = make([]graph.Edge, expired)
		} else {
			if err := r.Apply(ins, dels, time.Unix(int64(epoch)*10, 0)); err != nil {
				return fmt.Errorf("bench: churn epoch %d: %w", epoch, err)
			}
			warmSecs = time.Since(start).Seconds()
			pool = append(pool, ins...)
		}

		start = time.Now()
		algorithms.Solve(r.Graph(), w.NewAlgorithm())
		coldSecs := time.Since(start).Seconds()
		warmTotal += warmSecs
		coldTotal += coldSecs
		speedup := 0.0
		if warmSecs > 0 {
			speedup = coldSecs / warmSecs
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%.3f\t%.3f\t%.2fx\n",
			epoch, len(ins), len(dels), r.LastMode, warmSecs*1e3, coldSecs*1e3, speedup)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "totals: warm %.3f ms vs cold %.3f ms (seed starts %d, cone starts %d, replays %d)\n",
		warmTotal*1e3, coldTotal*1e3, r.SeedStarts, r.ConeStarts, r.Replays)
	return nil
}
