package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: rendered chart diverges from golden\n-- got --\n%s-- want --\n%s", name, got, want)
	}
}

// TestBarChartGolden pins the exact bar-chart rendering (label padding,
// scaling, value formatting) against a checked-in golden file.
func TestBarChartGolden(t *testing.T) {
	var buf bytes.Buffer
	barChart(&buf, "Speedup over Graphicionado",
		[]string{"pagerank", "adsorption", "sssp", "bfs", "cc"},
		[]float64{12.4, 10.1, 6.35, 4.8, 7.25}, 30)
	checkGolden(t, "bar_chart", buf.Bytes())
}

// TestBarChartGoldenSmallValues exercises the fractional/zero-value path,
// where bars collapse to zero cells but rows must still render.
func TestBarChartGoldenSmallValues(t *testing.T) {
	var buf bytes.Buffer
	barChart(&buf, "tiny", []string{"x", "yy", "zzz"}, []float64{0, 0.001, 1}, 8)
	checkGolden(t, "bar_chart_small", buf.Bytes())
}

// TestSeriesChartGolden pins the per-round area chart, including the
// round-bucketing path (rounds > width forces column aggregation).
func TestSeriesChartGolden(t *testing.T) {
	rounds := 40
	vals := func(s, r int) float64 {
		if s == 0 {
			return float64(r) // ramp up
		}
		return float64(rounds - r) // ramp down
	}
	var buf bytes.Buffer
	seriesChart(&buf, "Events per round", rounds, []string{"produced", "remaining"}, vals, 16)
	checkGolden(t, "series_chart_bucketed", buf.Bytes())
}

// TestSeriesChartGoldenUnbucketed covers rounds < width (one column per
// round, no aggregation).
func TestSeriesChartGoldenUnbucketed(t *testing.T) {
	vals := [][]float64{
		{0, 1, 4, 2, 0},
		{4, 2, 1, 0, 0},
	}
	var buf bytes.Buffer
	seriesChart(&buf, "small", 5, []string{"a", "longer"},
		func(s, r int) float64 { return vals[s][r] }, 60)
	checkGolden(t, "series_chart_plain", buf.Bytes())
}
