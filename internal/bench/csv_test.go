package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"graphpulse/internal/graph/gen"
)

func TestWriteCSV(t *testing.T) {
	opt := Options{Tier: gen.Tiny, Datasets: []string{"WG"}, Algorithms: []string{"bfs", "cc"}}
	sw, err := RunSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 3 { // header + 2 workloads
		t.Fatalf("got %d rows, want 3", len(records))
	}
	width := len(records[0])
	for i, r := range records {
		if len(r) != width {
			t.Errorf("row %d has %d columns, want %d", i, len(r), width)
		}
	}
	if records[1][1] != "WG" || records[1][2] != "bfs" {
		t.Errorf("row 1 = %v", records[1][:3])
	}
	if records[1][0] != "tiny" {
		t.Errorf("tier column = %q", records[1][0])
	}
}
