package bench

// The fault-injection experiment: a survival matrix over fault classes and
// injection rates. Each row runs PR-Delta on the LJ-class workload (sliced
// into 3 so the spill/recovery path is live) with exactly one fault class
// enabled at a fixed seed, and reports what the machine did about it:
//
//   - detected:  the event-conservation watchdog tripped with a structured
//     core.ErrConservation (drops, link kills);
//   - tolerated: the run completed with every event accounted for
//     (duplicates discarded idempotently, reorders absorbed by commutative
//     coalescing, DRAM faults retried with backoff, spill losses re-read).
//     Timing-only classes (dram, spill) can still show small value drift:
//     delaying a transaction changes how deltas batch in the coalescer,
//     and PR-Delta's termination threshold turns that into O(threshold)
//     divergence — the same drift any schedule perturbation produces in an
//     asynchronous engine, not corruption;
//   - corrupted: a data-altering fault (vertex-property bit flip) survived
//     to the converged values — the silent-data-corruption band, which has
//     no detector by design.
//
// Every run is deterministic (seeded injector, simulated time), so the
// rendered table is byte-identical across hosts and repetitions.

import (
	"errors"
	"fmt"
	"math"

	"graphpulse/internal/core"
	"graphpulse/internal/sim"
	"graphpulse/internal/sim/fault"
)

// faultClasses enumerates the matrix rows: one injector class per row.
var faultClasses = []struct {
	name string
	// corrupts marks classes that alter data (divergence = silent
	// corruption); the rest only perturb timing (divergence = benign
	// schedule drift).
	corrupts bool
	set      func(c *fault.Config, rate float64)
}{
	{"drop", false, func(c *fault.Config, r float64) { c.DropRate = r }},
	{"dup", false, func(c *fault.Config, r float64) { c.DuplicateRate = r }},
	{"reorder", false, func(c *fault.Config, r float64) { c.ReorderRate = r }},
	{"bitflip", true, func(c *fault.Config, r float64) { c.BitFlipRate = r }},
	{"dram", false, func(c *fault.Config, r float64) { c.DRAMFaultRate = r }},
	{"spill", false, func(c *fault.Config, r float64) { c.SpillLossRate = r }},
}

// faultRates is the default per-class rate sweep.
var faultRates = []float64{1e-4, 1e-3}

// faultConfig is the shared device configuration of every matrix cell: the
// optimized design, sliced into 3 so swap-in (and thus spill-loss
// recovery) actually executes on a queue-sized workload.
func faultConfig(w *Workload, opt Options) core.Config {
	cfg := core.OptimizedConfig()
	if opt.MaxCycles > 0 {
		cfg.MaxCycles = opt.MaxCycles
	}
	cfg.QueueCapacity = (w.Graph.NumVertices() + 2) / 3
	return cfg
}

// maxDivergence returns the largest |a[i]-b[i]| (∞-norm) between two value
// vectors.
func maxDivergence(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if dv := math.Abs(a[i] - b[i]); dv > d {
			d = dv
		}
	}
	return d
}

func runFaults(opt Options, _ *Sweep) error {
	w, err := ljWorkload(opt)
	if err != nil {
		return err
	}
	cfg := faultConfig(w, opt)
	a, err := core.New(cfg, w.Graph, w.NewAlgorithm())
	if err != nil {
		return err
	}
	clean, err := a.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "Fault injection — %s on %s-class graph (%s tier), %d slices, seed 1\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier, clean.Slices)
	fmt.Fprintf(opt.Out, "clean reference: %d cycles, %d events processed\n",
		clean.Cycles, clean.EventsProcessed)

	type row struct {
		class    string
		rate     float64
		corrupts bool
		cfg      fault.Config
	}
	var rows []row
	if opt.FaultSpec != "" {
		fc, err := fault.ParseSpec(opt.FaultSpec)
		if err != nil {
			return err
		}
		rows = append(rows, row{class: "custom", corrupts: fc.BitFlipRate > 0, cfg: fc})
	} else {
		for _, cl := range faultClasses {
			for _, r := range faultRates {
				fc := fault.Config{Seed: 1}
				cl.set(&fc, r)
				rows = append(rows, row{class: cl.name, rate: r, corrupts: cl.corrupts, cfg: fc})
			}
		}
	}

	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "class\trate\toutcome\tinjected\tcycles\tmax |Δvalue|")
	for _, r := range rows {
		c := cfg
		c.Fault = r.cfg
		ac, err := core.New(c, w.Graph, w.NewAlgorithm())
		if err != nil {
			return err
		}
		res, runErr := ac.Run()
		rate := "(spec)"
		if r.rate > 0 {
			rate = fmt.Sprintf("%.0e", r.rate)
		}
		var ce *core.ConservationError
		switch {
		case errors.As(runErr, &ce):
			fmt.Fprintf(tw, "%s\t%s\tdetected @cycle %d (imbalance %+d)\t%s\t-\t-\n",
				r.class, rate, ce.Cycle, ce.Imbalance, fault.FormatSnapshot(ce.Faults))
		case errors.Is(runErr, sim.ErrDeadline):
			fmt.Fprintf(tw, "%s\t%s\tDNF (deadline)\t-\t-\t-\n", r.class, rate)
		case runErr != nil:
			fmt.Fprintf(tw, "%s\t%s\tFAILED: %v\t-\t-\t-\n", r.class, rate, runErr)
		default:
			div := maxDivergence(res.Values, clean.Values)
			outcome := "tolerated (values exact)"
			switch {
			case div > 0 && r.corrupts:
				outcome = "corrupted (silent)"
			case div > 0:
				outcome = "tolerated (timing drift)"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%.3g\n",
				r.class, rate, outcome, fault.FormatSnapshot(res.FaultsInjected), res.Cycles, div)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, "detection: conservation watchdog (structured core.ErrConservation with an")
	fmt.Fprintln(opt.Out, "imbalance snapshot); bit flips are the undetected band — see METRICS.md")
	return nil
}
