package bench

import (
	"encoding/csv"
	"fmt"
	"io"

	"graphpulse/internal/atomicio"
)

// WriteCSV dumps the sweep as machine-readable rows (one per
// workload) so results can be post-processed or plotted outside the
// repository. Columns are stable; new ones are appended at the end.
// Failed cells keep their identity columns, leave the measurement
// columns empty, and carry the reason in the status column.
func (s *Sweep) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"tier", "dataset", "algorithm",
		"ligra_wall_s", "ligra_model12_s", "ligra_iterations",
		"gp_opt_cycles", "gp_opt_seconds", "gp_opt_rounds", "gp_opt_events",
		"gp_opt_coalesced", "gp_opt_offchip", "gp_opt_utilization",
		"gp_base_cycles", "gp_base_offchip",
		"gion_cycles", "gion_iterations", "gion_offchip", "gion_utilization",
		"status",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	ff := func(v float64) string { return fmt.Sprintf("%g", v) }
	fi := func(v int64) string { return fmt.Sprintf("%d", v) }
	for _, c := range s.Cells {
		row := []string{s.Tier.String(), c.Workload.Dataset.Abbrev, c.Workload.AlgName}
		if c.Failed() {
			for len(row) < len(header)-1 {
				row = append(row, "")
			}
			row = append(row, "FAILED: "+c.FailureReason())
		} else {
			row = append(row,
				ff(c.LigraSeconds), ff(c.LigraModelSeconds), fi(int64(c.LigraIters)),
				fi(int64(c.Opt.Cycles)), ff(c.Opt.Seconds), fi(int64(c.Opt.Rounds)), fi(c.Opt.EventsProcessed),
				fi(c.Opt.EventsCoalesced), fi(c.Opt.OffChipAccesses()), ff(c.Opt.Utilization),
				fi(int64(c.Base.Cycles)), fi(c.Base.OffChipAccesses()),
				fi(int64(c.Gion.Cycles)), fi(int64(c.Gion.Iterations)), fi(c.Gion.OffChipAccesses()), ff(c.Gion.Utilization),
				"ok")
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeSweepCSV writes the sweep to path atomically (temp file + rename),
// so a failed or interrupted write never replaces or corrupts an existing
// CSV from an earlier run.
func writeSweepCSV(path string, s *Sweep) error {
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return s.WriteCSV(w)
	})
	if err != nil {
		return fmt.Errorf("bench: csv %s: %w", path, err)
	}
	return nil
}
