package bench

import (
	"bytes"
	"os"
	"runtime"
	"strings"
	"testing"

	"graphpulse/internal/engines"
	"graphpulse/internal/graph/gen"
)

// TestScalingExperimentRenders runs the scaling experiment on the tiny tier
// and pins the table shape: a serial baseline row plus one psolve row per
// worker count.
func TestScalingExperimentRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiments([]string{"scaling"}, smallOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "engine") || !strings.Contains(out, "speedup") {
		t.Fatalf("scaling output missing table header:\n%s", out)
	}
	if !strings.Contains(out, "solve") {
		t.Errorf("scaling output missing serial baseline row:\n%s", out)
	}
	if got, want := strings.Count(out, "psolve"), len(scalingWorkerCounts()); got < want {
		t.Errorf("scaling output has %d psolve rows, want >= %d:\n%s", got, want, out)
	}
}

// TestScalingRejectsUnknownEngine pins that -engines validation speaks the
// registry's vocabulary.
func TestScalingRejectsUnknownEngine(t *testing.T) {
	var buf bytes.Buffer
	opt := smallOptions(&buf)
	opt.Engines = []string{"warp-drive"}
	err := RunExperiments([]string{"scaling"}, opt)
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	if !strings.Contains(err.Error(), engines.NamesList()) {
		t.Errorf("error %q does not list the registry names %q", err, engines.NamesList())
	}
}

// TestScalingSmoke is the CI speedup gate: on a multi-core runner the
// parallel solver at 8 workers must not be slower than the serial solver on
// a WG-class graph. Host-timed and meaningless on a single-CPU box (where
// parallel overhead is pure slowdown), so it only runs when
// GRAPHPULSE_SCALING_SMOKE=1 is exported — the CI workflow sets it on the
// dedicated scaling job.
func TestScalingSmoke(t *testing.T) {
	if os.Getenv("GRAPHPULSE_SCALING_SMOKE") != "1" {
		t.Skip("set GRAPHPULSE_SCALING_SMOKE=1 to run the host-timed scaling gate")
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	opt := Options{Tier: gen.Tiny, Out: new(bytes.Buffer)}
	ws, err := Workloads(Options{Tier: gen.Tiny, Datasets: []string{"WG"}, Algorithms: []string{"pr"}, Out: opt.Out})
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0]

	serial, err := timeEngine(opt, w, engines.Solve)
	if err != nil {
		t.Fatal(err)
	}
	par, res, err := timePSolve(opt, w, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serial %.4fs, psolve[w=8] %.4fs (%.2fx), cut=%d xshard=%d",
		serial, par, serial/par, res.CutEdges, res.CrossShardDeltas)
	if par > serial {
		t.Errorf("psolve[w=8] %.4fs slower than serial %.4fs on %s/%s",
			par, serial, w.Dataset.Abbrev, w.AlgName)
	}
	if res.Workers != 8 {
		t.Errorf("psolve used %d workers, want 8", res.Workers)
	}
	// Sanity: the parallel run agrees with serial within the conformance
	// band — covered exactly by the conformance matrix; here just require it
	// converged to the full vertex set.
	if len(res.Values) != w.Graph.NumVertices() {
		t.Errorf("psolve returned %d values, want %d", len(res.Values), w.Graph.NumVertices())
	}
}
