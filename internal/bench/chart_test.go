package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	barChart(&buf, "title", []string{"a", "bb"}, []float64{1, 2}, 10)
	out := buf.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	// The larger value gets the longer bar.
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Errorf("bars not proportional:\n%s", out)
	}
	if !strings.Contains(lines[2], "2") {
		t.Error("value missing from row")
	}
}

func TestBarChartDegenerate(t *testing.T) {
	var buf bytes.Buffer
	barChart(&buf, "t", nil, nil, 10)
	if buf.Len() != 0 {
		t.Error("empty input produced output")
	}
	barChart(&buf, "t", []string{"a"}, []float64{1, 2}, 10)
	if buf.Len() != 0 {
		t.Error("mismatched input produced output")
	}
	barChart(&buf, "t", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(buf.String(), "a") {
		t.Error("zero values should still render labels")
	}
}

func TestSeriesChart(t *testing.T) {
	var buf bytes.Buffer
	vals := [][]float64{
		{1, 2, 3, 4},
		{4, 3, 2, 1},
	}
	seriesChart(&buf, "flow", 4, []string{"up", "down"}, func(s, r int) float64 {
		return vals[s][r]
	}, 80)
	out := buf.String()
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatalf("missing series rows:\n%s", out)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// "up" grows left→right: its last cell should be darker than its first.
	up := rows[1][strings.Index(rows[1], "|")+1:]
	if up[0] == up[len(up)-2] {
		t.Errorf("no gradient in growing series: %q", up)
	}
}

func TestSeriesChartWiderThanRounds(t *testing.T) {
	var buf bytes.Buffer
	seriesChart(&buf, "t", 100, []string{"s"}, func(_, r int) float64 {
		return float64(r)
	}, 20)
	out := buf.String()
	bar := out[strings.Index(out, "|")+1:]
	bar = bar[:strings.Index(bar, "|")]
	if len([]rune(bar)) != 20 {
		t.Errorf("bucketed width = %d runes, want 20", len([]rune(bar)))
	}
}

func TestSeriesChartDegenerate(t *testing.T) {
	var buf bytes.Buffer
	seriesChart(&buf, "t", 0, []string{"s"}, nil, 20)
	seriesChart(&buf, "t", 5, nil, nil, 20)
	if buf.Len() != 0 {
		t.Error("degenerate inputs produced output")
	}
}
