package bench

import (
	"fmt"
	"runtime"
	"time"

	"graphpulse/internal/engines"
	"graphpulse/internal/psolve"
)

// scalingReps is how many times each timed job runs; the minimum is
// reported, the standard defense against scheduler noise in wall-clock
// microbenchmarks.
const scalingReps = 3

// scalingWorkerCounts returns the shard counts the psolve sweep visits:
// powers of two through 8, extended to GOMAXPROCS when the host is wider.
func scalingWorkerCounts() []int {
	counts := []int{1, 2, 4, 8}
	if p := runtime.GOMAXPROCS(0); p > 8 {
		counts = append(counts, p)
	}
	return counts
}

// runScaling measures the native solvers' wall-clock scaling: the serial
// worklist solver as the 1.00x baseline, then psolve across worker counts,
// plus any other registry engines selected with Options.Engines. Unlike the
// cycle-level experiments these are host timings (like Figure 10's Ligra
// column), so absolute numbers vary by machine; the reproduction target is
// the speedup curve's shape on a multi-core host. CI enforces the ≥-parity
// gate on a WG-class graph through the GRAPHPULSE_SCALING_SMOKE test.
func runScaling(opt Options, _ *Sweep) error {
	selected := opt.Engines
	if len(selected) == 0 {
		selected = []string{engines.Solve, engines.PSolve}
	}
	var names []string
	for _, n := range selected {
		cn, err := engines.Normalize(n)
		if err != nil {
			return err
		}
		names = append(names, cn)
	}

	o := opt
	o.Datasets = []string{"WG"}
	if len(opt.Datasets) > 0 {
		o.Datasets = opt.Datasets[:1]
	}
	o.Algorithms = []string{"pr"}
	if len(opt.Algorithms) > 0 {
		o.Algorithms = opt.Algorithms[:1]
	}
	ws, err := Workloads(o)
	if err != nil {
		return err
	}
	w := ws[0]

	serialSecs, err := timeEngine(opt, w, engines.Solve)
	if err != nil {
		return err
	}

	fmt.Fprintf(opt.Out, "Scaling — native solver speedup vs worker count, %s on %s-class graph (%s tier)\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier)
	fmt.Fprintf(opt.Out, "host GOMAXPROCS=%d; wall-clock, best of %d runs; speedup vs serial solve\n",
		runtime.GOMAXPROCS(0), scalingReps)
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "engine\tworkers\trelabel\tseconds\tspeedup\txshard deltas\tbatches\trounds\tcut edges")

	for _, name := range names {
		switch name {
		case engines.Solve:
			fmt.Fprintf(tw, "solve\t1\t-\t%.4f\t%.2fx\t-\t-\t-\t-\n", serialSecs, 1.0)
		case engines.PSolve:
			// Each worker count runs twice: the raw contiguous split
			// (relabel off) and the default degree-order locality pass —
			// the before/after view of the cross-shard counters.
			for _, workers := range scalingWorkerCounts() {
				for _, noRelabel := range []bool{true, false} {
					if workers == 1 && !noRelabel {
						continue // single shard: relabeling is skipped
					}
					secs, res, err := timePSolve(opt, w, workers, noRelabel)
					if err != nil {
						return err
					}
					label := "on"
					if noRelabel {
						label = "off"
					}
					fmt.Fprintf(tw, "psolve\t%d\t%s\t%.4f\t%.2fx\t%d\t%d\t%d\t%d\n",
						res.Workers, label, secs, serialSecs/secs,
						res.CrossShardDeltas, res.CrossShardBatches,
						res.TerminationRounds, res.CutEdges)
				}
			}
		default:
			secs, err := timeEngine(opt, w, name)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t-\t-\t%.4f\t%.2fx\t-\t-\t-\t-\n", name, secs, serialSecs/secs)
		}
	}
	return tw.Flush()
}

// timeEngine runs one registry engine scalingReps times over the workload
// and returns the best wall time in seconds.
func timeEngine(opt Options, w *Workload, name string) (float64, error) {
	eng, err := engines.Lookup(name)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for i := 0; i < scalingReps; i++ {
		ctx, cancel := opt.jobContext()
		start := time.Now()
		_, err := eng.SolveCtx(ctx, w.Graph, w.NewAlgorithm())
		secs := time.Since(start).Seconds()
		cancel()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		if i == 0 || secs < best {
			best = secs
		}
	}
	return best, nil
}

// timePSolve runs the parallel solver at a fixed worker count scalingReps
// times and returns the best wall time plus the last run's counters (the
// counters for monotone work are schedule-dependent only in their split,
// not their totals, and any run is representative).
func timePSolve(opt Options, w *Workload, workers int, noRelabel bool) (float64, *psolve.Result, error) {
	cfg := psolve.DefaultConfig()
	cfg.Workers = workers
	cfg.NoRelabel = noRelabel
	best := 0.0
	var res *psolve.Result
	for i := 0; i < scalingReps; i++ {
		ctx, cancel := opt.jobContext()
		start := time.Now()
		r, err := psolve.SolveCtx(ctx, w.Graph, w.NewAlgorithm(), cfg)
		secs := time.Since(start).Seconds()
		cancel()
		if err != nil {
			return 0, nil, fmt.Errorf("psolve[w=%d]: %w", workers, err)
		}
		res = r
		if i == 0 || secs < best {
			best = secs
		}
	}
	return best, res, nil
}
