package bench

// The job-based sweep runner. Every (workload × engine) measurement is a
// self-contained Job: an immutable *Workload in, one Cell fragment out.
// Jobs execute in two phases:
//
//  1. a dedicated serial phase for the host-timed Ligra baseline — it
//     measures wall time on all host cores, so running anything alongside
//     it would corrupt Figure 10's "host" columns;
//  2. a bounded worker pool (Options.Parallel, default GOMAXPROCS) for the
//     three simulated engines, which are deterministic, share no mutable
//     state, and therefore parallelize freely.
//
// Cells are allocated up front in canonical workload order and each job
// writes only its own fragment (distinct struct fields), so the assembled
// Sweep — and everything rendered from it — is byte-identical to a serial
// run regardless of worker count or completion order. Failures (including
// sim.ErrDeadline and recovered panics) are recorded per cell instead of
// aborting the sweep.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/baseline/ligra"
	"graphpulse/internal/core"
)

// simEngines are the jobs the parallel phase schedules; "ligra" is handled
// by the serial phase.
var simEngines = []string{"opt", "base", "gion"}

// Job is one (workload × engine) measurement. Running it fills the
// engine's fragment of Cell (or its error field) and touches nothing else.
type Job struct {
	Cell *Cell
	// Engine is one of EngineNames.
	Engine string
}

// Run executes the job with panic recovery: a panicking engine is recorded
// as that cell's failure, never propagated.
func (j Job) Run(opt Options) {
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		switch j.Engine {
		case "ligra":
			return runLigraJob(j.Cell, opt)
		case "opt":
			return runOptJob(j.Cell, opt)
		case "base":
			return runBaseJob(j.Cell, opt)
		case "gion":
			return runGionJob(j.Cell, opt)
		}
		return fmt.Errorf("bench: unknown engine %q", j.Engine)
	}()
	if err == nil {
		return
	}
	switch j.Engine {
	case "ligra":
		j.Cell.LigraErr = err
	case "opt":
		j.Cell.OptErr = err
	case "base":
		j.Cell.BaseErr = err
	case "gion":
		j.Cell.GionErr = err
	}
}

// simConfig applies the per-cell overrides shared by both GraphPulse
// configurations: the cycle deadline (workload override wins over the
// sweep-wide one) and the slice-forcing queue capacity.
func simConfig(cfg core.Config, w *Workload, opt Options) core.Config {
	if opt.MaxCycles > 0 {
		cfg.MaxCycles = opt.MaxCycles
	}
	if w.MaxCycles > 0 {
		cfg.MaxCycles = w.MaxCycles
	}
	if w.sliceInto > 1 {
		cfg.QueueCapacity = (w.Graph.NumVertices() + w.sliceInto - 1) / w.sliceInto
	}
	return cfg
}

// runLigraJob measures the software baseline: wall time on the host plus
// the host-independent analytic 12-core-Xeon model derived from the same
// run's access counts.
func runLigraJob(c *Cell, opt Options) error {
	w := c.Workload
	start := time.Now()
	lig := ligra.New(ligra.DefaultConfig(), w.Graph).Run(w.NewAlgorithm())
	c.LigraSeconds = time.Since(start).Seconds()
	if opt.fixedLigraSeconds > 0 {
		c.LigraSeconds = opt.fixedLigraSeconds
	}
	c.LigraModelSeconds = ligra.ModelSeconds(lig, ligra.PaperXeon())
	c.LigraIters = lig.Iterations
	return nil
}

func runOptJob(c *Cell, opt Options) error {
	w := c.Workload
	a, err := core.New(simConfig(core.OptimizedConfig(), w, opt), w.Graph, w.NewAlgorithm())
	if err != nil {
		return err
	}
	ctx, cancel := opt.jobContext()
	defer cancel()
	c.Opt, err = a.RunWithOptions(core.RunOptions{Ctx: ctx})
	return err
}

func runBaseJob(c *Cell, opt Options) error {
	w := c.Workload
	a, err := core.New(simConfig(core.BaselineConfig(), w, opt), w.Graph, w.NewAlgorithm())
	if err != nil {
		return err
	}
	ctx, cancel := opt.jobContext()
	defer cancel()
	c.Base, err = a.RunWithOptions(core.RunOptions{Ctx: ctx})
	return err
}

func runGionJob(c *Cell, opt Options) error {
	w := c.Workload
	cfg := graphicionado.DefaultConfig()
	if opt.MaxCycles > 0 {
		cfg.MaxCycles = opt.MaxCycles
	}
	if w.MaxCycles > 0 {
		cfg.MaxCycles = w.MaxCycles
	}
	ctx, cancel := opt.jobContext()
	defer cancel()
	var err error
	c.Gion, err = graphicionado.RunCtx(ctx, cfg, w.Graph, w.NewAlgorithm())
	return err
}

// progress serializes per-job completion lines onto Options.Progress.
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	count int
	total int
}

func newProgress(w io.Writer, total int) *progress {
	if w == nil {
		return nil
	}
	return &progress{w: w, total: total}
}

func (p *progress) report(c *Cell, engine string, elapsed time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.count++
	status := "ok"
	if err := c.engineErr(engine); err != nil {
		status = "FAILED: " + err.Error()
	}
	fmt.Fprintf(p.w, "[%d/%d] %s/%s %s %s (%s)\n",
		p.count, p.total, c.Workload.Dataset.Abbrev, c.Workload.AlgName,
		engine, elapsed.Round(time.Millisecond), status)
}

// RunWorkload measures one workload on every engine, serially. It keeps
// the pre-runner contract: the first engine failure aborts with an error.
func RunWorkload(w *Workload, opt Options) (*Cell, error) {
	c := &Cell{Workload: w}
	for _, engine := range EngineNames {
		Job{Cell: c, Engine: engine}.Run(opt)
		if err := c.engineErr(engine); err != nil {
			return nil, fmt.Errorf("bench: %s/%s %s: %w", w.Dataset.Abbrev, w.AlgName, engine, err)
		}
	}
	return c, nil
}

// RunSweep measures every selected workload on every engine. Per-cell
// failures are recorded in the returned Sweep, not returned as an error;
// the error covers workload construction and manifest persistence.
func RunSweep(opt Options) (*Sweep, error) {
	ws, err := Workloads(opt)
	if err != nil {
		return nil, err
	}
	mw, err := newManifestWriter(ws, opt)
	if err != nil {
		return nil, err
	}
	sw := runSweep(ws, opt, mw)
	if mw != nil && mw.firstErr != nil {
		return nil, fmt.Errorf("bench: manifest %s: %w", mw.path, mw.firstErr)
	}
	return sw, nil
}

// runJob executes (or, under -resume, restores) one job, recording the
// outcome in the manifest.
func runJob(j Job, opt Options, mw *manifestWriter, prog *progress) {
	start := time.Now()
	if mw.restore(j.Cell, j.Engine) {
		prog.report(j.Cell, j.Engine, 0)
		return
	}
	j.Run(opt)
	if err := mw.record(j.Cell, j.Engine); err != nil {
		mw.mu.Lock()
		if mw.firstErr == nil {
			mw.firstErr = err
		}
		mw.mu.Unlock()
	}
	prog.report(j.Cell, j.Engine, time.Since(start))
}

// runSweep executes the two-phase job schedule over prepared workloads.
// mw may be nil (no manifest persistence).
func runSweep(ws []*Workload, opt Options, mw *manifestWriter) *Sweep {
	cells := make([]*Cell, len(ws))
	for i, w := range ws {
		cells[i] = &Cell{Workload: w}
	}
	prog := newProgress(opt.Progress, len(cells)*len(EngineNames))

	// Phase 1: host-timed software baseline, strictly serial.
	for _, c := range cells {
		runJob(Job{Cell: c, Engine: "ligra"}, opt, mw, prog)
	}

	// Phase 2: simulated engines on the bounded worker pool. Each job
	// writes a distinct field of its cell, so no further synchronization
	// is needed beyond the channel, the WaitGroup, and the manifest's own
	// mutex.
	jobs := make(chan Job)
	var wg sync.WaitGroup
	for i := 0; i < opt.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				runJob(j, opt, mw, prog)
			}
		}()
	}
	for _, c := range cells {
		for _, engine := range simEngines {
			jobs <- Job{Cell: c, Engine: engine}
		}
	}
	close(jobs)
	wg.Wait()

	return &Sweep{Cells: cells, Tier: opt.Tier}
}
