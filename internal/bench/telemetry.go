package bench

import (
	"fmt"
	"io"
	"os"

	"graphpulse/internal/atomicio"
	"graphpulse/internal/core"
	"graphpulse/internal/sim/telemetry"
)

// timelineSeries are the series the timeline experiment charts: queue
// occupancy, event throughput per interval, and DRAM bytes per interval —
// the time-resolved signals behind the paper's occupancy and bandwidth
// discussion (Sections IV-D, VI-B).
var timelineSeries = []string{"queue_occupancy", "events_processed", "dram_bytes"}

// runTimeline runs PR-Delta on the LJ-class workload with telemetry enabled
// and renders the sampled series as time charts. With Options.TelemetryPath
// set it also writes <path>.csv and <path>.trace.json (Chrome trace_event,
// loadable in chrome://tracing and Perfetto) — see EXPERIMENTS.md
// "Time-resolved figures".
func runTimeline(opt Options, _ *Sweep) error {
	w, err := ljWorkload(opt)
	if err != nil {
		return err
	}
	cfg := core.OptimizedConfig()
	if opt.MaxCycles > 0 {
		cfg.MaxCycles = opt.MaxCycles
	}
	cfg.Telemetry = telemetry.Default()
	a, err := core.New(cfg, w.Graph, w.NewAlgorithm())
	if err != nil {
		return err
	}
	res, err := a.Run()
	if err != nil {
		return err
	}
	rec := res.Telemetry
	fmt.Fprintf(opt.Out, "Timeline — %s on %s-class graph (%s tier): %d series × %d samples, %d-cycle interval\n",
		algorithmTitle[w.AlgName], w.Dataset.Abbrev, opt.Tier, len(rec.Series()), rec.SampleCount(), rec.Interval())

	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "series\tcomponent\tunit\tkind\tpeak\tlast")
	for _, s := range rec.Series() {
		var peak, last int64
		for _, p := range s.Samples {
			if p.Value > peak {
				peak = p.Value
			}
			last = p.Value
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d\n", s.Name, s.Component, s.Unit, s.Kind, peak, last)
	}
	tw.Flush()

	for _, name := range timelineSeries {
		s, ok := rec.Find(name)
		if !ok {
			return fmt.Errorf("bench: telemetry series %q missing", name)
		}
		seriesChart(opt.Out, fmt.Sprintf("\n%s over time (%s, per %d-cycle sample)", name, s.Unit, rec.Interval()),
			len(s.Samples), []string{name}, func(_, i int) float64 { return float64(s.Samples[i].Value) }, 72)
	}

	if opt.TelemetryPath != "" {
		csvPath, tracePath, err := writeTelemetryFiles(rec, opt.TelemetryPath, cfg.ClockHz)
		if err != nil {
			return err
		}
		fmt.Fprintf(opt.Out, "\ntelemetry written: %s, %s\n", csvPath, tracePath)
	}
	return nil
}

// writeTelemetryFiles exports a recorder as <prefix>.csv and
// <prefix>.trace.json. Each file is written atomically (temp file +
// rename); if the trace write fails, the already-renamed CSV is removed so
// the pair stays consistent.
func writeTelemetryFiles(rec *telemetry.Recorder, prefix string, clockHz float64) (csvPath, tracePath string, err error) {
	csvPath, tracePath = prefix+".csv", prefix+".trace.json"
	if err = atomicio.WriteFile(csvPath, func(w io.Writer) error { return rec.WriteCSV(w) }); err != nil {
		return "", "", err
	}
	if err = atomicio.WriteFile(tracePath, func(w io.Writer) error { return rec.WriteChromeTrace(w, clockHz) }); err != nil {
		os.Remove(csvPath)
		return "", "", err
	}
	return csvPath, tracePath, nil
}
