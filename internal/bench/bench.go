// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is addressable by the paper's
// artifact id (fig4, fig8, fig10–fig14, table1–table5, energy) plus
// repository-specific ablations (slicing, ablation).
//
// Results print as plain-text tables: the same rows/series the paper
// reports, produced from this repository's models. Absolute numbers differ
// from the paper (different substrate); the shapes — who wins, by roughly
// what factor, where the crossovers fall — are the reproduction target
// (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/baseline/ligra"
	"graphpulse/internal/core"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/graph/partition"
)

// Options configure an experiment run.
type Options struct {
	// Tier selects workload scale (gen.Tiny for CI, gen.Mini for real
	// benchmarking, gen.Full for paper-scale runs).
	Tier gen.Tier
	// Datasets filters Table IV workloads by abbreviation (nil = all).
	Datasets []string
	// Algorithms filters by short name: pr, ads, sssp, bfs, cc (nil = all).
	Algorithms []string
	// Out receives the rendered tables.
	Out io.Writer
	// MaxCycles overrides the simulation deadline (0 = config default).
	MaxCycles uint64
	// CSVPath, when set, receives the engine sweep as machine-readable CSV
	// (written once, after the sweep runs).
	CSVPath string
}

// AlgorithmNames lists the Figure 10 application order.
var AlgorithmNames = []string{"pr", "ads", "sssp", "bfs", "cc"}

// algorithmTitle maps short names to the paper's figure captions.
var algorithmTitle = map[string]string{
	"pr":   "PageRank-Delta",
	"ads":  "Adsorption",
	"sssp": "Single Source Shortest Path",
	"bfs":  "Breadth-first Search",
	"cc":   "Connected Components",
}

// Workload is one prepared dataset×algorithm cell.
type Workload struct {
	Dataset   gen.DatasetSpec
	AlgName   string
	Graph     *graph.CSR
	Root      graph.VertexID
	makeAlg   func() algorithms.Algorithm
	sliceInto int // >1 forces partitioned execution (TW)
}

// NewAlgorithm constructs a fresh algorithm instance for the cell (engines
// must not share instances across runs).
func (w *Workload) NewAlgorithm() algorithms.Algorithm { return w.makeAlg() }

// datasetFilter returns the selected Table IV specs.
func datasetFilter(names []string) ([]gen.DatasetSpec, error) {
	if len(names) == 0 {
		return gen.Datasets, nil
	}
	var out []gen.DatasetSpec
	for _, n := range names {
		d, err := gen.DatasetByAbbrev(strings.ToUpper(n))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func algFilter(names []string) ([]string, error) {
	if len(names) == 0 {
		return AlgorithmNames, nil
	}
	for _, n := range names {
		if algorithmTitle[n] == "" {
			return nil, fmt.Errorf("bench: unknown algorithm %q (want pr|ads|sssp|bfs|cc)", n)
		}
	}
	return names, nil
}

// bestRoot picks the max-out-degree vertex so rooted traversals are
// nontrivial on shuffled synthetic graphs.
func bestRoot(g *graph.CSR) graph.VertexID {
	best, deg := graph.VertexID(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > deg {
			best, deg = graph.VertexID(v), d
		}
	}
	return best
}

// Workloads prepares the dataset×algorithm matrix for opt. Graph
// generation is deterministic; Adsorption runs on the inbound-normalized
// copy (Section VI-A). The TW-class workload is marked for 3-slice
// partitioned execution, as in the paper.
func Workloads(opt Options) ([]*Workload, error) {
	specs, err := datasetFilter(opt.Datasets)
	if err != nil {
		return nil, err
	}
	algs, err := algFilter(opt.Algorithms)
	if err != nil {
		return nil, err
	}
	var out []*Workload
	for _, spec := range specs {
		g, err := spec.Generate(opt.Tier)
		if err != nil {
			return nil, err
		}
		if spec.Abbrev == "TW" {
			// The TW-class workload runs partitioned (3 slices, as in the
			// paper). Real datasets have community structure that keeps the
			// slice cut low; R-MAT stand-ins do not, so apply the BFS
			// locality relabeling first — every engine sees the same graph,
			// so the comparison stays fair.
			perm := partition.DegreeOrderPermutation(g)
			if g, err = g.Relabel(perm); err != nil {
				return nil, err
			}
		}
		var normalized *graph.CSR
		root := bestRoot(g)
		for _, a := range algs {
			w := &Workload{Dataset: spec, AlgName: a, Graph: g, Root: root}
			if spec.Abbrev == "TW" {
				w.sliceInto = 3
			}
			switch a {
			case "pr":
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewPageRankDelta() }
			case "ads":
				if normalized == nil {
					normalized = g.NormalizeInbound()
				}
				w.Graph = normalized
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewAdsorption() }
			case "sssp":
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewSSSP(root) }
			case "bfs":
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewBFS(root) }
			case "cc":
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewConnectedComponents() }
			}
			out = append(out, w)
		}
	}
	return out, nil
}

// Cell is the measured result of one workload across all engines.
type Cell struct {
	Workload *Workload

	LigraSeconds float64
	// LigraModelSeconds is the analytic 12-core-Xeon estimate
	// (ligra.ModelSeconds with ligra.PaperXeon), which removes
	// host-machine variance from the speedup columns.
	LigraModelSeconds float64
	LigraIters        int

	Opt  *core.Result
	Base *core.Result
	Gion *graphicionado.Result
}

// Speedups relative to the Ligra wall time on this host.
func (c *Cell) OptSpeedup() float64  { return c.LigraSeconds / c.Opt.Seconds }
func (c *Cell) BaseSpeedup() float64 { return c.LigraSeconds / c.Base.Seconds }
func (c *Cell) GionSpeedup() float64 { return c.LigraSeconds / c.Gion.Seconds }

// Speedups relative to the modeled 12-core Xeon (host-independent).
func (c *Cell) OptModelSpeedup() float64  { return c.LigraModelSeconds / c.Opt.Seconds }
func (c *Cell) BaseModelSpeedup() float64 { return c.LigraModelSeconds / c.Base.Seconds }
func (c *Cell) GionModelSpeedup() float64 { return c.LigraModelSeconds / c.Gion.Seconds }

// Sweep holds the full engine×workload matrix shared by Figures 10–14 and
// the energy experiment.
type Sweep struct {
	Cells []*Cell
	Tier  gen.Tier
}

// RunWorkload measures one workload on every engine.
func RunWorkload(w *Workload, opt Options) (*Cell, error) {
	cell := &Cell{Workload: w}

	// Software baseline: wall time on the host.
	start := time.Now()
	lig := ligra.New(ligra.DefaultConfig(), w.Graph).Run(w.NewAlgorithm())
	cell.LigraSeconds = time.Since(start).Seconds()
	cell.LigraModelSeconds = ligra.ModelSeconds(lig, ligra.PaperXeon())
	cell.LigraIters = lig.Iterations

	mkCfg := func(cfg core.Config) core.Config {
		if opt.MaxCycles > 0 {
			cfg.MaxCycles = opt.MaxCycles
		}
		if w.sliceInto > 1 {
			cfg.QueueCapacity = (w.Graph.NumVertices() + w.sliceInto - 1) / w.sliceInto
		}
		return cfg
	}
	var err error
	a, err := core.New(mkCfg(core.OptimizedConfig()), w.Graph, w.NewAlgorithm())
	if err != nil {
		return nil, err
	}
	if cell.Opt, err = a.Run(); err != nil {
		return nil, fmt.Errorf("bench: %s/%s opt: %w", w.Dataset.Abbrev, w.AlgName, err)
	}
	b, err := core.New(mkCfg(core.BaselineConfig()), w.Graph, w.NewAlgorithm())
	if err != nil {
		return nil, err
	}
	if cell.Base, err = b.Run(); err != nil {
		return nil, fmt.Errorf("bench: %s/%s base: %w", w.Dataset.Abbrev, w.AlgName, err)
	}
	gcfg := graphicionado.DefaultConfig()
	if opt.MaxCycles > 0 {
		gcfg.MaxCycles = opt.MaxCycles
	}
	if cell.Gion, err = graphicionado.Run(gcfg, w.Graph, w.NewAlgorithm()); err != nil {
		return nil, fmt.Errorf("bench: %s/%s graphicionado: %w", w.Dataset.Abbrev, w.AlgName, err)
	}
	return cell, nil
}

// RunSweep measures every selected workload on every engine.
func RunSweep(opt Options) (*Sweep, error) {
	ws, err := Workloads(opt)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{Tier: opt.Tier}
	for _, w := range ws {
		cell, err := RunWorkload(w, opt)
		if err != nil {
			return nil, err
		}
		sw.Cells = append(sw.Cells, cell)
	}
	return sw, nil
}

// geomean returns the geometric mean of positive values (0 if none).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// newTable returns a tabwriter over w.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// sortedKeys returns map keys sorted for stable rendering.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
