// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is addressable by the paper's
// artifact id (fig4, fig8, fig10–fig14, table1–table5, energy) plus
// repository-specific ablations (slicing, ablation).
//
// Results print as plain-text tables: the same rows/series the paper
// reports, produced from this repository's models. Absolute numbers differ
// from the paper (different substrate); the shapes — who wins, by roughly
// what factor, where the crossovers fall — are the reproduction target
// (see EXPERIMENTS.md).
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/core"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/graph/partition"
)

// Options configure an experiment run.
type Options struct {
	// Tier selects workload scale (gen.Tiny for CI, gen.Mini for real
	// benchmarking, gen.Full for paper-scale runs).
	Tier gen.Tier
	// Datasets filters Table IV workloads by abbreviation (nil = all).
	Datasets []string
	// Algorithms filters by short name: pr, ads, sssp, bfs, cc (nil = all).
	Algorithms []string
	// Out receives the rendered tables.
	Out io.Writer
	// MaxCycles overrides the simulation deadline (0 = config default).
	MaxCycles uint64
	// CSVPath, when set, receives the engine sweep as machine-readable CSV
	// (written once, after the sweep runs).
	CSVPath string
	// Parallel bounds the worker pool running the simulated-engine jobs
	// (0 = GOMAXPROCS). Host-timed Ligra jobs always run in a dedicated
	// serial phase regardless — they measure wall time on all host cores,
	// so concurrency would corrupt Figure 10's "host" columns. Cycle-level
	// results are identical for every Parallel value.
	Parallel int
	// Progress, when non-nil, receives one line per completed job with
	// elapsed wall time. Line order is completion order, so it is only
	// deterministic at Parallel=1; keep it off a stream you diff.
	Progress io.Writer
	// TelemetryPath, when set, makes the timeline experiment export its
	// sampled series as <path>.csv and <path>.trace.json (Chrome
	// trace_event JSON; see METRICS.md).
	TelemetryPath string
	// Timeout bounds the wall-clock time of each simulated-engine job
	// (0 = unbounded). A job that exceeds it records a structured
	// sim.ErrCanceled failure in its cell — the sweep keeps going. The
	// host-timed Ligra job is not covered: it is a tight measurement loop
	// with no cancellation points, and interrupting it would corrupt the
	// wall-time columns anyway.
	Timeout time.Duration
	// ManifestPath, when set, maintains a JSON run manifest recording every
	// completed (workload × engine) job and its measurements, rewritten
	// atomically after each job. A sweep killed mid-run loses at most the
	// jobs in flight.
	Manifest string
	// Resume, with Manifest set, restores completed jobs from an existing
	// manifest instead of re-running them (recorded failures are restored
	// too, keeping the output identical to the interrupted run's plan;
	// delete the manifest to re-measure). The manifest must match the
	// sweep's tier/datasets/algorithms/deadline signature.
	Resume bool
	// FaultSpec configures the fault-injection experiment ("faults"), e.g.
	// "drop=1e-4,seed=7" — see fault.ParseSpec. Empty runs that
	// experiment's built-in rate sweep.
	FaultSpec string
	// Engines selects which registry engines the scaling experiment times
	// (default: solve and psolve). Names are validated against the engine
	// registry (internal/engines), so the accepted vocabulary — and the
	// error listing it — never goes stale.
	Engines []string

	// fixedLigraSeconds, when >0, replaces the measured host wall time so
	// tests can assert byte-identical rendered output across runs.
	fixedLigraSeconds float64
}

// jobContext returns the per-job cancellation context for simulated-engine
// jobs (Background when no Timeout is set).
func (o Options) jobContext() (context.Context, context.CancelFunc) {
	if o.Timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), o.Timeout)
}

// workers resolves the simulated-phase pool size.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// AlgorithmNames lists the Figure 10 application order.
var AlgorithmNames = []string{"pr", "ads", "sssp", "bfs", "cc"}

// algorithmTitle maps short names to the paper's figure captions.
var algorithmTitle = map[string]string{
	"pr":   "PageRank-Delta",
	"ads":  "Adsorption",
	"sssp": "Single Source Shortest Path",
	"bfs":  "Breadth-first Search",
	"cc":   "Connected Components",
}

// Workload is one prepared dataset×algorithm cell. Its Graph (and Root)
// come from the shared gen.Default cache, so the struct must be treated as
// immutable once built — concurrent jobs read it without synchronization.
type Workload struct {
	Dataset gen.DatasetSpec
	AlgName string
	Graph   *graph.CSR
	Root    graph.VertexID
	// MaxCycles, when >0, overrides the simulation deadline for this cell
	// only (takes precedence over Options.MaxCycles). Useful for bounding
	// a single known-slow cell — or, in tests, for forcing sim.ErrDeadline
	// in one cell to exercise failure isolation.
	MaxCycles uint64
	makeAlg   func() algorithms.Algorithm
	sliceInto int // >1 forces partitioned execution (TW)
}

// NewAlgorithm constructs a fresh algorithm instance for the cell (engines
// must not share instances across runs).
func (w *Workload) NewAlgorithm() algorithms.Algorithm { return w.makeAlg() }

// datasetFilter returns the selected Table IV specs.
func datasetFilter(names []string) ([]gen.DatasetSpec, error) {
	if len(names) == 0 {
		return gen.Datasets, nil
	}
	var out []gen.DatasetSpec
	for _, n := range names {
		d, err := gen.DatasetByAbbrev(strings.ToUpper(n))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func algFilter(names []string) ([]string, error) {
	if len(names) == 0 {
		return AlgorithmNames, nil
	}
	for _, n := range names {
		if algorithmTitle[n] == "" {
			return nil, fmt.Errorf("bench: unknown algorithm %q (want pr|ads|sssp|bfs|cc)", n)
		}
	}
	return names, nil
}

// bestRoot picks the max-out-degree vertex so rooted traversals are
// nontrivial on shuffled synthetic graphs.
func bestRoot(g *graph.CSR) graph.VertexID {
	best, deg := graph.VertexID(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > deg {
			best, deg = graph.VertexID(v), d
		}
	}
	return best
}

// rootCache memoizes bestRoot per (dataset, tier) so repeated Workloads
// calls (one per experiment that prepares its own workload) don't re-scan
// every vertex degree. Safe because the cached graph for a key is fixed.
var rootCache sync.Map // map[rootKey]graph.VertexID

type rootKey struct {
	abbrev string
	tier   gen.Tier
}

func cachedRoot(spec gen.DatasetSpec, t gen.Tier, g *graph.CSR) graph.VertexID {
	k := rootKey{spec.Abbrev, t}
	if v, ok := rootCache.Load(k); ok {
		return v.(graph.VertexID)
	}
	r := bestRoot(g)
	rootCache.Store(k, r)
	return r
}

// benchGraph returns the bench-ready graph for (spec, tier) from the shared
// cache, along with its traversal root. For the TW-class workload that is
// the relabeled copy used for sliced execution; for everything else it is
// the base stand-in.
func benchGraph(spec gen.DatasetSpec, t gen.Tier) (*graph.CSR, graph.VertexID, error) {
	g, err := gen.Default.Get(spec, t, "bench", func() (*graph.CSR, error) {
		g, err := gen.Default.Generate(spec, t)
		if err != nil {
			return nil, err
		}
		if spec.Abbrev == "TW" {
			// The TW-class workload runs partitioned (3 slices, as in the
			// paper). Real datasets have community structure that keeps the
			// slice cut low; R-MAT stand-ins do not, so apply the BFS
			// locality relabeling first — every engine sees the same graph,
			// so the comparison stays fair.
			perm := partition.DegreeOrderPermutation(g)
			return g.Relabel(perm)
		}
		return g, nil
	})
	if err != nil {
		return nil, 0, err
	}
	return g, cachedRoot(spec, t, g), nil
}

// normalizedGraph returns the inbound-normalized copy Adsorption runs on
// (Section VI-A), derived once from the bench graph and cached.
func normalizedGraph(spec gen.DatasetSpec, t gen.Tier) (*graph.CSR, error) {
	return gen.Default.Get(spec, t, "bench-inbound", func() (*graph.CSR, error) {
		g, _, err := benchGraph(spec, t)
		if err != nil {
			return nil, err
		}
		return g.NormalizeInbound(), nil
	})
}

// Workloads prepares the dataset×algorithm matrix for opt. Graph
// generation is deterministic and memoized in gen.Default, so each
// Table IV graph (and its inbound-normalized Adsorption copy) is built
// once per (spec, tier) and shared read-only across all cells. The
// TW-class workload is marked for 3-slice partitioned execution, as in
// the paper.
func Workloads(opt Options) ([]*Workload, error) {
	specs, err := datasetFilter(opt.Datasets)
	if err != nil {
		return nil, err
	}
	algs, err := algFilter(opt.Algorithms)
	if err != nil {
		return nil, err
	}
	var out []*Workload
	for _, spec := range specs {
		g, root, err := benchGraph(spec, opt.Tier)
		if err != nil {
			return nil, err
		}
		for _, a := range algs {
			w := &Workload{Dataset: spec, AlgName: a, Graph: g, Root: root}
			if spec.Abbrev == "TW" {
				w.sliceInto = 3
			}
			switch a {
			case "pr":
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewPageRankDelta() }
			case "ads":
				if w.Graph, err = normalizedGraph(spec, opt.Tier); err != nil {
					return nil, err
				}
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewAdsorption() }
			case "sssp":
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewSSSP(root) }
			case "bfs":
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewBFS(root) }
			case "cc":
				w.makeAlg = func() algorithms.Algorithm { return algorithms.NewConnectedComponents() }
			}
			out = append(out, w)
		}
	}
	return out, nil
}

// Cell is the measured result of one workload across all engines. Each
// engine's fragment is filled by its own Job; the per-engine error fields
// record structured failures (sim.ErrDeadline, recovered panics) instead
// of aborting the sweep, so one bad cell cannot take down a long run.
type Cell struct {
	Workload *Workload

	LigraSeconds float64
	// LigraModelSeconds is the analytic 12-core-Xeon estimate
	// (ligra.ModelSeconds with ligra.PaperXeon), which removes
	// host-machine variance from the speedup columns.
	LigraModelSeconds float64
	LigraIters        int

	Opt  *core.Result
	Base *core.Result
	Gion *graphicionado.Result

	// Per-engine job failures (nil = measured cleanly). These are distinct
	// struct fields, not a map, so concurrent jobs for the same cell can
	// record outcomes without synchronization.
	LigraErr error
	OptErr   error
	BaseErr  error
	GionErr  error
}

// EngineNames lists the per-cell measurement jobs in canonical phase order:
// the host-timed software baseline first (serial phase), then the three
// simulated engines (parallel phase).
var EngineNames = []string{"ligra", "opt", "base", "gion"}

// engineErr returns the recorded failure for one engine job.
func (c *Cell) engineErr(engine string) error {
	switch engine {
	case "ligra":
		return c.LigraErr
	case "opt":
		return c.OptErr
	case "base":
		return c.BaseErr
	case "gion":
		return c.GionErr
	}
	return fmt.Errorf("bench: unknown engine %q", engine)
}

// Failed reports whether any engine job for this cell failed. A failed
// cell renders as "FAILED: <reason>" in the tables and is excluded from
// geomeans; its result pointers for the failed engines are nil.
func (c *Cell) Failed() bool {
	for _, e := range EngineNames {
		if c.engineErr(e) != nil {
			return true
		}
	}
	return false
}

// FailureReason describes the first failed engine job ("" if none).
func (c *Cell) FailureReason() string {
	for _, e := range EngineNames {
		if err := c.engineErr(e); err != nil {
			return fmt.Sprintf("%s: %v", e, err)
		}
	}
	return ""
}

// Speedups relative to the Ligra wall time on this host.
func (c *Cell) OptSpeedup() float64  { return c.LigraSeconds / c.Opt.Seconds }
func (c *Cell) BaseSpeedup() float64 { return c.LigraSeconds / c.Base.Seconds }
func (c *Cell) GionSpeedup() float64 { return c.LigraSeconds / c.Gion.Seconds }

// Speedups relative to the modeled 12-core Xeon (host-independent).
func (c *Cell) OptModelSpeedup() float64  { return c.LigraModelSeconds / c.Opt.Seconds }
func (c *Cell) BaseModelSpeedup() float64 { return c.LigraModelSeconds / c.Base.Seconds }
func (c *Cell) GionModelSpeedup() float64 { return c.LigraModelSeconds / c.Gion.Seconds }

// Sweep holds the full engine×workload matrix shared by Figures 10–14 and
// the energy experiment.
type Sweep struct {
	Cells []*Cell
	Tier  gen.Tier
}

// FailedCells counts cells with at least one failed engine job.
func (s *Sweep) FailedCells() int {
	n := 0
	for _, c := range s.Cells {
		if c.Failed() {
			n++
		}
	}
	return n
}

// geomean returns the geometric mean of positive values (0 if none).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// newTable returns a tabwriter over w.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// sortedKeys returns map keys sorted for stable rendering.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
