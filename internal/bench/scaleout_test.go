package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestScaleoutExperiment boots the real router/worker fleet at each point
// and checks the rendered curve has both the measured and the simulated
// table.
func TestScaleoutExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-out experiment boots HTTP fleets; not short")
	}
	var buf bytes.Buffer
	if err := RunExperiments([]string{"scaleout"}, smallOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Scale-out", "workers", "query qps", "chips", "inter-chip events", "1.00x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scaleout output missing %q:\n%s", want, out)
		}
	}
	// Every software point must have completed without hard failures.
	if strings.Contains(out, "FAILED") {
		t.Errorf("scaleout reported a failure:\n%s", out)
	}
}
