package bench

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/sim"
)

// sweepOptions is the shared fixture: two datasets × two algorithms with
// the host wall time pinned so rendered output is fully deterministic.
func sweepOptions() Options {
	return Options{
		Tier:              gen.Tiny,
		Datasets:          []string{"WG", "LJ"},
		Algorithms:        []string{"pr", "bfs"},
		fixedLigraSeconds: 1,
	}
}

// renderSweepTables renders every sweep-consuming experiment into one
// buffer (host timing pinned, so the output is deterministic).
func renderSweepTables(t *testing.T, opt Options, sw *Sweep) string {
	t.Helper()
	var buf bytes.Buffer
	opt.Out = &buf
	for _, id := range []string{"fig10", "fig11", "fig12", "fig13", "fig14", "energy"} {
		e, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(opt, sw); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	return buf.String()
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	serial := sweepOptions()
	serial.Parallel = 1
	par := sweepOptions()
	par.Parallel = runtime.GOMAXPROCS(0)
	if par.Parallel < 2 {
		par.Parallel = 4 // still exercise the pool on a 1-CPU host
	}

	sw1, err := RunSweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	swN, err := RunSweep(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw1.Cells) != len(swN.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(sw1.Cells), len(swN.Cells))
	}
	for i, a := range sw1.Cells {
		b := swN.Cells[i]
		if a.Workload.Dataset.Abbrev != b.Workload.Dataset.Abbrev || a.Workload.AlgName != b.Workload.AlgName {
			t.Fatalf("cell %d order differs: %s/%s vs %s/%s", i,
				a.Workload.Dataset.Abbrev, a.Workload.AlgName,
				b.Workload.Dataset.Abbrev, b.Workload.AlgName)
		}
		if a.Failed() || b.Failed() {
			t.Fatalf("cell %d failed: %q / %q", i, a.FailureReason(), b.FailureReason())
		}
		if a.Opt.Cycles != b.Opt.Cycles || a.Base.Cycles != b.Base.Cycles || a.Gion.Cycles != b.Gion.Cycles {
			t.Errorf("cell %d cycles differ: opt %d/%d base %d/%d gion %d/%d", i,
				a.Opt.Cycles, b.Opt.Cycles, a.Base.Cycles, b.Base.Cycles, a.Gion.Cycles, b.Gion.Cycles)
		}
		if a.Opt.EventsProcessed != b.Opt.EventsProcessed || a.Opt.EventsCoalesced != b.Opt.EventsCoalesced {
			t.Errorf("cell %d event counts differ: %d/%d processed, %d/%d coalesced", i,
				a.Opt.EventsProcessed, b.Opt.EventsProcessed,
				a.Opt.EventsCoalesced, b.Opt.EventsCoalesced)
		}
		if a.LigraModelSeconds != b.LigraModelSeconds {
			t.Errorf("cell %d model seconds differ: %g vs %g", i, a.LigraModelSeconds, b.LigraModelSeconds)
		}
	}

	// The rendered tables — the sweep's user-facing artifact — must be
	// byte-identical.
	out1 := renderSweepTables(t, serial, sw1)
	outN := renderSweepTables(t, par, swN)
	if out1 != outN {
		t.Errorf("rendered tables differ between parallel=1 and parallel=%d:\n--- serial ---\n%s\n--- parallel ---\n%s",
			par.Parallel, out1, outN)
	}

	// CSV export must agree too.
	var csv1, csvN bytes.Buffer
	if err := sw1.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := swN.WriteCSV(&csvN); err != nil {
		t.Fatal(err)
	}
	if csv1.String() != csvN.String() {
		t.Error("CSV output differs between parallel=1 and parallel=N")
	}
}

func TestSweepFailureIsolation(t *testing.T) {
	opt := sweepOptions()
	ws, err := Workloads(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Choke one cell's deadline so every simulated engine hits
	// sim.ErrDeadline; the rest of the sweep must be unaffected.
	const doomed = 1
	ws[doomed].MaxCycles = 10

	sw := runSweep(ws, opt, nil)
	if len(sw.Cells) != len(ws) {
		t.Fatalf("sweep has %d cells, want %d", len(sw.Cells), len(ws))
	}
	bad := sw.Cells[doomed]
	if !bad.Failed() {
		t.Fatal("choked cell did not fail")
	}
	if !errors.Is(bad.OptErr, sim.ErrDeadline) {
		t.Errorf("OptErr = %v, want sim.ErrDeadline", bad.OptErr)
	}
	if !strings.Contains(bad.FailureReason(), "deadline") {
		t.Errorf("FailureReason = %q, want mention of deadline", bad.FailureReason())
	}
	for i, c := range sw.Cells {
		if i == doomed {
			continue
		}
		if c.Failed() {
			t.Errorf("cell %d failed collaterally: %s", i, c.FailureReason())
		}
		if c.Opt == nil || c.Base == nil || c.Gion == nil {
			t.Errorf("cell %d missing engine results", i)
		}
	}

	// Rendering completes, marks the failure, and keeps the good rows.
	out := renderSweepTables(t, opt, sw)
	if !strings.Contains(out, "FAILED:") {
		t.Error("rendered tables do not mark the failed cell")
	}
	if !strings.Contains(out, "geomean") {
		t.Error("rendered tables lost their summary rows")
	}

	// CSV keeps one row per cell with the failure in the status column.
	var buf bytes.Buffer
	if err := sw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(ws)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(ws)+1)
	}
	if !strings.Contains(lines[doomed+1], "FAILED") {
		t.Errorf("CSV row for failed cell = %q, want FAILED status", lines[doomed+1])
	}
}

func TestSweepPanicIsolation(t *testing.T) {
	opt := sweepOptions()
	ws, err := Workloads(opt)
	if err != nil {
		t.Fatal(err)
	}
	ws[0].makeAlg = func() algorithms.Algorithm { panic("boom") }

	sw := runSweep(ws, opt, nil)
	bad := sw.Cells[0]
	if !bad.Failed() {
		t.Fatal("panicking cell did not fail")
	}
	// The panic fires in every engine job, including the serial Ligra
	// phase — all must be recovered into structured failures.
	for _, engine := range EngineNames {
		err := bad.engineErr(engine)
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Errorf("%s error = %v, want recovered panic", engine, err)
		}
	}
	for i, c := range sw.Cells[1:] {
		if c.Failed() {
			t.Errorf("cell %d failed collaterally: %s", i+1, c.FailureReason())
		}
	}
}

func TestRunExperimentsSurvivesFailedCell(t *testing.T) {
	// End-to-end: a sweep-consuming experiment renders (rather than
	// aborts) when a cell dies. MaxCycles applies sweep-wide here, so
	// every cell fails — the run must still complete every section.
	opt := sweepOptions()
	opt.Datasets = []string{"WG"}
	opt.Algorithms = []string{"bfs"}
	opt.MaxCycles = 10
	var buf bytes.Buffer
	opt.Out = &buf
	if err := RunExperiments([]string{"fig10", "fig11"}, opt); err != nil {
		t.Fatalf("RunExperiments aborted on failed cell: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"1 of 1 cells FAILED", "==== fig10", "==== fig11", "FAILED:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestProgressLines(t *testing.T) {
	opt := sweepOptions()
	opt.Datasets = []string{"WG"}
	opt.Algorithms = []string{"bfs"}
	opt.Parallel = 1
	var prog bytes.Buffer
	opt.Progress = &prog
	sw, err := RunSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := len(sw.Cells) * len(EngineNames)
	lines := strings.Split(strings.TrimSpace(prog.String()), "\n")
	if len(lines) != want {
		t.Fatalf("progress printed %d lines, want %d:\n%s", len(lines), want, prog.String())
	}
	if !strings.Contains(lines[0], "[1/4] WG/bfs ligra") {
		t.Errorf("first progress line = %q, want serial ligra job first", lines[0])
	}
	for _, l := range lines {
		if !strings.Contains(l, "ok") {
			t.Errorf("progress line %q missing status", l)
		}
	}
}

func TestWriteSweepCSVBadPath(t *testing.T) {
	dir := t.TempDir()
	// The target is a directory: Create fails and the error names the csv.
	if err := writeSweepCSV(dir, &Sweep{Tier: gen.Tiny}); err == nil {
		t.Fatal("writing CSV over a directory succeeded")
	} else if !strings.Contains(err.Error(), "csv") {
		t.Errorf("error %v does not mention csv", err)
	}
}

// TestSweepJobTimeout: a per-job wall-clock budget must fail the job with a
// cancellation error and leave the rest of the sweep intact.
func TestSweepJobTimeout(t *testing.T) {
	opt := sweepOptions()
	opt.Timeout = time.Nanosecond // every simulated job blows the budget
	sw, err := RunSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sw.Cells {
		for _, eng := range []string{"opt", "base", "gion"} {
			err := c.engineErr(eng)
			if err == nil {
				t.Fatalf("%s/%s %s survived a 1ns budget", c.Workload.Dataset.Abbrev, c.Workload.AlgName, eng)
			}
			if !errors.Is(err, sim.ErrCanceled) {
				t.Errorf("%s error = %v, want wrapping sim.ErrCanceled", eng, err)
			}
		}
	}
}
