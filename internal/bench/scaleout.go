package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"graphpulse/internal/core"
	"graphpulse/internal/dserve"
	"graphpulse/internal/loadgen"
	"graphpulse/internal/serve"
)

// scaleoutWorkerCounts is the software fleet sizes the scale-out curve
// visits; scaleoutPointDur is the measured load window per point. Short
// windows keep the whole experiment inside a few seconds — the target is
// the curve's shape, not absolute throughput.
var scaleoutWorkerCounts = []int{1, 2, 3}

const scaleoutPointDur = 800 * time.Millisecond

// runScaleout measures the distributed serving tier's software scaling
// curve — queries/s through a dserve router as the worker fleet grows,
// every worker a full replica of one graph — next to the simulated
// multi-chip scaling curve of the core cluster model (Section IV-F option
// b). The two answer the same question at different layers: how much
// does adding nodes help when the dataset itself is not partitioned?
// Like the "scaling" experiment these are host wall-clock numbers; the
// reproduction target is the shape. EXPERIMENTS.md ("Serving scale-out")
// discusses where the software curve tracks the simulated one and where
// the analogy breaks.
func runScaleout(opt Options, _ *Sweep) error {
	fmt.Fprintf(opt.Out, "Scale-out — measured router/worker throughput vs simulated multi-chip speedup (%s tier)\n", opt.Tier)
	fmt.Fprintln(opt.Out, "software: WG-class graph fully replicated on every worker; reads rotate across replicas")

	spec, err := serve.ParseGraphArg("wg=WG:" + opt.Tier.String())
	if err != nil {
		return err
	}
	tw := newTable(opt.Out)
	fmt.Fprintln(tw, "workers\tquery qps\tspeedup\terrors")
	var baseQPS float64
	for _, n := range scaleoutWorkerCounts {
		sum, err := scaleoutPoint(spec, n)
		if err != nil {
			return fmt.Errorf("bench: scaleout %d workers: %w", n, err)
		}
		qps := sum.AchievedQPS("query")
		if n == scaleoutWorkerCounts[0] {
			baseQPS = qps
		}
		speedup := 0.0
		if baseQPS > 0 {
			speedup = qps / baseQPS
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.2fx\t%d\n", n, qps, speedup, sum.TotalErrors())
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Simulated counterpart: the cycle-level cluster model on the same
	// workload class, chips streaming events over the interconnect.
	o := opt
	o.Datasets = []string{"WG"}
	o.Algorithms = []string{"pr"}
	ws, err := Workloads(o)
	if err != nil {
		return err
	}
	w := ws[0]
	single, err := runOpt(w, opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, "simulated: core cluster model, same workload class, cycle-level")
	tw = newTable(opt.Out)
	fmt.Fprintln(tw, "chips\tcycles\tspeedup\tinter-chip events")
	fmt.Fprintf(tw, "1\t%d\t1.00x\t0\n", single.Cycles)
	for _, chips := range []int{2, 4} {
		ccfg := core.DefaultClusterConfig()
		ccfg.Chips = chips
		if opt.MaxCycles > 0 {
			ccfg.Chip.MaxCycles = opt.MaxCycles
		}
		cl, err := core.NewCluster(ccfg, w.Graph, w.NewAlgorithm())
		if err != nil {
			return err
		}
		res, err := cl.Run()
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%.2fx\t%d\n",
			chips, res.Cycles, float64(single.Cycles)/float64(res.Cycles), res.InterChipEvents)
	}
	return tw.Flush()
}

// scaleoutPoint boots n in-process workers and a router fronting them at
// full replication, prewarms every worker's cache, drives a closed-loop
// query burst through the router, and tears the fleet down.
func scaleoutPoint(spec serve.GraphSpec, n int) (loadgen.Summary, error) {
	var none loadgen.Summary
	type node struct {
		srv *serve.Server
		url string
	}
	var nodes []node
	shutdownAll := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, nd := range nodes {
			nd.srv.Shutdown(ctx)
		}
	}
	for i := 0; i < n; i++ {
		srv, err := serve.New(serve.Config{Graphs: []serve.GraphSpec{spec}, QueueDepth: 256})
		if err != nil {
			shutdownAll()
			return none, err
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			srv.Shutdown(context.Background())
			shutdownAll()
			return none, err
		}
		nodes = append(nodes, node{srv: srv, url: "http://" + addr.String()})
	}
	defer shutdownAll()

	seeds := make([]string, len(nodes))
	for i, nd := range nodes {
		seeds[i] = nd.url
	}
	rt, err := dserve.NewRouter(dserve.RouterConfig{
		Workers:       seeds,
		Replication:   n,
		ProbeInterval: 200 * time.Millisecond,
		RetryBudget:   1,
	})
	if err != nil {
		return none, err
	}
	raddr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		return none, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	}()

	// Prewarm each worker directly so every point measures cache-served
	// routing throughput, not n cold solves.
	for _, nd := range nodes {
		if err := scaleoutPrewarm(nd.url, spec.Name); err != nil {
			return none, err
		}
	}

	stats, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     "http://" + raddr.String(),
		Graph:       spec.Name,
		Algorithm:   "pr",
		Concurrency: 8,
		Duration:    scaleoutPointDur,
	})
	if err != nil {
		return none, err
	}
	return stats.Summarize(), nil
}

// scaleoutPrewarm issues the same query loadgen sends, directly to one
// worker, so its cold solve happens outside the measured window.
func scaleoutPrewarm(workerURL, graph string) error {
	root := uint32(0)
	body, err := json.Marshal(serve.QueryRequest{
		Graph: graph, Algorithm: "pr", Root: &root, Top: 1,
	})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Post(workerURL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prewarm %s: status %d", workerURL, resp.StatusCode)
	}
	return nil
}
