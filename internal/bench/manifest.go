package bench

// The run manifest makes long sweeps resumable. With Options.Manifest set,
// the runner records every completed (workload × engine) job — its
// measurement fragment or its structured failure — and atomically rewrites
// the manifest JSON after each job, so a sweep killed mid-run (OOM, node
// preemption, ^C) loses at most the jobs that were in flight. Re-running
// with Options.Resume restores the recorded jobs instead of re-measuring
// them; because every simulated engine is deterministic, the assembled
// Sweep — and the CSV and tables rendered from it — is byte-identical to an
// uninterrupted run.
//
// Two deliberate scope limits:
//
//   - Bulky per-vertex payloads (Result.Values, RoundLog, Trace, Telemetry)
//     are not persisted: no sweep renderer consumes them, some contain ±Inf
//     (which JSON cannot represent), and rewriting them after every job
//     would make the manifest O(vertices) instead of O(cells). Resumed
//     cells carry nil for these fields.
//   - Recorded failures are restored as failures (errors.New of the
//     original message, so errors.Is identity is lost). This keeps the
//     resumed output identical to what the interrupted run would have
//     produced; delete the manifest to re-measure failed cells.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"reflect"
	"sync"
	"time"

	"graphpulse/internal/atomicio"
	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/core"
)

// ManifestVersion identifies the on-disk manifest format.
const ManifestVersion = 1

// Manifest is the persisted state of one sweep run.
type Manifest struct {
	Version int
	// Signature fields: a resumed run must request the same sweep.
	Tier       string
	Datasets   []string // cell keys in canonical workload order
	Algorithms []string
	MaxCycles  uint64
	TimeoutNS  int64

	// Cells maps "ABBREV/alg" to the recorded per-engine outcomes.
	Cells map[string]*ManifestCell
}

// ManifestCell records one workload's completed engine jobs.
type ManifestCell struct {
	// Done marks engines whose job ran to completion (successfully or with
	// a recorded failure).
	Done map[string]bool
	// Errs holds the failure message per failed engine.
	Errs map[string]string `json:",omitempty"`

	LigraSeconds      float64 `json:",omitempty"`
	LigraModelSeconds float64 `json:",omitempty"`
	LigraIters        int     `json:",omitempty"`

	Opt  *core.Result          `json:",omitempty"`
	Base *core.Result          `json:",omitempty"`
	Gion *graphicionado.Result `json:",omitempty"`
}

// cellKey addresses a workload inside the manifest.
func cellKey(w *Workload) string { return w.Dataset.Abbrev + "/" + w.AlgName }

// stripResult drops the non-persisted payloads from a copy of r (see the
// package comment above for why).
func stripResult(r *core.Result) *core.Result {
	if r == nil {
		return nil
	}
	c := *r
	c.Values, c.RoundLog, c.Trace, c.Telemetry = nil, nil, nil, nil
	return &c
}

func stripGionResult(r *graphicionado.Result) *graphicionado.Result {
	if r == nil {
		return nil
	}
	c := *r
	c.Values, c.Telemetry = nil, nil
	return &c
}

// manifestSignature derives the signature of the requested sweep.
func manifestSignature(ws []*Workload, opt Options) *Manifest {
	m := &Manifest{
		Version:   ManifestVersion,
		Tier:      opt.Tier.String(),
		MaxCycles: opt.MaxCycles,
		TimeoutNS: int64(opt.Timeout),
		Cells:     map[string]*ManifestCell{},
	}
	seenDS := map[string]bool{}
	seenAlg := map[string]bool{}
	for _, w := range ws {
		if !seenDS[w.Dataset.Abbrev] {
			seenDS[w.Dataset.Abbrev] = true
			m.Datasets = append(m.Datasets, w.Dataset.Abbrev)
		}
		if !seenAlg[w.AlgName] {
			seenAlg[w.AlgName] = true
			m.Algorithms = append(m.Algorithms, w.AlgName)
		}
	}
	return m
}

// manifestWriter serializes manifest updates from concurrent jobs. A nil
// writer is a no-op on every method, so the runner needs no branching.
type manifestWriter struct {
	mu   sync.Mutex
	path string
	m    *Manifest
	// firstErr records the first failed manifest rewrite; the sweep keeps
	// running (results stay valid) and RunSweep surfaces it at the end.
	firstErr error
}

// newManifestWriter prepares manifest persistence for the sweep. With
// Resume set it loads the existing manifest and validates its signature;
// a missing manifest file under Resume starts fresh (nothing to restore).
func newManifestWriter(ws []*Workload, opt Options) (*manifestWriter, error) {
	if opt.Manifest == "" {
		if opt.Resume {
			return nil, errors.New("bench: -resume requires a manifest path")
		}
		return nil, nil
	}
	want := manifestSignature(ws, opt)
	mw := &manifestWriter{path: opt.Manifest, m: want}
	if !opt.Resume {
		return mw, mw.flushLocked()
	}
	have, err := ReadManifest(opt.Manifest)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return mw, mw.flushLocked()
	case err != nil:
		return nil, err
	}
	if err := have.checkSignature(want); err != nil {
		return nil, fmt.Errorf("bench: manifest %s does not match this sweep: %w (delete it to start over)",
			opt.Manifest, err)
	}
	mw.m = have
	return mw, nil
}

// checkSignature verifies the manifest was produced by an identical sweep
// configuration.
func (m *Manifest) checkSignature(want *Manifest) error {
	switch {
	case m.Version != want.Version:
		return fmt.Errorf("manifest version %d, want %d", m.Version, want.Version)
	case m.Tier != want.Tier:
		return fmt.Errorf("tier %q, want %q", m.Tier, want.Tier)
	case m.MaxCycles != want.MaxCycles:
		return fmt.Errorf("max-cycles %d, want %d", m.MaxCycles, want.MaxCycles)
	case m.TimeoutNS != want.TimeoutNS:
		return fmt.Errorf("timeout %s, want %s", time.Duration(m.TimeoutNS), time.Duration(want.TimeoutNS))
	case !reflect.DeepEqual(m.Datasets, want.Datasets):
		return fmt.Errorf("datasets %v, want %v", m.Datasets, want.Datasets)
	case !reflect.DeepEqual(m.Algorithms, want.Algorithms):
		return fmt.Errorf("algorithms %v, want %v", m.Algorithms, want.Algorithms)
	}
	if m.Cells == nil {
		m.Cells = map[string]*ManifestCell{}
	}
	return nil
}

// done reports whether the (workload, engine) job is already recorded.
func (mw *manifestWriter) done(w *Workload, engine string) bool {
	if mw == nil {
		return false
	}
	mw.mu.Lock()
	defer mw.mu.Unlock()
	mc := mw.m.Cells[cellKey(w)]
	return mc != nil && mc.Done[engine]
}

// restore copies a recorded job's outcome into the cell. Returns false when
// the job is not recorded (caller must run it).
func (mw *manifestWriter) restore(c *Cell, engine string) bool {
	if mw == nil {
		return false
	}
	mw.mu.Lock()
	defer mw.mu.Unlock()
	mc := mw.m.Cells[cellKey(c.Workload)]
	if mc == nil || !mc.Done[engine] {
		return false
	}
	var restoredErr error
	if msg, ok := mc.Errs[engine]; ok {
		restoredErr = errors.New(msg)
	}
	switch engine {
	case "ligra":
		c.LigraSeconds = mc.LigraSeconds
		c.LigraModelSeconds = mc.LigraModelSeconds
		c.LigraIters = mc.LigraIters
		c.LigraErr = restoredErr
	case "opt":
		c.Opt, c.OptErr = mc.Opt, restoredErr
	case "base":
		c.Base, c.BaseErr = mc.Base, restoredErr
	case "gion":
		c.Gion, c.GionErr = mc.Gion, restoredErr
	}
	return true
}

// record persists a freshly completed job's outcome and rewrites the
// manifest atomically.
func (mw *manifestWriter) record(c *Cell, engine string) error {
	if mw == nil {
		return nil
	}
	mw.mu.Lock()
	defer mw.mu.Unlock()
	key := cellKey(c.Workload)
	mc := mw.m.Cells[key]
	if mc == nil {
		mc = &ManifestCell{Done: map[string]bool{}}
		mw.m.Cells[key] = mc
	}
	mc.Done[engine] = true
	if err := c.engineErr(engine); err != nil {
		if mc.Errs == nil {
			mc.Errs = map[string]string{}
		}
		mc.Errs[engine] = err.Error()
	}
	switch engine {
	case "ligra":
		mc.LigraSeconds = c.LigraSeconds
		mc.LigraModelSeconds = c.LigraModelSeconds
		mc.LigraIters = c.LigraIters
	case "opt":
		mc.Opt = stripResult(c.Opt)
	case "base":
		mc.Base = stripResult(c.Base)
	case "gion":
		mc.Gion = stripGionResult(c.Gion)
	}
	return mw.flushLocked()
}

// flushLocked rewrites the manifest (temp file + rename; caller holds mu or
// has exclusive access).
func (mw *manifestWriter) flushLocked() error {
	return atomicio.WriteFile(mw.path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(mw.m)
	})
}

// ReadManifest loads a sweep manifest written by a previous run.
func ReadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m := &Manifest{}
	if err := json.NewDecoder(f).Decode(m); err != nil {
		return nil, fmt.Errorf("bench: decode manifest %s: %w", path, err)
	}
	return m, nil
}
