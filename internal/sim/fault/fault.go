// Package fault is the deterministic fault injector shared by every
// hardware model in this repository. Components opt in at explicit
// interposition points — event delivery into the coalescing queue complex
// (drop / duplicate / reorder), vertex property reads (bit flips), DRAM
// transaction completion (transient failures that force a retry), spill
// buffer swap-in (lost events), and the cluster interconnect (link kill /
// degrade).
//
// The injector exists to turn the conformance harness's "all engines agree
// on clean runs" into "the accelerator model detects and survives dirty
// ones": every injected fault is either recovered transparently (duplicate
// discard, DRAM retry, spill re-read, link re-route) or detected by the
// event-conservation watchdog in internal/core, which reports a structured
// core.ErrConservation instead of wedging until MaxCycles.
//
// # Determinism
//
// Faults are a pure function of (Config.Seed, interposition point, call
// sequence number): each Point keeps its own call counter, and every
// decision hashes (seed, point, counter) through a splitmix64 finalizer.
// Because the simulators are themselves deterministic, the k-th decision at
// a point happens at the same cycle in every run, so two runs with the same
// seed and rates are bit-identical — including which events are dropped and
// which bits flip. There is no shared global stream: probing one point never
// perturbs another.
//
// A nil *Injector is the disabled injector: every method is nil-safe and
// free, mirroring the nil telemetry.Recorder convention, so the hot paths
// carry no fault-injection cost when faults are off.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Point identifies one interposition point. Each point draws from its own
// deterministic decision stream.
type Point uint8

const (
	// PointQueueDrop drops an event at delivery into the coalescing queue.
	PointQueueDrop Point = iota
	// PointQueueDup re-delivers an event a second time (marked Redelivered).
	PointQueueDup
	// PointQueueReorder swaps an event with a later one in the delivery
	// network, perturbing arrival order.
	PointQueueReorder
	// PointVertexBitFlip flips one mantissa bit of a vertex property read.
	PointVertexBitFlip
	// PointDRAM fails a DRAM transaction at completion, forcing a
	// retry-with-backoff in the memory controller.
	PointDRAM
	// PointSpillLoss loses a spilled event during slice swap-in; the spill
	// recovery path re-reads it from the journaled spill region.
	PointSpillLoss
	// PointLinkKill drops an event on a cluster interconnect link.
	PointLinkKill
	// PointLinkDegrade multiplies one link traversal's latency.
	PointLinkDegrade
	numPoints
)

// pointNames label the points in Snapshot order.
var pointNames = [numPoints]string{
	"queue_drop", "queue_dup", "queue_reorder", "vertex_bit_flip",
	"dram_fault", "spill_loss", "link_kill", "link_degrade",
}

// String returns the snake_case point name used in counters and reports.
func (p Point) String() string {
	if p < numPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// Config selects the fault mix. All rates are per-opportunity probabilities
// in [0, 1]; the zero value disables injection entirely.
type Config struct {
	// Seed selects the deterministic fault stream. Two runs with equal
	// Config produce bit-identical fault sequences.
	Seed uint64

	// DropRate drops events at queue delivery (detected by the
	// event-conservation watchdog).
	DropRate float64
	// DuplicateRate re-delivers events (discarded idempotently by the
	// coalescer's redelivery check).
	DuplicateRate float64
	// ReorderRate perturbs delivery order inside the crossbar buffer
	// (harmless by design: coalescing reduce operators are commutative).
	ReorderRate float64
	// BitFlipRate flips one mantissa bit per faulted vertex property read
	// (the run completes; values may be corrupted — silent data corruption).
	BitFlipRate float64
	// DRAMFaultRate fails DRAM transactions at completion; the controller
	// retries with exponential backoff.
	DRAMFaultRate float64
	// SpillLossRate loses spilled events at slice swap-in; recovery re-reads
	// them from the journaled spill region.
	SpillLossRate float64
	// LinkKillRate drops events on interconnect links (detected by the
	// cluster-level conservation watchdog).
	LinkKillRate float64
	// LinkDegradeRate multiplies a link traversal's latency by
	// DegradeFactor.
	LinkDegradeRate float64

	// DegradeFactor is the latency multiplier for degraded link traversals
	// (0 means the default of 8).
	DegradeFactor uint64
}

// Enabled reports whether any fault class has a nonzero rate.
func (c Config) Enabled() bool {
	for _, r := range c.rates() {
		if r > 0 {
			return true
		}
	}
	return false
}

// rates returns the per-point rate vector in Point order.
func (c Config) rates() [numPoints]float64 {
	return [numPoints]float64{
		c.DropRate, c.DuplicateRate, c.ReorderRate, c.BitFlipRate,
		c.DRAMFaultRate, c.SpillLossRate, c.LinkKillRate, c.LinkDegradeRate,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	for p, r := range c.rates() {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("fault: %s rate %g outside [0,1]", Point(p), r)
		}
	}
	return nil
}

// WithSeed returns a copy of c with the seed replaced; cluster chips use it
// to derive independent per-chip streams from one configured seed.
func (c Config) WithSeed(seed uint64) Config {
	c.Seed = seed
	return c
}

// specKeys maps -faults spec keys to config fields, in documentation order.
var specKeys = []string{"drop", "dup", "reorder", "bitflip", "dram", "spill", "linkkill", "linkdegrade"}

// ParseSpec parses a compact fault specification of the form
//
//	"drop=1e-4,dup=1e-3,seed=42"
//
// Keys: drop, dup, reorder, bitflip, dram, spill, linkkill, linkdegrade
// (rates in [0,1]), seed (uint), degrade (latency factor). Unknown keys and
// out-of-range rates are errors. The empty string parses to the disabled
// zero Config.
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return c, fmt.Errorf("fault: spec term %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "seed":
			s, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return c, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
			c.Seed = s
			continue
		case "degrade":
			d, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return c, fmt.Errorf("fault: bad degrade factor %q: %v", val, err)
			}
			c.DegradeFactor = d
			continue
		}
		r, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return c, fmt.Errorf("fault: bad rate %q for %q: %v", val, key, err)
		}
		switch key {
		case "drop":
			c.DropRate = r
		case "dup":
			c.DuplicateRate = r
		case "reorder":
			c.ReorderRate = r
		case "bitflip":
			c.BitFlipRate = r
		case "dram":
			c.DRAMFaultRate = r
		case "spill":
			c.SpillLossRate = r
		case "linkkill":
			c.LinkKillRate = r
		case "linkdegrade":
			c.LinkDegradeRate = r
		default:
			return c, fmt.Errorf("fault: unknown spec key %q (want %s, seed, degrade)",
				key, strings.Join(specKeys, ", "))
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Injector draws deterministic fault decisions. The nil *Injector is the
// disabled injector: every method is safe and free on it.
type Injector struct {
	cfg    Config
	rates  [numPoints]float64
	seq    [numPoints]uint64
	counts [numPoints]int64
}

// New returns an injector for cfg, or nil when cfg injects nothing (every
// rate zero). It panics on an invalid cfg — fault configurations are
// validated by the engine Config.Validate paths before reaching here.
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, rates: cfg.rates()}
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche over uint64,
// the standard seed-expansion hash (Steele et al., "Fast Splittable
// Pseudorandom Number Generators").
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns the next uniform value in [0,1) for point p, advancing p's
// stream.
func (in *Injector) draw(p Point) float64 {
	u := splitmix64(in.cfg.Seed ^ uint64(p)<<56 ^ in.seq[p])
	in.seq[p]++
	// 53 high bits → uniform float64 in [0,1).
	return float64(u>>11) / (1 << 53)
}

// Decide reports whether the next opportunity at point p faults. Nil-safe;
// a true return is counted in Snapshot.
func (in *Injector) Decide(p Point) bool {
	if in == nil || in.rates[p] == 0 {
		return false
	}
	if in.draw(p) >= in.rates[p] {
		return false
	}
	in.counts[p]++
	return true
}

// Pick returns a deterministic index in [0,n) from point p's stream (0 when
// n <= 1 or the injector is disabled). Reorder uses it to select a swap
// partner.
func (in *Injector) Pick(p Point, n int) int {
	if in == nil || n <= 1 {
		return 0
	}
	return int(splitmix64(in.cfg.Seed^uint64(p)<<56^0xa5a5a5a5<<8^in.next(p)) % uint64(n))
}

// next advances and returns point p's sequence counter.
func (in *Injector) next(p Point) uint64 {
	s := in.seq[p]
	in.seq[p]++
	return s
}

// CorruptFloat flips one of the low 52 (mantissa) bits of v, modeling a
// single-event upset in a vertex property SRAM read. Restricting the flip
// to mantissa bits keeps the exponent intact, so a finite value stays
// finite and the computation converges (possibly to corrupted values —
// exactly the silent-data-corruption scenario the fault sweeps measure).
// Non-finite inputs are returned unchanged: flipping a mantissa bit of
// ±Inf would manufacture a NaN, which is a different fault class.
func (in *Injector) CorruptFloat(v float64) float64 {
	if in == nil {
		return v
	}
	bit := uint(in.next(PointVertexBitFlip) % 52)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	return math.Float64frombits(math.Float64bits(v) ^ 1<<bit)
}

// DegradeFactor returns the configured link-latency multiplier.
func (in *Injector) DegradeFactor() uint64 {
	if in == nil || in.cfg.DegradeFactor == 0 {
		return 8
	}
	return in.cfg.DegradeFactor
}

// Count returns how many faults have been injected at point p (0 on nil).
func (in *Injector) Count(p Point) int64 {
	if in == nil {
		return 0
	}
	return in.counts[p]
}

// Snapshot returns the injected-fault counts by point name, omitting
// zero-count points. Nil-safe (returns nil).
func (in *Injector) Snapshot() map[string]int64 {
	if in == nil {
		return nil
	}
	out := make(map[string]int64)
	for p := Point(0); p < numPoints; p++ {
		if in.counts[p] > 0 {
			out[p.String()] = in.counts[p]
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Total returns the total number of injected faults across all points.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	var t int64
	for _, c := range in.counts {
		t += c
	}
	return t
}

// FormatSnapshot renders a snapshot deterministically ("a=1 b=2"), for
// logs and failure messages.
func FormatSnapshot(snap map[string]int64) string {
	if len(snap) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[k])
	}
	return b.String()
}
