package fault

import (
	"math"
	"testing"
)

// TestNilInjectorSafe: every method must be free and safe on the nil
// injector — it is the "faults disabled" representation used on hot paths.
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Decide(PointQueueDrop) {
		t.Fatal("nil injector decided to fault")
	}
	if got := in.Pick(PointQueueReorder, 10); got != 0 {
		t.Fatalf("nil Pick = %d, want 0", got)
	}
	if got := in.CorruptFloat(3.5); got != 3.5 {
		t.Fatalf("nil CorruptFloat changed value: %g", got)
	}
	if in.Count(PointDRAM) != 0 || in.Total() != 0 || in.Snapshot() != nil {
		t.Fatal("nil injector reported nonzero counts")
	}
	if in.DegradeFactor() != 8 {
		t.Fatalf("nil DegradeFactor = %d, want 8", in.DegradeFactor())
	}
}

func TestNewDisabledIsNil(t *testing.T) {
	if New(Config{}) != nil {
		t.Fatal("New(zero Config) should return nil")
	}
	if New(Config{Seed: 99}) != nil {
		t.Fatal("seed alone should not enable injection")
	}
	if New(Config{DropRate: 0.1}) == nil {
		t.Fatal("nonzero rate should enable injection")
	}
}

// TestDeterminism: identical configs draw identical decision sequences,
// and streams at different points are independent.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.3, BitFlipRate: 0.5, ReorderRate: 0.2}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 10000; i++ {
		if a.Decide(PointQueueDrop) != b.Decide(PointQueueDrop) {
			t.Fatalf("drop decision %d diverged", i)
		}
		if a.CorruptFloat(1.5) != b.CorruptFloat(1.5) {
			t.Fatalf("corrupt %d diverged", i)
		}
	}
	// Interleaving extra draws at another point must not perturb a stream.
	c := New(cfg)
	var seqA, seqC []bool
	for i := 0; i < 1000; i++ {
		seqA = append(seqA, a.Decide(PointQueueDrop))
		c.Decide(PointQueueReorder) // extra traffic on an unrelated point
		seqC = append(seqC, c.Decide(PointQueueDrop))
	}
	// a has already consumed 10000 drop draws; re-derive from fresh pair.
	d, e := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		got := d.Decide(PointQueueDrop)
		e.Decide(PointQueueReorder)
		if e.Decide(PointQueueDrop) != got {
			t.Fatalf("cross-point interference at draw %d", i)
		}
	}
	_ = seqA
	_ = seqC
}

// TestRateStatistics: the empirical fault rate must track the configured
// probability (law of large numbers, generous tolerance).
func TestRateStatistics(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5, 0.9} {
		in := New(Config{Seed: 7, DropRate: rate})
		const n = 200000
		hits := 0
		for i := 0; i < n; i++ {
			if in.Decide(PointQueueDrop) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-rate) > 0.01 {
			t.Errorf("rate %g: empirical %g", rate, got)
		}
		if in.Count(PointQueueDrop) != int64(hits) {
			t.Errorf("count %d != hits %d", in.Count(PointQueueDrop), hits)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(Config{Seed: 1, DropRate: 0.5})
	b := New(Config{Seed: 2, DropRate: 0.5})
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Decide(PointQueueDrop) == b.Decide(PointQueueDrop) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestCorruptFloat(t *testing.T) {
	in := New(Config{Seed: 3, BitFlipRate: 1})
	// Finite values: exactly one low-52 bit differs, value stays finite.
	for i := 0; i < 1000; i++ {
		v := 1.0 + float64(i)*0.125
		got := in.CorruptFloat(v)
		diff := math.Float64bits(v) ^ math.Float64bits(got)
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("flip of %g changed %d bits", v, popcount(diff))
		}
		if diff>>52 != 0 {
			t.Fatalf("flip of %g touched exponent/sign bits: %#x", v, diff)
		}
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("flip of %g produced non-finite %g", v, got)
		}
	}
	// Non-finite values pass through unchanged (no manufactured NaNs).
	for _, v := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		got := in.CorruptFloat(v)
		if math.IsNaN(v) {
			if !math.IsNaN(got) {
				t.Fatalf("NaN corrupted to %g", got)
			}
			continue
		}
		if got != v {
			t.Fatalf("CorruptFloat(%g) = %g, want unchanged", v, got)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestPickRange(t *testing.T) {
	in := New(Config{Seed: 5, ReorderRate: 1})
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		k := in.Pick(PointQueueReorder, 7)
		if k < 0 || k >= 7 {
			t.Fatalf("Pick out of range: %d", k)
		}
		seen[k] = true
	}
	if len(seen) < 7 {
		t.Fatalf("Pick covered only %d/7 values", len(seen))
	}
	if in.Pick(PointQueueReorder, 1) != 0 || in.Pick(PointQueueReorder, 0) != 0 {
		t.Fatal("Pick with n<=1 must return 0")
	}
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("drop=1e-3, dup=0.5,seed=0x10,degrade=4")
	if err != nil {
		t.Fatal(err)
	}
	if c.DropRate != 1e-3 || c.DuplicateRate != 0.5 || c.Seed != 16 || c.DegradeFactor != 4 {
		t.Fatalf("parsed %+v", c)
	}
	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-1", "nope=0.1", "seed=abc", "drop=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{DropRate: 1.5}).Validate(); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if err := (Config{BitFlipRate: math.NaN()}).Validate(); err == nil {
		t.Fatal("NaN rate accepted")
	}
	if err := (Config{DropRate: 1, DuplicateRate: 0}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotAndFormat(t *testing.T) {
	in := New(Config{Seed: 9, DropRate: 1, DRAMFaultRate: 1})
	in.Decide(PointQueueDrop)
	in.Decide(PointQueueDrop)
	in.Decide(PointDRAM)
	snap := in.Snapshot()
	if snap["queue_drop"] != 2 || snap["dram_fault"] != 1 {
		t.Fatalf("snapshot %v", snap)
	}
	if got := FormatSnapshot(snap); got != "dram_fault=1 queue_drop=2" {
		t.Fatalf("FormatSnapshot = %q", got)
	}
	if FormatSnapshot(nil) != "none" {
		t.Fatal("FormatSnapshot(nil)")
	}
	if in.Total() != 3 {
		t.Fatalf("Total = %d", in.Total())
	}
}

func TestWithSeed(t *testing.T) {
	c := Config{Seed: 1, DropRate: 0.5}
	c2 := c.WithSeed(77)
	if c2.Seed != 77 || c2.DropRate != 0.5 || c.Seed != 1 {
		t.Fatalf("WithSeed: %+v / %+v", c, c2)
	}
}
