// Package sim provides the cycle-level simulation engine every hardware
// model in this repository runs on: a synchronous tick loop over clocked
// components, with a cycle counter and run-control helpers.
//
// The abstraction level matches the paper's methodology (Structural
// Simulation Toolkit): components are structural blocks exchanging work
// through explicit buffers, advanced one clock edge at a time. At the
// modeled 1 GHz, one tick is one nanosecond.
//
// Two subpackages provide the measurement layer: sim/stats (named counters,
// histograms, and per-stage timers rendered deterministically) and
// sim/telemetry (a sampling recorder that is itself a Component — register
// it last so it observes end-of-cycle state — capturing probe values every
// N cycles into bounded time series). METRICS.md at the repository root
// documents every metric name built on these.
package sim

import (
	"context"
	"errors"
	"fmt"
)

// Component is a clocked hardware block. Tick advances it by one cycle; the
// engine calls every component once per cycle in registration order.
// Components must communicate only through explicit latched state so that
// registration order does not change results (register upstream blocks
// first to model same-cycle forwarding where intended).
type Component interface {
	// Name identifies the component in reports.
	Name() string
	// Tick advances the component one clock cycle.
	Tick(cycle uint64)
}

// Engine drives a set of components with a shared clock.
type Engine struct {
	components []Component
	cycle      uint64
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Register appends a component to the tick order.
func (e *Engine) Register(c Component) { e.components = append(e.components, c) }

// Cycle returns the number of cycles executed so far.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Step advances the simulation by exactly one cycle.
func (e *Engine) Step() {
	for _, c := range e.components {
		c.Tick(e.cycle)
	}
	e.cycle++
}

// ErrDeadline is returned by RunUntil when maxCycles elapses before done().
var ErrDeadline = errors.New("sim: cycle deadline exceeded")

// ErrCanceled is returned by RunUntil when the supplied context is canceled
// (wall-clock timeout or interrupt) before the simulation completes.
var ErrCanceled = errors.New("sim: run canceled")

// ctxPollInterval is how many cycles elapse between context checks: a
// non-blocking select per cycle would dominate the tick loop, and a
// millisecond-scale timeout never needs finer granularity.
const ctxPollInterval = 1024

// RunUntil steps the clock until done() returns true, checking done before
// each cycle. It fails with ErrDeadline after maxCycles to convert hangs
// (a scheduling bug, a lost event) into diagnosable errors instead of
// wedged simulations, and with ErrCanceled when ctx is canceled — the
// wall-clock analogue, checked every ctxPollInterval cycles. A nil ctx
// disables cancellation.
func (e *Engine) RunUntil(ctx context.Context, done func() bool, maxCycles uint64) error {
	start := e.cycle
	for !done() {
		if e.cycle-start >= maxCycles {
			return fmt.Errorf("%w (ran %d cycles, %d components)", ErrDeadline, e.cycle-start, len(e.components))
		}
		if ctx != nil && (e.cycle-start)%ctxPollInterval == 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("%w after %d cycles: %v", ErrCanceled, e.cycle-start, ctx.Err())
			default:
			}
		}
		e.Step()
	}
	return nil
}

// FastForward advances the cycle counter without ticking components.
// Checkpoint resume uses it to restore the clock of a restored run so that
// cycle-derived outputs (Seconds, telemetry timestamps) stay on the
// original timeline.
func (e *Engine) FastForward(toCycle uint64) {
	if toCycle > e.cycle {
		e.cycle = toCycle
	}
}

// SecondsAt converts the elapsed cycle count to seconds at the given clock
// frequency in Hz (the paper's accelerator runs at 1 GHz).
func (e *Engine) SecondsAt(hz float64) float64 { return float64(e.cycle) / hz }
