package sim

import (
	"context"
	"errors"
	"testing"
)

type tickCounter struct {
	name   string
	ticks  int
	cycles []uint64
}

func (t *tickCounter) Name() string { return t.name }
func (t *tickCounter) Tick(cycle uint64) {
	t.ticks++
	t.cycles = append(t.cycles, cycle)
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	a := &tickCounter{name: "a"}
	b := &tickCounter{name: "b"}
	e.Register(a)
	e.Register(b)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if e.Cycle() != 5 {
		t.Errorf("Cycle = %d, want 5", e.Cycle())
	}
	if a.ticks != 5 || b.ticks != 5 {
		t.Errorf("ticks = %d/%d, want 5/5", a.ticks, b.ticks)
	}
	for i, c := range a.cycles {
		if c != uint64(i) {
			t.Errorf("tick %d saw cycle %d", i, c)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	c := &tickCounter{name: "c"}
	e.Register(c)
	err := e.RunUntil(nil, func() bool { return c.ticks >= 10 }, 100)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if c.ticks != 10 {
		t.Errorf("ticks = %d, want 10", c.ticks)
	}
}

func TestEngineRunUntilImmediatelyDone(t *testing.T) {
	e := NewEngine()
	c := &tickCounter{name: "c"}
	e.Register(c)
	if err := e.RunUntil(nil, func() bool { return true }, 10); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if c.ticks != 0 {
		t.Errorf("done-before-start still ticked %d times", c.ticks)
	}
}

func TestEngineDeadline(t *testing.T) {
	e := NewEngine()
	err := e.RunUntil(nil, func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if e.Cycle() != 50 {
		t.Errorf("Cycle = %d, want 50", e.Cycle())
	}
}

func TestEngineCanceled(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.RunUntil(ctx, func() bool { return false }, 1<<40)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Cancellation is polled, so at most one poll interval of cycles ran.
	if e.Cycle() >= 2*ctxPollInterval {
		t.Errorf("ran %d cycles after cancellation", e.Cycle())
	}
}

func TestEngineCancelMidRun(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	c := &tickCounter{name: "c"}
	e.Register(c)
	err := e.RunUntil(ctx, func() bool {
		if c.ticks == 3000 {
			cancel()
		}
		return false
	}, 1<<40)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if c.ticks < 3000 || c.ticks > 3000+2*ctxPollInterval {
		t.Errorf("canceled after %d ticks", c.ticks)
	}
}

func TestEngineNilContext(t *testing.T) {
	e := NewEngine()
	if err := e.RunUntil(nil, func() bool { return e.Cycle() >= 5 }, 100); err != nil {
		t.Fatalf("nil ctx RunUntil: %v", err)
	}
}

func TestFastForward(t *testing.T) {
	e := NewEngine()
	e.FastForward(1000)
	if e.Cycle() != 1000 {
		t.Fatalf("Cycle = %d, want 1000", e.Cycle())
	}
	e.FastForward(500) // never rewinds
	if e.Cycle() != 1000 {
		t.Fatalf("Cycle rewound to %d", e.Cycle())
	}
}

func TestSecondsAt(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.Step()
	}
	if got := e.SecondsAt(1e9); got != 1e-6 {
		t.Errorf("SecondsAt(1GHz) = %g, want 1e-6", got)
	}
}
