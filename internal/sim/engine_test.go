package sim

import (
	"errors"
	"testing"
)

type tickCounter struct {
	name   string
	ticks  int
	cycles []uint64
}

func (t *tickCounter) Name() string { return t.name }
func (t *tickCounter) Tick(cycle uint64) {
	t.ticks++
	t.cycles = append(t.cycles, cycle)
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	a := &tickCounter{name: "a"}
	b := &tickCounter{name: "b"}
	e.Register(a)
	e.Register(b)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if e.Cycle() != 5 {
		t.Errorf("Cycle = %d, want 5", e.Cycle())
	}
	if a.ticks != 5 || b.ticks != 5 {
		t.Errorf("ticks = %d/%d, want 5/5", a.ticks, b.ticks)
	}
	for i, c := range a.cycles {
		if c != uint64(i) {
			t.Errorf("tick %d saw cycle %d", i, c)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	c := &tickCounter{name: "c"}
	e.Register(c)
	err := e.RunUntil(func() bool { return c.ticks >= 10 }, 100)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if c.ticks != 10 {
		t.Errorf("ticks = %d, want 10", c.ticks)
	}
}

func TestEngineRunUntilImmediatelyDone(t *testing.T) {
	e := NewEngine()
	c := &tickCounter{name: "c"}
	e.Register(c)
	if err := e.RunUntil(func() bool { return true }, 10); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if c.ticks != 0 {
		t.Errorf("done-before-start still ticked %d times", c.ticks)
	}
}

func TestEngineDeadline(t *testing.T) {
	e := NewEngine()
	err := e.RunUntil(func() bool { return false }, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if e.Cycle() != 50 {
		t.Errorf("Cycle = %d, want 50", e.Cycle())
	}
}

func TestSecondsAt(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.Step()
	}
	if got := e.SecondsAt(1e9); got != 1e-6 {
		t.Errorf("SecondsAt(1GHz) = %g, want 1e-6", got)
	}
}
