// Package stats collects the measurements every figure in the paper's
// evaluation is produced from: counters, bucketed histograms, running
// means, and per-stage cycle accounting.
//
// The simulator is single-threaded by construction, so none of these types
// use atomics; they are plain fields updated on the hot path and read at
// report time.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a named collection of counters and histograms. The zero value is
// not usable; call NewSet.
type Set struct {
	counters   map[string]int64
	histograms map[string]*Histogram
	// order lists every counter and histogram name in first-registration
	// order; Report and Names render from it so output is deterministic.
	order []string
}

// NewSet returns an empty Set.
func NewSet() *Set {
	return &Set{
		counters:   make(map[string]int64),
		histograms: make(map[string]*Histogram),
	}
}

// Add increments counter name by delta, creating it at zero if needed.
func (s *Set) Add(name string, delta int64) {
	if _, ok := s.counters[name]; !ok {
		s.order = append(s.order, name)
	}
	s.counters[name] += delta
}

// Counter returns the current value of a counter (0 if never written).
func (s *Set) Counter(name string) int64 { return s.counters[name] }

// Counters returns a copy of all counters.
func (s *Set) Counters() map[string]int64 {
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// Histogram returns the named histogram, creating it with the given buckets
// on first use. Subsequent calls ignore the bucket argument.
func (s *Set) Histogram(name string, buckets []int64) *Histogram {
	if h, ok := s.histograms[name]; ok {
		return h
	}
	s.order = append(s.order, name)
	h := NewHistogram(buckets)
	s.histograms[name] = h
	return h
}

// Names returns every counter and histogram name in first-registration
// order (the order Report renders).
func (s *Set) Names() []string { return append([]string(nil), s.order...) }

// Histograms returns the live histogram map (not a copy); report code only.
func (s *Set) Histograms() map[string]*Histogram { return s.histograms }

// Report renders every counter and histogram in first-registration order —
// fully deterministic, including the counter/histogram interleaving (both
// kinds share one order list; map iteration never decides placement).
// Histograms render as a summary line followed by their buckets.
func (s *Set) Report() string {
	var b strings.Builder
	for _, n := range s.order {
		if v, ok := s.counters[n]; ok {
			fmt.Fprintf(&b, "%-40s %d\n", n, v)
		}
		if h, ok := s.histograms[n]; ok {
			fmt.Fprintf(&b, "%-40s count=%d mean=%.2f max=%d\n", n, h.Count(), h.Mean(), h.Max())
			for _, bk := range h.Buckets() {
				label := "  >overflow"
				if bk.UpperBound >= 0 {
					label = fmt.Sprintf("  ≤%d", bk.UpperBound)
				}
				fmt.Fprintf(&b, "%-40s %d\n", label, bk.Count)
			}
		}
	}
	return b.String()
}

// String renders counters sorted by name, one per line.
func (s *Set) String() string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %d\n", n, s.counters[n])
	}
	return b.String()
}

// Histogram counts observations into fixed upper-bound buckets plus an
// overflow bucket, and tracks sum/count/max for mean reporting.
type Histogram struct {
	bounds []int64 // ascending upper bounds (inclusive)
	counts []int64 // len(bounds)+1; last is overflow
	sum    int64
	n      int64
	max    int64
}

// NewHistogram creates a histogram with the given ascending inclusive upper
// bounds. Values above the last bound land in the overflow bucket.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the mean observation (0 if none).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns (bound, count) pairs, with the overflow bucket reported
// under bound -1.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for i, c := range h.counts {
		b := int64(-1)
		if i < len(h.bounds) {
			b = h.bounds[i]
		}
		out = append(out, Bucket{UpperBound: b, Count: c})
	}
	return out
}

// Bucket is one histogram bucket. UpperBound -1 marks overflow.
type Bucket struct {
	UpperBound int64
	Count      int64
}

// StageTimer accumulates cycles spent per named pipeline stage. It backs
// Figure 13 (chronological per-event stage breakdown) and Figure 14
// (busy/stall fractions).
type StageTimer struct {
	names  []string
	cycles []int64
	events []int64
}

// NewStageTimer creates a timer with the given stage names in display order.
func NewStageTimer(names ...string) *StageTimer {
	return &StageTimer{
		names:  append([]string(nil), names...),
		cycles: make([]int64, len(names)),
		events: make([]int64, len(names)),
	}
}

// indexOf returns the stage index or panics: stage names are compile-time
// constants in the models, so a miss is a programming error.
func (t *StageTimer) indexOf(name string) int {
	for i, n := range t.names {
		if n == name {
			return i
		}
	}
	panic("stats: unknown stage " + name)
}

// AddCycles accrues cycles to a stage.
func (t *StageTimer) AddCycles(stage string, cycles int64) {
	t.cycles[t.indexOf(stage)] += cycles
}

// AddEvent counts one event completing a stage (denominator for per-event
// means).
func (t *StageTimer) AddEvent(stage string) {
	t.events[t.indexOf(stage)]++
}

// AddEventCycles is AddCycles + AddEvent in one call.
func (t *StageTimer) AddEventCycles(stage string, cycles int64) {
	i := t.indexOf(stage)
	t.cycles[i] += cycles
	t.events[i]++
}

// Stages returns the display-ordered stage names.
func (t *StageTimer) Stages() []string { return append([]string(nil), t.names...) }

// Cycles returns total cycles accrued to a stage.
func (t *StageTimer) Cycles(stage string) int64 { return t.cycles[t.indexOf(stage)] }

// MeanCycles returns mean cycles per event for a stage (0 if no events).
func (t *StageTimer) MeanCycles(stage string) float64 {
	i := t.indexOf(stage)
	if t.events[i] == 0 {
		return 0
	}
	return float64(t.cycles[i]) / float64(t.events[i])
}

// TotalCycles sums cycles across all stages.
func (t *StageTimer) TotalCycles() int64 {
	var s int64
	for _, c := range t.cycles {
		s += c
	}
	return s
}

// Fractions returns each stage's share of TotalCycles (empty map if zero).
func (t *StageTimer) Fractions() map[string]float64 {
	total := t.TotalCycles()
	out := make(map[string]float64, len(t.names))
	if total == 0 {
		return out
	}
	for i, n := range t.names {
		out[n] = float64(t.cycles[i]) / float64(total)
	}
	return out
}
