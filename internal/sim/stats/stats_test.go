package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetCounters(t *testing.T) {
	s := NewSet()
	if s.Counter("nope") != 0 {
		t.Error("unset counter not zero")
	}
	s.Add("reads", 3)
	s.Add("reads", 4)
	s.Add("writes", 1)
	if got := s.Counter("reads"); got != 7 {
		t.Errorf("reads = %d, want 7", got)
	}
	m := s.Counters()
	m["reads"] = 0
	if s.Counter("reads") != 7 {
		t.Error("Counters() returned a live map")
	}
	if !strings.Contains(s.String(), "reads") {
		t.Error("String() missing counter name")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	b := h.Buckets()
	if len(b) != 3 {
		t.Fatalf("buckets = %d, want 3", len(b))
	}
	if b[0].Count != 2 { // 1, 10
		t.Errorf("bucket ≤10 = %d, want 2", b[0].Count)
	}
	if b[1].Count != 2 { // 11, 100
		t.Errorf("bucket ≤100 = %d, want 2", b[1].Count)
	}
	if b[2].Count != 2 || b[2].UpperBound != -1 { // overflow
		t.Errorf("overflow = %+v", b[2])
	}
	if h.Count() != 6 || h.Max() != 5000 {
		t.Errorf("count=%d max=%d", h.Count(), h.Max())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram([]int64{100})
	if h.Mean() != 0 {
		t.Error("empty histogram mean != 0")
	}
	h.Observe(10)
	h.Observe(20)
	if got := h.Mean(); got != 15 {
		t.Errorf("Mean = %g, want 15", got)
	}
	if h.Sum() != 30 {
		t.Errorf("Sum = %d, want 30", h.Sum())
	}
}

func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram([]int64{100, 10})
	h.Observe(50)
	b := h.Buckets()
	if b[0].UpperBound != 10 || b[1].UpperBound != 100 {
		t.Errorf("bounds not sorted: %+v", b)
	}
	if b[1].Count != 1 {
		t.Errorf("50 landed in wrong bucket: %+v", b)
	}
}

func TestSetHistogramReuse(t *testing.T) {
	s := NewSet()
	h1 := s.Histogram("lat", []int64{10})
	h1.Observe(5)
	h2 := s.Histogram("lat", []int64{99, 100}) // buckets ignored on reuse
	if h1 != h2 {
		t.Error("Histogram did not return the existing histogram")
	}
	if h2.Count() != 1 {
		t.Error("observations lost on reuse")
	}
	if len(s.Histograms()) != 1 {
		t.Error("Histograms map wrong size")
	}
}

func TestStageTimer(t *testing.T) {
	st := NewStageTimer("fetch", "process", "emit")
	st.AddEventCycles("fetch", 10)
	st.AddEventCycles("fetch", 20)
	st.AddEventCycles("process", 4)
	st.AddCycles("emit", 6)
	if got := st.MeanCycles("fetch"); got != 15 {
		t.Errorf("MeanCycles(fetch) = %g, want 15", got)
	}
	if got := st.MeanCycles("emit"); got != 0 {
		t.Errorf("MeanCycles(emit) with no events = %g, want 0", got)
	}
	if got := st.TotalCycles(); got != 40 {
		t.Errorf("TotalCycles = %d, want 40", got)
	}
	fr := st.Fractions()
	if fr["fetch"] != 0.75 {
		t.Errorf("fraction fetch = %g, want 0.75", fr["fetch"])
	}
	if got := st.Cycles("process"); got != 4 {
		t.Errorf("Cycles(process) = %d", got)
	}
	if stages := st.Stages(); len(stages) != 3 || stages[0] != "fetch" {
		t.Errorf("Stages = %v", stages)
	}
}

func TestStageTimerUnknownStagePanics(t *testing.T) {
	st := NewStageTimer("a")
	defer func() {
		if recover() == nil {
			t.Error("unknown stage did not panic")
		}
	}()
	st.AddCycles("nope", 1)
}

func TestStageTimerEmptyFractions(t *testing.T) {
	st := NewStageTimer("a", "b")
	if fr := st.Fractions(); len(fr) != 0 {
		t.Errorf("Fractions on empty timer = %v", fr)
	}
}

// TestPropertyHistogramConservation: total bucket counts always equal the
// number of observations, and sum/mean stay consistent.
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram([]int64{8, 64, 512})
		var sum int64
		for i := 0; i < int(n); i++ {
			v := int64(rng.Intn(2000))
			sum += v
			h.Observe(v)
		}
		var total int64
		for _, b := range h.Buckets() {
			total += b.Count
		}
		return total == int64(n) && h.Sum() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReportGolden pins Report()'s exact output: counters and histograms
// interleave in first-registration order, with histogram buckets inline.
// Any nondeterminism (map-ordered rendering) or format drift fails here.
func TestReportGolden(t *testing.T) {
	s := NewSet()
	s.Add("reads", 3)
	h := s.Histogram("latency", []int64{10, 100})
	h.Observe(5)
	h.Observe(500)
	s.Add("writes", 1)
	s.Add("reads", 4) // re-adding must not re-order

	got := s.Report()
	wantExact := "reads                                    7\n" +
		"latency                                  count=2 mean=252.50 max=500\n" +
		"  ≤10                                    1\n" +
		"  ≤100                                   0\n" +
		"  >overflow                              1\n" +
		"writes                                   1\n"
	if got != wantExact {
		t.Fatalf("Report mismatch:\n got:\n%s\nwant:\n%s", got, wantExact)
	}
	for i := 0; i < 100; i++ {
		if s.Report() != got {
			t.Fatal("Report is not deterministic across calls")
		}
	}
}

func TestNamesIncludesHistograms(t *testing.T) {
	s := NewSet()
	s.Add("a", 1)
	s.Histogram("h", []int64{1})
	s.Add("b", 1)
	got := s.Names()
	want := []string{"a", "h", "b"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}
