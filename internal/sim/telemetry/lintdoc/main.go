package main

import (
	"fmt"
	"os"
	"path/filepath"
)

// lintOne picks the check by doc role: runbooks (OPERATIONS.md) get the
// reverse referenced-names-must-exist check, metric catalogues
// (METRICS.md, the default) the forward every-emitted-name-documented
// check.
func lintOne(doc string) error {
	if filepath.Base(doc) == "OPERATIONS.md" {
		if err := checkOps(doc); err != nil {
			return err
		}
		fmt.Printf("lintdoc: every metric %s references is emitted by the build\n", doc)
		return nil
	}
	if err := check(doc); err != nil {
		return err
	}
	fmt.Printf("lintdoc: %s documents every emitted metric\n", doc)
	return nil
}

func main() {
	docs := os.Args[1:]
	if len(docs) == 0 {
		docs = []string{"METRICS.md", "OPERATIONS.md"}
	}
	for _, doc := range docs {
		if err := lintOne(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
