package main

import (
	"fmt"
	"os"
)

func main() {
	doc := "METRICS.md"
	if len(os.Args) > 1 {
		doc = os.Args[1]
	}
	if err := check(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("lintdoc: %s documents every emitted metric\n", doc)
}
