// Command lintdoc keeps the metric documentation in sync with the metrics
// the build actually emits. It runs tiny telemetry-enabled simulations of
// every engine (accelerator, cluster, Graphicionado baseline), collects
// each registered series name plus the DDR3 stats.Set counter names, the
// stage/state keys, and the serving- and distributed-tier metric
// catalogues, then applies two checks:
//
//   - METRICS.md (forward): every collected name must be mentioned in the
//     doc in backticks;
//   - OPERATIONS.md (reverse): every backticked metric-shaped token in
//     the runbook (`router_*`, `worker_*`, `query_*`, …) must name a
//     metric the build can actually emit — so the troubleshooting table
//     cannot drift onto renamed or deleted counters.
//
// CI runs both (`go run ./internal/sim/telemetry/lintdoc`) and `go test`
// covers the same checks.
package main

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/core"
	"graphpulse/internal/dserve"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/graph/ooc"
	"graphpulse/internal/mem"
	"graphpulse/internal/psolve"
	"graphpulse/internal/serve"
	"graphpulse/internal/sim/telemetry"
)

// telCfg samples aggressively on the tiny lint graphs so every probe
// registers and records.
var telCfg = telemetry.Config{Interval: 8, MaxSamples: 64}

// emittedNames runs each engine once on a tiny graph and returns every
// metric name the build can emit, sorted and deduplicated.
func emittedNames() ([]string, error) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 8, EdgeFactor: 8,
		Weighted: true, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	add := func(names ...string) {
		for _, n := range names {
			seen[n] = true
		}
	}

	// Accelerator telemetry series.
	acfg := core.OptimizedConfig()
	acfg.Telemetry = telCfg
	a, err := core.New(acfg, g, algorithms.NewPageRankDelta())
	if err != nil {
		return nil, err
	}
	ares, err := a.Run()
	if err != nil {
		return nil, err
	}
	for _, s := range ares.Telemetry.Series() {
		add(s.Name)
	}

	// Cluster adds the interconnect series.
	ccfg := core.DefaultClusterConfig()
	ccfg.Chips = 2
	ccfg.Chip.Telemetry = telCfg
	cl, err := core.NewCluster(ccfg, g, algorithms.NewPageRankDelta())
	if err != nil {
		return nil, err
	}
	cres, err := cl.Run()
	if err != nil {
		return nil, err
	}
	for _, s := range cres.Telemetry.Series() {
		add(s.Name)
	}

	// Graphicionado adds the frontier series.
	gcfg := graphicionado.DefaultConfig()
	gcfg.Telemetry = telCfg
	gres, err := graphicionado.Run(gcfg, g, algorithms.NewPageRankDelta())
	if err != nil {
		return nil, err
	}
	for _, s := range gres.Telemetry.Series() {
		add(s.Name)
	}

	// DDR3 stats.Set counters and the latency histogram.
	add(mem.New(mem.DefaultConfig()).Stats().Names()...)

	// Serving-layer counters and latency histograms.
	add(serve.MetricNames()...)

	// Distributed serving tier: router and worker catalogues.
	add(dserve.RouterMetricNames()...)
	add(dserve.WorkerMetricNames()...)

	// Parallel native solver counters.
	add(psolve.MetricNames()...)

	// Out-of-core graphpack store counters.
	add(ooc.MetricNames()...)

	// Stage-timer and unit-state keys surfaced through core.Result.
	add(core.StageNames...)
	for k := range ares.ProcBreakdown {
		add(k)
	}
	for k := range ares.GenBreakdown {
		add(k)
	}

	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

var backtickRE = regexp.MustCompile("`([^`]+)`")

// cachedEmittedNames memoizes the (simulation-backed) name collection so
// linting several docs pays for it once.
var (
	namesOnce sync.Once
	namesVal  []string
	namesErr  error
)

func cachedEmittedNames() ([]string, error) {
	namesOnce.Do(func() { namesVal, namesErr = emittedNames() })
	return namesVal, namesErr
}

// check verifies every emitted metric name appears in the doc at docPath
// inside backticks. `dram_*`-style globs in the doc cover matching names.
func check(docPath string) error {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		return err
	}
	documented := map[string]bool{}
	var globs []string
	for _, m := range backtickRE.FindAllStringSubmatch(string(raw), -1) {
		name := m[1]
		documented[name] = true
		if n := len(name); n > 1 && name[n-1] == '*' {
			globs = append(globs, name[:n-1])
		}
	}
	covered := func(name string) bool {
		if documented[name] {
			return true
		}
		for _, prefix := range globs {
			if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
				return true
			}
		}
		return false
	}

	names, err := cachedEmittedNames()
	if err != nil {
		return err
	}
	var missing []string
	for _, n := range names {
		if !covered(n) {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("lintdoc: %s is stale — undocumented metric names: %v", docPath, missing)
	}
	return nil
}

// metricTokenRE matches the backticked tokens the reverse check treats as
// metric references: the repository's metric-name families, optionally
// ending in a `*` glob.
var metricTokenRE = regexp.MustCompile(`^(router|worker|query|mutate|stream|compute|psolve|wal|antientropy|chaos|ooc)_[a-z0-9_]+\*?$`)

// checkOps is the reverse check for runbook-style docs (OPERATIONS.md):
// every backticked token shaped like a metric name must be a metric the
// build can emit. A trailing `*` in the doc is a glob and is satisfied by
// any emitted name with that prefix.
func checkOps(docPath string) error {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		return err
	}
	names, err := cachedEmittedNames()
	if err != nil {
		return err
	}
	emitted := make(map[string]bool, len(names))
	for _, n := range names {
		emitted[n] = true
	}
	prefixExists := func(prefix string) bool {
		for _, n := range names {
			if strings.HasPrefix(n, prefix) {
				return true
			}
		}
		return false
	}

	var unknown []string
	seen := map[string]bool{}
	for _, m := range backtickRE.FindAllStringSubmatch(string(raw), -1) {
		tok := m[1]
		if !metricTokenRE.MatchString(tok) || seen[tok] {
			continue
		}
		seen[tok] = true
		if strings.HasSuffix(tok, "*") {
			if !prefixExists(strings.TrimSuffix(tok, "*")) {
				unknown = append(unknown, tok)
			}
		} else if !emitted[tok] {
			unknown = append(unknown, tok)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("lintdoc: %s references metrics the build does not emit: %v", docPath, unknown)
	}
	return nil
}
