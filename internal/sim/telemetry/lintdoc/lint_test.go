package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMetricsDocIsCurrent is the staleness check CI runs: METRICS.md must
// name every counter and telemetry series the engines emit.
func TestMetricsDocIsCurrent(t *testing.T) {
	if err := check(filepath.Join("..", "..", "..", "..", "METRICS.md")); err != nil {
		t.Fatal(err)
	}
}

// TestCheckFlagsUndocumentedNames proves the linter actually fails on a doc
// that omits an emitted name.
func TestCheckFlagsUndocumentedNames(t *testing.T) {
	stale := filepath.Join(t.TempDir(), "METRICS.md")
	if err := os.WriteFile(stale, []byte("# Metrics\n\nOnly `queue_occupancy` here.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(stale); err == nil {
		t.Fatal("check accepted a doc missing nearly every metric")
	}
}

// TestOperationsDocNamesAreReal is the reverse check CI runs: every metric
// name the runbook's troubleshooting guidance cites must exist in the
// build.
func TestOperationsDocNamesAreReal(t *testing.T) {
	if err := checkOps(filepath.Join("..", "..", "..", "..", "OPERATIONS.md")); err != nil {
		t.Fatal(err)
	}
}

// TestCheckOpsFlagsUnknownNames proves the reverse check fails on a
// runbook citing a metric the build does not emit, and that globs are
// honored.
func TestCheckOpsFlagsUnknownNames(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "OPERATIONS.md")
	if err := os.WriteFile(bad, []byte("Watch `router_bogus_counter` closely.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkOps(bad); err == nil {
		t.Fatal("checkOps accepted a runbook citing a nonexistent metric")
	}

	good := filepath.Join(dir, "OPERATIONS2.md")
	if err := os.WriteFile(good,
		[]byte("Watch `router_retries` and the `worker_snapshot_*` family; `serve -graph` is not a metric.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkOps(good); err != nil {
		t.Fatalf("checkOps rejected a runbook citing only real metrics: %v", err)
	}

	glob := filepath.Join(dir, "OPERATIONS3.md")
	if err := os.WriteFile(glob, []byte("The `router_nonexistent_*` family.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkOps(glob); err == nil {
		t.Fatal("checkOps accepted a glob matching no emitted metric")
	}
}
