package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMetricsDocIsCurrent is the staleness check CI runs: METRICS.md must
// name every counter and telemetry series the engines emit.
func TestMetricsDocIsCurrent(t *testing.T) {
	if err := check(filepath.Join("..", "..", "..", "..", "METRICS.md")); err != nil {
		t.Fatal(err)
	}
}

// TestCheckFlagsUndocumentedNames proves the linter actually fails on a doc
// that omits an emitted name.
func TestCheckFlagsUndocumentedNames(t *testing.T) {
	stale := filepath.Join(t.TempDir(), "METRICS.md")
	if err := os.WriteFile(stale, []byte("# Metrics\n\nOnly `queue_occupancy` here.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(stale); err == nil {
		t.Fatal("check accepted a doc missing nearly every metric")
	}
}
