// Package telemetry samples time-resolved measurements out of a running
// simulation: any clocked component registers probes (queue occupancy,
// events per interval, DRAM bytes transferred, processor stall cycles …)
// with a Recorder, which reads them every Interval cycles into bounded
// in-memory time series.
//
// The Recorder itself is a sim.Component: register it on the engine after
// every block it observes and it samples end-of-cycle architectural state,
// which makes the series a pure function of the simulation — bit-identical
// across runs — and guarantees sampling never perturbs the simulated
// machine (probes only read).
//
// The zero Config disables telemetry: New returns a nil *Recorder, every
// method on which is a no-op, so a disabled build registers nothing on the
// engine and the simulation hot path is untouched (see
// BenchmarkAccelDisabledTelemetry in internal/core).
//
// Memory is bounded by decimation rather than by discarding history: when a
// series reaches MaxSamples points the Recorder halves its resolution —
// adjacent rate samples are summed, gauges keep the later point — and
// doubles the sampling interval, so a run of any length yields a
// whole-run timeline of at most MaxSamples points.
//
// Export formats: WriteCSV (long-form rows for plotting and the cmd/bench
// charts) and WriteChromeTrace (Chrome trace_event JSON with one counter
// track per component, loadable in chrome://tracing and Perfetto). Both are
// documented in METRICS.md, which a CI linter keeps in sync with the series
// actually emitted (internal/sim/telemetry/lintdoc).
package telemetry

// Config enables and sizes time-series sampling. The zero value disables
// telemetry entirely.
type Config struct {
	// Interval is the sampling period in cycles; 0 disables telemetry.
	// Long runs decimate: the effective interval doubles whenever a series
	// would exceed MaxSamples.
	Interval uint64
	// MaxSamples bounds each series' point count (and hence memory).
	// 0 means DefaultMaxSamples. Rounded up to an even value ≥ 16.
	MaxSamples int
}

// Enabled reports whether this configuration records anything.
func (c Config) Enabled() bool { return c.Interval > 0 }

// DefaultMaxSamples is the per-series point bound used when
// Config.MaxSamples is 0.
const DefaultMaxSamples = 4096

// DefaultInterval is the sampling period the command-line tools use.
const DefaultInterval = 512

// Default returns the sampling configuration the -telemetry flags enable.
func Default() Config {
	return Config{Interval: DefaultInterval, MaxSamples: DefaultMaxSamples}
}

// Kind distinguishes how a probe's reads become series values.
type Kind uint8

const (
	// Gauge probes report an instantaneous level (queue occupancy, requests
	// in flight); the series stores the value read at each sample cycle.
	Gauge Kind = iota
	// Rate probes read a cumulative counter; the series stores the delta
	// accrued over each sampling interval.
	Rate
)

// String returns "gauge" or "rate".
func (k Kind) String() string {
	if k == Rate {
		return "rate"
	}
	return "gauge"
}

// Sample is one time-series point. For Rate series the value covers the
// interval ending at Cycle.
type Sample struct {
	Cycle uint64
	Value int64
}

// Series is one exported probe timeline.
type Series struct {
	// Component is the hardware block the probe observes ("queue",
	// "memory", "chip2/proc" …) — one trace track per component.
	Component string
	// Name is the measurement ("queue_occupancy", "dram_bytes" …); names
	// are the unit of METRICS.md documentation.
	Name string
	// Unit is the value's unit ("events", "bytes", "cycles" …).
	Unit string
	Kind Kind
	// Samples is chronological; shared decimation keeps every series the
	// same length with the same cycle stamps.
	Samples []Sample
}

type probe struct {
	component, name, unit string
	kind                  Kind
	fn                    func() int64
	last                  int64 // previous cumulative read (Rate only)
	values                []int64
}

// Recorder owns the registered probes and their sampled series. A nil
// *Recorder is the disabled state: every method is a no-op, so callers wire
// probes unconditionally and pay nothing when telemetry is off.
type Recorder struct {
	cfg      Config
	interval uint64 // current effective interval (doubles on decimation)
	next     uint64 // next cycle to sample at
	cycles   []uint64
	probes   []*probe
}

// New builds a Recorder, or returns nil when cfg is disabled.
func New(cfg Config) *Recorder {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = DefaultMaxSamples
	}
	if cfg.MaxSamples < 16 {
		cfg.MaxSamples = 16
	}
	cfg.MaxSamples += cfg.MaxSamples % 2 // decimation halves pairs
	return &Recorder{cfg: cfg, interval: cfg.Interval}
}

// Gauge registers an instantaneous-level probe. fn is called at each sample
// cycle; it must only read simulation state.
func (r *Recorder) Gauge(component, name, unit string, fn func() int64) {
	r.register(component, name, unit, Gauge, fn)
}

// Rate registers a cumulative-counter probe; the series records per-interval
// deltas. fn must be monotone non-decreasing for the deltas to be
// meaningful, and must only read simulation state.
func (r *Recorder) Rate(component, name, unit string, fn func() int64) {
	r.register(component, name, unit, Rate, fn)
}

func (r *Recorder) register(component, name, unit string, kind Kind, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	p := &probe{component: component, name: name, unit: unit, kind: kind, fn: fn}
	// Probes registered after sampling started backfill zeros so every
	// series keeps the shared cycle stamps.
	if n := len(r.cycles); n > 0 {
		p.values = make([]int64, n)
	}
	if p.kind == Rate {
		p.last = fn()
	}
	r.probes = append(r.probes, p)
}

// Name implements sim.Component.
func (r *Recorder) Name() string { return "telemetry" }

// Tick implements sim.Component: samples every probe when the cycle counter
// crosses the current interval boundary. Register the Recorder after the
// blocks it observes so it reads end-of-cycle state.
func (r *Recorder) Tick(cycle uint64) {
	if r == nil || cycle < r.next {
		return
	}
	r.next = cycle + r.interval
	r.cycles = append(r.cycles, cycle)
	for _, p := range r.probes {
		v := p.fn()
		if p.kind == Rate {
			v, p.last = v-p.last, v
		}
		p.values = append(p.values, v)
	}
	if len(r.cycles) >= r.cfg.MaxSamples {
		r.decimate()
	}
}

// decimate halves every series: rate pairs are summed (deltas stay exact),
// gauges keep the later point of each pair, and the effective interval
// doubles. The kept stamps are each pair's second sample cycle.
func (r *Recorder) decimate() {
	m := len(r.cycles) / 2
	for i := 0; i < m; i++ {
		r.cycles[i] = r.cycles[2*i+1]
	}
	r.cycles = r.cycles[:m]
	for _, p := range r.probes {
		for i := 0; i < m; i++ {
			if p.kind == Rate {
				p.values[i] = p.values[2*i] + p.values[2*i+1]
			} else {
				p.values[i] = p.values[2*i+1]
			}
		}
		p.values = p.values[:m]
	}
	r.interval *= 2
}

// Interval returns the current effective sampling interval in cycles (the
// configured interval times 2 per decimation). 0 when disabled.
func (r *Recorder) Interval() uint64 {
	if r == nil {
		return 0
	}
	return r.interval
}

// SampleCount returns the number of points currently held per series.
func (r *Recorder) SampleCount() int {
	if r == nil {
		return 0
	}
	return len(r.cycles)
}

// Series exports every probe's timeline in registration order. The returned
// slices are copies; nil when the Recorder is disabled.
func (r *Recorder) Series() []Series {
	if r == nil {
		return nil
	}
	out := make([]Series, 0, len(r.probes))
	for _, p := range r.probes {
		s := Series{
			Component: p.component,
			Name:      p.name,
			Unit:      p.unit,
			Kind:      p.kind,
			Samples:   make([]Sample, len(p.values)),
		}
		for i, v := range p.values {
			s.Samples[i] = Sample{Cycle: r.cycles[i], Value: v}
		}
		out = append(out, s)
	}
	return out
}

// Find returns the first series with the given name (any component) and
// whether one exists.
func (r *Recorder) Find(name string) (Series, bool) {
	for _, s := range r.Series() {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}
