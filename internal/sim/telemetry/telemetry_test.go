package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"graphpulse/internal/sim"
)

// The Recorder must be registrable on the simulation engine.
var _ sim.Component = (*Recorder)(nil)

func TestDisabledConfigReturnsNil(t *testing.T) {
	if r := New(Config{}); r != nil {
		t.Fatalf("New(zero Config) = %v, want nil", r)
	}
	if !Default().Enabled() {
		t.Fatal("Default() must be enabled")
	}
}

func TestSamplingGaugeAndRate(t *testing.T) {
	r := New(Config{Interval: 10, MaxSamples: 1 << 20})
	level := int64(0)
	total := int64(0)
	r.Gauge("comp", "level", "units", func() int64 { return level })
	r.Rate("comp", "total", "units", func() int64 { return total })
	for c := uint64(0); c < 35; c++ {
		level = int64(c) * 2
		total += 3
		r.Tick(c)
	}
	ss := r.Series()
	if len(ss) != 2 {
		t.Fatalf("series = %d, want 2", len(ss))
	}
	g, rt := ss[0], ss[1]
	wantCycles := []uint64{0, 10, 20, 30}
	if len(g.Samples) != len(wantCycles) {
		t.Fatalf("gauge samples = %d, want %d", len(g.Samples), len(wantCycles))
	}
	for i, c := range wantCycles {
		if g.Samples[i].Cycle != c {
			t.Errorf("sample %d at cycle %d, want %d", i, g.Samples[i].Cycle, c)
		}
		if g.Samples[i].Value != int64(c)*2 {
			t.Errorf("gauge[%d] = %d, want %d", i, g.Samples[i].Value, c*2)
		}
	}
	// Rate deltas: 3 counts per tick → first sample covers 1 tick, then 10.
	wantRate := []int64{3, 30, 30, 30}
	for i, w := range wantRate {
		if rt.Samples[i].Value != w {
			t.Errorf("rate[%d] = %d, want %d", i, rt.Samples[i].Value, w)
		}
	}
}

func TestDecimationBoundsMemoryAndPreservesRateTotals(t *testing.T) {
	r := New(Config{Interval: 1, MaxSamples: 16})
	total := int64(0)
	r.Rate("comp", "total", "units", func() int64 { return total })
	r.Gauge("comp", "level", "units", func() int64 { return total })
	for c := uint64(0); c < 10_000; c++ {
		total += 2
		r.Tick(c)
	}
	if n := r.SampleCount(); n >= 16 {
		t.Fatalf("samples = %d, want < MaxSamples", n)
	}
	if r.Interval() <= 1 {
		t.Fatalf("interval = %d, want doubled by decimation", r.Interval())
	}
	rt, ok := r.Find("total")
	if !ok {
		t.Fatal("rate series missing")
	}
	var sum int64
	var lastCycle uint64
	for _, s := range rt.Samples {
		sum += s.Value
		lastCycle = s.Cycle
	}
	// Every delta up to the last retained stamp must be accounted for
	// exactly: decimation sums pairs, it never drops.
	if want := int64(lastCycle+1) * 2; sum != want {
		t.Fatalf("rate total = %d, want %d", sum, want)
	}
}

func TestLateRegistrationBackfills(t *testing.T) {
	r := New(Config{Interval: 1, MaxSamples: 64})
	r.Tick(0)
	r.Tick(1)
	r.Gauge("comp", "late", "units", func() int64 { return 7 })
	r.Tick(2)
	s, ok := r.Find("late")
	if !ok {
		t.Fatal("late series missing")
	}
	want := []int64{0, 0, 7}
	if len(s.Samples) != len(want) {
		t.Fatalf("samples = %d, want %d", len(s.Samples), len(want))
	}
	for i, w := range want {
		if s.Samples[i].Value != w {
			t.Errorf("late[%d] = %d, want %d", i, s.Samples[i].Value, w)
		}
	}
}

func TestNilRecorderIsNoOpAndAllocationFree(t *testing.T) {
	var r *Recorder
	r.Gauge("c", "n", "u", func() int64 { return 1 })
	r.Rate("c", "n", "u", func() int64 { return 1 })
	r.Tick(0)
	if r.Series() != nil || r.SampleCount() != 0 || r.Interval() != 0 {
		t.Fatal("nil recorder must report empty state")
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Tick(42)
	}); allocs != 0 {
		t.Fatalf("nil recorder Tick allocates %.1f/op, want 0", allocs)
	}
}

func TestEnabledOffCycleTickAllocationFree(t *testing.T) {
	r := New(Config{Interval: 1 << 30, MaxSamples: 64})
	r.Gauge("c", "n", "u", func() int64 { return 1 })
	r.Tick(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Tick(1) // before the next interval boundary: compare-and-return
	}); allocs != 0 {
		t.Fatalf("off-cycle Tick allocates %.1f/op, want 0", allocs)
	}
}

func TestWriteCSV(t *testing.T) {
	r := New(Config{Interval: 5, MaxSamples: 64})
	v := int64(0)
	r.Gauge("queue", "queue_occupancy", "events", func() int64 { return v })
	for c := uint64(0); c < 11; c++ {
		v = int64(c)
		r.Tick(c)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "cycle,component,series,unit,kind,value\n" +
		"0,queue,queue_occupancy,events,gauge,0\n" +
		"5,queue,queue_occupancy,events,gauge,5\n" +
		"10,queue,queue_occupancy,events,gauge,10\n"
	if buf.String() != want {
		t.Fatalf("CSV mismatch:\n got: %q\nwant: %q", buf.String(), want)
	}

	var nilRec *Recorder
	buf.Reset()
	if err := nilRec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "cycle,") {
		t.Fatalf("nil recorder CSV = %q, want header", buf.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := New(Config{Interval: 1000, MaxSamples: 64})
	v := int64(0)
	r.Gauge("queue", "queue_occupancy", "events", func() int64 { return v })
	r.Rate("memory", "dram_bytes", "bytes", func() int64 { return v * 64 })
	for c := uint64(0); c < 3000; c++ {
		v = int64(c)
		r.Tick(c)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, 1e9); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	meta, counters := 0, 0
	pids := map[int]string{}
	for _, ev := range tf.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
			pids[ev.PID] = ev.Args["name"].(string)
		case "C":
			counters++
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if meta != 2 {
		t.Fatalf("process_name events = %d, want one per component", meta)
	}
	if counters != 2*3 {
		t.Fatalf("counter events = %d, want 6", counters)
	}
	// Sample at cycle 2000 (1 GHz) must land at ts = 2 µs.
	for _, ev := range tf.TraceEvents {
		if ev.Phase == "C" && pids[ev.PID] == "queue" && ev.TS == 2.0 {
			return
		}
	}
	t.Fatal("no queue counter event at ts=2µs")
}
