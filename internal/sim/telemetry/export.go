package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteCSV writes every series in long form — one row per sample:
//
//	cycle,component,series,unit,kind,value
//
// Rows are grouped by series in registration order, chronological within a
// series, so output is deterministic. A disabled Recorder writes the header
// only.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cycle", "component", "series", "unit", "kind", "value"}); err != nil {
		return err
	}
	for _, s := range r.Series() {
		for _, p := range s.Samples {
			rec := []string{
				strconv.FormatUint(p.Cycle, 10),
				s.Component,
				s.Name,
				s.Unit,
				s.Kind.String(),
				strconv.FormatInt(p.Value, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// traceEvent is one Chrome trace_event object. Only the fields counter ("C")
// and metadata ("M") events need.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the series as Chrome trace_event JSON, loadable in
// chrome://tracing and https://ui.perfetto.dev: one process (track group)
// per component, one counter track ("ph":"C") per series. Timestamps are in
// microseconds of simulated time at the given clock (clockHz ≤ 0 defaults
// to 1 GHz, the paper's Table III clock).
func (r *Recorder) WriteChromeTrace(w io.Writer, clockHz float64) error {
	if clockHz <= 0 {
		clockHz = 1e9
	}
	usPerCycle := 1e6 / clockHz

	var events []traceEvent
	pids := map[string]int{}
	for _, s := range r.Series() {
		pid, ok := pids[s.Component]
		if !ok {
			pid = len(pids) + 1
			pids[s.Component] = pid
			events = append(events, traceEvent{
				Name:  "process_name",
				Phase: "M",
				PID:   pid,
				Args:  map[string]any{"name": s.Component},
			})
		}
		track := s.Name + " (" + s.Unit + ")"
		for _, p := range s.Samples {
			events = append(events, traceEvent{
				Name:  track,
				Phase: "C",
				TS:    float64(p.Cycle) * usPerCycle,
				PID:   pid,
				Args:  map[string]any{s.Unit: p.Value},
			})
		}
	}
	if events == nil {
		events = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
