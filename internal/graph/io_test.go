package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadEdgeListBasic(t *testing.T) {
	input := `# comment
% another comment
0 1
1 2

2 0
`
	g, err := ReadEdgeList(strings.NewReader(input), 0)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("got %d vertices %d edges, want 3/3", g.NumVertices(), g.NumEdges())
	}
	if g.Weighted() {
		t.Error("unweighted input produced weighted graph")
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 2.5\n1 0 0.5\n"), 0)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if !g.Weighted() {
		t.Fatal("weighted input produced unweighted graph")
	}
	if got := g.EdgeWeight(g.EdgeOffset(0)); got != 2.5 {
		t.Errorf("weight = %g, want 2.5", got)
	}
}

func TestReadEdgeListVertexHint(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 10 {
		t.Errorf("NumVertices = %d, want 10 (hint)", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",       // too few fields
		"x 1\n",     // bad src
		"0 y\n",     // bad dst
		"0 1 zzz\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	back, err := ReadEdgeList(&buf, g.NumVertices())
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if !reflect.DeepEqual(g.RowPtr, back.RowPtr) || !reflect.DeepEqual(g.Dst, back.Dst) {
		t.Error("text round trip changed the graph")
	}
}

func TestBinaryRoundTripUnweighted(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(g.RowPtr, back.RowPtr) || !reflect.DeepEqual(g.Dst, back.Dst) {
		t.Error("binary round trip changed the graph")
	}
	if back.Weighted() {
		t.Error("unweighted graph came back weighted")
	}
}

func TestBinaryRoundTripWeighted(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1, 0.25}, {2, 3, 4.5}}, true)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(g.Weight, back.Weight) {
		t.Errorf("weights changed: %v vs %v", g.Weight, back.Weight)
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("ReadBinary accepted zeroed header")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 8, 31, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("ReadBinary accepted truncation at %d bytes", cut)
		}
	}
}

// binContainer hand-assembles a binary container from raw header words and
// payload sections, for malformed-input tests.
func binContainer(t *testing.T, magic, flags, n, m uint64, sections ...any) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, h := range []uint64{magic, flags, n, m} {
		if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sections {
		if err := binary.Write(&buf, binary.LittleEndian, s); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestReadBinaryMalformed feeds ReadBinary hostile containers: headers
// promising absurd or overflowing counts, unknown flags, payloads that
// violate the CSR invariants. Every case must fail with a descriptive
// error — never panic, never attempt the announced allocation.
func TestReadBinaryMalformed(t *testing.T) {
	const magic = 0x47504353
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"vertex count overflows int", binContainer(t, magic, 0, 1<<62, 0), "exceeds format limit"},
		{"edge count overflows int", binContainer(t, magic, 0, 2, 1<<62), "exceeds format limit"},
		{"vertex count beyond limit", binContainer(t, magic, 0, maxBinaryVertices+1, 0), "exceeds format limit"},
		{"edge count beyond limit", binContainer(t, magic, 0, 2, maxBinaryEdges+1), "exceeds format limit"},
		{"unknown flag bits", binContainer(t, magic, 0b10, 1, 0, []uint64{0, 0}), "unknown header flags"},
		{"large count truncated payload", binContainer(t, magic, 0, 1<<20, 1<<20), "truncated"},
		{"row pointers not monotone", binContainer(t, magic, 0, 2, 1,
			[]uint64{0, 1, 0}, []uint32{0}), "monotone"},
		{"row pointer total mismatch", binContainer(t, magic, 0, 2, 1,
			[]uint64{0, 2, 9}, []uint32{0}), "want len(Dst)"},
		{"edge target out of range", binContainer(t, magic, 0, 2, 1,
			[]uint64{0, 1, 1}, []uint32{7}), "out-of-range destination"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("ReadBinary accepted malformed container")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadEdgeListHostile covers text inputs that previously could demand
// gigantic allocations or smuggle non-finite weights into the CSR.
func TestReadEdgeListHostile(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"0 4294967295\n", "exceeds format limit"},
		{"4294967295 0\n", "exceeds format limit"},
		{"0 1 NaN\n", "non-finite weight"},
		{"0 1 +Inf\n", "non-finite weight"},
		{"0 1 -Inf\n", "non-finite weight"},
	}
	for _, tc := range cases {
		_, err := ReadEdgeList(strings.NewReader(tc.in), 0)
		if err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ReadEdgeList(%q) error %q does not mention %q", tc.in, err, tc.want)
		}
	}
}

// TestPropertyBinaryRoundTrip round-trips random graphs through the binary
// container.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16, weighted bool) bool {
		n := int(nRaw)%64 + 1
		m := int(mRaw) % 512
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(n, randomEdges(rng, n, m), weighted)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g.RowPtr, back.RowPtr) &&
			reflect.DeepEqual(g.Dst, back.Dst) &&
			reflect.DeepEqual(g.Weight, back.Weight)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// streamOnly hides the Seeker interface of its underlying reader, forcing
// ReadEdgeList onto its single-pass path.
type streamOnly struct{ r io.Reader }

func (s streamOnly) Read(p []byte) (int, error) { return s.r.Read(p) }

// TestReadEdgeListPrescanEquivalence pins that the seekable pre-scan path
// (count + max-id first pass, then parse into a pre-sized slice) produces
// exactly the graph the single-pass path does, including on inputs with
// comments, blank lines, and weights.
func TestReadEdgeListPrescanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sb strings.Builder
	sb.WriteString("# header comment\n\n")
	for i := 0; i < 4000; i++ {
		if i%97 == 0 {
			sb.WriteString("% interior comment\n")
		}
		fmt.Fprintf(&sb, "%d %d %g\n", rng.Intn(500), rng.Intn(500), rng.Float64())
	}
	input := sb.String()

	seeked, err := ReadEdgeList(strings.NewReader(input), 0)
	if err != nil {
		t.Fatalf("seekable: %v", err)
	}
	streamed, err := ReadEdgeList(streamOnly{strings.NewReader(input)}, 0)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !reflect.DeepEqual(seeked.RowPtr, streamed.RowPtr) ||
		!reflect.DeepEqual(seeked.Dst, streamed.Dst) ||
		!reflect.DeepEqual(seeked.Weight, streamed.Weight) {
		t.Fatal("seekable and single-pass parses diverge")
	}

	// A reader whose position moved before the call must rewind to that
	// position, not offset zero.
	r := strings.NewReader("garbage\n0 1\n1 0\n")
	if _, err := r.Seek(8, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	g, err := ReadEdgeList(r, 0)
	if err != nil {
		t.Fatalf("offset start: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("offset start parsed %d edges, want 2", g.NumEdges())
	}
}

// benchEdgeList builds a deterministic ~200k-line text edge list once per
// benchmark binary.
var benchEdgeList = func() string {
	rng := rand.New(rand.NewSource(12))
	var sb strings.Builder
	for i := 0; i < 200_000; i++ {
		fmt.Fprintf(&sb, "%d %d\n", rng.Intn(50_000), rng.Intn(50_000))
	}
	return sb.String()
}()

// BenchmarkReadEdgeListSeekable measures the pre-sized two-pass parse; its
// single-pass sibling below is the regression baseline the pre-scan is
// meant to beat on allocations.
func BenchmarkReadEdgeListSeekable(b *testing.B) {
	b.SetBytes(int64(len(benchEdgeList)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadEdgeList(strings.NewReader(benchEdgeList), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadEdgeListStream(b *testing.B) {
	b.SetBytes(int64(len(benchEdgeList)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadEdgeList(streamOnly{strings.NewReader(benchEdgeList)}, 0); err != nil {
			b.Fatal(err)
		}
	}
}
