package gen

import (
	"sync"

	"graphpulse/internal/graph"
)

// Cache memoizes generated dataset graphs so a sweep builds each Table IV
// stand-in once per (spec, tier) and shares it read-only across every
// consumer. Besides the base graph it can hold named derived variants
// (e.g. a relabeled copy for sliced execution, or the inbound-normalized
// copy Adsorption runs on), each built at most once.
//
// All methods are safe for concurrent use; concurrent requests for the
// same entry block until the single build completes. A build function must
// not request its own key (that would self-deadlock), but it may request
// other keys — derived variants typically start from Generate.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
}

type cacheKey struct {
	abbrev  string
	tier    Tier
	variant string
}

type cacheEntry struct {
	once sync.Once
	g    *graph.CSR
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

// Default is the shared process-wide cache. Dataset generation is
// deterministic, so there is never a reason to regenerate; everything that
// consumes Table IV workloads should go through it.
var Default = NewCache()

// Get returns the graph stored under (spec, tier, variant), building it
// with build on first use. Both the graph and a build error are memoized:
// generation is deterministic, so retrying cannot change the outcome.
func (c *Cache) Get(spec DatasetSpec, t Tier, variant string, build func() (*graph.CSR, error)) (*graph.CSR, error) {
	key := cacheKey{spec.Abbrev, t, variant}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[cacheKey]*cacheEntry)
	}
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g, e.err = build() })
	return e.g, e.err
}

// Generate returns the memoized base graph for (spec, tier); it is
// spec.Generate computed at most once per cache.
func (c *Cache) Generate(spec DatasetSpec, t Tier) (*graph.CSR, error) {
	return c.Get(spec, t, "", func() (*graph.CSR, error) { return spec.Generate(t) })
}

// Len reports how many entries (base graphs plus variants) are resident.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every entry, forcing regeneration on next use. Intended for
// tests and for releasing full-tier graphs between sweeps.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = nil
}
