package gen

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"graphpulse/internal/graph"
)

func TestCacheGenerateMemoizes(t *testing.T) {
	c := NewCache()
	spec := Datasets[0]
	g1, err := c.Generate(spec, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Generate(spec, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("second Generate returned a different graph instance")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
	// A different tier is a different entry.
	g3, err := c.Generate(spec, Mini)
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 {
		t.Error("tiers share a graph instance")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
}

func TestCacheConcurrentBuildsOnce(t *testing.T) {
	c := NewCache()
	spec := Datasets[0]
	var builds atomic.Int32
	var wg sync.WaitGroup
	graphs := make([]*graph.CSR, 16)
	for i := range graphs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := c.Get(spec, Tiny, "variant", func() (*graph.CSR, error) {
				builds.Add(1)
				return spec.Generate(Tiny)
			})
			if err != nil {
				t.Error(err)
			}
			graphs[i] = g
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
	for i := 1; i < len(graphs); i++ {
		if graphs[i] != graphs[0] {
			t.Fatalf("goroutine %d saw a different graph instance", i)
		}
	}
}

func TestCacheVariantsAreDistinct(t *testing.T) {
	c := NewCache()
	spec := Datasets[0]
	base, err := c.Generate(spec, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// A derived variant may build from the base entry without deadlocking.
	norm, err := c.Get(spec, Tiny, "inbound", func() (*graph.CSR, error) {
		g, err := c.Generate(spec, Tiny)
		if err != nil {
			return nil, err
		}
		return g.NormalizeInbound(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if norm == base {
		t.Error("variant aliases the base graph")
	}
	again, err := c.Get(spec, Tiny, "inbound", func() (*graph.CSR, error) {
		t.Error("variant rebuilt")
		return nil, nil
	})
	if err != nil || again != norm {
		t.Errorf("variant not memoized: %v %v", again, err)
	}
}

func TestCacheMemoizesErrors(t *testing.T) {
	c := NewCache()
	spec := Datasets[0]
	boom := errors.New("boom")
	builds := 0
	for i := 0; i < 2; i++ {
		_, err := c.Get(spec, Tiny, "bad", func() (*graph.CSR, error) {
			builds++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v, want boom", i, err)
		}
	}
	if builds != 1 {
		t.Errorf("failing build ran %d times, want 1", builds)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("after Reset cache holds %d entries", c.Len())
	}
}
