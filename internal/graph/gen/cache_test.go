package gen

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphpulse/internal/graph"
)

func TestCacheGenerateMemoizes(t *testing.T) {
	c := NewCache()
	spec := Datasets[0]
	g1, err := c.Generate(spec, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Generate(spec, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("second Generate returned a different graph instance")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
	// A different tier is a different entry.
	g3, err := c.Generate(spec, Mini)
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 {
		t.Error("tiers share a graph instance")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
}

func TestCacheConcurrentBuildsOnce(t *testing.T) {
	c := NewCache()
	spec := Datasets[0]
	var builds atomic.Int32
	var wg sync.WaitGroup
	graphs := make([]*graph.CSR, 16)
	for i := range graphs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := c.Get(spec, Tiny, "variant", func() (*graph.CSR, error) {
				builds.Add(1)
				return spec.Generate(Tiny)
			})
			if err != nil {
				t.Error(err)
			}
			graphs[i] = g
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
	for i := 1; i < len(graphs); i++ {
		if graphs[i] != graphs[0] {
			t.Fatalf("goroutine %d saw a different graph instance", i)
		}
	}
}

// TestCacheConcurrentStress hammers one cache from many goroutines across
// many distinct keys simultaneously (run under -race in CI). A start
// barrier releases all goroutines at once and each build sleeps briefly, so
// the build-once window is held open while every waiter for the key is
// inside Get; each key must build exactly once and all of its waiters must
// observe the same instance.
func TestCacheConcurrentStress(t *testing.T) {
	c := NewCache()
	spec := Datasets[0]
	const (
		keys       = 12
		waiters    = 24
		iterations = 3
	)
	variants := make([]string, keys)
	for k := range variants {
		variants[k] = fmt.Sprintf("stress-%d", k)
	}
	builds := make([]atomic.Int32, keys)
	got := make([][]*graph.CSR, keys)
	for k := range got {
		got[k] = make([]*graph.CSR, waiters)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for w := 0; w < waiters; w++ {
			wg.Add(1)
			go func(k, w int) {
				defer wg.Done()
				<-start
				for i := 0; i < iterations; i++ {
					g, err := c.Get(spec, Tiny, variants[k], func() (*graph.CSR, error) {
						builds[k].Add(1)
						time.Sleep(time.Millisecond) // widen the build window
						return spec.Generate(Tiny)
					})
					if err != nil {
						t.Error(err)
						return
					}
					got[k][w] = g
				}
			}(k, w)
		}
	}
	close(start)
	wg.Wait()
	for k := 0; k < keys; k++ {
		if n := builds[k].Load(); n != 1 {
			t.Errorf("key %d built %d times, want 1", k, n)
		}
		for w := 1; w < waiters; w++ {
			if got[k][w] != got[k][0] {
				t.Errorf("key %d waiter %d saw a different instance", k, w)
			}
		}
	}
	if c.Len() != keys {
		t.Errorf("cache holds %d entries, want %d", c.Len(), keys)
	}
	// Concurrent use of the read-side APIs must also be race-free while
	// entries exist.
	var rg sync.WaitGroup
	for i := 0; i < 8; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			_ = c.Len()
		}()
	}
	rg.Wait()
}

func TestCacheVariantsAreDistinct(t *testing.T) {
	c := NewCache()
	spec := Datasets[0]
	base, err := c.Generate(spec, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// A derived variant may build from the base entry without deadlocking.
	norm, err := c.Get(spec, Tiny, "inbound", func() (*graph.CSR, error) {
		g, err := c.Generate(spec, Tiny)
		if err != nil {
			return nil, err
		}
		return g.NormalizeInbound(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if norm == base {
		t.Error("variant aliases the base graph")
	}
	again, err := c.Get(spec, Tiny, "inbound", func() (*graph.CSR, error) {
		t.Error("variant rebuilt")
		return nil, nil
	})
	if err != nil || again != norm {
		t.Errorf("variant not memoized: %v %v", again, err)
	}
}

func TestCacheMemoizesErrors(t *testing.T) {
	c := NewCache()
	spec := Datasets[0]
	boom := errors.New("boom")
	builds := 0
	for i := 0; i < 2; i++ {
		_, err := c.Get(spec, Tiny, "bad", func() (*graph.CSR, error) {
			builds++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v, want boom", i, err)
		}
	}
	if builds != 1 {
		t.Errorf("failing build ran %d times, want 1", builds)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("after Reset cache holds %d entries", c.Len())
	}
}
