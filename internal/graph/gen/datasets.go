package gen

import (
	"fmt"

	"graphpulse/internal/graph"
)

// Tier selects the size class of a dataset stand-in. The paper's full-scale
// datasets range from 5M to 1.46B edges; simulating full Twitter at cycle
// level is a multi-day run, so benchmarks default to Mini and tests to Tiny.
// Shapes (who wins, by what factor) are preserved across tiers because the
// degree distribution and vertex/edge ratios are.
type Tier int

const (
	// Tiny is for unit/integration tests (sub-second runs).
	Tiny Tier = iota
	// Mini is the default benchmark tier (seconds per run).
	Mini
	// Full matches the paper's dataset sizes (hours per run; TW-class
	// requires ~16 GB RAM just for the CSR).
	Full
)

func (t Tier) String() string {
	switch t {
	case Tiny:
		return "tiny"
	case Mini:
		return "mini"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// DatasetSpec describes one of the paper's Table IV workloads and the R-MAT
// parameters of its synthetic stand-in.
type DatasetSpec struct {
	// Name and Abbrev follow Table IV ("LiveJournal(LJ)").
	Name   string
	Abbrev string
	// PaperVertices/PaperEdges are the sizes reported in Table IV.
	PaperVertices int64
	PaperEdges    int64
	// Description matches Table IV.
	Description string

	// EdgeFactor is edges per vertex for the stand-in (≈ paper's ratio).
	EdgeFactor int
	// Skew selects the R-MAT 'a' quadrant probability; larger = more
	// power-law skew. b=c=(1-a-d)/2 with d derived.
	Skew float64
	// scales per tier (log2 vertex count).
	tinyScale, miniScale, fullScale int
}

// Datasets lists the five Table IV workloads in paper order.
var Datasets = []DatasetSpec{
	{
		Name: "Web-Google", Abbrev: "WG",
		PaperVertices: 870_000, PaperEdges: 5_100_000,
		Description: "Google Web Graph",
		EdgeFactor:  6, Skew: 0.57,
		tinyScale: 12, miniScale: 16, fullScale: 20,
	},
	{
		Name: "Facebook", Abbrev: "FB",
		PaperVertices: 3_010_000, PaperEdges: 47_330_000,
		Description: "Facebook Social Net.",
		EdgeFactor:  16, Skew: 0.55,
		tinyScale: 12, miniScale: 16, fullScale: 21,
	},
	{
		Name: "Wikipedia", Abbrev: "WK",
		PaperVertices: 3_560_000, PaperEdges: 45_030_000,
		Description: "Wikipedia Page Links",
		EdgeFactor:  13, Skew: 0.60,
		tinyScale: 12, miniScale: 16, fullScale: 22,
	},
	{
		Name: "LiveJournal", Abbrev: "LJ",
		PaperVertices: 4_840_000, PaperEdges: 68_990_000,
		Description: "LiveJournal Social Net.",
		EdgeFactor:  14, Skew: 0.57,
		tinyScale: 13, miniScale: 17, fullScale: 22,
	},
	{
		Name: "Twitter", Abbrev: "TW",
		PaperVertices: 41_650_000, PaperEdges: 1_460_000_000,
		Description: "Twitter Follower Graph",
		EdgeFactor:  35, Skew: 0.62,
		tinyScale: 13, miniScale: 17, fullScale: 25,
	},
}

// DatasetByAbbrev returns the spec with the given Table IV abbreviation.
func DatasetByAbbrev(abbrev string) (DatasetSpec, error) {
	for _, d := range Datasets {
		if d.Abbrev == abbrev {
			return d, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("gen: unknown dataset %q", abbrev)
}

// Scale returns the log2 vertex count used at the given tier.
func (d DatasetSpec) Scale(t Tier) int {
	switch t {
	case Tiny:
		return d.tinyScale
	case Mini:
		return d.miniScale
	default:
		return d.fullScale
	}
}

// Generate builds the dataset stand-in at the given tier. Graphs are always
// weighted so that one generation serves every algorithm (SSSP and
// Adsorption need weights; the others ignore them). Generation is
// deterministic: the seed is derived from the abbreviation and tier.
func (d DatasetSpec) Generate(t Tier) (*graph.CSR, error) {
	seed := int64(17)
	for _, c := range d.Abbrev {
		seed = seed*131 + int64(c)
	}
	seed = seed*131 + int64(t)
	a := d.Skew
	dq := 0.05
	b := (1 - a - dq) / 2
	return RMAT(RMATParams{
		A: a, B: b, C: b, D: dq,
		Scale:       d.Scale(t),
		EdgeFactor:  d.EdgeFactor,
		Weighted:    true,
		Seed:        seed,
		NoiseAmount: 0.1,
	})
}
