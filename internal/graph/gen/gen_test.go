package gen

import (
	"testing"

	"graphpulse/internal/graph"
)

func TestRMATBasic(t *testing.T) {
	p := RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8, Seed: 42}
	g, err := RMAT(p)
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	if got, want := g.NumVertices(), 1024; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 1024*8; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	p := RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 8, EdgeFactor: 4, Seed: 7, NoiseAmount: 0.1}
	g1, err := RMAT(p)
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	g2, err := RMAT(p)
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range g1.Dst {
		if g1.Dst[i] != g2.Dst[i] {
			t.Fatalf("same seed produced different graphs at edge %d", i)
		}
	}
}

func TestRMATSeedChangesGraph(t *testing.T) {
	p := RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 8, EdgeFactor: 4, Seed: 7}
	g1, _ := RMAT(p)
	p.Seed = 8
	g2, _ := RMAT(p)
	same := true
	for i := range g1.Dst {
		if g1.Dst[i] != g2.Dst[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRMATSkew(t *testing.T) {
	// A skewed R-MAT graph must have a heavy tail: max degree well above the
	// average. A uniform random graph of the same size would not.
	p := RMATParams{A: 0.65, B: 0.15, C: 0.15, D: 0.05, Scale: 12, EdgeFactor: 8, Seed: 3}
	g, err := RMAT(p)
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	s := graph.ComputeStats(g)
	if float64(s.MaxOutDegree) < 10*s.AvgOutDegree {
		t.Errorf("R-MAT graph not skewed: max degree %d vs avg %.1f", s.MaxOutDegree, s.AvgOutDegree)
	}
}

func TestRMATWeighted(t *testing.T) {
	p := RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 6, EdgeFactor: 4, Weighted: true, Seed: 1}
	g, err := RMAT(p)
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	if !g.Weighted() {
		t.Fatal("weighted RMAT produced unweighted graph")
	}
	for i, w := range g.Weight {
		if w <= 0 || w > 1 {
			t.Fatalf("edge %d weight %g out of (0,1]", i, w)
		}
	}
}

func TestRMATValidation(t *testing.T) {
	bad := []RMATParams{
		{A: 0.5, B: 0.5, C: 0.5, D: 0.5, Scale: 4, EdgeFactor: 1}, // sum != 1
		{A: 0.25, B: 0.25, C: 0.25, D: 0.25, Scale: 0, EdgeFactor: 1},
		{A: 0.25, B: 0.25, C: 0.25, D: 0.25, Scale: 4, EdgeFactor: 0},
	}
	for i, p := range bad {
		if _, err := RMAT(p); err == nil {
			t.Errorf("case %d: RMAT accepted invalid params %+v", i, p)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 500, false, 9)
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	if g.NumVertices() != 100 || g.NumEdges() != 500 {
		t.Errorf("got %d/%d, want 100/500", g.NumVertices(), g.NumEdges())
	}
	if _, err := ErdosRenyi(0, 5, false, 9); err == nil {
		t.Error("ErdosRenyi accepted n=0")
	}
}

func TestGrid2D(t *testing.T) {
	g, err := Grid2D(4, 3, false, 1)
	if err != nil {
		t.Fatalf("Grid2D: %v", err)
	}
	if g.NumVertices() != 12 {
		t.Errorf("NumVertices = %d, want 12", g.NumVertices())
	}
	// Interior vertex (1,1) = id 5 has 4 neighbors.
	if got := g.OutDegree(5); got != 4 {
		t.Errorf("interior degree = %d, want 4", got)
	}
	// Corner (0,0) has 2.
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if _, err := Grid2D(0, 3, false, 1); err == nil {
		t.Error("Grid2D accepted width=0")
	}
}

func TestChain(t *testing.T) {
	g, err := Chain(5, false)
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	for v := 0; v < 4; v++ {
		n := g.Neighbors(graph.VertexID(v))
		if len(n) != 1 || n[0] != graph.VertexID(v+1) {
			t.Errorf("Neighbors(%d) = %v", v, n)
		}
	}
}

func TestStar(t *testing.T) {
	g, err := Star(10)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	if got := g.OutDegree(0); got != 9 {
		t.Errorf("hub degree = %d, want 9", got)
	}
	for v := 1; v < 10; v++ {
		if got := g.OutDegree(graph.VertexID(v)); got != 1 {
			t.Errorf("spoke %d degree = %d, want 1", v, got)
		}
	}
}

func TestDatasetSpecs(t *testing.T) {
	if len(Datasets) != 5 {
		t.Fatalf("Datasets has %d entries, want 5 (Table IV)", len(Datasets))
	}
	wantOrder := []string{"WG", "FB", "WK", "LJ", "TW"}
	for i, d := range Datasets {
		if d.Abbrev != wantOrder[i] {
			t.Errorf("dataset %d = %s, want %s", i, d.Abbrev, wantOrder[i])
		}
		if d.Scale(Tiny) >= d.Scale(Mini) || d.Scale(Mini) > d.Scale(Full) {
			t.Errorf("%s: tier scales not monotone: %d/%d/%d",
				d.Abbrev, d.Scale(Tiny), d.Scale(Mini), d.Scale(Full))
		}
	}
}

func TestDatasetByAbbrev(t *testing.T) {
	d, err := DatasetByAbbrev("LJ")
	if err != nil {
		t.Fatalf("DatasetByAbbrev: %v", err)
	}
	if d.Name != "LiveJournal" {
		t.Errorf("Name = %s", d.Name)
	}
	if _, err := DatasetByAbbrev("XX"); err == nil {
		t.Error("DatasetByAbbrev accepted unknown abbreviation")
	}
}

func TestDatasetGenerateTiny(t *testing.T) {
	for _, d := range Datasets {
		g, err := d.Generate(Tiny)
		if err != nil {
			t.Fatalf("%s Generate: %v", d.Abbrev, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", d.Abbrev, err)
		}
		if !g.Weighted() {
			t.Errorf("%s: dataset stand-ins must be weighted", d.Abbrev)
		}
		wantV := 1 << d.Scale(Tiny)
		if g.NumVertices() != wantV {
			t.Errorf("%s: vertices = %d, want %d", d.Abbrev, g.NumVertices(), wantV)
		}
		if g.NumEdges() != wantV*d.EdgeFactor {
			t.Errorf("%s: edges = %d, want %d", d.Abbrev, g.NumEdges(), wantV*d.EdgeFactor)
		}
	}
}

func TestTierString(t *testing.T) {
	if Tiny.String() != "tiny" || Mini.String() != "mini" || Full.String() != "full" {
		t.Error("Tier.String mismatch")
	}
	if Tier(99).String() == "" {
		t.Error("unknown tier should still format")
	}
}
