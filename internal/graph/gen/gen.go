// Package gen generates synthetic graph workloads.
//
// The paper evaluates on five real-world graphs (Table IV): Web-Google,
// Facebook, Wikipedia, LiveJournal, and Twitter. Those datasets are external
// downloads; this repository substitutes deterministic R-MAT graphs
// calibrated to each dataset's vertex count, edge count and degree skew
// (see DESIGN.md §4). All generators are deterministic given a seed, so
// every experiment is exactly reproducible.
package gen

import (
	"fmt"
	"math/rand"

	"graphpulse/internal/graph"
)

// RMATParams configures an R-MAT (recursive matrix) generator. The four
// quadrant probabilities must sum to 1. Real-world social/web graphs are
// well modeled by a≈0.57, b≈c≈0.19, d≈0.05 (Graph500 parameters).
type RMATParams struct {
	A, B, C, D float64
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is edges per vertex.
	EdgeFactor int
	// Weighted attaches uniform (0,1] weights to edges.
	Weighted bool
	// Seed drives the deterministic PRNG.
	Seed int64
	// NoiseAmount perturbs quadrant probabilities per level to avoid
	// artifact striping; 0.1 is typical, 0 disables.
	NoiseAmount float64
}

// Validate checks the parameters.
func (p RMATParams) Validate() error {
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("gen: RMAT quadrants sum to %g, want 1", sum)
	}
	if p.Scale < 1 || p.Scale > 31 {
		return fmt.Errorf("gen: RMAT scale %d out of range [1,31]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return fmt.Errorf("gen: RMAT edge factor %d < 1", p.EdgeFactor)
	}
	return nil
}

// RMAT generates a directed R-MAT graph with 2^Scale vertices and
// 2^Scale*EdgeFactor edges. The vertex ids are shuffled so that high-degree
// vertices are not clustered at low ids (matching how real datasets label
// vertices).
func RMAT(p RMATParams) (*graph.CSR, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := 1 << p.Scale
	m := n * p.EdgeFactor
	edges := make([]graph.Edge, m)
	for i := range edges {
		src, dst := rmatEdge(rng, p)
		e := graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst), Weight: 1}
		if p.Weighted {
			e.Weight = float32(rng.Float64()*0.99 + 0.01)
		}
		edges[i] = e
	}
	// Shuffle vertex labels for realistic id locality.
	perm := rng.Perm(n)
	for i := range edges {
		edges[i].Src = graph.VertexID(perm[edges[i].Src])
		edges[i].Dst = graph.VertexID(perm[edges[i].Dst])
	}
	g, err := graph.FromEdges(n, edges, p.Weighted)
	if err != nil {
		return nil, err
	}
	return g.SortNeighbors(), nil
}

func rmatEdge(rng *rand.Rand, p RMATParams) (src, dst int) {
	a, b, c := p.A, p.B, p.C
	for level := 0; level < p.Scale; level++ {
		aa, bb, cc := a, b, c
		if p.NoiseAmount > 0 {
			// Multiplicative noise per level, renormalized.
			na := aa * (1 - p.NoiseAmount/2 + p.NoiseAmount*rng.Float64())
			nb := bb * (1 - p.NoiseAmount/2 + p.NoiseAmount*rng.Float64())
			nc := cc * (1 - p.NoiseAmount/2 + p.NoiseAmount*rng.Float64())
			nd := (1 - aa - bb - cc) * (1 - p.NoiseAmount/2 + p.NoiseAmount*rng.Float64())
			tot := na + nb + nc + nd
			aa, bb, cc = na/tot, nb/tot, nc/tot
		}
		r := rng.Float64()
		src <<= 1
		dst <<= 1
		switch {
		case r < aa:
			// top-left: no bits set
		case r < aa+bb:
			dst |= 1
		case r < aa+bb+cc:
			src |= 1
		default:
			src |= 1
			dst |= 1
		}
	}
	return src, dst
}

// ErdosRenyi generates a directed G(n, m) random graph with exactly m edges
// chosen uniformly (with replacement, so rare duplicates possible).
func ErdosRenyi(n, m int, weighted bool, seed int64) (*graph.CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: n=%d < 1", n)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		e := graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: 1,
		}
		if weighted {
			e.Weight = float32(rng.Float64()*0.99 + 0.01)
		}
		edges[i] = e
	}
	g, err := graph.FromEdges(n, edges, weighted)
	if err != nil {
		return nil, err
	}
	return g.SortNeighbors(), nil
}

// Grid2D generates a width×height 4-neighbor grid (each interior vertex has
// edges to N/S/E/W). Grids are the adversarial low-skew, high-diameter case
// for asynchronous engines; road networks behave like them.
func Grid2D(width, height int, weighted bool, seed int64) (*graph.CSR, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("gen: grid %dx%d invalid", width, height)
	}
	rng := rand.New(rand.NewSource(seed))
	n := width * height
	edges := make([]graph.Edge, 0, 4*n)
	id := func(x, y int) graph.VertexID { return graph.VertexID(y*width + x) }
	w := func() float32 {
		if weighted {
			return float32(rng.Float64()*0.99 + 0.01)
		}
		return 1
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				edges = append(edges,
					graph.Edge{Src: id(x, y), Dst: id(x+1, y), Weight: w()},
					graph.Edge{Src: id(x+1, y), Dst: id(x, y), Weight: w()})
			}
			if y+1 < height {
				edges = append(edges,
					graph.Edge{Src: id(x, y), Dst: id(x, y+1), Weight: w()},
					graph.Edge{Src: id(x, y+1), Dst: id(x, y), Weight: w()})
			}
		}
	}
	return graph.FromEdges(n, edges, weighted)
}

// Chain generates a directed path 0→1→…→n-1; the worst case for lookahead
// (every event depends on the previous round) and a useful test topology.
func Chain(n int, weighted bool) (*graph.CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: chain n=%d < 1", n)
	}
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v + 1), Weight: 1})
	}
	return graph.FromEdges(n, edges, weighted)
}

// Star generates a hub with n-1 spokes (hub→spoke); the extreme coalescing
// workload, since every spoke event targets distinct vertices but all
// reactivations funnel through the hub.
func Star(n int) (*graph.CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: star n=%d < 1", n)
	}
	edges := make([]graph.Edge, 0, 2*(n-1))
	for v := 1; v < n; v++ {
		edges = append(edges,
			graph.Edge{Src: 0, Dst: graph.VertexID(v), Weight: 1},
			graph.Edge{Src: graph.VertexID(v), Dst: 0, Weight: 1})
	}
	return graph.FromEdges(n, edges, false)
}
