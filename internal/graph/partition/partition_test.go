package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

func TestSingleSlice(t *testing.T) {
	g, err := gen.Chain(100, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Contiguous(g, 1000, 2)
	if err != nil {
		t.Fatalf("Contiguous: %v", err)
	}
	if p.NumSlices() != 1 {
		t.Fatalf("NumSlices = %d, want 1", p.NumSlices())
	}
	if p.CutEdges != 0 {
		t.Errorf("CutEdges = %d, want 0", p.CutEdges)
	}
	if p.Slices[0].Lo != 0 || p.Slices[0].Hi != 100 {
		t.Errorf("slice = %+v", p.Slices[0])
	}
}

func TestSliceBoundRespected(t *testing.T) {
	g, err := gen.ErdosRenyi(1000, 5000, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, bound := range []int{100, 333, 999, 1000} {
		p, err := Contiguous(g, bound, 3)
		if err != nil {
			t.Fatalf("Contiguous(%d): %v", bound, err)
		}
		for i, s := range p.Slices {
			if s.NumVertices() > bound {
				t.Errorf("bound %d: slice %d has %d vertices", bound, i, s.NumVertices())
			}
		}
	}
}

func TestSlicesCoverAllVerticesExactlyOnce(t *testing.T) {
	g, err := gen.ErdosRenyi(777, 3000, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Contiguous(g, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]int, g.NumVertices())
	for _, s := range p.Slices {
		for v := s.Lo; v < s.Hi; v++ {
			covered[v]++
		}
	}
	for v, c := range covered {
		if c != 1 {
			t.Fatalf("vertex %d covered %d times", v, c)
		}
	}
}

func TestSliceOf(t *testing.T) {
	g, err := gen.Chain(100, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Contiguous(g, 34, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 100; v++ {
		idx := p.SliceOf(graph.VertexID(v))
		if idx < 0 || !p.Slices[idx].Contains(graph.VertexID(v)) {
			t.Fatalf("SliceOf(%d) = %d, slice %+v", v, idx, p.Slices[idx])
		}
	}
}

func TestChainCutIsSliceCountMinusOne(t *testing.T) {
	// A chain cut into k contiguous slices severs exactly k-1 edges, no
	// matter where the boundaries land: the minimal possible cut.
	g, err := gen.Chain(1000, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Contiguous(g, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.NumSlices() - 1; p.CutEdges != want {
		t.Errorf("CutEdges = %d, want %d", p.CutEdges, want)
	}
}

func TestRefinementDoesNotIncreaseCut(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	p0, err := Contiguous(g, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Contiguous(g, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.CutEdges > p0.CutEdges {
		t.Errorf("refinement increased cut: %d -> %d", p0.CutEdges, p3.CutEdges)
	}
}

func TestContiguousRejectsBadBound(t *testing.T) {
	g, _ := gen.Chain(10, false)
	if _, err := Contiguous(g, 0, 0); err == nil {
		t.Error("Contiguous accepted maxVertices=0")
	}
	if _, err := Contiguous(g, -5, 0); err == nil {
		t.Error("Contiguous accepted negative bound")
	}
}

func TestEmptyGraphPartition(t *testing.T) {
	g, err := graph.FromEdges(0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Contiguous(g, 10, 1)
	if err != nil {
		t.Fatalf("Contiguous: %v", err)
	}
	if p.NumSlices() != 0 {
		t.Errorf("NumSlices = %d, want 0", p.NumSlices())
	}
}

func TestDegreeOrderPermutationIsPermutation(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 9, EdgeFactor: 6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	perm := DegreeOrderPermutation(g)
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if int(p) >= len(perm) || seen[p] {
			t.Fatalf("not a permutation: %d repeated or out of range", p)
		}
		seen[p] = true
	}
}

func TestDegreeOrderReducesCutOnClusteredGraph(t *testing.T) {
	// Build a graph of two dense communities whose vertex ids interleave;
	// a contiguous split on raw ids cuts half the edges, while the BFS
	// relabeling should group each community and shrink the cut.
	rng := rand.New(rand.NewSource(42))
	const n = 400
	var edges []graph.Edge
	for i := 0; i < 4000; i++ {
		comm := rng.Intn(2)
		// Community members are ids with matching parity: interleaved.
		u := graph.VertexID(rng.Intn(n/2)*2 + comm)
		v := graph.VertexID(rng.Intn(n/2)*2 + comm)
		edges = append(edges, graph.Edge{Src: u, Dst: v, Weight: 1})
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Contiguous(g, n/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	perm := DegreeOrderPermutation(g)
	rg, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Contiguous(rg, n/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after.CutEdges >= before.CutEdges {
		t.Errorf("BFS relabel did not reduce cut: before=%d after=%d", before.CutEdges, after.CutEdges)
	}
}

// TestPropertySlicesPartition checks on random graphs that Contiguous always
// yields a cover of disjoint contiguous slices within the bound.
func TestPropertySlicesPartition(t *testing.T) {
	f := func(seed int64, nRaw uint8, boundRaw uint8) bool {
		n := int(nRaw)%200 + 1
		bound := int(boundRaw)%n + 1
		g, err := gen.ErdosRenyi(n, n*4, false, seed)
		if err != nil {
			return false
		}
		p, err := Contiguous(g, bound, 2)
		if err != nil {
			return false
		}
		prev := graph.VertexID(0)
		for _, s := range p.Slices {
			if s.Lo != prev || s.Hi < s.Lo || s.NumVertices() > bound {
				return false
			}
			prev = s.Hi
		}
		return int(prev) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSplitRejectsBadParts(t *testing.T) {
	g, _ := gen.Chain(10, false)
	if _, err := Split(g, 0, 0); err == nil {
		t.Error("Split accepted parts=0")
	}
	if _, err := Split(g, -3, 0); err == nil {
		t.Error("Split accepted negative parts")
	}
}

func TestSplitEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Split(g, 8, 1)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if p.NumSlices() != 0 || p.CutEdges != 0 {
		t.Errorf("empty graph: slices=%d cut=%d, want 0/0", p.NumSlices(), p.CutEdges)
	}
}

func TestSplitSingleVertex(t *testing.T) {
	g, err := graph.FromEdges(1, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 16} {
		p, err := Split(g, parts, 1)
		if err != nil {
			t.Fatalf("Split(parts=%d): %v", parts, err)
		}
		if p.NumSlices() != 1 {
			t.Fatalf("parts=%d: NumSlices = %d, want 1", parts, p.NumSlices())
		}
		if s := p.Slices[0]; s.Lo != 0 || s.Hi != 1 {
			t.Errorf("parts=%d: slice = %+v, want [0,1)", parts, s)
		}
		if got := p.SliceOf(0); got != 0 {
			t.Errorf("parts=%d: SliceOf(0) = %d, want 0", parts, got)
		}
	}
}

func TestSplitMorePartsThanVertices(t *testing.T) {
	// parts clamps to the vertex count: every slice holds exactly one vertex
	// and the cover is still exact.
	g, err := gen.Chain(5, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Split(g, 64, 1)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if p.NumSlices() != 5 {
		t.Fatalf("NumSlices = %d, want 5", p.NumSlices())
	}
	for i, s := range p.Slices {
		if s.NumVertices() != 1 || s.Lo != graph.VertexID(i) {
			t.Errorf("slice %d = %+v, want single vertex %d", i, s, i)
		}
	}
	// A chain split into n singleton slices cuts every edge.
	if p.CutEdges != 4 {
		t.Errorf("CutEdges = %d, want 4", p.CutEdges)
	}
}

func TestSplitIsolatedVerticesOnly(t *testing.T) {
	// A graph with vertices but no edges: any split is valid with zero cut,
	// and refinement must not move boundaries below/above neighbors.
	g, err := graph.FromEdges(12, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 3, 5, 12} {
		p, err := Split(g, parts, 2)
		if err != nil {
			t.Fatalf("Split(parts=%d): %v", parts, err)
		}
		if p.NumSlices() == 0 || p.NumSlices() > parts {
			t.Fatalf("parts=%d: NumSlices = %d", parts, p.NumSlices())
		}
		if p.CutEdges != 0 {
			t.Errorf("parts=%d: CutEdges = %d, want 0", parts, p.CutEdges)
		}
		prev := graph.VertexID(0)
		for _, s := range p.Slices {
			if s.Lo != prev || s.Hi < s.Lo {
				t.Fatalf("parts=%d: non-contiguous slice %+v after %d", parts, s, prev)
			}
			prev = s.Hi
		}
		if int(prev) != 12 {
			t.Fatalf("parts=%d: cover ends at %d, want 12", parts, prev)
		}
	}
}

func TestSplitSliceCountNeverExceedsParts(t *testing.T) {
	f := func(seed int64, nRaw uint8, partsRaw uint8) bool {
		n := int(nRaw)%150 + 1
		parts := int(partsRaw)%20 + 1
		g, err := gen.ErdosRenyi(n, n*3, false, seed)
		if err != nil {
			return false
		}
		p, err := Split(g, parts, 1)
		if err != nil {
			return false
		}
		want := parts
		if n < parts {
			want = n
		}
		return p.NumSlices() <= want && p.NumSlices() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
