// Package partition slices a graph into vertex-contiguous partitions for the
// GraphPulse large-graph execution mode (paper Section IV-F): "we limit the
// maximum number of vertices in each slice while minimizing edges that cross
// slice boundaries. We relabel the vertices to make them contiguous within
// each slice."
//
// The partitioner here is an offline edge-cut heuristic: a degree-balanced
// contiguous split followed by a boundary-refinement pass that shifts slice
// boundaries to locally reduce the number of cut edges. Real deployments
// would use METIS/PuLP (the paper cites both); the accelerator model only
// depends on the slice *contract* (bounded vertices per slice, contiguous
// ranges), which this package guarantees.
package partition

import (
	"fmt"

	"graphpulse/internal/graph"
)

// Slice is one partition: the contiguous vertex range [Lo, Hi).
type Slice struct {
	Lo, Hi graph.VertexID
}

// Contains reports whether v falls in the slice.
func (s Slice) Contains(v graph.VertexID) bool { return v >= s.Lo && v < s.Hi }

// NumVertices returns the number of vertices in the slice.
func (s Slice) NumVertices() int { return int(s.Hi - s.Lo) }

// Partitioning is the result of slicing a graph.
type Partitioning struct {
	Slices []Slice
	// CutEdges counts edges whose endpoints land in different slices; each
	// becomes an inter-slice event spilled to off-chip memory at runtime.
	CutEdges int
}

// NumSlices returns the slice count.
func (p *Partitioning) NumSlices() int { return len(p.Slices) }

// SliceOf returns the index of the slice containing v. Slices are contiguous
// and sorted, so this is a binary search.
func (p *Partitioning) SliceOf(v graph.VertexID) int {
	lo, hi := 0, len(p.Slices)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case v < p.Slices[mid].Lo:
			hi = mid
		case v >= p.Slices[mid].Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// Contiguous partitions g into the minimum number of contiguous slices such
// that no slice holds more than maxVertices vertices, then runs `refine`
// boundary-refinement sweeps to reduce the edge cut. maxVertices must be
// positive. With maxVertices >= NumVertices the result is a single slice
// with zero cut.
func Contiguous(g graph.Adjacency, maxVertices, refine int) (*Partitioning, error) {
	if maxVertices <= 0 {
		return nil, fmt.Errorf("partition: maxVertices=%d, want > 0", maxVertices)
	}
	n := g.NumVertices()
	if n == 0 {
		return &Partitioning{}, nil
	}
	numSlices := (n + maxVertices - 1) / maxVertices
	// Initial equal-width split.
	bounds := make([]int, numSlices+1)
	for i := 0; i <= numSlices; i++ {
		bounds[i] = i * n / numSlices
	}
	// Boundary refinement: try shifting each interior boundary by small
	// steps and keep the move if it reduces the cut without violating the
	// vertex bound.
	if numSlices > 1 && refine > 0 {
		steps := []int{-64, -16, -4, -1, 1, 4, 16, 64}
		for pass := 0; pass < refine; pass++ {
			improved := false
			for b := 1; b < numSlices; b++ {
				best := bounds[b]
				bestCut := boundaryCut(g, bounds, b)
				for _, s := range steps {
					cand := bounds[b] + s
					if cand <= bounds[b-1] || cand >= bounds[b+1] {
						continue
					}
					if cand-bounds[b-1] > maxVertices || bounds[b+1]-cand > maxVertices {
						continue
					}
					old := bounds[b]
					bounds[b] = cand
					c := boundaryCut(g, bounds, b)
					if c < bestCut {
						best, bestCut = cand, c
					}
					bounds[b] = old
				}
				if best != bounds[b] {
					bounds[b] = best
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}
	p := &Partitioning{Slices: make([]Slice, numSlices)}
	for i := 0; i < numSlices; i++ {
		p.Slices[i] = Slice{Lo: graph.VertexID(bounds[i]), Hi: graph.VertexID(bounds[i+1])}
		if p.Slices[i].NumVertices() > maxVertices {
			return nil, fmt.Errorf("partition: slice %d has %d vertices > bound %d",
				i, p.Slices[i].NumVertices(), maxVertices)
		}
	}
	p.CutEdges = totalCut(g, p)
	return p, nil
}

// Split partitions g into at most parts contiguous slices — the
// worker-sharding entry point used by the parallel solver (psolve). It is
// Contiguous with the bound expressed as a slice count: a graph with fewer
// vertices than parts yields one single-vertex slice per vertex, and an
// empty graph yields zero slices. parts must be positive.
func Split(g graph.Adjacency, parts, refine int) (*Partitioning, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("partition: parts=%d, want > 0", parts)
	}
	n := g.NumVertices()
	if n == 0 {
		return &Partitioning{}, nil
	}
	if parts > n {
		parts = n
	}
	return Contiguous(g, (n+parts-1)/parts, refine)
}

// boundaryCut counts edges crossing the single boundary bounds[b] in either
// direction, restricted to the two slices adjacent to it. It is the local
// objective for refinement.
func boundaryCut(g graph.Adjacency, bounds []int, b int) int {
	lo, mid, hi := bounds[b-1], bounds[b], bounds[b+1]
	cut := 0
	for v := lo; v < hi; v++ {
		left := v < mid
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			if int(d) < lo || int(d) >= hi {
				continue
			}
			if left != (int(d) < mid) {
				cut++
			}
		}
	}
	return cut
}

// Cut counts all edges whose endpoints are in different slices of p — the
// edge-cut objective, exported for callers that build a Partitioning from
// externally fixed boundaries (e.g. shard-to-slice alignment in psolve).
func Cut(g graph.Adjacency, p *Partitioning) int { return totalCut(g, p) }

// totalCut counts all edges whose endpoints are in different slices.
func totalCut(g graph.Adjacency, p *Partitioning) int {
	cut := 0
	for v := 0; v < g.NumVertices(); v++ {
		sv := p.SliceOf(graph.VertexID(v))
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			if p.SliceOf(d) != sv {
				cut++
			}
		}
	}
	return cut
}

// DegreeOrderPermutation returns a permutation that relabels vertices so
// that ids follow a breadth-first order from the highest-out-degree vertex.
// Applying it before Contiguous clusters well-connected vertices into the
// same slice, which is the cheap stand-in for the offline partitioners the
// paper cites.
func DegreeOrderPermutation(g graph.Adjacency) []graph.VertexID {
	n := g.NumVertices()
	perm := make([]graph.VertexID, n)
	visited := make([]bool, n)
	next := graph.VertexID(0)
	// Seed BFS from the max-degree vertex, then sweep remaining unvisited.
	start := graph.VertexID(0)
	bestDeg := -1
	for v := 0; v < n; v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > bestDeg {
			bestDeg, start = d, graph.VertexID(v)
		}
	}
	queue := make([]graph.VertexID, 0, n)
	enqueue := func(v graph.VertexID) {
		if !visited[v] {
			visited[v] = true
			queue = append(queue, v)
		}
	}
	enqueue(start)
	for seed := 0; seed <= n; seed++ {
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			perm[v] = next
			next++
			for _, d := range g.Neighbors(v) {
				enqueue(d)
			}
		}
		if int(next) == n {
			break
		}
		// Find the next unvisited vertex and continue.
		for v := 0; v < n; v++ {
			if !visited[v] {
				enqueue(graph.VertexID(v))
				break
			}
		}
	}
	return perm
}
