//go:build unix

package ooc

import (
	"os"
	"syscall"
)

// mmapFile memory-maps f read-only, returning nil when mapping is not
// possible (empty file, size overflow, or kernel refusal) — the store then
// falls back to ReadAt through the file handle.
func mmapFile(f *os.File, size int64) []byte {
	if size <= 0 || int64(int(size)) != size {
		return nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil
	}
	return data
}

func munmap(data []byte) error { return syscall.Munmap(data) }
