package ooc

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"graphpulse/internal/graph"
)

// Store serves a graphpack container as a graph.Adjacency, decoding slices
// on demand and keeping them resident under an LRU byte budget — the
// software form of the paper's Section IV-F slice swapping. It is safe for
// concurrent readers: the decoded-slice pointer and last-use stamp are
// atomics, a per-slice mutex serializes decoding, and a store-level mutex
// guards eviction accounting. Eviction drops the store's reference; readers
// holding a slice returned before the eviction keep using it (the garbage
// collector reclaims it when the last reference dies), so the budget is a
// target the resident set settles under, not a hard allocation ceiling.
type Store struct {
	r      io.ReaderAt
	f      *os.File // nil for OpenReaderAt stores
	mapped []byte   // non-nil when the file is memory-mapped
	hdr    header
	dir    []dirEntry
	bounds []graph.VertexID // k+1 slice boundaries
	budget int64            // resident-byte budget; <=0 means unlimited

	slices []residentSlice
	clock  atomic.Int64 // global access stamp for approximate LRU

	mu            sync.Mutex // guards the two gauges below and eviction
	residentBytes int64
	residentCount int

	decodes      atomic.Int64
	evictions    atomic.Int64
	hits         atomic.Int64
	decodedBytes atomic.Int64
}

// residentSlice is the residency state of one slice.
type residentSlice struct {
	mu   sync.Mutex // serializes decoding of this slice
	data atomic.Pointer[sliceData]
	last atomic.Int64 // clock stamp of the most recent access
}

// Counters is a snapshot of the store's observability surface. The names in
// MetricNames document each field in METRICS.md.
type Counters struct {
	// Decodes counts slice decodes from the container (`ooc_slice_decodes`).
	Decodes int64
	// Evictions counts budget-driven slice drops (`ooc_slice_evictions`).
	Evictions int64
	// Hits counts accesses served by an already-resident slice (`ooc_hits`).
	Hits int64
	// ResidentBytes is the decoded bytes currently charged against the
	// budget (`ooc_resident_bytes`).
	ResidentBytes int64
	// ResidentSlices is the resident slice count (`ooc_resident_slices`).
	ResidentSlices int64
	// DecodedBytes is the cumulative decoded volume across all decodes
	// (`ooc_decoded_bytes`); DecodedBytes/ResidentBytes ≈ swap amplification.
	DecodedBytes int64
}

// MetricNames lists the store metric names for the METRICS.md staleness
// linter (lintdoc), mirroring the Counters fields.
func MetricNames() []string {
	return []string{
		"ooc_slice_decodes",
		"ooc_slice_evictions",
		"ooc_hits",
		"ooc_resident_bytes",
		"ooc_resident_slices",
		"ooc_decoded_bytes",
	}
}

// Open maps the graphpack container at path with the given resident-byte
// budget (<= 0 means unlimited). The file is memory-mapped where the
// platform supports it and read through the file handle otherwise; either
// way every segment is verification-decoded once before Open returns, so a
// corrupt or truncated container fails here rather than mid-solve.
func Open(path string, residentBytes int64) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ooc: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ooc: %w", err)
	}
	mapped := mmapFile(f, fi.Size())
	s, err := newStoreMapped(f, mapped, fi.Size(), residentBytes)
	if err != nil {
		if mapped != nil {
			munmap(mapped)
		}
		f.Close()
		return nil, err
	}
	s.f = f
	return s, nil
}

// OpenReaderAt opens a graphpack container from an arbitrary io.ReaderAt
// (e.g. an in-memory buffer in tests and fuzzing). Close is a no-op for
// such stores.
func OpenReaderAt(r io.ReaderAt, size int64, residentBytes int64) (*Store, error) {
	return newStoreMapped(r, nil, size, residentBytes)
}

func newStoreMapped(r io.ReaderAt, mapped []byte, size int64, budget int64) (*Store, error) {
	hdr, err := parseHeader(r, size)
	if err != nil {
		return nil, err
	}
	dir, err := parseDirectory(r, size, hdr)
	if err != nil {
		return nil, err
	}
	s := &Store{r: r, mapped: mapped, hdr: hdr, dir: dir, budget: budget}
	s.slices = make([]residentSlice, len(dir))
	s.bounds = make([]graph.VertexID, len(dir)+1)
	for i, e := range dir {
		s.bounds[i] = graph.VertexID(e.lo)
	}
	s.bounds[len(dir)] = graph.VertexID(hdr.n)
	// Verification pass: decode every segment once through the normal
	// residency path. This bounds memory by the budget (cold slices are
	// evicted as the scan advances), warms the tail of the slice set, and
	// guarantees later decodes of a well-formed file cannot fail.
	for i := range dir {
		if _, err := s.load(i); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Close unmaps and closes the underlying file. The store must not be used
// afterwards.
func (s *Store) Close() error {
	var err error
	if s.mapped != nil {
		err = munmap(s.mapped)
		s.mapped = nil
	}
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// Counters returns a snapshot of the residency counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	rb, rc := s.residentBytes, s.residentCount
	s.mu.Unlock()
	return Counters{
		Decodes:        s.decodes.Load(),
		Evictions:      s.evictions.Load(),
		Hits:           s.hits.Load(),
		ResidentBytes:  rb,
		ResidentSlices: int64(rc),
		DecodedBytes:   s.decodedBytes.Load(),
	}
}

// ResetCounters zeroes the cumulative counters (decodes, evictions, hits,
// decoded bytes), leaving the residency gauges alone. Benchmarks call it
// after Open's verification pass so measurements cover only the solve.
func (s *Store) ResetCounters() {
	s.decodes.Store(0)
	s.evictions.Store(0)
	s.hits.Store(0)
	s.decodedBytes.Store(0)
}

// Level returns the container's compression level.
func (s *Store) Level() int { return int(s.hdr.level) }

// NumSlices returns the container's slice count.
func (s *Store) NumSlices() int { return len(s.dir) }

// SliceBoundaries returns the k+1 vertex boundaries of the container's
// slices ([0 … n]). The parallel solver aligns worker shards to them
// (psolve.Sliced) so each worker mostly touches its own resident slices.
func (s *Store) SliceBoundaries() []graph.VertexID { return s.bounds }

// segment returns the raw bytes of slice i's segment.
func (s *Store) segment(i int) ([]byte, error) {
	e := s.dir[i]
	if s.mapped != nil {
		return s.mapped[e.off : e.off+e.length], nil
	}
	buf := make([]byte, e.length)
	if _, err := s.r.ReadAt(buf, int64(e.off)); err != nil {
		return nil, fmt.Errorf("ooc: read segment %d: %w", i, err)
	}
	return buf, nil
}

// load returns slice i's decoded data, decoding and admitting it if absent.
func (s *Store) load(i int) (*sliceData, error) {
	sl := &s.slices[i]
	if d := sl.data.Load(); d != nil {
		sl.last.Store(s.clock.Add(1))
		s.hits.Add(1)
		return d, nil
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if d := sl.data.Load(); d != nil { // raced with another decoder
		sl.last.Store(s.clock.Add(1))
		s.hits.Add(1)
		return d, nil
	}
	raw, err := s.segment(i)
	if err != nil {
		return nil, err
	}
	e := s.dir[i]
	d, err := decodeSegment(raw, graph.VertexID(e.lo), graph.VertexID(e.hi),
		int(s.hdr.n), int(s.hdr.level), s.hdr.weighted(), edgeCount(s.dir, i, s.hdr.m))
	if err != nil {
		return nil, err
	}
	s.decodes.Add(1)
	s.decodedBytes.Add(d.bytes)
	sl.last.Store(s.clock.Add(1))
	sl.data.Store(d)
	s.admit(i, d.bytes)
	return d, nil
}

// admit charges a freshly decoded slice against the budget and evicts the
// coldest resident slices (never the one just admitted) until the budget is
// met or nothing else is resident.
func (s *Store) admit(keep int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.residentBytes += bytes
	s.residentCount++
	if s.budget <= 0 {
		return
	}
	for s.residentBytes > s.budget && s.residentCount > 1 {
		victim, oldest := -1, int64(1<<62)
		for j := range s.slices {
			if j == keep || s.slices[j].data.Load() == nil {
				continue
			}
			if last := s.slices[j].last.Load(); last < oldest {
				victim, oldest = j, last
			}
		}
		if victim < 0 {
			return
		}
		if d := s.slices[victim].data.Swap(nil); d != nil {
			s.residentBytes -= d.bytes
			s.residentCount--
			s.evictions.Add(1)
		}
	}
}

// mustLoad is load for the Adjacency accessors, which cannot return errors.
// Open's verification pass proves every segment decodes, so a failure here
// means the backing file was truncated or rewritten underneath the store.
func (s *Store) mustLoad(i int) *sliceData {
	d, err := s.load(i)
	if err != nil {
		panic(fmt.Sprintf("ooc: backing container changed under a live store: %v", err))
	}
	return d
}

// sliceOf returns the index of the slice containing v.
func (s *Store) sliceOf(v graph.VertexID) int {
	return sort.Search(len(s.dir), func(i int) bool {
		return graph.VertexID(s.dir[i].hi) > v
	})
}

// sliceOfEdge returns the index of the slice containing global edge i.
func (s *Store) sliceOfEdge(i uint64) int {
	return sort.Search(len(s.dir), func(j int) bool {
		return edgeCount(s.dir, j, s.hdr.m)+s.dir[j].firstEdge > i
	})
}

// NumVertices returns the vertex count.
func (s *Store) NumVertices() int { return int(s.hdr.n) }

// NumEdges returns the edge count.
func (s *Store) NumEdges() int { return int(s.hdr.m) }

// Weighted reports whether the container carries edge weights.
func (s *Store) Weighted() bool { return s.hdr.weighted() }

// OutDegree returns the out-degree of v.
func (s *Store) OutDegree(v graph.VertexID) int {
	i := s.sliceOf(v)
	d := s.mustLoad(i)
	off := int(v - graph.VertexID(s.dir[i].lo))
	return int(d.rowPtr[off+1] - d.rowPtr[off])
}

// Neighbors returns the out-neighbors of v. The slice aliases the resident
// decode buffer and must not be modified; it stays valid after eviction
// (eviction drops the store's reference, not the caller's).
func (s *Store) Neighbors(v graph.VertexID) []graph.VertexID {
	i := s.sliceOf(v)
	d := s.mustLoad(i)
	off := int(v - graph.VertexID(s.dir[i].lo))
	return d.dst[d.rowPtr[off]:d.rowPtr[off+1]]
}

// NeighborWeights returns the out-edge weights of v, nil for unweighted
// containers. Same aliasing rules as Neighbors.
func (s *Store) NeighborWeights(v graph.VertexID) []float32 {
	if !s.hdr.weighted() {
		return nil
	}
	i := s.sliceOf(v)
	d := s.mustLoad(i)
	off := int(v - graph.VertexID(s.dir[i].lo))
	return d.wt[d.rowPtr[off]:d.rowPtr[off+1]]
}

// EdgeOffset returns the global index of the first out-edge of v.
func (s *Store) EdgeOffset(v graph.VertexID) uint64 {
	i := s.sliceOf(v)
	d := s.mustLoad(i)
	return s.dir[i].firstEdge + d.rowPtr[int(v-graph.VertexID(s.dir[i].lo))]
}

// EdgeDst returns the destination of the i-th edge.
func (s *Store) EdgeDst(i uint64) graph.VertexID {
	j := s.sliceOfEdge(i)
	return s.mustLoad(j).dst[i-s.dir[j].firstEdge]
}

// EdgeWeight returns the weight of the i-th edge (1 when unweighted).
func (s *Store) EdgeWeight(i uint64) float32 {
	if !s.hdr.weighted() {
		return 1
	}
	j := s.sliceOfEdge(i)
	return s.mustLoad(j).wt[i-s.dir[j].firstEdge]
}

// Validate re-checks the directory invariants. The per-edge checks ran
// during Open's verification decode, so this is O(slices).
func (s *Store) Validate() error {
	var lo, edge uint64
	for i, e := range s.dir {
		if e.lo != lo || e.hi <= e.lo || e.firstEdge != edge {
			return fmt.Errorf("ooc: directory entry %d inconsistent", i)
		}
		lo, edge = e.hi, e.firstEdge+edgeCount(s.dir, i, s.hdr.m)
	}
	if lo != s.hdr.n || edge != s.hdr.m {
		return fmt.Errorf("ooc: directory covers %d vertices / %d edges, header says %d / %d",
			lo, edge, s.hdr.n, s.hdr.m)
	}
	return nil
}

var _ graph.Adjacency = (*Store)(nil)
