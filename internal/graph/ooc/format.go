// Package ooc is the out-of-core graph substrate: the software analogue of
// the paper's Section IV-F slice swapping (S12). A graph is stored on disk
// in the graphpack container — per-slice segments of delta/varint-compressed
// CSR neighbor lists, laid out along partition.Split boundaries — and served
// through an mmap-backed (portable io.ReaderAt fallback) Store that decodes
// slices lazily, keeps them resident under an LRU byte budget, and evicts
// cold ones. The Store implements graph.Adjacency, so every registered
// engine and the serving tier can run directly off a graph ~10× larger than
// memory: at any instant only the resident slice set is decoded.
//
// Container layout (all integers little-endian):
//
//	header    8-byte magic "GPKPACK1", uint32 flags (bit0 = weighted),
//	          uint32 level, uint64 vertices, uint64 edges, uint64 slices
//	directory one 40-byte entry per slice:
//	          uint64 lo, hi (vertex range [lo,hi)), firstEdge (global edge
//	          offset of the slice's first edge), offset, length (segment
//	          byte range in the file)
//	segments  per-slice compressed neighbor lists, back to back
//
// A segment encodes each vertex of its range in order: a uvarint out-degree,
// the neighbor ids at the container's compression level (see Level*), then —
// for weighted graphs — one raw float32 per neighbor. Neighbor order is
// preserved exactly, so a decoded slice reproduces the source CSR bit for
// bit and every engine observes the identical edge schedule.
package ooc

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"graphpulse/internal/graph"
	"graphpulse/internal/graph/partition"
)

func floatBits(x float32) uint32     { return math.Float32bits(x) }
func floatFromBits(b uint32) float32 { return math.Float32frombits(b) }

// Compression levels for neighbor ids within a segment.
const (
	// LevelRaw stores each neighbor as a fixed 4-byte id.
	LevelRaw = 0
	// LevelVarint stores each neighbor as a uvarint.
	LevelVarint = 1
	// LevelDelta stores zigzag varint deltas: the first neighbor relative to
	// the source vertex id, each subsequent neighbor relative to its
	// predecessor. Locality-ordered graphs compress to ~1–2 bytes per edge.
	LevelDelta = 2
)

// Magic is the 8-byte container signature, distinct from the in-RAM binary
// CSR container's ("GPCS…"), so loaders can sniff the format.
const Magic = "GPKPACK1"

var magic = [8]byte{'G', 'P', 'K', 'P', 'A', 'C', 'K', '1'}

const (
	headerSize   = 40
	dirEntrySize = 40
	flagWeighted = 1 << 0

	// maxSlices bounds the directory allocation against hostile headers;
	// every other allocation is bounded by the actual file size.
	maxSlices = 1 << 20
)

// header is the decoded fixed-size container header.
type header struct {
	flags uint32
	level uint32
	n     uint64 // vertices
	m     uint64 // edges
	k     uint64 // slices
}

func (h header) weighted() bool { return h.flags&flagWeighted != 0 }

// dirEntry locates one slice's segment.
type dirEntry struct {
	lo, hi    uint64 // vertex range [lo, hi)
	firstEdge uint64 // global edge offset of the slice's first edge
	off       uint64 // segment byte offset in the file
	length    uint64 // segment byte length
}

// WriteOptions tunes the graphpack writer. The zero value selects the
// documented defaults.
type WriteOptions struct {
	// Level is the neighbor-id compression level (default LevelDelta).
	// Explicitly selecting LevelRaw requires RawLevel (0 is the zero value).
	Level int
	// RawLevel forces LevelRaw when Level is 0.
	RawLevel bool
	// Slices is the target slice count (default 16, clamped to the vertex
	// count by the partitioner). More slices mean finer-grained residency.
	Slices int
	// Refine is the partition boundary-refinement pass count (default 1).
	Refine int
}

func (o WriteOptions) withDefaults() WriteOptions {
	if o.Level == 0 && !o.RawLevel {
		o.Level = LevelDelta
	}
	if o.Slices <= 0 {
		o.Slices = 16
	}
	if o.Refine <= 0 {
		o.Refine = 1
	}
	return o
}

// Write encodes g into the graphpack container format on w. Slice boundaries
// come from partition.Split, so they are contiguous, vertex-balanced, and
// edge-cut refined — the same boundaries the parallel solver aligns its
// shards to when solving off the store.
func Write(w io.Writer, g *graph.CSR, opt WriteOptions) error {
	opt = opt.withDefaults()
	if opt.Level < LevelRaw || opt.Level > LevelDelta {
		return fmt.Errorf("ooc: level %d, want %d..%d", opt.Level, LevelRaw, LevelDelta)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("ooc: %w", err)
	}
	part, err := partition.Split(g, opt.Slices, opt.Refine)
	if err != nil {
		return fmt.Errorf("ooc: %w", err)
	}
	k := part.NumSlices()

	segs := make([][]byte, k)
	for i, sl := range part.Slices {
		segs[i] = encodeSegment(g, sl.Lo, sl.Hi, opt.Level)
	}

	hdr := header{
		level: uint32(opt.Level),
		n:     uint64(g.NumVertices()),
		m:     uint64(g.NumEdges()),
		k:     uint64(k),
	}
	if g.Weighted() {
		hdr.flags |= flagWeighted
	}
	buf := make([]byte, 0, headerSize+k*dirEntrySize)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, hdr.flags)
	buf = binary.LittleEndian.AppendUint32(buf, hdr.level)
	buf = binary.LittleEndian.AppendUint64(buf, hdr.n)
	buf = binary.LittleEndian.AppendUint64(buf, hdr.m)
	buf = binary.LittleEndian.AppendUint64(buf, hdr.k)

	off := uint64(headerSize + k*dirEntrySize)
	for i, sl := range part.Slices {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sl.Lo))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sl.Hi))
		buf = binary.LittleEndian.AppendUint64(buf, g.EdgeOffset(sl.Lo))
		buf = binary.LittleEndian.AppendUint64(buf, off)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(segs[i])))
		off += uint64(len(segs[i]))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("ooc: write header: %w", err)
	}
	for _, seg := range segs {
		if _, err := w.Write(seg); err != nil {
			return fmt.Errorf("ooc: write segment: %w", err)
		}
	}
	return nil
}

// encodeSegment compresses the neighbor lists of vertices [lo, hi).
func encodeSegment(g *graph.CSR, lo, hi graph.VertexID, level int) []byte {
	// Size estimate: varint degree + ids + optional weights.
	est := int(hi-lo) * 2
	first, last := g.EdgeOffset(lo), g.EdgeOffset(hi)
	est += int(last-first) * 5
	if g.Weighted() {
		est += int(last-first) * 4
	}
	buf := make([]byte, 0, est)
	for v := lo; v < hi; v++ {
		nbrs := g.Neighbors(v)
		buf = binary.AppendUvarint(buf, uint64(len(nbrs)))
		switch level {
		case LevelRaw:
			for _, d := range nbrs {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
			}
		case LevelVarint:
			for _, d := range nbrs {
				buf = binary.AppendUvarint(buf, uint64(d))
			}
		case LevelDelta:
			prev := int64(v)
			for _, d := range nbrs {
				buf = binary.AppendVarint(buf, int64(d)-prev)
				prev = int64(d)
			}
		}
		if w := g.NeighborWeights(v); w != nil {
			for _, x := range w {
				buf = binary.LittleEndian.AppendUint32(buf, floatBits(x))
			}
		}
	}
	return buf
}

// sliceData is one decoded (resident) slice: a local CSR over [lo, hi).
type sliceData struct {
	rowPtr []uint64 // len hi-lo+1, local edge offsets from 0
	dst    []graph.VertexID
	wt     []float32 // nil when the container is unweighted
	bytes  int64     // decoded footprint charged against the budget
}

// decodeSegment decodes one slice's segment. expectEdges is the edge count
// the directory promises; any mismatch, out-of-range destination, or trailing
// garbage is an error. Allocations are bounded by len(data): a well-formed
// vertex costs at least one byte and an edge at least one byte (four at
// LevelRaw), and those invariants are enforced before allocating.
func decodeSegment(data []byte, lo, hi graph.VertexID, n int, level int, weighted bool, expectEdges uint64) (*sliceData, error) {
	nv := int(hi - lo)
	minEdge := uint64(1)
	if level == LevelRaw {
		minEdge = 4
	}
	if weighted {
		minEdge += 4
	}
	if uint64(len(data)) < uint64(nv)+minEdge*expectEdges {
		return nil, fmt.Errorf("ooc: segment for [%d,%d) is %d bytes, below floor for %d edges",
			lo, hi, len(data), expectEdges)
	}
	d := &sliceData{
		rowPtr: make([]uint64, nv+1),
		dst:    make([]graph.VertexID, 0, expectEdges),
	}
	if weighted {
		d.wt = make([]float32, 0, expectEdges)
	}
	pos := 0
	for v := lo; v < hi; v++ {
		deg, l := binary.Uvarint(data[pos:])
		if l <= 0 {
			return nil, fmt.Errorf("ooc: bad degree varint at vertex %d", v)
		}
		pos += l
		if uint64(len(d.dst))+deg > expectEdges {
			return nil, fmt.Errorf("ooc: slice [%d,%d) exceeds directory edge count %d", lo, hi, expectEdges)
		}
		switch level {
		case LevelRaw:
			if pos+4*int(deg) > len(data) {
				return nil, fmt.Errorf("ooc: truncated raw neighbors at vertex %d", v)
			}
			for j := uint64(0); j < deg; j++ {
				id := binary.LittleEndian.Uint32(data[pos:])
				pos += 4
				if int(id) >= n {
					return nil, fmt.Errorf("ooc: edge %d->%d out of range [0,%d)", v, id, n)
				}
				d.dst = append(d.dst, graph.VertexID(id))
			}
		case LevelVarint:
			for j := uint64(0); j < deg; j++ {
				id, l := binary.Uvarint(data[pos:])
				if l <= 0 {
					return nil, fmt.Errorf("ooc: bad neighbor varint at vertex %d", v)
				}
				pos += l
				if id >= uint64(n) {
					return nil, fmt.Errorf("ooc: edge %d->%d out of range [0,%d)", v, id, n)
				}
				d.dst = append(d.dst, graph.VertexID(id))
			}
		case LevelDelta:
			prev := int64(v)
			for j := uint64(0); j < deg; j++ {
				delta, l := binary.Varint(data[pos:])
				if l <= 0 {
					return nil, fmt.Errorf("ooc: bad neighbor delta at vertex %d", v)
				}
				pos += l
				id := prev + delta
				if id < 0 || id >= int64(n) {
					return nil, fmt.Errorf("ooc: edge %d->%d out of range [0,%d)", v, id, n)
				}
				prev = id
				d.dst = append(d.dst, graph.VertexID(id))
			}
		}
		if weighted {
			if pos+4*int(deg) > len(data) {
				return nil, fmt.Errorf("ooc: truncated weights at vertex %d", v)
			}
			for j := uint64(0); j < deg; j++ {
				d.wt = append(d.wt, floatFromBits(binary.LittleEndian.Uint32(data[pos:])))
				pos += 4
			}
		}
		d.rowPtr[int(v-lo)+1] = uint64(len(d.dst))
	}
	if pos != len(data) {
		return nil, fmt.Errorf("ooc: %d trailing bytes after slice [%d,%d)", len(data)-pos, lo, hi)
	}
	if uint64(len(d.dst)) != expectEdges {
		return nil, fmt.Errorf("ooc: slice [%d,%d) decoded %d edges, directory says %d",
			lo, hi, len(d.dst), expectEdges)
	}
	d.bytes = int64(len(d.rowPtr))*8 + int64(len(d.dst))*4 + int64(len(d.wt))*4
	return d, nil
}

// parseHeader decodes and sanity-checks the fixed header against the file
// size, bounding every subsequent allocation.
func parseHeader(r io.ReaderAt, size int64) (header, error) {
	var h header
	if size < headerSize {
		return h, fmt.Errorf("ooc: file is %d bytes, below the %d-byte header", size, headerSize)
	}
	raw := make([]byte, headerSize)
	if _, err := r.ReadAt(raw, 0); err != nil {
		return h, fmt.Errorf("ooc: read header: %w", err)
	}
	for i := range magic {
		if raw[i] != magic[i] {
			return h, fmt.Errorf("ooc: bad magic %q, want %q", raw[:8], magic[:])
		}
	}
	h.flags = binary.LittleEndian.Uint32(raw[8:])
	h.level = binary.LittleEndian.Uint32(raw[12:])
	h.n = binary.LittleEndian.Uint64(raw[16:])
	h.m = binary.LittleEndian.Uint64(raw[24:])
	h.k = binary.LittleEndian.Uint64(raw[32:])
	if h.flags&^uint32(flagWeighted) != 0 {
		return h, fmt.Errorf("ooc: unknown flags %#x", h.flags)
	}
	if h.level > LevelDelta {
		return h, fmt.Errorf("ooc: unknown compression level %d", h.level)
	}
	if h.k > maxSlices {
		return h, fmt.Errorf("ooc: %d slices exceeds limit %d", h.k, maxSlices)
	}
	payload := uint64(size - headerSize)
	if h.k*dirEntrySize > payload {
		return h, fmt.Errorf("ooc: directory (%d entries) exceeds file size", h.k)
	}
	// A well-formed vertex costs ≥1 byte and an edge ≥1 more, so n and m are
	// bounded by the segment payload; this caps the boundary/ directory
	// bookkeeping allocations on hostile headers.
	if h.n > payload || h.m > payload {
		return h, fmt.Errorf("ooc: header claims %d vertices / %d edges in a %d-byte file", h.n, h.m, size)
	}
	if h.n == 0 && (h.m != 0 || h.k != 0) {
		return h, fmt.Errorf("ooc: empty graph with %d edges / %d slices", h.m, h.k)
	}
	if h.n > 0 && h.k == 0 {
		return h, fmt.Errorf("ooc: %d vertices but no slices", h.n)
	}
	return h, nil
}

// parseDirectory decodes and validates the slice directory: contiguous
// vertex ranges covering [0, n), monotone edge offsets summing to m, and
// segment byte ranges packed back to back inside the file.
func parseDirectory(r io.ReaderAt, size int64, h header) ([]dirEntry, error) {
	k := int(h.k)
	if k == 0 {
		if size != headerSize {
			return nil, fmt.Errorf("ooc: %d bytes after an empty directory", size-headerSize)
		}
		return nil, nil
	}
	raw := make([]byte, k*dirEntrySize)
	if _, err := r.ReadAt(raw, headerSize); err != nil {
		return nil, fmt.Errorf("ooc: read directory: %w", err)
	}
	dir := make([]dirEntry, k)
	wantOff := uint64(headerSize + k*dirEntrySize)
	var wantLo, prevEdge uint64
	for i := range dir {
		e := dirEntry{
			lo:        binary.LittleEndian.Uint64(raw[i*dirEntrySize:]),
			hi:        binary.LittleEndian.Uint64(raw[i*dirEntrySize+8:]),
			firstEdge: binary.LittleEndian.Uint64(raw[i*dirEntrySize+16:]),
			off:       binary.LittleEndian.Uint64(raw[i*dirEntrySize+24:]),
			length:    binary.LittleEndian.Uint64(raw[i*dirEntrySize+32:]),
		}
		if e.lo != wantLo || e.hi <= e.lo || e.hi > h.n {
			return nil, fmt.Errorf("ooc: slice %d range [%d,%d) breaks coverage at %d", i, e.lo, e.hi, wantLo)
		}
		if i == 0 && e.firstEdge != 0 {
			return nil, fmt.Errorf("ooc: slice 0 firstEdge %d, want 0", e.firstEdge)
		}
		if e.firstEdge < prevEdge || e.firstEdge > h.m {
			return nil, fmt.Errorf("ooc: slice %d firstEdge %d not in [%d,%d]", i, e.firstEdge, prevEdge, h.m)
		}
		prevEdge = e.firstEdge
		if e.off != wantOff || e.length > uint64(size) || e.off+e.length > uint64(size) {
			return nil, fmt.Errorf("ooc: slice %d segment [%d,+%d) outside file", i, e.off, e.length)
		}
		wantLo = e.hi
		wantOff = e.off + e.length
		dir[i] = e
	}
	if wantLo != h.n {
		return nil, fmt.Errorf("ooc: directory covers [0,%d), header says %d vertices", wantLo, h.n)
	}
	if wantOff != uint64(size) {
		return nil, fmt.Errorf("ooc: segments end at %d, file is %d bytes", wantOff, size)
	}
	return dir, nil
}

// edgeCount returns the number of edges the directory assigns to slice i.
func edgeCount(dir []dirEntry, i int, m uint64) uint64 {
	if i+1 < len(dir) {
		return dir[i+1].firstEdge - dir[i].firstEdge
	}
	return m - dir[i].firstEdge
}
