package ooc

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

func testGraph(t *testing.T, weighted bool) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 9, EdgeFactor: 8,
		Weighted: weighted, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pack encodes g and opens it from memory with the given budget.
func pack(t *testing.T, g *graph.CSR, opt WriteOptions, budget int64) *Store {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g, opt); err != nil {
		t.Fatalf("Write: %v", err)
	}
	s, err := OpenReaderAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()), budget)
	if err != nil {
		t.Fatalf("OpenReaderAt: %v", err)
	}
	return s
}

// decodedBytes estimates g's decoded footprint the same way the store
// charges slices.
func decodedBytes(g *graph.CSR) int64 {
	b := int64(len(g.RowPtr))*8 + int64(len(g.Dst))*4
	if g.Weight != nil {
		b += int64(len(g.Weight)) * 4
	}
	return b
}

func TestStoreMatchesCSR(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := testGraph(t, weighted)
		for level := LevelRaw; level <= LevelDelta; level++ {
			s := pack(t, g, WriteOptions{Level: level, RawLevel: true, Slices: 8}, 0)
			if s.NumVertices() != g.NumVertices() || s.NumEdges() != g.NumEdges() {
				t.Fatalf("level %d: shape %d/%d, want %d/%d",
					level, s.NumVertices(), s.NumEdges(), g.NumVertices(), g.NumEdges())
			}
			if s.Weighted() != g.Weighted() {
				t.Fatalf("level %d: weighted mismatch", level)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("level %d: %v", level, err)
			}
			for v := 0; v < g.NumVertices(); v++ {
				id := graph.VertexID(v)
				if s.OutDegree(id) != g.OutDegree(id) {
					t.Fatalf("level %d: OutDegree(%d)", level, v)
				}
				if s.EdgeOffset(id) != g.EdgeOffset(id) {
					t.Fatalf("level %d: EdgeOffset(%d)", level, v)
				}
				sn, gn := s.Neighbors(id), g.Neighbors(id)
				for j := range gn {
					if sn[j] != gn[j] {
						t.Fatalf("level %d: Neighbors(%d)[%d] = %d, want %d", level, v, j, sn[j], gn[j])
					}
				}
				sw, gw := s.NeighborWeights(id), g.NeighborWeights(id)
				if (sw == nil) != (gw == nil) {
					t.Fatalf("level %d: NeighborWeights(%d) nil mismatch", level, v)
				}
				for j := range gw {
					if sw[j] != gw[j] {
						t.Fatalf("level %d: NeighborWeights(%d)[%d]", level, v, j)
					}
				}
			}
			for i := 0; i < g.NumEdges(); i += 7 {
				e := uint64(i)
				if s.EdgeDst(e) != g.EdgeDst(e) || s.EdgeWeight(e) != g.EdgeWeight(e) {
					t.Fatalf("level %d: edge %d mismatch", level, i)
				}
			}
		}
	}
}

func TestCompressionShrinks(t *testing.T) {
	g := testGraph(t, false)
	sizes := make([]int, 3)
	for level := LevelRaw; level <= LevelDelta; level++ {
		var buf bytes.Buffer
		if err := Write(&buf, g, WriteOptions{Level: level, RawLevel: true, Slices: 8}); err != nil {
			t.Fatal(err)
		}
		sizes[level] = buf.Len()
	}
	if sizes[LevelVarint] >= sizes[LevelRaw] {
		t.Errorf("varint (%d bytes) did not beat raw (%d bytes)", sizes[LevelVarint], sizes[LevelRaw])
	}
	t.Logf("container bytes raw/varint/delta: %d/%d/%d", sizes[0], sizes[1], sizes[2])
}

func TestBudgetEviction(t *testing.T) {
	g := testGraph(t, false)
	budget := decodedBytes(g) / 4
	s := pack(t, g, WriteOptions{Slices: 16}, budget)
	// Open's verification pass scans every slice, so evictions have already
	// happened under a quarter-size budget.
	c := s.Counters()
	if c.Evictions == 0 {
		t.Fatalf("no evictions at budget %d (decoded %d)", budget, decodedBytes(g))
	}
	if c.ResidentBytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d at rest", c.ResidentBytes, budget)
	}
	if c.ResidentSlices == 0 {
		t.Fatal("nothing resident after open")
	}
	s.ResetCounters()
	// A full sweep re-decodes most slices; counters must move again.
	for v := 0; v < g.NumVertices(); v++ {
		_ = s.OutDegree(graph.VertexID(v))
	}
	c = s.Counters()
	if c.Decodes == 0 || c.Hits == 0 {
		t.Fatalf("sweep counters: %+v", c)
	}
}

func TestSolveOnStoreMatches(t *testing.T) {
	g := testGraph(t, true)
	s := pack(t, g, WriteOptions{Slices: 16}, decodedBytes(g)/4)
	want := algorithms.Solve(g, algorithms.NewPageRankDelta())
	got := algorithms.Solve(s, algorithms.NewPageRankDelta())
	if len(want.Values) != len(got.Values) {
		t.Fatal("length mismatch")
	}
	for v := range want.Values {
		if want.Values[v] != got.Values[v] {
			t.Fatalf("value[%d] = %g, want %g", v, got.Values[v], want.Values[v])
		}
	}
	if c := s.Counters(); c.Evictions == 0 {
		t.Fatalf("solve at quarter budget produced no evictions: %+v", c)
	}
}

func TestOpenFile(t *testing.T) {
	g := testGraph(t, true)
	path := filepath.Join(t.TempDir(), "g.graphpack")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, g, WriteOptions{Slices: 8}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumVertices() != g.NumVertices() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch")
	}
	for v := 0; v < g.NumVertices(); v += 13 {
		id := graph.VertexID(v)
		sn, gn := s.Neighbors(id), g.Neighbors(id)
		if len(sn) != len(gn) {
			t.Fatalf("Neighbors(%d) length", v)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionRejected(t *testing.T) {
	g := testGraph(t, false)
	var buf bytes.Buffer
	if err := Write(&buf, g, WriteOptions{Slices: 4}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncations at every structural boundary must error, never panic.
	for _, cut := range []int{0, 4, headerSize - 1, headerSize, headerSize + dirEntrySize - 1,
		headerSize + 4*dirEntrySize, len(raw) - 1} {
		if _, err := OpenReaderAt(bytes.NewReader(raw[:cut]), int64(cut), 0); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Flipping directory bytes must error (torn directory).
	for _, off := range []int{8, 16, 32, headerSize, headerSize + 8, headerSize + 24, headerSize + 32} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xff
		if _, err := OpenReaderAt(bytes.NewReader(mut), int64(len(mut)), 0); err == nil {
			t.Errorf("corruption at offset %d accepted", off)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &graph.CSR{}, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	s, err := OpenReaderAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() != 0 || s.NumEdges() != 0 || len(s.SliceBoundaries()) != 1 {
		t.Fatalf("empty store shape: %d/%d", s.NumVertices(), s.NumEdges())
	}
}
