//go:build !unix

package ooc

import "os"

// mmapFile always falls back to ReadAt on platforms without syscall.Mmap.
func mmapFile(f *os.File, size int64) []byte { return nil }

func munmap(data []byte) error { return nil }
