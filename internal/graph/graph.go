// Package graph provides the graph substrate shared by every engine in this
// repository: an immutable Compressed Sparse Row (CSR) representation with
// optional edge weights, builders, transposition, relabeling, and
// degree/statistics helpers.
//
// All engines (the GraphPulse accelerator model, the Ligra-style software
// baseline, and the Graphicionado model) consume the same CSR so that
// measured differences come from the processing model, not the storage.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// VertexID identifies a vertex. Graphs in this repository are always
// labeled 0..NumVertices-1.
type VertexID = uint32

// Edge is a single directed edge with an optional weight. Unweighted graphs
// carry weight 1.
type Edge struct {
	Src    VertexID
	Dst    VertexID
	Weight float32
}

// CSR is an immutable directed graph in Compressed Sparse Row form.
//
// The out-edges of vertex v are Dst[RowPtr[v]:RowPtr[v+1]], with matching
// weights in Weight (nil for unweighted graphs). This mirrors the layout the
// paper assumes ("The graph is stored in a Compressed Sparse Row format in
// memory", Section IV-E): RowPtr and Dst are the structures the simulated
// memory traffic is accounted against.
type CSR struct {
	// RowPtr has NumVertices+1 entries; RowPtr[v] is the index of the first
	// out-edge of v in Dst.
	RowPtr []uint64
	// Dst holds destination vertex ids, grouped by source, sources ascending.
	Dst []VertexID
	// Weight holds per-edge weights parallel to Dst. nil means the graph is
	// unweighted and every edge has implicit weight 1.
	Weight []float32
}

// NumVertices returns the number of vertices.
func (g *CSR) NumVertices() int {
	if len(g.RowPtr) == 0 {
		return 0
	}
	return len(g.RowPtr) - 1
}

// NumEdges returns the number of directed edges.
func (g *CSR) NumEdges() int { return len(g.Dst) }

// Weighted reports whether the graph carries explicit edge weights.
func (g *CSR) Weighted() bool { return g.Weight != nil }

// OutDegree returns the out-degree of v.
func (g *CSR) OutDegree(v VertexID) int {
	return int(g.RowPtr[v+1] - g.RowPtr[v])
}

// Neighbors returns the out-neighbors of v as a subslice of the shared Dst
// array. Callers must not modify it.
func (g *CSR) Neighbors(v VertexID) []VertexID {
	return g.Dst[g.RowPtr[v]:g.RowPtr[v+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(v). For
// unweighted graphs it returns nil.
func (g *CSR) NeighborWeights(v VertexID) []float32 {
	if g.Weight == nil {
		return nil
	}
	return g.Weight[g.RowPtr[v]:g.RowPtr[v+1]]
}

// EdgeWeight returns the weight of the i-th edge (index into Dst). For
// unweighted graphs it returns 1.
func (g *CSR) EdgeWeight(i uint64) float32 {
	if g.Weight == nil {
		return 1
	}
	return g.Weight[i]
}

// EdgeOffset returns the index of the first out-edge of v in Dst. It is the
// address the simulated edge-memory reader starts streaming from.
func (g *CSR) EdgeOffset(v VertexID) uint64 { return g.RowPtr[v] }

// EdgeDst returns the destination of the i-th edge (index into Dst). The
// simulated memory models stream edges by global index; this is the
// interface-friendly form of Dst[i].
func (g *CSR) EdgeDst(i uint64) VertexID { return g.Dst[i] }

// Adjacency is the narrow read interface every engine consumes: vertex and
// edge counts, per-vertex neighbor iteration, and edge-indexed access for
// the simulated memory models. The in-RAM *CSR satisfies it directly; the
// out-of-core slice store (internal/graph/ooc) satisfies it by decoding
// compressed slices on demand.
//
// Neighbors and NeighborWeights return slices the caller must not modify;
// for out-of-core stores they remain valid after the backing slice is
// evicted (eviction drops the store's reference, the garbage collector
// reclaims the buffer once callers are done).
type Adjacency interface {
	// NumVertices returns the vertex count.
	NumVertices() int
	// NumEdges returns the directed edge count.
	NumEdges() int
	// Weighted reports whether edges carry explicit weights.
	Weighted() bool
	// OutDegree returns the out-degree of v.
	OutDegree(v VertexID) int
	// Neighbors returns the out-neighbors of v.
	Neighbors(v VertexID) []VertexID
	// NeighborWeights returns the weights parallel to Neighbors(v), nil for
	// unweighted graphs.
	NeighborWeights(v VertexID) []float32
	// EdgeOffset returns the global index of the first out-edge of v.
	EdgeOffset(v VertexID) uint64
	// EdgeDst returns the destination of the edge at global index i.
	EdgeDst(i uint64) VertexID
	// EdgeWeight returns the weight of the edge at global index i (1 for
	// unweighted graphs).
	EdgeWeight(i uint64) float32
	// Validate checks structural invariants.
	Validate() error
}

var _ Adjacency = (*CSR)(nil)

// TransposeOf builds the reverse graph of any Adjacency as an in-RAM CSR.
// (*CSR).Transpose is the specialization; pull-direction engines handed an
// out-of-core store use this — materializing the transpose trades the
// memory ceiling back for pull traversal, which is why push-style engines
// are the ones expected to run off-core.
func TransposeOf(g Adjacency) *CSR {
	if c, ok := g.(*CSR); ok {
		return c.Transpose()
	}
	n := g.NumVertices()
	t := &CSR{RowPtr: make([]uint64, n+1)}
	for v := 0; v < n; v++ {
		for _, d := range g.Neighbors(VertexID(v)) {
			t.RowPtr[d+1]++
		}
	}
	for v := 0; v < n; v++ {
		t.RowPtr[v+1] += t.RowPtr[v]
	}
	t.Dst = make([]VertexID, g.NumEdges())
	if g.Weighted() {
		t.Weight = make([]float32, g.NumEdges())
	}
	cursor := make([]uint64, n)
	copy(cursor, t.RowPtr[:n])
	for v := 0; v < n; v++ {
		weights := g.NeighborWeights(VertexID(v))
		for i, d := range g.Neighbors(VertexID(v)) {
			j := cursor[d]
			cursor[d]++
			t.Dst[j] = VertexID(v)
			if t.Weight != nil {
				t.Weight[j] = weights[i]
			}
		}
	}
	return t
}

// Materialize copies any Adjacency into an in-RAM CSR. Tools and tests use
// it to compare an out-of-core store against its source graph.
func Materialize(g Adjacency) *CSR {
	if c, ok := g.(*CSR); ok {
		return c
	}
	n := g.NumVertices()
	out := &CSR{RowPtr: make([]uint64, n+1), Dst: make([]VertexID, 0, g.NumEdges())}
	if g.Weighted() {
		out.Weight = make([]float32, 0, g.NumEdges())
	}
	for v := 0; v < n; v++ {
		out.Dst = append(out.Dst, g.Neighbors(VertexID(v))...)
		if out.Weight != nil {
			out.Weight = append(out.Weight, g.NeighborWeights(VertexID(v))...)
		}
		out.RowPtr[v+1] = uint64(len(out.Dst))
	}
	return out
}

// MaxOutDegree returns the largest out-degree in the graph (0 for an empty
// graph).
func (g *CSR) MaxOutDegree() int {
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Validate checks structural invariants: monotone row pointers, in-range
// destinations, and weight array parity. It returns a descriptive error for
// the first violation found.
func (g *CSR) Validate() error {
	if len(g.RowPtr) == 0 {
		if len(g.Dst) != 0 {
			return errors.New("graph: empty RowPtr with non-empty Dst")
		}
		return nil
	}
	if g.RowPtr[0] != 0 {
		return fmt.Errorf("graph: RowPtr[0] = %d, want 0", g.RowPtr[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.RowPtr[v+1] < g.RowPtr[v] {
			return fmt.Errorf("graph: RowPtr not monotone at vertex %d", v)
		}
	}
	if g.RowPtr[n] != uint64(len(g.Dst)) {
		return fmt.Errorf("graph: RowPtr[n] = %d, want len(Dst) = %d", g.RowPtr[n], len(g.Dst))
	}
	for i, d := range g.Dst {
		if int(d) >= n {
			return fmt.Errorf("graph: edge %d has out-of-range destination %d (n=%d)", i, d, n)
		}
	}
	if g.Weight != nil && len(g.Weight) != len(g.Dst) {
		return fmt.Errorf("graph: len(Weight) = %d, want %d", len(g.Weight), len(g.Dst))
	}
	return nil
}

// FromEdges builds a CSR from an arbitrary edge list. Edges may arrive in
// any order; duplicates are kept (multigraphs are legal inputs for the
// engines). numVertices must be at least 1 + the largest vertex id used.
// If weighted is false, per-edge weights are dropped.
func FromEdges(numVertices int, edges []Edge, weighted bool) (*CSR, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", numVertices)
	}
	g := &CSR{RowPtr: make([]uint64, numVertices+1)}
	for _, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d vertices", e.Src, e.Dst, numVertices)
		}
		g.RowPtr[e.Src+1]++
	}
	for v := 0; v < numVertices; v++ {
		g.RowPtr[v+1] += g.RowPtr[v]
	}
	g.Dst = make([]VertexID, len(edges))
	if weighted {
		g.Weight = make([]float32, len(edges))
	}
	cursor := make([]uint64, numVertices)
	copy(cursor, g.RowPtr[:numVertices])
	for _, e := range edges {
		i := cursor[e.Src]
		cursor[e.Src]++
		g.Dst[i] = e.Dst
		if weighted {
			g.Weight[i] = e.Weight
		}
	}
	return g, nil
}

// Edges materializes the edge list of g in CSR order. It is intended for
// tests and tools; engines iterate the CSR directly.
func (g *CSR) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		src := VertexID(v)
		for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
			out = append(out, Edge{Src: src, Dst: g.Dst[i], Weight: g.EdgeWeight(i)})
		}
	}
	return out
}

// Equal reports whether g and o are structurally identical: same vertex
// count, same RowPtr, same Dst ordering, and bit-identical weights (or both
// unweighted). Round-trip and metamorphic tests use it.
func (g *CSR) Equal(o *CSR) bool {
	if len(g.RowPtr) != len(o.RowPtr) || g.NumEdges() != o.NumEdges() {
		return false
	}
	for i := range g.RowPtr {
		if g.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for i := range g.Dst {
		if g.Dst[i] != o.Dst[i] {
			return false
		}
	}
	if (g.Weight == nil) != (o.Weight == nil) {
		return false
	}
	for i := range g.Weight {
		if g.Weight[i] != o.Weight[i] {
			return false
		}
	}
	return true
}

// Transpose returns the reverse graph (every edge u→v becomes v→u),
// preserving weights. Pull-direction engines need it.
func (g *CSR) Transpose() *CSR {
	n := g.NumVertices()
	t := &CSR{RowPtr: make([]uint64, n+1)}
	for _, d := range g.Dst {
		t.RowPtr[d+1]++
	}
	for v := 0; v < n; v++ {
		t.RowPtr[v+1] += t.RowPtr[v]
	}
	t.Dst = make([]VertexID, len(g.Dst))
	if g.Weight != nil {
		t.Weight = make([]float32, len(g.Weight))
	}
	cursor := make([]uint64, n)
	copy(cursor, t.RowPtr[:n])
	for v := 0; v < n; v++ {
		for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
			d := g.Dst[i]
			j := cursor[d]
			cursor[d]++
			t.Dst[j] = VertexID(v)
			if g.Weight != nil {
				t.Weight[j] = g.Weight[i]
			}
		}
	}
	return t
}

// Relabel returns a copy of g with vertex v renamed to perm[v]. perm must be
// a permutation of 0..n-1. The partitioner uses this to make slice vertex
// ranges contiguous ("We relabel the vertices to make them contiguous within
// each slice", Section IV-F).
func (g *CSR) Relabel(perm []VertexID) (*CSR, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation (value %d)", p)
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
			edges = append(edges, Edge{Src: perm[v], Dst: perm[g.Dst[i]], Weight: g.EdgeWeight(i)})
		}
	}
	return FromEdges(n, edges, g.Weight != nil)
}

// InDegrees returns the in-degree of every vertex.
func (g *CSR) InDegrees() []uint32 {
	in := make([]uint32, g.NumVertices())
	for _, d := range g.Dst {
		in[d]++
	}
	return in
}

// SortNeighbors returns a copy of g with each adjacency list sorted by
// destination id (weights follow their edges). Sorted adjacency improves
// the realism of sequential edge streaming and makes golden tests stable.
func (g *CSR) SortNeighbors() *CSR {
	n := g.NumVertices()
	out := &CSR{
		RowPtr: append([]uint64(nil), g.RowPtr...),
		Dst:    append([]VertexID(nil), g.Dst...),
	}
	if g.Weight != nil {
		out.Weight = append([]float32(nil), g.Weight...)
	}
	for v := 0; v < n; v++ {
		lo, hi := out.RowPtr[v], out.RowPtr[v+1]
		seg := out.Dst[lo:hi]
		if out.Weight == nil {
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
			continue
		}
		wseg := out.Weight[lo:hi]
		idx := make([]int, len(seg))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return seg[idx[i]] < seg[idx[j]] })
		ns := make([]VertexID, len(seg))
		nw := make([]float32, len(seg))
		for i, k := range idx {
			ns[i], nw[i] = seg[k], wseg[k]
		}
		copy(seg, ns)
		copy(wseg, nw)
	}
	return out
}

// Stats summarizes the shape of a graph; Table IV reporting uses it.
type Stats struct {
	Vertices     int
	Edges        int
	MaxOutDegree int
	AvgOutDegree float64
	// DegreeP99 is the 99th-percentile out-degree; skew indicator for
	// power-law graphs.
	DegreeP99 int
	// ZeroOutDegree counts sink vertices.
	ZeroOutDegree int
}

// ComputeStats scans g once and returns its Stats.
func ComputeStats(g *CSR) Stats {
	n := g.NumVertices()
	s := Stats{Vertices: n, Edges: g.NumEdges()}
	if n == 0 {
		return s
	}
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		d := g.OutDegree(VertexID(v))
		degs[v] = d
		if d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d == 0 {
			s.ZeroOutDegree++
		}
	}
	s.AvgOutDegree = float64(s.Edges) / float64(n)
	sort.Ints(degs)
	p := int(math.Ceil(0.99*float64(n))) - 1
	if p < 0 {
		p = 0
	}
	if p >= n {
		p = n - 1
	}
	s.DegreeP99 = degs[p]
	return s
}

// NormalizeInbound returns a weighted copy of g in which the weights of
// each vertex's incoming edges sum to 1 (vertices with no in-edges are
// unaffected). The paper's Adsorption setup requires this ("normalized the
// inbound weights for each vertex", Section VI-A); it also guarantees the
// fixed-point iteration is a contraction.
func (g *CSR) NormalizeInbound() *CSR {
	n := g.NumVertices()
	sum := make([]float64, n)
	for i, d := range g.Dst {
		sum[d] += float64(g.EdgeWeight(uint64(i)))
	}
	out := &CSR{
		RowPtr: append([]uint64(nil), g.RowPtr...),
		Dst:    append([]VertexID(nil), g.Dst...),
		Weight: make([]float32, len(g.Dst)),
	}
	for i, d := range g.Dst {
		w := float64(g.EdgeWeight(uint64(i)))
		if sum[d] > 0 {
			out.Weight[i] = float32(w / sum[d])
		}
	}
	return out
}
