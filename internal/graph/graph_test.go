package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// smallGraph is the 5-vertex example from Figure 1 of the paper:
// edges (1,2),(2,3),(2,5),(3,4),(4,1),(4,2),(5,3),(1,3),(4,5) with ids
// shifted to 0-based.
func smallGraph(t testing.TB) *CSR {
	t.Helper()
	edges := []Edge{
		{0, 1, 1}, {1, 2, 1}, {1, 4, 1}, {2, 3, 1}, {3, 0, 1},
		{3, 1, 1}, {4, 2, 1}, {0, 2, 1}, {3, 4, 1},
	}
	g, err := FromEdges(5, edges, false)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := smallGraph(t)
	if got, want := g.NumVertices(), 5; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 9; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if got, want := g.OutDegree(3), 3; got != want {
		t.Errorf("OutDegree(3) = %d, want %d", got, want)
	}
	if got, want := g.OutDegree(2), 1; got != want {
		t.Errorf("OutDegree(2) = %d, want %d", got, want)
	}
	wantN := map[VertexID][]VertexID{
		0: {1, 2},
		1: {2, 4},
		2: {3},
		3: {0, 1, 4},
		4: {2},
	}
	for v, want := range wantN {
		if got := g.Neighbors(v); !reflect.DeepEqual(got, want) {
			t.Errorf("Neighbors(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5, 1}}, false); err == nil {
		t.Error("FromEdges accepted out-of-range destination")
	}
	if _, err := FromEdges(-1, nil, false); err == nil {
		t.Error("FromEdges accepted negative vertex count")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil, false)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	tr := g.Transpose()
	if tr.NumVertices() != 0 {
		t.Errorf("transpose of empty graph has %d vertices", tr.NumVertices())
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, err := FromEdges(10, []Edge{{2, 7, 1}}, false)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if got := g.NumVertices(); got != 10 {
		t.Errorf("NumVertices = %d, want 10", got)
	}
	for v := 0; v < 10; v++ {
		want := 0
		if v == 2 {
			want = 1
		}
		if got := g.OutDegree(VertexID(v)); got != want {
			t.Errorf("OutDegree(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestWeightedEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 0.5}, {1, 2, 2.5}}, true)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if !g.Weighted() {
		t.Fatal("Weighted() = false")
	}
	if got := g.EdgeWeight(g.EdgeOffset(1)); got != 2.5 {
		t.Errorf("weight of edge 1→2 = %g, want 2.5", got)
	}
	if w := g.NeighborWeights(0); len(w) != 1 || w[0] != 0.5 {
		t.Errorf("NeighborWeights(0) = %v", w)
	}
}

func TestUnweightedWeightIsOne(t *testing.T) {
	g := smallGraph(t)
	if g.Weighted() {
		t.Fatal("unweighted graph reports Weighted")
	}
	if got := g.EdgeWeight(0); got != 1 {
		t.Errorf("EdgeWeight = %g, want 1", got)
	}
	if g.NeighborWeights(0) != nil {
		t.Error("NeighborWeights should be nil for unweighted graph")
	}
}

func TestTranspose(t *testing.T) {
	g := smallGraph(t)
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatalf("transpose Validate: %v", err)
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose edges = %d, want %d", tr.NumEdges(), g.NumEdges())
	}
	// Every edge u→v in g must appear as v→u in tr.
	count := func(h *CSR, s, d VertexID) int {
		c := 0
		for _, x := range h.Neighbors(s) {
			if x == d {
				c++
			}
		}
		return c
	}
	for _, e := range g.Edges() {
		if count(tr, e.Dst, e.Src) != count(g, e.Src, e.Dst) {
			t.Errorf("edge %d→%d not mirrored in transpose", e.Src, e.Dst)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := smallGraph(t).SortNeighbors()
	back := g.Transpose().Transpose().SortNeighbors()
	if !reflect.DeepEqual(g.RowPtr, back.RowPtr) {
		t.Errorf("double transpose changed RowPtr")
	}
	if !reflect.DeepEqual(g.Dst, back.Dst) {
		t.Errorf("double transpose changed Dst:\n got %v\nwant %v", back.Dst, g.Dst)
	}
}

func TestRelabelIdentity(t *testing.T) {
	g := smallGraph(t)
	perm := make([]VertexID, g.NumVertices())
	for i := range perm {
		perm[i] = VertexID(i)
	}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	if !reflect.DeepEqual(g.RowPtr, h.RowPtr) || !reflect.DeepEqual(g.Dst, h.Dst) {
		t.Error("identity relabel changed the graph")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := smallGraph(t)
	perm := []VertexID{4, 3, 2, 1, 0}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("relabel edges = %d, want %d", h.NumEdges(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got, want := h.OutDegree(perm[v]), g.OutDegree(VertexID(v)); got != want {
			t.Errorf("degree of relabeled %d = %d, want %d", v, got, want)
		}
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := smallGraph(t)
	if _, err := g.Relabel([]VertexID{0, 0, 1, 2, 3}); err == nil {
		t.Error("Relabel accepted duplicate permutation entries")
	}
	if _, err := g.Relabel([]VertexID{0, 1}); err == nil {
		t.Error("Relabel accepted short permutation")
	}
}

func TestInDegrees(t *testing.T) {
	g := smallGraph(t)
	in := g.InDegrees()
	want := []uint32{1, 2, 3, 1, 2}
	if !reflect.DeepEqual(in, want) {
		t.Errorf("InDegrees = %v, want %v", in, want)
	}
}

func TestSortNeighbors(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 3, 3}, {0, 1, 1}, {0, 2, 2}}, true)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	s := g.SortNeighbors()
	if got := s.Neighbors(0); !reflect.DeepEqual(got, []VertexID{1, 2, 3}) {
		t.Errorf("sorted neighbors = %v", got)
	}
	if got := s.NeighborWeights(0); !reflect.DeepEqual(got, []float32{1, 2, 3}) {
		t.Errorf("weights did not follow their edges: %v", got)
	}
	// Original untouched.
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []VertexID{3, 1, 2}) {
		t.Errorf("SortNeighbors mutated receiver: %v", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := smallGraph(t)
	s := ComputeStats(g)
	if s.Vertices != 5 || s.Edges != 9 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxOutDegree != 3 {
		t.Errorf("MaxOutDegree = %d, want 3", s.MaxOutDegree)
	}
	if s.ZeroOutDegree != 0 {
		t.Errorf("ZeroOutDegree = %d, want 0", s.ZeroOutDegree)
	}
	if s.AvgOutDegree != 9.0/5.0 {
		t.Errorf("AvgOutDegree = %g", s.AvgOutDegree)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := smallGraph(t)
	bad := &CSR{RowPtr: append([]uint64(nil), g.RowPtr...), Dst: append([]VertexID(nil), g.Dst...)}
	bad.RowPtr[2] = bad.RowPtr[3] + 5
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted non-monotone RowPtr")
	}
	bad2 := &CSR{RowPtr: append([]uint64(nil), g.RowPtr...), Dst: append([]VertexID(nil), g.Dst...)}
	bad2.Dst[0] = 99
	if err := bad2.Validate(); err == nil {
		t.Error("Validate accepted out-of-range destination")
	}
	bad3 := &CSR{RowPtr: []uint64{1, 2}, Dst: []VertexID{0}}
	if err := bad3.Validate(); err == nil {
		t.Error("Validate accepted RowPtr[0] != 0")
	}
}

// randomEdges generates a reproducible random edge list for property tests.
func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			Src:    VertexID(rng.Intn(n)),
			Dst:    VertexID(rng.Intn(n)),
			Weight: float32(rng.Float64()),
		}
	}
	return edges
}

// TestPropertyEdgesRoundTrip checks FromEdges ∘ Edges preserves the multiset
// of edges for arbitrary random graphs.
func TestPropertyEdgesRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%64 + 1
		m := int(mRaw) % 512
		rng := rand.New(rand.NewSource(seed))
		edges := randomEdges(rng, n, m)
		g, err := FromEdges(n, edges, true)
		if err != nil {
			return false
		}
		back, err := FromEdges(n, g.Edges(), true)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g.RowPtr, back.RowPtr) &&
			reflect.DeepEqual(g.Dst, back.Dst) &&
			reflect.DeepEqual(g.Weight, back.Weight)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTransposePreservesDegreesums checks sum of out-degrees equals
// sum of in-degrees after transpose, and double transpose is identity on the
// degree sequence.
func TestPropertyTransposeDegrees(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%64 + 1
		m := int(mRaw) % 512
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(n, randomEdges(rng, n, m), false)
		if err != nil {
			return false
		}
		tr := g.Transpose()
		if tr.NumEdges() != g.NumEdges() {
			return false
		}
		in := g.InDegrees()
		for v := 0; v < n; v++ {
			if tr.OutDegree(VertexID(v)) != int(in[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyValidateAlwaysPassesForBuilder checks every graph built by
// FromEdges validates.
func TestPropertyValidateAlwaysPassesForBuilder(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%128 + 1
		m := int(mRaw) % 1024
		rng := rand.New(rand.NewSource(seed))
		g, err := FromEdges(n, randomEdges(rng, n, m), seed%2 == 0)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
