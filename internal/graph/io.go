package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("src dst [weight]"
// per line, '#' or '%' comments) such as the SNAP text format the paper's
// datasets ship in. Vertex count is inferred as 1 + max id unless a larger
// hint is given.
//
// Seekable sources (files, bytes.Reader) get a cheap first pass that
// counts data lines and tracks the max vertex id, so the edge slice is
// allocated once at its final size instead of growing through append
// doublings — on a TW-class text load the growth copies dominate the
// allocator profile. Unseekable streams parse in one pass as before.
func ReadEdgeList(r io.Reader, vertexHint int) (*CSR, error) {
	var edges []Edge
	if s, ok := r.(io.Seeker); ok {
		count, maxSeen, err := prescanEdgeList(r, s)
		if err != nil {
			return nil, err
		}
		if count > 0 {
			edges = make([]Edge, 0, count)
		}
		if maxSeen+1 > vertexHint {
			vertexHint = maxSeen + 1
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	weighted := false
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %d", line, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", line, err)
		}
		if src > maxBinaryVertices || dst > maxBinaryVertices {
			return nil, fmt.Errorf("graph: line %d: vertex id %d exceeds format limit %d",
				line, max(src, dst), uint64(maxBinaryVertices))
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst), Weight: 1}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", line, err)
			}
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("graph: line %d: non-finite weight %v", line, w)
			}
			e.Weight = float32(w)
			weighted = true
		}
		if int(e.Src) > maxID {
			maxID = int(e.Src)
		}
		if int(e.Dst) > maxID {
			maxID = int(e.Dst)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	n := maxID + 1
	if vertexHint > n {
		n = vertexHint
	}
	return FromEdges(n, edges, weighted)
}

// prescanEdgeList scans a seekable edge-list source once, counting data
// lines and the largest leading vertex id it can cheaply extract, then
// rewinds to the starting offset so the parse pass re-reads from the same
// position. Malformed lines are left for the parse pass to diagnose (they
// still count, which at worst over-sizes the slice by the bad lines). A
// failed rewind is fatal: the stream has been consumed and cannot be
// parsed anymore.
func prescanEdgeList(r io.Reader, s io.Seeker) (count, maxID int, err error) {
	start, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		// The source cannot even report its position (e.g. a pipe wearing a
		// Seeker interface); nothing was consumed, parse single-pass.
		return 0, -1, nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	maxID = -1
	for sc.Scan() {
		b := sc.Bytes()
		i := 0
		for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r') {
			i++
		}
		if i == len(b) || b[i] == '#' || b[i] == '%' {
			continue
		}
		count++
		for f := 0; f < 2; f++ {
			for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
				i++
			}
			id, ok := 0, false
			for i < len(b) && b[i] >= '0' && b[i] <= '9' {
				d := int(b[i] - '0')
				if id > (int(maxBinaryVertices)-d)/10 {
					ok = false // overflow; the parse pass reports it
					i = len(b)
					break
				}
				id = id*10 + d
				i++
				ok = true
			}
			if ok && id > maxID {
				maxID = id
			}
		}
	}
	// A scan error (over-long line) is also the parse pass's to report, but
	// only after the rewind restores its input.
	if _, err := s.Seek(start, io.SeekStart); err != nil {
		return 0, -1, fmt.Errorf("graph: rewinding edge list after pre-scan: %w", err)
	}
	if sc.Err() != nil {
		return 0, -1, nil
	}
	return count, maxID, nil
}

// WriteEdgeList emits g as a text edge list readable by ReadEdgeList.
// Weights are emitted only for weighted graphs.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, g.Dst[i], g.Weight[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, g.Dst[i])
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// binaryMagic marks the binary CSR container format.
const binaryMagic = 0x47504353 // "GPCS"

// WriteBinary serializes g in a compact little-endian binary container:
// magic, flags, n, m, RowPtr, Dst, [Weight]. The binary form loads an order
// of magnitude faster than text, which matters for the TW-class workload.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	var flags uint32
	if g.Weighted() {
		flags |= 1
	}
	hdr := []uint64{binaryMagic, uint64(flags), uint64(g.NumVertices()), uint64(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Dst); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Format limits of the binary container. Vertex ids are uint32 on the wire
// and RowPtr entries are uint64, so these are not capacity limits of the
// CSR type — they exist so a malformed or hostile header cannot demand an
// absurd allocation (int(hdr) on a 2⁶³-scale count would even go negative)
// before the truncated payload is discovered.
const (
	maxBinaryVertices = 1 << 31
	maxBinaryEdges    = 1 << 33
)

// readChunked fills a length-n slice in bounded chunks, so a header
// announcing billions of entries on a short file fails with a descriptive
// error after at most one chunk of over-allocation rather than attempting
// the full amount up front.
func readChunked[T uint64 | VertexID | float32](br io.Reader, n int, what string) ([]T, error) {
	const chunk = 1 << 16
	out := make([]T, 0, min(n, chunk))
	for len(out) < n {
		c := min(n-len(out), chunk)
		tmp := make([]T, c)
		if err := binary.Read(br, binary.LittleEndian, tmp); err != nil {
			return nil, fmt.Errorf("graph: reading %s (at entry %d of %d, truncated file?): %w",
				what, len(out), n, err)
		}
		out = append(out, tmp...)
	}
	return out, nil
}

// ReadBinary loads a graph written by WriteBinary. Malformed input —
// wrong magic, unknown flags, header counts beyond the format limits, a
// payload shorter than the header promises, non-monotone row pointers, or
// out-of-range edge targets — fails with a descriptive error; no input
// can make it panic or allocate unboundedly ahead of validation.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	if hdr[1]&^1 != 0 {
		return nil, fmt.Errorf("graph: unknown header flags %#x (newer format?)", hdr[1])
	}
	weighted := hdr[1]&1 != 0
	if hdr[2] > maxBinaryVertices {
		return nil, fmt.Errorf("graph: header vertex count %d exceeds format limit %d", hdr[2], uint64(maxBinaryVertices))
	}
	if hdr[3] > maxBinaryEdges {
		return nil, fmt.Errorf("graph: header edge count %d exceeds format limit %d", hdr[3], uint64(maxBinaryEdges))
	}
	n, m := int(hdr[2]), int(hdr[3])
	g := &CSR{}
	var err error
	if g.RowPtr, err = readChunked[uint64](br, n+1, "RowPtr"); err != nil {
		return nil, err
	}
	if g.Dst, err = readChunked[VertexID](br, m, "Dst"); err != nil {
		return nil, err
	}
	if weighted {
		if g.Weight, err = readChunked[float32](br, m, "Weight"); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
