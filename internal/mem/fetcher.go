package mem

// Fetcher turns byte-range accesses into line-granularity requests with
// backpressure handling. Engines call Fetch to stage a range; Pump (called
// once per cycle) pushes staged lines into the memory controller as queue
// space allows; the range's callback fires when its last line completes.
//
// The processors, generation units and swap engine all read variable-size
// records (vertex properties, CSR edge blocks, spilled event pages); this
// type keeps that splitting logic in one place.
type Fetcher struct {
	mem     *Memory
	pending []lineReq
}

type lineReq struct {
	addr   uint64
	useful uint32
	write  bool
	group  *fetchGroup
}

type fetchGroup struct {
	remaining int
	onDone    func()
}

// NewFetcher wraps mem.
func NewFetcher(mem *Memory) *Fetcher { return &Fetcher{mem: mem} }

// Fetch stages a read (or write) covering [addr, addr+bytes). usefulBytes
// says how much of the range is actually consumed; it is distributed across
// the lines first-to-last. onDone fires when the final line completes; it
// may be nil. A zero-byte fetch completes immediately.
func (f *Fetcher) Fetch(addr, bytes uint64, usefulBytes uint64, write bool, onDone func()) {
	if bytes == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	first := addr / LineBytes
	last := (addr + bytes - 1) / LineBytes
	g := &fetchGroup{remaining: int(last-first) + 1, onDone: onDone}
	useful := usefulBytes
	for line := first; line <= last; line++ {
		u := uint64(LineBytes)
		if u > useful {
			u = useful
		}
		useful -= u
		f.pending = append(f.pending, lineReq{
			addr:   line * LineBytes,
			useful: uint32(u),
			write:  write,
			group:  g,
		})
	}
}

// Pump pushes staged lines into the memory controller until one is refused.
// Call once per cycle.
func (f *Fetcher) Pump() {
	for len(f.pending) > 0 {
		lr := f.pending[0]
		g := lr.group
		ok := f.mem.Enqueue(Request{
			Addr:        lr.addr,
			Write:       lr.write,
			UsefulBytes: lr.useful,
			OnComplete: func() {
				g.remaining--
				if g.remaining == 0 && g.onDone != nil {
					g.onDone()
				}
			},
		})
		if !ok {
			return
		}
		f.pending = f.pending[1:]
	}
}

// Idle reports whether the fetcher has no staged lines (in-flight lines may
// still exist inside the memory controller).
func (f *Fetcher) Idle() bool { return len(f.pending) == 0 }

// PendingLines returns the number of staged-but-unissued lines.
func (f *Fetcher) PendingLines() int { return len(f.pending) }
