package mem

import (
	"testing"

	"graphpulse/internal/sim"
)

func run(t *testing.T, m *Memory, done func() bool, max uint64) *sim.Engine {
	t.Helper()
	e := sim.NewEngine()
	e.Register(m)
	if err := e.RunUntil(nil, done, max); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	return e
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	mutations := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.BanksPerChannel = 0 },
		func(c *Config) { c.RowBytes = 8 },
		func(c *Config) { c.RowHitCycles = 0 },
		func(c *Config) { c.RowMissCycles = 1 },
		func(c *Config) { c.BurstCycles = 0 },
		func(c *Config) { c.QueueDepth = 0 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(Config{})
}

func TestSingleReadCompletes(t *testing.T) {
	m := New(DefaultConfig())
	done := false
	if !m.Enqueue(Request{Addr: 0x1000, UsefulBytes: 8, OnComplete: func() { done = true }}) {
		t.Fatal("Enqueue refused on empty queue")
	}
	run(t, m, func() bool { return done }, 10_000)
	if m.Stats().Counter("reads") != 1 {
		t.Errorf("reads = %d, want 1", m.Stats().Counter("reads"))
	}
	if m.Stats().Counter("bytes_transferred") != LineBytes {
		t.Errorf("bytes_transferred = %d", m.Stats().Counter("bytes_transferred"))
	}
	if m.Stats().Counter("bytes_useful") != 8 {
		t.Errorf("bytes_useful = %d, want 8", m.Stats().Counter("bytes_useful"))
	}
}

func TestWriteCounted(t *testing.T) {
	m := New(DefaultConfig())
	done := false
	m.Enqueue(Request{Addr: 64, Write: true, UsefulBytes: 64, OnComplete: func() { done = true }})
	run(t, m, func() bool { return done }, 10_000)
	if m.Stats().Counter("writes") != 1 || m.Stats().Counter("reads") != 0 {
		t.Errorf("reads/writes = %d/%d", m.Stats().Counter("reads"), m.Stats().Counter("writes"))
	}
}

func TestFirstAccessIsRowMiss(t *testing.T) {
	m := New(DefaultConfig())
	done := 0
	m.Enqueue(Request{Addr: 0, OnComplete: func() { done++ }})
	run(t, m, func() bool { return done == 1 }, 10_000)
	if m.Stats().Counter("row_misses") != 1 || m.Stats().Counter("row_hits") != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/1",
			m.Stats().Counter("row_hits"), m.Stats().Counter("row_misses"))
	}
}

func TestSequentialSameRowHits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1 // keep the stream on one channel/bank/row
	m := New(cfg)
	done := 0
	for i := 0; i < 8; i++ {
		m.Enqueue(Request{Addr: uint64(i * LineBytes), OnComplete: func() { done++ }})
	}
	run(t, m, func() bool { return done == 8 }, 100_000)
	if m.Stats().Counter("row_misses") != 1 {
		t.Errorf("row_misses = %d, want 1 (first access only)", m.Stats().Counter("row_misses"))
	}
	if m.Stats().Counter("row_hits") != 7 {
		t.Errorf("row_hits = %d, want 7", m.Stats().Counter("row_hits"))
	}
}

func TestRandomAccessesMostlyMiss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	m := New(cfg)
	done := 0
	// Strided far apart: every access opens a new row in the same bank.
	stride := cfg.RowBytes * uint64(cfg.BanksPerChannel) * 2
	for i := 0; i < 8; i++ {
		m.Enqueue(Request{Addr: uint64(i) * stride, OnComplete: func() { done++ }})
	}
	run(t, m, func() bool { return done == 8 }, 100_000)
	if m.Stats().Counter("row_misses") != 8 {
		t.Errorf("row_misses = %d, want 8", m.Stats().Counter("row_misses"))
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	const n = 64
	seqCfg := DefaultConfig()
	seq := New(seqCfg)
	doneSeq := 0
	e1 := sim.NewEngine()
	e1.Register(seq)
	issued := 0
	for e1.Cycle() < 1_000_000 && doneSeq < n {
		for issued < n && seq.Enqueue(Request{Addr: uint64(issued * LineBytes), OnComplete: func() { doneSeq++ }}) {
			issued++
		}
		e1.Step()
	}
	seqCycles := e1.Cycle()

	rnd := New(seqCfg)
	doneRnd := 0
	e2 := sim.NewEngine()
	e2.Register(rnd)
	stride := seqCfg.RowBytes*uint64(seqCfg.BanksPerChannel)*uint64(seqCfg.Channels) + LineBytes
	issued = 0
	for e2.Cycle() < 1_000_000 && doneRnd < n {
		for issued < n && rnd.Enqueue(Request{Addr: uint64(issued) * stride, OnComplete: func() { doneRnd++ }}) {
			issued++
		}
		e2.Step()
	}
	rndCycles := e2.Cycle()
	if doneSeq != n || doneRnd != n {
		t.Fatalf("completions: seq=%d rnd=%d", doneSeq, doneRnd)
	}
	if seqCycles >= rndCycles {
		t.Errorf("sequential (%d cycles) not faster than random (%d cycles)", seqCycles, rndCycles)
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.QueueDepth = 2
	m := New(cfg)
	if !m.Enqueue(Request{Addr: 0}) || !m.Enqueue(Request{Addr: 64}) {
		t.Fatal("first two enqueues refused")
	}
	if m.Enqueue(Request{Addr: 128}) {
		t.Error("third enqueue accepted with QueueDepth=2")
	}
	if m.Stats().Counter("queue_rejects") != 1 {
		t.Errorf("queue_rejects = %d", m.Stats().Counter("queue_rejects"))
	}
	if !m.CanEnqueue(4096) == true && cfg.QueueDepth > 0 {
		t.Log("CanEnqueue consistent")
	}
	if m.CanEnqueue(0) {
		t.Error("CanEnqueue true on full queue")
	}
}

func TestBandwidthCap(t *testing.T) {
	// Saturate one channel with row-hit traffic; throughput must approach
	// one line per BurstCycles and never exceed it.
	cfg := DefaultConfig()
	cfg.Channels = 1
	m := New(cfg)
	e := sim.NewEngine()
	e.Register(m)
	doneLines := 0
	addr := uint64(0)
	const total = 500
	for doneLines < total {
		for m.Enqueue(Request{Addr: addr % cfg.RowBytes, OnComplete: func() { doneLines++ }}) {
			addr += LineBytes
		}
		e.Step()
		if e.Cycle() > 1_000_000 {
			t.Fatal("bandwidth test did not complete")
		}
	}
	minCycles := uint64(total) * cfg.BurstCycles
	if e.Cycle() < minCycles {
		t.Errorf("completed %d lines in %d cycles, below the physical bus cap of %d",
			total, e.Cycle(), minCycles)
	}
	// Sustained throughput should be within 25% of the cap.
	if e.Cycle() > minCycles*5/4+uint64(cfg.RowMissCycles) {
		t.Errorf("sustained throughput too low: %d cycles for %d lines (cap %d)",
			e.Cycle(), total, minCycles)
	}
}

func TestChannelParallelism(t *testing.T) {
	// The same load spread over 4 channels should finish close to 4x faster
	// than on 1 channel.
	elapsed := func(channels int) uint64 {
		cfg := DefaultConfig()
		cfg.Channels = channels
		m := New(cfg)
		e := sim.NewEngine()
		e.Register(m)
		done := 0
		const total = 400
		addr := uint64(0)
		for done < total {
			for addr < total*LineBytes && m.Enqueue(Request{Addr: addr, OnComplete: func() { done++ }}) {
				addr += LineBytes
			}
			e.Step()
			if e.Cycle() > 1_000_000 {
				t.Fatal("did not complete")
			}
		}
		return e.Cycle()
	}
	c1 := elapsed(1)
	c4 := elapsed(4)
	if c4*3 > c1 {
		t.Errorf("4 channels (%d cycles) not ≥3x faster than 1 channel (%d cycles)", c4, c1)
	}
}

func TestUtilization(t *testing.T) {
	m := New(DefaultConfig())
	if m.Utilization() != 1 {
		t.Error("utilization of idle memory != 1")
	}
	done := 0
	m.Enqueue(Request{Addr: 0, UsefulBytes: 16, OnComplete: func() { done++ }})
	m.Enqueue(Request{Addr: 1 << 20, UsefulBytes: 64, OnComplete: func() { done++ }})
	run(t, m, func() bool { return done == 2 }, 10_000)
	want := float64(16+64) / float64(2*LineBytes)
	if got := m.Utilization(); got != want {
		t.Errorf("Utilization = %g, want %g", got, want)
	}
}

func TestUsefulBytesClamped(t *testing.T) {
	m := New(DefaultConfig())
	done := false
	m.Enqueue(Request{Addr: 0, UsefulBytes: 500, OnComplete: func() { done = true }})
	run(t, m, func() bool { return done }, 10_000)
	if got := m.Stats().Counter("bytes_useful"); got != LineBytes {
		t.Errorf("bytes_useful = %d, want clamped to %d", got, LineBytes)
	}
}

func TestPendingAndLatency(t *testing.T) {
	m := New(DefaultConfig())
	m.Enqueue(Request{Addr: 0})
	if m.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", m.Pending())
	}
	run(t, m, func() bool { return m.Pending() == 0 }, 10_000)
	if m.LatencyMean() <= 0 {
		t.Errorf("LatencyMean = %g, want > 0", m.LatencyMean())
	}
}

func TestRefreshClosesRowsAndCosts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.RefreshInterval = 200
	cfg.RefreshCycles = 50
	m := New(cfg)
	e := sim.NewEngine()
	e.Register(m)
	// Keep a same-row stream going across several refresh windows.
	done := 0
	const total = 150
	issued := 0
	for done < total {
		for issued < total && m.Enqueue(Request{Addr: uint64(issued%8) * LineBytes, OnComplete: func() { done++ }}) {
			issued++
		}
		e.Step()
		if e.Cycle() > 1_000_000 {
			t.Fatal("did not complete under refresh")
		}
	}
	st := m.Stats()
	if st.Counter("refreshes") == 0 {
		t.Error("no refreshes recorded")
	}
	// Each refresh closes the row, so the stream must take more than one
	// row miss despite touching a single row.
	if st.Counter("row_misses") < 2 {
		t.Errorf("row_misses = %d, want ≥ 2 (refresh closes rows)", st.Counter("row_misses"))
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 0
	m := New(cfg)
	done := false
	m.Enqueue(Request{Addr: 0, OnComplete: func() { done = true }})
	run(t, m, func() bool { return done }, 100_000)
	if m.Stats().Counter("refreshes") != 0 {
		t.Error("refreshes recorded while disabled")
	}
}

func TestRefreshConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 100
	cfg.RefreshCycles = 0
	if err := cfg.Validate(); err == nil {
		t.Error("refresh interval without duration accepted")
	}
}
