package mem

import (
	"testing"

	"graphpulse/internal/sim"
)

func TestFetcherZeroBytes(t *testing.T) {
	f := NewFetcher(New(DefaultConfig()))
	done := false
	f.Fetch(0, 0, 0, false, func() { done = true })
	if !done {
		t.Error("zero-byte fetch did not complete immediately")
	}
	if !f.Idle() {
		t.Error("fetcher not idle after zero-byte fetch")
	}
}

func TestFetcherSingleLine(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	done := false
	f.Fetch(100, 8, 8, false, func() { done = true })
	if f.PendingLines() != 1 {
		t.Fatalf("PendingLines = %d, want 1", f.PendingLines())
	}
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 10_000 {
			t.Fatal("fetch never completed")
		}
	}
	if m.Stats().Counter("reads") != 1 {
		t.Errorf("reads = %d, want 1", m.Stats().Counter("reads"))
	}
}

func TestFetcherSpansLines(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	// 8 bytes starting 4 bytes before a line boundary → 2 lines.
	f.Fetch(60, 8, 8, false, nil)
	if f.PendingLines() != 2 {
		t.Errorf("PendingLines = %d, want 2", f.PendingLines())
	}
	// 130 bytes from 0 → 3 lines.
	f2 := NewFetcher(m)
	f2.Fetch(0, 130, 130, false, nil)
	if f2.PendingLines() != 3 {
		t.Errorf("PendingLines = %d, want 3", f2.PendingLines())
	}
}

func TestFetcherCallbackFiresOnceAfterAllLines(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	calls := 0
	f.Fetch(0, 1024, 1024, false, func() { calls++ })
	e := sim.NewEngine()
	e.Register(m)
	for calls == 0 {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("fetch never completed")
		}
	}
	// Run extra cycles; callback must not refire.
	for i := 0; i < 1000; i++ {
		e.Step()
	}
	if calls != 1 {
		t.Errorf("callback fired %d times, want 1", calls)
	}
	if got := m.Stats().Counter("reads"); got != 1024/LineBytes {
		t.Errorf("reads = %d, want %d", got, 1024/LineBytes)
	}
}

func TestFetcherUsefulDistribution(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	// 3 lines transferred, only 80 bytes useful: 64 + 16 + 0.
	done := false
	f.Fetch(0, 192, 80, false, func() { done = true })
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("fetch never completed")
		}
	}
	if got := m.Stats().Counter("bytes_useful"); got != 80 {
		t.Errorf("bytes_useful = %d, want 80", got)
	}
	if got := m.Stats().Counter("bytes_transferred"); got != 192 {
		t.Errorf("bytes_transferred = %d, want 192", got)
	}
}

func TestFetcherBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.QueueDepth = 2
	m := New(cfg)
	f := NewFetcher(m)
	done := false
	f.Fetch(0, 10*LineBytes, 10*LineBytes, false, func() { done = true })
	f.Pump()
	if f.PendingLines() != 8 { // 2 accepted, 8 staged
		t.Errorf("PendingLines after first pump = %d, want 8", f.PendingLines())
	}
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("fetch never completed under backpressure")
		}
	}
	if m.Stats().Counter("reads") != 10 {
		t.Errorf("reads = %d, want 10", m.Stats().Counter("reads"))
	}
}

func TestFetcherWrite(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	done := false
	f.Fetch(0, 128, 128, true, func() { done = true })
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("write never completed")
		}
	}
	if m.Stats().Counter("writes") != 2 {
		t.Errorf("writes = %d, want 2", m.Stats().Counter("writes"))
	}
}
