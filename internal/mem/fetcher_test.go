package mem

import (
	"testing"

	"graphpulse/internal/sim"
)

func TestFetcherZeroBytes(t *testing.T) {
	f := NewFetcher(New(DefaultConfig()))
	done := false
	f.Fetch(0, 0, 0, false, func() { done = true })
	if !done {
		t.Error("zero-byte fetch did not complete immediately")
	}
	if !f.Idle() {
		t.Error("fetcher not idle after zero-byte fetch")
	}
}

func TestFetcherSingleLine(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	done := false
	f.Fetch(100, 8, 8, false, func() { done = true })
	if f.PendingLines() != 1 {
		t.Fatalf("PendingLines = %d, want 1", f.PendingLines())
	}
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 10_000 {
			t.Fatal("fetch never completed")
		}
	}
	if m.Stats().Counter("reads") != 1 {
		t.Errorf("reads = %d, want 1", m.Stats().Counter("reads"))
	}
}

func TestFetcherSpansLines(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	// 8 bytes starting 4 bytes before a line boundary → 2 lines.
	f.Fetch(60, 8, 8, false, nil)
	if f.PendingLines() != 2 {
		t.Errorf("PendingLines = %d, want 2", f.PendingLines())
	}
	// 130 bytes from 0 → 3 lines.
	f2 := NewFetcher(m)
	f2.Fetch(0, 130, 130, false, nil)
	if f2.PendingLines() != 3 {
		t.Errorf("PendingLines = %d, want 3", f2.PendingLines())
	}
}

func TestFetcherCallbackFiresOnceAfterAllLines(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	calls := 0
	f.Fetch(0, 1024, 1024, false, func() { calls++ })
	e := sim.NewEngine()
	e.Register(m)
	for calls == 0 {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("fetch never completed")
		}
	}
	// Run extra cycles; callback must not refire.
	for i := 0; i < 1000; i++ {
		e.Step()
	}
	if calls != 1 {
		t.Errorf("callback fired %d times, want 1", calls)
	}
	if got := m.Stats().Counter("reads"); got != 1024/LineBytes {
		t.Errorf("reads = %d, want %d", got, 1024/LineBytes)
	}
}

func TestFetcherUsefulDistribution(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	// 3 lines transferred, only 80 bytes useful: 64 + 16 + 0.
	done := false
	f.Fetch(0, 192, 80, false, func() { done = true })
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("fetch never completed")
		}
	}
	if got := m.Stats().Counter("bytes_useful"); got != 80 {
		t.Errorf("bytes_useful = %d, want 80", got)
	}
	if got := m.Stats().Counter("bytes_transferred"); got != 192 {
		t.Errorf("bytes_transferred = %d, want 192", got)
	}
}

func TestFetcherBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.QueueDepth = 2
	m := New(cfg)
	f := NewFetcher(m)
	done := false
	f.Fetch(0, 10*LineBytes, 10*LineBytes, false, func() { done = true })
	f.Pump()
	if f.PendingLines() != 8 { // 2 accepted, 8 staged
		t.Errorf("PendingLines after first pump = %d, want 8", f.PendingLines())
	}
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("fetch never completed under backpressure")
		}
	}
	if m.Stats().Counter("reads") != 10 {
		t.Errorf("reads = %d, want 10", m.Stats().Counter("reads"))
	}
}

// TestFetcherLineStraddleUseful checks the useful-byte split for a small
// fetch that straddles a line boundary: the policy charges useful bytes
// first-to-last, so the first line absorbs all 8 useful bytes and the
// second line is pure overfetch.
func TestFetcherLineStraddleUseful(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	done := false
	f.Fetch(LineBytes-4, 8, 8, false, func() { done = true })
	if f.PendingLines() != 2 {
		t.Fatalf("PendingLines = %d, want 2", f.PendingLines())
	}
	if f.pending[0].useful != 8 || f.pending[1].useful != 0 {
		t.Errorf("useful split = (%d,%d), want (8,0)", f.pending[0].useful, f.pending[1].useful)
	}
	if f.pending[0].addr != 0 || f.pending[1].addr != LineBytes {
		t.Errorf("line addrs = (%d,%d), want (0,%d)", f.pending[0].addr, f.pending[1].addr, LineBytes)
	}
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("fetch never completed")
		}
	}
	if got := m.Stats().Counter("bytes_useful"); got != 8 {
		t.Errorf("bytes_useful = %d, want 8", got)
	}
	if got := m.Stats().Counter("bytes_transferred"); got != 2*LineBytes {
		t.Errorf("bytes_transferred = %d, want %d", got, 2*LineBytes)
	}
}

// TestFetcherZeroUseful models a zero-degree vertex: its CSR row is
// touched (a full line transfers) but no edge data is consumed, so the
// whole transfer is overfetch.
func TestFetcherZeroUseful(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	done := false
	f.Fetch(0, LineBytes, 0, false, func() { done = true })
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("fetch never completed")
		}
	}
	if got := m.Stats().Counter("bytes_useful"); got != 0 {
		t.Errorf("bytes_useful = %d, want 0", got)
	}
	if got := m.Stats().Counter("bytes_transferred"); got != LineBytes {
		t.Errorf("bytes_transferred = %d, want %d", got, LineBytes)
	}
}

// TestFetcherBoundaryAlignment pins the line-splitting arithmetic at the
// edges: exact-line fetches stay single-line, the last byte of a line does
// not spill into the next, and the first byte of the next line maps there.
func TestFetcherBoundaryAlignment(t *testing.T) {
	cases := []struct {
		addr, bytes uint64
		lines       int
		firstLine   uint64
	}{
		{0, LineBytes, 1, 0},                 // exactly one aligned line
		{LineBytes, LineBytes, 1, LineBytes}, // aligned to the second line
		{LineBytes - 1, 1, 1, 0},             // last byte of line 0
		{LineBytes, 1, 1, LineBytes},         // first byte of line 1
		{LineBytes - 1, 2, 2, 0},             // minimal straddle
		{0, 2 * LineBytes, 2, 0},             // two full lines
	}
	for _, tc := range cases {
		f := NewFetcher(New(DefaultConfig()))
		f.Fetch(tc.addr, tc.bytes, tc.bytes, false, nil)
		if f.PendingLines() != tc.lines {
			t.Errorf("Fetch(%d,%d): %d lines, want %d", tc.addr, tc.bytes, f.PendingLines(), tc.lines)
			continue
		}
		if f.pending[0].addr != tc.firstLine {
			t.Errorf("Fetch(%d,%d): first line at %d, want %d", tc.addr, tc.bytes, f.pending[0].addr, tc.firstLine)
		}
	}
}

// TestFetcherFIFOAcrossGroupsUnderBackpressure stages several fetch groups
// into a deliberately shallow memory queue and checks that completions fire
// in issue order — the fetcher must not reorder or starve an earlier group
// when Pump hits backpressure mid-group.
func TestFetcherFIFOAcrossGroupsUnderBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.QueueDepth = 1
	m := New(cfg)
	f := NewFetcher(m)
	var order []int
	f.Fetch(0, 3*LineBytes, 3*LineBytes, false, func() { order = append(order, 0) })
	f.Fetch(8*LineBytes, LineBytes, LineBytes, false, func() { order = append(order, 1) })
	f.Fetch(16*LineBytes, 2*LineBytes, 2*LineBytes, true, func() { order = append(order, 2) })
	e := sim.NewEngine()
	e.Register(m)
	for len(order) < 3 {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatalf("groups stalled; completed so far: %v", order)
		}
	}
	for i, want := range []int{0, 1, 2} {
		if order[i] != want {
			t.Fatalf("completion order = %v, want [0 1 2]", order)
		}
	}
	if got := m.Stats().Counter("reads"); got != 4 {
		t.Errorf("reads = %d, want 4", got)
	}
	if got := m.Stats().Counter("writes"); got != 2 {
		t.Errorf("writes = %d, want 2", got)
	}
}

func TestFetcherWrite(t *testing.T) {
	m := New(DefaultConfig())
	f := NewFetcher(m)
	done := false
	f.Fetch(0, 128, 128, true, func() { done = true })
	e := sim.NewEngine()
	e.Register(m)
	for !done {
		f.Pump()
		e.Step()
		if e.Cycle() > 100_000 {
			t.Fatal("write never completed")
		}
	}
	if m.Stats().Counter("writes") != 2 {
		t.Errorf("writes = %d, want 2", m.Stats().Counter("writes"))
	}
}
