// Package mem models the off-chip memory system shared by the GraphPulse
// and Graphicionado accelerator models: a multi-channel DDR3 main memory
// with per-bank row buffers, FR-FCFS-style scheduling, a shared data bus
// per channel, and first-class accounting of off-chip traffic.
//
// It is the stand-in for DRAMSim2 in the paper's methodology. The model is
// request-accurate rather than command-accurate: each 64-byte line access
// pays a row-hit or row-miss latency at its bank, then occupies the channel
// data bus for a burst, which caps sustained bandwidth at the configured
// per-channel rate (4 × 17 GB/s in the paper's Table III).
//
// Two counters feed the paper's figures directly:
//   - total line transfers → Figure 11 (off-chip accesses),
//   - useful bytes vs transferred bytes → Figure 12 (data utilization).
//
// Stats exposes the full counter set (reads, writes, row hits/misses,
// bytes, rejects, refreshes, and a latency histogram) as a stats.Set, and
// RegisterProbes wires the same counters into a telemetry.Recorder as
// time-resolved series. METRICS.md documents every name.
package mem

import (
	"fmt"

	"graphpulse/internal/sim/fault"
	"graphpulse/internal/sim/stats"
	"graphpulse/internal/sim/telemetry"
)

// LineBytes is the off-chip transfer granularity (one DRAM burst).
const LineBytes = 64

// Config sizes and times the memory system. Cycle counts are in accelerator
// clock cycles (1 GHz ⇒ 1 cycle = 1 ns).
type Config struct {
	// Channels is the number of independent memory channels.
	Channels int
	// BanksPerChannel is the number of banks (row buffers) per channel.
	BanksPerChannel int
	// RowBytes is the DRAM row (page) size per bank.
	RowBytes uint64
	// RowHitCycles is access latency when the row buffer holds the row
	// (tCAS-class).
	RowHitCycles uint64
	// RowMissCycles is access latency on a row-buffer miss
	// (tRP+tRCD+tCAS-class).
	RowMissCycles uint64
	// BurstCycles is data-bus occupancy per 64-byte line. 4 cycles at
	// 1 GHz ⇒ 16 GB/s per channel, matching Table III's 17 GB/s channels.
	BurstCycles uint64
	// QueueDepth is the per-channel request queue capacity; Enqueue fails
	// (backpressure) when full.
	QueueDepth int
	// RefreshInterval is the cycles between periodic refreshes per channel
	// (tREFI ≈ 7.8 µs ⇒ 7800 cycles at 1 GHz). 0 disables refresh.
	RefreshInterval uint64
	// RefreshCycles is the channel lock-out per refresh (tRFC class). All
	// row buffers close when a refresh completes.
	RefreshCycles uint64
}

// DefaultConfig matches the paper's Table III memory subsystem.
func DefaultConfig() Config {
	return Config{
		Channels:        4,
		BanksPerChannel: 8,
		RowBytes:        8192,
		RowHitCycles:    14,
		RowMissCycles:   38,
		BurstCycles:     4,
		QueueDepth:      32,
		RefreshInterval: 7800,
		RefreshCycles:   350,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Channels < 1:
		return fmt.Errorf("mem: Channels=%d", c.Channels)
	case c.BanksPerChannel < 1:
		return fmt.Errorf("mem: BanksPerChannel=%d", c.BanksPerChannel)
	case c.RowBytes < LineBytes:
		return fmt.Errorf("mem: RowBytes=%d < line size", c.RowBytes)
	case c.RowHitCycles == 0 || c.RowMissCycles < c.RowHitCycles:
		return fmt.Errorf("mem: hit/miss cycles %d/%d", c.RowHitCycles, c.RowMissCycles)
	case c.BurstCycles == 0:
		return fmt.Errorf("mem: BurstCycles=0")
	case c.QueueDepth < 1:
		return fmt.Errorf("mem: QueueDepth=%d", c.QueueDepth)
	case c.RefreshInterval > 0 && c.RefreshCycles == 0:
		return fmt.Errorf("mem: RefreshInterval set with RefreshCycles=0")
	}
	return nil
}

// Request is one line-granularity memory access. Addr is a byte address;
// the line containing it is transferred.
type Request struct {
	Addr uint64
	// Write marks stores; reads and writes share timing in this model.
	Write bool
	// UsefulBytes is how many of the 64 transferred bytes the issuer will
	// actually consume (Figure 12's numerator). Clamped to LineBytes.
	UsefulBytes uint32
	// OnComplete, if non-nil, runs in the cycle the data transfer finishes.
	OnComplete func()
}

type inflight struct {
	req      Request
	doneAt   uint64
	enqueued uint64
	// attempts counts failed tries of this transaction (fault injection);
	// notBefore holds it out of scheduling until its backoff expires.
	attempts  int
	notBefore uint64
}

// Retry policy for injected transaction failures: exponential backoff
// starting at dramRetryBackoff cycles, and after dramMaxAttempts failures
// the transaction is forced through (a real controller would raise a
// machine-check; the model guarantees forward progress so a fault sweep
// measures slowdown, not hangs).
const (
	dramRetryBackoff = 16
	dramMaxAttempts  = 8
)

type bank struct {
	openRow   uint64
	rowValid  bool
	busyUntil uint64
}

type channel struct {
	queue       []inflight
	service     []inflight
	banks       []bank
	busFreeAt   uint64
	busyAccum   uint64
	nextRefresh uint64
}

// Memory is the full multi-channel memory system. It implements
// sim.Component.
type Memory struct {
	cfg   Config
	chans []channel
	stats *stats.Set
	lat   *stats.Histogram
	cycle uint64

	// Hot-path counters (folded into Stats() on read).
	reads, writes        int64
	rowHits, rowMisses   int64
	bytesMoved, bytesUse int64
	rejects              int64
	refreshes            int64
	faults, retries      int64

	// inj, when non-nil, fails transactions at completion time so the
	// retry-with-backoff path gets exercised (see InjectFaults).
	inj *fault.Injector
}

// New builds a Memory from cfg, panicking on invalid configuration
// (configurations are compile-time constants in the models).
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Memory{cfg: cfg, stats: stats.NewSet()}
	m.lat = m.stats.Histogram("latency", []int64{16, 32, 64, 128, 256, 512, 1024})
	m.chans = make([]channel, cfg.Channels)
	for i := range m.chans {
		m.chans[i].banks = make([]bank, cfg.BanksPerChannel)
	}
	return m
}

// Name implements sim.Component.
func (m *Memory) Name() string { return "memory" }

// Stats exposes the traffic counters:
//
//	reads, writes        – line transfers by kind
//	row_hits, row_misses – row-buffer behaviour
//	bytes_transferred    – total off-chip bytes (lines × 64)
//	bytes_useful         – bytes the issuers declared they consume
func (m *Memory) Stats() *stats.Set {
	set := func(name string, v int64) {
		m.stats.Add(name, v-m.stats.Counter(name))
	}
	set("reads", m.reads)
	set("writes", m.writes)
	set("row_hits", m.rowHits)
	set("row_misses", m.rowMisses)
	set("bytes_transferred", m.bytesMoved)
	set("bytes_useful", m.bytesUse)
	set("queue_rejects", m.rejects)
	set("refreshes", m.refreshes)
	set("dram_faults", m.faults)
	set("dram_retries", m.retries)
	return m.stats
}

// InjectFaults attaches a fault injector (nil = disabled): transactions
// fail at completion with the injector's DRAM fault rate and are retried
// with exponential backoff. Failed transfers still occupied the bank and
// bus, so faults cost bandwidth and latency but never lose a request —
// OnComplete fires exactly once, on the try that succeeds.
func (m *Memory) InjectFaults(inj *fault.Injector) { m.inj = inj }

// RegisterProbes wires this memory's traffic counters into a telemetry
// Recorder under the given component name (see METRICS.md for the series).
// Safe on a nil Recorder (telemetry disabled).
func (m *Memory) RegisterProbes(r *telemetry.Recorder, component string) {
	r.Rate(component, "dram_bytes", "bytes", func() int64 { return m.bytesMoved })
	r.Rate(component, "dram_reads", "lines", func() int64 { return m.reads })
	r.Rate(component, "dram_writes", "lines", func() int64 { return m.writes })
	r.Rate(component, "dram_row_hits", "accesses", func() int64 { return m.rowHits })
	r.Rate(component, "dram_row_misses", "accesses", func() int64 { return m.rowMisses })
	r.Gauge(component, "dram_pending", "requests", func() int64 { return int64(m.Pending()) })
}

// Transfers returns the total number of off-chip line transfers so far.
func (m *Memory) Transfers() int64 { return m.reads + m.writes }

// Utilization returns useful bytes / transferred bytes (1 if no traffic).
func (m *Memory) Utilization() float64 {
	if m.bytesMoved == 0 {
		return 1
	}
	return float64(m.bytesUse) / float64(m.bytesMoved)
}

// BusyFraction returns mean data-bus occupancy across channels over the
// cycles simulated so far.
func (m *Memory) BusyFraction() float64 {
	if m.cycle == 0 {
		return 0
	}
	var busy uint64
	for i := range m.chans {
		busy += m.chans[i].busyAccum
	}
	return float64(busy) / float64(m.cycle*uint64(len(m.chans)))
}

// channelOf maps a line address to its channel (line-interleaved so
// sequential streams stripe across all channels).
func (m *Memory) channelOf(addr uint64) int {
	return int((addr / LineBytes) % uint64(m.cfg.Channels))
}

func (m *Memory) bankOf(addr uint64) int {
	return int((addr / m.cfg.RowBytes) % uint64(m.cfg.BanksPerChannel))
}

func (m *Memory) rowOf(addr uint64) uint64 {
	return addr / (m.cfg.RowBytes * uint64(m.cfg.BanksPerChannel) * uint64(m.cfg.Channels))
}

// CanEnqueue reports whether the channel serving addr has queue space.
func (m *Memory) CanEnqueue(addr uint64) bool {
	ch := &m.chans[m.channelOf(addr)]
	return len(ch.queue) < m.cfg.QueueDepth
}

// Enqueue submits a request. It returns false (and does nothing) when the
// target channel queue is full; the caller must retry next cycle — that is
// the backpressure path that makes the engines bandwidth-bound.
func (m *Memory) Enqueue(req Request) bool {
	ch := &m.chans[m.channelOf(req.Addr)]
	if len(ch.queue) >= m.cfg.QueueDepth {
		m.rejects++
		return false
	}
	if req.UsefulBytes > LineBytes {
		req.UsefulBytes = LineBytes
	}
	ch.queue = append(ch.queue, inflight{req: req, enqueued: m.cycle})
	return true
}

// Pending returns the number of requests queued or in service.
func (m *Memory) Pending() int {
	n := 0
	for i := range m.chans {
		n += len(m.chans[i].queue) + len(m.chans[i].service)
	}
	return n
}

// Tick advances every channel one cycle: completes finished transfers,
// then issues at most one new access per channel using row-hit-first
// (FR-FCFS-style) selection.
func (m *Memory) Tick(cycle uint64) {
	m.cycle = cycle
	for ci := range m.chans {
		ch := &m.chans[ci]
		// Periodic refresh: lock the channel for tRFC and close every row
		// buffer (the next access to each bank is a row miss).
		if m.cfg.RefreshInterval > 0 && cycle >= ch.nextRefresh {
			if ch.nextRefresh == 0 {
				// Stagger channels so refreshes don't align.
				ch.nextRefresh = m.cfg.RefreshInterval * uint64(ci+1) / uint64(len(m.chans))
			} else {
				free := cycle + m.cfg.RefreshCycles
				if free > ch.busFreeAt {
					ch.busFreeAt = free
				}
				for b := range ch.banks {
					ch.banks[b].rowValid = false
				}
				ch.nextRefresh += m.cfg.RefreshInterval
				m.refreshes++
			}
		}
		// Completions.
		for i := 0; i < len(ch.service); {
			if ch.service[i].doneAt <= cycle {
				fin := ch.service[i]
				ch.service[i] = ch.service[len(ch.service)-1]
				ch.service = ch.service[:len(ch.service)-1]
				// Injected transaction failure: the transfer is discarded at
				// completion (it already paid its bank and bus time) and the
				// request requeues after an exponential backoff. The queue-
				// depth bound is not enforced for retries — the controller
				// holds its own failed requests rather than dropping them.
				if fin.attempts < dramMaxAttempts && m.inj.Decide(fault.PointDRAM) {
					m.faults++
					m.retries++
					fin.attempts++
					fin.notBefore = cycle + dramRetryBackoff<<(fin.attempts-1)
					fin.doneAt = 0
					ch.queue = append(ch.queue, fin)
					continue
				}
				m.complete(fin)
				continue
			}
			i++
		}
		if cycle < ch.busFreeAt {
			ch.busyAccum++
		}
		if len(ch.queue) == 0 {
			continue
		}
		// Row-hit-first pick: first queued request whose bank is free and
		// whose row is open; else the oldest request with a free bank.
		pick := -1
		for i, f := range ch.queue {
			if f.notBefore > cycle {
				continue // backing off after an injected failure
			}
			b := &ch.banks[m.bankOf(f.req.Addr)]
			if b.busyUntil > cycle {
				continue
			}
			if b.rowValid && b.openRow == m.rowOf(f.req.Addr) {
				pick = i
				break
			}
			if pick == -1 {
				pick = i
			}
		}
		if pick == -1 {
			continue
		}
		f := ch.queue[pick]
		ch.queue = append(ch.queue[:pick], ch.queue[pick+1:]...)
		b := &ch.banks[m.bankOf(f.req.Addr)]
		row := m.rowOf(f.req.Addr)
		var access uint64
		if b.rowValid && b.openRow == row {
			access = m.cfg.RowHitCycles
			m.rowHits++
		} else {
			access = m.cfg.RowMissCycles
			m.rowMisses++
		}
		b.openRow, b.rowValid = row, true
		ready := cycle + access
		if ready < ch.busFreeAt {
			ready = ch.busFreeAt
		}
		done := ready + m.cfg.BurstCycles
		ch.busFreeAt = done
		// Row hits pipeline at the CAS-to-CAS rate (≈ burst length); a miss
		// additionally occupies the bank for the precharge+activate window.
		b.busyUntil = cycle + (access - m.cfg.RowHitCycles) + m.cfg.BurstCycles
		f.doneAt = done
		ch.service = append(ch.service, f)
	}
}

func (m *Memory) complete(f inflight) {
	if f.req.Write {
		m.writes++
	} else {
		m.reads++
	}
	m.bytesMoved += LineBytes
	m.bytesUse += int64(f.req.UsefulBytes)
	m.lat.Observe(int64(f.doneAt - f.enqueued))
	if f.req.OnComplete != nil {
		f.req.OnComplete()
	}
}

// LatencyMean returns the mean request latency in cycles.
func (m *Memory) LatencyMean() float64 { return m.lat.Mean() }
