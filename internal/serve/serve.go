// Package serve turns the repository's engines into a long-lived graph
// analytics service: a registry of named resident graphs answers
// algorithm queries over HTTP/JSON, with a bounded compute worker pool,
// admission control, per-request deadlines, a versioned result cache with
// singleflight coalescing, and batched edge insertions that warm-start
// reconvergence from the previous fixed point instead of recomputing from
// scratch — the delta-accumulative model of paper Section II-B run as an
// online system.
//
// The request path:
//
//	/v1/query   POST  algorithm × params × engine over a resident graph
//	/v1/mutate  POST  batched edge insertions and deletions; bumps the epoch
//	/v1/stream  POST  bulk NDJSON ingestion (chunked insert/delete ops)
//	/v1/graphs  GET   resident graph inventory
//	/metrics    GET   request counters and latency histograms (METRICS.md)
//	/healthz    GET   liveness
//	/debug/pprof       Go runtime profiles (Config.EnablePprof)
//
// Queries hit the cache first (keyed by graph epoch, algorithm, params,
// engine); identical in-flight misses coalesce onto one computation;
// distinct misses go through a bounded queue onto the worker pool, and a
// full queue answers 429 with Retry-After instead of building unbounded
// backlog. Request deadlines propagate into the native worklist solver
// (algorithms.SolveCtx) and the simulated engines (sim.Engine.RunUntil)
// through context cancellation.
//
// Mutations cover the full streaming story (internal/stream): insertions
// warm-start from the prior fixed point via correction seeding, deletions
// re-initialize only the dependency cone of the removed contributions
// (degrading to a full replay past Config.MaxConeFraction), and graphs
// configured with GraphSpec.Window age mutated edges out on an epoch
// ticker through the same deletion path.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"graphpulse/internal/graph/gen"
	"graphpulse/internal/stream"
)

// Config describes a Server. The zero value of every field is replaced by
// the documented default; only Graphs is required.
type Config struct {
	// Graphs lists the resident graphs loaded at startup.
	Graphs []GraphSpec
	// Workers sizes the compute worker pool (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of admitted-but-unstarted computations;
	// submissions beyond it are rejected with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache, evicting least-recently-used
	// entries (default 128).
	CacheEntries int
	// DefaultTimeout is the per-request deadline when the client does not
	// send timeout_ms (default 5s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 60s).
	MaxTimeout time.Duration
	// ComputeTimeout bounds one computation on the worker pool. It is
	// deliberately independent of any single request deadline: a coalesced
	// computation keeps running while at least one waiter remains
	// (default 120s).
	ComputeTimeout time.Duration
	// MutationHistory is how many recent mutation batches each graph
	// retains for warm-starting queries whose cached state predates the
	// current epoch (default 8).
	MutationHistory int
	// MaxConeFraction caps selective re-initialization after deletions:
	// when the dependency cone of a deletion batch exceeds this fraction
	// of the vertex set, the warm start degrades to a full replay (cold
	// solve) instead (default stream.DefaultMaxConeFraction).
	MaxConeFraction float64
	// WindowTick is the period of the expiry ticker that ages edges out
	// of sliding-window graphs (GraphSpec.Window); it only runs when at
	// least one configured graph is windowed (default 1s).
	WindowTick time.Duration
	// StreamBatch is how many /v1/stream operations are grouped into one
	// applied mutation epoch (default 256).
	StreamBatch int
	// StreamInflight bounds concurrently served /v1/stream requests;
	// excess streams are rejected with 429 + Retry-After (default 2).
	StreamInflight int
	// Cache supplies memoized Table IV dataset stand-ins for "ABBREV:tier"
	// graph sources (default gen.Default).
	Cache *gen.Cache
	// EnablePprof mounts net/http/pprof under /debug/pprof.
	EnablePprof bool
	// Logf, when non-nil, receives one line per lifecycle event (startup,
	// shutdown). Request logging is deliberately absent — /metrics is the
	// observability surface.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = 120 * time.Second
	}
	if c.MutationHistory <= 0 {
		c.MutationHistory = 8
	}
	if c.MaxConeFraction <= 0 {
		c.MaxConeFraction = stream.DefaultMaxConeFraction
	}
	if c.WindowTick <= 0 {
		c.WindowTick = time.Second
	}
	if c.StreamBatch <= 0 {
		c.StreamBatch = 256
	}
	if c.StreamInflight <= 0 {
		c.StreamInflight = 2
	}
	if c.Cache == nil {
		c.Cache = gen.Default
	}
	return c
}

// ErrBusy is returned by the admission queue when it is full; the HTTP
// layer maps it to 429 with a Retry-After header.
var ErrBusy = errors.New("serve: compute queue full")

// Server is the serving runtime: resident graphs, result cache, worker
// pool, and the HTTP handler over them. Create with New, expose with
// Handler or Start, stop with Shutdown.
type Server struct {
	cfg     Config
	graphs  map[string]*residentGraph
	order   []string // registration order, for deterministic listings
	cache   *resultCache
	metrics *Metrics
	started time.Time

	jobs    chan func()
	workers sync.WaitGroup
	stop    sync.Once

	// streamSem bounds concurrently served /v1/stream requests; a full
	// channel answers 429 + Retry-After, like the compute queue.
	streamSem chan struct{}

	// windowStop ends the expiry ticker goroutine (nil when no graph is
	// windowed); now is the clock mutations and expiry sweeps read, a
	// field so window tests can drive a synthetic clock.
	windowStop chan struct{}
	windowOnce sync.Once
	ticker     sync.WaitGroup
	now        func() time.Time

	flightMu sync.Mutex
	flights  map[string]*flight

	mu      sync.Mutex
	httpSrv *http.Server

	// testComputeStall, when non-nil, is invoked at the start of every
	// pooled computation with the computation's context. Tests use it to
	// hold computations open deterministically (saturation, coalescing,
	// drain); production code never sets it.
	testComputeStall func(ctx context.Context)
}

// New builds a Server: loads every configured graph, starts the worker
// pool, and returns ready to serve. It does not open a listener — use
// Start, or mount Handler on a server of your own.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Graphs) == 0 {
		return nil, errors.New("serve: no graphs configured")
	}
	s := &Server{
		cfg:       cfg,
		graphs:    make(map[string]*residentGraph),
		cache:     newResultCache(cfg.CacheEntries),
		metrics:   NewMetrics(),
		flights:   make(map[string]*flight),
		jobs:      make(chan func(), cfg.QueueDepth),
		streamSem: make(chan struct{}, cfg.StreamInflight),
		started:   time.Now(),
		now:       time.Now,
	}
	for _, spec := range cfg.Graphs {
		rg, err := loadResident(spec, cfg.Cache, cfg.MutationHistory)
		if err != nil {
			return nil, fmt.Errorf("serve: load graph %q: %w", spec.Name, err)
		}
		if _, dup := s.graphs[rg.name]; dup {
			return nil, fmt.Errorf("serve: duplicate graph name %q", rg.name)
		}
		s.graphs[rg.name] = rg
		s.order = append(s.order, rg.name)
		vg, _ := rg.view()
		kind := ""
		if rg.store != nil {
			kind = " (out-of-core)"
		}
		s.logf("serve: graph %q resident%s: %d vertices, %d edges", rg.name,
			kind, vg.NumVertices(), vg.NumEdges())
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for job := range s.jobs {
				job()
			}
		}()
	}
	windowed := false
	for _, rg := range s.graphs {
		if rg.window > 0 {
			windowed = true
		}
	}
	if windowed {
		s.windowStop = make(chan struct{})
		s.ticker.Add(1)
		go func() {
			defer s.ticker.Done()
			t := time.NewTicker(cfg.WindowTick)
			defer t.Stop()
			for {
				select {
				case <-s.windowStop:
					return
				case <-t.C:
					s.sweepWindows(s.now())
				}
			}
		}()
	}
	return s, nil
}

// sweepWindows runs one expiry pass over every windowed graph at time
// now, batching aged-out edges into the same deletion path /v1/mutate
// uses. The epoch ticker calls it; window tests call it directly with a
// synthetic clock.
func (s *Server) sweepWindows(now time.Time) {
	s.metrics.Add("stream_window_sweeps", 1)
	for _, name := range s.order {
		rg := s.graphs[name]
		if rg.window <= 0 {
			continue
		}
		n, err := rg.expire(now)
		if err != nil {
			s.metrics.Add("stream_errors", 1)
			s.logf("serve: window expiry on %q: %v", name, err)
			continue
		}
		if n > 0 {
			s.metrics.Add("stream_expired_edges", int64(n))
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Metrics returns the server's live metrics (counters readable at any
// time; rendered by the /metrics endpoint).
func (s *Server) Metrics() *Metrics { return s.metrics }

// submit enqueues a computation, failing with ErrBusy when the bounded
// queue is full — the admission-control point.
func (s *Server) submit(job func()) error {
	select {
	case s.jobs <- job:
		return nil
	default:
		return ErrBusy
	}
}

// Start opens a listener on addr ("" or host:0 pick a free port), serves
// Handler on it in the background, and returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	return s.StartWith(addr, s.Handler())
}

// StartWith is Start with a caller-supplied handler (normally a mux
// wrapping Handler with extra routes — the distributed tier's worker
// adds GET /internal/snapshot this way). Shutdown still drains the
// listener it opens.
func (s *Server) StartWith(addr string, h http.Handler) (net.Addr, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logf("serve: http server: %v", err)
		}
	}()
	s.logf("serve: listening on %s", ln.Addr())
	return ln.Addr(), nil
}

// Shutdown drains the server: it stops accepting connections, waits for
// in-flight requests to complete (bounded by ctx), then stops the worker
// pool. In-flight computations run to completion; queued-but-unstarted
// ones still execute before the pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if s.windowStop != nil {
		s.windowOnce.Do(func() { close(s.windowStop) })
		s.ticker.Wait()
	}
	s.stop.Do(func() { close(s.jobs) })
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	s.logf("serve: drained")
	return err
}
