package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/conformance"
	"graphpulse/internal/graph"
)

// sparseGraph is a 200-vertex graph with a known, tiny edge set, so
// tests asserting exact delete/miss counts cannot collide with edges the
// random test graph happens to contain.
func sparseGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.FromEdges(200, []graph.Edge{
		{Src: 10, Dst: 11, Weight: 1}, {Src: 11, Dst: 12, Weight: 1},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMutateDedupAndDeleteCounts pins the per-edge accounting of
// /v1/mutate: in-batch duplicate insertions are skipped (not silently
// double-applied), deletes report how many live edges they removed and
// how many ops matched nothing, and the counters agree.
func TestMutateDedupAndDeleteCounts(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Graphs = []GraphSpec{{Name: "g", Graph: sparseGraph(t)}}
	})
	g, _ := s.graphs["g"].snapshot()
	before := g.NumEdges()

	code, body, _ := postJSON(t, ts.URL+"/v1/mutate", MutateRequest{
		Graph: "g",
		Edges: []EdgeJSON{
			{Src: 0, Dst: 7, Weight: 1}, {Src: 0, Dst: 7, Weight: 1}, // exact dup
			{Src: 0, Dst: 7, Weight: 2}, // same pair, different weight: kept
			{Src: 3, Dst: 9, Weight: 1}, {Src: 3, Dst: 9, Weight: 1},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate: HTTP %d: %s", code, body)
	}
	var mut MutateResponse
	if err := json.Unmarshal(body, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.Added != 3 || mut.Skipped != 2 {
		t.Fatalf("insert accounting: added=%d skipped=%d, want 3/2", mut.Added, mut.Skipped)
	}
	if mut.NumEdges != before+3 {
		t.Fatalf("edges = %d, want %d", mut.NumEdges, before+3)
	}

	// Delete the (0,7) pair — both live copies go, weight ignored — plus a
	// pair that was never inserted.
	code, body, _ = postJSON(t, ts.URL+"/v1/mutate", MutateRequest{
		Graph:   "g",
		Deletes: []EdgeJSON{{Src: 0, Dst: 7}, {Src: 190, Dst: 191}},
	})
	if code != http.StatusOK {
		t.Fatalf("delete: HTTP %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.Deleted != 2 || mut.Missed != 1 {
		t.Fatalf("delete accounting: deleted=%d missed=%d, want 2/1", mut.Deleted, mut.Missed)
	}
	if mut.NumEdges != before+1 {
		t.Fatalf("edges after delete = %d, want %d", mut.NumEdges, before+1)
	}

	m := s.Metrics()
	for name, want := range map[string]int64{
		"mutate_edges_added":   3,
		"mutate_dedup_skipped": 2,
		"mutate_delete_edges":  2,
		"mutate_delete_missed": 1,
	} {
		if got := m.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestNoEffectBatchKeepsEpoch checks that a batch with no net effect
// (all-miss deletes) answers with the current version without burning an
// epoch — repeated idempotent retries must not invalidate the cache.
func TestNoEffectBatchKeepsEpoch(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Graphs = []GraphSpec{{Name: "g", Graph: sparseGraph(t)}}
	})
	code, body, _ := postJSON(t, ts.URL+"/v1/mutate", MutateRequest{
		Graph:   "g",
		Deletes: []EdgeJSON{{Src: 190, Dst: 191}},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate: HTTP %d: %s", code, body)
	}
	var mut MutateResponse
	if err := json.Unmarshal(body, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.Epoch != 0 || mut.Missed != 1 {
		t.Fatalf("no-effect batch: epoch=%d missed=%d, want 0/1", mut.Epoch, mut.Missed)
	}
	if _, epoch := s.graphs["g"].snapshot(); epoch != 0 {
		t.Fatalf("no-effect batch bumped epoch to %d", epoch)
	}
}

// TestDeleteThenQueryConeStarts covers the deletion warm path end to end:
// converge, delete a live edge, and re-query — the answer must come from
// a cone-restricted warm start ("cone" mode) and still match a
// from-scratch solve on the post-delete graph.
func TestDeleteThenQueryConeStarts(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxConeFraction = 1.0 })
	g, _ := s.graphs["g"].snapshot()
	all := vertexRange(g.NumVertices())

	cold := doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "sssp", Root: ptr(uint32(3)), Vertices: all})
	if cold.Mode != "cold" {
		t.Fatalf("first query mode = %q, want cold", cold.Mode)
	}

	victim := g.Edges()[0]
	code, body, _ := postJSON(t, ts.URL+"/v1/mutate", MutateRequest{
		Graph:   "g",
		Deletes: []EdgeJSON{{Src: uint32(victim.Src), Dst: uint32(victim.Dst)}},
	})
	if code != http.StatusOK {
		t.Fatalf("delete: HTTP %d: %s", code, body)
	}

	warm := doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "sssp", Root: ptr(uint32(3)), Vertices: all})
	if warm.Mode != "cone" {
		t.Fatalf("post-delete query mode = %q, want cone", warm.Mode)
	}
	if got := s.Metrics().Counter("stream_cone_starts"); got != 1 {
		t.Errorf("stream_cone_starts = %d, want 1", got)
	}

	ng, _ := s.graphs["g"].snapshot()
	alg := algorithms.NewSSSP(3)
	want := algorithms.Solve(ng, alg)
	got := valuesOf(warm, ng.NumVertices())
	if err := conformance.CompareValues("cone-vs-cold", got, want.Values, conformance.Tolerance(alg, ng)); err != nil {
		t.Error(err)
	}
}

// TestConeReplayFallback pins the degradation path: with MaxConeFraction
// near zero every deletion cone is "too big", so the re-query falls back
// to a cold replay (and says so in the counter) instead of warm-starting.
func TestConeReplayFallback(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxConeFraction = 1e-9 })
	g, _ := s.graphs["g"].snapshot()

	doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "cc"})
	victim := g.Edges()[0]
	code, body, _ := postJSON(t, ts.URL+"/v1/mutate", MutateRequest{
		Graph:   "g",
		Deletes: []EdgeJSON{{Src: uint32(victim.Src), Dst: uint32(victim.Dst)}},
	})
	if code != http.StatusOK {
		t.Fatalf("delete: HTTP %d: %s", code, body)
	}
	r := doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "cc"})
	if r.Mode != "cold" {
		t.Fatalf("fallback query mode = %q, want cold", r.Mode)
	}
	m := s.Metrics()
	if got := m.Counter("stream_replay_fallbacks"); got != 1 {
		t.Errorf("stream_replay_fallbacks = %d, want 1", got)
	}
	if got := m.Counter("stream_cone_starts"); got != 0 {
		t.Errorf("stream_cone_starts = %d, want 0", got)
	}
}

// TestStreamEndpoint drives /v1/stream end to end: an NDJSON body mixing
// inserts, a duplicate, and deletes, batched smaller than the op count so
// multiple epochs apply, and a final graph state that matches the ops.
func TestStreamEndpoint(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Graphs = []GraphSpec{{Name: "g", Graph: sparseGraph(t)}}
		c.StreamBatch = 3
	})
	g, _ := s.graphs["g"].snapshot()
	before := g.NumEdges()

	var b strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, `{"src":%d,"dst":%d,"weight":1}`+"\n", i, i+100)
	}
	b.WriteString(`{"op":"insert","src":0,"dst":100,"weight":1}` + "\n") // dup of the first
	b.WriteString(`{"op":"delete","src":5,"dst":105}` + "\n")
	b.WriteString(`{"op":"delete","src":180,"dst":181}` + "\n") // never existed
	b.WriteString("\n")                                         // blank lines are skipped

	resp, err := http.Post(ts.URL+"/v1/stream?graph=g", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: HTTP %d: %s", resp.StatusCode, body)
	}
	var sr StreamResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Ops != 9 || sr.Batches != 3 {
		t.Fatalf("ops=%d batches=%d, want 9 ops in 3 batches", sr.Ops, sr.Batches)
	}
	// The duplicate falls in a later batch than the original, so it is a
	// legitimate multigraph re-insert, not an in-batch dup.
	if sr.Added != 7 || sr.Skipped != 0 {
		t.Fatalf("added=%d skipped=%d, want 7/0", sr.Added, sr.Skipped)
	}
	if sr.Deleted != 1 || sr.Missed != 1 {
		t.Fatalf("deleted=%d missed=%d, want 1/1", sr.Deleted, sr.Missed)
	}
	if sr.NumEdges != before+6 {
		t.Fatalf("final edges = %d, want %d", sr.NumEdges, before+6)
	}
	m := s.Metrics()
	if got := m.Counter("stream_ops"); got != 9 {
		t.Errorf("stream_ops = %d, want 9", got)
	}
	if got := m.Counter("stream_batches"); got != 3 {
		t.Errorf("stream_batches = %d, want 3", got)
	}

	// Unknown op and unknown graph are 400/404.
	resp, err = http.Post(ts.URL+"/v1/stream?graph=g", "application/x-ndjson",
		strings.NewReader(`{"op":"upsert","src":0,"dst":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown op: HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/stream?graph=nope", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown graph: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestStreamBackpressure holds one stream open (a pipe that never closes
// until released) and asserts the next stream is bounced with 429 +
// Retry-After — the in-flight bound, not queueing, absorbs overload.
func TestStreamBackpressure(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.StreamInflight = 1 })

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/stream?graph=g", "application/x-ndjson", pr)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// The first op proves the stream holds its semaphore slot while parked
	// on the next read.
	if _, err := io.WriteString(pw, `{"src":0,"dst":1,"weight":1}`+"\n"); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, s.Metrics(), "stream_ops", 1)

	resp, err := http.Post(ts.URL+"/v1/stream?graph=g", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream: HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if got := s.Metrics().Counter("stream_rejected"); got != 1 {
		t.Errorf("stream_rejected = %d, want 1", got)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("held stream: %v", err)
	}
	// The slot is free again.
	resp, err = http.Post(ts.URL+"/v1/stream?graph=g", "application/x-ndjson",
		strings.NewReader(`{"src":1,"dst":2,"weight":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release stream: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestWindowExpiry drives the sliding window with an explicit clock:
// timestamped inserts age out once older than the window, base edges are
// permanent, and expiry flows through the same epoch/deletion machinery
// queries warm-start from.
func TestWindowExpiry(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Graphs[0].Window = time.Minute
		c.WindowTick = time.Hour // keep the background ticker out of the test
	})
	rg := s.graphs["g"]
	base := rg.g.NumEdges()
	t0 := time.Unix(1_000_000, 0)

	ins := []graph.Edge{{Src: 0, Dst: 50, Weight: 1}, {Src: 1, Dst: 51, Weight: 1}}
	if _, err := rg.applyBatch(ins, nil, t0); err != nil {
		t.Fatal(err)
	}
	later := []graph.Edge{{Src: 2, Dst: 52, Weight: 1}}
	if _, err := rg.applyBatch(later, nil, t0.Add(45*time.Second)); err != nil {
		t.Fatal(err)
	}

	// 30s in: nothing is old enough.
	s.sweepWindows(t0.Add(30 * time.Second))
	if got := s.Metrics().Counter("stream_expired_edges"); got != 0 {
		t.Fatalf("early sweep expired %d edges", got)
	}

	// 90s in: the first batch (age 90s) ages out, the second (45s) stays.
	s.sweepWindows(t0.Add(90 * time.Second))
	if got := s.Metrics().Counter("stream_expired_edges"); got != 2 {
		t.Fatalf("stream_expired_edges = %d, want 2", got)
	}
	g, epoch := rg.snapshot()
	if g.NumEdges() != base+1 || epoch != 3 {
		t.Fatalf("after expiry: edges=%d epoch=%d, want %d/3", g.NumEdges(), epoch, base+1)
	}

	// Far future: the last insert goes too; base edges are permanent.
	s.sweepWindows(t0.Add(24 * time.Hour))
	g, _ = rg.snapshot()
	if g.NumEdges() != base {
		t.Fatalf("base edges not permanent: %d edges, want %d", g.NumEdges(), base)
	}
	if got := s.Metrics().Counter("stream_window_sweeps"); got != 3 {
		t.Errorf("stream_window_sweeps = %d, want 3", got)
	}

	// The inventory reports the window.
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].WindowSecs != 60 {
		t.Fatalf("inventory window: %+v, want window_secs=60", infos)
	}
}
