package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"graphpulse/internal/graph"
)

// MutationRecord is the durable form of one applied mutation epoch: the
// exact edges added and removed when the named graph moved to Epoch. It
// is what the distributed tier's write-ahead log persists and what
// ApplyReplay consumes — Added is the post-deduplication applied batch
// and Removed the edges actually deleted (user deletes and window
// expirations alike), so replaying the record against the epoch-1 state
// reproduces the epoch state exactly.
type MutationRecord struct {
	Graph   string
	Epoch   uint64
	Time    time.Time
	Added   []graph.Edge
	Removed []graph.Edge
}

// MutationHook observes every applied mutation epoch. It is invoked
// synchronously while the graph's write lock is held — after the new
// epoch is built but before the mutation is acknowledged — so a durable
// hook (a WAL append + fsync) guarantees no acknowledged epoch is ever
// lost. The hook must be fast and must not call back into the Server.
type MutationHook func(MutationRecord)

// SetMutationHook installs fn on every resident graph. Call it once,
// before serving traffic. A nil fn removes the hook.
func (s *Server) SetMutationHook(fn MutationHook) {
	for _, rg := range s.graphs {
		rg.mu.Lock()
		rg.hook = fn
		rg.mu.Unlock()
	}
}

// ErrReplayGap is returned by ApplyReplay when a record does not extend
// the resident epoch by exactly one — the log has a hole (typically a
// snapshot adoption jumped the epoch past the log's coverage), so replay
// must stop and defer to anti-entropy repair.
var ErrReplayGap = fmt.Errorf("serve: replay record does not extend resident epoch")

// ApplyReplay applies one logged mutation record: a record at or below
// the resident epoch is skipped (applied=false, already incorporated), a
// record at exactly epoch+1 is applied, anything else fails with
// ErrReplayGap. Replayed batches go through the same rebuild path as live
// mutations, so the mutation history (and with it warm-start coverage)
// is reconstructed and the installed MutationHook fires again — hooks
// that append to a WAL must deduplicate by epoch.
func (s *Server) ApplyReplay(rec MutationRecord) (bool, error) {
	rg, ok := s.graphs[rec.Graph]
	if !ok {
		return false, fmt.Errorf("serve: unknown graph %q", rec.Graph)
	}
	return rg.applyReplay(rec)
}

// DigestInfo is one graph's consistent (epoch, state digest) pair — the
// unit of anti-entropy comparison across replicas. The digest covers the
// graph state only (vertex count, weight mode, edge multiset in CSR
// order); result caches legitimately differ between replicas and are
// excluded.
type DigestInfo struct {
	Graph       string `json:"graph"`
	Epoch       uint64 `json:"epoch"`
	NumVertices int    `json:"num_vertices"`
	NumEdges    int    `json:"num_edges"`
	Digest      string `json:"digest"`
}

// StateDigest computes the named graph's DigestInfo. The (graph, epoch)
// pair is captured atomically, so two replicas at the same epoch with
// the same mutation sequence report identical digests.
func (s *Server) StateDigest(name string) (DigestInfo, error) {
	rg, ok := s.graphs[name]
	if !ok {
		return DigestInfo{}, fmt.Errorf("serve: unknown graph %q", name)
	}
	g, epoch := rg.snapshot()
	if g == nil {
		return DigestInfo{}, rg.readOnlyErr()
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.NumVertices()))
	h.Write(buf[:])
	weighted := uint64(0)
	if g.Weighted() {
		weighted = 1
	}
	binary.LittleEndian.PutUint64(buf[:], weighted)
	h.Write(buf[:])
	for _, e := range g.Edges() {
		binary.LittleEndian.PutUint32(buf[:4], e.Src)
		binary.LittleEndian.PutUint32(buf[4:], e.Dst)
		h.Write(buf[:])
		w := float32(0)
		if g.Weighted() {
			w = e.Weight
		}
		binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(w))
		h.Write(buf[:4])
	}
	return DigestInfo{
		Graph:       name,
		Epoch:       epoch,
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		Digest:      fmt.Sprintf("%016x", h.Sum64()),
	}, nil
}
