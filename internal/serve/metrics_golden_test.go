package serve

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output diverges from golden\n-- got --\n%s-- want --\n%s", name, got, want)
	}
}

// TestMetricsRenderGoldenEmpty pins the full pre-registered catalogue at
// zero — what /metrics serves on a freshly booted server.
func TestMetricsRenderGoldenEmpty(t *testing.T) {
	m := NewMetrics()
	checkGolden(t, "metrics_empty", []byte(m.Render()))
}

// TestMetricsRenderGoldenPopulated pins the rendering with deterministic
// traffic applied: counter values and histogram bucket placement.
func TestMetricsRenderGoldenPopulated(t *testing.T) {
	m := NewMetrics()
	m.Add("query_requests", 7)
	m.Add("query_cache_hits", 4)
	m.Add("query_cache_misses", 3)
	m.Add("query_cold_solves", 2)
	m.Add("query_warm_starts", 1)
	m.Add("mutate_requests", 2)
	m.Add("mutate_edges_added", 32)
	for _, us := range []int64{90, 400, 900, 4_000, 40_000, 2_000_000} {
		m.Observe("query_latency_us", us)
	}
	m.Observe("mutate_latency_us", 1_200)
	m.Observe("compute_latency_us", 150_000)
	checkGolden(t, "metrics_populated", []byte(m.Render()))
}

// TestMetricNamesComplete asserts MetricNames covers exactly the declared
// counters and histograms — the contract the METRICS.md linter relies on.
func TestMetricNamesComplete(t *testing.T) {
	names := MetricNames()
	want := map[string]bool{}
	for _, n := range append(append([]string{}, serveCounters...), serveHistograms...) {
		want[n] = true
	}
	if len(names) != len(want) {
		t.Fatalf("MetricNames returned %d names, want %d", len(names), len(want))
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("MetricNames includes undeclared %q", n)
		}
	}
}
