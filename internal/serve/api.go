package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/engines"
	"graphpulse/internal/graph"
)

// QueryRequest is the /v1/query body: which algorithm to run over which
// resident graph, on which engine, and what slice of the answer to return.
type QueryRequest struct {
	// Graph names a resident graph.
	Graph string `json:"graph"`
	// Algorithm selects the computation:
	// pr|ads|sssp|bfs|reach|cc|sswp|relpath.
	Algorithm string `json:"algorithm"`
	// Root is the source vertex for rooted algorithms (default 0).
	Root *uint32 `json:"root,omitempty"`
	// Alpha and Threshold override pr/ads parameters (defaults 0.85/1e-4
	// for pr, 0.8/1e-4 for ads).
	Alpha     *float64 `json:"alpha,omitempty"`
	Threshold *float64 `json:"threshold,omitempty"`
	// Engine picks the execution backend by registry name (see
	// internal/engines): "solve" (native worklist solver, the default),
	// "psolve" (sharded parallel solver), "accel" (GraphPulse simulation),
	// "graphicionado" (BSP baseline simulation), or "ligra" (shared-memory
	// software baseline).
	Engine string `json:"engine,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped by Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Top asks for the N highest-valued vertices (default 10, max 1000).
	Top int `json:"top,omitempty"`
	// Vertices asks for the values of specific vertices.
	Vertices []uint32 `json:"vertices,omitempty"`
}

// VertexValue is one (vertex, converged value) pair. Path-style
// algorithms legitimately converge to ±Inf (unreachable vertices), which
// JSON numbers cannot carry, so the codec maps non-finite values to the
// strings "Infinity", "-Infinity", and "NaN".
type VertexValue struct {
	Vertex uint32
	Value  float64
}

// MarshalJSON implements json.Marshaler; see the type comment.
func (v VertexValue) MarshalJSON() ([]byte, error) {
	var val string
	switch {
	case math.IsInf(v.Value, 1):
		val = `"Infinity"`
	case math.IsInf(v.Value, -1):
		val = `"-Infinity"`
	case math.IsNaN(v.Value):
		val = `"NaN"`
	default:
		val = strconv.FormatFloat(v.Value, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"vertex":%d,"value":%s}`, v.Vertex, val)), nil
}

// UnmarshalJSON implements json.Unmarshaler; see the type comment.
func (v *VertexValue) UnmarshalJSON(data []byte) error {
	var aux struct {
		Vertex uint32          `json:"vertex"`
		Value  json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	v.Vertex = aux.Vertex
	var s string
	if json.Unmarshal(aux.Value, &s) == nil {
		switch s {
		case "Infinity":
			v.Value = math.Inf(1)
		case "-Infinity":
			v.Value = math.Inf(-1)
		case "NaN":
			v.Value = math.NaN()
		default:
			return fmt.Errorf("serve: bad vertex value %q", s)
		}
		return nil
	}
	return json.Unmarshal(aux.Value, &v.Value)
}

// QueryResponse is the /v1/query answer.
type QueryResponse struct {
	Graph     string `json:"graph"`
	Epoch     uint64 `json:"epoch"`
	Algorithm string `json:"algorithm"`
	Engine    string `json:"engine"`
	// Cached reports whether the answer came straight from the result
	// cache. Mode says how the values were produced: "cache", "cold"
	// (from-scratch solve), "warm" (warm-started from a prior epoch's
	// fixed point after insert-only mutations), or "cone" (selective
	// re-initialization of the deletion dependency cone).
	Cached bool   `json:"cached"`
	Mode   string `json:"mode"`
	// Coalesced reports that this request joined an identical in-flight
	// computation instead of starting its own.
	Coalesced   bool          `json:"coalesced,omitempty"`
	NumVertices int           `json:"num_vertices"`
	NumEdges    int           `json:"num_edges"`
	Activations int64         `json:"activations"`
	ComputeSecs float64       `json:"compute_seconds"`
	Sum         float64       `json:"sum"`
	Top         []VertexValue `json:"top,omitempty"`
	Values      []VertexValue `json:"values,omitempty"`
}

// EdgeJSON is one directed edge in a mutation batch.
type EdgeJSON struct {
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Weight float32 `json:"weight,omitempty"`
}

// MutateRequest is the /v1/mutate body: a batch of edges to insert into
// and/or delete from a resident graph, applied as one epoch (inserts
// first, then deletes — so a batch inserting and deleting the same edge
// nets to a delete). Insertions are deduplicated within the batch; each
// delete removes every live edge with the same (src, dst), weight
// ignored. The vertex set is fixed; edges referencing vertices beyond it
// are rejected whole-batch.
type MutateRequest struct {
	Graph   string     `json:"graph"`
	Edges   []EdgeJSON `json:"edges,omitempty"`
	Deletes []EdgeJSON `json:"deletes,omitempty"`
}

// MutateResponse reports the post-mutation graph version and the
// per-edge accounting: Added edges inserted (after in-batch
// deduplication), Skipped duplicates dropped, Deleted live edges
// removed, and Missed delete ops that matched nothing.
type MutateResponse struct {
	Graph       string `json:"graph"`
	Epoch       uint64 `json:"epoch"`
	Added       int    `json:"added"`
	Skipped     int    `json:"skipped"`
	Deleted     int    `json:"deleted"`
	Missed      int    `json:"missed"`
	NumVertices int    `json:"num_vertices"`
	NumEdges    int    `json:"num_edges"`
}

// StreamOp is one NDJSON line of a /v1/stream body: an insert (the
// default when op is empty) or delete of a single edge.
type StreamOp struct {
	Op     string  `json:"op,omitempty"`
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Weight float32 `json:"weight,omitempty"`
}

// StreamResponse summarizes one bulk-ingestion request: how many ops were
// read, how many mutation epochs (batches) they were applied as, and the
// aggregated per-edge accounting (same meaning as MutateResponse).
type StreamResponse struct {
	Graph    string `json:"graph"`
	Epoch    uint64 `json:"epoch"`
	Ops      int    `json:"ops"`
	Batches  int    `json:"batches"`
	Added    int    `json:"added"`
	Skipped  int    `json:"skipped"`
	Deleted  int    `json:"deleted"`
	Missed   int    `json:"missed"`
	NumEdges int    `json:"num_edges"`
}

// GraphInfo is one /v1/graphs inventory row. WindowSecs is non-zero for
// sliding-window graphs (GraphSpec.Window).
type GraphInfo struct {
	Name        string  `json:"name"`
	Epoch       uint64  `json:"epoch"`
	NumVertices int     `json:"num_vertices"`
	NumEdges    int     `json:"num_edges"`
	Weighted    bool    `json:"weighted"`
	WindowSecs  float64 `json:"window_secs,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// makeAlgorithm builds the algorithm a request names and its canonical
// cache key (parameters normalized, so equivalent requests share cache
// entries and coalesce).
func makeAlgorithm(req *QueryRequest) (algorithms.Algorithm, string, error) {
	root := graph.VertexID(0)
	if req.Root != nil {
		root = graph.VertexID(*req.Root)
	}
	rootedKey := func(name string) string { return fmt.Sprintf("%s(root=%d)", name, root) }
	switch req.Algorithm {
	case "pr":
		a := algorithms.NewPageRankDelta()
		if req.Alpha != nil {
			a.Alpha = *req.Alpha
		}
		if req.Threshold != nil {
			a.Threshold = *req.Threshold
		}
		if a.Alpha <= 0 || a.Alpha >= 1 || a.Threshold <= 0 {
			return nil, "", fmt.Errorf("pr needs 0<alpha<1 and threshold>0")
		}
		return a, fmt.Sprintf("pr(alpha=%g,threshold=%g)", a.Alpha, a.Threshold), nil
	case "ads":
		a := algorithms.NewAdsorption()
		if req.Alpha != nil {
			a.Alpha = *req.Alpha
		}
		if req.Threshold != nil {
			a.Threshold = *req.Threshold
		}
		if a.Alpha <= 0 || a.Alpha >= 1 || a.Threshold <= 0 {
			return nil, "", fmt.Errorf("ads needs 0<alpha<1 and threshold>0")
		}
		return a, fmt.Sprintf("ads(alpha=%g,threshold=%g)", a.Alpha, a.Threshold), nil
	case "sssp":
		return algorithms.NewSSSP(root), rootedKey("sssp"), nil
	case "bfs":
		return algorithms.NewBFS(root), rootedKey("bfs"), nil
	case "reach":
		return algorithms.NewReach(root), rootedKey("reach"), nil
	case "cc":
		return algorithms.NewConnectedComponents(), "cc()", nil
	case "sswp":
		return algorithms.NewSSWP(root), rootedKey("sswp"), nil
	case "relpath":
		return algorithms.NewReliablePath(root), rootedKey("relpath"), nil
	case "":
		return nil, "", fmt.Errorf("missing algorithm")
	}
	return nil, "", fmt.Errorf("unknown algorithm %q (want pr|ads|sssp|bfs|reach|cc|sswp|relpath)", req.Algorithm)
}

// normalizeEngine validates the engine choice against the engine registry,
// defaulting to the native solver. The 400-error vocabulary comes from the
// registry, so it never goes stale against the engine set.
func normalizeEngine(engine string) (string, error) {
	return engines.Normalize(engine)
}
