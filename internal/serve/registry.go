package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"sync"
	"time"

	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/graph/ooc"
	"graphpulse/internal/stream"
)

// GraphSpec names one resident graph and where it comes from. Exactly one
// of Graph and Source must be set.
type GraphSpec struct {
	// Name is the handle queries and mutations address the graph by.
	Name string
	// Source is "ABBREV:tier" for a Table IV synthetic stand-in built
	// through the shared gen cache (e.g. "WG:tiny", "LJ:mini"), or a path
	// to an edge-list / binary container file.
	Source string
	// Graph is a pre-built in-memory graph (facade callers pass a
	// *graphpulse.Graph directly).
	Graph *graph.CSR
	// Window, when positive, puts the graph in sliding-window mode:
	// mutated edges carry ingest timestamps and expire once older than
	// Window (the loaded base edges are permanent). Expirations run on the
	// server's epoch ticker (Config.WindowTick) through the same deletion
	// path as /v1/mutate deletes.
	Window time.Duration
	// ResidentBytes is the out-of-core residency budget applied when Source
	// is a graphpack container (detected by extension or magic): decoded
	// slices stay under this many bytes, colder ones are evicted. <= 0 means
	// unlimited. Graphpack graphs are read-only — mutation, streaming,
	// windowing, and snapshot export reject.
	ResidentBytes int64
}

// ParseGraphArg parses the CLI form "name=source" (or a bare source, whose
// name becomes the source string lowercased up to the first ':').
func ParseGraphArg(arg string) (GraphSpec, error) {
	name, source := "", arg
	if i := strings.IndexByte(arg, '='); i >= 0 {
		name, source = arg[:i], arg[i+1:]
	}
	if source == "" {
		return GraphSpec{}, fmt.Errorf("serve: empty graph source in %q", arg)
	}
	if name == "" {
		name = strings.ToLower(source)
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[:i]
		}
	}
	return GraphSpec{Name: name, Source: source}, nil
}

var datasetSourceRE = regexp.MustCompile(`^([A-Za-z]{2,3}):(tiny|mini|full)$`)

// loadSource materializes a GraphSpec's graph: a memoized dataset
// stand-in, or a graph file (binary container detected by magic).
func loadSource(spec GraphSpec, cache *gen.Cache) (*graph.CSR, error) {
	if spec.Graph != nil {
		return spec.Graph, nil
	}
	if m := datasetSourceRE.FindStringSubmatch(spec.Source); m != nil {
		ds, err := gen.DatasetByAbbrev(strings.ToUpper(m[1]))
		if err != nil {
			return nil, err
		}
		var tier gen.Tier
		switch m[2] {
		case "tiny":
			tier = gen.Tiny
		case "mini":
			tier = gen.Mini
		case "full":
			tier = gen.Full
		}
		return cache.Generate(ds, tier)
	}
	f, err := os.Open(spec.Source)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if magic, err := br.Peek(8); err == nil && binary.LittleEndian.Uint64(magic) == 0x47504353 {
		return graph.ReadBinary(br)
	}
	return graph.ReadEdgeList(br, 0)
}

// mutation records one applied edge-set change: the graph it was applied
// to (epoch-1), the edges it added, and the edges it removed (user
// deletes and window expirations alike). The bounded per-graph history of
// these is what lets a query warm-start from a fixed point converged
// several epochs ago.
type mutation struct {
	epoch   uint64 // epoch after applying the batch
	base    *graph.CSR
	added   []graph.Edge
	removed []graph.Edge
}

// mutateOutcome reports one applied batch: the resulting version and the
// per-edge accounting /v1/mutate and /v1/stream answer with.
type mutateOutcome struct {
	epoch   uint64
	g       *graph.CSR
	applied int // edges inserted (after in-batch deduplication)
	skipped int // in-batch duplicate insertions dropped
	deleted int // live edges removed by delete ops
	missed  int // delete ops that matched no live edge
}

// residentGraph is one registry entry: the current immutable CSR, its
// epoch, the timestamped live-edge log behind it, and a bounded mutation
// history. Snapshots are consistent (graph, epoch) pairs; mutations
// serialize on the write lock.
type residentGraph struct {
	name    string
	histMax int
	window  time.Duration

	// store is set instead of g for out-of-core graphpack residents: a
	// lazily-decoded read-only slice store pinned at epoch 0. Exactly one of
	// store and g is non-nil.
	store *ooc.Store

	mu      sync.RWMutex
	g       *graph.CSR
	epoch   uint64
	history []mutation
	log     *stream.Log
	// hook, when non-nil, observes every applied mutation epoch while the
	// write lock is held (see Server.SetMutationHook) — the durability
	// point the distributed tier's WAL appends at.
	hook MutationHook
}

// isGraphpack reports whether source is a graphpack container file, by
// extension or by sniffing the magic.
func isGraphpack(source string) bool {
	if strings.HasSuffix(source, ".graphpack") {
		return true
	}
	f, err := os.Open(source)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false
	}
	return string(m[:]) == ooc.Magic
}

func loadResident(spec GraphSpec, cache *gen.Cache, histMax int) (*residentGraph, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("serve: graph spec needs a name")
	}
	if spec.Graph == nil && !datasetSourceRE.MatchString(spec.Source) && isGraphpack(spec.Source) {
		if spec.Window > 0 {
			return nil, fmt.Errorf("serve: graph %q: out-of-core graphs cannot be windowed", spec.Name)
		}
		st, err := ooc.Open(spec.Source, spec.ResidentBytes)
		if err != nil {
			return nil, err
		}
		if st.NumVertices() == 0 {
			st.Close()
			return nil, fmt.Errorf("serve: graph %q is empty", spec.Name)
		}
		return &residentGraph{name: spec.Name, histMax: histMax, store: st}, nil
	}
	g, err := loadSource(spec, cache)
	if err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("serve: graph %q is empty", spec.Name)
	}
	if spec.Window < 0 {
		return nil, fmt.Errorf("serve: graph %q has a negative window", spec.Name)
	}
	return &residentGraph{
		name:    spec.Name,
		histMax: histMax,
		window:  spec.Window,
		g:       g,
		log:     stream.NewLog(g.Edges()),
	}, nil
}

// snapshot returns a consistent (graph, epoch) pair. The graph is nil for
// out-of-core residents — paths that need a materialized CSR (digest,
// snapshot export, stream accounting) guard on it; compute paths use view.
func (r *residentGraph) snapshot() (*graph.CSR, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.g, r.epoch
}

// view returns the graph to compute on and its epoch: the out-of-core store
// (pinned at epoch 0) for graphpack residents, the current CSR snapshot
// otherwise.
func (r *residentGraph) view() (graph.Adjacency, uint64) {
	if r.store != nil {
		return r.store, 0
	}
	return r.snapshot()
}

// readOnlyErr is the rejection every mutating path returns for an
// out-of-core resident.
func (r *residentGraph) readOnlyErr() error {
	return fmt.Errorf("serve: graph %q is an out-of-core store (read-only)", r.name)
}

// info summarizes the entry for /v1/graphs.
func (r *residentGraph) info() GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var g graph.Adjacency = r.g
	if r.store != nil {
		g = r.store
	}
	return GraphInfo{
		Name:        r.name,
		Epoch:       r.epoch,
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		Weighted:    g.Weighted(),
		WindowSecs:  r.window.Seconds(),
	}
}

// applyBatch applies one mutation epoch: insert ins (deduplicated within
// the batch, timestamped now), then delete every live edge matching a
// (Src, Dst) pair in dels — so a batch that inserts and deletes the same
// edge nets to a delete. The vertex set is fixed: edges referencing
// unknown vertices reject the whole batch. A batch with no effect
// (all-duplicate inserts, all-miss deletes) returns the current version
// unchanged without burning an epoch.
func (r *residentGraph) applyBatch(ins, dels []graph.Edge, now time.Time) (mutateOutcome, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.g == nil {
		return mutateOutcome{}, r.readOnlyErr()
	}
	n := r.g.NumVertices()
	for _, e := range ins {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return mutateOutcome{}, fmt.Errorf("edge %d->%d outside vertex set (n=%d)", e.Src, e.Dst, n)
		}
	}
	for _, e := range dels {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return mutateOutcome{}, fmt.Errorf("delete %d->%d outside vertex set (n=%d)", e.Src, e.Dst, n)
		}
	}
	applied, skipped := dedupEdges(stream.NormalizeWeights(ins, r.g.Weighted()))
	r.log.Append(applied, now)
	removed, missed := r.log.Remove(dels)
	out := mutateOutcome{
		applied: len(applied),
		skipped: skipped,
		deleted: len(removed),
		missed:  missed,
	}
	if len(applied) == 0 && len(removed) == 0 {
		out.epoch, out.g = r.epoch, r.g
		return out, nil
	}
	if err := r.rebuildLocked(applied, removed, now); err != nil {
		return mutateOutcome{}, err
	}
	out.epoch, out.g = r.epoch, r.g
	return out, nil
}

// expire ages out timestamped edges older than the graph's window and
// returns how many were removed (0 when the graph is not windowed or
// nothing aged out).
func (r *residentGraph) expire(now time.Time) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.window <= 0 || r.g == nil {
		return 0, nil
	}
	removed := r.log.Expire(now, r.window)
	if len(removed) == 0 {
		return 0, nil
	}
	if err := r.rebuildLocked(nil, removed, now); err != nil {
		return 0, err
	}
	return len(removed), nil
}

// rebuildLocked materializes the log into a fresh CSR, bumps the epoch,
// records the (added, removed) change in the bounded history, and fires
// the mutation hook — the single point every epoch-advancing path (live
// mutation, window expiry, WAL replay) goes through. Callers hold the
// write lock and have already updated the log.
func (r *residentGraph) rebuildLocked(added, removed []graph.Edge, at time.Time) error {
	ng, err := graph.FromEdges(r.g.NumVertices(), r.log.Edges(), r.g.Weighted())
	if err != nil {
		return err
	}
	added = append([]graph.Edge(nil), added...)
	removed = append([]graph.Edge(nil), removed...)
	r.history = append(r.history, mutation{
		epoch:   r.epoch + 1,
		base:    r.g,
		added:   added,
		removed: removed,
	})
	if len(r.history) > r.histMax {
		r.history = r.history[len(r.history)-r.histMax:]
	}
	r.g = ng
	r.epoch++
	if r.hook != nil {
		r.hook(MutationRecord{
			Graph:   r.name,
			Epoch:   r.epoch,
			Time:    at,
			Added:   added,
			Removed: removed,
		})
	}
	return nil
}

// applyReplay applies one logged mutation record (see Server.ApplyReplay):
// skip at-or-below the resident epoch, apply at exactly epoch+1, fail on a
// gap. Replay uses exact-multiset removal (stream.Log.RemoveExact) rather
// than the endpoint-matching removal of live deletes: the record already
// names the edges that were removed, and removing by endpoint could take
// out extra edges that share endpoints with an expired one.
func (r *residentGraph) applyReplay(rec MutationRecord) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.g == nil {
		return false, r.readOnlyErr()
	}
	if rec.Epoch <= r.epoch {
		return false, nil
	}
	if rec.Epoch != r.epoch+1 {
		return false, fmt.Errorf("%w: record epoch %d, resident epoch %d",
			ErrReplayGap, rec.Epoch, r.epoch)
	}
	n := r.g.NumVertices()
	for _, e := range rec.Added {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return false, fmt.Errorf("serve: replay edge %d->%d outside vertex set (n=%d)", e.Src, e.Dst, n)
		}
	}
	r.log.Append(stream.NormalizeWeights(rec.Added, r.g.Weighted()), rec.Time)
	r.log.RemoveExact(rec.Removed)
	if err := r.rebuildLocked(rec.Added, rec.Removed, rec.Time); err != nil {
		return false, err
	}
	return true, nil
}

// dedupEdges drops exact (Src, Dst, Weight) duplicates within one insert
// batch, returning the edges to apply and how many were skipped.
// Re-inserting an edge that is already live in the graph is legitimate
// (multigraphs are supported); silently double-applying the same edge
// from one request was not.
func dedupEdges(ins []graph.Edge) ([]graph.Edge, int) {
	if len(ins) == 0 {
		return nil, 0
	}
	seen := make(map[graph.Edge]bool, len(ins))
	applied := make([]graph.Edge, 0, len(ins))
	for _, e := range ins {
		if seen[e] {
			continue
		}
		seen[e] = true
		applied = append(applied, e)
	}
	return applied, len(ins) - len(applied)
}

// warmPath returns what is needed to warm-start from a fixed point
// converged at fromEpoch up to toEpoch: the graph as it stood at
// fromEpoch and every edge added and removed since, in order. It fails
// (ok=false) when the history no longer reaches back that far or when
// toEpoch is not the current epoch (the snapshot raced past a newer
// mutation — the caller cold-solves instead).
func (r *residentGraph) warmPath(fromEpoch, toEpoch uint64) (base *graph.CSR, added, removed []graph.Edge, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if fromEpoch >= toEpoch || toEpoch != r.epoch {
		return nil, nil, nil, false
	}
	start := -1
	for i, m := range r.history {
		if m.epoch == fromEpoch+1 {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, nil, nil, false
	}
	base = r.history[start].base
	for _, m := range r.history[start:] {
		added = append(added, m.added...)
		removed = append(removed, m.removed...)
	}
	return base, added, removed, true
}
