package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"regexp"
	"strings"
	"sync"

	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// GraphSpec names one resident graph and where it comes from. Exactly one
// of Graph and Source must be set.
type GraphSpec struct {
	// Name is the handle queries and mutations address the graph by.
	Name string
	// Source is "ABBREV:tier" for a Table IV synthetic stand-in built
	// through the shared gen cache (e.g. "WG:tiny", "LJ:mini"), or a path
	// to an edge-list / binary container file.
	Source string
	// Graph is a pre-built in-memory graph (facade callers pass a
	// *graphpulse.Graph directly).
	Graph *graph.CSR
}

// ParseGraphArg parses the CLI form "name=source" (or a bare source, whose
// name becomes the source string lowercased up to the first ':').
func ParseGraphArg(arg string) (GraphSpec, error) {
	name, source := "", arg
	if i := strings.IndexByte(arg, '='); i >= 0 {
		name, source = arg[:i], arg[i+1:]
	}
	if source == "" {
		return GraphSpec{}, fmt.Errorf("serve: empty graph source in %q", arg)
	}
	if name == "" {
		name = strings.ToLower(source)
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[:i]
		}
	}
	return GraphSpec{Name: name, Source: source}, nil
}

var datasetSourceRE = regexp.MustCompile(`^([A-Za-z]{2,3}):(tiny|mini|full)$`)

// loadSource materializes a GraphSpec's graph: a memoized dataset
// stand-in, or a graph file (binary container detected by magic).
func loadSource(spec GraphSpec, cache *gen.Cache) (*graph.CSR, error) {
	if spec.Graph != nil {
		return spec.Graph, nil
	}
	if m := datasetSourceRE.FindStringSubmatch(spec.Source); m != nil {
		ds, err := gen.DatasetByAbbrev(strings.ToUpper(m[1]))
		if err != nil {
			return nil, err
		}
		var tier gen.Tier
		switch m[2] {
		case "tiny":
			tier = gen.Tiny
		case "mini":
			tier = gen.Mini
		case "full":
			tier = gen.Full
		}
		return cache.Generate(ds, tier)
	}
	f, err := os.Open(spec.Source)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if magic, err := br.Peek(8); err == nil && binary.LittleEndian.Uint64(magic) == 0x47504353 {
		return graph.ReadBinary(br)
	}
	return graph.ReadEdgeList(br, 0)
}

// mutation records one applied edge-insertion batch: the graph it was
// applied to (epoch-1) and the edges it added. The bounded per-graph
// history of these is what lets a query warm-start from a fixed point
// converged several epochs ago.
type mutation struct {
	epoch uint64 // epoch after applying the batch
	base  *graph.CSR
	added []graph.Edge
}

// residentGraph is one registry entry: the current immutable CSR, its
// epoch, and a bounded mutation history. Snapshots are consistent
// (graph, epoch) pairs; mutations serialize on the write lock.
type residentGraph struct {
	name    string
	histMax int

	mu      sync.RWMutex
	g       *graph.CSR
	epoch   uint64
	history []mutation
}

func loadResident(spec GraphSpec, cache *gen.Cache, histMax int) (*residentGraph, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("serve: graph spec needs a name")
	}
	g, err := loadSource(spec, cache)
	if err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("serve: graph %q is empty", spec.Name)
	}
	return &residentGraph{name: spec.Name, histMax: histMax, g: g}, nil
}

// snapshot returns a consistent (graph, epoch) pair.
func (r *residentGraph) snapshot() (*graph.CSR, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.g, r.epoch
}

// info summarizes the entry for /v1/graphs.
func (r *residentGraph) info() GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return GraphInfo{
		Name:        r.name,
		Epoch:       r.epoch,
		NumVertices: r.g.NumVertices(),
		NumEdges:    r.g.NumEdges(),
		Weighted:    r.g.Weighted(),
	}
}

// applyInsert rebuilds the CSR with the batch appended, bumps the epoch,
// and records the mutation in the bounded history. The vertex set is
// fixed: edges referencing unknown vertices are rejected whole-batch.
func (r *residentGraph) applyInsert(added []graph.Edge) (uint64, *graph.CSR, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	edges := r.g.Edges()
	edges = append(edges, added...)
	ng, err := graph.FromEdges(r.g.NumVertices(), edges, r.g.Weighted())
	if err != nil {
		return 0, nil, err
	}
	r.history = append(r.history, mutation{
		epoch: r.epoch + 1,
		base:  r.g,
		added: append([]graph.Edge(nil), added...),
	})
	if len(r.history) > r.histMax {
		r.history = r.history[len(r.history)-r.histMax:]
	}
	r.g = ng
	r.epoch++
	return r.epoch, ng, nil
}

// warmPath returns what is needed to warm-start from a fixed point
// converged at fromEpoch up to toEpoch: the graph as it stood at
// fromEpoch and every edge added since, in order. It fails (ok=false)
// when the history no longer reaches back that far or when toEpoch is not
// the current epoch (the snapshot raced past a newer mutation — the
// caller cold-solves instead).
func (r *residentGraph) warmPath(fromEpoch, toEpoch uint64) (*graph.CSR, []graph.Edge, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if fromEpoch >= toEpoch || toEpoch != r.epoch {
		return nil, nil, false
	}
	start := -1
	for i, m := range r.history {
		if m.epoch == fromEpoch+1 {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, nil, false
	}
	base := r.history[start].base
	var added []graph.Edge
	for _, m := range r.history[start:] {
		added = append(added, m.added...)
	}
	return base, added, true
}
