package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/engines"
	"graphpulse/internal/graph"
	"graphpulse/internal/sim"
)

// Body limits: queries are small; mutation batches carry edge lists.
const (
	maxQueryBody  = 1 << 20  // 1 MiB
	maxMutateBody = 64 << 20 // 64 MiB
	maxTopN       = 1000
)

// Handler returns the server's HTTP routing table. Mount it anywhere; the
// worker pool and registry live on the Server, not the listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/mutate", s.handleMutate)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.metrics.Render())
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeJSON encodes before touching the response so an encoding failure
// surfaces as a clean 500, never a truncated 200.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(buf, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	infos := make([]GraphInfo, 0, len(s.order))
	for _, name := range s.order {
		infos = append(infos, s.graphs[name].info())
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Add("mutate_requests", 1)
	defer func() {
		s.metrics.Observe("mutate_latency_us", time.Since(start).Microseconds())
	}()
	var req MutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMutateBody)).Decode(&req); err != nil {
		s.metrics.Add("mutate_errors", 1)
		writeError(w, http.StatusBadRequest, "bad mutate body: %v", err)
		return
	}
	rg, ok := s.graphs[req.Graph]
	if !ok {
		s.metrics.Add("mutate_errors", 1)
		writeError(w, http.StatusNotFound, "unknown graph %q", req.Graph)
		return
	}
	if len(req.Edges) == 0 {
		s.metrics.Add("mutate_errors", 1)
		writeError(w, http.StatusBadRequest, "empty edge batch")
		return
	}
	added := make([]graph.Edge, len(req.Edges))
	for i, e := range req.Edges {
		added[i] = graph.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
	}
	epoch, ng, err := rg.applyInsert(added)
	if err != nil {
		s.metrics.Add("mutate_errors", 1)
		writeError(w, http.StatusBadRequest, "mutate rejected: %v", err)
		return
	}
	s.metrics.Add("mutate_edges_added", int64(len(added)))
	writeJSON(w, http.StatusOK, MutateResponse{
		Graph:       req.Graph,
		Epoch:       epoch,
		Added:       len(added),
		NumVertices: ng.NumVertices(),
		NumEdges:    ng.NumEdges(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Add("query_requests", 1)
	defer func() {
		s.metrics.Observe("query_latency_us", time.Since(start).Microseconds())
	}()
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusBadRequest, "bad query body: %v", err)
		return
	}
	rg, ok := s.graphs[req.Graph]
	if !ok {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusNotFound, "unknown graph %q", req.Graph)
		return
	}
	engine, err := normalizeEngine(req.Engine)
	if err != nil {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	alg, algKey, err := makeAlgorithm(&req)
	if err != nil {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g, epoch := rg.snapshot()
	if req.Root != nil && int(*req.Root) >= g.NumVertices() {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusBadRequest, "root %d out of range (n=%d)", *req.Root, g.NumVertices())
		return
	}

	// Per-request deadline, propagated into the engines through context
	// cancellation (sim.Engine.RunUntil / algorithms.SolveCtx).
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	series := seriesKey(req.Graph, engine, algKey)
	if res, ok := s.cache.get(series, epoch); ok {
		s.metrics.Add("query_cache_hits", 1)
		writeJSON(w, http.StatusOK, s.buildResponse(&req, g, engine, algKey, res, true, false))
		return
	}
	s.metrics.Add("query_cache_misses", 1)

	f, led, err := s.joinOrLead(series, epoch, rg, g, alg, engine)
	if err != nil {
		// Admission control: the compute queue is full. Never block, never
		// buffer unboundedly — tell the client when to come back.
		s.metrics.Add("query_rejected", 1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "compute queue full, retry later")
		return
	}
	if !led {
		s.metrics.Add("query_coalesced", 1)
	}
	defer f.leave()
	select {
	case <-f.done:
	case <-ctx.Done():
		s.metrics.Add("query_deadline_exceeded", 1)
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for computation")
		return
	}
	if f.err != nil {
		if errors.Is(f.err, sim.ErrCanceled) || errors.Is(f.err, context.DeadlineExceeded) {
			s.metrics.Add("query_deadline_exceeded", 1)
			writeError(w, http.StatusGatewayTimeout, "computation canceled: %v", f.err)
			return
		}
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusInternalServerError, "compute failed: %v", f.err)
		return
	}
	writeJSON(w, http.StatusOK, s.buildResponse(&req, g, engine, algKey, f.res, false, !led))
}

// joinOrLead coalesces the caller onto an identical in-flight computation
// or starts one on the worker pool. The returned flight has the caller
// registered as a waiter (call leave exactly once). led reports whether
// this caller started the computation; ErrBusy means admission control
// rejected it.
func (s *Server) joinOrLead(series string, epoch uint64, rg *residentGraph, g *graph.CSR, alg algorithms.Algorithm, engine string) (*flight, bool, error) {
	key := fullKey(series, epoch)
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		f.join()
		s.flightMu.Unlock()
		return f, false, nil
	}
	cctx, cancel := context.WithTimeout(context.Background(), s.cfg.ComputeTimeout)
	f := &flight{done: make(chan struct{}), cancel: cancel}
	f.join()
	s.flights[key] = f
	s.flightMu.Unlock()

	err := s.submit(func() {
		defer cancel()
		res, err := s.compute(cctx, rg, g, epoch, alg, series, engine)
		if err == nil {
			s.cache.put(series, epoch, res)
		} else if errors.Is(err, sim.ErrCanceled) || errors.Is(err, context.DeadlineExceeded) {
			s.metrics.Add("compute_canceled", 1)
		}
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		f.res, f.err = res, err
		close(f.done)
	})
	if err != nil {
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		f.leave()
		return nil, false, err
	}
	return f, true, nil
}

// compute runs one query computation: pick a warm start if a prior
// epoch's fixed point is cached and the mutation history still covers the
// gap, then execute on the chosen engine under ctx.
func (s *Server) compute(ctx context.Context, rg *residentGraph, g *graph.CSR, epoch uint64, alg algorithms.Algorithm, series, engine string) (*cachedResult, error) {
	if s.testComputeStall != nil {
		s.testComputeStall(ctx)
	}
	start := time.Now()
	mode := "cold"
	runAlg := alg
	if prior, priorEpoch, ok := s.cache.latestBefore(series, epoch); ok {
		if seeder, ok := alg.(algorithms.InsertionSeeder); ok {
			if base, added, ok := rg.warmPath(priorEpoch, epoch); ok {
				state := append([]float64(nil), prior.Values...)
				seeds := seeder.SeedInsertions(base, added, state)
				runAlg = algorithms.WarmStart(alg, state, seeds)
				mode = "warm"
			}
		}
	}

	eng, err := engines.Lookup(engine)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	res, err := eng.SolveCtx(ctx, g, runAlg)
	if err != nil {
		return nil, err
	}
	values, activations := res.Values, res.Activations
	elapsed := time.Since(start)
	s.metrics.Observe("compute_latency_us", elapsed.Microseconds())
	if mode == "warm" {
		s.metrics.Add("query_warm_starts", 1)
	} else {
		s.metrics.Add("query_cold_solves", 1)
	}
	return &cachedResult{
		Values:      values,
		Epoch:       epoch,
		Mode:        mode,
		Activations: activations,
		ComputeSecs: elapsed.Seconds(),
	}, nil
}

// buildResponse projects a cached result onto the slice of the answer the
// request asked for.
func (s *Server) buildResponse(req *QueryRequest, g *graph.CSR, engine, algKey string, res *cachedResult, fromCache, coalesced bool) *QueryResponse {
	mode := res.Mode
	if fromCache {
		mode = "cache"
	}
	resp := &QueryResponse{
		Graph:       req.Graph,
		Epoch:       res.Epoch,
		Algorithm:   algKey,
		Engine:      engine,
		Cached:      fromCache,
		Mode:        mode,
		Coalesced:   coalesced,
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		Activations: res.Activations,
		ComputeSecs: res.ComputeSecs,
	}
	sum := 0.0
	for _, v := range res.Values {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			sum += v
		}
	}
	resp.Sum = sum
	topN := req.Top
	if topN == 0 {
		topN = 10
	}
	if topN > maxTopN {
		topN = maxTopN
	}
	if topN > 0 {
		resp.Top = topVertices(res.Values, topN)
	}
	for _, v := range req.Vertices {
		if int(v) < len(res.Values) {
			resp.Values = append(resp.Values, VertexValue{Vertex: v, Value: res.Values[int(v)]})
		}
	}
	return resp
}

// topVertices returns the n highest finite values, ties broken by vertex
// id so responses are deterministic.
func topVertices(values []float64, n int) []VertexValue {
	idx := make([]int, 0, len(values))
	for i, v := range values {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := values[idx[a]], values[idx[b]]
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	if len(idx) > n {
		idx = idx[:n]
	}
	out := make([]VertexValue, len(idx))
	for i, v := range idx {
		out[i] = VertexValue{Vertex: uint32(v), Value: values[v]}
	}
	return out
}
