package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/engines"
	"graphpulse/internal/graph"
	"graphpulse/internal/sim"
	"graphpulse/internal/stream"
)

// Body limits: queries are small; mutation batches carry edge lists;
// stream bodies are read chunked but still bounded.
const (
	maxQueryBody   = 1 << 20   // 1 MiB
	maxMutateBody  = 64 << 20  // 64 MiB
	maxStreamBody  = 256 << 20 // 256 MiB per request, read incrementally
	maxStreamLine  = 1 << 12   // one NDJSON op
	maxTopN        = 1000
	streamRetrySec = "1"
)

// Handler returns the server's HTTP routing table. Mount it anywhere; the
// worker pool and registry live on the Server, not the listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/mutate", s.handleMutate)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.metrics.Render())
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeJSON encodes before touching the response so an encoding failure
// surfaces as a clean 500, never a truncated 200.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(buf, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	infos := make([]GraphInfo, 0, len(s.order))
	for _, name := range s.order {
		infos = append(infos, s.graphs[name].info())
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Add("mutate_requests", 1)
	defer func() {
		s.metrics.Observe("mutate_latency_us", time.Since(start).Microseconds())
	}()
	var req MutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMutateBody)).Decode(&req); err != nil {
		s.metrics.Add("mutate_errors", 1)
		writeError(w, http.StatusBadRequest, "bad mutate body: %v", err)
		return
	}
	rg, ok := s.graphs[req.Graph]
	if !ok {
		s.metrics.Add("mutate_errors", 1)
		writeError(w, http.StatusNotFound, "unknown graph %q", req.Graph)
		return
	}
	if len(req.Edges) == 0 && len(req.Deletes) == 0 {
		s.metrics.Add("mutate_errors", 1)
		writeError(w, http.StatusBadRequest, "empty edge batch")
		return
	}
	out, err := rg.applyBatch(edgesFromJSON(req.Edges), edgesFromJSON(req.Deletes), s.now())
	if err != nil {
		s.metrics.Add("mutate_errors", 1)
		writeError(w, http.StatusBadRequest, "mutate rejected: %v", err)
		return
	}
	s.recordMutateOutcome(out)
	writeJSON(w, http.StatusOK, MutateResponse{
		Graph:       req.Graph,
		Epoch:       out.epoch,
		Added:       out.applied,
		Skipped:     out.skipped,
		Deleted:     out.deleted,
		Missed:      out.missed,
		NumVertices: out.g.NumVertices(),
		NumEdges:    out.g.NumEdges(),
	})
}

func edgesFromJSON(in []EdgeJSON) []graph.Edge {
	if len(in) == 0 {
		return nil
	}
	out := make([]graph.Edge, len(in))
	for i, e := range in {
		out[i] = graph.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
	}
	return out
}

func (s *Server) recordMutateOutcome(out mutateOutcome) {
	s.metrics.Add("mutate_edges_added", int64(out.applied))
	s.metrics.Add("mutate_dedup_skipped", int64(out.skipped))
	s.metrics.Add("mutate_delete_edges", int64(out.deleted))
	s.metrics.Add("mutate_delete_missed", int64(out.missed))
}

// handleStream is the bulk-ingestion endpoint: a chunked NDJSON stream of
// insert/delete ops (StreamOp per line), grouped into bounded batches of
// Config.StreamBatch ops, each applied as one mutation epoch before the
// next chunk is read — so in-flight memory stays bounded regardless of
// body size, and TCP flow control paces a fast producer. Concurrent
// streams beyond Config.StreamInflight are rejected with 429 +
// Retry-After, the same admission-control contract as the compute queue.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Add("stream_requests", 1)
	defer func() {
		s.metrics.Observe("stream_latency_us", time.Since(start).Microseconds())
	}()
	rg, ok := s.graphs[r.URL.Query().Get("graph")]
	if !ok {
		s.metrics.Add("stream_errors", 1)
		writeError(w, http.StatusNotFound, "unknown graph %q (pass ?graph=name)", r.URL.Query().Get("graph"))
		return
	}
	select {
	case s.streamSem <- struct{}{}:
		defer func() { <-s.streamSem }()
	default:
		s.metrics.Add("stream_rejected", 1)
		w.Header().Set("Retry-After", streamRetrySec)
		writeError(w, http.StatusTooManyRequests, "too many concurrent streams, retry later")
		return
	}

	resp := StreamResponse{Graph: rg.name}
	var ins, dels []graph.Edge
	flush := func() error {
		if len(ins) == 0 && len(dels) == 0 {
			return nil
		}
		out, err := rg.applyBatch(ins, dels, s.now())
		if err != nil {
			return err
		}
		s.recordMutateOutcome(out)
		s.metrics.Add("stream_batches", 1)
		resp.Batches++
		resp.Added += out.applied
		resp.Skipped += out.skipped
		resp.Deleted += out.deleted
		resp.Missed += out.missed
		ins, dels = ins[:0], dels[:0]
		return nil
	}

	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, maxStreamBody))
	sc.Buffer(make([]byte, 0, 4096), maxStreamLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var op StreamOp
		if err := json.Unmarshal(line, &op); err != nil {
			s.metrics.Add("stream_errors", 1)
			writeError(w, http.StatusBadRequest, "bad stream op %q: %v", line, err)
			return
		}
		e := graph.Edge{Src: op.Src, Dst: op.Dst, Weight: op.Weight}
		switch op.Op {
		case "", "insert":
			ins = append(ins, e)
		case "delete":
			dels = append(dels, e)
		default:
			s.metrics.Add("stream_errors", 1)
			writeError(w, http.StatusBadRequest, "unknown stream op %q (want insert|delete)", op.Op)
			return
		}
		resp.Ops++
		s.metrics.Add("stream_ops", 1)
		if len(ins)+len(dels) >= s.cfg.StreamBatch {
			if err := flush(); err != nil {
				s.metrics.Add("stream_errors", 1)
				writeError(w, http.StatusBadRequest, "stream batch rejected: %v", err)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		s.metrics.Add("stream_errors", 1)
		writeError(w, http.StatusBadRequest, "stream read: %v", err)
		return
	}
	if err := flush(); err != nil {
		s.metrics.Add("stream_errors", 1)
		writeError(w, http.StatusBadRequest, "stream batch rejected: %v", err)
		return
	}
	g, epoch := rg.view()
	resp.Epoch, resp.NumEdges = epoch, g.NumEdges()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Add("query_requests", 1)
	defer func() {
		s.metrics.Observe("query_latency_us", time.Since(start).Microseconds())
	}()
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusBadRequest, "bad query body: %v", err)
		return
	}
	rg, ok := s.graphs[req.Graph]
	if !ok {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusNotFound, "unknown graph %q", req.Graph)
		return
	}
	engine, err := normalizeEngine(req.Engine)
	if err != nil {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	alg, algKey, err := makeAlgorithm(&req)
	if err != nil {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g, epoch := rg.view()
	if req.Root != nil && int(*req.Root) >= g.NumVertices() {
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusBadRequest, "root %d out of range (n=%d)", *req.Root, g.NumVertices())
		return
	}

	// Per-request deadline, propagated into the engines through context
	// cancellation (sim.Engine.RunUntil / algorithms.SolveCtx).
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	series := seriesKey(req.Graph, engine, algKey)
	if res, ok := s.cache.get(series, epoch); ok {
		s.metrics.Add("query_cache_hits", 1)
		writeJSON(w, http.StatusOK, s.buildResponse(&req, g, engine, algKey, res, true, false))
		return
	}
	s.metrics.Add("query_cache_misses", 1)

	f, led, err := s.joinOrLead(series, epoch, rg, g, alg, engine)
	if err != nil {
		// Admission control: the compute queue is full. Never block, never
		// buffer unboundedly — tell the client when to come back.
		s.metrics.Add("query_rejected", 1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "compute queue full, retry later")
		return
	}
	if !led {
		s.metrics.Add("query_coalesced", 1)
	}
	defer f.leave()
	select {
	case <-f.done:
	case <-ctx.Done():
		s.metrics.Add("query_deadline_exceeded", 1)
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for computation")
		return
	}
	if f.err != nil {
		if errors.Is(f.err, sim.ErrCanceled) || errors.Is(f.err, context.DeadlineExceeded) {
			s.metrics.Add("query_deadline_exceeded", 1)
			writeError(w, http.StatusGatewayTimeout, "computation canceled: %v", f.err)
			return
		}
		s.metrics.Add("query_errors", 1)
		writeError(w, http.StatusInternalServerError, "compute failed: %v", f.err)
		return
	}
	writeJSON(w, http.StatusOK, s.buildResponse(&req, g, engine, algKey, f.res, false, !led))
}

// joinOrLead coalesces the caller onto an identical in-flight computation
// or starts one on the worker pool. The returned flight has the caller
// registered as a waiter (call leave exactly once). led reports whether
// this caller started the computation; ErrBusy means admission control
// rejected it.
func (s *Server) joinOrLead(series string, epoch uint64, rg *residentGraph, g graph.Adjacency, alg algorithms.Algorithm, engine string) (*flight, bool, error) {
	key := fullKey(series, epoch)
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		f.join()
		s.flightMu.Unlock()
		return f, false, nil
	}
	cctx, cancel := context.WithTimeout(context.Background(), s.cfg.ComputeTimeout)
	f := &flight{done: make(chan struct{}), cancel: cancel}
	f.join()
	s.flights[key] = f
	s.flightMu.Unlock()

	err := s.submit(func() {
		defer cancel()
		res, err := s.compute(cctx, rg, g, epoch, alg, series, engine)
		if err == nil {
			s.cache.put(series, epoch, res)
		} else if errors.Is(err, sim.ErrCanceled) || errors.Is(err, context.DeadlineExceeded) {
			s.metrics.Add("compute_canceled", 1)
		}
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		f.res, f.err = res, err
		close(f.done)
	})
	if err != nil {
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		f.leave()
		return nil, false, err
	}
	return f, true, nil
}

// compute runs one query computation: pick a warm start if a prior
// epoch's fixed point is cached and the mutation history still covers the
// gap — correction seeding for insert-only gaps ("warm"), dependency-cone
// re-initialization when deletions are involved ("cone", degrading to a
// cold replay past Config.MaxConeFraction) — then execute on the chosen
// engine under ctx.
func (s *Server) compute(ctx context.Context, rg *residentGraph, g graph.Adjacency, epoch uint64, alg algorithms.Algorithm, series, engine string) (*cachedResult, error) {
	if s.testComputeStall != nil {
		s.testComputeStall(ctx)
	}
	start := time.Now()
	mode := "cold"
	runAlg := alg
	if prior, priorEpoch, ok := s.cache.latestBefore(series, epoch); ok {
		if base, added, removed, ok := rg.warmPath(priorEpoch, epoch); ok {
			if len(removed) == 0 {
				if seeder, ok := alg.(algorithms.InsertionSeeder); ok {
					state := append([]float64(nil), prior.Values...)
					seeds := seeder.SeedInsertions(base, added, state)
					runAlg = algorithms.WarmStart(alg, state, seeds)
					mode = "warm"
				}
			} else if csr, isCSR := g.(*graph.CSR); isCSR {
				// warmPath only succeeds for mutable residents, whose view
				// is always a *CSR; out-of-core stores never reach here.
				if plan, err := stream.PlanRestart(alg, csr, added, removed, prior.Values, s.cfg.MaxConeFraction); err == nil {
					if plan.Replay {
						s.metrics.Add("stream_replay_fallbacks", 1)
					} else {
						runAlg = algorithms.WarmStart(alg, plan.State, plan.Seeds)
						mode = "cone"
					}
				}
			}
		}
	}

	eng, err := engines.Lookup(engine)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	res, err := eng.SolveCtx(ctx, g, runAlg)
	if err != nil {
		return nil, err
	}
	values, activations := res.Values, res.Activations
	elapsed := time.Since(start)
	s.metrics.Observe("compute_latency_us", elapsed.Microseconds())
	switch mode {
	case "warm":
		s.metrics.Add("query_warm_starts", 1)
	case "cone":
		s.metrics.Add("stream_cone_starts", 1)
	default:
		s.metrics.Add("query_cold_solves", 1)
	}
	return &cachedResult{
		Values:      values,
		Epoch:       epoch,
		Mode:        mode,
		Activations: activations,
		ComputeSecs: elapsed.Seconds(),
	}, nil
}

// buildResponse projects a cached result onto the slice of the answer the
// request asked for.
func (s *Server) buildResponse(req *QueryRequest, g graph.Adjacency, engine, algKey string, res *cachedResult, fromCache, coalesced bool) *QueryResponse {
	mode := res.Mode
	if fromCache {
		mode = "cache"
	}
	resp := &QueryResponse{
		Graph:       req.Graph,
		Epoch:       res.Epoch,
		Algorithm:   algKey,
		Engine:      engine,
		Cached:      fromCache,
		Mode:        mode,
		Coalesced:   coalesced,
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		Activations: res.Activations,
		ComputeSecs: res.ComputeSecs,
	}
	sum := 0.0
	for _, v := range res.Values {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			sum += v
		}
	}
	resp.Sum = sum
	topN := req.Top
	if topN == 0 {
		topN = 10
	}
	if topN > maxTopN {
		topN = maxTopN
	}
	if topN > 0 {
		resp.Top = topVertices(res.Values, topN)
	}
	for _, v := range req.Vertices {
		if int(v) < len(res.Values) {
			resp.Values = append(resp.Values, VertexValue{Vertex: v, Value: res.Values[int(v)]})
		}
	}
	return resp
}

// topVertices returns the n highest finite values, ties broken by vertex
// id so responses are deterministic.
func topVertices(values []float64, n int) []VertexValue {
	idx := make([]int, 0, len(values))
	for i, v := range values {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := values[idx[a]], values[idx[b]]
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	if len(idx) > n {
		idx = idx[:n]
	}
	out := make([]VertexValue, len(idx))
	for i, v := range idx {
		out[i] = VertexValue{Vertex: uint32(v), Value: values[v]}
	}
	return out
}
