package serve

import (
	"strings"
	"sync"

	"graphpulse/internal/sim/stats"
)

// Serving metrics, in the order /metrics renders them. All are documented
// in METRICS.md ("Serving metrics"); the lintdoc staleness linter
// enumerates them through MetricNames.
var serveCounters = []string{
	"query_requests",          // /v1/query requests admitted to parsing
	"query_cache_hits",        // answered from the versioned result cache
	"query_cache_misses",      // required a computation (led or joined)
	"query_coalesced",         // joined an identical in-flight computation
	"query_cold_solves",       // computations started from scratch
	"query_warm_starts",       // computations warm-started from a prior epoch
	"query_rejected",          // bounced by admission control (429)
	"query_deadline_exceeded", // request deadline expired (504)
	"query_errors",            // bad requests and compute failures
	"compute_canceled",        // computations canceled after all waiters left
	"mutate_requests",         // /v1/mutate requests
	"mutate_edges_added",      // edges inserted across all batches
	"mutate_dedup_skipped",    // in-batch duplicate insertions dropped
	"mutate_delete_edges",     // live edges removed by delete ops
	"mutate_delete_missed",    // delete ops that matched no live edge
	"mutate_errors",           // rejected mutation batches
	"stream_requests",         // /v1/stream requests admitted to parsing
	"stream_rejected",         // streams bounced by the in-flight bound (429)
	"stream_errors",           // malformed ops, rejected batches, expiry failures
	"stream_ops",              // NDJSON ops read across all streams
	"stream_batches",          // mutation epochs applied by /v1/stream
	"stream_cone_starts",      // queries warm-started via deletion-cone reset
	"stream_replay_fallbacks", // cone exceeded MaxConeFraction; cold replay
	"stream_window_sweeps",    // expiry ticker passes over windowed graphs
	"stream_expired_edges",    // edges aged out of sliding-window graphs
}

// serveHistograms are the latency distributions, in microseconds.
var serveHistograms = []string{
	"query_latency_us",   // full request latency of /v1/query
	"mutate_latency_us",  // full request latency of /v1/mutate
	"stream_latency_us",  // full request latency of /v1/stream
	"compute_latency_us", // worker-pool computation time (cache misses only)
}

// latencyBucketsUS spans 100µs to 1s; slower requests land in overflow.
var latencyBucketsUS = []int64{
	100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000,
	50_000, 100_000, 250_000, 500_000, 1_000_000,
}

// Metrics is the server's observability surface: a stats.Set behind a
// mutex (the simulator's sets are single-threaded by construction; the
// serving layer is not). Every name is pre-registered so /metrics renders
// the complete catalogue in a fixed order from the first request on.
type Metrics struct {
	mu  sync.Mutex
	set *stats.Set
}

// NewMetrics returns a Metrics with every serving counter and histogram
// registered at zero.
func NewMetrics() *Metrics {
	return NewMetricsCatalog(serveCounters, serveHistograms)
}

// NewMetricsCatalog returns a Metrics pre-registered with an arbitrary
// catalogue instead of the serving one — the distributed tier's router
// (internal/dserve) reuses the serving metrics machinery with its own
// `router_*` names this way.
func NewMetricsCatalog(counters, histograms []string) *Metrics {
	m := &Metrics{set: stats.NewSet()}
	m.register(counters, histograms)
	return m
}

// Register extends the catalogue with additional counter and histogram
// names, pre-registered at zero so /metrics renders them from the first
// request on. A distributed-tier worker (internal/dserve) adds its
// `worker_*` names to the serve.Server's catalogue through this.
func (m *Metrics) Register(counters, histograms []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.register(counters, histograms)
}

func (m *Metrics) register(counters, histograms []string) {
	for _, n := range counters {
		m.set.Add(n, 0)
	}
	for _, n := range histograms {
		m.set.Histogram(n, latencyBucketsUS)
	}
}

// Add increments a counter.
func (m *Metrics) Add(name string, delta int64) {
	m.mu.Lock()
	m.set.Add(name, delta)
	m.mu.Unlock()
}

// Observe records one histogram observation.
func (m *Metrics) Observe(name string, v int64) {
	m.mu.Lock()
	m.set.Histogram(name, latencyBucketsUS).Observe(v)
	m.mu.Unlock()
}

// Counter returns a counter's current value.
func (m *Metrics) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.set.Counter(name)
}

// Render returns the /metrics text: every counter and histogram in
// registration order, in the repository's deterministic stats.Set.Report
// format. The exact output is pinned by a golden-file test.
func (m *Metrics) Render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	b.WriteString("# graphpulse serve metrics (see METRICS.md)\n")
	b.WriteString(m.set.Report())
	return b.String()
}

// MetricNames lists every metric name the serving layer can emit; the
// METRICS.md staleness linter checks the doc against it.
func MetricNames() []string {
	return NewMetrics().set.Names()
}
