package serve

import (
	"fmt"
	"math"
	"strings"

	"graphpulse/internal/graph"
	"graphpulse/internal/stream"
)

// SnapshotVersion identifies the on-disk/wire snapshot format.
const SnapshotVersion = 1

// Snapshot is a warm-restart image of one resident graph: the live edge
// set and epoch, plus every converged result cached at that epoch. It is
// the serving-tier analogue of core.Checkpoint — like the accelerator
// checkpoint it stores float state as raw IEEE-754 bits so ±Inf values
// (unreachable vertices under SSSP-style algorithms) and bit-exact
// round-tripping survive JSON — but it snapshots the *service* state
// (graph version + solved fixed points), not a mid-flight event
// population. The distributed tier (internal/dserve) persists snapshots
// for warm worker restart and ships them between replicas so a rejoining
// worker resynchronizes without a cold re-solve.
type Snapshot struct {
	Version     int    `json:"version"`
	Graph       string `json:"graph"`
	Epoch       uint64 `json:"epoch"`
	NumVertices int    `json:"num_vertices"`
	Weighted    bool   `json:"weighted"`
	// Edges is the complete live edge set at Epoch, in CSR order.
	Edges []SnapshotEdge `json:"edges"`
	// Series holds the results cached at exactly Epoch, one per
	// (engine, algorithm) series.
	Series []SnapshotSeries `json:"series,omitempty"`
}

// SnapshotEdge is one directed edge of the snapshotted edge set.
type SnapshotEdge struct {
	Src    uint32  `json:"s"`
	Dst    uint32  `json:"d"`
	Weight float32 `json:"w,omitempty"`
}

// SnapshotSeries is one cached fixed point: the graph-local series key
// ("engine|algKey", without the graph name so the snapshot transplants
// cleanly) and the converged per-vertex values as IEEE-754 bits.
type SnapshotSeries struct {
	Key         string   `json:"key"`
	Mode        string   `json:"mode"`
	Activations int64    `json:"activations"`
	ComputeSecs float64  `json:"compute_seconds"`
	ValuesBits  []uint64 `json:"values_bits"`
}

// ErrSnapshotStale is returned by ImportSnapshot when the snapshot's epoch
// is older than the resident graph's — the local state is already newer,
// so adopting the snapshot would rewind it.
var ErrSnapshotStale = fmt.Errorf("serve: snapshot is older than resident state")

// ExportSnapshot captures the named resident graph's current edge set,
// epoch, and every result cached at that epoch.
func (s *Server) ExportSnapshot(name string) (*Snapshot, error) {
	rg, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown graph %q", name)
	}
	g, epoch := rg.snapshot()
	if g == nil {
		return nil, rg.readOnlyErr()
	}
	snap := &Snapshot{
		Version:     SnapshotVersion,
		Graph:       name,
		Epoch:       epoch,
		NumVertices: g.NumVertices(),
		Weighted:    g.Weighted(),
		Edges:       make([]SnapshotEdge, 0, g.NumEdges()),
	}
	for _, e := range g.Edges() {
		w := float32(0)
		if g.Weighted() {
			w = e.Weight
		}
		snap.Edges = append(snap.Edges, SnapshotEdge{Src: e.Src, Dst: e.Dst, Weight: w})
	}
	prefix := name + "|"
	for key, res := range s.cache.exportSeries(prefix, epoch) {
		ss := SnapshotSeries{
			Key:         strings.TrimPrefix(key, prefix),
			Mode:        res.Mode,
			Activations: res.Activations,
			ComputeSecs: res.ComputeSecs,
			ValuesBits:  make([]uint64, len(res.Values)),
		}
		for i, v := range res.Values {
			ss.ValuesBits[i] = math.Float64bits(v)
		}
		snap.Series = append(snap.Series, ss)
	}
	return snap, nil
}

// ImportSnapshot adopts a snapshot taken by a server with the same graph
// configuration: the resident graph's edge set and epoch are replaced by
// the snapshot's, and every snapshotted series is inserted into the result
// cache at that epoch — so the next identical query is a cache hit, not a
// cold re-solve. The snapshot must target a resident graph with the same
// vertex count and weight mode; a snapshot older than the resident epoch
// is rejected with ErrSnapshotStale. The mutation history is cleared
// (warm starts across the restore boundary fall back to the imported
// cache entries), and restored edges are treated as permanent base edges
// — on sliding-window graphs their original ingest timestamps are not
// carried over.
func (s *Server) ImportSnapshot(snap *Snapshot) error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("serve: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	rg, ok := s.graphs[snap.Graph]
	if !ok {
		return fmt.Errorf("serve: snapshot is for graph %q, not resident", snap.Graph)
	}
	edges := make([]graph.Edge, len(snap.Edges))
	for i, e := range snap.Edges {
		edges[i] = graph.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
	}
	for _, ss := range snap.Series {
		if len(ss.ValuesBits) != snap.NumVertices {
			return fmt.Errorf("serve: snapshot series %q has %d values, want %d",
				ss.Key, len(ss.ValuesBits), snap.NumVertices)
		}
	}
	if err := rg.restore(snap.NumVertices, snap.Weighted, edges, snap.Epoch); err != nil {
		return err
	}
	for _, ss := range snap.Series {
		values := make([]float64, len(ss.ValuesBits))
		for i, bits := range ss.ValuesBits {
			values[i] = math.Float64frombits(bits)
		}
		s.cache.put(snap.Graph+"|"+ss.Key, snap.Epoch, &cachedResult{
			Values:      values,
			Epoch:       snap.Epoch,
			Mode:        ss.Mode,
			Activations: ss.Activations,
			ComputeSecs: ss.ComputeSecs,
		})
	}
	return nil
}

// restore replaces the resident state with a snapshotted edge set at the
// given epoch. It rejects shape mismatches and rewinds (epoch below the
// current one).
func (r *residentGraph) restore(numVertices int, weighted bool, edges []graph.Edge, epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.g == nil {
		return r.readOnlyErr()
	}
	if numVertices != r.g.NumVertices() {
		return fmt.Errorf("serve: snapshot has %d vertices, resident graph %q has %d",
			numVertices, r.name, r.g.NumVertices())
	}
	if weighted != r.g.Weighted() {
		return fmt.Errorf("serve: snapshot weight mode %v, resident graph %q is %v",
			weighted, r.name, r.g.Weighted())
	}
	if epoch < r.epoch {
		return fmt.Errorf("%w: snapshot epoch %d, resident epoch %d", ErrSnapshotStale, epoch, r.epoch)
	}
	ng, err := graph.FromEdges(numVertices, edges, weighted)
	if err != nil {
		return fmt.Errorf("serve: rebuild from snapshot: %w", err)
	}
	r.g = ng
	r.epoch = epoch
	r.history = nil
	r.log = stream.NewLog(edges)
	return nil
}

// GraphNames lists the resident graphs in registration order — the set a
// distributed-tier worker advertises to its router.
func (s *Server) GraphNames() []string {
	return append([]string(nil), s.order...)
}

// GraphEpoch reports the named resident graph's current epoch.
func (s *Server) GraphEpoch(name string) (uint64, error) {
	rg, ok := s.graphs[name]
	if !ok {
		return 0, fmt.Errorf("serve: unknown graph %q", name)
	}
	_, epoch := rg.snapshot()
	return epoch, nil
}
