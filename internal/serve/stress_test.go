package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/conformance"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/sim"
)

// TestConcurrentQueriesAndMutations hammers one resident graph with
// parallel readers while a mutator streams edge batches in, asserting
// every response is epoch-consistent: the values served for epoch E match
// a from-scratch Solve on the graph exactly as it stood at epoch E. Run
// under -race this also shakes out registry/cache/singleflight races.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	base, err := gen.ErdosRenyi(300, 1500, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, func(c *Config) {
		c.Graphs = []GraphSpec{{Name: "g", Graph: base}}
	})
	_ = s

	// The mutator records the cumulative edge list as of each epoch so
	// readers can reconstruct the exact graph any response was solved on.
	var (
		oracleMu    sync.Mutex
		edgesAt     = map[uint64][]graph.Edge{0: base.Edges()}
		solvedAt    = map[uint64][]float64{}
		root        = uint32(7)
		alg         = algorithms.NewSSSP(graph.VertexID(root))
		numVertices = base.NumVertices()
	)
	// oracleValues lazily solves SSSP on the graph as of the given epoch.
	// The server bumps the epoch before the mutator goroutine records the
	// matching edge list, so a fast reader may need to wait for it.
	oracleValues := func(epoch uint64) ([]float64, error) {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		if vals, ok := solvedAt[epoch]; ok {
			return vals, nil
		}
		edges, ok := edgesAt[epoch]
		for deadline := time.Now().Add(5 * time.Second); !ok; edges, ok = edgesAt[epoch] {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("no edge record for epoch %d", epoch)
			}
			oracleMu.Unlock()
			time.Sleep(time.Millisecond)
			oracleMu.Lock()
		}
		g, err := graph.FromEdges(numVertices, edges, true)
		if err != nil {
			return nil, err
		}
		vals := algorithms.Solve(g, alg).Values
		solvedAt[epoch] = vals
		return vals, nil
	}

	const (
		readers      = 8
		queriesEach  = 30
		mutateEvery  = 25 * time.Millisecond
		mutationSpan = 12
	)
	stopMutator := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		rng := rand.New(rand.NewSource(77))
		cur := append([]graph.Edge(nil), base.Edges()...)
		for i := 0; i < mutationSpan; i++ {
			select {
			case <-stopMutator:
				return
			case <-time.After(mutateEvery):
			}
			var added []EdgeJSON
			for j := 0; j < 10; j++ {
				added = append(added, EdgeJSON{
					Src:    uint32(rng.Intn(numVertices)),
					Dst:    uint32(rng.Intn(numVertices)),
					Weight: float32(rng.Float64() + 0.05),
				})
			}
			code, body, _ := postJSON(t, ts.URL+"/v1/mutate", MutateRequest{Graph: "g", Edges: added})
			if code != 200 {
				t.Errorf("mutate: HTTP %d: %s", code, body)
				return
			}
			for _, e := range added {
				cur = append(cur, graph.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
			}
			oracleMu.Lock()
			edgesAt[uint64(i+1)] = append([]graph.Edge(nil), cur...)
			oracleMu.Unlock()
		}
	}()

	probes := make([]uint32, 16)
	for i := range probes {
		probes[i] = uint32(i * 17 % numVertices)
	}
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for q := 0; q < queriesEach; q++ {
				resp := doQuery(t, ts.URL, QueryRequest{
					Graph: "g", Algorithm: "sssp", Root: &root, Vertices: probes,
				})
				want, err := oracleValues(resp.Epoch)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for _, vv := range resp.Values {
					got := []float64{vv.Value}
					ref := []float64{want[vv.Vertex]}
					if err := conformance.CompareValues("stress", got, ref, 0); err != nil {
						t.Errorf("reader %d epoch %d vertex %d (mode %s): %v",
							r, resp.Epoch, vv.Vertex, resp.Mode, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stopMutator)
	mutWG.Wait()

	m := s.Metrics()
	t.Logf("stress: %d requests, %d hits, %d cold, %d warm, %d coalesced",
		m.Counter("query_requests"), m.Counter("query_cache_hits"),
		m.Counter("query_cold_solves"), m.Counter("query_warm_starts"),
		m.Counter("query_coalesced"))
	if m.Counter("query_errors") != 0 {
		t.Errorf("query_errors = %d, want 0", m.Counter("query_errors"))
	}
}

// TestSolveCtxCancel pins the satellite contract: the native solver path
// observes context cancellation and returns sim.ErrCanceled.
func TestSolveCtxCancel(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 20000, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = algorithms.SolveCtx(ctx, g, algorithms.NewPageRankDelta())
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("SolveCtx with canceled context: err = %v, want sim.ErrCanceled", err)
	}
	// And the uncanceled path still converges.
	res, err := algorithms.SolveCtx(context.Background(), g, algorithms.NewPageRankDelta())
	if err != nil || res == nil {
		t.Fatalf("SolveCtx with live context: %v", err)
	}
}
