package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/conformance"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// testGraph builds the small weighted graph the suite serves.
func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := gen.ErdosRenyi(200, 900, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newTestServer builds a Server over testGraph with overrides applied and
// an httptest frontend. The httptest server closes before the pool drains
// so no handler can hit a closed jobs channel.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Graphs:         []GraphSpec{{Name: "g", Graph: testGraph(t)}},
		DefaultTimeout: 5 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

func doQuery(t *testing.T, url string, req QueryRequest) *QueryResponse {
	t.Helper()
	code, body, _ := postJSON(t, url+"/v1/query", req)
	if code != http.StatusOK {
		t.Fatalf("query: HTTP %d: %s", code, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("query response: %v", err)
	}
	return &out
}

func vertexRange(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

// TestQueryMatchesOracle checks served values against the reference
// solver for a sum-based and a monotone algorithm.
func TestQueryMatchesOracle(t *testing.T) {
	s, ts := newTestServer(t, nil)
	g, _ := s.graphs["g"].snapshot()
	all := vertexRange(g.NumVertices())

	for _, tc := range []struct {
		req QueryRequest
		alg algorithms.Algorithm
	}{
		{QueryRequest{Graph: "g", Algorithm: "pr", Vertices: all}, algorithms.NewPageRankDelta()},
		{QueryRequest{Graph: "g", Algorithm: "sssp", Root: ptr(uint32(3)), Vertices: all}, algorithms.NewSSSP(3)},
	} {
		resp := doQuery(t, ts.URL, tc.req)
		if resp.Mode != "cold" || resp.Cached {
			t.Errorf("%s: mode=%q cached=%v, want cold/false", tc.req.Algorithm, resp.Mode, resp.Cached)
		}
		want := algorithms.Solve(g, tc.alg)
		got := valuesOf(resp, g.NumVertices())
		tol := conformance.Tolerance(tc.alg, g)
		if err := conformance.CompareValues("serve/"+tc.req.Algorithm, got, want.Values, tol); err != nil {
			t.Error(err)
		}
	}
}

func ptr[T any](v T) *T { return &v }

func valuesOf(resp *QueryResponse, n int) []float64 {
	out := make([]float64, n)
	for _, vv := range resp.Values {
		out[vv.Vertex] = vv.Value
	}
	return out
}

// TestCacheHit pins the versioned-cache behaviour: a repeated query is a
// hit, a parameter change is a miss, and the counters record both.
func TestCacheHit(t *testing.T) {
	s, ts := newTestServer(t, nil)
	req := QueryRequest{Graph: "g", Algorithm: "pr"}

	first := doQuery(t, ts.URL, req)
	if first.Cached {
		t.Fatal("first query served from an empty cache")
	}
	second := doQuery(t, ts.URL, req)
	if !second.Cached || second.Mode != "cache" {
		t.Fatalf("second query: cached=%v mode=%q, want true/cache", second.Cached, second.Mode)
	}
	if first.Sum != second.Sum {
		t.Fatalf("cache returned different values: %g vs %g", first.Sum, second.Sum)
	}
	// Different parameters form a different cache key.
	third := doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "pr", Alpha: ptr(0.5)})
	if third.Cached {
		t.Fatal("parameter change must not hit the cache")
	}
	m := s.Metrics()
	if hits, misses := m.Counter("query_cache_hits"), m.Counter("query_cache_misses"); hits != 1 || misses != 2 {
		t.Fatalf("counters: hits=%d misses=%d, want 1/2", hits, misses)
	}
}

// stallGate holds pooled computations open until released, making
// saturation, coalescing, deadline, and drain behaviour deterministic.
type stallGate struct {
	entered chan struct{}
	release chan struct{}
}

func newStallGate(s *Server) *stallGate {
	g := &stallGate{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	s.testComputeStall = func(ctx context.Context) {
		g.entered <- struct{}{}
		select {
		case <-g.release:
		case <-ctx.Done():
		}
	}
	return g
}

// TestSingleflightCoalesce fires identical concurrent misses and asserts
// exactly one computation ran, observable through the coalesced counter.
func TestSingleflightCoalesce(t *testing.T) {
	s, ts := newTestServer(t, nil)
	gate := newStallGate(s)
	req := QueryRequest{Graph: "g", Algorithm: "pr"}

	const clients = 5
	var wg sync.WaitGroup
	results := make([]*QueryResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = doQuery(t, ts.URL, req)
		}(i)
	}
	// One leader reaches the stall; wait for every follower to join it.
	<-gate.entered
	waitCounter(t, s.Metrics(), "query_coalesced", clients-1)
	close(gate.release)
	wg.Wait()

	m := s.Metrics()
	if cold := m.Counter("query_cold_solves"); cold != 1 {
		t.Errorf("cold solves = %d, want 1 (singleflight)", cold)
	}
	if co := m.Counter("query_coalesced"); co != clients-1 {
		t.Errorf("coalesced = %d, want %d", co, clients-1)
	}
	for i, r := range results {
		if r.Sum != results[0].Sum {
			t.Errorf("client %d saw different values", i)
		}
	}
}

func waitCounter(t *testing.T, m *Metrics, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Counter(name) < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s = %d, want %d (timeout)", name, m.Counter(name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionControl saturates a 1-worker/1-slot pool and asserts the
// overflow request is rejected with 429 + Retry-After instead of queuing
// or hanging, and that the server recovers afterwards.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
	})
	gate := newStallGate(s)

	var wg sync.WaitGroup
	startQuery := func(root uint32) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{
				Graph: "g", Algorithm: "sssp", Root: &root,
			})
			if code != http.StatusOK {
				t.Errorf("stalled query got HTTP %d, want 200", code)
			}
		}()
	}
	startQuery(1) // occupies the worker
	<-gate.entered
	startQuery(2) // occupies the queue slot
	waitQueueLen(t, s, 1)

	// The pool is saturated: one executing, one queued. Next is bounced.
	code, body, hdr := postJSON(t, ts.URL+"/v1/query", QueryRequest{
		Graph: "g", Algorithm: "sssp", Root: ptr(uint32(3)),
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated query: HTTP %d (%s), want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if got := s.Metrics().Counter("query_rejected"); got != 1 {
		t.Errorf("query_rejected = %d, want 1", got)
	}

	close(gate.release)
	wg.Wait()
	// Recovered: the previously rejected query now succeeds.
	resp := doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "sssp", Root: ptr(uint32(3))})
	if resp.Mode != "cold" {
		t.Errorf("post-saturation query mode = %q, want cold", resp.Mode)
	}
}

func waitQueueLen(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.jobs) < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue length %d, want %d (timeout)", len(s.jobs), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlineExceeded pins deadline propagation: the request times out
// with 504, and the abandoned computation is canceled through its context
// rather than running to completion.
func TestDeadlineExceeded(t *testing.T) {
	s, ts := newTestServer(t, nil)
	newStallGate(s) // never released: compute blocks until its ctx dies

	code, body, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{
		Graph: "g", Algorithm: "pr", TimeoutMS: 50,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d (%s), want 504", code, body)
	}
	m := s.Metrics()
	if got := m.Counter("query_deadline_exceeded"); got != 1 {
		t.Errorf("query_deadline_exceeded = %d, want 1", got)
	}
	// The last waiter leaving cancels the compute context; the stalled
	// computation unblocks into SolveCtx, which observes the canceled
	// context and aborts.
	waitCounter(t, m, "compute_canceled", 1)
	if got := m.Counter("query_cold_solves"); got != 0 {
		t.Errorf("canceled computation still counted as a solve (%d)", got)
	}
}

// TestDrainOnShutdown starts a real listener, parks a request in compute,
// initiates Shutdown, and asserts the request completes with 200 before
// Shutdown returns.
func TestDrainOnShutdown(t *testing.T) {
	s, err := New(Config{Graphs: []GraphSpec{{Name: "g", Graph: testGraph(t)}}})
	if err != nil {
		t.Fatal(err)
	}
	gate := newStallGate(s)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr.String()

	type result struct {
		code int
		body []byte
	}
	reqDone := make(chan result, 1)
	go func() {
		raw, _ := json.Marshal(QueryRequest{Graph: "g", Algorithm: "pr"})
		resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(raw))
		if err != nil {
			reqDone <- result{code: -1, body: []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		reqDone <- result{code: resp.StatusCode, body: body}
	}()
	<-gate.entered // the request is parked in compute

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight request, not race it.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(gate.release)

	r := <-reqDone
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: HTTP %d (%s), want 200", r.code, r.body)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// TestMutateThenQueryWarmStarts covers the streaming path: a converged
// query, a mutation batch, and a re-query that warm-starts from the prior
// fixed point yet matches a from-scratch solve on the mutated graph.
func TestMutateThenQueryWarmStarts(t *testing.T) {
	s, ts := newTestServer(t, nil)
	g, _ := s.graphs["g"].snapshot()
	all := vertexRange(g.NumVertices())

	cold := doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "pr", Vertices: all})
	if cold.Epoch != 0 || cold.Mode != "cold" {
		t.Fatalf("first query: epoch=%d mode=%q", cold.Epoch, cold.Mode)
	}

	added := []EdgeJSON{
		{Src: 0, Dst: 17, Weight: 0.5}, {Src: 42, Dst: 3, Weight: 1.5},
		{Src: 17, Dst: 42, Weight: 0.25}, {Src: 199, Dst: 0, Weight: 2},
	}
	code, body, _ := postJSON(t, ts.URL+"/v1/mutate", MutateRequest{Graph: "g", Edges: added})
	if code != http.StatusOK {
		t.Fatalf("mutate: HTTP %d: %s", code, body)
	}
	var mut MutateResponse
	if err := json.Unmarshal(body, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.Epoch != 1 || mut.NumEdges != g.NumEdges()+len(added) {
		t.Fatalf("mutate response: epoch=%d edges=%d", mut.Epoch, mut.NumEdges)
	}

	warm := doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "pr", Vertices: all})
	if warm.Epoch != 1 {
		t.Fatalf("post-mutate query epoch = %d, want 1", warm.Epoch)
	}
	if warm.Mode != "warm" {
		t.Fatalf("post-mutate query mode = %q, want warm", warm.Mode)
	}
	if got := s.Metrics().Counter("query_warm_starts"); got != 1 {
		t.Errorf("query_warm_starts = %d, want 1", got)
	}

	// Oracle: from-scratch solve on the mutated graph.
	edges := g.Edges()
	for _, e := range added {
		edges = append(edges, graph.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
	}
	ng, err := graph.FromEdges(g.NumVertices(), edges, true)
	if err != nil {
		t.Fatal(err)
	}
	alg := algorithms.NewPageRankDelta()
	want := algorithms.Solve(ng, alg)
	got := valuesOf(warm, ng.NumVertices())
	if err := conformance.CompareValues("warm-vs-cold", got, want.Values, conformance.Tolerance(alg, ng)); err != nil {
		t.Error(err)
	}
}

// TestSimulatedEngines runs the accelerator and Graphicionado backends
// through the serving path on a smaller graph and checks both against the
// native solver within the conformance tolerance.
func TestSimulatedEngines(t *testing.T) {
	small, err := gen.ErdosRenyi(64, 256, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, func(c *Config) {
		c.Graphs = []GraphSpec{{Name: "g", Graph: small}}
		c.DefaultTimeout = 60 * time.Second
	})
	_ = s
	alg := algorithms.NewPageRankDelta()
	want := algorithms.Solve(small, alg)
	tol := conformance.Tolerance(alg, small)
	for _, engine := range []string{"accel", "graphicionado"} {
		resp := doQuery(t, ts.URL, QueryRequest{
			Graph: "g", Algorithm: "pr", Engine: engine, Vertices: vertexRange(64),
		})
		if resp.Engine != engine {
			t.Errorf("engine echo = %q, want %q", resp.Engine, engine)
		}
		got := valuesOf(resp, 64)
		if err := conformance.CompareValues("serve/"+engine, got, want.Values, tol); err != nil {
			t.Error(err)
		}
	}
}

// TestParallelAndLigraEngines serves the same query through the two
// registry engines that became reachable with the engine-registry refactor —
// the sharded parallel native solver and the Ligra-style baseline — and
// checks both against the serial solver within the conformance tolerance.
func TestParallelAndLigraEngines(t *testing.T) {
	small, err := gen.ErdosRenyi(96, 512, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, func(c *Config) {
		c.Graphs = []GraphSpec{{Name: "g", Graph: small}}
		c.DefaultTimeout = 60 * time.Second
	})
	_ = s
	alg := algorithms.NewPageRankDelta()
	want := algorithms.Solve(small, alg)
	tol := conformance.Tolerance(alg, small)
	for _, engine := range []string{"psolve", "ligra"} {
		resp := doQuery(t, ts.URL, QueryRequest{
			Graph: "g", Algorithm: "pr", Engine: engine, Vertices: vertexRange(96),
		})
		if resp.Engine != engine {
			t.Errorf("engine echo = %q, want %q", resp.Engine, engine)
		}
		if resp.Mode != "cold" {
			t.Errorf("%s: mode = %q, want cold", engine, resp.Mode)
		}
		got := valuesOf(resp, 96)
		if err := conformance.CompareValues("serve/"+engine, got, want.Values, tol); err != nil {
			t.Error(err)
		}
	}
}

// TestBadRequests pins the error surface: status codes and the counter.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"unknown graph", "/v1/query", QueryRequest{Graph: "nope", Algorithm: "pr"}, http.StatusNotFound},
		{"missing algorithm", "/v1/query", QueryRequest{Graph: "g"}, http.StatusBadRequest},
		{"unknown algorithm", "/v1/query", QueryRequest{Graph: "g", Algorithm: "magic"}, http.StatusBadRequest},
		{"root out of range", "/v1/query", QueryRequest{Graph: "g", Algorithm: "sssp", Root: ptr(uint32(4000))}, http.StatusBadRequest},
		{"unknown engine", "/v1/query", QueryRequest{Graph: "g", Algorithm: "pr", Engine: "ligra2"}, http.StatusBadRequest},
		{"bad alpha", "/v1/query", QueryRequest{Graph: "g", Algorithm: "pr", Alpha: ptr(1.5)}, http.StatusBadRequest},
		{"mutate unknown graph", "/v1/mutate", MutateRequest{Graph: "nope", Edges: []EdgeJSON{{Src: 0, Dst: 1}}}, http.StatusNotFound},
		{"mutate empty batch", "/v1/mutate", MutateRequest{Graph: "g"}, http.StatusBadRequest},
		{"mutate out-of-range edge", "/v1/mutate", MutateRequest{Graph: "g", Edges: []EdgeJSON{{Src: 0, Dst: 9999}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body, _ := postJSON(t, ts.URL+tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s: HTTP %d (%s), want %d", tc.name, code, body, tc.want)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not structured", tc.name, body)
		}
	}
	// A rejected batch must not bump the epoch.
	if _, epoch := s.graphs["g"].snapshot(); epoch != 0 {
		t.Errorf("failed mutate bumped epoch to %d", epoch)
	}
}

// TestInventoryAndHealth covers /v1/graphs, /healthz, and /metrics.
func TestInventoryAndHealth(t *testing.T) {
	s, ts := newTestServer(t, nil)
	g, _ := s.graphs["g"].snapshot()

	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "g" || infos[0].NumVertices != g.NumVertices() {
		t.Fatalf("inventory: %+v", infos)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hz)
	}
	hz.Body.Close()

	doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "cc"})
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	text := string(raw)
	for _, name := range append(append([]string{}, serveCounters...), serveHistograms...) {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %q", name)
		}
	}
	if !strings.Contains(text, "query_requests") {
		t.Errorf("metrics text: %s", text)
	}
}

// TestVertexValueJSONRoundTrip pins the non-finite value encoding.
func TestVertexValueJSONRoundTrip(t *testing.T) {
	for _, v := range []VertexValue{
		{Vertex: 1, Value: 3.5},
		{Vertex: 2, Value: inf(1)},
		{Vertex: 3, Value: inf(-1)},
	} {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %+v: %v", v, err)
		}
		var back VertexValue
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if back != v {
			t.Errorf("round trip %+v → %s → %+v", v, raw, back)
		}
	}
}

func inf(sign int) float64 {
	return float64(sign) * 1e308 * 10 // overflows to ±Inf
}

// TestParseGraphArg covers the CLI graph-spec syntax.
func TestParseGraphArg(t *testing.T) {
	for _, tc := range []struct {
		in        string
		name, src string
		wantErr   bool
	}{
		{in: "wg=WG:tiny", name: "wg", src: "WG:tiny"},
		{in: "WG:tiny", name: "wg", src: "WG:tiny"},
		{in: "web=/data/crawl.el", name: "web", src: "/data/crawl.el"},
		{in: "x=", wantErr: true},
	} {
		spec, err := ParseGraphArg(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%q: expected error", tc.in)
			}
			continue
		}
		if err != nil || spec.Name != tc.name || spec.Source != tc.src {
			t.Errorf("%q → %+v, %v; want %s=%s", tc.in, spec, err, tc.name, tc.src)
		}
	}
}

// TestLoadDatasetSource checks the "ABBREV:tier" source path through the
// shared gen cache.
func TestLoadDatasetSource(t *testing.T) {
	cache := gen.NewCache()
	s, err := New(Config{
		Graphs: []GraphSpec{{Name: "wg", Source: "WG:tiny"}},
		Cache:  cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	g, _ := s.graphs["wg"].snapshot()
	if g.NumVertices() != 1<<12 {
		t.Errorf("WG:tiny has %d vertices, want %d", g.NumVertices(), 1<<12)
	}
	if cache.Len() == 0 {
		t.Error("dataset load bypassed the gen cache")
	}
}

// TestWarmPathWindow checks warm-start bookkeeping across several
// mutations: a fixed point cached two epochs back still warm-starts, and
// one beyond the history window falls back to a cold solve.
func TestWarmPathWindow(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MutationHistory = 2 })
	mutate := func(src, dst uint32) {
		code, body, _ := postJSON(t, ts.URL+"/v1/mutate", MutateRequest{
			Graph: "g", Edges: []EdgeJSON{{Src: src, Dst: dst, Weight: 1}},
		})
		if code != http.StatusOK {
			t.Fatalf("mutate: HTTP %d: %s", code, body)
		}
	}
	doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "cc"}) // cold at epoch 0
	mutate(0, 1)
	mutate(1, 2) // epoch 2; history holds both batches
	r := doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "cc"})
	if r.Mode != "warm" {
		t.Errorf("query across 2-batch gap: mode %q, want warm (history=2)", r.Mode)
	}
	mutate(2, 3)
	mutate(3, 4)
	mutate(4, 5) // epoch 5; the epoch-2 fixed point is out of the window
	r = doQuery(t, ts.URL, QueryRequest{Graph: "g", Algorithm: "cc"})
	if r.Mode != "cold" {
		t.Errorf("query past history window: mode %q, want cold", r.Mode)
	}
}
