package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/conformance"
)

// TestSnapshotRoundTrip pins the snapshot-shipping contract: a snapshot
// exported after a cold solve, imported into a fresh server over the same
// graph configuration, makes the identical query a cache hit — no cold
// re-solve — with values matching the original within the conformance
// tolerance.
func TestSnapshotRoundTrip(t *testing.T) {
	s1, ts1 := newTestServer(t, nil)
	g, _ := s1.graphs["g"].snapshot()
	all := vertexRange(g.NumVertices())

	// Advance the epoch so the snapshot carries a non-zero one, then
	// solve at that epoch.
	code, body, _ := postJSON(t, ts1.URL+"/v1/mutate", MutateRequest{
		Graph: "g", Edges: []EdgeJSON{{Src: 1, Dst: 190, Weight: 0.5}},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate: HTTP %d: %s", code, body)
	}
	orig := doQuery(t, ts1.URL, QueryRequest{Graph: "g", Algorithm: "pr", Vertices: all})

	snap, err := s1.ExportSnapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 || len(snap.Series) == 0 {
		t.Fatalf("snapshot epoch=%d series=%d, want epoch 1 with cached series", snap.Epoch, len(snap.Series))
	}

	// The snapshot must survive its wire encoding (JSON, raw float bits).
	wire, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, nil)
	if err := s2.ImportSnapshot(&decoded); err != nil {
		t.Fatal(err)
	}
	if epoch, _ := s2.GraphEpoch("g"); epoch != snap.Epoch {
		t.Fatalf("restored epoch %d, want %d", epoch, snap.Epoch)
	}

	got := doQuery(t, ts2.URL, QueryRequest{Graph: "g", Algorithm: "pr", Vertices: all})
	if !got.Cached || got.Mode != "cache" {
		t.Fatalf("restored query cached=%v mode=%q, want cache hit", got.Cached, got.Mode)
	}
	if n := s2.Metrics().Counter("query_cold_solves"); n != 0 {
		t.Fatalf("restored server cold-solved %d times, want 0", n)
	}
	g2, _ := s2.graphs["g"].snapshot()
	alg := algorithms.NewPageRankDelta()
	tol := conformance.Tolerance(alg, g2)
	if err := conformance.CompareValues("snapshot-restore",
		valuesOf(got, g2.NumVertices()), valuesOf(orig, g.NumVertices()), tol); err != nil {
		t.Error(err)
	}
}

// TestSnapshotNonFiniteValues checks that ±Inf fixed points (unreachable
// vertices under SSSP) survive the raw-bits encoding bit-exactly.
func TestSnapshotNonFiniteValues(t *testing.T) {
	s1, ts1 := newTestServer(t, nil)
	g, _ := s1.graphs["g"].snapshot()
	all := vertexRange(g.NumVertices())
	orig := doQuery(t, ts1.URL, QueryRequest{Graph: "g", Algorithm: "sssp", Root: ptr(uint32(3)), Vertices: all})
	var infs int
	for _, vv := range orig.Values {
		if math.IsInf(vv.Value, 1) {
			infs++
		}
	}
	if infs == 0 {
		t.Skip("test graph has no unreachable vertices from root 3")
	}

	snap, err := s1.ExportSnapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, nil)
	if err := s2.ImportSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got := doQuery(t, ts2.URL, QueryRequest{Graph: "g", Algorithm: "sssp", Root: ptr(uint32(3)), Vertices: all})
	if !got.Cached {
		t.Fatal("restored sssp query missed the cache")
	}
	for i, vv := range got.Values {
		if orig.Values[i].Value != vv.Value && !(math.IsNaN(orig.Values[i].Value) && math.IsNaN(vv.Value)) {
			t.Fatalf("vertex %d: restored %g, want %g (bit-exact)", vv.Vertex, vv.Value, orig.Values[i].Value)
		}
	}
}

// TestSnapshotRejections pins the import guardrails: version and shape
// mismatches fail loudly, and a snapshot older than the resident epoch is
// ErrSnapshotStale.
func TestSnapshotRejections(t *testing.T) {
	s1, ts1 := newTestServer(t, nil)
	doQuery(t, ts1.URL, QueryRequest{Graph: "g", Algorithm: "pr", Top: 1})
	snap, err := s1.ExportSnapshot("g")
	if err != nil {
		t.Fatal(err)
	}

	bad := *snap
	bad.Version = SnapshotVersion + 1
	if err := s1.ImportSnapshot(&bad); err == nil {
		t.Error("wrong-version snapshot accepted")
	}
	bad = *snap
	bad.Graph = "nope"
	if err := s1.ImportSnapshot(&bad); err == nil {
		t.Error("snapshot for non-resident graph accepted")
	}
	bad = *snap
	bad.NumVertices++
	if err := s1.ImportSnapshot(&bad); err == nil {
		t.Error("vertex-count mismatch accepted")
	}

	// Advance the resident epoch past the snapshot's; the old snapshot
	// must be refused as stale.
	code, body, _ := postJSON(t, ts1.URL+"/v1/mutate", MutateRequest{
		Graph: "g", Edges: []EdgeJSON{{Src: 0, Dst: 199, Weight: 0.9}},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate: HTTP %d: %s", code, body)
	}
	if err := s1.ImportSnapshot(snap); !errors.Is(err, ErrSnapshotStale) {
		t.Errorf("stale snapshot: err=%v, want ErrSnapshotStale", err)
	}

	if _, err := s1.ExportSnapshot("nope"); err == nil {
		t.Error("export of unknown graph succeeded")
	}
}
