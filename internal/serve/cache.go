package serve

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
)

// cachedResult is one converged computation, published read-only: the
// Values slice is never written after insertion, so handlers and
// warm-start seeding may read it concurrently without copying.
type cachedResult struct {
	Values      []float64
	Epoch       uint64
	Mode        string // "cold" or "warm"
	Activations int64
	ComputeSecs float64
}

// seriesKey identifies a computation independent of graph version:
// graph name + engine + canonical algorithm key. The full cache key
// appends the epoch, so mutations version the cache instead of
// invalidating it — older entries stay useful as warm-start sources.
func seriesKey(graphName, engine, algKey string) string {
	return graphName + "|" + engine + "|" + algKey
}

func fullKey(series string, epoch uint64) string {
	return fmt.Sprintf("%s@%d", series, epoch)
}

type lruEntry struct {
	key    string
	series string
	epoch  uint64
	res    *cachedResult
}

// resultCache is a bounded LRU of cachedResults, with a per-series index
// of the newest cached epoch for warm-start lookups.
type resultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	latest  map[string]uint64 // series → newest epoch with a live entry
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		latest:  make(map[string]uint64),
	}
}

func (c *resultCache) get(series string, epoch uint64) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fullKey(series, epoch)]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *resultCache) put(series string, epoch uint64, res *cachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := fullKey(series, epoch)
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&lruEntry{key: key, series: series, epoch: epoch, res: res})
	c.entries[key] = el
	if cur, ok := c.latest[series]; !ok || epoch > cur {
		c.latest[series] = epoch
	}
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*lruEntry)
		delete(c.entries, e.key)
		if c.latest[e.series] == e.epoch {
			// The newest entry for this series just left; warm starts for
			// it fall back to cold solves until a query repopulates it.
			delete(c.latest, e.series)
		}
	}
}

// latestBefore returns the newest cached result for series with an epoch
// strictly below the given one — the warm-start source.
func (c *resultCache) latestBefore(series string, epoch uint64) (*cachedResult, uint64, bool) {
	c.mu.Lock()
	e, ok := c.latest[series]
	c.mu.Unlock()
	if !ok || e >= epoch {
		return nil, 0, false
	}
	res, ok := c.get(series, e)
	if !ok {
		return nil, 0, false
	}
	return res, e, true
}

// exportSeries returns every cached result whose series starts with
// prefix (a "graphName|" boundary) and whose epoch matches exactly,
// keyed by full series — the per-graph slice a snapshot captures.
func (c *resultCache) exportSeries(prefix string, epoch uint64) map[string]*cachedResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*cachedResult)
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		if e.epoch == epoch && strings.HasPrefix(e.series, prefix) {
			out[e.series] = e.res
		}
	}
	return out
}

// len reports live entries (tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flight is one in-progress computation that identical concurrent misses
// coalesce onto. The leader computes under a context that outlives any
// single request but is canceled once every waiter has abandoned the
// result — request deadlines propagate to the engines without letting one
// impatient client kill work others still want.
type flight struct {
	done chan struct{} // closed when res/err are set
	res  *cachedResult
	err  error

	mu      sync.Mutex
	waiters int
	cancel  context.CancelFunc
}

// join registers one more waiter.
func (f *flight) join() {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
}

// leave unregisters a waiter; the last one out cancels the computation if
// it has not finished.
func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	f.mu.Unlock()
	if last {
		select {
		case <-f.done:
		default:
			f.cancel()
		}
	}
}
