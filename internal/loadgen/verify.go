package loadgen

// Replica divergence check: after a load burst against the router, query
// every replica of the graph *directly* (bypassing the router) and verify
// they agree. Two layers of agreement are checked:
//
//  1. State: each replica's (epoch, state digest) from GET
//     /internal/digest must match, polled until they converge or the
//     wait budget expires — anti-entropy repairs are asynchronous, so a
//     just-partitioned replica is allowed a grace window to catch up.
//  2. Answers: the run's query, issued to each replica, must return the
//     same epoch and (within float tolerance) the same value sum —
//     replicas reach the fixed point along different paths (incremental
//     warm starts vs. snapshot restores vs. cold solves), so they agree
//     to the solver's convergence tolerance, not bit-exactly.
//
// The CI chaos-smoke stage runs this after a burst with an induced
// partition; any mismatch fails the build.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	neturl "net/url"
	"strings"
	"time"

	"graphpulse/internal/serve"
)

// verifyPollInterval paces the digest convergence poll.
const verifyPollInterval = 200 * time.Millisecond

// sumTolerance is the relative tolerance when comparing per-replica value
// sums. Replicas reach the fixed point along different paths — cold
// solves, epoch-by-epoch warm restarts, snapshot restores — and each path
// stops at the solver's per-vertex convergence slack, which accumulates
// across the whole vertex set: percent-level sum differences between a
// cold-solved and a long warm-started replica are normal (observed ~2%
// on WG-class graphs after ~100 incremental epochs). Real divergence — a
// missed mutation — is caught exactly by the digest layer above, so this
// bound only needs to separate solver slack from grossly wrong answers.
const sumTolerance = 5e-2

// ReplicaState is one replica's view of the graph at verification time.
type ReplicaState struct {
	URL    string  `json:"url"`
	Epoch  uint64  `json:"epoch"`
	Digest string  `json:"digest"`
	Sum    float64 `json:"sum"`
	Mode   string  `json:"mode,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// VerifyReport is the outcome of one VerifyReplicas call.
type VerifyReport struct {
	Graph string `json:"graph"`
	// Converged reports whether every replica agreed on (epoch, digest)
	// before the wait budget expired.
	Converged bool           `json:"converged"`
	Waited    time.Duration  `json:"-"`
	Replicas  []ReplicaState `json:"replicas"`
	// Mismatches lists every disagreement found, one human-readable line
	// each; empty means the replica set is consistent.
	Mismatches []string `json:"mismatches,omitempty"`
}

// OK reports whether the replica set passed: digests converged and no
// per-replica answer disagreed.
func (r *VerifyReport) OK() bool {
	return r.Converged && len(r.Mismatches) == 0
}

// VerifyReplicas checks that every listed replica of cfg.Graph agrees. It
// polls each replica's /internal/digest until all (epoch, digest) pairs
// match or wait expires, then issues cfg's query directly to each replica
// and compares epochs and value sums. cfg.BaseURL is ignored; the replica
// URLs are contacted directly.
func VerifyReplicas(ctx context.Context, cfg Config, replicas []string, wait time.Duration) (*VerifyReport, error) {
	cfg = cfg.withDefaults()
	if len(replicas) == 0 {
		return nil, fmt.Errorf("loadgen: verify: no replicas given")
	}
	if wait <= 0 {
		wait = 10 * time.Second
	}
	rep := &VerifyReport{Graph: cfg.Graph}

	// Phase 1: poll digests until they converge or the budget expires.
	deadline := time.Now().Add(wait)
	start := time.Now()
	var states []ReplicaState
	for {
		states = fetchDigests(ctx, cfg, replicas)
		if digestsConverged(states) {
			rep.Converged = true
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(verifyPollInterval):
		}
	}
	rep.Waited = time.Since(start)
	for i := range states {
		if states[i].Err != "" {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("%s: digest fetch failed: %s", states[i].URL, states[i].Err))
		}
	}
	if !rep.Converged {
		rep.Mismatches = append(rep.Mismatches, describeDivergence(states)...)
	}

	// Phase 2: ask each replica the run's query directly and compare.
	for i := range states {
		st := &states[i]
		if st.Err != "" {
			continue
		}
		qr, err := queryReplica(ctx, cfg, st.URL)
		if err != nil {
			st.Err = err.Error()
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("%s: direct query failed: %v", st.URL, err))
			continue
		}
		st.Sum = qr.Sum
		st.Mode = qr.Mode
		if qr.Epoch != st.Epoch {
			// The replica moved between digest and query; not divergence,
			// but record the fresher epoch for the cross-replica compare.
			st.Epoch = qr.Epoch
		}
	}
	rep.Replicas = states
	rep.Mismatches = append(rep.Mismatches, compareAnswers(states)...)
	return rep, nil
}

// fetchDigests asks every replica for the graph's (epoch, digest) pair.
func fetchDigests(ctx context.Context, cfg Config, replicas []string) []ReplicaState {
	states := make([]ReplicaState, len(replicas))
	for i, u := range replicas {
		states[i] = ReplicaState{URL: u}
		info, err := fetchDigest(ctx, cfg, u)
		if err != nil {
			states[i].Err = err.Error()
			continue
		}
		states[i].Epoch = info.Epoch
		states[i].Digest = info.Digest
	}
	return states
}

// fetchDigest gets one replica's serve.DigestInfo for cfg.Graph.
func fetchDigest(ctx context.Context, cfg Config, replica string) (serve.DigestInfo, error) {
	u := strings.TrimRight(replica, "/") + "/internal/digest?graph=" + neturl.QueryEscape(cfg.Graph)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return serve.DigestInfo{}, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return serve.DigestInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return serve.DigestInfo{}, fmt.Errorf("digest status %d", resp.StatusCode)
	}
	var info serve.DigestInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return serve.DigestInfo{}, err
	}
	return info, nil
}

// digestsConverged reports whether every successfully fetched state agrees
// on (epoch, digest). At least two must have succeeded; a lone reachable
// replica trivially "agrees" only with itself, which is still reported as
// converged — the unreachable ones surface as mismatches instead.
func digestsConverged(states []ReplicaState) bool {
	first := -1
	for i := range states {
		if states[i].Err != "" {
			return false
		}
		if first < 0 {
			first = i
			continue
		}
		if states[i].Epoch != states[first].Epoch || states[i].Digest != states[first].Digest {
			return false
		}
	}
	return first >= 0
}

// describeDivergence renders one mismatch line per replica disagreeing
// with the first reachable one.
func describeDivergence(states []ReplicaState) []string {
	first := -1
	for i := range states {
		if states[i].Err == "" {
			first = i
			break
		}
	}
	if first < 0 {
		return []string{"no replica reachable for digest comparison"}
	}
	var out []string
	ref := states[first]
	for _, st := range states {
		if st.Err != "" || st.URL == ref.URL {
			continue
		}
		if st.Epoch != ref.Epoch || st.Digest != ref.Digest {
			out = append(out, fmt.Sprintf("%s: digest diverged: epoch %d digest %s (want epoch %d digest %s from %s)",
				st.URL, st.Epoch, st.Digest, ref.Epoch, ref.Digest, ref.URL))
		}
	}
	return out
}

// queryReplica issues cfg's query straight at one replica.
func queryReplica(ctx context.Context, cfg Config, replica string) (*serve.QueryResponse, error) {
	root := cfg.Root
	body, err := json.Marshal(serve.QueryRequest{
		Graph:     cfg.Graph,
		Algorithm: cfg.Algorithm,
		Root:      &root,
		Engine:    cfg.Engine,
		Top:       1,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(replica, "/")+"/v1/query", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("query status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var qr serve.QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		return nil, err
	}
	return &qr, nil
}

// compareAnswers checks per-replica query answers against the first
// reachable replica: equal epochs, value sums within sumTolerance.
func compareAnswers(states []ReplicaState) []string {
	first := -1
	for i := range states {
		if states[i].Err == "" {
			first = i
			break
		}
	}
	if first < 0 {
		return nil
	}
	var out []string
	ref := states[first]
	for _, st := range states {
		if st.Err != "" || st.URL == ref.URL {
			continue
		}
		if st.Epoch != ref.Epoch {
			out = append(out, fmt.Sprintf("%s: answer epoch %d != %d from %s",
				st.URL, st.Epoch, ref.Epoch, ref.URL))
			continue
		}
		if !sumsClose(st.Sum, ref.Sum) {
			out = append(out, fmt.Sprintf("%s: answer sum %g != %g from %s",
				st.URL, st.Sum, ref.Sum, ref.URL))
		}
	}
	return out
}

// sumsClose compares two value sums with relative tolerance (absolute
// near zero). Non-finite sums must match exactly in kind.
func sumsClose(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= sumTolerance*scale
}
