package loadgen

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphpulse/internal/graph/gen"
	"graphpulse/internal/serve"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output diverges from golden\n-- got --\n%s-- want --\n%s", name, got, want)
	}
}

// fixedStats builds a deterministic Stats so the summary renderings can be
// pinned byte-for-byte.
func fixedStats() *Stats {
	queryLat := make([]int64, 100)
	for i := range queryLat {
		queryLat[i] = int64(100 + i*10) // 100..1090 µs
	}
	return &Stats{
		Elapsed: 2 * time.Second,
		Query: KindStats{
			Count:       103,
			Errors:      1,
			Rejected:    1,
			Deadlines:   1,
			LatenciesUS: queryLat,
		},
		Mutate: KindStats{
			Count:       4,
			LatenciesUS: []int64{1500, 2500, 3500, 2_000_000},
		},
		CacheHits: 90,
		Dropped:   7,
	}
}

// TestSummaryCSVGolden pins the CSV schema and formatting the CI smoke
// stage greps.
func TestSummaryCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedStats().Summarize().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summary_csv", buf.Bytes())
}

// TestSummaryTextGolden pins the human report, including unit scaling
// (µs/ms/s), the dropped-arrivals note, and the error tail.
func TestSummaryTextGolden(t *testing.T) {
	var buf bytes.Buffer
	fixedStats().Summarize().WriteText(&buf)
	checkGolden(t, "summary_text", buf.Bytes())
}

// TestSummaryCSVFileAtomic covers the atomic file path used by -csv.
func TestSummaryCSVFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := fixedStats().Summarize().WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fixedStats().Summarize().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Error("CSV file content differs from stream rendering")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.50, 50}, {0.90, 90}, {0.95, 100}, {0.99, 100}, {0.10, 10},
	} {
		if got := Percentile(sorted, tc.q); got != tc.want {
			t.Errorf("Percentile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %d, want 0", got)
	}
	if got := Percentile([]int64{42}, 0.99); got != 42 {
		t.Errorf("Percentile(single) = %d, want 42", got)
	}
}

// TestRunAgainstServer drives a real in-process server closed-loop with a
// query/mutate mix and sanity-checks the collected stats.
func TestRunAgainstServer(t *testing.T) {
	g, err := gen.ErdosRenyi(128, 512, true, 21)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Graphs: []serve.GraphSpec{{Name: "g", Graph: g}},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	st, err := Run(context.Background(), Config{
		BaseURL:     "http://" + addr.String(),
		Graph:       "g",
		Algorithm:   "pr",
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		MutateEvery: 20,
		MutateEdges: 4,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := st.Summarize()
	if st.Query.Count == 0 {
		t.Fatal("no queries completed")
	}
	if st.Query.Errors != 0 {
		t.Errorf("query errors: %d", st.Query.Errors)
	}
	if st.Mutate.Count == 0 {
		t.Error("mutate mix produced no mutations")
	}
	if st.CacheHits == 0 {
		t.Error("repeated identical queries produced no cache hits")
	}
	if qps := sum.AchievedQPS("query"); qps <= 0 {
		t.Errorf("achieved query QPS = %g", qps)
	}
	row := sum.Rows[0]
	if row.Kind != "query" || row.P50us <= 0 || row.MaxUS < row.P99us || row.P99us < row.P50us {
		t.Errorf("implausible percentile row: %+v", row)
	}
}

// TestRunUnknownGraph pins the preflight failure mode.
func TestRunUnknownGraph(t *testing.T) {
	g, err := gen.ErdosRenyi(16, 32, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Graphs: []serve.GraphSpec{{Name: "g", Graph: g}}})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	if _, err := Run(context.Background(), Config{
		BaseURL: "http://" + addr.String(),
		Graph:   "missing",
	}); err == nil {
		t.Fatal("Run against unknown graph succeeded")
	}
}
