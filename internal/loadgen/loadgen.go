// Package loadgen drives a running serve instance with a configurable
// query/mutate mix and reports throughput and latency percentiles — the
// closed-loop (fixed concurrency, back-to-back) and open-loop (target
// arrival rate) load models used by the EXPERIMENTS.md serving sweep and
// the CI serve-smoke stage.
package loadgen

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	neturl "net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"graphpulse/internal/atomicio"
	"graphpulse/internal/serve"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Graph, Algorithm, Root, Engine form the query sent on every request.
	Graph     string
	Algorithm string
	Root      uint32
	Engine    string
	// QPS is the open-loop target arrival rate; 0 runs closed-loop
	// (every worker issues back-to-back requests).
	QPS float64
	// Concurrency is the number of client workers (default 8).
	Concurrency int
	// Duration is how long to generate load (default 5s).
	Duration time.Duration
	// MutateEvery makes every Nth request a mutation batch instead of a
	// query (0 = queries only).
	MutateEvery int
	// MutateEdges is the batch size of each mutation (default 16).
	MutateEdges int
	// DeleteEvery makes every Nth request a deletion batch drawing from
	// the edges this run previously inserted (0 = never). Takes precedence
	// over MutateEvery on sequence numbers both match.
	DeleteEvery int
	// StreamEvery makes every Nth request a bulk NDJSON /v1/stream post of
	// StreamOps mixed insert/delete ops (0 = never). Takes precedence over
	// DeleteEvery and MutateEvery.
	StreamEvery int
	// StreamOps is the op count of each stream request (default 64).
	StreamOps int
	// Seed makes mutation edge choice deterministic.
	Seed int64
	// Client overrides the HTTP client (default: 10s timeout).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.MutateEdges <= 0 {
		c.MutateEdges = 16
	}
	if c.StreamOps <= 0 {
		c.StreamOps = 64
	}
	if c.Algorithm == "" {
		c.Algorithm = "pr"
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return c
}

// Stats accumulates per-kind outcomes of one run.
type Stats struct {
	Elapsed time.Duration
	Query   KindStats
	Mutate  KindStats
	Delete  KindStats
	Stream  KindStats
	// CacheHits counts queries answered from the server's result cache.
	CacheHits int64
	// Dropped counts open-loop arrivals discarded because every worker
	// was busy and the arrival buffer was full (the offered rate exceeded
	// capacity).
	Dropped int64
}

// KindStats is the outcome tally and latency sample set for one request
// kind.
type KindStats struct {
	Count     int64
	Errors    int64
	Rejected  int64 // 429 admission-control rejections
	Deadlines int64 // 504 deadline expiries
	// LatenciesUS holds one microsecond latency per completed request,
	// sorted ascending by Summarize.
	LatenciesUS []int64
}

// Run drives the configured load until Duration elapses or ctx is
// canceled, and returns the collected stats.
func Run(ctx context.Context, cfg Config) (*Stats, error) {
	cfg = cfg.withDefaults()
	info, err := graphInfo(cfg)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Open loop: a generator paces arrivals; workers consume them.
	// Closed loop: arrivals is closed immediately and workers free-run.
	var arrivals chan struct{}
	var dropped int64
	var dropMu sync.Mutex
	if cfg.QPS > 0 {
		arrivals = make(chan struct{}, cfg.Concurrency*4)
		interval := time.Duration(float64(time.Second) / cfg.QPS)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					close(arrivals)
					return
				case <-tick.C:
					select {
					case arrivals <- struct{}{}:
					default:
						dropMu.Lock()
						dropped++
						dropMu.Unlock()
					}
				}
			}
		}()
	}

	var (
		reqSeq  int64
		seqMu   sync.Mutex
		wg      sync.WaitGroup
		workers = make([]workerStats, cfg.Concurrency)
	)
	nextSeq := func() int64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		reqSeq++
		return reqSeq
	}
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			ws := &workers[id]
			for {
				if cfg.QPS > 0 {
					if _, ok := <-arrivals; !ok {
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				seq := nextSeq()
				switch {
				case cfg.StreamEvery > 0 && seq%int64(cfg.StreamEvery) == 0:
					doStream(cfg, info, rng, ws)
				case cfg.DeleteEvery > 0 && seq%int64(cfg.DeleteEvery) == 0:
					doDelete(cfg, info, rng, ws)
				case cfg.MutateEvery > 0 && seq%int64(cfg.MutateEvery) == 0:
					doMutate(cfg, info, rng, ws)
				default:
					doQuery(cfg, ws)
				}
			}
		}(i)
	}
	wg.Wait()
	st := &Stats{Elapsed: time.Since(start), Dropped: dropped}
	for i := range workers {
		st.Query.merge(&workers[i].query)
		st.Mutate.merge(&workers[i].mutate)
		st.Delete.merge(&workers[i].del)
		st.Stream.merge(&workers[i].stream)
		st.CacheHits += workers[i].cacheHits
	}
	return st, nil
}

// ringCap bounds each worker's memory of its own inserted edges, the
// pool delete traffic draws from.
const ringCap = 1024

type workerStats struct {
	query     KindStats
	mutate    KindStats
	del       KindStats
	stream    KindStats
	cacheHits int64
	// inserted is a bounded ring of edges this worker has inserted and not
	// yet targeted for deletion, so deletes mostly hit live edges.
	inserted []serve.EdgeJSON
}

// remember pushes freshly inserted edges into the ring, evicting the
// oldest past ringCap.
func (ws *workerStats) remember(edges ...serve.EdgeJSON) {
	ws.inserted = append(ws.inserted, edges...)
	if len(ws.inserted) > ringCap {
		ws.inserted = ws.inserted[len(ws.inserted)-ringCap:]
	}
}

// takeInserted pops up to n remembered edges (oldest first); when the
// ring is dry it synthesizes random pairs, which the server legitimately
// reports as missed deletes.
func (ws *workerStats) takeInserted(n, numVertices int, rng *rand.Rand) []serve.EdgeJSON {
	if n > len(ws.inserted) {
		n = len(ws.inserted)
	}
	out := append([]serve.EdgeJSON(nil), ws.inserted[:n]...)
	ws.inserted = ws.inserted[n:]
	for len(out) == 0 {
		out = append(out, serve.EdgeJSON{
			Src: uint32(rng.Intn(numVertices)), Dst: uint32(rng.Intn(numVertices)),
		})
	}
	return out
}

func (k *KindStats) merge(o *KindStats) {
	k.Count += o.Count
	k.Errors += o.Errors
	k.Rejected += o.Rejected
	k.Deadlines += o.Deadlines
	k.LatenciesUS = append(k.LatenciesUS, o.LatenciesUS...)
}

func (k *KindStats) record(code int, us int64, err error) {
	k.Count++
	switch {
	case err != nil:
		k.Errors++
		return
	case code == http.StatusTooManyRequests:
		k.Rejected++
	case code == http.StatusGatewayTimeout:
		k.Deadlines++
	case code != http.StatusOK:
		k.Errors++
		return
	}
	k.LatenciesUS = append(k.LatenciesUS, us)
}

func graphInfo(cfg Config) (serve.GraphInfo, error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/v1/graphs")
	if err != nil {
		return serve.GraphInfo{}, fmt.Errorf("loadgen: list graphs: %w", err)
	}
	defer resp.Body.Close()
	var infos []serve.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return serve.GraphInfo{}, fmt.Errorf("loadgen: parse graph list: %w", err)
	}
	for _, in := range infos {
		if in.Name == cfg.Graph {
			return in, nil
		}
	}
	return serve.GraphInfo{}, fmt.Errorf("loadgen: graph %q not resident (have %d graphs)", cfg.Graph, len(infos))
}

func post(cfg Config, path string, body any) (int, []byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := cfg.Client.Post(cfg.BaseURL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, data, err
}

func doQuery(cfg Config, ws *workerStats) {
	root := cfg.Root
	req := serve.QueryRequest{
		Graph:     cfg.Graph,
		Algorithm: cfg.Algorithm,
		Root:      &root,
		Engine:    cfg.Engine,
		Top:       1,
	}
	t0 := time.Now()
	code, body, err := post(cfg, "/v1/query", req)
	us := time.Since(t0).Microseconds()
	ws.query.record(code, us, err)
	if err == nil && code == http.StatusOK {
		var qr serve.QueryResponse
		if json.Unmarshal(body, &qr) == nil && qr.Cached {
			ws.cacheHits++
		}
	}
}

func doMutate(cfg Config, info serve.GraphInfo, rng *rand.Rand, ws *workerStats) {
	n := info.NumVertices
	edges := make([]serve.EdgeJSON, cfg.MutateEdges)
	for i := range edges {
		edges[i] = serve.EdgeJSON{
			Src:    uint32(rng.Intn(n)),
			Dst:    uint32(rng.Intn(n)),
			Weight: float32(rng.Float64()*0.9 + 0.1),
		}
	}
	t0 := time.Now()
	code, _, err := post(cfg, "/v1/mutate", serve.MutateRequest{Graph: cfg.Graph, Edges: edges})
	us := time.Since(t0).Microseconds()
	ws.mutate.record(code, us, err)
	if err == nil && code == http.StatusOK {
		ws.remember(edges...)
	}
}

func doDelete(cfg Config, info serve.GraphInfo, rng *rand.Rand, ws *workerStats) {
	dels := ws.takeInserted(cfg.MutateEdges, info.NumVertices, rng)
	t0 := time.Now()
	code, _, err := post(cfg, "/v1/mutate", serve.MutateRequest{Graph: cfg.Graph, Deletes: dels})
	us := time.Since(t0).Microseconds()
	ws.del.record(code, us, err)
}

// doStream posts one NDJSON bulk-ingestion request: ~3/4 inserts, ~1/4
// deletes of edges this worker streamed or mutated in earlier requests.
func doStream(cfg Config, info serve.GraphInfo, rng *rand.Rand, ws *workerStats) {
	n := info.NumVertices
	var body bytes.Buffer
	var fresh []serve.EdgeJSON
	for i := 0; i < cfg.StreamOps; i++ {
		if rng.Intn(4) == 0 && len(ws.inserted) > 0 {
			d := ws.takeInserted(1, n, rng)[0]
			fmt.Fprintf(&body, `{"op":"delete","src":%d,"dst":%d}`+"\n", d.Src, d.Dst)
			continue
		}
		e := serve.EdgeJSON{
			Src:    uint32(rng.Intn(n)),
			Dst:    uint32(rng.Intn(n)),
			Weight: float32(rng.Float64()*0.9 + 0.1),
		}
		fmt.Fprintf(&body, `{"src":%d,"dst":%d,"weight":%g}`+"\n", e.Src, e.Dst, e.Weight)
		fresh = append(fresh, e)
	}
	t0 := time.Now()
	resp, err := cfg.Client.Post(
		cfg.BaseURL+"/v1/stream?graph="+neturl.QueryEscape(cfg.Graph),
		"application/x-ndjson", &body)
	us := time.Since(t0).Microseconds()
	code := 0
	if err == nil {
		code = resp.StatusCode
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}
	ws.stream.record(code, us, err)
	if err == nil && code == http.StatusOK {
		ws.remember(fresh...)
	}
}

// Summary is the deterministic report of one run: one row per request
// kind that saw traffic. Its CSV and text renderings are pinned by
// golden-file tests.
type Summary struct {
	ElapsedSeconds float64
	Dropped        int64
	Rows           []SummaryRow
}

// SummaryRow aggregates one request kind.
type SummaryRow struct {
	Kind      string
	Count     int64
	Errors    int64
	Rejected  int64
	Deadlines int64
	CacheHits int64
	QPS       float64
	P50us     int64
	P90us     int64
	P95us     int64
	P99us     int64
	MaxUS     int64
}

// Summarize reduces raw stats to the percentile report. It sorts the
// latency samples in place.
func (st *Stats) Summarize() Summary {
	s := Summary{
		ElapsedSeconds: st.Elapsed.Seconds(),
		Dropped:        st.Dropped,
	}
	addRow := func(kind string, k *KindStats, cacheHits int64) {
		if k.Count == 0 {
			return
		}
		sort.Slice(k.LatenciesUS, func(i, j int) bool { return k.LatenciesUS[i] < k.LatenciesUS[j] })
		row := SummaryRow{
			Kind:      kind,
			Count:     k.Count,
			Errors:    k.Errors,
			Rejected:  k.Rejected,
			Deadlines: k.Deadlines,
			CacheHits: cacheHits,
			P50us:     Percentile(k.LatenciesUS, 0.50),
			P90us:     Percentile(k.LatenciesUS, 0.90),
			P95us:     Percentile(k.LatenciesUS, 0.95),
			P99us:     Percentile(k.LatenciesUS, 0.99),
		}
		if n := len(k.LatenciesUS); n > 0 {
			row.MaxUS = k.LatenciesUS[n-1]
		}
		if s.ElapsedSeconds > 0 {
			row.QPS = float64(k.Count) / s.ElapsedSeconds
		}
		s.Rows = append(s.Rows, row)
	}
	addRow("query", &st.Query, st.CacheHits)
	addRow("mutate", &st.Mutate, 0)
	addRow("delete", &st.Delete, 0)
	addRow("stream", &st.Stream, 0)
	return s
}

// AchievedQPS returns the completed-request rate of one kind ("query",
// "mutate", "delete", "stream"), or 0 if the kind saw no traffic.
func (s Summary) AchievedQPS(kind string) float64 {
	for _, r := range s.Rows {
		if r.Kind == kind {
			return r.QPS
		}
	}
	return 0
}

// TotalErrors sums hard failures (transport errors and unexpected status
// codes; 429 rejections and 504 deadlines are counted separately) across
// every request kind — the CI smoke gate's no-5xx assertion.
func (s Summary) TotalErrors() int64 {
	var n int64
	for _, r := range s.Rows {
		n += r.Errors
	}
	return n
}

// Availability is the fraction of requests that did not hard-fail,
// across every kind (1.0 for an empty run). Rejections (429) and
// deadline expiries (504) count as available — they are the server
// answering, not the tier losing the request. The CI dserve-smoke stage
// gates on this while killing a worker mid-burst.
func (s Summary) Availability() float64 {
	var count, errs int64
	for _, r := range s.Rows {
		count += r.Count
		errs += r.Errors
	}
	if count == 0 {
		return 1.0
	}
	return float64(count-errs) / float64(count)
}

// Percentile returns the nearest-rank percentile of ascending-sorted
// microsecond samples (0 for an empty set).
func Percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// csvHeader is the stable column set of the CSV summary.
var csvHeader = []string{
	"kind", "count", "errors", "rejected", "deadlines", "cache_hits",
	"qps", "p50_us", "p90_us", "p95_us", "p99_us", "max_us",
}

// WriteCSV renders the summary as CSV, one row per request kind.
func (s Summary) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range s.Rows {
		rec := []string{
			r.Kind,
			strconv.FormatInt(r.Count, 10),
			strconv.FormatInt(r.Errors, 10),
			strconv.FormatInt(r.Rejected, 10),
			strconv.FormatInt(r.Deadlines, 10),
			strconv.FormatInt(r.CacheHits, 10),
			strconv.FormatFloat(r.QPS, 'f', 1, 64),
			strconv.FormatInt(r.P50us, 10),
			strconv.FormatInt(r.P90us, 10),
			strconv.FormatInt(r.P95us, 10),
			strconv.FormatInt(r.P99us, 10),
			strconv.FormatInt(r.MaxUS, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile atomically writes the CSV summary to path.
func (s Summary) WriteCSVFile(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error { return s.WriteCSV(w) })
}

// WriteText renders the human report: run line plus one percentile line
// per kind.
func (s Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "elapsed %.2fs", s.ElapsedSeconds)
	if s.Dropped > 0 {
		fmt.Fprintf(w, "  (dropped %d open-loop arrivals: offered rate exceeded capacity)", s.Dropped)
	}
	fmt.Fprintln(w)
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-6s  %6d reqs  %8.1f qps  p50 %s  p90 %s  p95 %s  p99 %s  max %s",
			r.Kind, r.Count, r.QPS,
			fmtUS(r.P50us), fmtUS(r.P90us), fmtUS(r.P95us), fmtUS(r.P99us), fmtUS(r.MaxUS))
		if r.Kind == "query" {
			fmt.Fprintf(w, "  cache-hits %d", r.CacheHits)
		}
		if r.Rejected > 0 || r.Deadlines > 0 || r.Errors > 0 {
			fmt.Fprintf(w, "  [429:%d 504:%d err:%d]", r.Rejected, r.Deadlines, r.Errors)
		}
		fmt.Fprintln(w)
	}
}

// fmtUS renders a microsecond latency with a readable unit.
func fmtUS(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
