package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"graphpulse/internal/dserve"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/serve"
)

// newReplica boots one worker-wrapped serve instance over the
// deterministic test graph, so its handler exposes /internal/digest.
func newReplica(t *testing.T) *httptest.Server {
	t.Helper()
	g, err := gen.ErdosRenyi(128, 512, true, 21)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Graphs: []serve.GraphSpec{{Name: "g", Graph: g}}})
	if err != nil {
		t.Fatal(err)
	}
	wk, err := dserve.NewWorker(dserve.WorkerConfig{Server: s})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(wk.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return ts
}

func mutateReplica(t *testing.T, url string) {
	t.Helper()
	raw, _ := json.Marshal(serve.MutateRequest{
		Graph: "g", Edges: []serve.EdgeJSON{{Src: 2, Dst: 100, Weight: 0.4}},
	})
	resp, err := http.Post(url+"/v1/mutate", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: HTTP %d", resp.StatusCode)
	}
}

// TestVerifyReplicas pins the divergence check: identical replicas pass,
// a replica that missed a write fails with a digest mismatch, and
// re-applying the missed write restores agreement (including the direct
// per-replica answer comparison).
func TestVerifyReplicas(t *testing.T) {
	a, b := newReplica(t), newReplica(t)
	cfg := Config{Graph: "g", Algorithm: "pr"}
	replicas := []string{a.URL, b.URL}

	rep, err := VerifyReplicas(context.Background(), cfg, replicas, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("identical replicas failed verification: %+v", rep.Mismatches)
	}
	if len(rep.Replicas) != 2 || rep.Replicas[0].Digest != rep.Replicas[1].Digest {
		t.Fatalf("replica states = %+v", rep.Replicas)
	}

	// One replica misses a write: the check must fail fast with a digest
	// mismatch (the short wait keeps the poll from masking it).
	mutateReplica(t, a.URL)
	rep, err = VerifyReplicas(context.Background(), cfg, replicas, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.Converged {
		t.Fatalf("diverged replicas passed verification: %+v", rep)
	}
	if len(rep.Mismatches) == 0 {
		t.Fatal("no mismatch reported for diverged replicas")
	}

	// Re-applying the missed write re-converges both layers: digests and
	// the per-replica query answers.
	mutateReplica(t, b.URL)
	rep, err = VerifyReplicas(context.Background(), cfg, replicas, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("re-converged replicas failed verification: %+v", rep.Mismatches)
	}
	for _, st := range rep.Replicas {
		if st.Epoch != 1 || st.Sum == 0 {
			t.Fatalf("replica state after reconvergence = %+v", st)
		}
	}
}

// TestVerifyReplicasUnreachable pins the unreachable-replica outcome: the
// report fails with a fetch error rather than silently passing on the
// reachable subset.
func TestVerifyReplicasUnreachable(t *testing.T) {
	a := newReplica(t)
	rep, err := VerifyReplicas(context.Background(), Config{Graph: "g", Algorithm: "pr"},
		[]string{a.URL, "http://127.0.0.1:1"}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("verification passed with an unreachable replica")
	}
	if len(rep.Mismatches) == 0 {
		t.Fatal("no mismatch recorded for the unreachable replica")
	}
	if _, err := VerifyReplicas(context.Background(), Config{Graph: "g"}, nil, time.Second); err == nil {
		t.Fatal("empty replica list accepted")
	}
}

// TestSumsClose pins the float comparison used on per-replica answers.
func TestSumsClose(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1e6, 1e6 * (1 + 1e-8), true},
		{1e6, 1e6 * (1 + 2e-2), true}, // warm-vs-cold solver slack: tolerated
		{1e6, 1.1e6, false},
		{0, 1e-3, true},
		{0, 1, false},
	}
	for _, c := range cases {
		if got := sumsClose(c.a, c.b); got != c.want {
			t.Errorf("sumsClose(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
