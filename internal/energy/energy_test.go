package energy

import (
	"math"
	"testing"
)

func TestTableVTotalsMatchPaper(t *testing.T) {
	rows := TableV()
	if len(rows) != 4 {
		t.Fatalf("TableV has %d rows, want 4", len(rows))
	}
	// Queue row total: 64 × (116 + 22.2) = 8844.8 mW ≈ paper's 8825 mW
	// (paper rounds per-unit dynamic power).
	queue := rows[0]
	if queue.Name != "Queue" {
		t.Fatalf("first row = %s", queue.Name)
	}
	if got := queue.TotalMW(); math.Abs(got-8825) > 50 {
		t.Errorf("queue total = %.1f mW, want ≈ 8825", got)
	}
	// The queue dominates: "The total energy for the whole event queue
	// memory is ~9 Watts".
	total := AcceleratorPowerWatts(rows, 1)
	if total < 8.5 || total > 9.5 {
		t.Errorf("total power = %.2f W, want ≈ 9 W", total)
	}
	// Non-queue components: "less than 60mW" for network + compute.
	var rest float64
	for _, c := range rows[2:] {
		rest += c.TotalMW()
	}
	if rest >= 60 {
		t.Errorf("network+logic power = %.1f mW, want < 60", rest)
	}
}

func TestAreaMatchesPaper(t *testing.T) {
	// Paper: circuit area 3.5 mm² excluding on-chip memory (network 3.10 +
	// logic 0.44); with queue + scratchpad ≈ 193.8 mm².
	rows := TableV()
	logic := rows[2].AreaMM2 + rows[3].AreaMM2
	if math.Abs(logic-3.54) > 0.05 {
		t.Errorf("logic area = %.2f mm², want ≈ 3.5", logic)
	}
	if total := TotalAreaMM2(rows); math.Abs(total-193.75) > 1 {
		t.Errorf("total area = %.2f mm²", total)
	}
}

func TestActivityScaling(t *testing.T) {
	rows := TableV()
	idle := AcceleratorPowerWatts(rows, 0)
	busy := AcceleratorPowerWatts(rows, 1)
	if idle >= busy {
		t.Errorf("idle %.2f W not below busy %.2f W", idle, busy)
	}
	if neg := AcceleratorPowerWatts(rows, -5); neg != idle {
		t.Errorf("negative activity = %.2f W, want clamp to idle %.2f W", neg, idle)
	}
}

func TestEfficiencyRatioReproduces280x(t *testing.T) {
	// With the paper's 28× mean speedup and these power numbers, the
	// energy-efficiency ratio should land near the published 280×.
	accelSeconds := 1.0
	cpuSeconds := 28.0
	ratio, err := EfficiencyRatio(nil, accelSeconds, cpuSeconds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 250 || ratio > 320 {
		t.Errorf("efficiency ratio = %.0f×, want ≈ 280×", ratio)
	}
}

func TestEfficiencyRatioErrors(t *testing.T) {
	if _, err := EfficiencyRatio(nil, 0, 1, 1); err == nil {
		t.Error("accepted zero accelerator time")
	}
	if _, err := EfficiencyRatio(nil, 1, -1, 1); err == nil {
		t.Error("accepted negative CPU time")
	}
}

func TestEnergyJoules(t *testing.T) {
	rows := TableV()
	e := AcceleratorEnergyJoules(rows, 2, 1)
	if want := AcceleratorPowerWatts(rows, 1) * 2; e != want {
		t.Errorf("energy = %g, want %g", e, want)
	}
	if CPUEnergyJoules(2) != 190 {
		t.Errorf("CPU energy = %g, want 190", CPUEnergyJoules(2))
	}
}

func TestNilComponentsDefaultToTableV(t *testing.T) {
	if got, want := AcceleratorPowerWatts(nil, 1), AcceleratorPowerWatts(TableV(), 1); got != want {
		t.Errorf("nil components power = %g, want %g", got, want)
	}
	if e := AcceleratorEnergyJoules(nil, 1, 1); e <= 0 {
		t.Errorf("nil components energy = %g", e)
	}
}
