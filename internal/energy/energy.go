// Package energy reproduces the paper's power, area and energy-efficiency
// accounting (Section VI-C, Table V).
//
// The paper derives component power/area from CACTI 7 (memory elements) and
// a synthesized Chisel RTL model (datapath); this package does not re-run
// synthesis — it encodes the published Table V numbers as the ground truth
// and reproduces the derived results: total accelerator power (~9 W,
// dominated by the 64 MB coalescing-queue eDRAM), total area, and the
// ~280× energy-efficiency claim versus the software baseline.
package energy

import "fmt"

// Component is one Table V row: per-unit static and dynamic power and the
// total area of all units.
type Component struct {
	Name  string
	Units int
	// StaticMW and DynamicMW are per-unit milliwatts (dynamic at the
	// paper's measured activity).
	StaticMW  float64
	DynamicMW float64
	// AreaMM2 is total area for all units at the row's process node.
	AreaMM2 float64
}

// TotalMW returns the row's total power in milliwatts.
func (c Component) TotalMW() float64 {
	return float64(c.Units) * (c.StaticMW + c.DynamicMW)
}

// TableV returns the paper's published component rows.
//
//	Queue:            64 bins  × (116 + 22.2) mW ≈ 8825 mW, 190 mm²
//	Scratchpad:        8 units × (0.35 + 1.1) mW ≈ 11.6 mW, 0.21 mm²
//	Network:           1 × (51.3 + 3.4) mW = 54.7 mW, 3.10 mm²
//	Processing logic:  1 × 1.30 mW, 0.44 mm²
func TableV() []Component {
	return []Component{
		{Name: "Queue", Units: 64, StaticMW: 116, DynamicMW: 22.2, AreaMM2: 190},
		{Name: "Scratchpad", Units: 8, StaticMW: 0.35, DynamicMW: 1.1, AreaMM2: 0.21},
		{Name: "Network", Units: 1, StaticMW: 51.3, DynamicMW: 3.4, AreaMM2: 3.10},
		{Name: "Processing Logic", Units: 1, StaticMW: 0, DynamicMW: 1.30, AreaMM2: 0.44},
	}
}

// CPUPowerWatts is the package power of the software baseline's 12-core
// Xeon (E5-class, 95 W TDP). With the paper's 28× mean speedup, the power
// ratio yields the reported ≈280× energy-efficiency advantage.
const CPUPowerWatts = 95.0

// AcceleratorPowerWatts returns total accelerator power at an activity
// factor (1 = the paper's measured activity; 0 = static only). Dynamic
// power scales with activity; static power does not. nil components means
// the published Table V.
func AcceleratorPowerWatts(components []Component, activity float64) float64 {
	components = TableVOr(components)
	if activity < 0 {
		activity = 0
	}
	var mw float64
	for _, c := range components {
		mw += float64(c.Units) * (c.StaticMW + c.DynamicMW*activity)
	}
	return mw / 1000
}

// TotalAreaMM2 sums component areas.
func TotalAreaMM2(components []Component) float64 {
	var a float64
	for _, c := range components {
		a += c.AreaMM2
	}
	return a
}

// AcceleratorEnergyJoules returns energy for a run of the given duration.
func AcceleratorEnergyJoules(components []Component, seconds, activity float64) float64 {
	return AcceleratorPowerWatts(components, activity) * seconds
}

// CPUEnergyJoules returns the software baseline's energy for a run.
func CPUEnergyJoules(seconds float64) float64 { return CPUPowerWatts * seconds }

// EfficiencyRatio returns how many times less energy the accelerator uses
// than the CPU baseline for the same computation:
//
//	(CPUPower × cpuSeconds) / (AccelPower × accelSeconds)
func EfficiencyRatio(components []Component, accelSeconds, cpuSeconds, activity float64) (float64, error) {
	if accelSeconds <= 0 || cpuSeconds <= 0 {
		return 0, fmt.Errorf("energy: non-positive durations accel=%g cpu=%g", accelSeconds, cpuSeconds)
	}
	return CPUEnergyJoules(cpuSeconds) / AcceleratorEnergyJoules(TableVOr(components), accelSeconds, activity), nil
}

// TableVOr returns components, defaulting to TableV when nil.
func TableVOr(components []Component) []Component {
	if components == nil {
		return TableV()
	}
	return components
}
