// Package psolve is the sharded parallel counterpart of the sequential
// worklist solver (algorithms.SolveCtx): the paper's event-driven execution
// model mapped onto host threads instead of simulated hardware queues.
//
// The vertex set is split into contiguous shards via internal/graph/partition
// (one shard per worker, boundaries refined to reduce the edge cut). Each
// worker owns its shard's state and runs a private coalescing worklist — a
// fixed-capacity ring buffer plus a per-vertex accumulator, exactly the
// in-place event coalescing of paper Section IV-B, but per shard. Deltas for
// vertices owned by another worker are coalesced into a dense per-worker
// remote accumulator (one slot per vertex, reduced in place, with a dirty
// list per destination shard) and exchanged in batches over channels — the
// software analogue of the accelerator's inter-queue event routing.
//
// Termination is the paper's global check (Section IV-C) in software: a
// single atomic counter tracks every undelivered unit of work — queued
// worklist entries, buffered remote-delta entries, and in-flight batch
// entries. Every increment happens before the decrement of the work item
// that caused it, so the counter reaches zero only at true global
// quiescence; the worker that decrements it to zero closes the done channel.
//
// Cancellation matches sim.ErrCanceled semantics: workers poll the context
// every ctxPollInterval activations and the first to observe cancellation
// stops the fleet, so a server deadline cancels a parallel solve, a serial
// solve, and a cycle-level simulation through one errors.Is check.
package psolve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/partition"
	"graphpulse/internal/sim"
)

// ctxPollInterval matches algorithms.SolveCtx and sim.Engine.RunUntil: a
// select per pop would dominate the loop, and wall-clock deadlines never
// need finer granularity.
const ctxPollInterval = 1024

// processChunk is how many local pops a worker performs between inbox
// drains, bounding the latency of cross-shard delta delivery without paying
// a channel poll per activation.
const processChunk = 64

// Config tunes the parallel solver. The zero value of every field selects
// the documented default.
type Config struct {
	// Workers is the shard/goroutine count (default GOMAXPROCS, clamped to
	// the vertex count — a 3-vertex graph never runs more than 3 workers).
	Workers int
	// BatchSize is the buffered remote-vertex count at which a worker flushes
	// its cross-shard deltas to their owners (default 256). Larger
	// batches coalesce more and message less; smaller batches cut the
	// latency of remote delta delivery.
	BatchSize int
	// RefinePasses is the number of partition boundary-refinement sweeps
	// used to reduce the cross-shard edge cut (default 1).
	RefinePasses int
	// NoRelabel disables the internal degree-order relabeling pass. By
	// default (false) the solver relabels in-RAM graphs with
	// partition.DegreeOrderPermutation before sharding, clustering
	// well-connected vertices into the same shard to cut the cross-shard
	// edge fraction; results are reported in the original vertex ids. The
	// pass is skipped automatically for single-worker runs and for
	// out-of-core stores (whose on-disk slice layout is already the
	// locality unit).
	NoRelabel bool
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{Workers: runtime.GOMAXPROCS(0), BatchSize: 256, RefinePasses: 1}
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.RefinePasses <= 0 {
		c.RefinePasses = 1
	}
	return c
}

// Result is the outcome of a parallel solve. Values agrees with the serial
// solver within conformance.Tolerance (exactly, for monotone min/max
// algorithms); the counters are the solver's observability surface,
// documented in METRICS.md ("Parallel solver metrics").
type Result struct {
	// Values is the converged vertex state.
	Values []float64
	// Activations counts vertex updates performed across all workers
	// (`psolve_worker_activations` summed).
	Activations int64
	// Emitted counts propagated edge deltas across all workers.
	Emitted int64
	// Workers is the number of shards actually used (`psolve_workers`).
	Workers int
	// WorkerActivations is the per-shard activation count
	// (`psolve_worker_activations`); imbalance here means a skewed
	// partition.
	WorkerActivations []int64
	// CrossShardDeltas counts coalesced delta entries delivered between
	// shards over channels (`psolve_cross_shard_deltas`).
	CrossShardDeltas int64
	// CrossShardCoalesced counts remote deltas merged into an
	// already-buffered outbound entry instead of travelling on their own
	// (`psolve_cross_shard_coalesced`) — the software measure of the
	// paper's in-flight event coalescing across queue boundaries.
	CrossShardCoalesced int64
	// CrossShardBatches counts channel sends (`psolve_cross_shard_batches`).
	CrossShardBatches int64
	// TerminationRounds sums each worker's local-quiescence episodes
	// (`psolve_termination_rounds`): how often a worker drained its shard
	// and went idle before new cross-shard work arrived or the global
	// counter hit zero.
	TerminationRounds int64
	// CutEdges is the partition edge cut (`psolve_cut_edges`): edges whose
	// endpoints live in different shards, each a potential cross-shard
	// delta per propagation.
	CutEdges int
}

// MetricNames lists the solver metric names for the METRICS.md staleness
// linter (lintdoc), mirroring the Result counter fields.
func MetricNames() []string {
	return []string{
		"psolve_workers",
		"psolve_worker_activations",
		"psolve_cross_shard_deltas",
		"psolve_cross_shard_coalesced",
		"psolve_cross_shard_batches",
		"psolve_termination_rounds",
		"psolve_cut_edges",
	}
}

// delta is one (vertex, accumulated value) cross-shard message entry.
type delta struct {
	v graph.VertexID
	d float64
}

// batch is the unit of cross-shard exchange: a flushed coalescing map.
type batch []delta

// solver is the shared run state.
type solver struct {
	g     graph.Adjacency
	alg   algorithms.Algorithm
	cfg   Config
	ctx   context.Context
	part  *partition.Partitioning
	state []float64
	id    float64

	workers []*worker

	// outstanding counts queued worklist entries + buffered remote-delta
	// entries + in-flight batch entries. Zero ⇔ global quiescence.
	outstanding atomic.Int64
	done        chan struct{}
	doneOnce    sync.Once

	stop     chan struct{}
	failOnce sync.Once
	err      error

	wg sync.WaitGroup
}

// worker owns the contiguous vertex shard [lo, hi).
type worker struct {
	idx    int
	lo, hi graph.VertexID

	// ring is a fixed-capacity FIFO over the shard: inList guarantees each
	// owned vertex occupies at most one slot, so hi-lo slots suffice.
	ring        []graph.VertexID
	head, count int
	inList      []bool
	acc         []float64

	inbox chan batch
	// Remote-delta coalescing store: racc accumulates deltas headed to
	// other shards (indexed by global vertex id), rqueued marks buffered
	// vertices, and rdirty[dst] lists them per destination worker. Dense
	// arrays instead of maps: on skewed graphs half the edges can cross
	// shards, so the remote path must cost no more than a local push. The
	// price is O(n) memory per worker, O(workers × n) total. Buffered
	// entries count toward solver.outstanding from the moment they enter
	// rdirty.
	racc     []float64
	rqueued  []bool
	rdirty   [][]graph.VertexID
	outCount int

	activations, emitted               int64
	sentDeltas, sentBatches, coalesced int64
	rounds                             int64
}

// Solve runs alg to convergence in parallel, without cancellation.
func Solve(g graph.Adjacency, alg algorithms.Algorithm, cfg Config) *Result {
	res, _ := SolveCtx(nil, g, alg, cfg)
	return res
}

// Sliced is implemented by graph stores whose on-disk layout has its own
// slice boundaries (the out-of-core graphpack store). The solver aligns
// worker shards to these boundaries so each worker's working set maps onto
// whole resident slices instead of straddling them.
type Sliced interface {
	SliceBoundaries() []graph.VertexID
}

// SolveCtx runs alg to convergence across cfg.Workers shards. When ctx is
// canceled the solve stops and returns an error wrapping sim.ErrCanceled. A
// nil ctx disables cancellation and never fails.
func SolveCtx(ctx context.Context, g graph.Adjacency, alg algorithms.Algorithm, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return &Result{Values: []float64{}}, nil
	}

	// Locality pass: relabel in-RAM graphs so BFS-adjacent vertices land in
	// the same contiguous shard. The algorithm is wrapped to observe original
	// vertex ids (InitState/Propagate see pre-permutation ids), so results
	// are exact — only the schedule and shard assignment change; values are
	// un-permuted before returning.
	if !cfg.NoRelabel && cfg.Workers > 1 && n > 1 {
		if csr, ok := g.(*graph.CSR); ok {
			return solveRelabeled(ctx, csr, alg, cfg)
		}
	}

	part, err := shard(g, cfg)
	if err != nil {
		return nil, err
	}
	w := part.NumSlices()

	s := &solver{
		g:     g,
		alg:   alg,
		cfg:   cfg,
		ctx:   ctx,
		part:  part,
		state: make([]float64, n),
		id:    alg.Identity(),
		done:  make(chan struct{}),
		stop:  make(chan struct{}),
	}
	for v := 0; v < n; v++ {
		s.state[v] = alg.InitState(graph.VertexID(v))
	}
	s.workers = make([]*worker, w)
	for i, sl := range part.Slices {
		size := sl.NumVertices()
		wk := &worker{
			idx:    i,
			lo:     sl.Lo,
			hi:     sl.Hi,
			ring:   make([]graph.VertexID, size),
			inList: make([]bool, size),
			acc:    make([]float64, size),
			inbox:  make(chan batch, 4*w),
		}
		for j := range wk.acc {
			wk.acc[j] = s.id
		}
		if w > 1 {
			wk.racc = make([]float64, n)
			wk.rqueued = make([]bool, n)
			wk.rdirty = make([][]graph.VertexID, w)
			for j := range wk.racc {
				wk.racc[j] = s.id
			}
		}
		s.workers[i] = wk
	}

	// Seed the shards single-threaded, before any worker starts.
	for _, ev := range alg.InitialEvents(g) {
		wk := s.workers[part.SliceOf(ev.Vertex)]
		wk.pushLocal(s, ev.Vertex, ev.Delta)
	}
	if s.outstanding.Load() == 0 {
		s.doneOnce.Do(func() { close(s.done) })
	}

	for _, wk := range s.workers {
		s.wg.Add(1)
		go wk.run(s)
	}
	s.wg.Wait()
	if s.err != nil {
		return nil, s.err
	}

	// Fold retained sub-threshold residuals into the converged state — the
	// serial solver absorbs those fragments at activation time; here they
	// were held back for coalescing (see processChunk) and land now.
	for _, wk := range s.workers {
		for off, a := range wk.acc {
			if a != s.id {
				v := wk.lo + graph.VertexID(off)
				s.state[v] = alg.Reduce(s.state[v], a)
			}
		}
	}

	res := &Result{
		Values:            s.state,
		Workers:           w,
		WorkerActivations: make([]int64, w),
		CutEdges:          part.CutEdges,
	}
	for i, wk := range s.workers {
		res.WorkerActivations[i] = wk.activations
		res.Activations += wk.activations
		res.Emitted += wk.emitted
		res.CrossShardDeltas += wk.sentDeltas
		res.CrossShardCoalesced += wk.coalesced
		res.CrossShardBatches += wk.sentBatches
		res.TerminationRounds += wk.rounds
	}
	return res, nil
}

// shard builds the worker partitioning for g: aligned to the store's own
// slice boundaries when g is an out-of-core Sliced store (so each worker's
// shard maps onto whole resident slices), a refined contiguous split
// otherwise.
func shard(g graph.Adjacency, cfg Config) (*partition.Partitioning, error) {
	if sl, ok := g.(Sliced); ok {
		if p := alignedPartitioning(g, sl.SliceBoundaries(), cfg.Workers); p != nil {
			return p, nil
		}
	}
	part, err := partition.Split(g, cfg.Workers, cfg.RefinePasses)
	if err != nil {
		return nil, fmt.Errorf("psolve: %w", err)
	}
	return part, nil
}

// alignedPartitioning groups consecutive store slices into up to workers
// contiguous shards. Store slices are already vertex-balanced (they come from
// partition.Split at pack time), so grouping by index stays balanced. Returns
// nil when the boundary list is unusable and the caller should fall back to a
// fresh split.
func alignedPartitioning(g graph.Adjacency, bounds []graph.VertexID, workers int) *partition.Partitioning {
	n := g.NumVertices()
	k := len(bounds) - 1
	if k < 1 || bounds[0] != 0 || int(bounds[k]) != n {
		return nil
	}
	for i := 0; i < k; i++ {
		if bounds[i] >= bounds[i+1] {
			return nil
		}
	}
	if workers > k {
		workers = k
	}
	p := &partition.Partitioning{Slices: make([]partition.Slice, workers)}
	for i := 0; i < workers; i++ {
		p.Slices[i] = partition.Slice{Lo: bounds[i*k/workers], Hi: bounds[(i+1)*k/workers]}
	}
	p.CutEdges = partition.Cut(g, p)
	return p
}

// solveRelabeled is the degree-order locality pass: relabel the graph with
// partition.DegreeOrderPermutation, solve on the relabeled graph with a
// wrapper that presents original vertex ids to the algorithm, and un-permute
// the converged values. Exact for every algorithm — the wrapped algorithm
// observes the same ids, weights and out-degrees as an unrelabeled run, so
// only the shard assignment and schedule change.
func solveRelabeled(ctx context.Context, g *graph.CSR, alg algorithms.Algorithm, cfg Config) (*Result, error) {
	perm := partition.DegreeOrderPermutation(g)
	rg, err := g.Relabel(perm)
	if err != nil {
		return nil, fmt.Errorf("psolve: relabel: %w", err)
	}
	inv := make([]graph.VertexID, len(perm))
	for v, p := range perm {
		inv[p] = graph.VertexID(v)
	}
	cfg.NoRelabel = true
	res, err := SolveCtx(ctx, rg, &relabeledAlg{Algorithm: alg, perm: perm, inv: inv, orig: g}, cfg)
	if err != nil {
		return nil, err
	}
	// Relabeled vertex perm[v] holds original vertex v's converged value.
	vals := make([]float64, len(res.Values))
	for v := range vals {
		vals[v] = res.Values[perm[v]]
	}
	res.Values = vals
	return res, nil
}

// relabeledAlg presents original vertex ids to the wrapped algorithm while
// the solver runs on the relabeled graph: InitState and Propagate un-map ids,
// InitialEvents are computed on the original graph and mapped forward.
// Out-degree is invariant under relabeling, so EdgeContext.SrcOutDegree needs
// no translation.
type relabeledAlg struct {
	algorithms.Algorithm
	perm, inv []graph.VertexID
	orig      graph.Adjacency
}

func (a *relabeledAlg) InitState(v graph.VertexID) algorithms.Value {
	return a.Algorithm.InitState(a.inv[v])
}

func (a *relabeledAlg) Propagate(d algorithms.Value, e algorithms.EdgeContext) algorithms.Value {
	e.Src, e.Dst = a.inv[e.Src], a.inv[e.Dst]
	return a.Algorithm.Propagate(d, e)
}

func (a *relabeledAlg) InitialEvents(graph.Adjacency) []algorithms.InitialEvent {
	evs := a.Algorithm.InitialEvents(a.orig)
	out := make([]algorithms.InitialEvent, len(evs))
	for i, ev := range evs {
		out[i] = algorithms.InitialEvent{Vertex: a.perm[ev.Vertex], Delta: ev.Delta}
	}
	return out
}

// fail records the first error and stops the fleet.
func (s *solver) fail(err error) {
	s.failOnce.Do(func() {
		s.err = err
		close(s.stop)
	})
}

// finish decrements the outstanding-work counter by n; the goroutine that
// takes it to zero announces global quiescence. Every increment for work an
// item caused happens before that item's own decrement, so zero is reachable
// only when no work exists anywhere.
func (s *solver) finish(n int64) {
	if s.outstanding.Add(-n) == 0 {
		s.doneOnce.Do(func() { close(s.done) })
	}
}

// canceled reports whether the fleet is stopping, polling ctx.
func (s *solver) canceled(w *worker) bool {
	select {
	case <-s.stop:
		return true
	default:
	}
	if s.ctx != nil {
		select {
		case <-s.ctx.Done():
			s.fail(fmt.Errorf("%w after %d activations on worker %d: %v",
				sim.ErrCanceled, w.activations, w.idx, s.ctx.Err()))
			return true
		default:
		}
	}
	return false
}

// pushLocal coalesces a delta into an owned vertex and enqueues it if not
// already queued. Called only by the owning worker (or single-threaded
// seeding).
func (w *worker) pushLocal(s *solver, v graph.VertexID, d float64) {
	off := v - w.lo
	w.acc[off] = s.alg.Reduce(w.acc[off], d)
	if !w.inList[off] {
		w.inList[off] = true
		tail := w.head + w.count
		if tail >= len(w.ring) {
			tail -= len(w.ring)
		}
		w.ring[tail] = v
		w.count++
		s.outstanding.Add(1)
	}
}

// bufferRemote coalesces a delta headed to another shard into the dense
// remote accumulator and records the vertex on the destination's dirty list.
func (w *worker) bufferRemote(s *solver, dst int, v graph.VertexID, d float64) {
	if w.rqueued[v] {
		w.racc[v] = s.alg.Reduce(w.racc[v], d)
		w.coalesced++
		return
	}
	w.rqueued[v] = true
	w.racc[v] = d // slot holds the identity between flushes
	w.rdirty[dst] = append(w.rdirty[dst], v)
	w.outCount++
	s.outstanding.Add(1)
}

// integrate merges a received batch into the local worklist. Each delivered
// entry retires one unit of outstanding work (its increment happened at
// buffer time on the sender); any new worklist entry it causes is counted
// first by pushLocal.
func (w *worker) integrate(s *solver, b batch) {
	for _, e := range b {
		w.pushLocal(s, e.v, e.d)
		s.finish(1)
	}
}

// send delivers a batch to dst, draining the worker's own inbox while
// blocked so that two mutually-sending workers can never deadlock. Returns
// false when the fleet is stopping.
func (w *worker) send(s *solver, dst int, b batch) bool {
	ch := s.workers[dst].inbox
	for {
		select {
		case ch <- b:
			return true
		case in := <-w.inbox:
			w.integrate(s, in)
		case <-s.stop:
			return false
		}
	}
}

// flushAll ships every non-empty dirty list to its owner, resetting the
// flushed accumulator slots to the identity.
func (w *worker) flushAll(s *solver) bool {
	for dst := range w.rdirty {
		dirty := w.rdirty[dst]
		if len(dirty) == 0 {
			continue
		}
		b := make(batch, 0, len(dirty))
		for _, v := range dirty {
			b = append(b, delta{v, w.racc[v]})
			w.racc[v] = s.id
			w.rqueued[v] = false
		}
		w.rdirty[dst] = dirty[:0]
		w.outCount -= len(b)
		w.sentDeltas += int64(len(b))
		w.sentBatches++
		if !w.send(s, dst, b) {
			return false
		}
	}
	return true
}

// pop removes the next vertex from the ring worklist.
func (w *worker) pop() graph.VertexID {
	v := w.ring[w.head]
	w.head++
	if w.head == len(w.ring) {
		w.head = 0
	}
	w.count--
	return v
}

// processChunk pops and activates up to processChunk owned vertices,
// propagating along out-edges: local destinations go straight back into the
// ring, remote ones into the outbound coalescing maps. Returns false when
// the fleet is stopping.
func (w *worker) processChunk(s *solver) bool {
	for i := 0; i < processChunk && w.count > 0; i++ {
		if w.activations%ctxPollInterval == 0 && s.canceled(w) {
			return false
		}
		v := w.pop()
		off := v - w.lo
		w.inList[off] = false
		d := w.acc[off]
		old := s.state[v]
		next := s.alg.Reduce(old, d)
		w.activations++
		if !s.alg.Changed(old, next) {
			// Retain the sub-threshold delta in the accumulator instead of
			// absorbing it unpropagated: cross-shard batching fragments what
			// the serial schedule would deliver as one delta, and dropping
			// each fragment would lose more propagation mass than serial
			// does. The residual coalesces with the next arriving delta (or
			// folds into state at termination), keeping sum-based
			// algorithms within the serial solver's tolerance band.
			s.finish(1)
			continue
		}
		s.state[v] = next
		w.acc[off] = s.id
		{
			deg := s.g.OutDegree(v)
			weights := s.g.NeighborWeights(v)
			for j, dst := range s.g.Neighbors(v) {
				wt := float32(1)
				if weights != nil {
					wt = weights[j]
				}
				out := s.alg.Propagate(d, algorithms.EdgeContext{
					Src: v, Dst: dst, Weight: wt, SrcOutDegree: deg,
				})
				w.emitted++
				if dst >= w.lo && dst < w.hi {
					w.pushLocal(s, dst, out)
				} else {
					w.bufferRemote(s, s.part.SliceOf(dst), dst, out)
				}
			}
		}
		s.finish(1)
		if w.outCount >= s.cfg.BatchSize {
			if !w.flushAll(s) {
				return false
			}
		}
	}
	return true
}

// run is the worker main loop: drain inbox, process a chunk, flush on local
// quiescence, then sleep until cross-shard work arrives or the fleet
// terminates.
func (w *worker) run(s *solver) {
	defer s.wg.Done()
	worked := false
	for {
		// Merge every delivered batch before the next chunk so remote
		// deltas coalesce with queued local ones instead of re-activating.
		for {
			select {
			case b := <-w.inbox:
				w.integrate(s, b)
				continue
			default:
			}
			break
		}
		if w.count > 0 {
			if !w.processChunk(s) {
				return
			}
			worked = true
			continue
		}
		// Local quiescence: everything buffered must reach its owner before
		// this worker may idle, or the counter could never reach zero.
		if !w.flushAll(s) {
			return
		}
		if worked {
			w.rounds++
			worked = false
		}
		if w.count > 0 {
			// send() integrated inbound batches while flushing.
			continue
		}
		select {
		case b := <-w.inbox:
			w.integrate(s, b)
		case <-s.done:
			return
		case <-s.stop:
			return
		}
	}
}
