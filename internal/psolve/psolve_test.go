package psolve_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/conformance"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/psolve"
	"graphpulse/internal/sim"
)

// testShapes spans the regimes that stress the sharded solver differently:
// power-law skew (imbalanced shards), a grid (boundary-heavy cuts), a chain
// (worst-case sequential dependence across every shard boundary), and a
// star (one hub shard feeding all others).
func testShapes(t *testing.T) map[string]*graph.CSR {
	t.Helper()
	shapes := map[string]*graph.CSR{}
	var err error
	if shapes["rmat"], err = gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Scale: 8, EdgeFactor: 4, Weighted: true, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if shapes["grid"], err = gen.Grid2D(9, 7, true, 2); err != nil {
		t.Fatal(err)
	}
	if shapes["chain"], err = gen.Chain(60, true); err != nil {
		t.Fatal(err)
	}
	if shapes["star"], err = gen.Star(40); err != nil {
		t.Fatal(err)
	}
	return shapes
}

// TestMatchesSerial checks the tentpole contract on a focused matrix: for
// every shape × algorithm × worker count, the parallel solver's fixed point
// agrees with the serial golden model within the repository tolerance
// policy (exactly, for the monotone algorithms). The full shapes ×
// algorithms conformance matrix runs in internal/conformance.
func TestMatchesSerial(t *testing.T) {
	algs := []string{"pagerank-delta", "sssp", "connected-components"}
	for shapeName, g := range testShapes(t) {
		for _, algName := range algs {
			ac, err := conformance.AlgCaseByName(algName)
			if err != nil {
				t.Fatal(err)
			}
			pg := ac.Prepared(g)
			root := conformance.BestRoot(pg)
			want := algorithms.Solve(pg, ac.New(root))
			tol := conformance.Tolerance(ac.New(root), pg)
			for _, workers := range []int{1, 2, 3, 8} {
				t.Run(fmt.Sprintf("%s/%s/w%d", shapeName, algName, workers), func(t *testing.T) {
					res, err := psolve.SolveCtx(nil, pg, ac.New(root), psolve.Config{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("psolve[w=%d] vs solve on %s/%s", workers, shapeName, algName)
					if err := conformance.CompareValues(label, res.Values, want.Values, tol); err != nil {
						t.Fatal(err)
					}
					checkCounters(t, res, workers)
				})
			}
		}
	}
}

// checkCounters asserts the Result counters are internally consistent.
func checkCounters(t *testing.T, res *psolve.Result, requested int) {
	t.Helper()
	if res.Workers < 1 || res.Workers > requested {
		t.Fatalf("Workers = %d, want 1..%d", res.Workers, requested)
	}
	if len(res.WorkerActivations) != res.Workers {
		t.Fatalf("len(WorkerActivations) = %d, want %d", len(res.WorkerActivations), res.Workers)
	}
	var sum int64
	for _, a := range res.WorkerActivations {
		sum += a
	}
	if sum != res.Activations {
		t.Fatalf("WorkerActivations sum %d != Activations %d", sum, res.Activations)
	}
	if res.Activations <= 0 {
		t.Fatalf("Activations = %d, want > 0", res.Activations)
	}
	if res.Workers == 1 {
		if res.CrossShardDeltas != 0 || res.CrossShardBatches != 0 || res.CutEdges != 0 {
			t.Fatalf("single shard moved cross-shard work: deltas=%d batches=%d cut=%d",
				res.CrossShardDeltas, res.CrossShardBatches, res.CutEdges)
		}
	}
}

// TestTinyBatches forces a flush after nearly every remote delta, stressing
// the exchange and termination machinery far harder than the default batch
// size would.
func TestTinyBatches(t *testing.T) {
	g, err := gen.Chain(60, true)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.Solve(g, algorithms.NewSSSP(0))
	res, err := psolve.SolveCtx(nil, g, algorithms.NewSSSP(0), psolve.Config{Workers: 8, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.CompareValues("psolve[batch=1] vs solve", res.Values, want.Values, 0); err != nil {
		t.Fatal(err)
	}
	if res.CrossShardDeltas == 0 {
		t.Fatal("chain across 8 shards exchanged no cross-shard deltas")
	}
}

// TestDegenerateGraphs covers the shard-count edge cases.
func TestDegenerateGraphs(t *testing.T) {
	empty, err := graph.FromEdges(0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := psolve.SolveCtx(nil, empty, algorithms.NewConnectedComponents(), psolve.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 || res.Activations != 0 {
		t.Fatalf("empty graph: got %d values, %d activations", len(res.Values), res.Activations)
	}

	single, err := graph.FromEdges(1, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err = psolve.SolveCtx(nil, single, algorithms.NewConnectedComponents(), psolve.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 1 {
		t.Fatalf("single vertex: %d workers, want 1", res.Workers)
	}
	want := algorithms.Solve(single, algorithms.NewConnectedComponents())
	if err := conformance.CompareValues("psolve single vertex", res.Values, want.Values, 0); err != nil {
		t.Fatal(err)
	}

	// More workers than vertices: the shard count clamps to n.
	tiny, err := gen.Chain(3, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err = psolve.SolveCtx(nil, tiny, algorithms.NewBFS(0), psolve.Config{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers > 3 {
		t.Fatalf("3-vertex graph ran %d workers", res.Workers)
	}
	want = algorithms.Solve(tiny, algorithms.NewBFS(0))
	if err := conformance.CompareValues("psolve clamped workers", res.Values, want.Values, 0); err != nil {
		t.Fatal(err)
	}
}

// TestCanceled verifies the cancellation contract: a canceled context stops
// the fleet with an error wrapping sim.ErrCanceled, like every other engine.
func TestCanceled(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Scale: 8, EdgeFactor: 4, Weighted: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = psolve.SolveCtx(ctx, g, algorithms.NewPageRankDelta(), psolve.Config{Workers: 4})
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("canceled solve returned %v, want sim.ErrCanceled", err)
	}
}

// TestDeterministicForMonotone: the monotone algorithms have a unique fixed
// point, so repeated parallel runs must agree bit-for-bit regardless of
// scheduling.
func TestDeterministicForMonotone(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Scale: 8, EdgeFactor: 4, Weighted: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := conformance.BestRoot(g)
	first, err := psolve.SolveCtx(nil, g, algorithms.NewSSSP(root), psolve.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := psolve.SolveCtx(nil, g, algorithms.NewSSSP(root), psolve.Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := conformance.CompareValues("psolve run-to-run", res.Values, first.Values, 0); err != nil {
			t.Fatal(err)
		}
	}
}
