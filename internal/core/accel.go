package core

import (
	"context"
	"fmt"
	"sort"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/partition"
	"graphpulse/internal/mem"
	"graphpulse/internal/sim"
	"graphpulse/internal/sim/fault"
	"graphpulse/internal/sim/stats"
	"graphpulse/internal/sim/telemetry"
)

// Figure 13's chronological execution stages.
const (
	stageVtxMem    = "vtx_mem"
	stageProcess   = "process"
	stageGenBuffer = "gen_buffer"
	stageEdgeMem   = "edge_mem"
	stageGenerate  = "generate"
)

// StageNames lists the Figure 13 stages in chronological order.
var StageNames = []string{stageVtxMem, stageProcess, stageGenBuffer, stageEdgeMem, stageGenerate}

// newStageTimer builds the Figure 13 stage timer.
func newStageTimer() *stats.StageTimer { return stats.NewStageTimer(StageNames...) }

// Scheduler phases.
const (
	phaseSwapIn = iota
	phaseDrain
	phaseQuiesce
	phaseIdle // cluster mode: waiting for remote events
	phaseFlush
	phaseDone
)

type stageBlock struct {
	events []Event
	proc   int
}

// Accelerator is one GraphPulse instance wired to an algorithm and a graph.
// Construct with New, run with Run; an Accelerator is single-use.
type Accelerator struct {
	cfg    Config
	alg    algorithms.Algorithm
	g      graph.Adjacency
	engine *sim.Engine
	memory *mem.Memory
	fetch  *mem.Fetcher

	state     []float64
	edgeBytes uint64
	prog      algorithms.Progressor // nil if unsupported

	// remote, when set (multi-accelerator cluster mode), receives events
	// whose destination lies outside this chip's slice instead of the
	// spill buffers. It returns false to backpressure the emitting stream.
	remote func(ev Event) bool

	slices   []partition.Slice
	curSlice int
	queue    *coalescingQueue
	xbar     *crossbar
	spill    *spillBuffers
	procs    []*processor
	gens     []*genUnit

	// Scheduler state.
	phase       int
	drainIdx    int   // position in binOrder
	binOrder    []int // bin drain order for the current round
	drainCursor int
	staging     []*stageBlock
	rrProc      int
	globalStop  bool

	// Swap-in state.
	pendingInserts []Event
	availInserts   int
	swapReadAddr   uint64
	spillWriteAddr uint64
	spillCarry     int

	// Round bookkeeping.
	round          int
	roundLog       []RoundStats
	roundProcessed int64
	roundProgress  float64
	roundLook      [LookaheadBuckets]int64
	snapInserted   int64
	snapCoalesced  int64
	// foldInserted/foldCoalesced accumulate earlier rounds' queue counters
	// so telemetry rate probes stay monotone across per-slice queue
	// replacement (activateSlice builds a fresh queue with zeroed counters).
	foldInserted  int64
	foldCoalesced int64
	// foldRedelivered accumulates replaced queues' duplicate-discard counts.
	foldRedelivered int64

	// Cumulative counters.
	eventsProcessed   int64
	eventsEmitted     int64
	spilledEvents     int64
	sliceSwitches     int64
	drainStalls       int64
	extraVertexUseful int64

	// Robustness state. initialEvents/discardedEvents feed the
	// event-conservation balance sheet; spillRecovered counts events
	// re-read after an injected spill loss; wdErr latches a watchdog trip.
	inj             *fault.Injector // nil unless Config.Fault enables faults
	initialEvents   int64
	discardedEvents int64
	spillRecovered  int64
	wdStrikes       int
	wdErr           *ConservationError

	// Run-control state (RunWithOptions).
	opts           RunOptions
	lastCheckpoint uint64
	ckErr          error

	stage *stats.StageTimer
	trace *tracer             // nil unless Config.TraceVertices
	tel   *telemetry.Recorder // nil unless Config.Telemetry is enabled
}

// New builds an accelerator for running alg over g. The graph is partitioned
// into slices if it exceeds cfg.QueueCapacity (Section IV-F).
func New(cfg Config, g graph.Adjacency, alg algorithms.Algorithm) (*Accelerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	a := &Accelerator{
		cfg:       cfg,
		alg:       alg,
		g:         g,
		engine:    sim.NewEngine(),
		edgeBytes: algorithms.EdgeRecordBytes(alg),
		stage:     newStageTimer(),
	}
	a.prog, _ = alg.(algorithms.Progressor)
	a.trace = newTracer(cfg.TraceVertices)
	a.inj = fault.New(cfg.Fault)
	a.memory = mem.New(cfg.Memory)
	a.memory.InjectFaults(a.inj)
	a.fetch = mem.NewFetcher(a.memory)
	a.engine.Register(a.memory)
	a.engine.Register(a)

	n := g.NumVertices()
	capacity := cfg.QueueCapacity
	if capacity == 0 || capacity >= n {
		a.slices = []partition.Slice{{Lo: 0, Hi: graph.VertexID(n)}}
	} else {
		p, err := partition.Contiguous(g, capacity, 2)
		if err != nil {
			return nil, err
		}
		a.slices = p.Slices
	}
	a.spill = newSpillBuffers(len(a.slices))

	a.state = make([]float64, n)
	for v := 0; v < n; v++ {
		a.state[v] = alg.InitState(graph.VertexID(v))
	}

	a.procs = make([]*processor, cfg.NumProcessors)
	for i := range a.procs {
		a.procs[i] = newProcessor(a, i)
	}
	if cfg.DecoupledGeneration {
		a.gens = make([]*genUnit, cfg.NumProcessors)
		for i := range a.gens {
			a.gens[i] = newGenUnit(a)
		}
	}
	a.xbar = newCrossbar(cfg.CrossbarPorts, cfg.NetworkQueueDepth)
	a.xbar.inj = a.inj

	// Distribute the bootstrap events to their slices. Initial events are
	// host-written (Section III-B), so activation below charges insertion
	// cycles but no DRAM traffic for them.
	for _, ev := range alg.InitialEvents(g) {
		a.spill.add(a.sliceOf(ev.Vertex), Event{Target: ev.Vertex, Delta: ev.Delta})
		a.initialEvents++
	}
	first := a.spill.nextNonEmpty(len(a.slices) - 1)
	if first == -1 {
		first = 0
	}
	a.activateSlice(first, false)
	// The recorder is registered last so it samples end-of-cycle state
	// after every block (memory, accelerator) has ticked; probes only read,
	// so results are bit-identical with telemetry on or off.
	if a.tel = telemetry.New(cfg.Telemetry); a.tel != nil {
		a.registerTelemetry(a.tel, "")
		a.engine.Register(a.tel)
	}
	return a, nil
}

// sliceOf returns the slice index owning global vertex v.
func (a *Accelerator) sliceOf(v graph.VertexID) int {
	lo, hi := 0, len(a.slices)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case v < a.slices[mid].Lo:
			hi = mid
		case v >= a.slices[mid].Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// globalID converts a slice-local event target to a global vertex id.
func (a *Accelerator) globalID(local graph.VertexID) graph.VertexID {
	return a.slices[a.curSlice].Lo + local
}

// activateSlice installs slice s: builds a fresh coalescing queue sized to
// the slice and stages its spilled events for insertion. When charged is
// true the event stream is read back from the off-chip spill region.
func (a *Accelerator) activateSlice(s int, charged bool) {
	if a.queue != nil {
		// The per-slice queue is about to be replaced; fold its duplicate-
		// discard count so reports stay cumulative across slices.
		a.foldRedelivered += a.queue.redelivered
	}
	a.curSlice = s
	sl := a.slices[s]
	a.queue = newMappedQueue(sl.NumVertices(), a.cfg.NumBins, a.cfg.BinCols,
		a.cfg.Mapping, a.cfg.CoalesceDisabled, a.alg.Reduce)
	a.pendingInserts = a.spill.take(s)
	a.availInserts = len(a.pendingInserts)
	// Spill-loss faults: the swap-in stream drops events (a failed read of
	// the spill region). Loss is detected — the spill buffer is a journal
	// with known event counts — and recovered by re-reading the affected
	// lines, so no event is lost; the cost is the extra DRAM traffic
	// charged below.
	lost := uint64(0)
	if a.inj != nil {
		for range a.pendingInserts {
			if a.inj.Decide(fault.PointSpillLoss) {
				lost++
			}
		}
		a.spillRecovered += int64(lost)
	}
	if charged {
		a.availInserts = 0
		bytes := uint64(len(a.pendingInserts)) * 16
		lines := (bytes+mem.LineBytes-1)/mem.LineBytes + lost // + recovery re-reads
		for l := uint64(0); l < lines; l++ {
			a.fetch.Fetch(spillBase+a.swapReadAddr, mem.LineBytes, mem.LineBytes, false, func() {
				a.availInserts += mem.LineBytes / 16
			})
			a.swapReadAddr += mem.LineBytes
		}
	}
	a.phase = phaseSwapIn
	a.snapInserted = 0
	a.snapCoalesced = 0
}

// edgeAddr returns the simulated byte address of edge record i.
func (a *Accelerator) edgeAddr(i uint64) uint64 {
	return edgeBase + i*a.edgeBytes
}

// edgeLineUseful computes how many bytes of the 64-byte line at `line` the
// task will actually consume.
func (a *Accelerator) edgeLineUseful(line uint64, t *genTask) uint64 {
	start := a.edgeAddr(t.edgeStart)
	end := a.edgeAddr(t.edgeStart + uint64(t.degree))
	lo, hi := line, line+mem.LineBytes
	if start > lo {
		lo = start
	}
	if end < hi {
		hi = end
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// writebackVertexLine writes an evicted dirty scratchpad line; dirty counts
// the vertex updates batched into it.
func (a *Accelerator) writebackVertexLine(addr uint64, dirty int) {
	useful := uint64(dirty) * 8
	if useful > mem.LineBytes {
		useful = mem.LineBytes
	}
	a.fetch.Fetch(addr, mem.LineBytes, useful, true, nil)
}

// submitGen hands a generation task to the processor's generation unit.
func (a *Accelerator) submitGen(proc int, t *genTask) bool {
	return a.gens[proc].submit(t)
}

// emitEdge produces the outgoing event for edge idx of task t, routing it
// to the coalescing queue (in-slice) or a spill buffer (cross-slice). It
// returns false when the delivery network refuses the event this cycle.
func (a *Accelerator) emitEdge(t *genTask, idx int) bool {
	edge := t.edgeStart + uint64(idx)
	dst := a.g.EdgeDst(edge)
	out := a.alg.Propagate(t.delta, algorithms.EdgeContext{
		Src:          t.src,
		Dst:          dst,
		Weight:       a.g.EdgeWeight(edge),
		SrcOutDegree: t.degree,
	})
	sl := a.slices[a.curSlice]
	if dst >= sl.Lo && dst < sl.Hi {
		if !a.xbar.offer(Event{Target: dst - sl.Lo, Delta: out, Lookahead: t.look}) {
			return false
		}
		a.trace.record(a.engine.Cycle(), dst, TraceEmit, out, float64(t.src))
		a.eventsEmitted++
		return true
	}
	if a.remote != nil {
		if !a.remote(Event{Target: dst, Delta: out, Lookahead: t.look}) {
			return false
		}
		a.trace.record(a.engine.Cycle(), dst, TraceSpill, out, float64(t.src))
		a.eventsEmitted++
		a.spilledEvents++
		return true
	}
	a.trace.record(a.engine.Cycle(), dst, TraceSpill, out, float64(t.src))
	a.spill.add(a.sliceOf(dst), Event{Target: dst, Delta: out, Lookahead: t.look})
	a.eventsEmitted++
	a.spilledEvents++
	// Spilled events pack into sequential off-chip bursts (Section IV-F:
	// "We buffer the events that are outbound to each slice to fill a DRAM
	// page with burst-write").
	a.spillCarry += 16
	for a.spillCarry >= mem.LineBytes {
		a.fetch.Fetch(spillBase+a.spillWriteAddr, mem.LineBytes, mem.LineBytes, true, nil)
		a.spillWriteAddr += mem.LineBytes
		a.spillCarry -= mem.LineBytes
	}
	return true
}

// observeLookahead buckets a processed event's lookahead for Figure 8.
func (a *Accelerator) observeLookahead(l uint32) {
	a.roundLook[LookaheadBucket(l)]++
}

// Name implements sim.Component.
func (a *Accelerator) Name() string { return a.cfg.Name }

// Tick advances the whole accelerator one cycle.
func (a *Accelerator) Tick(cycle uint64) {
	a.fetch.Pump()
	drainedBin := -1
	switch a.phase {
	case phaseSwapIn:
		a.swapInStep()
	case phaseDrain:
		drainedBin = a.drainStep()
	}
	a.dispatchStep(cycle)
	for _, p := range a.procs {
		// Fully idle processors just accrue idle time; skipping the state
		// machine keeps the 256-processor baseline fast to simulate.
		if len(p.input) == 0 && p.pendingGen == nil && p.gen == nil && !p.directIssued {
			p.stateHist[procStateIdle]++
			continue
		}
		p.tick(cycle)
	}
	for _, u := range a.gens {
		u.tick(cycle)
	}
	a.xbar.deliver(a.queue, drainedBin)
	a.transition(cycle)
	a.watchdogCheck(cycle)
}

// swapInStep inserts staged events through the bins' parallel insertion
// pipelines, up to one per bin per cycle.
func (a *Accelerator) swapInStep() {
	n := a.cfg.NumBins
	if n > a.availInserts {
		n = a.availInserts
	}
	if n > len(a.pendingInserts) {
		n = len(a.pendingInserts)
	}
	lo := a.slices[a.curSlice].Lo
	for i := 0; i < n; i++ {
		ev := a.pendingInserts[i]
		ev.Target -= lo // spill buffers hold global ids
		a.queue.insert(ev)
	}
	a.pendingInserts = a.pendingInserts[n:]
	a.availInserts -= n
	if len(a.pendingInserts) == 0 {
		a.startRound()
	}
}

// startRound computes the bin drain order for the next round and enters the
// drain phase.
func (a *Accelerator) startRound() {
	if cap(a.binOrder) < a.cfg.NumBins {
		a.binOrder = make([]int, a.cfg.NumBins)
	}
	a.binOrder = a.binOrder[:a.cfg.NumBins]
	for i := range a.binOrder {
		a.binOrder[i] = i
	}
	if a.cfg.Schedule == ScheduleDensestFirst {
		sort.SliceStable(a.binOrder, func(i, j int) bool {
			return a.queue.binPopulation(a.binOrder[i]) > a.queue.binPopulation(a.binOrder[j])
		})
	}
	a.phase = phaseDrain
	a.drainIdx, a.drainCursor = 0, 0
}

// drainStep removes one occupied row from the current bin per cycle and
// stages it as a block bound for one processor. Returns the bin drained
// this cycle (insertions to it stall), or -1.
func (a *Accelerator) drainStep() int {
	const stagingCap = 4
	if len(a.staging) >= stagingCap {
		a.drainStalls++
		return -1
	}
	for a.drainIdx < len(a.binOrder) {
		bin := a.binOrder[a.drainIdx]
		r := a.queue.nextOccupiedRow(bin, a.drainCursor)
		if r == -1 {
			a.drainIdx++
			a.drainCursor = 0
			continue
		}
		events := a.queue.drainRow(bin, r)
		a.drainCursor = r + 1
		a.staging = append(a.staging, &stageBlock{events: events, proc: a.rrProc})
		a.rrProc = (a.rrProc + 1) % len(a.procs)
		return bin
	}
	a.phase = phaseQuiesce
	return -1
}

// dispatchStep moves staged events into processor input buffers through the
// scheduler's arbiter network. Whole rows go to one processor so drained
// blocks stay contiguous for the prefetcher.
func (a *Accelerator) dispatchStep(cycle uint64) {
	bw := a.cfg.CrossbarPorts
	kept := a.staging[:0]
	for _, blk := range a.staging {
		p := a.procs[blk.proc]
		for bw > 0 && len(blk.events) > 0 && p.tryPush(blk.events[0], cycle) {
			blk.events = blk.events[1:]
			bw--
		}
		if len(blk.events) > 0 {
			kept = append(kept, blk)
		}
	}
	a.staging = kept
}

// quiescent reports whether all in-flight work has landed back in the queue
// or spill buffers.
func (a *Accelerator) quiescent() bool {
	if len(a.staging) > 0 || !a.xbar.empty() {
		return false
	}
	for _, p := range a.procs {
		if !p.idle() {
			return false
		}
	}
	for _, u := range a.gens {
		if !u.idle() {
			return false
		}
	}
	return true
}

// transition runs the scheduler's end-of-round and termination logic
// (Section IV-C): after a full pass over the bins it waits for all units to
// go idle — the guarantee that at most one event per vertex is in flight —
// then starts the next round, switches slices, or terminates.
func (a *Accelerator) transition(cycle uint64) {
	switch a.phase {
	case phaseQuiesce:
		if !a.quiescent() {
			return
		}
		processed := a.roundProcessed
		progress := a.roundProgress
		a.endRound()
		// Optional global termination (Section IV-C): when a full pass over
		// the queue makes negligible global progress, stop even though
		// sub-threshold events remain.
		if a.cfg.GlobalProgressThreshold > 0 && a.prog != nil &&
			processed > 0 && progress < a.cfg.GlobalProgressThreshold {
			a.globalStop = true
			// Sub-threshold events are discarded deliberately; book them so
			// the conservation watchdog doesn't read the purge as a loss.
			a.discardedEvents += int64(len(a.queue.drainAll()))
			for i := range a.spill.perSlice {
				a.discardedEvents += int64(len(a.spill.take(i)))
			}
		}
		a.maybeCheckpoint(cycle)
		switch {
		case a.queue.population > 0:
			a.startRound()
		case a.spill.total > 0:
			next := a.spill.nextNonEmpty(a.curSlice)
			a.sliceSwitches++
			a.flushScratchpads()
			a.activateSlice(next, true)
		case a.remote != nil:
			// Cluster mode: other chips may still stream events here; park
			// until the cluster declares global termination.
			a.phase = phaseIdle
		default:
			a.flushScratchpads()
			a.phase = phaseFlush
		}
	case phaseIdle:
		if a.queue.population > 0 {
			a.startRound()
		}
	case phaseFlush:
		if a.fetch.Idle() && a.memory.Pending() == 0 {
			// Terminal audit: the balance sheet must be exact here even on
			// runs too short for the periodic watchdog to accumulate strikes.
			if a.finalConservationCheck() {
				a.phase = phaseDone
			}
		}
	}
}

func (a *Accelerator) flushScratchpads() {
	for _, p := range a.procs {
		if p.scratch != nil {
			p.scratch.flush(a.writebackVertexLine)
		}
	}
}

// endRound snapshots per-round statistics (Figures 4 and 8).
func (a *Accelerator) endRound() {
	rs := RoundStats{
		Round:     a.round,
		Slice:     a.curSlice,
		Produced:  a.queue.inserted - a.snapInserted,
		Coalesced: a.queue.coalesced - a.snapCoalesced,
		Processed: a.roundProcessed,
		Remaining: a.queue.population,
		Progress:  a.roundProgress,
		Lookahead: a.roundLook,
	}
	a.roundLog = append(a.roundLog, rs)
	a.foldInserted += rs.Produced
	a.foldCoalesced += rs.Coalesced
	a.snapInserted = a.queue.inserted
	a.snapCoalesced = a.queue.coalesced
	a.roundProcessed = 0
	a.roundProgress = 0
	a.roundLook = [LookaheadBuckets]int64{}
	a.round++
}

// RunOptions controls one accelerator run beyond the Config: wall-clock
// cancellation and periodic checkpointing. The zero value runs to
// termination exactly like Run.
type RunOptions struct {
	// Ctx cancels the run by wall clock: when it is done, Run returns an
	// error wrapping sim.ErrCanceled. nil disables cancellation.
	Ctx context.Context
	// CheckpointEvery requests a checkpoint at the first scheduler round
	// barrier after this many cycles elapse since the previous one
	// (0 = never). Round barriers are the quiescent points — every event is
	// in the queue or a spill buffer — so the snapshot is exact.
	CheckpointEvery uint64
	// OnCheckpoint receives each checkpoint (e.g. WriteCheckpoint to disk).
	// A non-nil error aborts the run and is returned by RunWithOptions.
	OnCheckpoint func(*Checkpoint) error
}

// Run simulates to termination and returns the result. It fails with
// sim.ErrDeadline if MaxCycles elapses first (a lost-event bug, not a slow
// graph: termination is guaranteed for monotone algorithms and
// threshold-bounded for the rest) and with an error wrapping
// ErrConservation if the event-conservation watchdog trips.
func (a *Accelerator) Run() (*Result, error) {
	return a.RunWithOptions(RunOptions{})
}

// RunWithOptions runs like Run with cancellation and checkpointing.
func (a *Accelerator) RunWithOptions(opts RunOptions) (*Result, error) {
	a.opts = opts
	a.lastCheckpoint = a.engine.Cycle()
	err := a.engine.RunUntil(opts.Ctx, func() bool {
		return a.phase == phaseDone || a.wdErr != nil || a.ckErr != nil
	}, a.cfg.MaxCycles)
	if a.wdErr != nil {
		return nil, a.wdErr
	}
	if a.ckErr != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", a.ckErr)
	}
	if err != nil {
		return nil, err
	}
	return a.result(), nil
}

func (a *Accelerator) result() *Result {
	ms := a.memory.Stats()
	r := &Result{
		Config:             a.cfg.Name,
		Algorithm:          a.alg.Name(),
		Values:             a.state,
		Cycles:             a.engine.Cycle(),
		Seconds:            a.engine.SecondsAt(a.cfg.ClockHz),
		Rounds:             a.round,
		Slices:             len(a.slices),
		SliceSwitches:      a.sliceSwitches,
		EventsProcessed:    a.eventsProcessed,
		EventsEmitted:      a.eventsEmitted,
		EventsCoalesced:    a.queue.coalesced,
		SpilledEvents:      a.spilledEvents,
		MemReads:           ms.Counter("reads"),
		MemWrites:          ms.Counter("writes"),
		BytesMoved:         ms.Counter("bytes_transferred"),
		BytesUseful:        ms.Counter("bytes_useful") + a.extraVertexUseful,
		RowHits:            ms.Counter("row_hits"),
		RowMisses:          ms.Counter("row_misses"),
		MemFaults:          ms.Counter("dram_faults"),
		MemRetries:         ms.Counter("dram_retries"),
		DroppedEvents:      a.xbar.dropped,
		RedeliveredEvents:  a.foldRedelivered + a.queue.redelivered,
		ReorderedEvents:    a.xbar.reordered,
		DiscardedEvents:    a.discardedEvents,
		SpillRecovered:     a.spillRecovered,
		FaultsInjected:     a.inj.Snapshot(),
		RoundLog:           a.roundLog,
		TerminatedGlobally: a.globalStop,
		StageMeans:         make(map[string]float64, len(StageNames)),
		ProcBreakdown:      make(map[string]float64, numProcStates),
		GenBreakdown:       make(map[string]float64, numGenStates),
	}
	if r.BytesMoved > 0 {
		if r.BytesUseful > r.BytesMoved {
			r.BytesUseful = r.BytesMoved
		}
		r.Utilization = float64(r.BytesUseful) / float64(r.BytesMoved)
	} else {
		r.Utilization = 1
	}
	if a.trace != nil {
		r.Trace = a.trace.entries
	}
	r.Telemetry = a.tel
	// Coalesced counts from earlier slices' queues are folded into the
	// round log; recompute the total from it.
	r.EventsCoalesced = 0
	for _, rs := range a.roundLog {
		r.EventsCoalesced += rs.Coalesced
	}
	for _, s := range StageNames {
		r.StageMeans[s] = a.stage.MeanCycles(s)
	}
	var pc [numProcStates]int64
	var total int64
	for _, p := range a.procs {
		for i, c := range p.stateHist {
			pc[i] += c
			total += c
		}
	}
	if total > 0 {
		r.ProcBreakdown["vertex_read"] = float64(pc[procStateVertexRead]) / float64(total)
		r.ProcBreakdown["process"] = float64(pc[procStateProcess]) / float64(total)
		r.ProcBreakdown["stalling"] = float64(pc[procStateStalling]) / float64(total)
		r.ProcBreakdown["idle"] = float64(pc[procStateIdle]) / float64(total)
	}
	var gc [numGenStates]int64
	var gtotal int64
	for _, u := range a.gens {
		for i, c := range u.stateHist {
			gc[i] += c
			gtotal += c
		}
	}
	if gtotal > 0 {
		r.GenBreakdown["edge_read"] = float64(gc[genStateEdgeRead]) / float64(gtotal)
		r.GenBreakdown["generate"] = float64(gc[genStateGenerate]) / float64(gtotal)
		r.GenBreakdown["idle"] = float64(gc[genStateIdle]) / float64(gtotal)
	}
	return r
}
