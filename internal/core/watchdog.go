package core

import (
	"errors"
	"fmt"
)

// The event-conservation watchdog audits the paper's §IV correctness
// invariant at runtime: no event is ever lost between generation,
// coalescing, spilling, and scheduling. Every event the model has ever
// owned must be accounted for as either consumed (processed, coalesced
// into another event, or deliberately discarded by global termination) or
// still resident somewhere in the machine:
//
//	initial + emitted  =  processed + coalesced + discarded + resident
//
// where resident sums the coalescing queue, the delivery network, staged
// drain blocks, processor input buffers, spill buffers, and the swap-in
// pipeline. The balance holds exactly at the end of every cycle, so any
// sustained nonzero imbalance is a lost (or manufactured) event — an
// injected drop fault, or a genuine scheduler bug. Without the watchdog
// such a loss either wedges the run until MaxCycles (a dangling vertex
// waits forever) or, worse, lets it terminate with silently wrong values.

// defaultWatchdogInterval is the audit period in cycles when
// Config.WatchdogInterval is zero.
const defaultWatchdogInterval = 2048

// watchdogStrikes is how many consecutive imbalanced audits arm the trip.
// A real loss is permanent, so it accumulates strikes at every audit;
// requiring several guards against a future transiently-imbalanced code
// path turning into a false positive.
const watchdogStrikes = 3

// ErrConservation reports a violated event-conservation invariant. Errors
// returned by Run wrap it together with a *ConservationError snapshot:
//
//	var ce *core.ConservationError
//	if errors.As(err, &ce) { ... ce.Imbalance, ce.Resident ... }
var ErrConservation = errors.New("core: event conservation violated")

// ResidentBreakdown itemizes where events were resident when the watchdog
// tripped.
type ResidentBreakdown struct {
	// Queue is the coalescing-queue population of the active slice.
	Queue int64
	// Network is the delivery crossbar's buffered events.
	Network int64
	// Staged counts events in drained-but-undispatched row blocks.
	Staged int64
	// ProcInputs counts events in processor input buffers.
	ProcInputs int64
	// Spill counts events parked in inter-slice spill buffers.
	Spill int64
	// PendingInserts counts events in the slice swap-in pipeline.
	PendingInserts int64
	// Egress and Inflight count events on the cluster interconnect
	// (zero on single-chip runs).
	Egress   int64
	Inflight int64
}

// Total sums every resident location.
func (rb ResidentBreakdown) Total() int64 {
	return rb.Queue + rb.Network + rb.Staged + rb.ProcInputs +
		rb.Spill + rb.PendingInserts + rb.Egress + rb.Inflight
}

// ConservationError is the diagnostic snapshot attached to a watchdog trip.
// It unwraps to ErrConservation.
type ConservationError struct {
	// Cycle is when the watchdog tripped.
	Cycle uint64
	// Imbalance is (Initial+Emitted) − (Processed+Coalesced+Discarded) −
	// resident: positive means events vanished, negative means events were
	// manufactured.
	Imbalance int64

	// The balance-sheet terms at trip time.
	Initial   int64
	Emitted   int64
	Processed int64
	Coalesced int64
	// Discarded counts events deliberately dropped by global termination.
	Discarded int64
	// Redelivered counts duplicate deliveries absorbed by the coalescer
	// (informational; redeliveries never unbalance the sheet).
	Redelivered int64
	// Resident itemizes where the surviving events sat.
	Resident ResidentBreakdown

	// Faults reports injected-fault counts by point name when a fault
	// injector was attached (nil otherwise) — on an injection run the
	// imbalance should equal the injected drop/kill count.
	Faults map[string]int64
}

// Error implements error with the full imbalance snapshot.
func (e *ConservationError) Error() string {
	return fmt.Sprintf("%v: imbalance %+d at cycle %d "+
		"(initial %d + emitted %d != processed %d + coalesced %d + discarded %d + resident %d "+
		"[queue %d net %d staged %d procs %d spill %d swapin %d egress %d inflight %d]; redelivered %d)",
		ErrConservation, e.Imbalance, e.Cycle,
		e.Initial, e.Emitted, e.Processed, e.Coalesced, e.Discarded, e.Resident.Total(),
		e.Resident.Queue, e.Resident.Network, e.Resident.Staged, e.Resident.ProcInputs,
		e.Resident.Spill, e.Resident.PendingInserts, e.Resident.Egress, e.Resident.Inflight,
		e.Redelivered)
}

// Unwrap lets errors.Is(err, ErrConservation) match.
func (e *ConservationError) Unwrap() error { return ErrConservation }

// watchdogInterval returns the audit period for this accelerator.
func (a *Accelerator) watchdogInterval() uint64 {
	if a.cfg.WatchdogInterval > 0 {
		return a.cfg.WatchdogInterval
	}
	return defaultWatchdogInterval
}

// residentEvents itemizes every event currently owned by this chip.
func (a *Accelerator) residentEvents() ResidentBreakdown {
	rb := ResidentBreakdown{
		Queue:          a.queue.population,
		Network:        int64(len(a.xbar.queue)),
		Spill:          a.spill.total,
		PendingInserts: int64(len(a.pendingInserts)),
	}
	for _, blk := range a.staging {
		rb.Staged += int64(len(blk.events))
	}
	for _, p := range a.procs {
		rb.ProcInputs += int64(len(p.input))
	}
	return rb
}

// coalescedTotal returns events absorbed by coalescing since the run
// started, across the per-slice queue replacements.
func (a *Accelerator) coalescedTotal() int64 {
	return a.foldCoalesced + (a.queue.coalesced - a.snapCoalesced)
}

// eventImbalance evaluates the conservation balance sheet. Zero on a
// healthy chip; on a cluster member the interconnect terms are settled by
// the cluster-level audit instead.
func (a *Accelerator) eventImbalance() int64 {
	return a.initialEvents + a.eventsEmitted -
		a.eventsProcessed - a.coalescedTotal() - a.discardedEvents -
		a.residentEvents().Total()
}

// conservationError builds the diagnostic snapshot for a trip at `cycle`.
func (a *Accelerator) conservationError(cycle uint64, imbalance int64) *ConservationError {
	return &ConservationError{
		Cycle:       cycle,
		Imbalance:   imbalance,
		Initial:     a.initialEvents,
		Emitted:     a.eventsEmitted,
		Processed:   a.eventsProcessed,
		Coalesced:   a.coalescedTotal(),
		Discarded:   a.discardedEvents,
		Redelivered: a.queue.redelivered,
		Resident:    a.residentEvents(),
		Faults:      a.inj.Snapshot(),
	}
}

// watchdogCheck runs one audit at the end of a cycle. Cluster members skip
// it: remote sends and receives unbalance a chip locally by design, so the
// cluster audits the summed sheet including link buffers instead.
func (a *Accelerator) watchdogCheck(cycle uint64) {
	if a.wdErr != nil || a.remote != nil || a.phase == phaseDone {
		return
	}
	if cycle%a.watchdogInterval() != 0 {
		return
	}
	imb := a.eventImbalance()
	if imb == 0 {
		a.wdStrikes = 0
		return
	}
	a.wdStrikes++
	if a.wdStrikes >= watchdogStrikes {
		a.wdErr = a.conservationError(cycle, imb)
	}
}

// finalConservationCheck audits once more at termination, where the sheet
// must balance exactly — it catches a loss on runs too short for the
// periodic audit to accumulate strikes (a dropped event often just shrinks
// the workload, letting the run "converge" to silently wrong values).
func (a *Accelerator) finalConservationCheck() bool {
	if a.wdErr != nil || a.remote != nil {
		return a.wdErr == nil
	}
	if imb := a.eventImbalance(); imb != 0 {
		a.wdErr = a.conservationError(a.engine.Cycle(), imb)
		return false
	}
	return true
}
