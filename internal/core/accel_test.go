package core

import (
	"math"
	"strings"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// testConfigs returns the two paper configurations with tight deadlines for
// tests.
func testConfigs() []Config {
	opt := OptimizedConfig()
	opt.MaxCycles = 200_000_000
	base := BaselineConfig()
	base.MaxCycles = 200_000_000
	return []Config{opt, base}
}

func tinyGraphs(t testing.TB) map[string]*graph.CSR {
	t.Helper()
	out := map[string]*graph.CSR{}
	var err error
	if out["chain"], err = gen.Chain(50, false); err != nil {
		t.Fatal(err)
	}
	if out["star"], err = gen.Star(64); err != nil {
		t.Fatal(err)
	}
	if out["grid"], err = gen.Grid2D(12, 12, true, 3); err != nil {
		t.Fatal(err)
	}
	if out["rmat"], err = gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// run executes alg on g under cfg and fails the test on error.
func run(t testing.TB, cfg Config, g *graph.CSR, alg algorithms.Algorithm) *Result {
	t.Helper()
	a, err := New(cfg, g, alg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", cfg.Name, alg.Name(), err)
	}
	return res
}

// assertValuesMatch compares engine output against the reference fixed
// point. tol is relative for values above 1 (threshold-bearing algorithms
// accumulate residue proportional to the value); exact matches and matching
// infinities always pass.
func assertValuesMatch(t *testing.T, label string, got, want []float64, tol float64) {
	t.Helper()
	bad := 0
	for v := range want {
		a, b := got[v], want[v]
		if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsInf(a, -1) && math.IsInf(b, -1)) {
			continue
		}
		if math.Abs(a-b) > tol*math.Max(1, math.Abs(b)) {
			bad++
			if bad <= 3 {
				t.Errorf("%s: vertex %d = %g, want %g", label, v, a, b)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d/%d vertices mismatched", label, bad, len(want))
	}
}

// TestAcceleratorMatchesOracle is the core integration test: both paper
// configurations must converge to the reference fixed point for every
// algorithm on every graph shape.
func TestAcceleratorMatchesOracle(t *testing.T) {
	graphs := tinyGraphs(t)
	for name, g := range graphs {
		algs := []struct {
			mk  func() algorithms.Algorithm
			tol float64
		}{
			{func() algorithms.Algorithm { return algorithms.NewBFS(0) }, 0},
			{func() algorithms.Algorithm { return algorithms.NewSSSP(0) }, 1e-9},
			{func() algorithms.Algorithm { return algorithms.NewReach(0) }, 0},
			{func() algorithms.Algorithm { return algorithms.NewConnectedComponents() }, 0},
			{func() algorithms.Algorithm { return algorithms.NewSSWP(0) }, 1e-9},
			{func() algorithms.Algorithm { return algorithms.NewPageRankDelta() }, 5e-3},
		}
		for _, tc := range algs {
			want := algorithms.Solve(g, tc.mk())
			for _, cfg := range testConfigs() {
				alg := tc.mk()
				res := run(t, cfg, g, alg)
				assertValuesMatch(t, name+"/"+alg.Name()+"/"+cfg.Name, res.Values, want.Values, tc.tol)
			}
		}
	}
}

func TestAcceleratorAdsorption(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 9, EdgeFactor: 8,
		Weighted: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ng := g.NormalizeInbound()
	want := algorithms.AdsorptionFixedPoint(ng, algorithms.NewAdsorption(), 1e-12, 10_000)
	for _, cfg := range testConfigs() {
		res := run(t, cfg, ng, algorithms.NewAdsorption())
		assertValuesMatch(t, "adsorption/"+cfg.Name, res.Values, want, 5e-3)
	}
}

// TestSlicedMatchesUnsliced: partitioned execution (Section IV-F) must
// produce identical results to single-slice execution.
func TestSlicedMatchesUnsliced(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mkAlg := range []func() algorithms.Algorithm{
		func() algorithms.Algorithm { return algorithms.NewBFS(0) },
		func() algorithms.Algorithm { return algorithms.NewConnectedComponents() },
		func() algorithms.Algorithm { return algorithms.NewSSSP(0) },
	} {
		whole := run(t, testConfigs()[0], g, mkAlg())
		cfg := testConfigs()[0]
		cfg.QueueCapacity = g.NumVertices() / 3 // force ≥3 slices
		sliced := run(t, cfg, g, mkAlg())
		if sliced.Slices < 3 {
			t.Fatalf("expected ≥3 slices, got %d", sliced.Slices)
		}
		if sliced.SpilledEvents == 0 {
			t.Error("sliced run spilled no events")
		}
		if sliced.SliceSwitches == 0 {
			t.Error("sliced run never switched slices")
		}
		assertValuesMatch(t, "sliced/"+mkAlg().Name(), sliced.Values, whole.Values, 1e-9)
	}
}

func TestCoalescingReducesEvents(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs()[0]
	res := run(t, cfg, g, algorithms.NewPageRankDelta())
	if res.EventsCoalesced == 0 {
		t.Fatal("no events coalesced on a skewed graph")
	}
	// Paper: "over 90% of the events are eliminated via coalescing" for PR
	// on LiveJournal; on smaller graphs demand a still-strong majority.
	frac := float64(res.EventsCoalesced) / float64(res.EventsEmitted+int64(g.NumVertices()))
	if frac < 0.5 {
		t.Errorf("coalesced fraction = %.2f, want > 0.5", frac)
	}
}

func TestOptimizedFasterThanBaseline(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 11, EdgeFactor: 10,
		Weighted: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := testConfigs()
	opt := run(t, cfgs[0], g, algorithms.NewPageRankDelta())
	base := run(t, cfgs[1], g, algorithms.NewPageRankDelta())
	if opt.Cycles >= base.Cycles {
		t.Errorf("optimized (%d cycles) not faster than baseline (%d cycles)",
			opt.Cycles, base.Cycles)
	}
}

func TestPrefetchReducesVtxMemStage(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 11, EdgeFactor: 10,
		Weighted: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := testConfigs()
	opt := run(t, cfgs[0], g, algorithms.NewPageRankDelta())
	base := run(t, cfgs[1], g, algorithms.NewPageRankDelta())
	// Paper Figure 13: with prefetching "the average latency for the vertex
	// memory reads become only few cycles"; without it the full DRAM
	// latency is exposed.
	if opt.StageMeans[stageVtxMem] >= base.StageMeans[stageVtxMem] {
		t.Errorf("prefetch vtx_mem %.1f not below direct-read %.1f",
			opt.StageMeans[stageVtxMem], base.StageMeans[stageVtxMem])
	}
	if opt.StageMeans[stageVtxMem] > 30 {
		t.Errorf("prefetched vtx_mem stage = %.1f cycles, want few cycles",
			opt.StageMeans[stageVtxMem])
	}
}

func TestRoundLogShape(t *testing.T) {
	g, err := gen.Star(128)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, testConfigs()[0], g, algorithms.NewConnectedComponents())
	if len(res.RoundLog) != res.Rounds {
		t.Fatalf("round log has %d entries, Rounds = %d", len(res.RoundLog), res.Rounds)
	}
	// Round 0 produced at least the initial events (one per vertex); events
	// generated inside round 0 that land in not-yet-drained rows also count
	// (the within-round lookahead of the paper's Figure 7).
	if res.RoundLog[0].Produced < int64(g.NumVertices()) {
		t.Errorf("round 0 produced %d, want >= %d", res.RoundLog[0].Produced, g.NumVertices())
	}
	// Across the whole run, produced events are exactly the initial events
	// plus every emission that stayed on-chip.
	var produced int64
	for _, rs := range res.RoundLog {
		produced += rs.Produced
	}
	if want := int64(g.NumVertices()) + res.EventsEmitted - res.SpilledEvents; produced != want {
		t.Errorf("total produced %d, want %d", produced, want)
	}
	// Final round leaves an empty queue.
	if last := res.RoundLog[len(res.RoundLog)-1]; last.Remaining != 0 {
		t.Errorf("final round remaining = %d, want 0", last.Remaining)
	}
	var processed int64
	for _, rs := range res.RoundLog {
		processed += rs.Processed
	}
	if processed != res.EventsProcessed {
		t.Errorf("round log processed sum = %d, want %d", processed, res.EventsProcessed)
	}
}

// TestEventConservation: every event inserted into the queue is either
// coalesced or eventually processed; none are lost or duplicated.
func TestEventConservation(t *testing.T) {
	for name, g := range tinyGraphs(t) {
		for _, cfg := range testConfigs() {
			res := run(t, cfg, g, algorithms.NewConnectedComponents())
			inserted := res.EventsEmitted + int64(g.NumVertices()) - res.SpilledEvents
			if got := res.EventsProcessed + res.EventsCoalesced; got != inserted {
				t.Errorf("%s/%s: processed(%d)+coalesced(%d) = %d, want inserted %d",
					name, cfg.Name, res.EventsProcessed, res.EventsCoalesced, got, inserted)
			}
		}
	}
}

func TestLookaheadObserved(t *testing.T) {
	// A cyclic, skewed graph with PR-Delta keeps re-activating vertices, so
	// coalescing must compound contributions (nonzero lookahead).
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.6, B: 0.17, C: 0.17, D: 0.06, Scale: 10, EdgeFactor: 10,
		Weighted: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, testConfigs()[0], g, algorithms.NewPageRankDelta())
	var nonzero int64
	for _, rs := range res.RoundLog {
		for b := 1; b < LookaheadBuckets; b++ {
			nonzero += rs.Lookahead[b]
		}
	}
	if nonzero == 0 {
		t.Error("no events with nonzero lookahead; coalescing lookahead tracking broken")
	}
}

func TestMemoryTrafficAccounted(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range testConfigs() {
		res := run(t, cfg, g, algorithms.NewPageRankDelta())
		if res.MemReads == 0 || res.MemWrites == 0 {
			t.Errorf("%s: reads=%d writes=%d, want both nonzero", cfg.Name, res.MemReads, res.MemWrites)
		}
		if res.BytesMoved != 64*(res.MemReads+res.MemWrites) {
			t.Errorf("%s: BytesMoved=%d inconsistent with transfers", cfg.Name, res.BytesMoved)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Errorf("%s: Utilization=%g out of (0,1]", cfg.Name, res.Utilization)
		}
		if res.BytesUseful > res.BytesMoved {
			t.Errorf("%s: useful %d > moved %d", cfg.Name, res.BytesUseful, res.BytesMoved)
		}
	}
}

func TestAblationCoalescingDisabled(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 9, EdgeFactor: 6,
		Weighted: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	on := testConfigs()[0]
	off := testConfigs()[0]
	off.CoalesceDisabled = true
	alg := algorithms.NewBFS(0)
	resOn := run(t, on, g, alg)
	resOff := run(t, off, g, algorithms.NewBFS(0))
	want := algorithms.Solve(g, algorithms.NewBFS(0))
	assertValuesMatch(t, "coalesce-off", resOff.Values, want.Values, 0)
	if resOff.EventsProcessed <= resOn.EventsProcessed {
		t.Errorf("disabling coalescing did not increase processed events: %d vs %d",
			resOff.EventsProcessed, resOn.EventsProcessed)
	}
}

func TestConfigValidation(t *testing.T) {
	g, _ := gen.Chain(4, false)
	bad := OptimizedConfig()
	bad.NumProcessors = 0
	if _, err := New(bad, g, algorithms.NewBFS(0)); err == nil {
		t.Error("New accepted NumProcessors=0")
	}
	empty, _ := graph.FromEdges(0, nil, false)
	if _, err := New(OptimizedConfig(), empty, algorithms.NewBFS(0)); err == nil {
		t.Error("New accepted empty graph")
	}
	muts := []func(*Config){
		func(c *Config) { c.NumBins = 0 },
		func(c *Config) { c.BinCols = 0 },
		func(c *Config) { c.InputBufferDepth = 0 },
		func(c *Config) { c.CrossbarPorts = 0 },
		func(c *Config) { c.GenQueueDepth = 0 },
		func(c *Config) { c.ProcessLatency = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.StreamsPerProcessor = 0 },
		func(c *Config) { c.ScratchpadLines = 0 },
		func(c *Config) { c.NetworkQueueDepth = 1 },
	}
	for i, mut := range muts {
		c := OptimizedConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDeadlineError(t *testing.T) {
	g, err := gen.Chain(1000, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := OptimizedConfig()
	cfg.MaxCycles = 10 // absurdly small
	a, err := New(cfg, g, algorithms.NewBFS(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err == nil {
		t.Error("Run with MaxCycles=10 did not fail")
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g, err := graph.FromEdges(1, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, testConfigs()[0], g, algorithms.NewConnectedComponents())
	if res.Values[0] != 0 {
		t.Errorf("CC on single vertex = %g, want 0", res.Values[0])
	}
}

func TestSelfLoopGraph(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 0, Weight: 1}, {Src: 0, Dst: 1, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.Solve(g, algorithms.NewBFS(0))
	res := run(t, testConfigs()[0], g, algorithms.NewBFS(0))
	assertValuesMatch(t, "self-loop", res.Values, want.Values, 0)
}

func TestSecondsConsistent(t *testing.T) {
	g, _ := gen.Chain(100, false)
	res := run(t, testConfigs()[0], g, algorithms.NewBFS(0))
	if got := res.Seconds; math.Abs(got-float64(res.Cycles)/1e9) > 1e-15 {
		t.Errorf("Seconds = %g, want cycles/1GHz", got)
	}
	if res.OffChipAccesses() != res.MemReads+res.MemWrites {
		t.Error("OffChipAccesses inconsistent")
	}
}

func TestGlobalTermination(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 10,
		Weighted: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With a very tight local threshold PR runs long; the global condition
	// (Section IV-C) cuts it off once a round's Σ|Δ| falls below the bound.
	mkAlg := func() algorithms.Algorithm {
		pr := algorithms.NewPageRankDelta()
		pr.Threshold = 1e-9
		return pr
	}
	local := testConfigs()[0]
	resLocal := run(t, local, g, mkAlg())
	global := testConfigs()[0]
	global.GlobalProgressThreshold = 1e-2
	resGlobal := run(t, global, g, mkAlg())
	if !resGlobal.TerminatedGlobally {
		t.Fatal("global termination did not fire")
	}
	if resLocal.TerminatedGlobally {
		t.Error("local-only run reported global termination")
	}
	if resGlobal.Cycles >= resLocal.Cycles {
		t.Errorf("global termination (%d cycles) not earlier than local (%d)",
			resGlobal.Cycles, resLocal.Cycles)
	}
	// Values remain close to the fully converged fixed point.
	for v := range resLocal.Values {
		tol := 1e-2 * math.Max(1, math.Abs(resLocal.Values[v]))
		if math.Abs(resGlobal.Values[v]-resLocal.Values[v]) > tol {
			t.Errorf("vertex %d: global %g vs local %g", v, resGlobal.Values[v], resLocal.Values[v])
			break
		}
	}
}

func TestDensestFirstSchedule(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.Solve(g, algorithms.NewSSSP(0))
	cfg := testConfigs()[0]
	cfg.Schedule = ScheduleDensestFirst
	res := run(t, cfg, g, algorithms.NewSSSP(0))
	assertValuesMatch(t, "densest-first", res.Values, want.Values, 1e-9)
	rr := run(t, testConfigs()[0], g, algorithms.NewSSSP(0))
	if res.EventsProcessed == 0 || rr.EventsProcessed == 0 {
		t.Fatal("no events processed")
	}
}

// TestDeterminism: two identical runs produce identical cycle counts and
// values — the simulator has no hidden nondeterminism.
func TestDeterminism(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	r1 := run(t, testConfigs()[0], g, algorithms.NewPageRankDelta())
	r2 := run(t, testConfigs()[0], g, algorithms.NewPageRankDelta())
	if r1.Cycles != r2.Cycles || r1.EventsProcessed != r2.EventsProcessed {
		t.Errorf("nondeterministic: %d/%d cycles, %d/%d events",
			r1.Cycles, r2.Cycles, r1.EventsProcessed, r2.EventsProcessed)
	}
	for v := range r1.Values {
		if r1.Values[v] != r2.Values[v] {
			t.Fatalf("values differ at %d", v)
		}
	}
}

// TestIncrementalOnAccelerator: the warm-start streaming extension runs on
// the accelerator itself — converge, insert edges, reconverge incrementally
// — and matches a cold start with far fewer processed events.
func TestIncrementalOnAccelerator(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold := run(t, testConfigs()[0], g, algorithms.NewSSSP(0))
	added := []graph.Edge{
		{Src: 1, Dst: 700, Weight: 0.01},
		{Src: 700, Dst: 900, Weight: 0.01},
	}
	newG, warm, err := algorithms.IncrementalAfterInsert(algorithms.NewSSSP(0), g, added, cold.Values)
	if err != nil {
		t.Fatal(err)
	}
	incr := run(t, testConfigs()[0], newG, warm)
	want := run(t, testConfigs()[0], newG, algorithms.NewSSSP(0))
	assertValuesMatch(t, "incremental-accel", incr.Values, want.Values, 1e-9)
	if incr.EventsProcessed >= want.EventsProcessed {
		t.Errorf("incremental processed %d events, cold %d — no savings",
			incr.EventsProcessed, want.EventsProcessed)
	}
}

func TestGraphWithNoEdges(t *testing.T) {
	g, err := graph.FromEdges(32, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range testConfigs() {
		res := run(t, cfg, g, algorithms.NewPageRankDelta())
		for v, r := range res.Values {
			if math.Abs(r-0.15) > 1e-12 {
				t.Fatalf("%s: rank[%d] = %g, want 0.15", cfg.Name, v, r)
			}
		}
		if res.EventsEmitted != 0 {
			t.Errorf("%s: %d events emitted with no edges", cfg.Name, res.EventsEmitted)
		}
	}
}

func TestHighDegreeHub(t *testing.T) {
	// One vertex with out-degree ≫ generation-stream cache: exercises the
	// long sequential edge stream path.
	g, err := gen.Star(2048)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.Solve(g, algorithms.NewBFS(0))
	for _, cfg := range testConfigs() {
		res := run(t, cfg, g, algorithms.NewBFS(0))
		assertValuesMatch(t, "hub/"+cfg.Name, res.Values, want.Values, 0)
	}
}

func TestWeightedEdgesReachSimulator(t *testing.T) {
	// SSSP must honor weights through the simulated edge stream, not just
	// the functional oracle.
	g, err := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 2, Dst: 1, Weight: 1},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, testConfigs()[0], g, algorithms.NewSSSP(0))
	if res.Values[1] != 2 {
		t.Errorf("dist[1] = %g, want 2 (via vertex 2)", res.Values[1])
	}
}

func TestEventTrace(t *testing.T) {
	g, err := gen.Chain(10, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs()[0]
	cfg.TraceVertices = []graph.VertexID{5}
	res := run(t, cfg, g, algorithms.NewBFS(0))
	if len(res.Trace) == 0 {
		t.Fatal("no trace entries recorded")
	}
	var sawEmit, sawProcess bool
	for _, e := range res.Trace {
		if e.Vertex != 5 {
			t.Fatalf("trace captured untraced vertex %d", e.Vertex)
		}
		switch e.Kind {
		case TraceEmit:
			sawEmit = true
			if e.Aux != 4 {
				t.Errorf("emit source = %g, want 4", e.Aux)
			}
			if e.Delta != 5 {
				t.Errorf("emit delta = %g, want 5 (level)", e.Delta)
			}
		case TraceProcess:
			sawProcess = true
			if e.Aux != 5 {
				t.Errorf("post-reduce state = %g, want 5", e.Aux)
			}
		}
		if e.String() == "" {
			t.Error("empty trace rendering")
		}
	}
	if !sawEmit || !sawProcess {
		t.Errorf("trace missing kinds: emit=%v process=%v", sawEmit, sawProcess)
	}
	// Untraced runs record nothing.
	plain := run(t, testConfigs()[0], g, algorithms.NewBFS(0))
	if len(plain.Trace) != 0 {
		t.Error("trace recorded without TraceVertices")
	}
}

func TestWriteTrace(t *testing.T) {
	var sb strings.Builder
	err := WriteTrace(&sb, []TraceEntry{
		{Cycle: 10, Vertex: 3, Kind: TraceProcess, Delta: 1.5, Aux: 2.5},
		{Cycle: 11, Vertex: 3, Kind: TraceSpill, Delta: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "@10 v3 process delta=1.5 aux=2.5") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
	if !strings.Contains(out, "spill") {
		t.Error("missing spill entry")
	}
}

func TestBinRowColMappingCorrectButSlower(t *testing.T) {
	// The ablation mapping concentrates clusters into single bins; results
	// must be identical, and hot-cluster workloads should get slower.
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 11, EdgeFactor: 10,
		Weighted: true, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, testConfigs()[0], g, algorithms.NewConnectedComponents())
	cfg := testConfigs()[0]
	cfg.Mapping = MapBinRowCol
	got := run(t, cfg, g, algorithms.NewConnectedComponents())
	assertValuesMatch(t, "bin-row-col", got.Values, want.Values, 0)
}
