package core

import (
	"fmt"

	"graphpulse/internal/graph"
)

// coalescingQueue is the in-place coalescing event queue of Section IV-D.
//
// Storage is direct-mapped: every local vertex id owns exactly one
// (bin, row, column) slot, so no tags are stored and insertion is a
// read-modify-write of one slot. The mapping is column-bin-row order:
//
//	col = v % cols
//	bin = (v / cols) % bins
//	row = v / (cols · bins)
//
// so one row of one bin holds a block of `cols` vertices contiguous in
// memory (giving drained blocks spatial locality for the prefetcher), while
// consecutive blocks spread across bins (spreading graph clusters over the
// queue, as the paper describes).
//
// Insertion coalesces on collision using the algorithm's reduce operator;
// with coalescing disabled (ablation) colliding events chain on a per-slot
// overflow list, reproducing the event-population explosion of Figure 4's
// upper curve.
type coalescingQueue struct {
	bins, cols, rows int
	mapping          MappingPolicy
	reduce           func(a, b float64) float64

	occupied []bool
	delta    []float64
	look     []uint32
	// rowCount[bin*rows+row] counts occupied slots in a row; it models the
	// occupancy bit-vector + priority encoder used to skip empty rows.
	rowCount []uint16

	coalesceDisabled bool
	overflow         map[graph.VertexID][]Event

	population int64 // events resident (including overflow chains)

	// Counters (cumulative; the scheduler snapshots them per round).
	inserted  int64
	coalesced int64
	// redelivered counts duplicate deliveries discarded by the idempotency
	// check (at-least-once delivery faults absorbed without double-applying
	// their deltas).
	redelivered int64
}

func newCoalescingQueue(capacity, bins, cols int, coalesceDisabled bool, reduce func(a, b float64) float64) *coalescingQueue {
	return newMappedQueue(capacity, bins, cols, MapColBinRow, coalesceDisabled, reduce)
}

func newMappedQueue(capacity, bins, cols int, mapping MappingPolicy, coalesceDisabled bool, reduce func(a, b float64) float64) *coalescingQueue {
	if capacity < 1 || bins < 1 || cols < 1 {
		panic(fmt.Sprintf("core: bad queue geometry capacity=%d bins=%d cols=%d", capacity, bins, cols))
	}
	blocks := bins * cols
	rows := (capacity + blocks - 1) / blocks
	slots := rows * blocks
	q := &coalescingQueue{
		bins: bins, cols: cols, rows: rows,
		mapping:          mapping,
		reduce:           reduce,
		occupied:         make([]bool, slots),
		delta:            make([]float64, slots),
		look:             make([]uint32, slots),
		rowCount:         make([]uint16, bins*rows),
		coalesceDisabled: coalesceDisabled,
	}
	if coalesceDisabled {
		q.overflow = make(map[graph.VertexID][]Event)
	}
	return q
}

// capacity returns the number of vertex slots.
func (q *coalescingQueue) capacity() int { return len(q.occupied) }

// binOf returns the bin a local vertex id maps to.
func (q *coalescingQueue) binOf(v graph.VertexID) int {
	if q.mapping == MapBinRowCol {
		return int(v) / (q.cols * q.rows) % q.bins
	}
	return int(v) / q.cols % q.bins
}

// rowOf returns the row (within its bin) a local vertex id maps to.
func (q *coalescingQueue) rowOf(v graph.VertexID) int {
	if q.mapping == MapBinRowCol {
		return int(v) / q.cols % q.rows
	}
	return int(v) / (q.cols * q.bins)
}

// insert adds ev (local vertex id), coalescing in place on collision.
// It reports whether the event coalesced into an existing one.
func (q *coalescingQueue) insert(ev Event) bool {
	slot := int(ev.Target)
	if slot >= len(q.occupied) {
		panic(fmt.Sprintf("core: event target %d beyond queue capacity %d", ev.Target, len(q.occupied)))
	}
	if ev.Redelivered {
		// Idempotent discard of duplicate deliveries: the first copy of this
		// event already merged into the queue this cycle, and reducing the
		// same delta again would double-count it (sum-based algorithms are
		// not idempotent). Discarded before the insertion counters so the
		// event balance sheet stays exact.
		q.redelivered++
		return false
	}
	q.inserted++
	if !q.occupied[slot] {
		q.occupied[slot] = true
		q.delta[slot] = ev.Delta
		q.look[slot] = ev.Lookahead
		q.rowCount[q.binOf(ev.Target)*q.rows+q.rowOf(ev.Target)]++
		q.population++
		return false
	}
	if q.coalesceDisabled {
		q.overflow[ev.Target] = append(q.overflow[ev.Target], ev)
		q.population++
		return false
	}
	q.delta[slot] = q.reduce(q.delta[slot], ev.Delta)
	q.look[slot] = coalesceLookahead(q.look[slot], ev.Lookahead)
	q.coalesced++
	return true
}

// nextOccupiedRow returns the first row ≥ cursor with events in the given
// bin, or -1. The occupancy vector's priority encoder makes this a
// constant-time hardware lookup (Section IV-D), so the model charges no
// cycles for skipped empty rows.
func (q *coalescingQueue) nextOccupiedRow(bin, cursor int) int {
	base := bin * q.rows
	for r := cursor; r < q.rows; r++ {
		if q.rowCount[base+r] > 0 {
			return r
		}
	}
	return -1
}

// drainRow removes and returns all events in one row of one bin (one cycle
// of removal bandwidth: "a full row is read in each cycle").
func (q *coalescingQueue) drainRow(bin, row int) []Event {
	if q.rowCount[bin*q.rows+row] == 0 {
		return nil
	}
	blockStart := row*q.cols*q.bins + bin*q.cols
	if q.mapping == MapBinRowCol {
		blockStart = bin*q.rows*q.cols + row*q.cols
	}
	out := make([]Event, 0, q.cols)
	for c := 0; c < q.cols; c++ {
		slot := blockStart + c
		if !q.occupied[slot] {
			continue
		}
		v := graph.VertexID(slot)
		out = append(out, Event{Target: v, Delta: q.delta[slot], Lookahead: q.look[slot]})
		q.occupied[slot] = false
		q.population--
		if q.coalesceDisabled {
			if ov := q.overflow[v]; len(ov) > 0 {
				out = append(out, ov...)
				q.population -= int64(len(ov))
				delete(q.overflow, v)
			}
		}
	}
	q.rowCount[bin*q.rows+row] = 0
	return out
}

// binPopulation returns the number of events resident in one bin.
func (q *coalescingQueue) binPopulation(bin int) int {
	total := 0
	base := bin * q.rows
	for r := 0; r < q.rows; r++ {
		total += int(q.rowCount[base+r])
	}
	return total
}

// snapshot returns every resident event (local vertex ids) without
// mutating the queue; checkpointing uses it where drainAll would destroy
// the live state.
func (q *coalescingQueue) snapshot() []Event {
	out := make([]Event, 0, q.population)
	for slot, occ := range q.occupied {
		if !occ {
			continue
		}
		v := graph.VertexID(slot)
		out = append(out, Event{Target: v, Delta: q.delta[slot], Lookahead: q.look[slot]})
		if q.coalesceDisabled {
			out = append(out, q.overflow[v]...)
		}
	}
	return out
}

// drainAll empties the queue in bin/row order; used when swapping a slice
// out to memory (Section IV-F: "the bins are drained to the buffer").
func (q *coalescingQueue) drainAll() []Event {
	var out []Event
	for b := 0; b < q.bins; b++ {
		for r := q.nextOccupiedRow(b, 0); r != -1; r = q.nextOccupiedRow(b, r) {
			out = append(out, q.drainRow(b, r)...)
		}
	}
	return out
}
