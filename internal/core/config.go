// Package core implements the GraphPulse accelerator model: an event-driven
// asynchronous graph-processing engine with in-place coalescing event
// queues, round-based scheduling, decoupled event processors and generation
// units, and a prefetching memory path — the architecture of Sections III–V
// of the paper, at the same structural cycle-level abstraction the authors
// simulated.
//
// # Event flow
//
// One event's life, and the blocks that model it:
//
//	generation streams ──new events──▶ crossbar ──▶ coalescing queue banks
//	        ▲                                             │ (merge on hit)
//	        │ vertex updates                              ▼ round scheduler
//	   processors ◀──staged events── prefetcher ◀── drained bins
//	        │                              ▲
//	        └───vertex/edge reads──▶ DDR3 model (internal/mem)
//
// New is the single entry point: it wires these units onto a sim.Engine,
// slices graphs that exceed on-chip capacity (Section IV-F), and Run ticks
// the whole design to convergence. NewCluster replicates the chip and adds
// a latency/bandwidth-limited interconnect between slices.
//
// # Observability
//
// Every run returns aggregate counters and per-stage timings in Result.
// Config.TraceVertices records per-vertex event traces; Config.Telemetry
// attaches a sampling recorder (internal/sim/telemetry) that captures queue
// occupancy, event rates, stalls, and DRAM traffic as bounded time series —
// zero-cost when disabled and read-only when enabled, so results are
// bit-identical either way. METRICS.md at the repository root catalogues
// every metric name these layers emit.
package core

import (
	"fmt"

	"graphpulse/internal/graph"
	"graphpulse/internal/mem"
	"graphpulse/internal/sim/fault"
	"graphpulse/internal/sim/telemetry"
)

// Config describes one accelerator build. Two presets reproduce the paper's
// configurations: OptimizedConfig (GraphPulse with Section V optimizations,
// the headline system) and BaselineConfig (the unoptimized GraphPulse of
// Section IV used in Figure 10's "GraphPulse-Baseline" bars).
type Config struct {
	// Name labels the configuration in reports.
	Name string

	// NumProcessors is the number of event processors (8 optimized — the
	// paper notes prefetching lets it "employ fewer processors (8 in the
	// experiments)" — or 256 baseline).
	NumProcessors int
	// StreamsPerProcessor is the number of decoupled generation streams
	// attached to each processor (8×4 in the optimized design). Ignored
	// unless DecoupledGeneration.
	StreamsPerProcessor int
	// DecoupledGeneration splits processing and event generation into
	// separate units (Section V "Efficient Event Generation").
	DecoupledGeneration bool
	// Prefetch enables the input-buffer vertex prefetcher and scratchpad
	// (Section V "Prefetching").
	Prefetch bool

	// NumBins is the number of coalescing bins in the event queue (64).
	NumBins int
	// BinCols is the number of events per bin row; a drained row is a
	// block of BinCols vertices contiguous in memory.
	BinCols int
	// QueueCapacity is the number of vertex slots in the queue. A graph
	// with more vertices than this is partitioned into slices
	// (Section IV-F). 0 means size to fit the input graph.
	QueueCapacity int
	// CoalesceDisabled turns off in-place coalescing (ablation study):
	// colliding events pile up in per-slot overflow lists.
	CoalesceDisabled bool

	// InputBufferDepth is the per-processor event input buffer (the
	// prefetcher inspects it; 128 in the paper's block-prefetch design).
	InputBufferDepth int
	// ScratchpadLines is the per-processor vertex scratchpad capacity in
	// 64-byte lines (1 KB = 16 lines in Table V).
	ScratchpadLines int
	// EdgeCacheLines is the per-generation-unit edge cache capacity.
	EdgeCacheLines int
	// EdgePrefetchBlocks is the N of the N-block edge prefetcher (4).
	EdgePrefetchBlocks int

	// CrossbarPorts is the event-delivery crossbar width (16×16): at most
	// this many events enter the queue complex per cycle.
	CrossbarPorts int
	// NetworkQueueDepth bounds events buffered in the delivery network;
	// generators stall when it is full.
	NetworkQueueDepth int
	// GenQueueDepth is the per-processor generation input buffer ("Gen
	// Buffer" in Figure 13).
	GenQueueDepth int
	// ProcessLatency is the reduce pipeline depth in cycles (4-stage FPA).
	ProcessLatency int

	// GlobalProgressThreshold enables the optional global termination
	// condition of Section IV-C: if the algorithm reports progress (a
	// Progressor) and a round's accumulated progress falls below this
	// value, the computation stops at the round barrier even though events
	// remain queued. 0 disables it (default: terminate when the queue
	// empties).
	GlobalProgressThreshold float64
	// Schedule selects the bin drain order (Section IV-C notes the
	// scheduler "iterates over all bins in a round-robin manner (other
	// application-informed policies are possible)").
	Schedule SchedulePolicy
	// Mapping selects the vertex→(bin,row,col) layout. The paper's
	// column-bin-row order spreads graph clusters across bins; the
	// bin-row-col alternative (ablation) concentrates them, serializing on
	// each bin's single insertion port.
	Mapping MappingPolicy

	// TraceVertices lists global vertex ids whose event activity is
	// recorded into Result.Trace (debugging; empty = tracing off).
	TraceVertices []graph.VertexID

	// Telemetry enables time-resolved sampling of queue occupancy, event
	// rates, DRAM traffic and unit stalls into Result.Telemetry (see
	// METRICS.md). The zero value disables it at zero cost; sampling only
	// reads state, so enabling it never changes simulation results.
	Telemetry telemetry.Config

	// Fault configures deterministic fault injection (see internal/sim/fault).
	// The zero value injects nothing and adds zero cost; with any nonzero
	// rate the run is still deterministic per seed, so two runs with equal
	// Config are bit-identical to each other.
	Fault fault.Config

	// WatchdogInterval is how often (in cycles) the event-conservation
	// watchdog audits the event balance sheet; a sustained imbalance fails
	// the run with ErrConservation instead of wedging until MaxCycles.
	// 0 selects the default interval. The watchdog is always on — it also
	// catches genuine lost-event bugs, not just injected drops.
	WatchdogInterval uint64

	// Memory configures the off-chip DRAM model.
	Memory mem.Config
	// ClockHz converts cycles to time (1 GHz).
	ClockHz float64
	// MaxCycles aborts runaway simulations.
	MaxCycles uint64
}

// OptimizedConfig is the paper's full GraphPulse design (Table III +
// Section V): 8 processors with 4 generation streams each, prefetching,
// 64 MB / 64-bin coalescing queue, 4 DRAM channels.
func OptimizedConfig() Config {
	return Config{
		Name:                "graphpulse-opt",
		NumProcessors:       8,
		StreamsPerProcessor: 4,
		DecoupledGeneration: true,
		Prefetch:            true,
		NumBins:             64,
		BinCols:             8,
		InputBufferDepth:    128,
		ScratchpadLines:     16,
		EdgeCacheLines:      8,
		EdgePrefetchBlocks:  4,
		CrossbarPorts:       16,
		NetworkQueueDepth:   512,
		GenQueueDepth:       8,
		ProcessLatency:      4,
		Memory:              mem.DefaultConfig(),
		ClockHz:             1e9,
		MaxCycles:           5_000_000_000,
	}
}

// BaselineConfig is the unoptimized GraphPulse of Section IV: 256 simple
// processors that read vertices directly from memory and generate outgoing
// events themselves.
func BaselineConfig() Config {
	c := OptimizedConfig()
	c.Name = "graphpulse-base"
	c.NumProcessors = 256
	c.StreamsPerProcessor = 0
	c.DecoupledGeneration = false
	c.Prefetch = false
	c.InputBufferDepth = 2
	return c
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.NumProcessors < 1:
		return fmt.Errorf("core: NumProcessors=%d", c.NumProcessors)
	case c.DecoupledGeneration && c.StreamsPerProcessor < 1:
		return fmt.Errorf("core: decoupled generation with %d streams", c.StreamsPerProcessor)
	case c.NumBins < 1:
		return fmt.Errorf("core: NumBins=%d", c.NumBins)
	case c.BinCols < 1:
		return fmt.Errorf("core: BinCols=%d", c.BinCols)
	case c.QueueCapacity < 0:
		return fmt.Errorf("core: QueueCapacity=%d", c.QueueCapacity)
	case c.InputBufferDepth < 1:
		return fmt.Errorf("core: InputBufferDepth=%d", c.InputBufferDepth)
	case c.Prefetch && c.ScratchpadLines < 1:
		return fmt.Errorf("core: Prefetch with ScratchpadLines=%d", c.ScratchpadLines)
	case c.DecoupledGeneration && c.EdgeCacheLines < 1:
		return fmt.Errorf("core: EdgeCacheLines=%d", c.EdgeCacheLines)
	case c.CrossbarPorts < 1:
		return fmt.Errorf("core: CrossbarPorts=%d", c.CrossbarPorts)
	case c.NetworkQueueDepth < c.CrossbarPorts:
		return fmt.Errorf("core: NetworkQueueDepth=%d < CrossbarPorts", c.NetworkQueueDepth)
	case c.GenQueueDepth < 1:
		return fmt.Errorf("core: GenQueueDepth=%d", c.GenQueueDepth)
	case c.ProcessLatency < 1:
		return fmt.Errorf("core: ProcessLatency=%d", c.ProcessLatency)
	case c.ClockHz <= 0:
		return fmt.Errorf("core: ClockHz=%g", c.ClockHz)
	case c.MaxCycles == 0:
		return fmt.Errorf("core: MaxCycles=0")
	case c.Telemetry.MaxSamples < 0:
		return fmt.Errorf("core: Telemetry.MaxSamples=%d", c.Telemetry.MaxSamples)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return c.Memory.Validate()
}

// SchedulePolicy selects the order bins are drained within a round.
type SchedulePolicy int

const (
	// ScheduleRoundRobin drains bins 0..N-1 in order every round (the
	// paper's default).
	ScheduleRoundRobin SchedulePolicy = iota
	// ScheduleDensestFirst drains bins in descending occupancy order,
	// prioritizing the heaviest work (an application-informed policy).
	ScheduleDensestFirst
)

// MappingPolicy selects the vertex→slot layout of the coalescing queue.
type MappingPolicy int

const (
	// MapColBinRow is the paper's layout: "Vertices are mapped in
	// column-bin-row order so that clusters in the graph are likely to
	// spread over multiple bins."
	MapColBinRow MappingPolicy = iota
	// MapBinRowCol fills one bin completely before the next (ablation):
	// contiguous vertex ranges — and hence graph clusters — land in one bin.
	MapBinRowCol
)

// Simulated physical layout. The three graph data regions live at disjoint
// address bases so channel/bank interleaving and row-buffer behaviour are
// realistic. Vertex records are 16 bytes: the 8-byte property value plus
// the edge offset/degree hint the paper encodes alongside it ("we pass this
// information to the generation unit encoded in the vertex data").
const (
	vertexRecordBytes = 16
	vertexBase        = 0x0000_0000_0000
	edgeBase          = 0x0100_0000_0000
	spillBase         = 0x0200_0000_0000
)
