package core

import (
	"graphpulse/internal/graph"
)

// Event is the hardware primitive of the architecture: a lightweight
// message carrying a delta to a destination vertex (Section III-A). Target
// is a *local* vertex id within the active slice except while an event sits
// in an inter-slice spill buffer, where it is global.
type Event struct {
	Target graph.VertexID
	Delta  float64
	// Lookahead measures how many earlier events' contributions this event
	// has compounded through coalescing (Figure 8's metric): coalescing two
	// events yields max(lookaheads)+1.
	Lookahead uint32
	// Redelivered marks a duplicate delivery of an event already handed to
	// the queue complex (an at-least-once delivery fault). The coalescer
	// discards redeliveries idempotently — applying the same delta twice
	// would double-count it under non-idempotent reduce operators like sum.
	Redelivered bool
}

// coalesceLookahead combines the lookahead tags of two coalescing events.
func coalesceLookahead(a, b uint32) uint32 {
	if b > a {
		a = b
	}
	return a + 1
}
