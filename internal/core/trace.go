package core

import (
	"fmt"
	"io"

	"graphpulse/internal/graph"
)

// Event tracing: a debugging facility that records the life of selected
// vertices' events with cycle stamps. Enable by listing global vertex ids
// in Config.TraceVertices; the recorded entries come back in Result.Trace.
// Tracing is off by default and costs nothing when disabled.

// TraceKind classifies a trace entry.
type TraceKind uint8

// Trace entry kinds.
const (
	// TraceProcess: the vertex's coalesced event reached a processor;
	// Delta is the applied delta, Aux the post-reduce state.
	TraceProcess TraceKind = iota
	// TraceEmit: an event was emitted TO this vertex; Delta is the
	// propagated delta, Aux the source vertex id.
	TraceEmit
	// TraceSpill: an event for this vertex was spilled off-chip (inactive
	// slice) or sent across the cluster interconnect.
	TraceSpill
)

func (k TraceKind) String() string {
	switch k {
	case TraceProcess:
		return "process"
	case TraceEmit:
		return "emit"
	case TraceSpill:
		return "spill"
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// TraceEntry is one recorded observation.
type TraceEntry struct {
	Cycle  uint64
	Vertex graph.VertexID
	Kind   TraceKind
	Delta  float64
	Aux    float64
}

// String renders the entry for logs.
func (e TraceEntry) String() string {
	return fmt.Sprintf("@%d v%d %s delta=%g aux=%g", e.Cycle, e.Vertex, e.Kind, e.Delta, e.Aux)
}

// tracer holds the selected vertex set and recorded entries.
type tracer struct {
	want    map[graph.VertexID]bool
	entries []TraceEntry
}

func newTracer(vertices []graph.VertexID) *tracer {
	if len(vertices) == 0 {
		return nil
	}
	t := &tracer{want: make(map[graph.VertexID]bool, len(vertices))}
	for _, v := range vertices {
		t.want[v] = true
	}
	return t
}

// record appends an entry if v is traced. Safe on a nil tracer.
func (t *tracer) record(cycle uint64, v graph.VertexID, kind TraceKind, delta, aux float64) {
	if t == nil || !t.want[v] {
		return
	}
	t.entries = append(t.entries, TraceEntry{Cycle: cycle, Vertex: v, Kind: kind, Delta: delta, Aux: aux})
}

// WriteTrace renders a result's trace, one entry per line.
func WriteTrace(w io.Writer, entries []TraceEntry) error {
	for _, e := range entries {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}
