package core

import (
	"math"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph/gen"
)

func clusterConfig(chips int) ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.Chips = chips
	cfg.Chip.MaxCycles = 200_000_000
	return cfg
}

func TestClusterMatchesSingleAccelerator(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 11, EdgeFactor: 8,
		Weighted: true, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mkAlg := range []func() algorithms.Algorithm{
		func() algorithms.Algorithm { return algorithms.NewBFS(0) },
		func() algorithms.Algorithm { return algorithms.NewSSSP(0) },
		func() algorithms.Algorithm { return algorithms.NewConnectedComponents() },
	} {
		single := run(t, testConfigs()[0], g, mkAlg())
		cl, err := NewCluster(clusterConfig(4), g, mkAlg())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatalf("cluster %s: %v", mkAlg().Name(), err)
		}
		if res.Chips != 4 {
			t.Fatalf("Chips = %d", res.Chips)
		}
		if res.InterChipEvents == 0 {
			t.Error("no events crossed the interconnect")
		}
		assertValuesMatch(t, "cluster/"+mkAlg().Name(), res.Values, single.Values, 1e-9)
	}
}

func TestClusterPageRank(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 10,
		Weighted: true, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.PageRankPower(g, 0.85, 1e-12, 10_000)
	cl, err := NewCluster(clusterConfig(3), g, algorithms.NewPageRankDelta())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for v := range want {
		tol := 1e-2 * math.Max(1, math.Abs(want[v]))
		if math.Abs(res.Values[v]-want[v]) > tol {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d/%d vertices off the PageRank fixed point", bad, len(want))
	}
}

func TestClusterAsyncNoGlobalBarrier(t *testing.T) {
	// Chips progress independently: total processed events must be split
	// across chips, and per-chip rounds need not match.
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 11, EdgeFactor: 8,
		Weighted: true, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(clusterConfig(4), g, algorithms.NewConnectedComponents())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	var withWork int
	for _, r := range res.PerChip {
		if r.EventsProcessed > 0 {
			withWork++
		}
	}
	if withWork < 2 {
		t.Errorf("only %d chips processed events", withWork)
	}
	if res.EventsProcessed == 0 || res.OffChipAccesses == 0 {
		t.Error("missing aggregate counters")
	}
	if res.Seconds <= 0 {
		t.Error("no timing recorded")
	}
}

func TestClusterLinkBandwidthMatters(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 11, EdgeFactor: 10,
		Weighted: true, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast := clusterConfig(4)
	fast.LinkBandwidth = 16
	slow := clusterConfig(4)
	slow.LinkBandwidth = 1
	clFast, err := NewCluster(fast, g, algorithms.NewConnectedComponents())
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := clFast.Run()
	if err != nil {
		t.Fatal(err)
	}
	clSlow, err := NewCluster(slow, g, algorithms.NewConnectedComponents())
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := clSlow.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Cycles <= rFast.Cycles {
		t.Errorf("1-event/cycle link (%d cycles) not slower than 16 (%d cycles)",
			rSlow.Cycles, rFast.Cycles)
	}
	// Same answer regardless of link speed.
	for v := range rFast.Values {
		if rFast.Values[v] != rSlow.Values[v] {
			t.Fatalf("values differ at %d", v)
		}
	}
}

func TestClusterConfigValidation(t *testing.T) {
	g, _ := gen.Chain(100, false)
	bad := clusterConfig(1)
	if _, err := NewCluster(bad, g, algorithms.NewBFS(0)); err == nil {
		t.Error("1-chip cluster accepted")
	}
	bad2 := clusterConfig(4)
	bad2.LinkBandwidth = 0
	if _, err := NewCluster(bad2, g, algorithms.NewBFS(0)); err == nil {
		t.Error("zero link bandwidth accepted")
	}
	bad3 := clusterConfig(4)
	bad3.EgressDepth = 0
	if _, err := NewCluster(bad3, g, algorithms.NewBFS(0)); err == nil {
		t.Error("zero egress depth accepted")
	}
	tiny, _ := gen.Chain(2, false)
	if _, err := NewCluster(clusterConfig(4), tiny, algorithms.NewBFS(0)); err == nil {
		t.Error("more chips than vertices accepted")
	}
}

func TestClusterChainCrossesEveryBoundary(t *testing.T) {
	// A chain forces strictly sequential cross-chip propagation: the
	// interconnect must deliver exactly one event per boundary crossing.
	g, err := gen.Chain(400, false)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(clusterConfig(4), g, algorithms.NewBFS(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.InterChipEvents != 3 {
		t.Errorf("InterChipEvents = %d, want 3 (one per slice boundary)", res.InterChipEvents)
	}
	for v := 0; v < 400; v++ {
		if res.Values[v] != float64(v) {
			t.Fatalf("BFS level[%d] = %g, want %d", v, res.Values[v], v)
		}
	}
}
