package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// TestPropertyAcceleratorEqualsOracle drives the full accelerator on
// randomly generated graphs with randomly chosen monotone algorithms and
// random configuration knobs, and requires exact agreement with the
// reference worklist solver every time. This is the repository's strongest
// single correctness property: any scheduling, coalescing, routing, or
// slicing bug that affects results will eventually surface here.
func TestPropertyAcceleratorEqualsOracle(t *testing.T) {
	f := func(seed int64, shape, algPick, knob uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.CSR
		var err error
		switch shape % 4 {
		case 0:
			g, err = gen.ErdosRenyi(rng.Intn(300)+2, rng.Intn(1500), true, seed)
		case 1:
			g, err = gen.RMAT(gen.RMATParams{
				A: 0.57, B: 0.19, C: 0.19, D: 0.05,
				Scale: rng.Intn(5) + 4, EdgeFactor: rng.Intn(8) + 1,
				Weighted: true, Seed: seed,
			})
		case 2:
			g, err = gen.Grid2D(rng.Intn(12)+2, rng.Intn(12)+2, true, seed)
		default:
			g, err = gen.Chain(rng.Intn(200)+2, true)
		}
		if err != nil {
			return false
		}
		root := graph.VertexID(rng.Intn(g.NumVertices()))
		var mk func() algorithms.Algorithm
		switch algPick % 5 {
		case 0:
			mk = func() algorithms.Algorithm { return algorithms.NewSSSP(root) }
		case 1:
			mk = func() algorithms.Algorithm { return algorithms.NewBFS(root) }
		case 2:
			mk = func() algorithms.Algorithm { return algorithms.NewConnectedComponents() }
		case 3:
			mk = func() algorithms.Algorithm { return algorithms.NewSSWP(root) }
		default:
			mk = func() algorithms.Algorithm { return algorithms.NewReach(root) }
		}
		cfg := OptimizedConfig()
		cfg.MaxCycles = 500_000_000
		// Randomize architecture knobs that must never change results.
		switch knob % 6 {
		case 1:
			cfg = BaselineConfig()
			cfg.MaxCycles = 500_000_000
		case 2:
			cfg.QueueCapacity = g.NumVertices()/2 + 1 // force slicing
		case 3:
			cfg.NumBins = 8
			cfg.BinCols = 2
		case 4:
			cfg.Schedule = ScheduleDensestFirst
		case 5:
			cfg.StreamsPerProcessor = 1
			cfg.GenQueueDepth = 1
		}
		a, err := New(cfg, g, mk())
		if err != nil {
			return false
		}
		res, err := a.Run()
		if err != nil {
			return false
		}
		want := algorithms.Solve(g, mk())
		for v := range want.Values {
			x, y := res.Values[v], want.Values[v]
			if x == y || (math.IsInf(x, 1) && math.IsInf(y, 1)) || (math.IsInf(x, -1) && math.IsInf(y, -1)) {
				continue
			}
			if math.Abs(x-y) > 1e-9 {
				t.Logf("seed=%d shape=%d alg=%d knob=%d: vertex %d = %g, want %g",
					seed, shape%4, algPick%5, knob%6, v, x, y)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
