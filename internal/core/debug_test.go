package core

import (
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph/gen"
)

func TestDebugSmoke(t *testing.T) {
	g, err := gen.Chain(10, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := OptimizedConfig()
	cfg.MaxCycles = 200_000
	a, err := New(cfg, g, algorithms.NewBFS(0))
	if err != nil {
		t.Fatal(err)
	}
	for a.phase != phaseDone && a.engine.Cycle() < cfg.MaxCycles {
		a.engine.Step()
		if a.engine.Cycle()%10_000 == 0 {
			t.Logf("cycle=%d phase=%d pop=%d staging=%d xbar=%d proc0idle=%v pending=%d avail=%d memPending=%d fetchPend=%d",
				a.engine.Cycle(), a.phase, a.queue.population, len(a.staging),
				len(a.xbar.queue), a.procs[0].idle(), len(a.pendingInserts), a.availInserts,
				a.memory.Pending(), a.fetch.PendingLines())
		}
	}
	t.Logf("final cycle=%d phase=%d processed=%d", a.engine.Cycle(), a.phase, a.eventsProcessed)
	if a.phase != phaseDone {
		for i, p := range a.procs {
			if !p.idle() {
				t.Logf("proc %d: input=%d pendingGen=%v gen=%v directIssued=%v", i, len(p.input), p.pendingGen != nil, p.gen != nil, p.directIssued)
			}
		}
		t.Fatal("did not terminate")
	}
}
