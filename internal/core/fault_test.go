package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/sim"
	"graphpulse/internal/sim/fault"
)

// faultTestGraph is one RMAT instance big enough to exercise the crossbar,
// spill path, and several scheduler rounds, small enough for -race runs.
func faultTestGraph(t testing.TB) *gen.RMATParams {
	t.Helper()
	return &gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 7,
	}
}

// hubRoot returns the max-out-degree vertex — RMAT leaves many low-numbered
// vertices edgeless, and a rooted run from one of those is a 1-event no-op
// that exercises nothing.
func hubRoot(g *graph.CSR) graph.VertexID {
	best, bd := graph.VertexID(0), uint64(0)
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.RowPtr[v+1] - g.RowPtr[v]; d > bd {
			best, bd = graph.VertexID(v), d
		}
	}
	return best
}

func runFault(t testing.TB, fc fault.Config, mk func(root graph.VertexID) algorithms.Algorithm) (*Result, error) {
	t.Helper()
	g, err := gen.RMAT(*faultTestGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	root := hubRoot(g)
	cfg := testConfigs()[0]
	cfg.Fault = fc
	a, err := New(cfg, g, mk(root))
	if err != nil {
		t.Fatal(err)
	}
	return a.Run()
}

// TestFaultNilInjectorIdentity is the acceptance gate for the injector's
// zero cost: a config whose fault block carries a seed but all-zero rates
// must produce a bit-identical Result to the stock run — same values, same
// cycle count, same counters.
func TestFaultNilInjectorIdentity(t *testing.T) {
	clean, err := runFault(t, fault.Config{}, func(r graph.VertexID) algorithms.Algorithm { return algorithms.NewSSSP(r) })
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := runFault(t, fault.Config{Seed: 12345}, func(r graph.VertexID) algorithms.Algorithm { return algorithms.NewSSSP(r) })
	if err != nil {
		t.Fatal(err)
	}
	clean.Seconds, seeded.Seconds = 0, 0 // wall clock, not simulated state
	if !reflect.DeepEqual(clean, seeded) {
		t.Fatal("all-zero fault rates changed the simulation result")
	}
	if clean.FaultsInjected != nil {
		t.Errorf("FaultsInjected = %v on a clean run, want nil", clean.FaultsInjected)
	}
}

// TestFaultSeededDeterminism: two runs with the same fault seed and rates
// must be bit-identical — including which events were duplicated and which
// bits flipped.
func TestFaultSeededDeterminism(t *testing.T) {
	fc := fault.Config{
		Seed:          99,
		DuplicateRate: 1e-3,
		ReorderRate:   1e-3,
		BitFlipRate:   1e-4,
		DRAMFaultRate: 1e-3,
	}
	mk := func(graph.VertexID) algorithms.Algorithm { return algorithms.NewPageRankDelta() }
	a, err := runFault(t, fc, mk)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFault(t, fc, mk)
	if err != nil {
		t.Fatal(err)
	}
	a.Seconds, b.Seconds = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same fault seed diverged: %d vs %d cycles, faults %v vs %v",
			a.Cycles, b.Cycles, a.FaultsInjected, b.FaultsInjected)
	}
	if a.FaultsInjected["queue_dup"] == 0 {
		t.Errorf("no duplicates injected at rate %g: %v", fc.DuplicateRate, a.FaultsInjected)
	}
}

// TestFaultDropDetectedByWatchdog is the headline detection guarantee: a
// dropped event must trip the event-conservation watchdog well before
// MaxCycles, with a structured ConservationError carrying the imbalance
// snapshot and the injected-fault counters.
func TestFaultDropDetectedByWatchdog(t *testing.T) {
	_, err := runFault(t, fault.Config{Seed: 1, DropRate: 1e-2},
		func(r graph.VertexID) algorithms.Algorithm { return algorithms.NewSSSP(r) })
	if err == nil {
		t.Fatal("run with dropped events terminated cleanly")
	}
	if !errors.Is(err, ErrConservation) {
		t.Fatalf("error %v does not wrap ErrConservation", err)
	}
	var ce *ConservationError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v carries no *ConservationError", err)
	}
	if ce.Imbalance <= 0 {
		t.Errorf("Imbalance = %+d, want positive (events vanished)", ce.Imbalance)
	}
	if ce.Cycle >= testConfigs()[0].MaxCycles {
		t.Errorf("detected at cycle %d, not before MaxCycles %d", ce.Cycle, testConfigs()[0].MaxCycles)
	}
	drops := ce.Faults["queue_drop"]
	if drops == 0 {
		t.Fatalf("snapshot records no drops: %v", ce.Faults)
	}
	if ce.Imbalance > drops {
		t.Errorf("imbalance %+d exceeds injected drops %d — events vanished beyond injection",
			ce.Imbalance, drops)
	}
}

// TestFaultDupReorderTolerated: duplicate and reordered deliveries are
// recovered transparently — the run terminates with values exactly equal to
// the clean fixed point, and the recovery counters show work was done.
func TestFaultDupReorderTolerated(t *testing.T) {
	mk := func(r graph.VertexID) algorithms.Algorithm { return algorithms.NewSSSP(r) }
	clean, err := runFault(t, fault.Config{}, mk)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := runFault(t, fault.Config{Seed: 3, DuplicateRate: 1e-2, ReorderRate: 1e-2}, mk)
	if err != nil {
		t.Fatalf("dup/reorder run failed: %v", err)
	}
	if !reflect.DeepEqual(clean.Values, dirty.Values) {
		t.Error("duplicate/reorder faults changed the fixed point")
	}
	if dirty.RedeliveredEvents == 0 {
		t.Error("RedeliveredEvents = 0, want >0")
	}
	if dirty.ReorderedEvents == 0 {
		t.Error("ReorderedEvents = 0, want >0")
	}
}

// TestFaultDRAMRetryTolerated: failed DRAM transactions are retried with
// backoff; the run completes with exact values (timing changes only) and
// the retry counters are visible in the Result.
func TestFaultDRAMRetryTolerated(t *testing.T) {
	mk := func(r graph.VertexID) algorithms.Algorithm { return algorithms.NewBFS(r) }
	clean, err := runFault(t, fault.Config{}, mk)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := runFault(t, fault.Config{Seed: 5, DRAMFaultRate: 1e-2}, mk)
	if err != nil {
		t.Fatalf("DRAM-fault run failed: %v", err)
	}
	if !reflect.DeepEqual(clean.Values, dirty.Values) {
		t.Error("DRAM retries changed the fixed point (BFS is timing-insensitive)")
	}
	if dirty.MemFaults == 0 {
		t.Error("MemFaults = 0, want >0")
	}
	if dirty.MemRetries < dirty.MemFaults {
		t.Errorf("MemRetries = %d < MemFaults = %d", dirty.MemRetries, dirty.MemFaults)
	}
	if dirty.Cycles <= clean.Cycles {
		t.Errorf("retries did not cost cycles: dirty %d <= clean %d", dirty.Cycles, clean.Cycles)
	}
}

// TestFaultSpillLossRecovered: events lost during slice swap-in are re-read
// through the spill recovery path. Forcing a small queue makes the run
// sliced so the spill path is actually exercised.
func TestFaultSpillLossRecovered(t *testing.T) {
	g, err := gen.RMAT(*faultTestGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	root := hubRoot(g)
	mk := func() algorithms.Algorithm { return algorithms.NewSSSP(root) }
	cfg := testConfigs()[0]
	cfg.QueueCapacity = (g.NumVertices() + 2) / 3 // force 3 slices
	cleanA, err := New(cfg, g, mk())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cleanA.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = fault.Config{Seed: 7, SpillLossRate: 5e-2}
	dirtyA, err := New(cfg, g, mk())
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := dirtyA.Run()
	if err != nil {
		t.Fatalf("spill-loss run failed: %v", err)
	}
	if dirty.SpillRecovered == 0 {
		t.Fatalf("SpillRecovered = 0 with faults %v — spill path not exercised", dirty.FaultsInjected)
	}
	if !reflect.DeepEqual(clean.Values, dirty.Values) {
		t.Error("spill recovery changed the fixed point")
	}
}

// TestFaultBitFlipSilentCorruption documents the injector's negative space:
// a mantissa bit flip in a vertex property read is *not* detectable by
// event conservation (no event vanishes), so the run completes — possibly
// with corrupted values. The counter must still report the injections.
func TestFaultBitFlipSilentCorruption(t *testing.T) {
	res, err := runFault(t, fault.Config{Seed: 11, BitFlipRate: 1e-3},
		func(graph.VertexID) algorithms.Algorithm { return algorithms.NewPageRankDelta() })
	if err != nil {
		t.Fatalf("bit-flip run failed (should complete silently): %v", err)
	}
	if res.FaultsInjected["vertex_bit_flip"] == 0 {
		t.Errorf("no bit flips recorded: %v", res.FaultsInjected)
	}
}

// TestCheckpointResumeValueEquality is the checkpoint acceptance gate: a
// run interrupted at a round barrier and resumed from the snapshot must
// land on exactly the clean fixed point. SSSP's min-based reduce makes
// value equality exact even though the resumed schedule differs.
func TestCheckpointResumeValueEquality(t *testing.T) {
	g, err := gen.RMAT(*faultTestGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs()[0]
	root := hubRoot(g)
	mk := func() algorithms.Algorithm { return algorithms.NewSSSP(root) }
	clean := run(t, cfg, g, mk())

	var cks []*Checkpoint
	a, err := New(cfg, g, mk())
	if err != nil {
		t.Fatal(err)
	}
	full, err := a.RunWithOptions(RunOptions{
		CheckpointEvery: clean.Cycles / 8,
		OnCheckpoint:    func(c *Checkpoint) error { cks = append(cks, c); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatalf("no checkpoints taken in %d cycles (every %d)", full.Cycles, clean.Cycles/8)
	}
	if !reflect.DeepEqual(full.Values, clean.Values) {
		t.Fatal("taking checkpoints perturbed the run's fixed point")
	}
	for i, ck := range cks {
		if ck.Cycle == 0 || ck.Cycle >= full.Cycles {
			t.Fatalf("checkpoint %d at cycle %d outside run of %d cycles", i, ck.Cycle, full.Cycles)
		}
		ra, err := NewFromCheckpoint(cfg, g, mk(), ck)
		if err != nil {
			t.Fatalf("NewFromCheckpoint(#%d): %v", i, err)
		}
		res, err := ra.Run()
		if err != nil {
			t.Fatalf("resumed run #%d: %v", i, err)
		}
		if !reflect.DeepEqual(res.Values, clean.Values) {
			t.Fatalf("resume from checkpoint #%d (cycle %d) missed the fixed point", i, ck.Cycle)
		}
	}
}

// TestCheckpointRoundTripsJSON: a checkpoint serialized and reloaded must
// restore to the same resumable state (non-finite vertex values included —
// SSSP checkpoints are full of +Inf).
func TestCheckpointRoundTripsJSON(t *testing.T) {
	g, err := gen.RMAT(*faultTestGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfigs()[0]
	mk := func() algorithms.Algorithm { return algorithms.NewSSSP(hubRoot(g)) }
	var ck *Checkpoint
	a, err := New(cfg, g, mk())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := a.RunWithOptions(RunOptions{
		CheckpointEvery: 1_000,
		OnCheckpoint: func(c *Checkpoint) error {
			if ck == nil {
				ck = c
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Skip("run too short to checkpoint")
	}
	path := t.TempDir() + "/ck.json"
	if err := WriteCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, back) {
		t.Fatal("checkpoint changed across the JSON round trip")
	}
	ra, err := NewFromCheckpoint(cfg, g, mk(), back)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ra.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Values, clean.Values) {
		t.Fatal("resume from reloaded checkpoint missed the fixed point")
	}
}

// TestRunCanceled: a canceled context aborts the run with an error wrapping
// sim.ErrCanceled (not ErrDeadline, not a clean result).
func TestRunCanceled(t *testing.T) {
	g, err := gen.RMAT(*faultTestGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(testConfigs()[0], g, algorithms.NewPageRankDelta())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.RunWithOptions(RunOptions{Ctx: ctx}); !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestClusterLinkKillDetected: dropping events on the interconnect must
// trip the cluster-level conservation watchdog with the usual structured
// error.
func TestClusterLinkKillDetected(t *testing.T) {
	g, err := gen.RMAT(*faultTestGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterConfig(4)
	cfg.Chip.Fault = fault.Config{Seed: 2, LinkKillRate: 1e-2}
	cl, err := NewCluster(cfg, g, algorithms.NewSSSP(hubRoot(g)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Run()
	if err == nil {
		t.Fatal("cluster with killed links terminated cleanly")
	}
	if !errors.Is(err, ErrConservation) {
		t.Fatalf("error %v does not wrap ErrConservation", err)
	}
	var ce *ConservationError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v carries no *ConservationError", err)
	}
	if ce.Faults["link_kill"] == 0 {
		t.Errorf("snapshot records no link kills: %v", ce.Faults)
	}
}

// TestClusterLinkDegradeTolerated: degraded links only slow the
// interconnect; the cluster still reaches the exact fixed point.
func TestClusterLinkDegradeTolerated(t *testing.T) {
	g, err := gen.RMAT(*faultTestGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	mkCluster := func(fc fault.Config) *ClusterResult {
		cfg := clusterConfig(3)
		cfg.Chip.Fault = fc
		cl, err := NewCluster(cfg, g, algorithms.NewBFS(hubRoot(g)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatalf("cluster run (faults %+v): %v", fc, err)
		}
		return res
	}
	clean := mkCluster(fault.Config{})
	slow := mkCluster(fault.Config{Seed: 4, LinkDegradeRate: 5e-2, DegradeFactor: 16})
	if slow.LinkDegraded == 0 {
		t.Fatal("LinkDegraded = 0, want >0")
	}
	if !reflect.DeepEqual(clean.Values, slow.Values) {
		t.Error("link degradation changed the fixed point")
	}
}

// TestClusterCanceled: cancellation propagates through every chip engine.
func TestClusterCanceled(t *testing.T) {
	g, err := gen.RMAT(*faultTestGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(clusterConfig(3), g, algorithms.NewPageRankDelta())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.RunCtx(ctx); !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestClusterDeadline: a cluster that cannot finish within Chip.MaxCycles
// reports sim.ErrDeadline rather than wedging.
func TestClusterDeadline(t *testing.T) {
	g, err := gen.RMAT(*faultTestGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterConfig(3)
	cfg.Chip.MaxCycles = 500
	cl, err := NewCluster(cfg, g, algorithms.NewSSSP(hubRoot(g)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(); !errors.Is(err, sim.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}
