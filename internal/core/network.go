package core

import "graphpulse/internal/sim/fault"

// crossbar models the event-delivery network between generation streams and
// the coalescing bins: a 16×16 crossbar where groups of streams share input
// ports (Section IV-E). Per cycle it moves at most `ports` events into the
// queue complex, at most one per destination bin (each bin has a single
// pipelined insertion port), and none into a bin that is being drained that
// cycle ("Insertion to the same bin is stalled in the cycles in which a
// removal operation is active").
//
// Buffering inside the network is bounded; offer fails when it is full,
// which backpressures the generation streams.
type crossbar struct {
	ports int
	depth int
	queue []Event

	// delivered/stalled are cumulative counters for reports.
	delivered   int64
	stallCycles int64

	// inj, when non-nil, injects delivery faults at the queue-insert
	// boundary; the counters record what it did to this crossbar.
	inj        *fault.Injector
	dropped    int64 // events lost at delivery (conservation watchdog detects)
	duplicated int64 // events redelivered (coalescer discards idempotently)
	reordered  int64 // buffer-order swaps (harmless: reduce is commutative)

	binUsed []bool // reusable per-cycle scratch
}

func newCrossbar(ports, depth int) *crossbar {
	return &crossbar{ports: ports, depth: depth}
}

// offer enqueues an event for delivery; false means the network is full.
func (x *crossbar) offer(ev Event) bool {
	if len(x.queue) >= x.depth {
		return false
	}
	x.queue = append(x.queue, ev)
	return true
}

// empty reports whether no events are buffered.
func (x *crossbar) empty() bool { return len(x.queue) == 0 }

// deliver moves up to `ports` events into q, one per bin, skipping the
// draining bin. Virtual-output-queue behaviour: a blocked head does not
// block events for other bins.
func (x *crossbar) deliver(q *coalescingQueue, drainingBin int) (coalesced int) {
	if len(x.queue) == 0 {
		return 0
	}
	// Reorder fault: swap two buffered events before arbitration, perturbing
	// delivery order. Coalescing reduce operators are commutative, so this
	// must never change results — the conformance suite checks exactly that.
	if len(x.queue) >= 2 && x.inj.Decide(fault.PointQueueReorder) {
		i := x.inj.Pick(fault.PointQueueReorder, len(x.queue))
		j := x.inj.Pick(fault.PointQueueReorder, len(x.queue))
		x.queue[i], x.queue[j] = x.queue[j], x.queue[i]
		x.reordered++
	}
	if len(x.binUsed) < q.bins {
		x.binUsed = make([]bool, q.bins)
	}
	used := x.binUsed
	for i := range used {
		used[i] = false
	}
	moved := 0
	scanned := 0
	kept := x.queue[:0]
	for i, ev := range x.queue {
		// A hardware crossbar arbitrates over a bounded window, not the
		// whole buffer; cap the scan so deep backlogs also bound sim cost.
		if moved >= x.ports || scanned >= 8*x.ports {
			kept = append(kept, x.queue[i:]...)
			break
		}
		scanned++
		bin := q.binOf(ev.Target)
		if bin == drainingBin || used[bin] {
			kept = append(kept, ev)
			continue
		}
		used[bin] = true
		// Drop fault: the event vanishes between the network and the queue's
		// insertion port. Nothing recovers it here — the event-conservation
		// watchdog must notice the balance-sheet hole and fail the run.
		if x.inj.Decide(fault.PointQueueDrop) {
			x.dropped++
			moved++
			continue
		}
		if q.insert(ev) {
			coalesced++
		}
		// Duplicate fault: the same event arrives twice (at-least-once
		// delivery). The second copy carries the Redelivered mark and the
		// coalescer discards it, so the delta is applied exactly once.
		if x.inj.Decide(fault.PointQueueDup) {
			dup := ev
			dup.Redelivered = true
			q.insert(dup)
			x.duplicated++
		}
		x.delivered++
		moved++
	}
	x.queue = kept
	if len(x.queue) > 0 {
		x.stallCycles++
	}
	return coalesced
}

// spillBuffers hold events bound for inactive slices (Section IV-F). Events
// are appended in arrival order and streamed back when their slice is
// activated; ordering is irrelevant for correctness ("the events do not
// require any particular order for storing and retrieval").
type spillBuffers struct {
	perSlice [][]Event
	total    int64
}

func newSpillBuffers(slices int) *spillBuffers {
	return &spillBuffers{perSlice: make([][]Event, slices)}
}

// add stores an event (with a global vertex id) bound for slice s.
func (s *spillBuffers) add(slice int, ev Event) {
	s.perSlice[slice] = append(s.perSlice[slice], ev)
	s.total++
}

// take removes and returns all events spilled for slice s.
func (s *spillBuffers) take(slice int) []Event {
	out := s.perSlice[slice]
	s.perSlice[slice] = nil
	s.total -= int64(len(out))
	return out
}

// count returns events spilled for slice s.
func (s *spillBuffers) count(slice int) int { return len(s.perSlice[slice]) }

// nextNonEmpty returns the first slice index after `from` (cyclically) with
// spilled events, or -1 if none anywhere.
func (s *spillBuffers) nextNonEmpty(from int) int {
	n := len(s.perSlice)
	for i := 1; i <= n; i++ {
		c := (from + i) % n
		if len(s.perSlice[c]) > 0 {
			return c
		}
	}
	return -1
}
