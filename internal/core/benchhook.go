package core

// BenchQueue exposes the in-place coalescing queue to external
// micro-benchmarks (bench_test.go) without exporting the internal type.
type BenchQueue struct {
	q *coalescingQueue
}

// NewBenchQueue builds a sum-reduce coalescing queue with the given
// geometry.
func NewBenchQueue(capacity, bins, cols int) *BenchQueue {
	return &BenchQueue{q: newCoalescingQueue(capacity, bins, cols, false,
		func(a, b float64) float64 { return a + b })}
}

// InsertForBench inserts one event.
func (b *BenchQueue) InsertForBench(v uint32, delta float64) {
	b.q.insert(Event{Target: v, Delta: delta})
}

// Population returns resident events.
func (b *BenchQueue) Population() int64 { return b.q.population }

// DrainAllForBench empties the queue (amortizes slot reuse in benchmarks).
func (b *BenchQueue) DrainAllForBench() int { return len(b.q.drainAll()) }
