package core

import (
	"reflect"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/sim/telemetry"
)

func telemetryTestGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTelemetryDoesNotPerturbSimulation is the determinism guarantee the
// conformance suite relies on: a telemetry-enabled run must produce
// bit-identical values, cycles, and round log as a telemetry-off run —
// probes only read state — and repeated enabled runs must sample identical
// series.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	g := telemetryTestGraph(t)
	plainCfg := OptimizedConfig()
	telCfg := OptimizedConfig()
	telCfg.Telemetry = telemetry.Config{Interval: 64, MaxSamples: 256}

	plain := run(t, plainCfg, g, algorithms.NewPageRankDelta())
	withTel := run(t, telCfg, g, algorithms.NewPageRankDelta())
	if plain.Cycles != withTel.Cycles {
		t.Fatalf("cycles diverge with telemetry on: %d vs %d", plain.Cycles, withTel.Cycles)
	}
	if !reflect.DeepEqual(plain.Values, withTel.Values) {
		t.Fatal("values diverge with telemetry on")
	}
	if !reflect.DeepEqual(plain.RoundLog, withTel.RoundLog) {
		t.Fatal("round log diverges with telemetry on")
	}
	if withTel.Telemetry == nil || withTel.Telemetry.SampleCount() == 0 {
		t.Fatal("telemetry-enabled run recorded nothing")
	}

	again := run(t, telCfg, g, algorithms.NewPageRankDelta())
	if !reflect.DeepEqual(withTel.Telemetry.Series(), again.Telemetry.Series()) {
		t.Fatal("telemetry series are not bit-deterministic across runs")
	}
}

// TestTelemetryRateSeriesSumToCounters checks the rate probes account for
// every event exactly: per-interval deltas must sum back to the end-of-run
// counters (the last samples may cover a partial tail, so compare against
// the series' own total only when the run ended on a sample).
func TestTelemetryRateSeriesSumToCounters(t *testing.T) {
	g := telemetryTestGraph(t)
	cfg := OptimizedConfig()
	// Interval 1 with a huge bound: every cycle sampled, nothing decimated,
	// so series totals must equal the result counters exactly.
	cfg.Telemetry = telemetry.Config{Interval: 1, MaxSamples: 1 << 30}
	res := run(t, cfg, g, algorithms.NewPageRankDelta())

	sum := func(name string) int64 {
		s, ok := res.Telemetry.Find(name)
		if !ok {
			t.Fatalf("series %q missing", name)
		}
		var n int64
		for _, p := range s.Samples {
			n += p.Value
		}
		return n
	}
	if got := sum("events_processed"); got != res.EventsProcessed {
		t.Errorf("events_processed series sums to %d, counter %d", got, res.EventsProcessed)
	}
	if got := sum("events_emitted"); got != res.EventsEmitted {
		t.Errorf("events_emitted series sums to %d, counter %d", got, res.EventsEmitted)
	}
	if got := sum("events_coalesced"); got != res.EventsCoalesced {
		t.Errorf("events_coalesced series sums to %d, counter %d", got, res.EventsCoalesced)
	}
	if got := sum("dram_bytes"); got != res.BytesMoved {
		t.Errorf("dram_bytes series sums to %d, BytesMoved %d", got, res.BytesMoved)
	}
}

// TestTracingAndTelemetryTogether runs core/trace.go's per-vertex tracing
// and telemetry sampling in the same simulation: both must record, and
// neither may perturb the run relative to tracing alone.
func TestTracingAndTelemetryTogether(t *testing.T) {
	g := telemetryTestGraph(t)
	traceOnly := OptimizedConfig()
	traceOnly.TraceVertices = []graph.VertexID{0, 1, 2}
	both := traceOnly
	both.Telemetry = telemetry.Config{Interval: 128, MaxSamples: 512}

	a := run(t, traceOnly, g, algorithms.NewPageRankDelta())
	b := run(t, both, g, algorithms.NewPageRankDelta())
	if len(a.Trace) == 0 {
		t.Fatal("tracing recorded nothing")
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatal("trace differs when telemetry is enabled alongside")
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles diverge: %d (trace) vs %d (trace+telemetry)", a.Cycles, b.Cycles)
	}
	if b.Telemetry == nil || b.Telemetry.SampleCount() == 0 {
		t.Fatal("telemetry recorded nothing alongside tracing")
	}
	if a.Telemetry != nil {
		t.Fatal("trace-only run must have nil Telemetry")
	}
}

// TestDisabledTelemetryIsNilAndAllocationFree: a default config leaves
// Result.Telemetry nil, and the disabled (nil-recorder) probe path is
// allocation-free per testing.AllocsPerRun.
func TestDisabledTelemetryIsNilAndAllocationFree(t *testing.T) {
	g := telemetryTestGraph(t)
	res := run(t, OptimizedConfig(), g, algorithms.NewPageRankDelta())
	if res.Telemetry != nil {
		t.Fatal("disabled telemetry must leave Result.Telemetry nil")
	}

	var rec *telemetry.Recorder
	a := &Accelerator{}
	if allocs := testing.AllocsPerRun(1000, func() {
		// The full disabled fast path: registration no-ops and ticks.
		a.registerTelemetry(rec, "")
		rec.Tick(99)
	}); allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %.1f/op, want 0", allocs)
	}
}

// benchmarkAccel measures a full accelerator run under the given telemetry
// configuration. Compare BenchmarkAccelDisabledTelemetry against
// BenchmarkAccelEnabledTelemetry with benchstat: the disabled case IS the
// no-telemetry baseline (New registers nothing when Config.Telemetry is
// zero), so its overhead versus pre-telemetry builds is ≤ the noise floor,
// and the enabled-case delta prices the sampling itself.
func benchmarkAccel(b *testing.B, telCfg telemetry.Config) {
	g := telemetryTestGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := OptimizedConfig()
		cfg.Telemetry = telCfg
		a, err := New(cfg, g, algorithms.NewPageRankDelta())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccelDisabledTelemetry(b *testing.B) {
	benchmarkAccel(b, telemetry.Config{})
}

func BenchmarkAccelEnabledTelemetry(b *testing.B) {
	benchmarkAccel(b, telemetry.Default())
}
