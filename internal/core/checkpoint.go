package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/atomicio"
	"graphpulse/internal/graph"
)

// CheckpointVersion identifies the on-disk checkpoint format.
const CheckpointVersion = 1

// CheckpointEvent is one serialized event. The delta is stored as raw
// IEEE-754 bits because JSON cannot represent ±Inf (SSSP-style algorithms
// initialize state to +Inf) and because bit-exact round-tripping is the
// whole point of a checkpoint.
type CheckpointEvent struct {
	Target    uint32 `json:"t"` // global vertex id
	DeltaBits uint64 `json:"d"`
	Lookahead uint32 `json:"l,omitempty"`
}

// CheckpointRound mirrors RoundStats with the Progress float stored as
// bits (it can be +Inf for divergent progress metrics).
type CheckpointRound struct {
	Round        int
	Slice        int
	Produced     int64
	Coalesced    int64
	Processed    int64
	Remaining    int64
	ProgressBits uint64
	Lookahead    [LookaheadBuckets]int64
}

// CheckpointCounters carries the cumulative counters a resumed run needs to
// keep its Result continuous with the original run. DRAM counters are not
// included: a resumed run's memory-traffic statistics restart from zero.
type CheckpointCounters struct {
	InitialEvents     int64
	EventsProcessed   int64
	EventsEmitted     int64
	SpilledEvents     int64
	SliceSwitches     int64
	DrainStalls       int64
	ExtraVertexUseful int64
	DiscardedEvents   int64
	SpillRecovered    int64
	FoldInserted      int64
	FoldCoalesced     int64
	FoldRedelivered   int64
	Dropped           int64
	Duplicated        int64
	Reordered         int64
	SwapReadAddr      uint64
	SpillWriteAddr    uint64
	SpillCarry        int
	GlobalStop        bool
}

// Checkpoint is a restartable snapshot of an accelerator run, taken at a
// scheduler round barrier — the quiescent point where every live event is
// either in the coalescing queue or a spill buffer, so the event population
// serializes exactly. Restore with NewFromCheckpoint; the resumed run
// produces the same converged values (the event set and vertex state are
// bit-identical) but not the same cycle count, because swap-in batching
// differs when the queue population re-enters through the spill path.
type Checkpoint struct {
	Version     int
	Config      string // Config.Name, as a restore sanity check
	Algorithm   string
	NumVertices int

	Cycle uint64
	Round int
	// Slice is the slice that was active at the barrier.
	Slice int

	// StateBits is the vertex state as raw IEEE-754 bits.
	StateBits []uint64
	// Queue holds the active slice's resident events (global vertex ids).
	Queue []CheckpointEvent
	// Spill holds each slice's spilled events.
	Spill [][]CheckpointEvent

	Counters CheckpointCounters
	RoundLog []CheckpointRound
}

func toCheckpointEvents(evs []Event, lo graph.VertexID) []CheckpointEvent {
	out := make([]CheckpointEvent, len(evs))
	for i, ev := range evs {
		out[i] = CheckpointEvent{
			Target:    uint32(ev.Target + lo),
			DeltaBits: math.Float64bits(ev.Delta),
			Lookahead: ev.Lookahead,
		}
	}
	return out
}

func fromCheckpointEvent(ce CheckpointEvent) Event {
	return Event{
		Target:    graph.VertexID(ce.Target),
		Delta:     math.Float64frombits(ce.DeltaBits),
		Lookahead: ce.Lookahead,
	}
}

// maybeCheckpoint takes a checkpoint at a round barrier when one is due.
// Called from transition with the machine quiescent.
func (a *Accelerator) maybeCheckpoint(cycle uint64) {
	if a.opts.CheckpointEvery == 0 || a.opts.OnCheckpoint == nil || a.ckErr != nil {
		return
	}
	if cycle-a.lastCheckpoint < a.opts.CheckpointEvery {
		return
	}
	a.lastCheckpoint = cycle
	if err := a.opts.OnCheckpoint(a.checkpoint(cycle)); err != nil {
		a.ckErr = err
	}
}

// checkpoint snapshots the quiescent machine. The queue is read
// non-destructively (drainAll would empty it).
func (a *Accelerator) checkpoint(cycle uint64) *Checkpoint {
	ck := &Checkpoint{
		Version:     CheckpointVersion,
		Config:      a.cfg.Name,
		Algorithm:   a.alg.Name(),
		NumVertices: a.g.NumVertices(),
		Cycle:       cycle,
		Round:       a.round,
		Slice:       a.curSlice,
		StateBits:   make([]uint64, len(a.state)),
		Queue:       toCheckpointEvents(a.queue.snapshot(), a.slices[a.curSlice].Lo),
		Spill:       make([][]CheckpointEvent, len(a.spill.perSlice)),
		Counters: CheckpointCounters{
			InitialEvents:     a.initialEvents,
			EventsProcessed:   a.eventsProcessed,
			EventsEmitted:     a.eventsEmitted,
			SpilledEvents:     a.spilledEvents,
			SliceSwitches:     a.sliceSwitches,
			DrainStalls:       a.drainStalls,
			ExtraVertexUseful: a.extraVertexUseful,
			DiscardedEvents:   a.discardedEvents,
			SpillRecovered:    a.spillRecovered,
			FoldInserted:      a.foldInserted,
			FoldCoalesced:     a.foldCoalesced,
			FoldRedelivered:   a.foldRedelivered + a.queue.redelivered,
			Dropped:           a.xbar.dropped,
			Duplicated:        a.xbar.duplicated,
			Reordered:         a.xbar.reordered,
			SwapReadAddr:      a.swapReadAddr,
			SpillWriteAddr:    a.spillWriteAddr,
			SpillCarry:        a.spillCarry,
			GlobalStop:        a.globalStop,
		},
	}
	for i, v := range a.state {
		ck.StateBits[i] = math.Float64bits(v)
	}
	for s, evs := range a.spill.perSlice {
		ck.Spill[s] = toCheckpointEvents(evs, 0) // spill targets are global
	}
	ck.RoundLog = make([]CheckpointRound, len(a.roundLog))
	for i, rs := range a.roundLog {
		ck.RoundLog[i] = CheckpointRound{
			Round: rs.Round, Slice: rs.Slice,
			Produced: rs.Produced, Coalesced: rs.Coalesced,
			Processed: rs.Processed, Remaining: rs.Remaining,
			ProgressBits: math.Float64bits(rs.Progress),
			Lookahead:    rs.Lookahead,
		}
	}
	return ck
}

// NewFromCheckpoint rebuilds an accelerator from a checkpoint taken by a
// run with the same Config, graph, and algorithm, ready to RunWithOptions
// to completion. The restored run resumes on the original cycle timeline
// and converges to the same values; per-run DRAM statistics restart (the
// checkpoint does not capture memory-controller state), and the fault
// injector (if configured) restarts its decision streams.
func NewFromCheckpoint(cfg Config, g graph.Adjacency, alg algorithms.Algorithm, ck *Checkpoint) (*Accelerator, error) {
	switch {
	case ck.Version != CheckpointVersion:
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	case ck.Algorithm != alg.Name():
		return nil, fmt.Errorf("core: checkpoint is for algorithm %q, not %q", ck.Algorithm, alg.Name())
	case ck.NumVertices != g.NumVertices():
		return nil, fmt.Errorf("core: checkpoint has %d vertices, graph has %d", ck.NumVertices, g.NumVertices())
	case len(ck.StateBits) != g.NumVertices():
		return nil, fmt.Errorf("core: checkpoint state length %d != %d vertices", len(ck.StateBits), g.NumVertices())
	}
	a, err := New(cfg, g, alg)
	if err != nil {
		return nil, err
	}
	if len(ck.Spill) != len(a.slices) {
		return nil, fmt.Errorf("core: checkpoint has %d slices, config partitions into %d (same Config required)",
			len(ck.Spill), len(a.slices))
	}
	if ck.Slice < 0 || ck.Slice >= len(a.slices) {
		return nil, fmt.Errorf("core: checkpoint slice %d out of range", ck.Slice)
	}
	for i, bits := range ck.StateBits {
		a.state[i] = math.Float64frombits(bits)
	}
	// Replace the bootstrap event population staged by New with the
	// checkpointed one: spilled events keep their slices, and the active
	// slice's queue population re-enters through its spill buffer so the
	// normal swap-in path rebuilds the queue.
	a.spill = newSpillBuffers(len(a.slices))
	a.pendingInserts = nil
	a.availInserts = 0
	for s, evs := range ck.Spill {
		for _, ce := range evs {
			a.spill.add(s, fromCheckpointEvent(ce))
		}
	}
	for _, ce := range ck.Queue {
		ev := fromCheckpointEvent(ce)
		s := a.sliceOf(ev.Target)
		if s == -1 {
			return nil, fmt.Errorf("core: checkpoint event target %d outside graph", ev.Target)
		}
		a.spill.add(s, ev)
	}
	c := ck.Counters
	a.initialEvents = c.InitialEvents
	a.eventsProcessed = c.EventsProcessed
	a.eventsEmitted = c.EventsEmitted
	a.spilledEvents = c.SpilledEvents
	a.sliceSwitches = c.SliceSwitches
	a.drainStalls = c.DrainStalls
	a.extraVertexUseful = c.ExtraVertexUseful
	a.discardedEvents = c.DiscardedEvents
	a.spillRecovered = c.SpillRecovered
	a.foldInserted = c.FoldInserted
	a.foldCoalesced = c.FoldCoalesced
	a.foldRedelivered = c.FoldRedelivered
	a.xbar.dropped = c.Dropped
	a.xbar.duplicated = c.Duplicated
	a.xbar.reordered = c.Reordered
	a.swapReadAddr = c.SwapReadAddr
	a.spillWriteAddr = c.SpillWriteAddr
	a.spillCarry = c.SpillCarry
	a.globalStop = c.GlobalStop
	a.round = ck.Round
	a.roundLog = make([]RoundStats, len(ck.RoundLog))
	for i, cr := range ck.RoundLog {
		a.roundLog[i] = RoundStats{
			Round: cr.Round, Slice: cr.Slice,
			Produced: cr.Produced, Coalesced: cr.Coalesced,
			Processed: cr.Processed, Remaining: cr.Remaining,
			Progress:  math.Float64frombits(cr.ProgressBits),
			Lookahead: cr.Lookahead,
		}
	}
	a.engine.FastForward(ck.Cycle)
	s := ck.Slice
	if a.spill.count(s) == 0 {
		if n := a.spill.nextNonEmpty(s); n != -1 {
			s = n
		}
	}
	// Uncharged activation: checkpoint restore is host-mediated, so the
	// re-inserted population pays insertion cycles but no DRAM reads.
	a.activateSlice(s, false)
	return a, nil
}

// WriteCheckpoint atomically serializes ck to path (temp file + rename), so
// a crash mid-write never corrupts the previous checkpoint.
func WriteCheckpoint(path string, ck *Checkpoint) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(ck)
	})
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck := &Checkpoint{}
	if err := json.NewDecoder(f).Decode(ck); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint %s: %w", path, err)
	}
	return ck, nil
}
