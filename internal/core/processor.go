package core

import (
	"graphpulse/internal/graph"
	"graphpulse/internal/mem"
	"graphpulse/internal/sim/fault"
)

// Per-cycle unit states, tracked for Figure 14's breakdown.
const (
	procStateVertexRead = iota
	procStateProcess
	procStateStalling
	procStateIdle
	numProcStates
)

const (
	genStateEdgeRead = iota
	genStateGenerate
	genStateIdle
	numGenStates
)

// genTask is one vertex update handed from a processor to event generation:
// propagate `delta` along all out-edges of `src`. The degree and edge offset
// come from the vertex record ("encoded in the vertex data as a hint"), so
// generation never touches the CSR row-pointer array.
type genTask struct {
	src        graph.VertexID // global id
	delta      float64
	look       uint32
	degree     int
	edgeStart  uint64 // first edge index in the CSR
	enqueuedAt uint64 // cycle the task entered the generation buffer
}

// inEvent is an event staged in a processor's input buffer.
type inEvent struct {
	ev        Event // Target is slice-local
	headSince uint64
}

// scratchpad is the small per-processor vertex-property store fed by the
// prefetcher (Section V, Figure 9). It is fully associative with a handful
// of lines, so lookups are linear scans over parallel arrays (faster than a
// map at this size, and closer to the hardware's CAM). Lines are
// reference-counted by buffered events; eviction takes a ready,
// unreferenced line and writes it back if dirty, which batches the random
// single-vertex stores of the baseline design into per-line bursts.
type scratchpad struct {
	addrs []uint64
	lines []spLine
}

type spLine struct {
	valid    bool
	ready    bool
	readyAt  uint64
	dirty    int // vertex updates not yet written back
	refs     int // buffered events referencing this line
	consumed int // vertex records already processed from this line
}

func newScratchpad(capLines int) *scratchpad {
	return &scratchpad{
		addrs: make([]uint64, capLines),
		lines: make([]spLine, capLines),
	}
}

// lookup returns the index of addr, or -1.
func (s *scratchpad) lookup(addr uint64) int {
	for i, a := range s.addrs {
		if a == addr && s.lines[i].valid {
			return i
		}
	}
	return -1
}

// reserve finds a slot for addr, evicting a ready unreferenced line if
// needed (written back through wb when dirty). Returns the slot index or -1
// when nothing is evictable.
func (s *scratchpad) reserve(addr uint64, wb func(addr uint64, dirty int)) int {
	victim := -1
	for i := range s.lines {
		l := &s.lines[i]
		if !l.valid {
			victim = i
			break
		}
		if victim == -1 && l.ready && l.refs == 0 {
			victim = i
		}
	}
	if victim == -1 {
		return -1
	}
	if l := &s.lines[victim]; l.valid && l.dirty > 0 {
		wb(s.addrs[victim], l.dirty)
	}
	s.addrs[victim] = addr
	s.lines[victim] = spLine{valid: true}
	return victim
}

// flush writes back every dirty line and invalidates the scratchpad.
func (s *scratchpad) flush(wb func(addr uint64, dirty int)) {
	for i := range s.lines {
		if l := &s.lines[i]; l.valid && l.dirty > 0 {
			wb(s.addrs[i], l.dirty)
		}
		s.lines[i] = spLine{}
	}
}

// processor is one event processor (Section IV-E): a state machine that
// receives an event, reads and updates the vertex state, checks local
// termination, and hands changed vertices to event generation. In the
// baseline configuration it also performs generation itself, holding the
// event pipeline hostage while it walks the edge list — exactly the
// bottleneck the Section V decoupling removes.
//
// With prefetching enabled, the vertex line of an event is requested the
// moment the scheduler stages the event into the input buffer (the
// "prefetch and store vertex properties for the events waiting in the input
// buffer" path of Figure 9), so by the time the event reaches the head of
// the buffer its data is usually resident.
type processor struct {
	a  *Accelerator
	id int

	input     []inEvent
	scratch   *scratchpad // nil unless cfg.Prefetch
	stateHist [numProcStates]int64

	// pendingGen holds a completed update waiting for generation-buffer
	// space (the "Stalling" state of Figure 14).
	pendingGen *genTask

	// Direct-read state for the non-prefetching path.
	directIssued bool
	directReady  bool
	directAt     uint64

	// In-processor generation state (baseline only).
	gen         *genTask
	genIdx      int
	lineAddr    uint64
	linePending bool
	lineReady   bool
}

func newProcessor(a *Accelerator, id int) *processor {
	p := &processor{a: a, id: id}
	if a.cfg.Prefetch {
		p.scratch = newScratchpad(a.cfg.ScratchpadLines)
	}
	return p
}

func (p *processor) vertexLine(v graph.VertexID) uint64 {
	return (vertexBase + uint64(v)*vertexRecordBytes) &^ (mem.LineBytes - 1)
}

// tryPush stages an event into the input buffer and prefetches its vertex
// line. It refuses (returns false) when the buffer is full or, on the
// prefetching path, when the event's line is absent and no scratchpad line
// can be reserved — backpressure that bounds the lines a block of events
// may pin.
func (p *processor) tryPush(ev Event, cycle uint64) bool {
	if len(p.input) >= p.a.cfg.InputBufferDepth {
		return false
	}
	if p.scratch != nil {
		line := p.vertexLine(p.a.globalID(ev.Target))
		idx := p.scratch.lookup(line)
		if idx == -1 {
			idx = p.scratch.reserve(line, p.a.writebackVertexLine)
			if idx == -1 {
				return false
			}
			l := &p.scratch.lines[idx]
			l.refs = 1
			p.a.fetch.Fetch(line, mem.LineBytes, vertexRecordBytes, false, func() {
				l.ready = true
				l.readyAt = p.a.engine.Cycle()
			})
		} else {
			p.scratch.lines[idx].refs++
		}
	}
	p.input = append(p.input, inEvent{ev: ev, headSince: cycle})
	return true
}

// idle reports full quiescence of the processor.
func (p *processor) idle() bool {
	return len(p.input) == 0 && p.pendingGen == nil && p.gen == nil && !p.directIssued
}

// tick advances the processor one cycle and records its Figure 14 state.
func (p *processor) tick(cycle uint64) {
	state := p.step(cycle)
	p.stateHist[state]++
}

func (p *processor) step(cycle uint64) int {
	// Baseline in-processor generation has priority: the processor is busy
	// until the previous event's outputs are generated.
	if p.gen != nil {
		return p.generateStep(cycle)
	}
	if p.pendingGen != nil {
		if !p.a.submitGen(p.id, p.pendingGen) {
			return procStateStalling
		}
		p.pendingGen = nil
	}
	if len(p.input) == 0 {
		return procStateIdle
	}
	head := &p.input[0]
	gv := p.a.globalID(head.ev.Target)

	if p.scratch != nil {
		idx := p.scratch.lookup(p.vertexLine(gv))
		line := &p.scratch.lines[idx]
		if !line.ready {
			return procStateVertexRead
		}
		readyAt := line.readyAt
		if readyAt < head.headSince {
			readyAt = head.headSince
		}
		p.a.stage.AddEventCycles(stageVtxMem, int64(readyAt-head.headSince))
		line.consumed++
		if line.consumed > 1 {
			// The fetch was charged 16 useful bytes for its first event;
			// later events served by the same resident line raise the
			// utilization numerator (up to the 4 records a line holds).
			if line.consumed <= mem.LineBytes/vertexRecordBytes {
				p.a.extraVertexUseful += vertexRecordBytes
			}
		}
		if p.process(head.ev, gv, cycle) {
			line.dirty++
		}
		line.refs--
		p.popHead(cycle)
		return procStateProcess
	}

	// Direct-memory path (no prefetcher): one read per event, full latency
	// exposed.
	if !p.directIssued {
		p.directIssued = true
		p.directReady = false
		p.a.fetch.Fetch(vertexBase+uint64(gv)*vertexRecordBytes, vertexRecordBytes,
			vertexRecordBytes, false, func() {
				p.directReady = true
				p.directAt = p.a.engine.Cycle()
			})
		return procStateVertexRead
	}
	if !p.directReady {
		return procStateVertexRead
	}
	p.directIssued = false
	p.a.stage.AddEventCycles(stageVtxMem, int64(p.directAt-head.headSince))
	if p.process(head.ev, gv, cycle) {
		// Write the updated value straight back: the random 8-byte store
		// of the unoptimized design.
		p.a.fetch.Fetch(vertexBase+uint64(gv)*vertexRecordBytes, 8, 8, true, nil)
	}
	p.popHead(cycle)
	return procStateProcess
}

// process applies the reduce/terminate step; it reports whether the vertex
// state changed (and thus a write-back is owed).
func (p *processor) process(ev Event, gv graph.VertexID, cycle uint64) bool {
	a := p.a
	old := a.state[gv]
	if a.inj.Decide(fault.PointVertexBitFlip) {
		// Single-event upset on the vertex property read: the reduce sees a
		// corrupted operand. Nothing detects this — it is the silent-data-
		// corruption scenario the fault sweeps quantify.
		old = a.inj.CorruptFloat(old)
	}
	next := a.alg.Reduce(old, ev.Delta)
	a.state[gv] = next
	a.trace.record(cycle, gv, TraceProcess, ev.Delta, next)
	a.eventsProcessed++
	a.roundProcessed++
	a.observeLookahead(ev.Lookahead)
	a.stage.AddEventCycles(stageProcess, int64(a.cfg.ProcessLatency))
	if a.prog != nil {
		a.roundProgress += a.prog.Progress(old, next)
	}
	if !a.alg.Changed(old, next) {
		return true // state write still happened
	}
	task := &genTask{
		src:        gv,
		delta:      ev.Delta,
		look:       ev.Lookahead,
		degree:     a.g.OutDegree(gv),
		edgeStart:  a.g.EdgeOffset(gv),
		enqueuedAt: cycle,
	}
	if task.degree == 0 {
		return true
	}
	if a.cfg.DecoupledGeneration {
		if !a.submitGen(p.id, task) {
			p.pendingGen = task
		}
	} else {
		p.gen = task
		p.genIdx = 0
		p.lineAddr = 0
		p.linePending = false
		p.lineReady = false
	}
	return true
}

func (p *processor) popHead(cycle uint64) {
	p.input = p.input[1:]
	if len(p.input) > 0 {
		p.input[0].headSince = cycle
	}
}

// generateStep is the baseline's sequential in-processor event generation:
// fetch the edge line, then emit one event per cycle.
func (p *processor) generateStep(cycle uint64) int {
	a := p.a
	t := p.gen
	edgeIdx := t.edgeStart + uint64(p.genIdx)
	addr := a.edgeAddr(edgeIdx)
	line := addr &^ (mem.LineBytes - 1)
	if p.lineAddr != line || (!p.lineReady && !p.linePending) {
		p.lineAddr = line
		p.linePending = true
		p.lineReady = false
		useful := a.edgeLineUseful(line, t)
		p.a.fetch.Fetch(line, mem.LineBytes, useful, false, func() {
			p.linePending = false
			p.lineReady = true
		})
		a.stage.AddCycles(stageEdgeMem, 1)
		return procStateVertexRead // memory wait (edge read shares the bar)
	}
	if !p.lineReady {
		a.stage.AddCycles(stageEdgeMem, 1)
		return procStateVertexRead
	}
	if !a.emitEdge(t, p.genIdx) {
		a.stage.AddCycles(stageGenerate, 1)
		return procStateStalling // delivery network full
	}
	a.stage.AddCycles(stageGenerate, 1)
	p.genIdx++
	if p.genIdx >= t.degree {
		a.stage.AddEvent(stageEdgeMem)
		a.stage.AddEvent(stageGenerate)
		a.stage.AddEventCycles(stageGenBuffer, 0) // no decoupling, no buffer wait
		p.gen = nil
	}
	return procStateProcess
}
