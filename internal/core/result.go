package core

import "graphpulse/internal/sim/telemetry"

// LookaheadBuckets is the number of Figure 8 lookahead classes:
// 0, <100, <200, <300, <400, ≥400.
const LookaheadBuckets = 6

// LookaheadBucketNames labels the Figure 8 classes in order.
var LookaheadBucketNames = [LookaheadBuckets]string{
	"0", "<100", "<200", "<300", "<400", ">400",
}

// LookaheadBucket maps a lookahead tag to its Figure 8 class index.
func LookaheadBucket(l uint32) int {
	switch {
	case l == 0:
		return 0
	case l < 100:
		return 1
	case l < 200:
		return 2
	case l < 300:
		return 3
	case l < 400:
		return 4
	default:
		return 5
	}
}

// RoundStats records one scheduler round (one full pass over the bins).
// Figure 4 plots Produced vs Remaining per round; Figure 8 plots the
// Lookahead histogram of processed events per round.
type RoundStats struct {
	Round int
	// Slice is the active slice during this round.
	Slice int
	// Produced counts events that arrived at the queue this round
	// (before coalescing).
	Produced int64
	// Coalesced counts arrivals absorbed into existing events.
	Coalesced int64
	// Processed counts events issued to processors this round.
	Processed int64
	// Remaining is queue population at the round barrier (events that will
	// be processed in later rounds).
	Remaining int64
	// Progress is the accumulated global-progress metric (Section IV-C),
	// e.g. Σ|Δ| for PageRank; 0 for algorithms without a Progressor.
	Progress float64
	// Lookahead[i] counts processed events in Figure 8 class i.
	Lookahead [LookaheadBuckets]int64
}

// Result is the outcome of one accelerator run: the converged vertex values
// plus every measurement the evaluation figures are built from.
type Result struct {
	Config    string
	Algorithm string

	// Values is the converged vertex state, indexed by global vertex id.
	Values []float64

	// Cycles and Seconds are simulated time (Seconds = Cycles / ClockHz).
	Cycles  uint64
	Seconds float64
	// Rounds counts scheduler rounds across all slices.
	Rounds int
	// Slices is the number of partitions the graph required; SliceSwitches
	// counts swap-ins after the first.
	Slices        int
	SliceSwitches int64

	// Event-flow counters.
	EventsProcessed int64
	EventsEmitted   int64
	EventsCoalesced int64
	SpilledEvents   int64

	// Off-chip traffic (Figures 11 and 12).
	MemReads    int64
	MemWrites   int64
	BytesMoved  int64
	BytesUseful int64
	Utilization float64
	RowHits     int64
	RowMisses   int64

	// Robustness counters (zero on clean runs; see METRICS.md).
	// MemFaults/MemRetries count injected DRAM transaction failures and the
	// controller's backoff retries. DroppedEvents counts events lost at
	// queue delivery (a completed run can only report 0 — a nonzero count
	// trips the conservation watchdog). RedeliveredEvents counts duplicate
	// deliveries discarded idempotently; ReorderedEvents counts delivery-
	// order perturbations; DiscardedEvents counts events purged by global
	// termination; SpillRecovered counts spilled events re-read after an
	// injected swap-in loss.
	MemFaults         int64
	MemRetries        int64
	DroppedEvents     int64
	RedeliveredEvents int64
	ReorderedEvents   int64
	DiscardedEvents   int64
	SpillRecovered    int64
	// FaultsInjected reports injected-fault counts by interposition point
	// (nil when fault injection was disabled).
	FaultsInjected map[string]int64

	// StageMeans is Figure 13: mean cycles per event in each execution
	// stage (keys are StageNames).
	StageMeans map[string]float64
	// ProcBreakdown and GenBreakdown are Figure 14: fraction of unit
	// cycles per state.
	ProcBreakdown map[string]float64
	GenBreakdown  map[string]float64

	// RoundLog backs Figures 4 and 8.
	RoundLog []RoundStats

	// TerminatedGlobally reports that the optional global termination
	// condition (Section IV-C) fired before the queue drained naturally.
	TerminatedGlobally bool

	// Trace holds the recorded entries for Config.TraceVertices (empty
	// unless tracing was enabled).
	Trace []TraceEntry

	// Telemetry holds the sampled time series when Config.Telemetry was
	// enabled (nil otherwise). Export with WriteCSV / WriteChromeTrace;
	// every series is documented in METRICS.md.
	Telemetry *telemetry.Recorder
}

// OffChipAccesses returns total line transfers (Figure 11's metric).
func (r *Result) OffChipAccesses() int64 { return r.MemReads + r.MemWrites }
