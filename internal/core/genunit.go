package core

import (
	"graphpulse/internal/mem"
)

// edgeCache is the small per-generation-unit cache in front of edge memory
// with N-block prefetching (Section V): "A simple N-block prefetching (N=4)
// scheme is used for edge memory reads", bounded by the degree hint "to
// avoid unnecessary memory traffic for low degree vertices".
type edgeCache struct {
	a     *Accelerator
	addrs []uint64
	lines []ecLine
}

type ecLine struct {
	valid bool
	ready bool
}

func newEdgeCache(a *Accelerator, capLines int) *edgeCache {
	return &edgeCache{
		a:     a,
		addrs: make([]uint64, capLines),
		lines: make([]ecLine, capLines),
	}
}

// slot returns the cache slot holding addr, or nil.
func (c *edgeCache) slot(addr uint64) *ecLine {
	for i, a := range c.addrs {
		if a == addr && c.lines[i].valid {
			return &c.lines[i]
		}
	}
	return nil
}

// containsLine is a linear membership test; the protection sets involved
// hold at most a handful of lines.
func containsLine(set []uint64, addr uint64) bool {
	for _, a := range set {
		if a == addr {
			return true
		}
	}
	return false
}

// ensure prefetches up to n lines starting at addr, not exceeding lastLine
// (derived from the task's degree hint). Pending lines and lines in the
// `needed` set (the current line of every active stream sharing the cache)
// are never evicted, so streams cannot thrash each other's working line.
func (c *edgeCache) ensure(addr, lastLine uint64, n int, t *genTask, needed []uint64) {
	for i := 0; i < n; i++ {
		line := addr + uint64(i)*mem.LineBytes
		if line > lastLine {
			return
		}
		present := false
		for j, a := range c.addrs {
			if a == line && c.lines[j].valid {
				present = true
				break
			}
		}
		if present {
			continue
		}
		victim := -1
		for j := range c.lines {
			l := &c.lines[j]
			if !l.valid {
				victim = j
				break
			}
			if victim == -1 && l.ready && !containsLine(needed, c.addrs[j]) {
				victim = j
			}
		}
		if victim == -1 {
			return
		}
		c.addrs[victim] = line
		c.lines[victim] = ecLine{valid: true}
		l := &c.lines[victim]
		c.a.fetch.Fetch(line, mem.LineBytes, c.a.edgeLineUseful(line, t), false, func() {
			l.ready = true
		})
	}
}

// genStream is one generation stream: assigned one changed vertex at a
// time, it walks the vertex's edge list emitting one outgoing event per
// cycle when edge data is available.
type genStream struct {
	task *genTask
	idx  int
	// ensured is the last edge line the prefetch window was topped up for.
	ensured uint64
	// cur caches the cache slot of the current line (nil when absent); the
	// line is eviction-protected while current, so the pointer stays valid.
	cur     *ecLine
	curAddr uint64
	// stallCycles accumulates edge-memory wait for the current task
	// (Figure 13's "Edge Mem" stage).
	memCycles int64
	genCycles int64
}

// genUnit bundles the streams attached to one processor behind a shared
// edge cache (Section V: "A group of streams in one generation unit share
// the same cache but multiple ports in the event delivery crossbar").
type genUnit struct {
	a         *Accelerator
	queue     []*genTask
	streams   []*genStream
	cache     *edgeCache
	stateHist [numGenStates]int64
	needBuf   []uint64 // reusable per-tick protection set
}

func newGenUnit(a *Accelerator) *genUnit {
	u := &genUnit{a: a, cache: newEdgeCache(a, a.cfg.EdgeCacheLines)}
	u.streams = make([]*genStream, a.cfg.StreamsPerProcessor)
	for i := range u.streams {
		u.streams[i] = &genStream{}
	}
	return u
}

// submit offers a task to the unit's input buffer; false means full (the
// processor enters its Stalling state).
func (u *genUnit) submit(t *genTask) bool {
	if len(u.queue) >= u.a.cfg.GenQueueDepth {
		return false
	}
	u.queue = append(u.queue, t)
	return true
}

// idle reports whether the unit has no queued or in-progress tasks.
func (u *genUnit) idle() bool {
	if len(u.queue) > 0 {
		return false
	}
	for _, s := range u.streams {
		if s.task != nil {
			return false
		}
	}
	return true
}

// tick advances every stream one cycle.
func (u *genUnit) tick(cycle uint64) {
	a := u.a
	// Lines the streams are currently consuming; protected from eviction.
	needed := u.needBuf[:0]
	for _, s := range u.streams {
		if s.task != nil {
			needed = append(needed, a.edgeAddr(s.task.edgeStart+uint64(s.idx))&^(mem.LineBytes-1))
		}
	}
	for _, s := range u.streams {
		if s.task == nil {
			if len(u.queue) == 0 {
				u.stateHist[genStateIdle]++
				continue
			}
			s.task = u.queue[0]
			u.queue = u.queue[1:]
			s.idx = 0
			s.ensured = ^uint64(0)
			s.cur, s.curAddr = nil, ^uint64(0)
			s.memCycles, s.genCycles = 0, 0
			a.stage.AddEventCycles(stageGenBuffer, int64(cycle-s.task.enqueuedAt))
		}
		t := s.task
		edgeIdx := t.edgeStart + uint64(s.idx)
		addr := a.edgeAddr(edgeIdx)
		line := addr &^ (mem.LineBytes - 1)
		needed = append(needed, line)
		if line != s.curAddr || s.cur == nil {
			// Crossing into a new line — or the current line is still
			// absent (it may have been refused or evicted while the cache
			// was full): (re-)arm the N-block prefetch window and re-find
			// the slot. While current, the slot is eviction-protected, so
			// the cached pointer below stays valid across cycles.
			if line != s.ensured || u.cache.slot(line) == nil {
				lastLine := a.edgeAddr(t.edgeStart+uint64(t.degree)-1) &^ (mem.LineBytes - 1)
				u.cache.ensure(line, lastLine, a.cfg.EdgePrefetchBlocks, t, needed)
				s.ensured = line
			}
			s.cur = u.cache.slot(line)
			s.curAddr = line
		}
		if s.cur == nil || !s.cur.ready {
			s.memCycles++
			u.stateHist[genStateEdgeRead]++
			continue
		}
		u.stateHist[genStateGenerate]++
		s.genCycles++
		if !a.emitEdge(t, s.idx) {
			continue // delivery network full; retry next cycle
		}
		s.idx++
		if s.idx >= t.degree {
			a.stage.AddCycles(stageEdgeMem, s.memCycles)
			a.stage.AddEvent(stageEdgeMem)
			a.stage.AddCycles(stageGenerate, s.genCycles)
			a.stage.AddEvent(stageGenerate)
			s.task = nil
		}
	}
	u.needBuf = needed[:0]
}
