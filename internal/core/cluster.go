package core

import (
	"context"
	"fmt"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/partition"
	"graphpulse/internal/mem"
	"graphpulse/internal/sim"
	"graphpulse/internal/sim/fault"
	"graphpulse/internal/sim/telemetry"
)

// Cluster is the multi-accelerator execution strategy the paper sketches
// but does not explore (Section IV-F, option b): "multiple accelerator
// chips can house all slices while an interconnection network streams
// inter-slice events in real-time."
//
// Each chip owns one contiguous vertex slice, with its own coalescing
// queue, processors, generation streams, and DRAM channels. Events bound
// for another chip leave through a bounded egress port onto a
// point-to-point link with fixed latency and per-cycle bandwidth, and are
// injected into the destination chip's delivery crossbar on arrival.
// Chips run fully asynchronously — there is no inter-chip round barrier —
// and the cluster terminates when every chip is parked idle with no events
// in flight anywhere.
type Cluster struct {
	cfg    ClusterConfig
	alg    algorithms.Algorithm
	g      graph.Adjacency
	engine *sim.Engine
	chips  []*Accelerator
	slices []partition.Slice

	// egress[i] holds events leaving chip i, waiting for link bandwidth.
	egress [][]Event
	// inflight[i] holds events traveling to chip i.
	inflight [][]linkMsg

	sent, delivered int64

	// inj injects interconnect faults (link kill/degrade) from its own
	// stream, independent of the chips' injectors.
	inj                      *fault.Injector
	linkKilled, linkDegraded int64
	wdStrikes                int
	wdErr                    *ConservationError

	tel *telemetry.Recorder // shared across chips; nil when disabled
}

type linkMsg struct {
	ev       Event // Target is a global vertex id
	arriveAt uint64
}

// ClusterConfig sizes a multi-accelerator system.
type ClusterConfig struct {
	// Chip configures each accelerator. QueueCapacity is ignored (each
	// chip's queue is sized to its slice).
	Chip Config
	// Chips is the number of accelerators (= slices).
	Chips int
	// LinkLatency is the chip-to-chip event latency in cycles.
	LinkLatency uint64
	// LinkBandwidth is the events per cycle each chip may send.
	LinkBandwidth int
	// EgressDepth bounds the per-chip egress buffer; full = backpressure
	// on the generation streams.
	EgressDepth int
}

// DefaultClusterConfig returns a 4-chip system with a modest serial link.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Chip:          OptimizedConfig(),
		Chips:         4,
		LinkLatency:   50,
		LinkBandwidth: 4,
		EgressDepth:   1024,
	}
}

// Validate reports the first invalid field.
func (c ClusterConfig) Validate() error {
	switch {
	case c.Chips < 2:
		return fmt.Errorf("core: cluster needs ≥2 chips, got %d", c.Chips)
	case c.LinkBandwidth < 1:
		return fmt.Errorf("core: LinkBandwidth=%d", c.LinkBandwidth)
	case c.EgressDepth < 1:
		return fmt.Errorf("core: EgressDepth=%d", c.EgressDepth)
	}
	return c.Chip.Validate()
}

// NewCluster partitions g across cfg.Chips accelerators.
func NewCluster(cfg ClusterConfig, g graph.Adjacency, alg algorithms.Algorithm) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if n < cfg.Chips {
		return nil, fmt.Errorf("core: %d vertices across %d chips", n, cfg.Chips)
	}
	per := (n + cfg.Chips - 1) / cfg.Chips
	p, err := partition.Contiguous(g, per, 2)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		cfg:      cfg,
		alg:      alg,
		g:        g,
		engine:   sim.NewEngine(),
		slices:   p.Slices,
		egress:   make([][]Event, len(p.Slices)),
		inflight: make([][]linkMsg, len(p.Slices)),
	}
	// One shared functional state array: each chip only writes its slice.
	state := make([]float64, n)
	for v := 0; v < n; v++ {
		state[v] = alg.InitState(graph.VertexID(v))
	}
	initial := alg.InitialEvents(g)
	// One recorder shared by all chips and the interconnect, registered
	// last so it samples end-of-cycle state; probe components are prefixed
	// "chipN/" per chip.
	cl.tel = telemetry.New(cfg.Chip.Telemetry)
	// The interconnect draws link faults from the configured seed; each chip
	// derives an independent per-chip stream so the chips don't all fault in
	// lockstep.
	cl.inj = fault.New(cfg.Chip.Fault)
	for i, sl := range cl.slices {
		chipCfg := cfg.Chip
		chipCfg.Name = fmt.Sprintf("%s-chip%d", chipCfg.Name, i)
		chipCfg.QueueCapacity = 0
		chipCfg.Fault = cfg.Chip.Fault.WithSeed(
			cfg.Chip.Fault.Seed ^ uint64(i+1)*0x9e3779b97f4a7c15)
		chip, err := newChip(chipCfg, g, alg, sl, state, cl.remoteFunc(i), initial, cl.engine)
		if err != nil {
			return nil, err
		}
		cl.chips = append(cl.chips, chip)
		cl.engine.Register(chip.memory)
		cl.engine.Register(chip)
		if cl.tel != nil {
			chip.tel = cl.tel
			chip.registerTelemetry(cl.tel, fmt.Sprintf("chip%d/", i))
		}
	}
	cl.engine.Register(cl)
	if cl.tel != nil {
		cl.registerTelemetry(cl.tel)
		cl.engine.Register(cl.tel)
	}
	return cl, nil
}

// newChip builds one cluster member: an accelerator whose single slice is
// sl, sharing the functional state array, with out-of-slice events routed
// through remote.
func newChip(cfg Config, g graph.Adjacency, alg algorithms.Algorithm, sl partition.Slice,
	state []float64, remote func(Event) bool, initial []algorithms.InitialEvent,
	engine *sim.Engine) (*Accelerator, error) {

	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Accelerator{
		cfg:       cfg,
		alg:       alg,
		g:         g,
		engine:    engine, // the cluster's shared clock
		edgeBytes: algorithms.EdgeRecordBytes(alg),
		stage:     newStageTimer(),
		remote:    remote,
		state:     state,
	}
	a.prog, _ = alg.(algorithms.Progressor)
	a.inj = fault.New(cfg.Fault)
	a.memory = mem.New(cfg.Memory)
	a.memory.InjectFaults(a.inj)
	a.fetch = mem.NewFetcher(a.memory)
	a.slices = []partition.Slice{sl}
	a.spill = newSpillBuffers(1)
	a.procs = make([]*processor, cfg.NumProcessors)
	for i := range a.procs {
		a.procs[i] = newProcessor(a, i)
	}
	if cfg.DecoupledGeneration {
		a.gens = make([]*genUnit, cfg.NumProcessors)
		for i := range a.gens {
			a.gens[i] = newGenUnit(a)
		}
	}
	a.xbar = newCrossbar(cfg.CrossbarPorts, cfg.NetworkQueueDepth)
	a.xbar.inj = a.inj
	for _, ev := range initial {
		if sl.Contains(ev.Vertex) {
			a.spill.add(0, Event{Target: ev.Vertex, Delta: ev.Delta})
			a.initialEvents++
		}
	}
	a.activateSlice(0, false)
	return a, nil
}

// chipOf returns the index of the chip owning global vertex v.
func (cl *Cluster) chipOf(v graph.VertexID) int {
	lo, hi := 0, len(cl.slices)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case v < cl.slices[mid].Lo:
			hi = mid
		case v >= cl.slices[mid].Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// remoteFunc builds chip i's egress hook.
func (cl *Cluster) remoteFunc(i int) func(Event) bool {
	return func(ev Event) bool {
		if len(cl.egress[i]) >= cl.cfg.EgressDepth {
			return false
		}
		cl.egress[i] = append(cl.egress[i], ev)
		return true
	}
}

// Name implements sim.Component.
func (cl *Cluster) Name() string { return "cluster-interconnect" }

// Tick moves events across the interconnect: egress → in-flight (bounded
// by link bandwidth), arrived in-flight → destination crossbar.
func (cl *Cluster) Tick(cycle uint64) {
	for i := range cl.egress {
		moved := 0
		for moved < cl.cfg.LinkBandwidth && len(cl.egress[i]) > 0 {
			ev := cl.egress[i][0]
			cl.egress[i] = cl.egress[i][1:]
			moved++
			// Link kill: the event is lost on the wire. No retransmit layer
			// exists, so the cluster-level conservation audit must catch it.
			if cl.inj.Decide(fault.PointLinkKill) {
				cl.linkKilled++
				continue
			}
			lat := cl.cfg.LinkLatency
			// Link degrade: this traversal crawls (a flapping or retrained
			// link); the event survives, just late.
			if cl.inj.Decide(fault.PointLinkDegrade) {
				lat *= cl.inj.DegradeFactor()
				cl.linkDegraded++
			}
			dst := cl.chipOf(ev.Target)
			cl.inflight[dst] = append(cl.inflight[dst], linkMsg{ev: ev, arriveAt: cycle + lat})
			cl.sent++
		}
	}
	for i := range cl.inflight {
		chip := cl.chips[i]
		kept := cl.inflight[i][:0]
		for _, m := range cl.inflight[i] {
			if m.arriveAt > cycle {
				kept = append(kept, m)
				continue
			}
			local := m.ev
			local.Target -= cl.slices[i].Lo
			if !chip.xbar.offer(local) {
				kept = append(kept, m) // destination crossbar full; retry
				continue
			}
			cl.delivered++
		}
		cl.inflight[i] = kept
	}
	cl.watchdogCheck(cycle)
}

// eventImbalance audits conservation cluster-wide. A chip's local sheet is
// unbalanced by remote traffic (a sent event is +1 at the sender until it
// lands at the receiver, where it counts −1), so the per-chip imbalances
// plus the link buffers must cancel: any residue is an event lost on the
// interconnect or inside a chip.
func (cl *Cluster) eventImbalance() int64 {
	var imb int64
	for i, chip := range cl.chips {
		imb += chip.eventImbalance()
		imb -= int64(len(cl.egress[i]) + len(cl.inflight[i]))
	}
	return imb
}

// watchdogCheck is the cluster-level conservation audit, run on the shared
// clock with the same strike policy as the single-chip watchdog.
func (cl *Cluster) watchdogCheck(cycle uint64) {
	if cl.wdErr != nil {
		return
	}
	iv := cl.cfg.Chip.WatchdogInterval
	if iv == 0 {
		iv = defaultWatchdogInterval
	}
	if cycle%iv != 0 {
		return
	}
	imb := cl.eventImbalance()
	if imb == 0 {
		cl.wdStrikes = 0
		return
	}
	cl.wdStrikes++
	if cl.wdStrikes >= watchdogStrikes {
		cl.wdErr = cl.conservationError(cycle, imb)
	}
}

// conservationError aggregates the chips' balance sheets plus the link
// buffers into one diagnostic snapshot.
func (cl *Cluster) conservationError(cycle uint64, imbalance int64) *ConservationError {
	e := &ConservationError{Cycle: cycle, Imbalance: imbalance, Faults: cl.inj.Snapshot()}
	for i, chip := range cl.chips {
		e.Initial += chip.initialEvents
		e.Emitted += chip.eventsEmitted
		e.Processed += chip.eventsProcessed
		e.Coalesced += chip.coalescedTotal()
		e.Discarded += chip.discardedEvents
		e.Redelivered += chip.foldRedelivered + chip.queue.redelivered
		rb := chip.residentEvents()
		e.Resident.Queue += rb.Queue
		e.Resident.Network += rb.Network
		e.Resident.Staged += rb.Staged
		e.Resident.ProcInputs += rb.ProcInputs
		e.Resident.Spill += rb.Spill
		e.Resident.PendingInserts += rb.PendingInserts
		e.Resident.Egress += int64(len(cl.egress[i]))
		e.Resident.Inflight += int64(len(cl.inflight[i]))
		if e.Faults == nil {
			e.Faults = chip.inj.Snapshot()
		}
	}
	return e
}

// done reports global termination: every chip parked idle, no interconnect
// traffic, no in-chip work. A watchdog trip also stops the clock so Run can
// surface the conservation error.
func (cl *Cluster) done() bool {
	if cl.wdErr != nil {
		return true
	}
	for i, chip := range cl.chips {
		if chip.phase != phaseIdle || chip.queue.population > 0 || !chip.xbar.empty() {
			return false
		}
		if len(cl.egress[i]) > 0 || len(cl.inflight[i]) > 0 {
			return false
		}
	}
	return true
}

// ClusterResult aggregates a cluster run.
type ClusterResult struct {
	Values  []float64
	Cycles  uint64
	Seconds float64
	Chips   int
	// InterChipEvents counts events that crossed the interconnect.
	InterChipEvents int64
	// LinkKilled and LinkDegraded count injected interconnect faults
	// (zero on clean runs).
	LinkKilled   int64
	LinkDegraded int64
	// EventsProcessed sums across chips.
	EventsProcessed int64
	// OffChipAccesses sums all chips' DRAM line transfers.
	OffChipAccesses int64
	// PerChip carries each chip's full result.
	PerChip []*Result
	// Telemetry is the cluster-wide recorder ("chipN/…" and "interconnect"
	// components) when Chip.Telemetry was enabled; nil otherwise.
	Telemetry *telemetry.Recorder
}

// Run simulates the cluster to global termination.
func (cl *Cluster) Run() (*ClusterResult, error) { return cl.RunCtx(nil) }

// RunCtx runs like Run with wall-clock cancellation: when ctx is done the
// simulation stops with an error wrapping sim.ErrCanceled. It fails with an
// error wrapping ErrConservation when the cluster-wide event-conservation
// watchdog trips (e.g. an event lost on a killed link).
func (cl *Cluster) RunCtx(ctx context.Context) (*ClusterResult, error) {
	err := cl.engine.RunUntil(ctx, cl.done, cl.cfg.Chip.MaxCycles)
	if cl.wdErr != nil {
		return nil, cl.wdErr
	}
	if err != nil {
		return nil, err
	}
	// Final audit: a cluster can quiesce with events missing (killed on a
	// link) before the periodic watchdog accumulates its strikes. Global
	// termination with an unbalanced sheet is still a lost event.
	if imb := cl.eventImbalance(); imb != 0 {
		return nil, cl.conservationError(cl.engine.Cycle(), imb)
	}
	// Flush chip scratchpads so final state is architecturally visible.
	for _, chip := range cl.chips {
		chip.flushScratchpads()
	}
	res := &ClusterResult{
		Values:          cl.chips[0].state,
		Cycles:          cl.engine.Cycle(),
		Seconds:         cl.engine.SecondsAt(cl.cfg.Chip.ClockHz),
		Chips:           len(cl.chips),
		InterChipEvents: cl.delivered,
		LinkKilled:      cl.linkKilled,
		LinkDegraded:    cl.linkDegraded,
		Telemetry:       cl.tel,
	}
	for _, chip := range cl.chips {
		r := chip.result()
		res.PerChip = append(res.PerChip, r)
		res.EventsProcessed += r.EventsProcessed
		res.OffChipAccesses += r.OffChipAccesses()
	}
	return res, nil
}
