package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphpulse/internal/graph"
)

func sum(a, b float64) float64 { return a + b }

func TestQueueGeometry(t *testing.T) {
	q := newCoalescingQueue(1000, 8, 4, false, sum)
	if q.capacity() < 1000 {
		t.Errorf("capacity = %d, want >= 1000", q.capacity())
	}
	// Column-bin-row order: vertices 0..3 share bin 0 row 0; 4..7 bin 1.
	if q.binOf(0) != 0 || q.binOf(3) != 0 {
		t.Errorf("binOf(0)=%d binOf(3)=%d, want 0", q.binOf(0), q.binOf(3))
	}
	if q.binOf(4) != 1 {
		t.Errorf("binOf(4) = %d, want 1", q.binOf(4))
	}
	// After one full sweep of bins (8 bins × 4 cols = 32 vertices), row 1.
	if q.rowOf(31) != 0 || q.rowOf(32) != 1 {
		t.Errorf("rowOf(31)=%d rowOf(32)=%d, want 0/1", q.rowOf(31), q.rowOf(32))
	}
}

func TestQueueInsertAndDrain(t *testing.T) {
	q := newCoalescingQueue(64, 4, 4, false, sum)
	q.insert(Event{Target: 5, Delta: 1.5})
	q.insert(Event{Target: 6, Delta: 2.5})
	if q.population != 2 {
		t.Fatalf("population = %d, want 2", q.population)
	}
	bin := q.binOf(5)
	row := q.rowOf(5)
	evs := q.drainRow(bin, row)
	// 5 and 6 share the block (cols=4: block 4..7 in bin 1).
	if len(evs) != 2 {
		t.Fatalf("drained %d events, want 2", len(evs))
	}
	if q.population != 0 {
		t.Errorf("population after drain = %d", q.population)
	}
}

func TestQueueCoalescing(t *testing.T) {
	q := newCoalescingQueue(64, 4, 4, false, sum)
	if q.insert(Event{Target: 9, Delta: 1}) {
		t.Error("first insert reported coalesced")
	}
	if !q.insert(Event{Target: 9, Delta: 2}) {
		t.Error("second insert did not coalesce")
	}
	if q.population != 1 {
		t.Errorf("population = %d, want 1", q.population)
	}
	evs := q.drainRow(q.binOf(9), q.rowOf(9))
	if len(evs) != 1 || evs[0].Delta != 3 {
		t.Errorf("drained %+v, want single delta 3", evs)
	}
	if q.coalesced != 1 {
		t.Errorf("coalesced counter = %d, want 1", q.coalesced)
	}
}

func TestQueueCoalescingMin(t *testing.T) {
	q := newCoalescingQueue(16, 2, 2, false, math.Min)
	q.insert(Event{Target: 3, Delta: 7})
	q.insert(Event{Target: 3, Delta: 4})
	q.insert(Event{Target: 3, Delta: 9})
	evs := q.drainRow(q.binOf(3), q.rowOf(3))
	if len(evs) != 1 || evs[0].Delta != 4 {
		t.Errorf("drained %+v, want min 4", evs)
	}
}

func TestQueueLookaheadCompounds(t *testing.T) {
	q := newCoalescingQueue(16, 2, 2, false, sum)
	q.insert(Event{Target: 1, Delta: 1, Lookahead: 5})
	q.insert(Event{Target: 1, Delta: 1, Lookahead: 2})
	evs := q.drainRow(q.binOf(1), q.rowOf(1))
	if evs[0].Lookahead != 6 { // max(5,2)+1
		t.Errorf("lookahead = %d, want 6", evs[0].Lookahead)
	}
}

func TestQueueCoalesceDisabledOverflow(t *testing.T) {
	q := newCoalescingQueue(16, 2, 2, true, sum)
	q.insert(Event{Target: 1, Delta: 1})
	q.insert(Event{Target: 1, Delta: 2})
	q.insert(Event{Target: 1, Delta: 3})
	if q.population != 3 {
		t.Fatalf("population = %d, want 3 without coalescing", q.population)
	}
	evs := q.drainRow(q.binOf(1), q.rowOf(1))
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	total := 0.0
	for _, e := range evs {
		total += e.Delta
	}
	if total != 6 {
		t.Errorf("sum of drained deltas = %g, want 6", total)
	}
}

func TestQueueNextOccupiedRow(t *testing.T) {
	q := newCoalescingQueue(1024, 4, 4, false, sum)
	// Vertex 16*4+0... choose a vertex in bin 0, a later row.
	var v graph.VertexID
	for cand := graph.VertexID(0); int(cand) < q.capacity(); cand++ {
		if q.binOf(cand) == 0 && q.rowOf(cand) == 3 {
			v = cand
			break
		}
	}
	q.insert(Event{Target: v, Delta: 1})
	if r := q.nextOccupiedRow(0, 0); r != 3 {
		t.Errorf("nextOccupiedRow = %d, want 3", r)
	}
	if r := q.nextOccupiedRow(0, 4); r != -1 {
		t.Errorf("nextOccupiedRow past = %d, want -1", r)
	}
	if r := q.nextOccupiedRow(1, 0); r != -1 {
		t.Errorf("nextOccupiedRow other bin = %d, want -1", r)
	}
}

func TestQueueDrainAll(t *testing.T) {
	q := newCoalescingQueue(256, 8, 4, false, sum)
	rng := rand.New(rand.NewSource(1))
	want := map[graph.VertexID]float64{}
	for i := 0; i < 100; i++ {
		v := graph.VertexID(rng.Intn(256))
		d := rng.Float64()
		want[v] += d
		q.insert(Event{Target: v, Delta: d})
	}
	evs := q.drainAll()
	if q.population != 0 {
		t.Fatalf("population after drainAll = %d", q.population)
	}
	if len(evs) != len(want) {
		t.Fatalf("drained %d events, want %d", len(evs), len(want))
	}
	for _, e := range evs {
		if math.Abs(e.Delta-want[e.Target]) > 1e-12 {
			t.Errorf("vertex %d delta = %g, want %g", e.Target, e.Delta, want[e.Target])
		}
	}
}

// TestPropertyQueueConservation: for a sum reduce, the total delta drained
// always equals the total delta inserted, regardless of the
// insert/coalesce/drain interleaving.
func TestPropertyQueueConservation(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := newCoalescingQueue(128, 4, 4, false, sum)
		var inserted, drained float64
		for op := 0; op < int(nOps); op++ {
			if rng.Intn(3) < 2 {
				d := rng.Float64()
				inserted += d
				q.insert(Event{Target: graph.VertexID(rng.Intn(128)), Delta: d})
			} else {
				bin := rng.Intn(4)
				if r := q.nextOccupiedRow(bin, 0); r != -1 {
					for _, e := range q.drainRow(bin, r) {
						drained += e.Delta
					}
				}
			}
		}
		for _, e := range q.drainAll() {
			drained += e.Delta
		}
		return math.Abs(inserted-drained) < 1e-9 && q.population == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyQueueMappingBijective: every vertex id maps to a distinct
// (bin,row,col) and drains exactly once.
func TestPropertyQueueMappingBijective(t *testing.T) {
	f := func(binsRaw, colsRaw uint8, capRaw uint16) bool {
		bins := int(binsRaw)%16 + 1
		cols := int(colsRaw)%8 + 1
		capacity := int(capRaw)%500 + 1
		q := newCoalescingQueue(capacity, bins, cols, false, sum)
		for v := 0; v < capacity; v++ {
			q.insert(Event{Target: graph.VertexID(v), Delta: 1})
		}
		if q.population != int64(capacity) {
			return false
		}
		seen := make(map[graph.VertexID]bool)
		for _, e := range q.drainAll() {
			if seen[e.Target] {
				return false
			}
			seen[e.Target] = true
		}
		return len(seen) == capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCrossbarDeliver(t *testing.T) {
	q := newCoalescingQueue(64, 4, 4, false, sum)
	x := newCrossbar(2, 16)
	// Three events to three different bins; ports=2 limits delivery.
	x.offer(Event{Target: 0, Delta: 1}) // bin 0
	x.offer(Event{Target: 4, Delta: 1}) // bin 1
	x.offer(Event{Target: 8, Delta: 1}) // bin 2
	x.deliver(q, -1)
	if q.population != 2 {
		t.Errorf("population after first deliver = %d, want 2 (port limit)", q.population)
	}
	x.deliver(q, -1)
	if q.population != 3 || !x.empty() {
		t.Errorf("population = %d, empty = %v", q.population, x.empty())
	}
}

func TestCrossbarPerBinLimit(t *testing.T) {
	q := newCoalescingQueue(64, 4, 4, false, sum)
	x := newCrossbar(4, 16)
	// Two events to the same bin: only one lands per cycle.
	x.offer(Event{Target: 0, Delta: 1})
	x.offer(Event{Target: 1, Delta: 1})
	x.deliver(q, -1)
	if q.population != 1 {
		t.Errorf("population = %d, want 1 (one insert per bin per cycle)", q.population)
	}
}

func TestCrossbarDrainingBinStalls(t *testing.T) {
	q := newCoalescingQueue(64, 4, 4, false, sum)
	x := newCrossbar(4, 16)
	x.offer(Event{Target: 0, Delta: 1}) // bin 0
	x.deliver(q, 0)                     // bin 0 draining → stalled
	if q.population != 0 {
		t.Error("event delivered to draining bin")
	}
	x.deliver(q, -1)
	if q.population != 1 {
		t.Error("event lost after stall")
	}
}

func TestCrossbarBackpressure(t *testing.T) {
	x := newCrossbar(1, 2)
	if !x.offer(Event{Target: 0}) || !x.offer(Event{Target: 1}) {
		t.Fatal("offers refused below depth")
	}
	if x.offer(Event{Target: 2}) {
		t.Error("offer accepted beyond depth")
	}
}

func TestSpillBuffers(t *testing.T) {
	s := newSpillBuffers(3)
	s.add(1, Event{Target: 10})
	s.add(1, Event{Target: 11})
	s.add(2, Event{Target: 20})
	if s.total != 3 || s.count(1) != 2 {
		t.Fatalf("total=%d count(1)=%d", s.total, s.count(1))
	}
	if got := s.nextNonEmpty(0); got != 1 {
		t.Errorf("nextNonEmpty(0) = %d, want 1", got)
	}
	if got := s.nextNonEmpty(1); got != 2 {
		t.Errorf("nextNonEmpty(1) = %d, want 2", got)
	}
	evs := s.take(1)
	if len(evs) != 2 || s.total != 1 {
		t.Errorf("take: %d events, total %d", len(evs), s.total)
	}
	if got := s.nextNonEmpty(2); got != 2 {
		t.Errorf("nextNonEmpty(2) = %d, want 2 (wraps)", got)
	}
	s.take(2)
	if got := s.nextNonEmpty(0); got != -1 {
		t.Errorf("nextNonEmpty on empty = %d, want -1", got)
	}
}

func TestLookaheadBucket(t *testing.T) {
	cases := map[uint32]int{0: 0, 1: 1, 99: 1, 100: 2, 199: 2, 250: 3, 399: 4, 400: 5, 10000: 5}
	for l, want := range cases {
		if got := LookaheadBucket(l); got != want {
			t.Errorf("LookaheadBucket(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestQueueBinRowColMapping(t *testing.T) {
	q := newMappedQueue(64, 4, 4, MapBinRowCol, false, sum)
	// Bin-row-col: vertices 0..15 fill bin 0 (4 rows × 4 cols).
	if q.binOf(0) != 0 || q.binOf(15) != 0 {
		t.Errorf("binOf(0)=%d binOf(15)=%d, want 0", q.binOf(0), q.binOf(15))
	}
	if q.binOf(16) != 1 {
		t.Errorf("binOf(16) = %d, want 1", q.binOf(16))
	}
	if q.rowOf(4) != 1 || q.rowOf(16) != 0 {
		t.Errorf("rowOf(4)=%d rowOf(16)=%d, want 1/0", q.rowOf(4), q.rowOf(16))
	}
	// Drain still recovers exactly what was inserted.
	for v := 0; v < 64; v++ {
		q.insert(Event{Target: graph.VertexID(v), Delta: float64(v)})
	}
	seen := map[graph.VertexID]float64{}
	for _, e := range q.drainAll() {
		seen[e.Target] = e.Delta
	}
	if len(seen) != 64 {
		t.Fatalf("drained %d distinct vertices, want 64", len(seen))
	}
	for v, d := range seen {
		if d != float64(v) {
			t.Errorf("vertex %d delta %g", v, d)
		}
	}
}

func TestQueueMappingsSpreadDifferently(t *testing.T) {
	// A contiguous vertex block should span many bins under col-bin-row and
	// exactly one bin under bin-row-col — the paper's rationale for the
	// former.
	cbr := newMappedQueue(1024, 8, 4, MapColBinRow, false, sum)
	brc := newMappedQueue(1024, 8, 4, MapBinRowCol, false, sum)
	binsCBR := map[int]bool{}
	binsBRC := map[int]bool{}
	for v := graph.VertexID(0); v < 64; v++ {
		binsCBR[cbr.binOf(v)] = true
		binsBRC[brc.binOf(v)] = true
	}
	if len(binsCBR) != 8 {
		t.Errorf("col-bin-row spread 64 vertices over %d bins, want 8", len(binsCBR))
	}
	if len(binsBRC) != 1 {
		t.Errorf("bin-row-col spread 64 vertices over %d bins, want 1", len(binsBRC))
	}
}
