package core

import "graphpulse/internal/sim/telemetry"

// registerTelemetry wires the accelerator's probes into tel, prefixing
// component names (cluster chips use "chipN/"). Probes are closures that
// only read architectural state at sample time; with telemetry disabled
// (tel == nil) every registration is a no-op and nothing touches the hot
// path. Series names and units are documented in METRICS.md; the lintdoc
// linter keeps that file in sync with what is registered here.
func (a *Accelerator) registerTelemetry(tel *telemetry.Recorder, prefix string) {
	if tel == nil {
		// Bail before building any probe closures: the disabled path must be
		// allocation-free (TestDisabledTelemetryIsNilAndAllocationFree).
		return
	}
	q := prefix + "queue"
	// a.queue is replaced on every slice switch; the closures read the live
	// field, and the fold* accumulators carry earlier slices' totals.
	tel.Gauge(q, "queue_occupancy", "events", func() int64 { return a.queue.population })
	tel.Rate(q, "events_inserted", "events", func() int64 {
		return a.foldInserted + a.queue.inserted - a.snapInserted
	})
	tel.Rate(q, "events_coalesced", "events", func() int64 {
		return a.foldCoalesced + a.queue.coalesced - a.snapCoalesced
	})
	tel.Rate(q, "events_spilled", "events", func() int64 { return a.spilledEvents })

	p := prefix + "proc"
	tel.Rate(p, "events_processed", "events", func() int64 { return a.eventsProcessed })
	tel.Rate(p, "proc_stall_cycles", "cycles", func() int64 {
		var n int64
		for _, pr := range a.procs {
			n += pr.stateHist[procStateStalling]
		}
		return n
	})
	tel.Gauge(p, "proc_input_buffered", "events", func() int64 {
		var n int64
		for _, pr := range a.procs {
			n += int64(len(pr.input))
		}
		return n
	})

	g := prefix + "gen"
	tel.Rate(g, "events_emitted", "events", func() int64 { return a.eventsEmitted })
	tel.Gauge(g, "gen_tasks_buffered", "tasks", func() int64 {
		var n int64
		for _, u := range a.gens {
			n += int64(len(u.queue))
		}
		return n
	})

	x := prefix + "xbar"
	tel.Gauge(x, "network_buffered", "events", func() int64 { return int64(len(a.xbar.queue)) })
	tel.Rate(x, "network_delivered", "events", func() int64 { return a.xbar.delivered })

	a.memory.RegisterProbes(tel, prefix+"memory")
	tel.Gauge(prefix+"fetcher", "fetch_staged_lines", "lines", func() int64 {
		return int64(a.fetch.PendingLines())
	})
}

// registerTelemetry wires the cluster interconnect's probes.
func (cl *Cluster) registerTelemetry(tel *telemetry.Recorder) {
	if tel == nil {
		return
	}
	const ic = "interconnect"
	tel.Gauge(ic, "link_egress_buffered", "events", func() int64 {
		var n int64
		for i := range cl.egress {
			n += int64(len(cl.egress[i]))
		}
		return n
	})
	tel.Gauge(ic, "link_inflight", "events", func() int64 {
		var n int64
		for i := range cl.inflight {
			n += int64(len(cl.inflight[i]))
		}
		return n
	})
	tel.Rate(ic, "link_sent", "events", func() int64 { return cl.sent })
	tel.Rate(ic, "link_delivered", "events", func() int64 { return cl.delivered })
}
