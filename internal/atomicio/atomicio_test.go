package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFileBytes(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite replaces content atomically.
	if err := WriteFileBytes(path, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "world" {
		t.Fatalf("after overwrite: %q", got)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteFileErrorPreservesOld: a failing write callback must leave the
// previous file version intact and remove its temp file.
func TestWriteFileErrorPreservesOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "v1" {
		t.Fatalf("old content clobbered: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileBadDir(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "missing", "out"), []byte("x"))
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".csv" && filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
}
