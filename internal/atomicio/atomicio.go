// Package atomicio provides crash-safe file writes: content is streamed to
// a temporary file in the destination directory and atomically renamed over
// the target only after the write (and an fsync) succeeds. A reader never
// observes a half-written file, and an interrupted writer leaves the
// previous version of the target intact — the property the bench sweep's
// resume manifest, checkpoints, and every CSV/JSON/chart export rely on.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The temp file lives in path's directory so the final rename cannot cross
// filesystems. On any error the temp file is removed and the target is left
// untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: rename over %s: %w", path, err)
	}
	return nil
}

// WriteFileBytes atomically replaces path with data.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
