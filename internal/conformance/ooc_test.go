package conformance

import (
	"bytes"
	"testing"

	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/graph/ooc"
)

// TestEnginesOnOutOfCoreStore runs the full Table II matrix — every
// registry engine × every conformance algorithm — twice per cell: once on
// the in-RAM CSR and once on a graphpack store opened at a quarter of the
// decoded size, so every engine computes through the residency manager's
// decode/evict path. The store run must match the in-RAM run within the
// suite tolerance (exact for the monotone algorithms), and the budget must
// actually have forced evictions.
func TestEnginesOnOutOfCoreStore(t *testing.T) {
	base, err := gen.ErdosRenyi(220, 1400, true, 19)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Algorithms() {
		prepared := c.Prepared(base)
		var pack bytes.Buffer
		if err := ooc.Write(&pack, prepared, ooc.WriteOptions{Slices: 8}); err != nil {
			t.Fatalf("%s: pack: %v", c.Name, err)
		}
		decoded := int64(len(prepared.RowPtr))*8 + int64(len(prepared.Dst))*4
		if prepared.Weight != nil {
			decoded += int64(len(prepared.Weight)) * 4
		}
		st, err := ooc.OpenReaderAt(bytes.NewReader(pack.Bytes()), int64(pack.Len()), decoded/4)
		if err != nil {
			t.Fatalf("%s: open: %v", c.Name, err)
		}
		st.ResetCounters()

		root := BestRoot(prepared)
		mk := c.Maker(root)
		tol := Tolerance(mk(), prepared)
		for _, e := range Engines() {
			want, err := e.Run(prepared, mk)
			if err != nil {
				t.Fatalf("%s/%s in-RAM: %v", e.Name, c.Name, err)
			}
			got, err := e.Run(graph.Adjacency(st), mk)
			if err != nil {
				t.Fatalf("%s/%s on store: %v", e.Name, c.Name, err)
			}
			if err := CompareValues(e.Name+" ooc vs in-RAM on "+c.Name, got, want, tol); err != nil {
				t.Error(err)
			}
		}
		if cnt := st.Counters(); cnt.Evictions == 0 {
			t.Errorf("%s: quarter budget forced no evictions (decodes=%d) — store ran fully resident",
				c.Name, cnt.Decodes)
		}
		st.Close()
	}
}
